// Zero-allocation regression tests for the scheme hot path: after
// warmup, one demand access through each scheme's Access must not
// allocate. The schemes reuse scratch Op buffers handed back through
// mc.Result (see the ownership note there); these tests pin that
// property so a future refactor can't silently reintroduce per-access
// garbage into the simulator's innermost loop.
package banshee_test

import (
	"testing"

	"banshee/internal/alloy"
	bcore "banshee/internal/banshee"
	"banshee/internal/cameo"
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/schemes"
	"banshee/internal/tdc"
	"banshee/internal/unison"
	"banshee/internal/vm"
)

const allocCapacity = 16 << 20 // 16 MB DRAM cache for the alloc tests

// accessPattern drives scheme s over a skewed mix of reads, writes and
// dirty evictions across `pages` 4 KB pages, with mappings resolved
// through pt the way the simulator would.
func accessPattern(s mc.Scheme, pt *vm.PageTable, pages uint64, n int) {
	for i := 0; i < n; i++ {
		page := (uint64(i) * 2654435761) % pages
		addr := mem.Addr(page<<12 | uint64(i%64)<<6)
		pte := pt.Translate(addr)
		if i%7 == 0 {
			s.Access(mem.Request{Addr: addr, Write: true, Eviction: true, Mapping: pte.Mapping()})
		} else {
			s.Access(mem.Request{Addr: addr, Write: i%3 == 0, Mapping: pte.Mapping()})
		}
	}
}

func testZeroAlloc(t *testing.T, s mc.Scheme, pages uint64) {
	t.Helper()
	pt := vm.NewPageTable()
	// Warm: grow scratch buffers, populate metadata, page table, and
	// any internal maps to their steady-state working set.
	accessPattern(s, pt, pages, 50_000)
	var i int
	avg := testing.AllocsPerRun(2000, func() {
		page := (uint64(i) * 2654435761) % pages
		addr := mem.Addr(page<<12 | uint64(i%64)<<6)
		pte := pt.Translate(addr)
		if i%7 == 0 {
			s.Access(mem.Request{Addr: addr, Write: true, Eviction: true, Mapping: pte.Mapping()})
		} else {
			s.Access(mem.Request{Addr: addr, Write: i%3 == 0, Mapping: pte.Mapping()})
		}
		i++
	})
	if avg != 0 {
		t.Errorf("%s: steady-state Access allocates %v per op, want 0", s.Name(), avg)
	}
}

func TestBansheeAccessZeroAlloc(t *testing.T) {
	pt := vm.NewPageTable()
	cfg := bcore.DefaultConfig(allocCapacity)
	cfg.Seed = 7
	b := bcore.New(cfg, pt, nil, vm.DefaultCostModel(2700))
	testZeroAlloc(t, b, 32768)
}

func TestAlloyAccessZeroAlloc(t *testing.T) {
	testZeroAlloc(t, alloy.New(alloy.Config{CapacityBytes: allocCapacity, FillProb: 0.1, Seed: 7}), 32768)
}

func TestUnisonAccessZeroAlloc(t *testing.T) {
	testZeroAlloc(t, unison.New(unison.Config{CapacityBytes: allocCapacity, Ways: 4}), 32768)
}

func TestCameoAccessZeroAlloc(t *testing.T) {
	testZeroAlloc(t, cameo.New(cameo.Config{CapacityBytes: allocCapacity}), 32768)
}

func TestTDCAccessZeroAlloc(t *testing.T) {
	testZeroAlloc(t, tdc.New(tdc.Config{CapacityBytes: allocCapacity}), 32768)
}

func TestBoundingSchemesZeroAlloc(t *testing.T) {
	testZeroAlloc(t, schemes.NewNoCache(), 4096)
	testZeroAlloc(t, schemes.NewCacheOnly(), 4096)
}
