// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus micro-benchmarks of the core data structures.
//
// The experiment benchmarks run reduced-size simulations per iteration
// and report the paper's metric via b.ReportMetric (speedup-x, B/i,
// miss-%), so `go test -bench=.` regenerates the *shape* of every
// result quickly; cmd/experiments runs the full-size versions.
package banshee_test

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"banshee"
	bcore "banshee/internal/banshee"
	"banshee/internal/cache"
	"banshee/internal/dram"
	"banshee/internal/mem"
	"banshee/internal/trace"
	"banshee/internal/tracefile"
	"banshee/internal/vm"
)

// benchConfig is the reduced-size system used by experiment benchmarks.
func benchConfig() banshee.Config {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 8
	cfg.InstrPerCore = 400_000
	cfg.Seed = 42
	return cfg
}

func mustRun(b *testing.B, cfg banshee.Config, workload, scheme string) banshee.Result {
	b.Helper()
	res, err := banshee.Run(cfg, workload, scheme)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig4 regenerates Fig. 4's bars: speedup over NoCache per
// scheme on a representative workload.
func BenchmarkFig4(b *testing.B) {
	for _, scheme := range []string{"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee", "CacheOnly"} {
		b.Run(scheme, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				base := mustRun(b, cfg, "pagerank", "NoCache")
				res := mustRun(b, cfg, "pagerank", scheme)
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkFig5 regenerates Fig. 5: in-package traffic per scheme.
func BenchmarkFig5(b *testing.B) {
	for _, scheme := range []string{"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee"} {
		b.Run(scheme, func(b *testing.B) {
			var bpi float64
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(), "pagerank", scheme)
				bpi = res.InPkgBPI()
			}
			b.ReportMetric(bpi, "inpkg-B/i")
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6: off-package traffic per scheme.
func BenchmarkFig6(b *testing.B) {
	for _, scheme := range []string{"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee"} {
		b.Run(scheme, func(b *testing.B) {
			var bpi float64
			for i := 0; i < b.N; i++ {
				res := mustRun(b, benchConfig(), "pagerank", scheme)
				bpi = res.OffPkgBPI()
			}
			b.ReportMetric(bpi, "offpkg-B/i")
		})
	}
}

// BenchmarkFig7 regenerates the replacement-policy ablation.
func BenchmarkFig7(b *testing.B) {
	for _, policy := range []string{"Banshee LRU", "Banshee NoSample", "Banshee", "TDC"} {
		b.Run(policy, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				base := mustRun(b, cfg, "pagerank", "NoCache")
				res := mustRun(b, cfg, "pagerank", policy)
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkFig8Latency regenerates Fig. 8b: the in-package latency sweep.
func BenchmarkFig8Latency(b *testing.B) {
	for _, scale := range []float64{1.0, 0.66, 0.50} {
		b.Run(fmt.Sprintf("lat=%.0f%%", scale*100), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.InPkgLatScale = scale
				base := mustRun(b, cfg, "pagerank", "NoCache")
				res := mustRun(b, cfg, "pagerank", "Banshee")
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkFig8Bandwidth regenerates Fig. 8c: the bandwidth sweep.
func BenchmarkFig8Bandwidth(b *testing.B) {
	for _, channels := range []int{8, 4, 2} {
		b.Run(fmt.Sprintf("bw=%dx", channels), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.InPkgChannels = channels
				base := mustRun(b, cfg, "pagerank", "NoCache")
				res := mustRun(b, cfg, "pagerank", "Banshee")
				speedup = banshee.Speedup(res, base)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
	}
}

// BenchmarkFig9 regenerates the sampling-coefficient sweep: miss rate
// and counter traffic.
func BenchmarkFig9(b *testing.B) {
	for _, coeff := range []float64{1, 0.1, 0.01} {
		b.Run(fmt.Sprintf("coeff=%g", coeff), func(b *testing.B) {
			var miss, counterBPI float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme, _ = banshee.ParseScheme("Banshee")
				cfg.Scheme.BansheeSamplingCoeff = coeff
				res := mustRun(b, cfg, "pagerank", "Banshee")
				miss = res.MissRate() * 100
				counterBPI = res.ClassBPI(mem.ClassCounter)
			}
			b.ReportMetric(miss, "miss-%")
			b.ReportMetric(counterBPI, "counter-B/i")
		})
	}
}

// BenchmarkTable5 regenerates the PTE-update cost sweep.
func BenchmarkTable5(b *testing.B) {
	for _, us := range []float64{10, 20, 40} {
		b.Run(fmt.Sprintf("cost=%.0fus", us), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme, _ = banshee.ParseScheme("Banshee")
				cfg.Scheme.PTEUpdateMicros = 0.001
				free := mustRun(b, cfg, "pagerank", "Banshee")
				cfg.Scheme.PTEUpdateMicros = us
				cost := mustRun(b, cfg, "pagerank", "Banshee")
				loss = (float64(cost.Cycles)/float64(free.Cycles) - 1) * 100
			}
			b.ReportMetric(loss, "perf-loss-%")
		})
	}
}

// BenchmarkTable6 regenerates the associativity sweep.
func BenchmarkTable6(b *testing.B) {
	for _, ways := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				cfg.Scheme, _ = banshee.ParseScheme("Banshee")
				cfg.Scheme.BansheeWays = ways
				res := mustRun(b, cfg, "pagerank", "Banshee")
				miss = res.MissRate() * 100
			}
			b.ReportMetric(miss, "miss-%")
		})
	}
}

// BenchmarkLargePages regenerates §5.4.1: 2 MB vs 4 KB pages.
func BenchmarkLargePages(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		small := mustRun(b, cfg, "pagerank", "Banshee")
		cfg.LargePages = true
		large := mustRun(b, cfg, "pagerank", "Banshee 2M")
		gain = (banshee.Speedup(large, small) - 1) * 100
	}
	b.ReportMetric(gain, "2M-gain-%")
}

// BenchmarkBatman regenerates §5.4.2: bandwidth balancing gains.
func BenchmarkBatman(b *testing.B) {
	for _, scheme := range []string{"Alloy 1", "Banshee"} {
		b.Run(scheme, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig()
				plain := mustRun(b, cfg, "pagerank", scheme)
				bal := mustRun(b, cfg, "pagerank", scheme+"+BATMAN")
				gain = (banshee.Speedup(bal, plain) - 1) * 100
			}
			b.ReportMetric(gain, "batman-gain-%")
		})
	}
}

// ---- Micro-benchmarks of the core structures ----

// BenchmarkTagBuffer measures the tag buffer's lookup/insert path — the
// structure on every LLC miss's way through a Banshee MC.
func BenchmarkTagBuffer(b *testing.B) {
	tb := bcore.NewTagBuffer(1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		page := uint64(i) % 4096
		if _, hit := tb.Lookup(page); !hit {
			if !tb.InsertClean(page, true, uint8(i%4)) {
				tb.DrainRemaps()
			}
		}
	}
}

// BenchmarkBansheeAccess measures the full scheme access path
// (mapping resolution + sampled FBR).
func BenchmarkBansheeAccess(b *testing.B) {
	pt := vm.NewPageTable()
	cfg := bcore.DefaultConfig(64 << 20)
	cfg.Seed = 1
	s := bcore.New(cfg, pt, nil, vm.DefaultCostModel(2700))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := mem.Addr(uint64(i*2654435761) % (256 << 20))
		pte := pt.Translate(addr)
		s.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
	}
}

// BenchmarkDRAMAccess measures the channel timing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.InPackageConfig(2700))
	b.ResetTimer()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		a := mem.Addr(uint64(i*2654435761) % (1 << 30))
		d.Access(now, a, 64, i%4 == 0, i%2 == 0)
		now += 10
	}
}

// BenchmarkSRAMCache measures the L-level cache lookup path.
func BenchmarkSRAMCache(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 512 << 10, Ways: 16, LineBytes: 64, Policy: cache.LRU,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Addr(uint64(i*2654435761) % (4 << 20))
		c.Access(a, i%4 == 0, 0)
	}
}

// BenchmarkTraceGen measures workload event generation.
func BenchmarkTraceGen(b *testing.B) {
	w, err := trace.New("pagerank", 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(i % 16)
	}
}

// BenchmarkEndToEnd measures whole-simulation throughput
// (instructions simulated per wall-second is 1/ns-per-op × instr).
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := banshee.DefaultConfig()
		cfg.Cores = 4
		cfg.InstrPerCore = 100_000
		cfg.Seed = uint64(i + 1)
		if _, err := banshee.Run(cfg, "mix1", "Banshee"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGangSweep measures the gang execution engine (DESIGN.md
// §12): the same 8-seed sweep run as 8 independent simulations versus
// one width-8 gang, reporting aggregate simulated memory accesses per
// wall-second. The workload is the triangle-counting kernel (its
// sequential edge scans give the long L1/L2-hit runs the lane batcher
// replays in bulk) under TDC. WarmupFrac is 0 in both arms — the
// benchmark measures engine throughput over the whole run, not a
// warmed measurement window — and both arms share one WorkloadSeed so
// they simulate the identical event streams. The gang arm is the
// headline number: it must sustain ≥2× the independent arm's
// aggregate accesses/sec.
func BenchmarkGangSweep(b *testing.B) {
	const workload, scheme = "tri_count_kernel", "TDC"
	gangCfg := func() banshee.Config {
		cfg := benchConfig()
		cfg.WorkloadSeed = 42
		cfg.WarmupFrac = 0
		return cfg
	}
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	// Build the graph substrate outside the timed regions (it is cached
	// and shared by both arms; a short run forces construction).
	warm := gangCfg()
	warm.InstrPerCore = 1_000
	if _, err := banshee.Run(warm, workload, scheme); err != nil {
		b.Fatal(err)
	}
	b.Run("independent", func(b *testing.B) {
		var accesses uint64
		for i := 0; i < b.N; i++ {
			accesses = 0
			for _, sd := range seeds {
				cfg := gangCfg()
				cfg.Seed = sd
				res, err := banshee.Run(cfg, workload, scheme)
				if err != nil {
					b.Fatal(err)
				}
				accesses += res.L1Accesses
			}
		}
		b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
	})
	b.Run("gang8", func(b *testing.B) {
		var accesses uint64
		for i := 0; i < b.N; i++ {
			g, err := banshee.NewGangSession(gangCfg(), workload, scheme, seeds)
			if err != nil {
				b.Fatal(err)
			}
			res, err := g.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			accesses = 0
			for _, r := range res {
				accesses += r.L1Accesses
			}
		}
		b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
	})
}

// countWriter measures encoded bytes without storing them.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkTraceFileEncode measures trace capture throughput: events
// pre-generated once, encoded per iteration (varint+delta, chunk
// framing, CRC). Reported as MB/s of encoded output plus events/s.
func BenchmarkTraceFileEncode(b *testing.B) {
	const n = 1 << 16
	w, err := trace.New("mcf", 1, 1, trace.WithScale(1.0/16))
	if err != nil {
		b.Fatal(err)
	}
	evs := make([]trace.Event, n)
	for i := range evs {
		evs[i] = w.Next(0)
	}
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw := &countWriter{}
		tw, err := tracefile.NewWriter(cw, tracefile.Meta{Name: "mcf", Cores: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range evs {
			if err := tw.Append(0, ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			b.Fatal(err)
		}
		size = cw.n
	}
	b.SetBytes(size)
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceFileDecode measures replay throughput: a trace encoded
// once, fully decoded per iteration (open, chunk loads, CRC checks,
// varint+delta decode).
func BenchmarkTraceFileDecode(b *testing.B) {
	const n = 1 << 16
	w, err := trace.New("mcf", 1, 1, trace.WithScale(1.0/16))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	tw, err := tracefile.NewWriter(&buf, tracefile.Meta{Name: "mcf", Cores: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tw.Append(0, w.Next(0)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tracefile.NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			r.Next(0)
		}
		if err := r.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTraceFileReplaySim measures an end-to-end replayed
// simulation against the direct synthetic run it must match.
func BenchmarkTraceFileReplaySim(b *testing.B) {
	cfg := benchConfig()
	cfg.InstrPerCore = 100_000
	path := filepath.Join(b.TempDir(), "mcf.btrc")
	err := banshee.RecordTrace(path, "mcf", banshee.RecordOptions{
		Cores: cfg.Cores, Seed: cfg.Seed, EventsPerCore: cfg.InstrPerCore,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, cfg, "mcf", "Banshee")
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, cfg, "file:"+path, "Banshee")
		}
	})
}
