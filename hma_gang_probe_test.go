package banshee_test

import (
	"testing"

	"banshee"
)

func TestHMAGangIdentityProbe(t *testing.T) {
	for _, w := range []string{"mcf", "pagerank_kernel"} {
		cfg := banshee.DefaultConfig()
		cfg.Cores = 4
		cfg.InstrPerCore = 200_000
		cfg.Seed = 42
		cfg.WorkloadSeed = 42
		seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
		g, err := banshee.NewGangSession(cfg, w, "HMA", seeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Run(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			c := cfg
			c.Seed = seed
			want, err := banshee.Run(c, w, "HMA")
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Errorf("%s lane %d (seed %d) diverged\n gang: %+v\n solo: %+v", w, i, seed, got[i], want)
			}
		}
	}
}
