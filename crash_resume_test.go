package banshee_test

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashResumeByteIdentical is the crash-consistency contract,
// proven on the real binary rather than in-process: a sweep SIGKILLed
// mid-flight — no defers, no signal handlers, possibly mid-write —
// leaves a checkpoint that a -resume re-run completes to bytes
// identical to an uninterrupted run's.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// The sweep is sized so a full run takes several seconds: enough
	// jobs that the kill below lands mid-sweep, small enough to finish
	// the golden and resume runs quickly.
	args := []string{"-run", "fig4", "-workloads", "pagerank,lbm", "-instr", "400000"}

	goldenDir := filepath.Join(dir, "golden")
	golden := exec.Command(bin, append(args, "-out", goldenDir)...)
	if out, err := golden.CombinedOutput(); err != nil {
		t.Fatalf("uninterrupted run: %v\n%s", err, out)
	}
	goldenBytes, err := os.ReadFile(filepath.Join(goldenDir, "fig4.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Count(goldenBytes, []byte{'\n'}) != 14 {
		t.Fatalf("golden run wrote %d records, want 14", bytes.Count(goldenBytes, []byte{'\n'}))
	}

	crashDir := filepath.Join(dir, "crash")
	crashFile := filepath.Join(crashDir, "fig4.jsonl")
	crash := exec.Command(bin, append(args, "-out", crashDir)...)
	if err := crash.Start(); err != nil {
		t.Fatal(err)
	}
	// Poll until at least two records hit the disk, then SIGKILL: the
	// process dies with jobs in flight and no chance to clean up.
	deadline := time.Now().Add(30 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(crashFile); err == nil && bytes.Count(b, []byte{'\n'}) >= 2 {
			crash.Process.Signal(syscall.SIGKILL)
			killed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	err = crash.Wait()
	if !killed {
		t.Fatalf("no checkpoint records appeared before the deadline (run err: %v)", err)
	}
	if err == nil {
		t.Log("sweep finished before SIGKILL landed; resume below degrades to a no-op check")
	}
	crashed, err := os.ReadFile(crashFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(crashed) >= len(goldenBytes) && killed && bytes.Equal(crashed, goldenBytes) {
		t.Log("kill landed after the last record; file already complete")
	}

	resume := exec.Command(bin, append(args, "-out", crashDir, "-resume")...)
	if out, err := resume.CombinedOutput(); err != nil {
		t.Fatalf("resume run: %v\n%s", err, out)
	}
	resumed, err := os.ReadFile(crashFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, goldenBytes) {
		t.Fatalf("resumed file differs from uninterrupted run:\n got %d bytes\nwant %d bytes\nfirst divergence near byte %d",
			len(resumed), len(goldenBytes), firstDiff(resumed, goldenBytes))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestKeepGoingCLIExitCode: a sweep whose every job of one workload
// permanently fails (an always-panicking fault workload) still
// completes under -keep-going, exits 1, and points at the ledger.
func TestKeepGoingCLIExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a subprocess")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	build := exec.Command("go", "build", "-o", bin, "./cmd/experiments")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	outDir := filepath.Join(dir, "out")
	cmd := exec.Command(bin, "-run", "fig4", "-instr", "60000",
		// NB: the fault spec must stay comma-free — -workloads splits on
		// commas before the fault kind ever sees the name.
		"-workloads", "pagerank,fault:panic=1:lbm", "-keep-going", "-out", outDir)
	out, err := cmd.CombinedOutput()
	var exit *exec.ExitError
	if err == nil || !errors.As(err, &exit) || exit.ExitCode() != 1 {
		t.Fatalf("want exit code 1, got err=%v\n%s", err, out)
	}
	ledger := filepath.Join(outDir, "fig4.failed.jsonl")
	if !strings.Contains(string(out), "ledger: "+ledger) {
		t.Fatalf("output does not point at the ledger:\n%s", out)
	}
	lb, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatalf("ledger missing: %v", err)
	}
	// All 7 schemes of the panicking workload failed; pagerank's 7 succeeded.
	if got := bytes.Count(lb, []byte{'\n'}); got != 7 {
		t.Fatalf("ledger holds %d failures, want 7", got)
	}
	if !bytes.Contains(lb, []byte(`"panic":true`)) {
		t.Fatalf("ledger lines lack the panic marker:\n%s", lb)
	}
	sb, err := os.ReadFile(filepath.Join(outDir, "fig4.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(sb, []byte{'\n'}); got != 7 {
		t.Fatalf("success stream holds %d records, want pagerank's 7", got)
	}
}
