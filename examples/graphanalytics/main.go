// Graph analytics across DRAM-cache schemes — the workloads the paper's
// introduction motivates (in-package DRAM targets bandwidth-bound graph
// and machine-learning codes). For each graph workload this example
// compares Banshee against the strongest baselines and reports speedup
// over NoCache plus the traffic both DRAMs carried.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"
	"log"

	"banshee"
)

func main() {
	cfg := banshee.DefaultConfig()
	cfg.InstrPerCore = 1_500_000
	cfg.Seed = 7

	schemes := []string{"NoCache", "Alloy 1", "TDC", "Banshee", "CacheOnly"}

	fmt.Printf("%-10s  %-10s  %8s  %6s  %8s  %8s\n",
		"workload", "scheme", "speedup", "MPKI", "in B/i", "off B/i")
	for _, w := range banshee.GraphWorkloads() {
		base, err := banshee.Run(cfg, w, "NoCache")
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range schemes {
			res := base
			if s != "NoCache" {
				res, err = banshee.Run(cfg, w, s)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("%-10s  %-10s  %7.2fx  %6.1f  %8.2f  %8.2f\n",
				w, s, banshee.Speedup(res, base), res.MPKI(),
				res.InPkgBPI(), res.OffPkgBPI())
		}
		fmt.Println()
	}
}
