// Example livestats drives a simulation through the Session API
// instead of the one-shot Run: an OnEpoch hook samples a windowed
// snapshot every epoch, building a live MPKI / DRAM-bandwidth time
// series while the run progresses, and a second run demonstrates
// context cancellation returning the partial measurement window.
//
// This is the observability surface a long sweep or a multi-GB trace
// replay relies on: progress without waiting for the end, per-epoch
// rates instead of one flat average, and ^C that yields numbers
// instead of nothing.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"banshee"
)

// bandwidthGBs converts a window's DRAM bytes to GB/s of simulated
// time: bytes over the window divided by the window's span in seconds
// at the configured core clock.
func bandwidthGBs(bytes, cycles uint64, cpuMHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / (cpuMHz * 1e6)
	return float64(bytes) / seconds / 1e9
}

func main() {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 8
	cfg.InstrPerCore = 500_000
	cfg.Seed = 7

	// --- A full run, sampled every epoch. -------------------------------
	sess, err := banshee.NewSession(cfg, "pagerank", "Banshee")
	if err != nil {
		fmt.Fprintln(os.Stderr, "livestats:", err)
		os.Exit(1)
	}

	var series banshee.Series
	const epochInstr = 250_000 // sample every quarter-million retired instructions
	sess.OnEpoch(epochInstr, func(s banshee.Snapshot) {
		series = append(series, s)
	})

	fmt.Println("live time series (pagerank / Banshee, one row per epoch):")
	fmt.Println("  epoch  phase    retired    MPKI   in-pkg GB/s  off-pkg GB/s")
	res, err := sess.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "livestats:", err)
		os.Exit(1)
	}
	for i, s := range series {
		fmt.Printf("  %5d  %-7s  %8d  %6.2f  %10.1f  %12.1f\n",
			i, s.Phase, s.Retired, s.Window.MPKI(),
			bandwidthGBs(s.Window.InPkg.Total(), s.Window.Cycles, cfg.CPUMHz),
			bandwidthGBs(s.Window.OffPkg.Total(), s.Window.Cycles, cfg.CPUMHz))
	}
	fmt.Printf("final: %d instructions, IPC %.3f, MPKI %.2f\n\n",
		res.Instructions, res.IPC(), res.MPKI())

	// --- Cancellation returns partial stats. ----------------------------
	// Cancel from inside the epoch hook after two samples — standing in
	// for a ^C or a deadline. Run stops at the next step boundary and
	// returns the measurement window accumulated so far alongside an
	// error matching context.Canceled.
	sess2, err := banshee.NewSession(cfg, "pagerank", "Banshee")
	if err != nil {
		fmt.Fprintln(os.Stderr, "livestats:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	samples := 0
	sess2.OnEpoch(epochInstr, func(banshee.Snapshot) {
		if samples++; samples == 2 {
			cancel()
		}
	})
	partial, err := sess2.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "livestats: expected cancellation, got:", err)
		os.Exit(1)
	}
	p := sess2.Progress()
	fmt.Printf("cancelled run: stopped at %d of %d instructions (%.0f%%)\n",
		p.Retired, p.Total, 100*p.Fraction())
	fmt.Printf("partial window: %d instructions, MPKI %.2f (run error: %v)\n",
		partial.Instructions, partial.MPKI(), err)
}
