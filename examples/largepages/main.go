// Large (2 MB) page support (§4.3/§5.4.1): Banshee manages large pages
// with the same PTE/TLB machinery, a smaller sampling coefficient
// (0.001) and a correspondingly scaled replacement threshold. This
// example runs the graph workloads with all data on 2 MB pages and
// compares against 4 KB pages.
//
//	go run ./examples/largepages
package main

import (
	"fmt"
	"log"

	"banshee"
)

func main() {
	cfg := banshee.DefaultConfig()
	cfg.InstrPerCore = 1_200_000
	cfg.Seed = 5

	fmt.Printf("%-10s  %10s  %10s  %9s\n", "workload", "4K cycles", "2M cycles", "2M gain")
	for _, w := range banshee.GraphWorkloads() {
		small, err := banshee.Run(cfg, w, "Banshee")
		if err != nil {
			log.Fatal(err)
		}
		lcfg := cfg
		lcfg.LargePages = true
		large, err := banshee.Run(lcfg, w, "Banshee 2M")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %10d  %10d  %8.1f%%\n",
			w, small.Cycles, large.Cycles, 100*(banshee.Speedup(large, small)-1))
	}
	fmt.Println("\nThe paper reports ~3.6% average gain from better hot-page")
	fmt.Println("detection and fewer counter/PTE updates at 2 MB granularity.")
}
