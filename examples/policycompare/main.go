// Replacement-policy ablation (the paper's Fig. 7 as an application):
// where does Banshee's gain come from? Compare page-granularity LRU
// with replacement on every miss, frequency-based replacement with
// counters updated on every access (CHOP-like), and full Banshee
// (FBR + sampled counters), plus TDC for reference.
//
//	go run ./examples/policycompare
package main

import (
	"fmt"
	"log"

	"banshee"
)

func main() {
	cfg := banshee.DefaultConfig()
	cfg.InstrPerCore = 1_500_000
	cfg.Seed = 11

	workload := "pagerank"
	base, err := banshee.Run(cfg, workload, "NoCache")
	if err != nil {
		log.Fatal(err)
	}

	policies := []string{"Banshee LRU", "Banshee NoSample", "Banshee", "TDC"}
	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("%-18s  %8s  %14s  %10s  %10s\n",
		"policy", "speedup", "cache B/instr", "remaps", "samples")
	for _, p := range policies {
		res, err := banshee.Run(cfg, workload, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %7.2fx  %14.2f  %10d  %10d\n",
			p, banshee.Speedup(res, base), res.InPkgBPI(), res.Remaps, res.CounterSamples)
	}

	fmt.Println("\nExpected shape (paper §5.5.1): LRU replaces on every miss and")
	fmt.Println("burns bandwidth; FBR without sampling pays 2x metadata traffic;")
	fmt.Println("Banshee needs both FBR and sampling for the best performance.")
}
