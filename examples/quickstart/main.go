// Quickstart: simulate one workload under Banshee and print the
// headline metrics. This is the smallest useful program against the
// library's public API (package banshee at the module root).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"banshee"
)

func main() {
	// A default system is the paper's Table 2/3 machine at the library's
	// default scale: 16 cores, 64 MB DRAM cache (4 channels in-package,
	// 1 channel off-package), 4-way Banshee with 10% sampling.
	cfg := banshee.DefaultConfig()
	cfg.InstrPerCore = 1_000_000 // keep the demo quick
	cfg.Seed = 1

	result, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:           %s\n", result.Workload)
	fmt.Printf("scheme:             %s\n", result.Scheme)
	fmt.Printf("instructions:       %d\n", result.Instructions)
	fmt.Printf("cycles:             %d (IPC %.2f)\n", result.Cycles, result.IPC())
	fmt.Printf("DRAM cache MPKI:    %.1f (hit rate %.0f%%)\n", result.MPKI(), 100*(1-result.MissRate()))
	fmt.Printf("in-package  bytes/instr: %.2f\n", result.InPkgBPI())
	fmt.Printf("off-package bytes/instr: %.2f\n", result.OffPkgBPI())
	fmt.Printf("page remaps:        %d (PTE sync rounds: %d)\n", result.Remaps, result.TagBufferFlushes)

	// Compare against the NoCache baseline the paper normalizes to.
	base, err := banshee.Run(cfg, "pagerank", "NoCache")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup vs NoCache: %.2fx\n", banshee.Speedup(result, base))
}
