// Kernel fidelity cross-check: the default graph workloads are
// parametric statistical generators (fast, calibrated); the
// "<name>_kernel" variants walk a real synthetic CSR graph with the
// actual algorithm's access pattern. This example runs both under
// Banshee and the NoCache baseline and compares the metrics that drive
// the paper's conclusions — if the parametric calibration is faithful,
// the two variants should agree on the *shape*: comparable hit rates,
// traffic ratios, and speedups.
//
//	go run ./examples/kernelfidelity
package main

import (
	"fmt"
	"log"

	"banshee"
)

func main() {
	cfg := banshee.DefaultConfig()
	cfg.InstrPerCore = 1_200_000
	cfg.Seed = 3

	pairs := [][2]string{
		{"pagerank", "pagerank_kernel"},
		{"graph500", "graph500_kernel"},
		{"tri_count", "tri_count_kernel"},
	}

	fmt.Printf("%-18s  %8s  %7s  %8s  %8s\n", "workload", "speedup", "hit%", "in B/i", "off B/i")
	for _, pair := range pairs {
		for _, w := range pair {
			base, err := banshee.Run(cfg, w, "NoCache")
			if err != nil {
				log.Fatal(err)
			}
			res, err := banshee.Run(cfg, w, "Banshee")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s  %7.2fx  %6.1f%%  %8.2f  %8.2f\n",
				w, banshee.Speedup(res, base), 100*(1-res.MissRate()),
				res.InPkgBPI(), res.OffPkgBPI())
		}
		fmt.Println()
	}
}
