package banshee_test

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"banshee"
	"banshee/internal/mem"
	"banshee/internal/schemes"
	"banshee/internal/trace"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	cfg.Seed = 9

	base, err := banshee.Run(cfg, "pagerank", "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	res, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if banshee.Speedup(res, base) <= 0 {
		t.Fatal("speedup not positive")
	}
	if res.Scheme != "Banshee" || res.Workload != "pagerank" {
		t.Fatalf("labels lost: %q/%q", res.Scheme, res.Workload)
	}
}

func TestPublicLists(t *testing.T) {
	if len(banshee.Workloads()) != 16 {
		t.Fatalf("Workloads() returned %d names", len(banshee.Workloads()))
	}
	if len(banshee.GraphWorkloads()) != 5 {
		t.Fatalf("GraphWorkloads() returned %d names", len(banshee.GraphWorkloads()))
	}
	for _, s := range banshee.Schemes() {
		if _, err := banshee.ParseScheme(s); err != nil {
			t.Errorf("scheme %q unparseable: %v", s, err)
		}
	}
}

func TestTuningPreservedThroughRun(t *testing.T) {
	// The sweep contract: tuning fields set on cfg.Scheme survive Run's
	// name-based scheme selection (regression test for the sweep-stomp
	// bug).
	cfg := banshee.DefaultConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 250_000
	cfg.Seed = 4
	lo, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme.BansheeSamplingCoeff = 1.0
	hi, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if hi.CounterSamples <= lo.CounterSamples {
		t.Fatalf("sampling coefficient ignored: %d vs %d samples",
			hi.CounterSamples, lo.CounterSamples)
	}
}

// TestRunBatchResume drives the public batch API end to end: a sweep
// streams to JSONL, and a resumed invocation executes zero jobs while
// reproducing the same results.
func TestRunBatchResume(t *testing.T) {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 60_000
	cfg.Seed = 5
	m := banshee.Matrix{
		Name:      "api",
		Base:      cfg,
		Workloads: []string{"pagerank"},
		Schemes:   []string{"NoCache", "Banshee"},
	}
	out := filepath.Join(t.TempDir(), "api.jsonl")
	first, err := banshee.RunBatch(context.Background(), m, banshee.BatchOptions{Out: out})
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 2 {
		t.Fatalf("first run executed %d jobs, want 2", first.Executed)
	}

	var progress bytes.Buffer
	second, err := banshee.RunBatch(context.Background(), m, banshee.BatchOptions{Out: out, Resume: true, Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if second.Executed != 0 || second.Cached != 2 {
		t.Fatalf("resume executed %d / cached %d, want 0/2", second.Executed, second.Cached)
	}
	if !strings.Contains(progress.String(), ", 0 executed") {
		t.Fatalf("summary missing: %s", progress.String())
	}
	a := first.Get("", "pagerank", "Banshee")
	b := second.Get("", "pagerank", "Banshee")
	if a.Cycles != b.Cycles {
		t.Fatalf("resumed result diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// registerAPITest runs once per process: the registry is global, so a
// bare Register in the test body would panic on duplicate kind under
// `go test -count=N`.
var registerAPITest = sync.OnceFunc(func() {
	banshee.RegisterScheme(banshee.SchemeDef{
		Kind:  "apitest",
		Names: []string{"APITest"},
		Parse: func(name string) (banshee.SchemeSpec, bool) {
			if name != "APITest" {
				return banshee.SchemeSpec{}, false
			}
			return banshee.SchemeSpec{Kind: "apitest"}, true
		},
		Build: func(spec banshee.SchemeSpec, env banshee.SchemeEnv) (banshee.CacheScheme, error) {
			return schemes.NewNoCache(), nil
		},
	})
})

// TestRegisterScheme registers an out-of-tree scheme through the public
// API and selects it by name in Run and RunBatch.
func TestRegisterScheme(t *testing.T) {
	registerAPITest()
	found := false
	for _, n := range banshee.RegisteredSchemes() {
		if n == "APITest" {
			found = true
		}
	}
	if !found {
		t.Fatal("APITest missing from RegisteredSchemes")
	}

	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 60_000
	res, err := banshee.Run(cfg, "pagerank", "APITest")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "NoCache" { // the stand-in implementation
		t.Fatalf("unexpected scheme label %q", res.Scheme)
	}
	// The modifier mechanism composes with out-of-tree schemes too.
	if _, err := banshee.Run(cfg, "pagerank", "APITest+BATMAN"); err != nil {
		t.Fatalf("modifier on registered scheme: %v", err)
	}
	rs, err := banshee.RunBatch(context.Background(), banshee.Matrix{
		Name: "apireg", Base: cfg,
		Workloads: []string{"pagerank"}, Schemes: []string{"APITest"},
	}, banshee.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 1 {
		t.Fatalf("batch executed %d, want 1", rs.Executed)
	}
}

func TestTraceCaptureReplayAPI(t *testing.T) {
	// The public capture/replay surface: RecordTrace captures a
	// workload, OpenTrace replays it as a source, and "file:<path>"
	// workload names run through the simulator with bit-identical
	// results to the direct synthetic run.
	path := filepath.Join(t.TempDir(), "gcc.btrc")
	cfg := banshee.DefaultConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 40_000
	cfg.Seed = 11
	err := banshee.RecordTrace(path, "gcc", banshee.RecordOptions{
		Cores: cfg.Cores, Seed: cfg.Seed, EventsPerCore: cfg.InstrPerCore,
	})
	if err != nil {
		t.Fatal(err)
	}

	src, err := banshee.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "gcc" || src.Cores() != 4 {
		t.Fatalf("trace meta: %q/%d", src.Name(), src.Cores())
	}
	if ev := src.Next(0); ev.Addr == 0 {
		t.Fatal("replayed event has zero address")
	}
	if c, ok := src.(io.Closer); ok {
		c.Close()
	} else {
		t.Fatal("trace source is not closeable")
	}

	direct, err := banshee.Run(cfg, "gcc", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := banshee.Run(cfg, "file:"+path, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	replayed.Workload = direct.Workload
	if direct != replayed {
		t.Fatal("replayed run differs from direct run")
	}
}

// apiStubSource is the out-of-tree workload used by the registration test.
type apiStubSource struct{ cores int }

func (s *apiStubSource) Name() string      { return "api-stub" }
func (s *apiStubSource) Cores() int        { return s.cores }
func (s *apiStubSource) Footprint() uint64 { return 8 << 20 }
func (s *apiStubSource) Next(core int) trace.Event {
	return trace.Event{Gap: 9, Addr: mem.Addr((core+1)*mem.PageBytes + 64)}
}

func TestRegisterWorkload(t *testing.T) {
	banshee.RegisterWorkload(banshee.WorkloadDef{
		Kind:  "api-stub",
		Names: func() []string { return []string{"stub:api"} },
		Open: func(name string, cfg banshee.WorkloadConfig) (banshee.WorkloadSource, bool, error) {
			if name != "stub:api" {
				return nil, false, nil
			}
			return &apiStubSource{cores: cfg.Cores}, true, nil
		},
	})
	found := false
	for _, n := range banshee.RegisteredWorkloads() {
		if n == "stub:api" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered workload not listed")
	}
	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 30_000
	st, err := banshee.Run(cfg, "stub:api", "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	if st.L1Accesses == 0 {
		t.Fatal("out-of-tree workload produced no accesses")
	}
}
