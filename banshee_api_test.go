package banshee_test

import (
	"testing"

	"banshee"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 120_000
	cfg.Seed = 9

	base, err := banshee.Run(cfg, "pagerank", "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	res, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if banshee.Speedup(res, base) <= 0 {
		t.Fatal("speedup not positive")
	}
	if res.Scheme != "Banshee" || res.Workload != "pagerank" {
		t.Fatalf("labels lost: %q/%q", res.Scheme, res.Workload)
	}
}

func TestPublicLists(t *testing.T) {
	if len(banshee.Workloads()) != 16 {
		t.Fatalf("Workloads() returned %d names", len(banshee.Workloads()))
	}
	if len(banshee.GraphWorkloads()) != 5 {
		t.Fatalf("GraphWorkloads() returned %d names", len(banshee.GraphWorkloads()))
	}
	for _, s := range banshee.Schemes() {
		if _, err := banshee.ParseScheme(s); err != nil {
			t.Errorf("scheme %q unparseable: %v", s, err)
		}
	}
}

func TestTuningPreservedThroughRun(t *testing.T) {
	// The sweep contract: tuning fields set on cfg.Scheme survive Run's
	// name-based scheme selection (regression test for the sweep-stomp
	// bug).
	cfg := banshee.DefaultConfig()
	cfg.Cores = 4
	cfg.InstrPerCore = 250_000
	cfg.Seed = 4
	lo, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme.BansheeSamplingCoeff = 1.0
	hi, err := banshee.Run(cfg, "pagerank", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if hi.CounterSamples <= lo.CounterSamples {
		t.Fatalf("sampling coefficient ignored: %d vs %d samples",
			hi.CounterSamples, lo.CounterSamples)
	}
}
