// Gang-execution contract tests (DESIGN.md §12): a width-8 gang must
// produce byte-identical per-lane statistics to the same configs run
// independently, across scheme families and workload kinds; the lanes
// must share one workload substrate build instead of N; and ineligible
// configurations must be rejected up front with the reason.
package banshee_test

import (
	"encoding/json"
	"strings"
	"testing"

	"banshee"
	"banshee/internal/graph"
)

const gangWidth = 8

// gangSeeds is the per-lane seed axis: distinct seeds so every lane's
// back end (L3 hashing, scheme tie-breaks, DRAM arbitration jitter)
// diverges while the front-end stream stays shared via WorkloadSeed.
func gangSeeds() []uint64 {
	seeds := make([]uint64, gangWidth)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

func gangConfig() banshee.Config {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 60_000
	cfg.Seed = 42
	cfg.WorkloadSeed = 42 // all lanes share this stream
	return cfg
}

// TestGangLaneIdentity is the core gang guarantee: a width-8 gang's
// per-lane stats.Sim must be byte-identical to 8 independent runs of
// the same configs, across ≥3 scheme families × 2 workload kinds (a
// parametric SPEC profile and a graph-kernel workload). The default
// WarmupFrac stays on, so each lane's warmup→measure transition is
// exercised at its own pace inside the lockstep gang.
func TestGangLaneIdentity(t *testing.T) {
	schemes := []string{"NoCache", "Alloy 1", "TDC", "Unison"}
	workloads := []string{"mcf", "pagerank_kernel"}
	for _, scheme := range schemes {
		for _, w := range workloads {
			t.Run(scheme+"/"+w, func(t *testing.T) {
				g, err := banshee.NewGangSession(gangConfig(), w, scheme, gangSeeds())
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.Run(t.Context())
				if err != nil {
					t.Fatal(err)
				}
				for i, seed := range gangSeeds() {
					cfg := gangConfig()
					cfg.Seed = seed
					want, err := banshee.Run(cfg, w, scheme)
					if err != nil {
						t.Fatal(err)
					}
					if got[i] != want {
						t.Errorf("lane %d (seed %d) diverged from independent run\n gang: %+v\n solo: %+v",
							i, seed, got[i], want)
						continue
					}
					// The comparable-struct equality above implies JSON
					// equality; pin the byte-identity claim explicitly
					// anyway, since the batch sink stores JSON.
					gj, _ := json.Marshal(got[i])
					wj, _ := json.Marshal(want)
					if string(gj) != string(wj) {
						t.Errorf("lane %d JSON differs:\n gang: %s\n solo: %s", i, gj, wj)
					}
				}
			})
		}
	}
}

// TestGangSharedSubstrateBuild: the lanes of a gang share one workload
// source, so a graph-kernel gang builds its graph substrate exactly
// once — not once per lane. The workload seed is unique to this test
// so the substrate cache cannot serve a graph built elsewhere.
func TestGangSharedSubstrateBuild(t *testing.T) {
	cfg := gangConfig()
	cfg.WorkloadSeed = 0x6a6e9137 // unique stream → guaranteed cache miss
	before := graph.Builds()
	g, err := banshee.NewGangSession(cfg, "pagerank_kernel", "Alloy 1", gangSeeds())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if built := graph.Builds() - before; built != 1 {
		t.Fatalf("width-%d gang built the graph substrate %d times, want 1", g.Width(), built)
	}
}

// TestGangRejectsIneligible: configurations the lockstep replay cannot
// honor must fail at construction with the disqualifying reason, not
// silently diverge.
func TestGangRejectsIneligible(t *testing.T) {
	// Banshee rewrites PTEs and issues TLB shootdowns through the VM
	// substrate the lanes would have to share.
	if _, err := banshee.NewGangSession(gangConfig(), "mcf", "Banshee", gangSeeds()); err == nil ||
		!strings.Contains(err.Error(), "gang-safe") {
		t.Fatalf("Banshee gang: got %v, want a not-gang-safe error", err)
	}
	// Prefetch issue decisions depend on per-lane core clocks.
	cfg := gangConfig()
	cfg.PrefetchDegree = 2
	if _, err := banshee.NewGangSession(cfg, "mcf", "Alloy 1", gangSeeds()); err == nil ||
		!strings.Contains(err.Error(), "Prefetch") {
		t.Fatalf("prefetch gang: got %v, want a prefetch-ineligibility error", err)
	}
}
