// Command bansheesim runs one workload under one DRAM-cache scheme and
// prints the headline statistics: cycles, IPC, DRAM-cache MPKI and miss
// rate, and the in-/off-package traffic breakdown by class.
//
// The run is a cancellable session: SIGINT/SIGTERM stop it at the next
// step boundary and the statistics accumulated so far are printed
// (marked as partial) before exiting non-zero. With -epoch N a live
// MPKI/bandwidth sample is printed every N retired instructions, and
// -timeout deadlines the whole run. Exit codes distinguish the
// outcomes: 0 clean, 1 error, 124 deadline exceeded (partial stats
// printed), 130 interrupted (partial stats printed).
//
// Usage:
//
//	bansheesim -workload pagerank -scheme Banshee
//	bansheesim -workload lbm -scheme "Alloy 0.1" -instr 2000000
//	bansheesim -workload pagerank -scheme Banshee -epoch 500000
//	bansheesim -workload mix1 -scheme Banshee -cpuprofile sim.prof
//	bansheesim -workload mcf -scheme "Alloy 1" -gang 1,2,3,4
//
// The -cpuprofile/-memprofile flags write pprof profiles of the run so
// the PERFORMANCE.md methodology applies to the shipped binary, not
// only the test harness: `go tool pprof bansheesim sim.prof`.
//
// With -gang a comma-separated seed list runs as lanes of one lockstep
// gang over a shared front end (gang-safe schemes only — every
// built-in except Banshee; see DESIGN.md §12); each lane's printed
// stats are byte-identical to an independent -seed run of that seed
// with WorkloadSeed pinned.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"banshee/internal/fault" // also registers the "fault:" chaos workload kind
	"banshee/internal/mem"
	"banshee/internal/obs"
	"banshee/internal/sim"
	"banshee/internal/stats"
	wl "banshee/internal/workload"
)

// main defers to run so profile-flushing defers survive the non-zero
// exit paths (os.Exit skips deferred functions).
func main() {
	os.Exit(run())
}

func run() int {
	var (
		workload  = flag.String("workload", "pagerank", "workload name (see -list)")
		scheme    = flag.String("scheme", "Banshee", `scheme display name ("NoCache", "Unison", "TDC", "Alloy 1", "Alloy 0.1", "HMA", "Banshee", "Banshee LRU", "Banshee NoSample", "Banshee 2M", "CacheOnly"; append "+BATMAN" to balance bandwidth)`)
		instr     = flag.Uint64("instr", 0, "instructions per core (0 = default)")
		cores     = flag.Int("cores", 0, "core count (0 = default 16)")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		large     = flag.Bool("largepages", false, "back all data with 2 MB pages")
		epoch     = flag.Uint64("epoch", 0, "print a live sample every N retired instructions (0 = off)")
		timeout   = flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none); partial stats print on expiry")
		gang      = flag.String("gang", "", "comma-separated seeds to run as one lockstep gang (gang-safe schemes only); per-lane stats print at the end")
		list      = flag.Bool("list", false, "list workloads and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		metrics   = flag.String("metrics", "", "serve live telemetry over HTTP on this address (e.g. :6060): /metrics, /debug/vars, /debug/pprof")
		trFile    = flag.String("tracefile", "", "write the run's timeline as Chrome trace_event JSON to this file")
		epochJSON = flag.Bool("epoch-json", false, "with -epoch, emit each sample as one JSON object per line on stdout instead of the human stderr line")
	)
	flag.Parse()

	if *epochJSON && *epoch == 0 {
		fmt.Fprintln(os.Stderr, "bansheesim: -epoch-json requires -epoch")
		return 1
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bansheesim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bansheesim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bansheesim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bansheesim:", err)
			}
		}()
	}

	if *list {
		for _, n := range wl.Names() {
			fmt.Println(n)
		}
		return 0
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		reg.RegisterRuntime()
		fault.Instrument(reg) // chaos workloads: how many failures were synthetic
		srv, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bansheesim:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bansheesim: serving telemetry on http://%s/metrics\n", srv.Addr())
	}
	var tracer *obs.Tracer
	if *trFile != "" {
		tracer = obs.NewTracer()
		tracer.NameThread(0, "session")
		defer func() {
			if err := tracer.WriteFile(*trFile); err != nil {
				fmt.Fprintln(os.Stderr, "bansheesim:", err)
			}
		}()
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.LargePages = *large
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}
	if *cores > 0 {
		cfg.Cores = *cores
	} else if strings.HasPrefix(*workload, wl.FilePrefix) {
		cfg.Cores = 0 // adopt the recording's core count
	}

	// An interrupt cancels the run context: the session stops at its
	// next step boundary and returns the partial window, so a ^C still
	// reports what was measured instead of discarding the run. A
	// -timeout deadline lands the same way but exits 124, so scripts
	// can tell a stuck run from an interrupted one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *gang != "" {
		return runGang(ctx, cfg, *workload, *scheme, *gang, *timeout, reg, tracer)
	}

	sess, err := sim.NewSession(cfg, *workload, *scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bansheesim:", err)
		return 1
	}

	// A Session has one epoch hook, so every consumer — human stderr
	// line, -epoch-json stream, metric sampler, trace instants — joins
	// one composite callback at a shared interval.
	var sampler *sim.Sampler
	var onEpoch []func(stats.Snapshot)
	if *epoch > 0 && !*epochJSON {
		onEpoch = append(onEpoch, func(s stats.Snapshot) {
			fmt.Fprintf(os.Stderr, "[%s] %5.1f%%  MPKI %6.2f  in-pkg B/i %6.3f  off-pkg B/i %6.3f\n",
				s.Phase, 100*float64(s.Retired)/float64(sess.Progress().Total),
				s.Window.MPKI(), s.Window.InPkgBPI(), s.Window.OffPkgBPI())
		})
	}
	if *epochJSON {
		enc := json.NewEncoder(os.Stdout)
		onEpoch = append(onEpoch, func(s stats.Snapshot) {
			rec := epochRecord{Retired: s.Retired, Cycles: s.Cycles, Phase: s.Phase.String(),
				MPKI: s.Window.MPKI(), IPC: s.Window.IPC(), DCHitRate: 1 - s.Window.MissRate(),
				InPkgBPI: s.Window.InPkgBPI(), OffPkgBPI: s.Window.OffPkgBPI()}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "bansheesim: -epoch-json:", err)
			}
		})
	}
	if reg != nil {
		sampler = sim.NewSampler(reg)
		sampler.Bind(sess)
		onEpoch = append(onEpoch, sampler.Sample)
	}
	if tracer != nil {
		onEpoch = append(onEpoch, func(s stats.Snapshot) {
			tracer.Instant(fmt.Sprintf("epoch @%d", s.Retired), 0, "phase", s.Phase.String())
		})
	}
	if len(onEpoch) > 0 {
		every := *epoch
		if every == 0 {
			every = 1 << 21 // -metrics/-tracefile without -epoch: sample at a sane default
		}
		sess.OnEpoch(every, func(s stats.Snapshot) {
			for _, f := range onEpoch {
				f(s)
			}
		})
	}

	runStart := time.Duration(0)
	if tracer != nil {
		runStart = tracer.Clock()
	}
	st, err := sess.Run(ctx)
	if tracer != nil {
		state := "done"
		if err != nil {
			state = "partial"
		}
		tracer.Span(fmt.Sprintf("run %s/%s", *workload, *scheme), 0, runStart, "state", state)
	}
	if sampler != nil {
		// Fold exactly the stats the report below prints, so the exposed
		// totals match the CLI's own output even for a partial run.
		sampler.Finish(st)
	}
	code := 0
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		p := sess.Progress()
		fmt.Fprintf(os.Stderr, "bansheesim: deadline (%s) exceeded at %d of %d instructions (%.0f%%); stats below are partial\n",
			*timeout, p.Retired, p.Total, 100*p.Fraction())
		code = 124 // conventional timeout(1) exit
	case errors.Is(err, context.Canceled):
		p := sess.Progress()
		fmt.Fprintf(os.Stderr, "bansheesim: interrupted at %d of %d instructions (%.0f%%); stats below are partial\n",
			p.Retired, p.Total, 100*p.Fraction())
		code = 130 // conventional 128+SIGINT
	default:
		fmt.Fprintln(os.Stderr, "bansheesim:", err)
		return 1
	}

	// With -epoch-json, stdout is the machine-readable stream; the human
	// report moves to stderr so consumers can pipe the JSONL directly.
	out := io.Writer(os.Stdout)
	if *epochJSON {
		out = os.Stderr
	}
	report(out, st, code != 0)
	return code
}

// epochRecord is one -epoch-json line: the sample's position plus the
// measure-window rates of the epoch that ended at it.
type epochRecord struct {
	Retired   uint64  `json:"retired"`
	Cycles    uint64  `json:"cycles"`
	Phase     string  `json:"phase"`
	MPKI      float64 `json:"mpki"`
	IPC       float64 `json:"ipc"`
	DCHitRate float64 `json:"dc_hit_rate"`
	InPkgBPI  float64 `json:"in_pkg_bpi"`
	OffPkgBPI float64 `json:"off_pkg_bpi"`
}

// runGang runs one lane per seed in lockstep over a shared front end
// and reports each lane's statistics — every lane is byte-identical to
// an independent run with the same Seed and WorkloadSeed (pinned to
// -seed here so all lanes share the stream). With -metrics the lanes'
// final stats fold into the sim totals; with -tracefile the gang run is
// one span.
func runGang(ctx context.Context, cfg sim.Config, workload, scheme, seedList string, timeout time.Duration, reg *obs.Registry, tracer *obs.Tracer) int {
	var seeds []uint64
	for _, s := range strings.Split(seedList, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bansheesim: -gang:", err)
			return 1
		}
		seeds = append(seeds, v)
	}
	g, err := sim.NewGangSeeds(cfg, workload, scheme, seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bansheesim:", err)
		return 1
	}
	runStart := time.Duration(0)
	if tracer != nil {
		runStart = tracer.Clock()
	}
	results, err := g.Run(ctx)
	if tracer != nil {
		state := "done"
		if err != nil {
			state = "partial"
		}
		tracer.Span(fmt.Sprintf("gang ×%d %s/%s", len(seeds), workload, scheme), 0, runStart, "state", state)
	}
	if reg != nil {
		for _, st := range results {
			sim.NewSampler(reg).Finish(st)
		}
	}
	code := 0
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		p := g.Progress()
		fmt.Fprintf(os.Stderr, "bansheesim: deadline (%s) exceeded at %d of %d gang instructions; stats below are partial\n",
			timeout, p.Retired, p.Total)
		code = 124
	case errors.Is(err, context.Canceled):
		p := g.Progress()
		fmt.Fprintf(os.Stderr, "bansheesim: interrupted at %d of %d gang instructions; stats below are partial\n",
			p.Retired, p.Total)
		code = 130
	default:
		fmt.Fprintln(os.Stderr, "bansheesim:", err)
		return 1
	}
	for i, st := range results {
		fmt.Printf("--- lane %d (seed %d) ---\n", i, seeds[i])
		report(os.Stdout, st, code != 0)
	}
	return code
}

func report(w io.Writer, st stats.Sim, partial bool) {
	note := ""
	if partial {
		note = "  (partial)"
	}
	fmt.Fprintf(w, "workload      %s%s\n", st.Workload, note)
	fmt.Fprintf(w, "scheme        %s\n", st.Scheme)
	fmt.Fprintf(w, "instructions  %d\n", st.Instructions)
	fmt.Fprintf(w, "cycles        %d\n", st.Cycles)
	fmt.Fprintf(w, "IPC           %.3f\n", st.IPC())
	fmt.Fprintf(w, "LLC misses    %d (evictions %d)\n", st.LLCMisses, st.LLCEvictions)
	fmt.Fprintf(w, "avg miss lat  %.0f cycles\n", st.AvgMissLat())
	fmt.Fprintf(w, "DC hit rate   %.1f%%  (MPKI %.2f)\n", 100*(1-st.MissRate()), st.MPKI())
	fmt.Fprintf(w, "in-pkg  B/i   %.3f\n", st.InPkgBPI())
	for _, c := range mem.Classes() {
		if st.InPkg.Bytes[c] > 0 {
			fmt.Fprintf(w, "  %-12s%.3f\n", c, float64(st.InPkg.Bytes[c])/float64(st.Instructions))
		}
	}
	fmt.Fprintf(w, "off-pkg B/i   %.3f\n", st.OffPkgBPI())
	if st.TagBufferFlushes > 0 {
		fmt.Fprintf(w, "tag-buffer flushes %d (shootdowns %d)\n", st.TagBufferFlushes, st.TLBShootdowns)
	}
	if st.Remaps > 0 {
		fmt.Fprintf(w, "remaps        %d\n", st.Remaps)
	}
}
