// Command bansheesim runs one workload under one DRAM-cache scheme and
// prints the headline statistics: cycles, IPC, DRAM-cache MPKI and miss
// rate, and the in-/off-package traffic breakdown by class.
//
// Usage:
//
//	bansheesim -workload pagerank -scheme Banshee
//	bansheesim -workload lbm -scheme "Alloy 0.1" -instr 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"banshee/internal/mem"
	"banshee/internal/sim"
	wl "banshee/internal/workload"
)

func main() {
	var (
		workload = flag.String("workload", "pagerank", "workload name (see -list)")
		scheme   = flag.String("scheme", "Banshee", `scheme display name ("NoCache", "Unison", "TDC", "Alloy 1", "Alloy 0.1", "HMA", "Banshee", "Banshee LRU", "Banshee NoSample", "Banshee 2M", "CacheOnly"; append "+BATMAN" to balance bandwidth)`)
		instr    = flag.Uint64("instr", 0, "instructions per core (0 = default)")
		cores    = flag.Int("cores", 0, "core count (0 = default 16)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		large    = flag.Bool("largepages", false, "back all data with 2 MB pages")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range wl.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = *seed
	cfg.LargePages = *large
	if *instr > 0 {
		cfg.InstrPerCore = *instr
	}
	if *cores > 0 {
		cfg.Cores = *cores
	} else if strings.HasPrefix(*workload, wl.FilePrefix) {
		cfg.Cores = 0 // adopt the recording's core count
	}

	st, err := sim.Run(cfg, *workload, *scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bansheesim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload      %s\n", st.Workload)
	fmt.Printf("scheme        %s\n", st.Scheme)
	fmt.Printf("instructions  %d\n", st.Instructions)
	fmt.Printf("cycles        %d\n", st.Cycles)
	fmt.Printf("IPC           %.3f\n", st.IPC())
	fmt.Printf("LLC misses    %d (evictions %d)\n", st.LLCMisses, st.LLCEvictions)
	fmt.Printf("avg miss lat  %.0f cycles\n", st.AvgMissLat())
	fmt.Printf("DC hit rate   %.1f%%  (MPKI %.2f)\n", 100*(1-st.MissRate()), st.MPKI())
	fmt.Printf("in-pkg  B/i   %.3f\n", st.InPkgBPI())
	for _, c := range mem.Classes() {
		if st.InPkg.Bytes[c] > 0 {
			fmt.Printf("  %-12s%.3f\n", c, float64(st.InPkg.Bytes[c])/float64(st.Instructions))
		}
	}
	fmt.Printf("off-pkg B/i   %.3f\n", st.OffPkgBPI())
	if st.TagBufferFlushes > 0 {
		fmt.Printf("tag-buffer flushes %d (shootdowns %d)\n", st.TagBufferFlushes, st.TLBShootdowns)
	}
	if st.Remaps > 0 {
		fmt.Printf("remaps        %d\n", st.Remaps)
	}
}
