// Command benchjson turns `go test -bench` output into a stable,
// machine-readable JSON trajectory and diffs two such files with a
// tolerance gate, so the repository can track its own performance the
// way it tracks correctness.
//
// Capture (reads the benchmark text from stdin):
//
//	go test -run '^$' -bench BenchmarkEndToEnd -benchmem . | benchjson -sha $(git rev-parse --short HEAD) > BENCH_6.json
//
// Captured files are stamped with the capture environment (Go version,
// GOMAXPROCS, and the -sha value) so a committed baseline records what
// produced it. Both the stamped object format and the bare entry-array
// format of older baselines load for -diff.
//
// Gate (exit 1 when any shared benchmark drifts past the tolerance;
// flags precede the two file arguments):
//
//	benchjson -diff -tol 0.2 -metric allocs BENCH_5.json new.json
//
// The -metric flag picks what the gate compares: "allocs" (default in
// CI — allocations per op are hardware-independent, so the committed
// baseline is meaningful on any runner), "ns", or "all". Time
// comparisons only mean something against a baseline captured on the
// same hardware; see PERFORMANCE.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// File is a captured benchmark trajectory: the entries plus the
// environment that produced them.
type File struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GitSHA     string  `json:"git_sha,omitempty"`
	Entries    []Entry `json:"entries"`
}

// Entry is one benchmark's measurements. MBPerOp is allocated megabytes
// (B/op ÷ 1e6), matching the B/op column of -benchmem.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerOp     float64 `json:"mb_per_op"`
	// Extra holds benchmark-specific b.ReportMetric units (e.g. the gang
	// engine's accesses/s) verbatim; informational, never gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches "BenchmarkX[-P] <iters> <pairs...>"; the -P
// GOMAXPROCS suffix is stripped so names compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)

func parse(r *bufio.Scanner) ([]Entry, error) {
	var out []Entry
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q for %s", fields[i], e.Name)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "B/op":
				e.MBPerOp = v / 1e6
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[fields[i+1]] = v
			}
		}
		out = append(out, e)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// load reads either format: a stamped File object (current capture
// output) or a bare Entry array (pre-stamp baselines).
func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Entry
	if err := json.Unmarshal(data, &list); err != nil {
		var f File
		if err2 := json.Unmarshal(data, &f); err2 != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		list = f.Entries
	}
	m := make(map[string]Entry, len(list))
	for _, e := range list {
		m[e.Name] = e
	}
	return m, nil
}

// drift returns the relative deviation of new from old, with a floor of
// 1 on the denominator so zero baselines (0 allocs/op) gate on absolute
// change instead of dividing by zero.
func drift(old, new float64) float64 {
	return math.Abs((new - old) / max(old, 1))
}

func diff(oldPath, newPath string, tol float64, metric string) int {
	oldM, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newM, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	names := make([]string, 0, len(oldM))
	for n := range oldM {
		names = append(names, n)
	}
	sort.Strings(names)
	rc := 0
	for _, n := range names {
		o := oldM[n]
		e, ok := newM[n]
		if !ok {
			fmt.Printf("MISSING %-40s in %s\n", n, newPath)
			rc = 1
			continue
		}
		check := func(what string, ov, nv float64) {
			d := drift(ov, nv)
			status := "ok     "
			if d > tol {
				status = "DRIFT  "
				rc = 1
			}
			fmt.Printf("%s %-40s %-9s %12.2f -> %12.2f  (%+.1f%%)\n", status, n, what, ov, nv, 100*(nv-ov)/max(ov, 1))
		}
		if metric == "allocs" || metric == "all" {
			check("allocs/op", o.AllocsPerOp, e.AllocsPerOp)
		}
		if metric == "ns" || metric == "all" {
			check("ns/op", o.NsPerOp, e.NsPerOp)
		}
	}
	// Benchmarks only in the new run have no baseline to gate against;
	// fail so the baseline gets refreshed instead of silently un-gating
	// them.
	extras := make([]string, 0)
	for n := range newM {
		if _, ok := oldM[n]; !ok {
			extras = append(extras, n)
		}
	}
	sort.Strings(extras)
	for _, n := range extras {
		fmt.Printf("EXTRA   %-40s not in %s — refresh the baseline\n", n, oldPath)
		rc = 1
	}
	return rc
}

func main() {
	var (
		diffMode = flag.Bool("diff", false, "compare two BENCH json files: benchjson -diff old.json new.json")
		tol      = flag.Float64("tol", 0.2, "relative tolerance for -diff")
		metric   = flag.String("metric", "allocs", "what -diff gates on: allocs, ns, or all")
		sha      = flag.String("sha", "", "git commit SHA to stamp into the captured file")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-tol 0.2] [-metric allocs|ns|all] old.json new.json")
			os.Exit(2)
		}
		os.Exit(diff(flag.Arg(0), flag.Arg(1), *tol, *metric))
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	entries, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	f := File{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA: *sha, Entries: entries}
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Println(string(out))
}
