// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5). Each -run target prints a paper-style table;
// "all" runs the full suite in order. See DESIGN.md §4 for the
// experiment index and the paper-vs-measured caveats.
//
// With -out the underlying batch engine streams every simulation
// result to one JSONL file per experiment matrix in that directory, and
// -resume skips jobs whose results are already there — so a killed
// suite re-invoked with the same flags completes without re-simulating
// finished jobs.
//
// An interrupted suite (SIGINT/SIGTERM) cancels the run context: the
// batch engine drains its workers without writing partial results, so
// each matrix's JSONL file in -out is a clean prefix that a re-run with
// -resume completes byte-identically.
//
// Jobs run supervised: -retries/-job-timeout bound each job, and
// -keep-going completes a suite past permanently failed jobs, streaming
// them to one "<matrix>.failed.jsonl" ledger per matrix in -out and
// rendering the affected figure cells as zero-valued holes. Failed jobs
// are absent from the success stream, so a -resume re-run retries them.
// The "fault:<spec>:<inner>" workload names inject deterministic
// source-level chaos for testing that machinery.
//
// With -gang N the batch engine executes up to N gang-eligible jobs of
// a matrix (same workload stream and scheme kind, differing only by
// seed or back-end knobs — see DESIGN.md §12) as one lockstep gang;
// every output file stays byte-identical to an ungrouped run.
//
// With -remote ADDR each matrix is submitted to a running sweepd
// daemon instead of simulated locally: the daemon executes the jobs
// (sharded across its attached workers), streams back records
// byte-identical to a local run, and the tables render from them as
// usual. Submission is idempotent — a ^C only detaches this client;
// the sweeps continue server-side, observable with sweepctl, and a
// re-run with the same flags reattaches and completes from whatever
// already finished.
//
// The -cpuprofile/-memprofile flags write pprof profiles of the suite
// (same contract as bansheesim's): `go tool pprof experiments cpu.prof`.
//
// Exit codes: 0 clean, 1 on error or when any job permanently failed
// (the ledger paths are printed), 130 when interrupted.
//
// Usage:
//
//	experiments -run fig4
//	experiments -run all -instr 2000000
//	experiments -run fig5 -workloads pagerank,lbm,mcf
//	experiments -run all -out results/ -resume -v
//	experiments -run fig8 -gang 8 -cpuprofile cpu.prof
//	experiments -run table6 -workloads "pagerank,fault:panic=1:lbm" -keep-going -retries 3 -out results/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"banshee/internal/exp"
	"banshee/internal/fault" // also registers the "fault:" chaos workload kind
	"banshee/internal/obs"
	"banshee/internal/runner"
)

// main defers to run so profile-flushing defers survive the non-zero
// exit paths (os.Exit skips deferred functions).
func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		target     = flag.String("run", "all", "experiment: table1|fig4|fig5|fig6|fig7|fig8|fig9|table5|table6|largepage|batman|all")
		instr      = flag.Uint64("instr", 0, "instructions per core (0 = default)")
		seed       = flag.Uint64("seed", 42, "base seed")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: the paper's 16)")
		verbose    = flag.Bool("v", false, "print per-run progress")
		intensity  = flag.Float64("intensity", 0, "memory-intensity multiplier (0 = default)")
		out        = flag.String("out", "", "directory for streaming JSONL results (one file per matrix)")
		resume     = flag.Bool("resume", false, "skip jobs whose results are already in -out")
		keepGoing  = flag.Bool("keep-going", false, "complete sweeps past failed jobs (ledger + partial figures) instead of aborting")
		retries    = flag.Int("retries", 1, "attempts per job (retries with backoff after the first)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job-attempt deadline (0 = none)")
		gang       = flag.Int("gang", 0, "run up to N gang-eligible jobs as one lockstep gang (0 = off)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the suite to this file")
		memProf    = flag.String("memprofile", "", "write an allocation profile at exit to this file")
		remote     = flag.String("remote", "", "submit matrices to the sweepd daemon at this address instead of running locally")
		metrics    = flag.String("metrics", "", "serve live sweep telemetry over HTTP on this address (e.g. :6060): /metrics, /debug/vars, /debug/pprof")
		traceFile  = flag.String("tracefile", "", "write the suite's sweep timeline as Chrome trace_event JSON to this file")
		progEvery  = flag.Duration("progress-every", 0, "with -v, replace per-job lines with one summary line per interval (0 = per-job lines)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	// An interrupt cancels every in-flight simulation through the
	// options context; exp.run surfaces the cancellation as an
	// exp.ErrCancelled panic which is recovered below into a clean,
	// resumable exit (130) instead of a stack trace. Any other error
	// the experiment layer surfaces exits 1 with the message alone —
	// only non-error panics (bugs) keep their stack trace.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := exp.Options{Ctx: ctx, Instr: *instr, Seed: *seed, Intensity: *intensity,
		Out: *out, Resume: *resume, KeepGoing: *keepGoing, JobTimeout: *jobTimeout,
		GangWidth: *gang, Remote: *remote,
		Retry: runner.RetryPolicy{MaxAttempts: *retries, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}}
	if *resume && *out == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -out")
		return 1
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		reg.RegisterRuntime()
		fault.Instrument(reg) // chaos runs: how many failures were synthetic
		srv, err := obs.Serve(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: serving telemetry on http://%s/metrics\n", srv.Addr())
		o.Metrics = reg
	}
	if *traceFile != "" {
		o.Tracer = obs.NewTracer()
		defer func() {
			if err := o.Tracer.WriteFile(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	o.ProgressEvery = *progEvery

	// Permanently failed jobs, collected across matrices so the suite
	// can finish its figures before reporting the holes.
	type failedMatrix struct {
		name, ledger string
		count        int
	}
	var failedMatrices []failedMatrix
	o.OnFailures = func(matrix string, failed []runner.Record, ledger string) {
		failedMatrices = append(failedMatrices, failedMatrix{matrix, ledger, len(failed)})
	}

	defer func() {
		if r := recover(); r != nil {
			err, ok := r.(error)
			if !ok {
				panic(r)
			}
			if errors.Is(err, exp.ErrCancelled) {
				stop()
				switch {
				case *remote != "":
					fmt.Fprintf(os.Stderr, "experiments: interrupted; submitted sweeps continue server-side on %s — watch them with `sweepctl -addr %s list` / `sweepctl stream`, or re-run with the same flags to reattach\n", *remote, *remote)
				case *out != "":
					fmt.Fprintln(os.Stderr, "experiments: interrupted; results so far are a clean prefix — re-run with -resume to complete")
				default:
					fmt.Fprintln(os.Stderr, "experiments: interrupted")
				}
				code = 130
				return
			}
			fmt.Fprintln(os.Stderr, "experiments:", err)
			code = 1
			return
		}
		if len(failedMatrices) > 0 {
			for _, fm := range failedMatrices {
				if fm.ledger != "" {
					fmt.Fprintf(os.Stderr, "experiments: %d job(s) failed in matrix %s; ledger: %s\n", fm.count, fm.name, fm.ledger)
				} else {
					fmt.Fprintf(os.Stderr, "experiments: %d job(s) failed in matrix %s\n", fm.count, fm.name)
				}
			}
			fmt.Fprintln(os.Stderr, "experiments: affected figure cells are zero-valued holes; re-run with -resume to retry failed jobs")
			code = 1
		}
	}()
	if *verbose {
		o.Progress = os.Stderr
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}

	targets := map[string]func(exp.Options){
		"table1": func(exp.Options) { fmt.Println(exp.Table1()) },
		"fig4": func(o exp.Options) {
			r := exp.Fig4(o)
			fmt.Println(r.Table())
			for base, gain := range r.BansheeGains() {
				fmt.Printf("Banshee vs %-10s %+.1f%%\n", base+":", 100*gain)
			}
			fmt.Println()
		},
		"fig5": func(o exp.Options) {
			r := exp.Traffic(o)
			fmt.Println(r.InPkgTable())
			avg := r.AvgInPkg()
			fmt.Printf("average in-package traffic (B/instr):")
			for _, s := range r.Schemes {
				fmt.Printf("  %s=%.2f", s, avg[s])
			}
			fmt.Println()
			fmt.Println()
		},
		"fig6": func(o exp.Options) {
			r := exp.Traffic(o)
			fmt.Println(r.OffPkgTable())
		},
		"traffic": func(o exp.Options) {
			r := exp.Traffic(o)
			fmt.Println(r.InPkgTable())
			avg := r.AvgInPkg()
			fmt.Printf("average in-package traffic (B/instr):")
			for _, s := range r.Schemes {
				fmt.Printf("  %s=%.2f", s, avg[s])
			}
			fmt.Println()
			fmt.Println()
			fmt.Println(r.OffPkgTable())
			avgOff := r.AvgOffPkg()
			fmt.Printf("average off-package traffic (B/instr):")
			for _, s := range r.Schemes {
				fmt.Printf("  %s=%.2f", s, avgOff[s])
			}
			fmt.Println()
		},
		"fig7": func(o exp.Options) { fmt.Println(exp.Fig7(o).Table()) },
		"fig8": func(o exp.Options) {
			for _, t := range exp.Fig8(o).Tables() {
				fmt.Println(t)
			}
		},
		"fig9": func(o exp.Options) { fmt.Println(exp.Fig9(o).Table()) },
		"table5": func(o exp.Options) {
			r := exp.Table5(o)
			fmt.Println(r.Table())
			fmt.Printf("mean tag-buffer flush interval: %.2f ms (scaled run)\n\n", r.FlushIntervalMs)
		},
		"table6":    func(o exp.Options) { fmt.Println(exp.Table6(o).Table()) },
		"largepage": func(o exp.Options) { fmt.Println(exp.LargePages(o).Table()) },
		"batman":    func(o exp.Options) { fmt.Println(exp.Batman(o).Table()) },
	}

	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table5", "table6", "largepage", "batman"}
	if *target == "all" {
		for _, name := range order {
			if name == "fig6" {
				continue // folded into fig5's matrix below
			}
			fmt.Printf("=== %s ===\n", name)
			if name == "fig5" {
				// One simulation matrix serves both traffic figures.
				r := exp.Traffic(o)
				fmt.Println(r.InPkgTable())
				fmt.Println("=== fig6 ===")
				fmt.Println(r.OffPkgTable())
				continue
			}
			targets[name](o)
		}
		return 0
	}
	f, ok := targets[*target]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown target %q (valid: %s, all)\n", *target, strings.Join(order, ", "))
		return 1
	}
	f(o)
	return 0
}
