// Command sweepctl is the thin control client for a running sweepd:
// submit a sweep spec, inspect status, stream results, and cancel.
//
// Usage:
//
//	sweepctl -addr :8080 submit spec.json     # or '-' for stdin
//	sweepctl -addr :8080 list
//	sweepctl -addr :8080 status  <sweep-id>
//	sweepctl -addr :8080 stream  <sweep-id> [-offset N]
//	sweepctl -addr :8080 epochs  <sweep-id> [-offset N]
//	sweepctl -addr :8080 ledger  <sweep-id>
//	sweepctl -addr :8080 cancel  <sweep-id>
//	sweepctl -addr :8080 wait    <sweep-id> [-timeout D]
//
// `submit` prints the sweep's content-derived ID and status; streams
// write raw JSONL to stdout and follow the sweep live until it reaches
// a terminal state, so `sweepctl stream` after a reconnect picks up
// with -offset set to the byte count already captured.
//
// Exit codes follow the bansheesim convention: 0 clean, 1 error, 124
// deadline (`wait -timeout D` expired before the sweep turned
// terminal), 130 interrupted (a ^C during stream/wait). In both
// non-zero waiting cases the sweep itself continues server-side —
// resume with `sweepctl stream -offset N` or `wait`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"banshee/internal/sweepd"
)

func main() {
	os.Exit(run())
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage: sweepctl [-addr HOST:PORT] COMMAND [ARGS]

commands:
  submit SPEC.json|-        submit a sweep spec (idempotent); prints id and status
  list                      list sweeps
  status  SWEEP-ID          one sweep's status
  stream  SWEEP-ID [-offset N]   follow the results JSONL to stdout
  epochs  SWEEP-ID [-offset N]   follow the epoch-series JSONL to stdout
  ledger  SWEEP-ID          print the failure ledger JSONL
  cancel  SWEEP-ID          stop a live sweep
  wait    SWEEP-ID [-timeout D]  block until the sweep is terminal; prints final status (exit 124 on timeout)`)
	return 1
}

func run() int {
	fs := flag.NewFlagSet("sweepctl", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "sweepd address, host:port or URL")
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) < 1 {
		return usage()
	}
	c, err := sweepd.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		return 1
	}

	// ^C cancels the in-flight call. For streams and waits that is an
	// expected way out — the sweep keeps running server-side.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, rest := args[0], args[1:]
	err = dispatch(ctx, c, cmd, rest)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintln(os.Stderr, "sweepctl: timed out; the sweep continues server-side (resume with `sweepctl wait`)")
		return 124
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "sweepctl: interrupted; the sweep continues server-side (resume with `sweepctl stream -offset N` or `sweepctl wait`)")
		return 130
	default:
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		return 1
	}
}

func dispatch(ctx context.Context, c *sweepd.Client, cmd string, args []string) error {
	switch cmd {
	case "submit":
		if len(args) != 1 {
			return fmt.Errorf("submit needs exactly one spec file (or '-')")
		}
		return submit(ctx, c, args[0])
	case "list":
		sts, err := c.List(ctx)
		if err != nil {
			return err
		}
		for _, st := range sts {
			printStatusLine(st)
		}
		return nil
	case "status":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		st, err := c.Status(ctx, id)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "stream", "epochs":
		sub := flag.NewFlagSet("sweepctl "+cmd, flag.ExitOnError)
		offset := sub.Int64("offset", 0, "resume the stream at this byte offset")
		id, err := oneID(parseSub(sub, args))
		if err != nil {
			return err
		}
		if cmd == "stream" {
			_, err = c.StreamResults(ctx, id, *offset, os.Stdout)
		} else {
			_, err = c.StreamEpochs(ctx, id, *offset, os.Stdout)
		}
		return err
	case "ledger":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		recs, err := c.Ledger(ctx, id)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		return nil
	case "cancel":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		st, err := c.Cancel(ctx, id)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "wait":
		sub := flag.NewFlagSet("sweepctl wait", flag.ExitOnError)
		timeout := sub.Duration("timeout", 0, "give up after this long (exit 124); 0 waits forever")
		id, err := oneID(parseSub(sub, args))
		if err != nil {
			return err
		}
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		st, err := c.Wait(ctx, id, 500*time.Millisecond)
		if err != nil {
			return err
		}
		if err := printJSON(st); err != nil {
			return err
		}
		if st.State != sweepd.StateDone {
			return fmt.Errorf("sweep ended %s", st.State)
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseSub lets per-command flags appear after the command word in any
// order relative to the ID argument.
func parseSub(fs *flag.FlagSet, args []string) []string {
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) > 0 {
		// Allow "stream ID -offset N" too: reparse the remainder.
		fs.Parse(rest[1:])
		return rest[:1]
	}
	return rest
}

func oneID(args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("expected exactly one sweep ID")
	}
	return args[0], nil
}

func submit(ctx context.Context, c *sweepd.Client, path string) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var spec sweepd.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("bad spec: %w", err)
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func printJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printStatusLine(st sweepd.Status) {
	extra := ""
	if st.Failed > 0 {
		extra = fmt.Sprintf("  failed=%d", st.Failed)
	}
	if st.Error != "" {
		extra += "  error=" + st.Error
	}
	fmt.Printf("%s  %-24s %-10s %d/%d%s\n", st.ID, st.Name, st.State, st.Done, st.Jobs, extra)
}
