// Command sweepd runs sweeps as a long-running system instead of a CLI
// run: a daemon that accepts declarative sweep specs over HTTP/JSON,
// executes their content-keyed jobs on a local pool — optionally
// sharded across attached worker processes — and streams checkpoint
// results to any number of clients. All state is durable under -state:
// a SIGKILL'd daemon restarted on the same directory re-leases its
// unfinished sweeps and converges to output byte-identical to an
// uninterrupted local run.
//
// Usage:
//
//	sweepd serve  -listen :8080 -state /var/lib/banshee
//	sweepd worker -join daemon-host:8080 -parallel 8
//
// `serve` hosts the API (POST /v1/sweeps, GET /v1/sweeps/{id}/status,
// /results, /epochs, /ledger, POST /v1/sweeps/{id}/cancel) plus the
// worker lease protocol (/v1/workers/*) and live telemetry on /metrics.
// `worker` attaches to a running daemon and pulls job leases until
// interrupted; killing a worker only costs its leased jobs, which the
// daemon re-runs locally after their leases expire.
//
// Exit codes follow the bansheesim convention (0 clean, 1 error,
// 124 deadline, 130 interrupted), specialised for a service: both
// subcommands exit 0 on SIGINT/SIGTERM — for a daemon, an interrupt is
// the shutdown protocol, not a failure: running sweeps checkpoint and
// stay resumable — and 1 on any startup or serve error. 124 and 130
// are not used; nothing in a daemon distinguishes a deadline from an
// orderly stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"banshee/internal/obs"
	"banshee/internal/sweepd"
)

func main() {
	os.Exit(run())
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage:
  sweepd serve  -listen :8080 -state DIR [-parallel N] [-max-active N] [-max-queued N] [-max-streams N] [-lease-ttl D] [-quiet]
  sweepd worker -join ADDR [-parallel N] [-name NAME] [-quiet]`)
	return 1
}

func run() int {
	if len(os.Args) < 2 {
		return usage()
	}
	switch os.Args[1] {
	case "serve":
		return serve(os.Args[2:])
	case "worker":
		return worker(os.Args[2:])
	case "-h", "-help", "--help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n", os.Args[1])
		return usage()
	}
}

func serve(args []string) int {
	fs := flag.NewFlagSet("sweepd serve", flag.ExitOnError)
	var (
		listen     = fs.String("listen", ":8080", "HTTP listen address for the API and /metrics")
		state      = fs.String("state", "", "durable state directory (required); sweeps resume from it across restarts")
		parallel   = fs.Int("parallel", 0, "worker-pool size per sweep (0 = GOMAXPROCS)")
		maxActive  = fs.Int("max-active", 2, "sweeps running concurrently; further submissions queue")
		maxQueued  = fs.Int("max-queued", 16, "sweeps queued beyond max-active before submissions are shed with 429 (-1 = unbounded)")
		maxStreams = fs.Int("max-streams", 16, "concurrent result streams per client host before streams are shed with 429 (-1 = unbounded)")
		leaseTTL   = fs.Duration("lease-ttl", 10*time.Second, "worker lease lifetime between renewals")
		drain      = fs.Duration("drain", 5*time.Second, "HTTP shutdown drain deadline on SIGINT/SIGTERM")
		quiet      = fs.Bool("quiet", false, "suppress per-job progress lines")
	)
	fs.Parse(args)
	if *state == "" {
		fmt.Fprintln(os.Stderr, "sweepd: -state is required")
		return 1
	}

	log := os.Stderr
	opts := sweepd.Options{
		StateDir:         *state,
		Parallelism:      *parallel,
		MaxActive:        *maxActive,
		MaxQueued:        *maxQueued,
		MaxClientStreams: *maxStreams,
		LeaseTTL:         *leaseTTL,
	}
	if !*quiet {
		opts.Log = log
	}
	d, err := sweepd.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}

	srv, err := obs.ServeHandler(*listen, d.Handler())
	if err != nil {
		d.Close()
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	fmt.Fprintf(log, "sweepd: serving on http://%s (state %s)\n", srv.Addr(), *state)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(log, "sweepd: shutting down; running sweeps checkpoint and resume on next start")

	// Shutdown order: stop accepting/streaming first (bounded drain),
	// then interrupt the engines — their checkpoints stay clean prefixes
	// either way, but closing the listener first means no client
	// observes a half-shut daemon accepting new sweeps.
	code := 0
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd: http shutdown:", err)
		code = 1
	}
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		code = 1
	}
	return code
}

func worker(args []string) int {
	fs := flag.NewFlagSet("sweepd worker", flag.ExitOnError)
	var (
		join     = fs.String("join", "", "daemon address to attach to, host:port or URL (required)")
		parallel = fs.Int("parallel", 0, "concurrent job leases (0 = GOMAXPROCS)")
		name     = fs.String("name", "", "worker name for the daemon's liveness window (default host-pid)")
		quiet    = fs.Bool("quiet", false, "suppress per-lease log lines")
	)
	fs.Parse(args)
	if *join == "" {
		fmt.Fprintln(os.Stderr, "sweepd: -join is required")
		return 1
	}
	c, err := sweepd.Dial(*join)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		return 1
	}
	wk := &sweepd.Worker{Client: c, Name: *name, Parallel: *parallel}
	if !*quiet {
		wk.Log = os.Stderr
	}
	slots := *parallel
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "sweepd: worker attached to %s (%d slots)\n", c.Base(), slots)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wk.Run(ctx)
	// An interrupt is the worker's shutdown protocol: leased jobs are
	// abandoned and re-run by the daemon after lease expiry. Exit 0.
	fmt.Fprintln(os.Stderr, "sweepd: worker detached")
	return 0
}
