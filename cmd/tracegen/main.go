// Command tracegen is the workload tooling of the capture/replay
// subsystem: it samples or summarizes any registered workload stream
// (synthetic profiles, graph kernels, or recorded traces), records
// workloads into durable .btrc trace files, replays trace files —
// through aggregate statistics or a full simulation — and dumps a
// trace file's header and chunk index.
//
// Usage:
//
//	tracegen -workload pagerank -n 20              # dump 20 events
//	tracegen -workload lbm -n 200000 -summary      # aggregate statistics
//	tracegen record -workload mcf -o mcf.btrc -events 500000
//	tracegen replay -file mcf.btrc -summary
//	tracegen replay -file mcf.btrc -sim -scheme Banshee
//	tracegen inspect -file mcf.btrc
//
// Workload names accepted anywhere include "file:<path>", so recorded
// traces can be sampled and summarized like any synthetic stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"banshee/internal/mem"
	"banshee/internal/sim"
	"banshee/internal/tracefile"
	"banshee/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			record(os.Args[2:])
			return
		case "replay":
			replay(os.Args[2:])
			return
		case "inspect":
			inspect(os.Args[2:])
			return
		}
	}
	sample(os.Args[1:])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// openSource resolves a workload name through the registry.
func openSource(name string, cores int, seed uint64, scale, intensity float64) workload.Source {
	src, err := workload.Open(name, workload.Config{
		Cores: cores, Seed: seed, Scale: scale, Intensity: intensity,
	})
	if err != nil {
		fatal(err)
	}
	return src
}

// sample is the default mode: dump or summarize a workload stream.
func sample(args []string) {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	var (
		name    = fs.String("workload", "pagerank", "workload name (or file:<path>)")
		cores   = fs.Int("cores", 0, "core count (0 = 16, or a trace file's recorded count)")
		n       = fs.Int("n", 20, "events to generate (per summary, total)")
		core    = fs.Int("core", 0, "core whose stream to sample")
		seed    = fs.Uint64("seed", 1, "generator seed")
		summary = fs.Bool("summary", false, "print aggregate statistics instead of events")
		scale   = fs.Float64("scale", 1.0/16, "footprint scale factor (matches the simulator's default)")
	)
	fs.Parse(args)
	if *cores == 0 && !strings.HasPrefix(*name, workload.FilePrefix) {
		*cores = 16
	}

	w := openSource(*name, *cores, *seed, *scale, 1.0)
	if *summary {
		summarize(w, *name, *core, *n)
		return
	}
	dump(w, *core, *n)
}

// record captures a workload into a .btrc trace file.
func record(args []string) {
	fs := flag.NewFlagSet("tracegen record", flag.ExitOnError)
	var (
		name      = fs.String("workload", "", "workload name to record")
		out       = fs.String("o", "", "output trace file path")
		cores     = fs.Int("cores", 0, "core count (0 = 16, or a trace file's recorded count)")
		seed      = fs.Uint64("seed", 1, "generator seed")
		events    = fs.Uint64("events", 1_000_000, "events to record per core")
		scale     = fs.Float64("scale", 1.0/16, "footprint scale factor")
		intensity = fs.Float64("intensity", 1.0, "MemRatio multiplier")
	)
	fs.Parse(args)
	if *name == "" || *out == "" {
		fatal(fmt.Errorf("record needs -workload and -o"))
	}
	if *cores == 0 && !strings.HasPrefix(*name, workload.FilePrefix) {
		*cores = 16
	}
	cfg := workload.Config{Cores: *cores, Seed: *seed, Scale: *scale, Intensity: *intensity}
	if err := workload.Record(*out, *name, cfg, *events); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	// Report from the file itself, not the flags: a source may resolve
	// to a different shape than requested (e.g. recording a trace file).
	r, err := tracefile.Open(*out)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	fmt.Printf("recorded %s: %d events × %d cores → %s (%d bytes, %.2f B/event)\n",
		r.Name(), *events, r.Cores(), *out, st.Size(), float64(st.Size())/float64(r.TotalEvents()))
}

// replay reads a trace file back: event summary or a full simulation.
func replay(args []string) {
	fs := flag.NewFlagSet("tracegen replay", flag.ExitOnError)
	var (
		file    = fs.String("file", "", "trace file to replay")
		summary = fs.Bool("summary", false, "print aggregate stream statistics")
		n       = fs.Int("n", 20, "events to replay (dump or summary)")
		core    = fs.Int("core", 0, "core whose stream to replay")
		runSim  = fs.Bool("sim", false, "run a full simulation over the replayed trace")
		scheme  = fs.String("scheme", "Banshee", "scheme for -sim")
		instr   = fs.Uint64("instr", 0, "per-core instruction budget for -sim (0 = default)")
	)
	fs.Parse(args)
	if *file == "" {
		fatal(fmt.Errorf("replay needs -file"))
	}

	if *runSim {
		cfg := sim.DefaultConfig()
		cfg.Cores = 0 // adopt the recording's core count
		if *instr > 0 {
			cfg.InstrPerCore = *instr
		}
		st, err := sim.Run(cfg, workload.FilePrefix+*file, *scheme)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload   %s (scheme %s)\n", *file, st.Scheme)
		fmt.Printf("cycles     %d\n", st.Cycles)
		fmt.Printf("IPC        %.3f\n", st.IPC())
		fmt.Printf("MPKI       %.2f\n", st.MPKI())
		fmt.Printf("DC miss    %.1f%%\n", 100*st.MissRate())
		fmt.Printf("in-pkg     %.2f B/instr\n", st.InPkgBPI())
		fmt.Printf("off-pkg    %.2f B/instr\n", st.OffPkgBPI())
		return
	}

	src := openSource(workload.FilePrefix+*file, 0, 0, 0, 0)
	if *summary {
		summarize(src, *file, *core, *n)
		return
	}
	dump(src, *core, *n)
}

// dump prints n raw events of one core's stream.
func dump(w workload.Source, core, n int) {
	for i := 0; i < n; i++ {
		ev := w.Next(core)
		op := "R"
		if ev.Write {
			op = "W"
		}
		fmt.Printf("%6d  gap=%-5d %s %#014x  page=%#x line=%d\n",
			i, ev.Gap, op, uint64(ev.Addr), mem.PageNum(ev.Addr), mem.LineInPage(ev.Addr))
	}
	checkStream(w)
}

// inspect dumps a trace file's header and chunk index.
func inspect(args []string) {
	fs := flag.NewFlagSet("tracegen inspect", flag.ExitOnError)
	file := fs.String("file", "", "trace file to inspect")
	fs.Parse(args)
	if *file == "" {
		fatal(fmt.Errorf("inspect needs -file"))
	}
	r, err := tracefile.Open(*file)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	st, err := os.Stat(*file)
	if err != nil {
		fatal(err)
	}
	m := r.Meta()
	fmt.Printf("file       %s (%d bytes, format v%d)\n", *file, st.Size(), tracefile.Version)
	fmt.Printf("workload   %s\n", m.Name)
	fmt.Printf("cores      %d\n", m.Cores)
	fmt.Printf("shared     %v\n", m.Shared)
	fmt.Printf("footprint  %.1f MB\n", float64(m.Footprint)/(1<<20))
	fmt.Printf("events     %d (%.2f B/event)\n", r.TotalEvents(), float64(st.Size())/float64(r.TotalEvents()))
	chunks := r.Chunks()
	fmt.Printf("chunks     %d\n", len(chunks))
	perCore := make(map[int]struct {
		chunks int
		events uint64
		bytes  uint64
	})
	for _, c := range chunks {
		pc := perCore[c.Core]
		pc.chunks++
		pc.events += uint64(c.Events)
		pc.bytes += uint64(c.PayloadLen)
		perCore[c.Core] = pc
	}
	ids := make([]int, 0, len(perCore))
	for id := range perCore {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pc := perCore[id]
		fmt.Printf("  core %-3d %8d events in %4d chunks, %8d payload bytes (%.2f B/event)\n",
			id, pc.events, pc.chunks, pc.bytes, float64(pc.bytes)/float64(pc.events))
	}
	if err := r.Verify(); err != nil {
		fatal(err)
	}
	fmt.Println("verify     ok (all chunk checksums and encodings valid)")
}

// summarize prints the aggregate stream statistics of one core.
func summarize(w workload.Source, label string, core, n int) {
	pages := map[uint64]int{}
	lines := map[uint64]int{}
	writes, gaps, seq := 0, 0, 0
	var prev mem.Addr
	for i := 0; i < n; i++ {
		ev := w.Next(core)
		pages[mem.PageNum(ev.Addr)]++
		lines[mem.LineNum(ev.Addr)]++
		gaps += ev.Gap
		if ev.Write {
			writes++
		}
		if i > 0 && ev.Addr == prev+mem.LineBytes {
			seq++
		}
		prev = ev.Addr
	}
	checkStream(w)
	counts := make([]int, 0, len(pages))
	for _, c := range pages {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	topDecile, total := 0, 0
	for i, c := range counts {
		total += c
		if i < len(counts)/10 {
			topDecile += c
		}
	}

	fmt.Printf("workload           %s (core %d, %d events)\n", label, core, n)
	fmt.Printf("footprint declared %.1f MB\n", float64(w.Footprint())/(1<<20))
	fmt.Printf("pages touched      %d (%.1f MB)\n", len(pages), float64(len(pages)*mem.PageBytes)/(1<<20))
	fmt.Printf("lines touched      %d\n", len(lines))
	fmt.Printf("mean gap           %.1f instr (memratio %.4f)\n",
		float64(gaps)/float64(n), float64(n)/float64(gaps+n))
	fmt.Printf("write fraction     %.2f\n", float64(writes)/float64(n))
	fmt.Printf("sequential frac    %.2f\n", float64(seq)/float64(n))
	fmt.Printf("top-decile pages   %.0f%% of visits\n", 100*float64(topDecile)/float64(total))
}

// checkStream fails loudly when a replayed source hit a decode error
// (synthetic sources have no error state and pass through).
func checkStream(w workload.Source) {
	if e, ok := w.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			fatal(err)
		}
	}
	if wr, ok := w.(interface{ Wrapped() bool }); ok && wr.Wrapped() {
		fmt.Fprintln(os.Stderr, "tracegen: note: stream shorter than requested events; replay wrapped around")
	}
}
