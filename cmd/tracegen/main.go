// Command tracegen inspects the synthetic workload generators: it
// prints a stream sample or aggregate statistics (footprint touched,
// page-popularity skew, spatial run lengths, write fraction) so the
// calibration behind internal/trace is visible and auditable.
//
// Usage:
//
//	tracegen -workload pagerank -n 20            # dump 20 events
//	tracegen -workload lbm -n 200000 -summary    # aggregate statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"banshee/internal/mem"
	"banshee/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "pagerank", "workload name")
		cores    = flag.Int("cores", 16, "core count")
		n        = flag.Int("n", 20, "events to generate (per summary, total)")
		core     = flag.Int("core", 0, "core whose stream to sample")
		seed     = flag.Uint64("seed", 1, "generator seed")
		summary  = flag.Bool("summary", false, "print aggregate statistics instead of events")
		scale    = flag.Float64("scale", 1.0/16, "footprint scale factor (matches the simulator's default)")
	)
	flag.Parse()

	w, err := trace.New(*workload, *cores, *seed, trace.WithScale(*scale))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if !*summary {
		for i := 0; i < *n; i++ {
			ev := w.Next(*core)
			op := "R"
			if ev.Write {
				op = "W"
			}
			fmt.Printf("%6d  gap=%-5d %s %#014x  page=%#x line=%d\n",
				i, ev.Gap, op, uint64(ev.Addr), mem.PageNum(ev.Addr), mem.LineInPage(ev.Addr))
		}
		return
	}

	pages := map[uint64]int{}
	lines := map[uint64]int{}
	writes, gaps, seq := 0, 0, 0
	var prev mem.Addr
	for i := 0; i < *n; i++ {
		ev := w.Next(*core)
		pages[mem.PageNum(ev.Addr)]++
		lines[mem.LineNum(ev.Addr)]++
		gaps += ev.Gap
		if ev.Write {
			writes++
		}
		if i > 0 && ev.Addr == prev+mem.LineBytes {
			seq++
		}
		prev = ev.Addr
	}
	counts := make([]int, 0, len(pages))
	for _, c := range pages {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	topDecile, total := 0, 0
	for i, c := range counts {
		total += c
		if i < len(counts)/10 {
			topDecile += c
		}
	}

	fmt.Printf("workload           %s (core %d, %d events)\n", *workload, *core, *n)
	fmt.Printf("footprint declared %.1f MB\n", float64(w.Footprint())/(1<<20))
	fmt.Printf("pages touched      %d (%.1f MB)\n", len(pages), float64(len(pages)*mem.PageBytes)/(1<<20))
	fmt.Printf("lines touched      %d\n", len(lines))
	fmt.Printf("mean gap           %.1f instr (memratio %.4f)\n",
		float64(gaps)/float64(*n), float64(*n)/float64(gaps+*n))
	fmt.Printf("write fraction     %.2f\n", float64(writes)/float64(*n))
	fmt.Printf("sequential frac    %.2f\n", float64(seq)/float64(*n))
	fmt.Printf("top-decile pages   %.0f%% of visits\n", 100*float64(topDecile)/float64(total))
}
