// Typed-error surface tests: every failure class the public API
// documents must be matchable with errors.Is / errors.As through all
// the layers that wrap it — registry, workload, tracefile, sim, and
// the batch runner.
package banshee_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"banshee"
)

// errCfg is a minimal valid config the error tests mutate.
func errCfg() banshee.Config {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 20_000
	return cfg
}

func TestTypedErrors(t *testing.T) {
	dir := t.TempDir()

	// A corrupt recording: structurally damaged .btrc.
	corrupt := filepath.Join(dir, "corrupt.btrc")
	if err := os.WriteFile(corrupt, []byte("BTRCgarbage-not-a-real-trace-file"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A too-short recording: replays wrap when the run outlasts it.
	short := filepath.Join(dir, "short.btrc")
	if err := banshee.RecordTrace(short, "mcf", banshee.RecordOptions{
		Cores: 2, Seed: 3, EventsPerCore: 500,
	}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"unknown scheme via Run", func() error {
			_, err := banshee.Run(errCfg(), "pagerank", "NoSuchScheme")
			return err
		}, banshee.ErrUnknownScheme},
		{"unknown scheme via ParseScheme", func() error {
			_, err := banshee.ParseScheme("NoSuchScheme")
			return err
		}, banshee.ErrUnknownScheme},
		{"unknown scheme via RunBatch", func() error {
			_, err := banshee.RunBatch(context.Background(), banshee.Matrix{
				Name: "err", Base: errCfg(),
				Workloads: []string{"pagerank"}, Schemes: []string{"NoSuchScheme"},
			}, banshee.BatchOptions{})
			return err
		}, banshee.ErrUnknownScheme},
		{"unknown workload via Run", func() error {
			_, err := banshee.Run(errCfg(), "nosuchworkload", "Banshee")
			return err
		}, banshee.ErrUnknownWorkload},
		{"unknown workload via NewSession", func() error {
			_, err := banshee.NewSession(errCfg(), "nosuchworkload", "Banshee")
			return err
		}, banshee.ErrUnknownWorkload},
		{"unknown workload via RecordTrace", func() error {
			return banshee.RecordTrace(filepath.Join(dir, "x.btrc"), "nosuchworkload", banshee.RecordOptions{Cores: 2})
		}, banshee.ErrUnknownWorkload},
		{"corrupt trace via OpenTrace", func() error {
			_, err := banshee.OpenTrace(corrupt)
			return err
		}, banshee.ErrTraceCorrupt},
		{"corrupt trace via Run", func() error {
			cfg := errCfg()
			cfg.Cores = 0
			_, err := banshee.Run(cfg, "file:"+corrupt, "Banshee")
			return err
		}, banshee.ErrTraceCorrupt},
		{"wrapped trace via Run", func() error {
			cfg := errCfg()
			cfg.Cores = 0
			_, err := banshee.Run(cfg, "file:"+short, "Banshee")
			return err
		}, banshee.ErrTraceWrapped},
		{"cancellation via Session.Run", func() error {
			sess, err := banshee.NewSession(errCfg(), "pagerank", "Banshee")
			if err != nil {
				return err
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err = sess.Run(ctx)
			return err
		}, context.Canceled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("no error returned")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
		})
	}
}

func TestConfigErrorFields(t *testing.T) {
	cases := []struct {
		name  string
		run   func() error
		field string
	}{
		{"negative MSHRs", func() error {
			cfg := errCfg()
			cfg.MSHRs = -1
			_, err := banshee.Run(cfg, "pagerank", "Banshee")
			return err
		}, "MSHRs"},
		{"warmup fraction out of range", func() error {
			cfg := errCfg()
			cfg.WarmupFrac = 1.5
			_, err := banshee.Run(cfg, "pagerank", "Banshee")
			return err
		}, "WarmupFrac"},
		{"negative cores", func() error {
			cfg := errCfg()
			cfg.Cores = -3
			_, err := banshee.Run(cfg, "pagerank", "Banshee")
			return err
		}, "Cores"},
		{"zero instruction budget", func() error {
			cfg := errCfg()
			cfg.InstrPerCore = 0
			_, err := banshee.Run(cfg, "pagerank", "Banshee")
			return err
		}, "InstrPerCore"},
		{"trace core-count mismatch", func() error {
			path := filepath.Join(t.TempDir(), "c.btrc")
			if err := banshee.RecordTrace(path, "mcf", banshee.RecordOptions{
				Cores: 2, EventsPerCore: 100,
			}); err != nil {
				return err
			}
			cfg := errCfg()
			cfg.Cores = 7 // recording holds 2
			_, err := banshee.Run(cfg, "file:"+path, "Banshee")
			return err
		}, "Cores"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("no error returned")
			}
			var ce *banshee.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("errors.As(%v, *ConfigError) = false", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q (err: %v)", ce.Field, tc.field, err)
			}
		})
	}
}
