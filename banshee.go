// Package banshee is the public API of the Banshee DRAM-cache
// reproduction: a trace-driven multicore memory-system simulator that
// implements the Banshee design (Yu et al., MICRO 2017) alongside the
// baselines its evaluation compares against (Alloy Cache + BEAR, Unison
// Cache, tagless DRAM cache (TDC), software-managed HMA, and the
// NoCache / CacheOnly bounds).
//
// # Sessions
//
// The primary entry point is the Session: a stepwise simulation run
// that can be driven incrementally, observed mid-flight, and cancelled.
// Build a Config (DefaultConfig gives the paper's Table 2/3 system at
// the library's default 1/16 capacity scale), pick a workload from
// Workloads() and a scheme from Schemes(), open a Session, and drive it
// to completion under a context:
//
//	cfg := banshee.DefaultConfig()
//	sess, err := banshee.NewSession(cfg, "pagerank", "Banshee")
//	if err != nil { ... }
//	sess.OnEpoch(1_000_000, func(s banshee.Snapshot) {
//		log.Printf("%3.0f%%  MPKI %.2f", 100*sess.Progress().Fraction(), s.Window.MPKI())
//	})
//	res, err := sess.Run(ctx) // ctx cancel → partial stats + ctx.Err()
//
// Step(n) advances the run by n instructions at a time for callers that
// interleave simulation with their own work; Progress() reports
// retired/total instructions, the simulated clock, and the phase
// (warmup, measure, done); Snapshot() captures the current measurement
// window at any point. Every observation is windowed uniformly — core
// counters and scheme-internal counters (remaps, tag-buffer flushes)
// alike — and observing a run never changes what it computes: stepped,
// sampled, and one-shot runs produce bit-identical statistics.
//
// Run is the one-shot convenience over a Session for when none of that
// is needed:
//
//	res, err := banshee.Run(cfg, "pagerank", "Banshee")
//
// The returned Result carries cycles, MPKI, and the DRAM traffic
// breakdown by class used throughout the paper's figures.
//
// # Errors
//
// Failures carry typed sentinels matchable with errors.Is / errors.As
// across every layer: ErrUnknownScheme, ErrUnknownWorkload,
// ErrTraceCorrupt (a damaged .btrc recording), ErrTraceWrapped (a
// recording too short for the run consuming it), *ConfigError,
// which names the rejected configuration field, and *JobError, which
// carries a failed batch job's coordinate, attempt count, and cause.
//
// # Batch runs
//
// Sweeps beyond a single run go through the batch engine: declare a
// Matrix (workloads × schemes × config points × seeds) and hand it to
// RunBatch. Jobs execute on a work-stealing worker pool that shares
// substrate warm-up between jobs of the same workload, results stream
// to a JSONL file as they complete, and an interrupted sweep resumes
// from that file without re-simulating finished jobs — job identity is
// a content key over the fully resolved configuration, so edited
// sweeps re-simulate while untouched jobs are served from disk.
// Cancelling the context drains the pool without writing partial
// results, so the JSONL file is always a clean resumable prefix.
//
// Jobs run supervised: a panicking scheme or workload fails that job
// — never the process — as a typed *JobError, transient faults retry
// with exponential backoff and deterministic jitter
// (BatchOptions.Retry), each attempt can carry a deadline
// (BatchOptions.JobTimeout), and with BatchOptions.KeepGoing a sweep
// outlives permanently failed jobs: they stream to a sibling
// *.failed.jsonl ledger, surface through BatchResult.Failed, and are
// retried automatically when the sweep is resumed.
//
// A batch is observable while it runs: BatchOptions.MetricsAddr serves
// live job/retry/gang/epoch telemetry over HTTP (Prometheus text and
// JSON /metrics, /debug/vars, pprof), BatchOptions.TraceFile records
// the sweep timeline as Chrome trace_event JSON, and
// BatchOptions.ProgressEvery condenses per-job progress lines into
// rate-limited summaries. All of it is opt-in; a plain batch pays
// nothing for the instrumentation seams.
//
//	m := banshee.Matrix{Name: "sweep", Base: banshee.DefaultConfig(),
//		Workloads: banshee.Workloads(), Schemes: banshee.Schemes()}
//	rs, err := banshee.RunBatch(ctx, m, banshee.BatchOptions{Out: "sweep.jsonl", Resume: true})
//
// # Sweep service
//
// The same batch engine runs as a long-running service: cmd/sweepd
// hosts sweeps behind an HTTP/JSON API, sharding content-keyed jobs
// across a local pool and optionally across attached worker processes
// pulling job leases. Dial a daemon and drive it with SweepClient —
// Submit/SubmitMatrix to start a sweep (idempotent: the same spec is
// the same sweep), StreamResults to follow its checkpoint JSONL with
// resume-from-offset, RunMatrix for the remote counterpart of
// RunBatch. Results are byte-identical to a local RunBatch of the same
// Matrix — a SIGKILL'd daemon restarts from its state directory and
// converges to the same bytes. JobKey and SweepID expose the content
// keys so clients can correlate streamed records, ledger entries, and
// status output without reimplementing the hash:
//
//	c, err := banshee.Dial("localhost:8080")
//	st, err := c.SubmitMatrix(ctx, m, banshee.SweepOptions{})
//	_, err = c.StreamResults(ctx, st.ID, 0, os.Stdout)
//
// # Scheme registry
//
// Scheme selection is table-driven: every design registers a kind, its
// display names, a parser, and a builder. Out-of-tree schemes join the
// same tables through RegisterScheme (and RegisterSchemeModifier for
// "+SUFFIX"-style wrappers such as BATMAN) and are then selectable by
// name everywhere — Run, Matrix.Schemes, and cmd/experiments.
//
// # Workload registry and trace capture/replay
//
// Workloads are table-driven like schemes: synthetic profiles, graph
// kernels, and recorded trace files all resolve behind the
// WorkloadSource contract, and out-of-tree sources join through
// RegisterWorkload. RecordTrace captures any workload into a durable
// .btrc trace file (internal/tracefile's chunked, checksummed, varint
// format) and "file:<path>" workload names — accepted by Run,
// Matrix.Workloads, and cmd/tracegen — replay it bit-identically:
//
//	err := banshee.RecordTrace("mcf.btrc", "mcf", banshee.RecordOptions{
//		Cores: 16, Seed: 1, EventsPerCore: 4_000_000})
//	res, err := banshee.Run(cfg, "file:mcf.btrc", "Banshee")
//
// For lower-level control (custom schemes, direct access to the tag
// buffer, FBR metadata, DRAM timing, or the VM substrate), see the
// internal packages; cmd/experiments regenerates every table and figure
// of the paper's evaluation and resumes interrupted suites via
// -out/-resume.
package banshee

import (
	"context"
	"io"
	"strings"
	"time"

	"banshee/internal/errs"
	"banshee/internal/mc"
	"banshee/internal/obs"
	"banshee/internal/registry"
	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
	"banshee/internal/sweepd"
	"banshee/internal/trace"
	"banshee/internal/workload"
)

// Config is a full simulation configuration; see sim.Config for field
// documentation. Zero values are invalid — start from DefaultConfig.
type Config = sim.Config

// Result is the set of measurements from one run.
type Result = stats.Sim

// SchemeSpec selects and tunes a DRAM-cache scheme.
type SchemeSpec = sim.SchemeSpec

// DefaultConfig returns the paper's 16-core system (Table 2) with
// Banshee's Table 3 parameters, scaled per DESIGN.md §3.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Session is a stepwise simulation run: step it n instructions at a
// time, poll Progress, take windowed Snapshots, sample an epoch time
// series with OnEpoch, or Run it to completion under a context with
// cancellation returning partial stats. See the package documentation
// for the flow and sim.Session for full method semantics.
type Session = sim.Session

// Snapshot is a windowed view of a running simulation: position
// (retired instructions, simulated clock, phase) plus a Result whose
// counters span the snapshot's window.
type Snapshot = stats.Snapshot

// Series is an ordered sequence of Snapshots — the time series an
// OnEpoch hook accumulates.
type Series = stats.Series

// Phase is a run's lifecycle phase: warmup, measure, or done.
type Phase = stats.Phase

// Run phases, in order.
const (
	PhaseWarmup  = stats.PhaseWarmup
	PhaseMeasure = stats.PhaseMeasure
	PhaseDone    = stats.PhaseDone
)

// SessionProgress reports where a run is (retired/total instructions,
// simulated clock, phase).
type SessionProgress = sim.Progress

// NewSession opens a stepwise run of the named workload under the named
// scheme. Scheme names follow the paper's labels — see Run. The session
// owns its resources (a replayed trace file holds an open file): Run to
// completion, or Close when abandoning it early.
func NewSession(cfg Config, workload, scheme string) (*Session, error) {
	return sim.NewSession(cfg, workload, scheme)
}

// GangSession is a set of simulations of the same workload stream
// advancing in lockstep as lanes over one shared front end (trace
// generation, TLB/page table, L1/L2), with exact per-lane back ends
// (L3, scheme, DRAM timing). Each lane's statistics are byte-identical
// to the same config run alone, at a fraction of the aggregate cost.
// Drive it like a Session: Step/Run/Progress, Results for the
// per-lane stats, Close when abandoning it early.
type GangSession = sim.Gang

// NewGangSession opens a lockstep gang of len(seeds) lanes: cfg
// replicated across the seeds, all replaying one shared workload
// stream. When cfg.WorkloadSeed is zero it is pinned to cfg.Seed (or
// the first seed), which is what makes the multi-seed gang share a
// stream; an independent run reproduces any lane byte-for-byte by
// setting the same Seed and WorkloadSeed.
//
// Gangs require a gang-safe scheme — one that never touches the
// shared VM substrate (every built-in except Banshee, which rewrites
// PTEs) — and PrefetchDegree 0; other configs return an error.
func NewGangSession(cfg Config, workload, scheme string, seeds []uint64) (*GangSession, error) {
	return sim.NewGangSeeds(cfg, workload, scheme, seeds)
}

// Run simulates the named workload under the named scheme to
// completion (a one-shot Session). Scheme names follow the paper's
// labels: "NoCache", "CacheOnly", "Alloy 1", "Alloy 0.1", "Unison",
// "TDC", "HMA", "Banshee", "Banshee LRU", "Banshee NoSample",
// "Banshee 2M"; append "+BATMAN" for bandwidth balancing (§5.4.2).
func Run(cfg Config, workload, scheme string) (Result, error) {
	return sim.Run(cfg, workload, scheme)
}

// Typed error sentinels, matchable with errors.Is through every layer's
// wrapping (see the package documentation's Errors section).
var (
	// ErrUnknownScheme: a scheme display name (or kind) no registered
	// scheme answers to.
	ErrUnknownScheme = errs.ErrUnknownScheme
	// ErrUnknownWorkload: a workload name no registered kind claims.
	ErrUnknownWorkload = errs.ErrUnknownWorkload
	// ErrTraceWrapped: a recorded trace ran out of events mid-use and
	// restarted, disqualifying the run's statistics.
	ErrTraceWrapped = errs.ErrTraceWrapped
	// ErrTraceCorrupt: a .btrc recording failed a structural or
	// checksum validation.
	ErrTraceCorrupt = errs.ErrTraceCorrupt
	// ErrDiskFull: a durable write (checkpoint sink, sweep marker) hit
	// an out-of-space condition. The state on disk is an intact prefix,
	// not corruption — free space and re-run/resubmit to resume.
	ErrDiskFull = errs.ErrDiskFull
)

// ConfigError reports an invalid configuration field; retrieve it with
// errors.As to learn which field was rejected and why.
type ConfigError = errs.ConfigError

// JobError reports one batch job's permanent failure after supervision
// gave up on it: sweep coordinate, content ID, attempt count, whether
// it panicked, and the underlying cause. Retrieve with errors.As from
// a fail-fast RunBatch error, or inspect BatchResult.Failed records.
type JobError = errs.JobError

// Speedup returns how much faster a ran than base (the paper's Fig. 4
// normalization when base is the NoCache run).
func Speedup(a, base Result) float64 { return stats.Speedup(&a, &base) }

// Workloads returns the evaluation's 16 workload names (§5.1.2).
func Workloads() []string { return trace.Names() }

// GraphWorkloads returns the graph-analytics subset (§5.4.1).
func GraphWorkloads() []string { return trace.GraphNames() }

// Schemes returns the scheme names of the paper's main comparison.
func Schemes() []string { return sim.SchemeNames() }

// RegisteredSchemes returns every display name the registry currently
// answers to, including registered out-of-tree schemes.
func RegisteredSchemes() []string { return registry.Names() }

// ParseScheme resolves a display name into a tunable SchemeSpec.
func ParseScheme(name string) (SchemeSpec, error) { return sim.ParseScheme(name) }

// CacheScheme is the memory-controller contract a DRAM-cache design
// implements; see the mc package for Request/Result semantics.
type CacheScheme = mc.Scheme

// SchemeDef describes a registrable scheme: a unique kind, the display
// names it answers to, a name parser, and a builder.
type SchemeDef = registry.Scheme

// SchemeEnv is the simulation context handed to scheme builders.
type SchemeEnv = registry.Env

// SchemeModifier is a registrable "+SUFFIX" wrapper over built schemes.
type SchemeModifier = registry.Modifier

// RegisterScheme adds an out-of-tree scheme to the registry, making it
// selectable by display name in Run, Matrix.Schemes, and
// cmd/experiments. It panics on duplicate kinds or incomplete
// definitions; register at init time.
func RegisterScheme(def SchemeDef) { registry.Register(def) }

// RegisterSchemeModifier adds a "+SUFFIX" wrapper (like the built-in
// "+BATMAN") applicable to any registered scheme.
func RegisterSchemeModifier(m SchemeModifier) { registry.RegisterModifier(m) }

// WorkloadSource is a replayable multi-core reference stream — the
// contract the simulator consumes for every workload kind.
type WorkloadSource = workload.Source

// WorkloadDef describes a registrable workload kind: a unique name
// plus a resolver from workload names to sources.
type WorkloadDef = workload.Def

// WorkloadConfig carries the run parameters a workload source is
// built with (cores, seed, footprint scale, intensity).
type WorkloadConfig = workload.Config

// RegisterWorkload adds an out-of-tree workload kind to the registry,
// making its names selectable everywhere a workload name is accepted —
// Run, Matrix.Workloads, and cmd/tracegen. It panics on duplicate
// kinds or incomplete definitions; register at init time.
func RegisterWorkload(def WorkloadDef) { workload.Register(def) }

// RegisteredWorkloads returns every enumerable workload name the
// registry currently answers to (recorded traces, being file paths,
// are resolvable but not enumerable).
func RegisteredWorkloads() []string { return workload.Names() }

// RecordOptions parameterizes RecordTrace. Zero values take the
// library defaults noted per field.
type RecordOptions struct {
	Cores         int     // per-core streams to record (0 = 16)
	Seed          uint64  // generator seed
	EventsPerCore uint64  // events recorded per core (0 = 1,000,000)
	Scale         float64 // footprint scale factor (0 = the default 1/16)
	Intensity     float64 // MemRatio multiplier (0 = 1.0)
}

// RecordTrace captures the named workload into a .btrc trace file at
// path. Recording EventsPerCore ≥ the run's InstrPerCore guarantees a
// later replay never wraps, because every event retires at least one
// instruction. The file replays via the "file:<path>" workload name or
// OpenTrace.
func RecordTrace(path, workloadName string, o RecordOptions) error {
	if o.Cores == 0 {
		o.Cores = 16
	}
	if o.EventsPerCore == 0 {
		o.EventsPerCore = 1_000_000
	}
	if o.Scale == 0 {
		o.Scale = sim.ScaleFactor
	}
	if o.Intensity == 0 {
		o.Intensity = 1.0
	}
	return workload.Record(path, workloadName, workload.Config{
		Cores: o.Cores, Seed: o.Seed, Scale: o.Scale, Intensity: o.Intensity,
	}, o.EventsPerCore)
}

// OpenTrace opens a recorded .btrc trace file as a replayable workload
// source. The source also implements io.Closer; close it when done
// (runs through "file:<path>" workload names close theirs
// automatically).
func OpenTrace(path string) (WorkloadSource, error) {
	return workload.Open(workload.FilePrefix+path, workload.Config{})
}

// Matrix is a declarative batch of simulations: the cross product of
// Workloads × Schemes × Points × Seeds over a base config.
type Matrix = runner.Matrix

// MatrixPoint is one setting of a Matrix's config-override axis.
type MatrixPoint = runner.Point

// BatchResult indexes a completed batch; BatchRecord is one stored job.
type (
	BatchResult = runner.ResultSet
	BatchRecord = runner.Record
)

// RetryPolicy bounds how a supervised batch job is retried:
// MaxAttempts total attempts with exponential backoff from BaseDelay
// capped at MaxDelay, jittered deterministically per job. The zero
// value means a single attempt.
type RetryPolicy = runner.RetryPolicy

// BatchOptions controls RunBatch.
type BatchOptions struct {
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed job and a
	// final summary.
	Progress io.Writer
	// Out is a JSONL file path results stream to ("" = in-memory only).
	Out string
	// Resume skips jobs whose results are already in Out; the finished
	// file is byte-identical to an uninterrupted run's. Jobs that
	// failed in a previous run are absent from Out and so are retried.
	Resume bool
	// Retry bounds per-job retries (zero value = one attempt). Every
	// job always runs under panic isolation: a panicking scheme or
	// workload fails that job, never the process.
	Retry RetryPolicy
	// JobTimeout, when positive, deadlines each attempt; a blown
	// deadline is a retryable failure wrapping context.DeadlineExceeded.
	JobTimeout time.Duration
	// KeepGoing completes the sweep past permanently failed jobs:
	// failures stream to the FailedOut ledger and are reported by
	// BatchResult.Failed instead of aborting the run.
	KeepGoing bool
	// FailedOut overrides the failure-ledger path. Empty derives it
	// from Out ("sweep.jsonl" → "sweep.failed.jsonl"); only used with
	// KeepGoing, and the file exists only when failures occurred.
	FailedOut string
	// GangWidth, when ≥ 2, executes up to that many gang-eligible jobs
	// sharing a front-end shape (same workload stream — differing only
	// by seed with WorkloadSeed pinned, or by back-end knobs) as one
	// lockstep GangSession. Results, checkpoint files, and failure
	// handling are byte-identical to independent execution; a failed
	// gang automatically retries its jobs independently. 0 disables.
	GangWidth int

	// MetricsAddr, when non-empty ("host:port", ":6060"), serves live
	// sweep telemetry over HTTP for the duration of the batch:
	// Prometheus text and JSON on /metrics, JSON on /debug/vars, and
	// net/http/pprof on /debug/pprof. The series cover job states,
	// attempts/retries, worker occupancy, gang shape, checkpoint flush
	// lag, and the per-epoch simulation time series; counters sum
	// consistently with the batch's emitted results. Empty disables all
	// metric collection (the default costs nothing).
	MetricsAddr string
	// TraceFile, when non-empty, records the sweep timeline (workers ×
	// jobs × attempts × gangs) and writes it to this path as Chrome
	// trace_event JSON when the batch ends — openable in
	// chrome://tracing or Perfetto.
	TraceFile string
	// ProgressEvery, when positive with Progress set, replaces per-job
	// progress lines with one rate-limited sweep summary line per
	// interval (position, throughput, ETA).
	ProgressEvery time.Duration
	// EpochEvery sets the metric time-series sampling interval in
	// retired instructions (0 = a sensible default). Only meaningful
	// with MetricsAddr set.
	EpochEvery uint64
}

// RunBatch executes a matrix of simulations on the batch engine with
// checkpoint/resume and per-job supervision. Cancelling ctx drains the
// worker pool without writing partial results — the JSONL file keeps a
// clean resumable prefix — and returns an error matching ctx.Err().
// Job failures are retried per o.Retry; a permanent failure aborts the
// run with a *JobError unless o.KeepGoing, which finishes the
// remaining jobs, streams failures to the ledger, and leaves the
// success stream byte-identical to a run in which those jobs never
// enumerated ahead of it. See the package documentation for the sweep
// flow.
func RunBatch(ctx context.Context, m Matrix, o BatchOptions) (rs *BatchResult, err error) {
	eng := runner.Engine{Parallelism: o.Parallelism, Progress: o.Progress,
		Retry: o.Retry, JobTimeout: o.JobTimeout, KeepGoing: o.KeepGoing,
		GangWidth: o.GangWidth, ProgressEvery: o.ProgressEvery, EpochEvery: o.EpochEvery}
	if o.MetricsAddr != "" {
		reg := obs.NewRegistry()
		reg.RegisterRuntime()
		srv, serr := obs.Serve(o.MetricsAddr, reg)
		if serr != nil {
			return nil, serr
		}
		// Drain the exposition endpoint when the batch ends and surface
		// its close error instead of abandoning the listener goroutine.
		defer func() {
			if cerr := srv.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		eng.Metrics = reg
	}
	if o.TraceFile != "" {
		eng.Tracer = obs.NewTracer()
	}
	if o.Out != "" {
		sink, err := runner.OpenSink(o.Out, o.Resume)
		if err != nil {
			return nil, err
		}
		defer sink.Close()
		eng.Sink = sink
	}
	if o.KeepGoing {
		if path := failedOutPath(o); path != "" {
			eng.Ledger = runner.NewLedger(path)
			defer eng.Ledger.Close()
		}
	}
	rs, err = eng.Run(ctx, m)
	if eng.Tracer != nil {
		if werr := eng.Tracer.WriteFile(o.TraceFile); werr != nil && err == nil {
			err = werr
		}
	}
	return rs, err
}

// BatchJob is one fully resolved simulation of a batch: the sweep
// coordinate (workload, scheme, point label, seed), the resolved
// config, and the content-derived job ID the checkpoint machinery
// keys on. Matrix.Jobs enumerates them in sink order.
type BatchJob = runner.Job

// JobKey returns the content key a fully resolved configuration gets
// as its batch-job ID: a short hex digest over every field of cfg.
// Two jobs share a key exactly when their resolved configs are equal,
// which is what lets streamed records, ledger entries, resumed sinks,
// and sweep status be correlated without positional bookkeeping.
func JobKey(cfg Config) string { return runner.JobKey(cfg) }

// SweepID derives the content ID a sweep service assigns to a job
// list resolved under the given matrix name — the same identity
// SweepClient.Submit reports, computable offline from Matrix.Jobs.
func SweepID(name string, jobs []BatchJob) string { return sweepd.SweepID(name, jobs) }

// SweepClient talks to a sweepd daemon (cmd/sweepd) over HTTP/JSON:
// Submit/SubmitMatrix start sweeps, Status/List/Cancel/Wait manage
// them, StreamResults/StreamEpochs follow their JSONL streams with
// resume-from-offset, and RunMatrix is the remote counterpart of
// RunBatch, returning an assembled BatchResult.
type SweepClient = sweepd.Client

// SweepSpec is the wire form of a sweep: declarative axes (the Matrix
// cross product) or a pre-resolved job list, plus execution options.
type SweepSpec = sweepd.Spec

// SweepPoint is the serializable form of a config-override point: a
// label plus a partial Config JSON overlay.
type SweepPoint = sweepd.PointSpec

// SweepOptions is a sweep's execution policy (retries, timeouts, gang
// width, epoch sampling). Policy is not content: it never changes the
// output bytes and is excluded from the sweep ID.
type SweepOptions = sweepd.RunOptions

// SweepStatus reports one sweep's identity, state, and job progress.
type SweepStatus = sweepd.Status

// Sweep lifecycle states, as reported by SweepStatus.State.
const (
	SweepQueued    = sweepd.StateQueued
	SweepRunning   = sweepd.StateRunning
	SweepDone      = sweepd.StateDone
	SweepFailed    = sweepd.StateFailed
	SweepCancelled = sweepd.StateCancelled
)

// SweepClientOptions tunes a SweepClient's transport: per-phase
// network timeouts, a per-call deadline, and the retry policy every
// unary call rides (idempotent by construction, so retried submissions
// and reports are safe). The zero value means defaults.
type SweepClientOptions = sweepd.ClientOptions

// Dial returns a client for the sweepd daemon at addr ("host:port" or
// a full http:// URL) with default timeouts and retry policy. No
// connection is made until the first call.
func Dial(addr string) (*SweepClient, error) { return sweepd.Dial(addr) }

// DialWith is Dial with explicit transport options.
func DialWith(addr string, o SweepClientOptions) (*SweepClient, error) {
	return sweepd.DialWith(addr, o)
}

// IsOverloaded reports whether err is a daemon load-shed response
// (HTTP 429): the daemon is healthy but at its submission-queue or
// stream cap. The client's retry policy already honors the attached
// Retry-After; a true return after retries means sustained overload.
func IsOverloaded(err error) bool { return sweepd.IsOverloaded(err) }

// SweepSpecFromMatrix renders a locally declared Matrix into its wire
// form by enumerating its jobs — the bridge from closure-bearing
// MatrixPoints to the serializable SweepSpec.
func SweepSpecFromMatrix(m Matrix, o SweepOptions) (SweepSpec, error) {
	return sweepd.SpecFromMatrix(m, o)
}

// failedOutPath derives the failure-ledger path from the options.
func failedOutPath(o BatchOptions) string {
	if o.FailedOut != "" {
		return o.FailedOut
	}
	if o.Out == "" {
		return ""
	}
	return strings.TrimSuffix(o.Out, ".jsonl") + ".failed.jsonl"
}
