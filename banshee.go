// Package banshee is the public API of the Banshee DRAM-cache
// reproduction: a trace-driven multicore memory-system simulator that
// implements the Banshee design (Yu et al., MICRO 2017) alongside the
// baselines its evaluation compares against (Alloy Cache + BEAR, Unison
// Cache, tagless DRAM cache (TDC), software-managed HMA, and the
// NoCache / CacheOnly bounds).
//
// The typical flow is three lines: build a Config (DefaultConfig gives
// the paper's Table 2/3 system at the library's default 1/16 capacity
// scale), pick a workload from Workloads() and a scheme from Schemes(),
// and call Run. The returned Result carries cycles, MPKI, and the DRAM
// traffic breakdown by class used throughout the paper's figures.
//
//	cfg := banshee.DefaultConfig()
//	res, err := banshee.Run(cfg, "pagerank", "Banshee")
//
// For lower-level control (custom schemes, direct access to the tag
// buffer, FBR metadata, DRAM timing, or the VM substrate), see the
// internal packages; cmd/experiments regenerates every table and figure
// of the paper's evaluation.
package banshee

import (
	"banshee/internal/sim"
	"banshee/internal/stats"
	"banshee/internal/trace"
)

// Config is a full simulation configuration; see sim.Config for field
// documentation. Zero values are invalid — start from DefaultConfig.
type Config = sim.Config

// Result is the set of measurements from one run.
type Result = stats.Sim

// SchemeSpec selects and tunes a DRAM-cache scheme.
type SchemeSpec = sim.SchemeSpec

// DefaultConfig returns the paper's 16-core system (Table 2) with
// Banshee's Table 3 parameters, scaled per DESIGN.md §3.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run simulates the named workload under the named scheme. Scheme names
// follow the paper's labels: "NoCache", "CacheOnly", "Alloy 1",
// "Alloy 0.1", "Unison", "TDC", "HMA", "Banshee", "Banshee LRU",
// "Banshee NoSample", "Banshee 2M"; append "+BATMAN" for bandwidth
// balancing (§5.4.2).
func Run(cfg Config, workload, scheme string) (Result, error) {
	return sim.Run(cfg, workload, scheme)
}

// Speedup returns how much faster a ran than base (the paper's Fig. 4
// normalization when base is the NoCache run).
func Speedup(a, base Result) float64 { return stats.Speedup(&a, &base) }

// Workloads returns the evaluation's 16 workload names (§5.1.2).
func Workloads() []string { return trace.Names() }

// GraphWorkloads returns the graph-analytics subset (§5.4.1).
func GraphWorkloads() []string { return trace.GraphNames() }

// Schemes returns the scheme names of the paper's main comparison.
func Schemes() []string { return sim.SchemeNames() }

// ParseScheme resolves a display name into a tunable SchemeSpec.
func ParseScheme(name string) (SchemeSpec, error) { return sim.ParseScheme(name) }
