package banshee_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"banshee"
)

// e2eMatrix is the sweep both service e2e tests run: small enough to
// finish in seconds, large enough that a kill lands mid-sweep.
func e2eMatrix() banshee.Matrix {
	base := banshee.DefaultConfig()
	base.Cores = 2
	base.InstrPerCore = 300_000
	base.Seed = 11
	return banshee.Matrix{Name: "e2e", Base: base,
		Workloads: []string{"pagerank", "lbm"},
		Schemes:   []string{"NoCache", "Alloy 1", "Banshee"}}
}

// goldenBatch runs the matrix locally through RunBatch and returns the
// checkpoint bytes the service must converge to.
func goldenBatch(t *testing.T, m banshee.Matrix) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "golden.jsonl")
	if _, err := banshee.RunBatch(context.Background(), m, banshee.BatchOptions{Out: path}); err != nil {
		t.Fatalf("golden RunBatch: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func buildSweepd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "sweepd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sweepd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/sweepd: %v\n%s", err, out)
	}
	return bin
}

var servingRE = regexp.MustCompile(`serving on http://([0-9.:]+)`)

// startSweepd launches `sweepd serve` on a free port and returns the
// process and its resolved address, parsed from the startup log line.
func startSweepd(t *testing.T, bin, state, logPath string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"serve", "-listen", "127.0.0.1:0", "-state", state, "-quiet"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		logf.Close()
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		b, _ := os.ReadFile(logPath)
		if m := servingRE.FindSubmatch(b); m != nil {
			return cmd, string(m[1])
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	b, _ := os.ReadFile(logPath)
	t.Fatalf("sweepd never reported its address; log:\n%s", b)
	return nil, ""
}

// scrapeMetric fetches /metrics and returns the named unlabeled series'
// value (0 with ok=false when absent).
func scrapeMetric(addr, name string) (float64, bool) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, found := strings.CutPrefix(line, name+" "); found {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestSweepdSIGKILLRestartConvergence is the service's durability
// contract on the real binary: a daemon SIGKILLed mid-sweep — no
// defers, no handlers, possibly mid-write — restarted on the same
// state directory resumes the sweep and serves results byte-identical
// to a local RunBatch of the same Matrix.
func TestSweepdSIGKILLRestartConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a subprocess")
	}
	dir := t.TempDir()
	bin := buildSweepd(t, dir)
	m := e2eMatrix()
	golden := goldenBatch(t, m)

	state := filepath.Join(dir, "state")
	cmd, addr := startSweepd(t, bin, state, filepath.Join(dir, "serve1.log"))
	c, err := banshee.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.SubmitMatrix(ctx, m, banshee.SweepOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Let checkpoint records reach the disk, then SIGKILL the daemon.
	resultsFile := filepath.Join(state, "sweeps", st.ID, "results.jsonl")
	deadline := time.Now().Add(60 * time.Second)
	killed := false
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(resultsFile); err == nil && bytes.Count(b, []byte{'\n'}) >= 2 {
			cmd.Process.Signal(syscall.SIGKILL)
			killed = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	err = cmd.Wait()
	if !killed {
		t.Fatalf("no checkpoint records appeared before the deadline (daemon err: %v)", err)
	}

	// Restart on the same state directory: the daemon must resume the
	// sweep unprompted and finish it.
	_, addr2 := startSweepd(t, bin, state, filepath.Join(dir, "serve2.log"))
	c2, err := banshee.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c2.Wait(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after restart: %v", err)
	}
	if final.State != banshee.SweepDone || final.Done != final.Jobs {
		t.Fatalf("resumed sweep ended %+v, want done %d/%d", final, final.Jobs, final.Jobs)
	}

	var streamed bytes.Buffer
	if _, err := c2.StreamResults(ctx, st.ID, 0, &streamed); err != nil {
		t.Fatalf("stream after restart: %v", err)
	}
	if !bytes.Equal(streamed.Bytes(), golden) {
		t.Fatalf("service results diverge from local RunBatch:\n got %d bytes\nwant %d bytes",
			streamed.Len(), len(golden))
	}
	onDisk, err := os.ReadFile(resultsFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, golden) {
		t.Fatalf("state-dir results diverge from local RunBatch (%d vs %d bytes)", len(onDisk), len(golden))
	}
	if v, ok := scrapeMetric(addr2, "sweepd_sweeps_finished_total"); !ok || v < 1 {
		t.Fatalf("sweepd_sweeps_finished_total = %v (present=%v), want >= 1", v, ok)
	}
}

// TestSweepdWorkerSIGKILLNoDuplicates: SIGKILLing an attached worker
// process mid-lease costs only its leased jobs — their leases expire,
// the daemon re-runs them locally, and the final stream holds no
// duplicate records (it is byte-identical to a local run).
func TestSweepdWorkerSIGKILLNoDuplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills subprocesses")
	}
	dir := t.TempDir()
	bin := buildSweepd(t, dir)
	m := e2eMatrix()
	golden := goldenBatch(t, m)

	state := filepath.Join(dir, "state")
	_, addr := startSweepd(t, bin, state, filepath.Join(dir, "serve.log"),
		"-lease-ttl", "1s", "-parallel", "2")

	wlog, err := os.Create(filepath.Join(dir, "worker.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	wk := exec.Command(bin, "worker", "-join", addr, "-parallel", "2")
	wk.Stdout = wlog
	wk.Stderr = wlog
	if err := wk.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if wk.ProcessState == nil {
			wk.Process.Kill()
			wk.Wait()
		}
	})

	c, err := banshee.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.SubmitMatrix(ctx, m, banshee.SweepOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// SIGKILL the worker the moment it holds a lease.
	deadline := time.Now().Add(60 * time.Second)
	leased := false
	for time.Now().Before(deadline) {
		if v, ok := scrapeMetric(addr, "sweepd_leases_outstanding"); ok && v > 0 {
			wk.Process.Signal(syscall.SIGKILL)
			leased = true
			break
		}
		if final, err := c.Status(ctx, st.ID); err == nil && final.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !leased {
		b, _ := os.ReadFile(filepath.Join(dir, "worker.log"))
		t.Fatalf("worker never held a lease before the sweep finished; worker log:\n%s", b)
	}
	wk.Wait()

	final, err := c.Wait(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != banshee.SweepDone {
		t.Fatalf("sweep ended %+v, want done", final)
	}

	var streamed bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), golden) {
		t.Fatalf("results after worker SIGKILL diverge from local RunBatch:\n got %d bytes\nwant %d bytes",
			streamed.Len(), len(golden))
	}

	// The killed worker either left an expired lease behind (re-run
	// locally) or had already delivered results; both must be visible
	// in the service series.
	exp, _ := scrapeMetric(addr, "sweepd_lease_expiries_total")
	rem, _ := scrapeMetric(addr, "sweepd_remote_results_total")
	if exp+rem == 0 {
		t.Fatalf("no lease expiries and no remote results recorded — worker never participated")
	}
}

// TestSweepStateConstants smokes the exported sweep-service surface:
// the state constants agree with Status.Terminal, JobKey matches the
// enumerated content IDs, and SweepSpecFromMatrix round-trips the job
// list.
func TestSweepStateConstants(t *testing.T) {
	for _, s := range []string{banshee.SweepDone, banshee.SweepFailed, banshee.SweepCancelled} {
		if !(banshee.SweepStatus{State: s}).Terminal() {
			t.Fatalf("state %q should be terminal", s)
		}
	}
	for _, s := range []string{banshee.SweepQueued, banshee.SweepRunning} {
		if (banshee.SweepStatus{State: s}).Terminal() {
			t.Fatalf("state %q should not be terminal", s)
		}
	}
	m := e2eMatrix()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if banshee.JobKey(j.Config) != j.ID {
			t.Fatalf("JobKey(%s) != enumerated ID %s", j.Coord(), j.ID)
		}
	}
	if banshee.SweepID(m.Name, jobs) == "" {
		t.Fatal("empty sweep ID")
	}
	spec, err := banshee.SweepSpecFromMatrix(m, banshee.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Jobs) != len(jobs) {
		t.Fatalf("spec carries %d jobs, want %d", len(spec.Jobs), len(jobs))
	}
}
