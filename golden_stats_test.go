// Golden-stats equivalence tests: every registered scheme display name
// (plus a +BATMAN modifier sample) × one workload of each synthetic
// kind is pinned to byte-identical stats.Sim JSON in
// testdata/golden_stats.json. The golden file was captured before the
// data-oriented storage refactor (flat SoA caches, devirtualized event
// queue, flat-map page table/TLB), so these tests prove the layout work
// changed *how* the simulator computes, never *what* it computes.
//
// Regenerate deliberately with:
//
//	go test -run TestGoldenStats -update .
//
// and justify the diff in the commit message — a golden change means
// simulation output changed.
package banshee_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"banshee"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_stats.json from this tree")

// goldenConfig is small enough to run every scheme × workload pair in
// milliseconds but still exercises the interesting machinery: both
// cores, TLB miss paths, LLC evictions, Banshee tag-buffer flushes, and
// (via the shortened epoch) HMA's stop-the-world remap routine.
func goldenConfig() banshee.Config {
	cfg := banshee.DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 60_000
	cfg.Seed = 42
	cfg.Scheme.HMAEpochAccesses = 2000
	return cfg
}

// goldenWorkloads covers one name per synthetic-source kind: a SPEC
// profile, a multi-programmed mix, and a graph kernel. The tracefile
// kind is covered by TestGoldenReplayIdentity below.
var goldenWorkloads = []string{"mcf", "mix1", "pagerank"}

// goldenSchemes is the fixed built-in list (not RegisteredSchemes(),
// which other tests in this package extend at runtime), plus one
// +BATMAN modifier sample per wrapped family.
func goldenSchemes() []string {
	return []string{
		"Alloy", "Alloy 1", "Alloy 0.1",
		"Banshee", "Banshee LRU", "Banshee NoSample", "Banshee Duel",
		"Banshee FP", "Banshee 2M",
		"NoCache", "CacheOnly", "CAMEO", "HMA", "TDC", "Unison",
		"Banshee+BATMAN", "Alloy 1+BATMAN",
	}
}

func TestGoldenStats(t *testing.T) {
	got := make(map[string]banshee.Result)
	for _, scheme := range goldenSchemes() {
		for _, w := range goldenWorkloads {
			res, err := banshee.Run(goldenConfig(), w, scheme)
			if err != nil {
				t.Fatalf("%s × %s: %v", scheme, w, err)
			}
			got[scheme+" | "+w] = res
		}
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	path := filepath.Join("testdata", "golden_stats.json")
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if string(want) == string(data) {
		return
	}
	// Byte mismatch: diff entry by entry so the failure names the
	// scheme × workload pairs that drifted instead of dumping JSON.
	var wantMap map[string]banshee.Result
	if err := json.Unmarshal(want, &wantMap); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	for key, g := range got {
		w, ok := wantMap[key]
		if !ok {
			t.Errorf("%s: not in golden file (new scheme or workload? rerun -update)", key)
			continue
		}
		if g != w {
			t.Errorf("%s: stats drifted from golden\n got: %+v\nwant: %+v", key, g, w)
		}
	}
	for key := range wantMap {
		if _, ok := got[key]; !ok {
			t.Errorf("%s: in golden file but no longer produced", key)
		}
	}
	if !t.Failed() {
		t.Error("golden JSON bytes differ but entries match — formatting drift; rerun -update")
	}
}

// TestGoldenReplayIdentity pins the tracefile workload kind across the
// same refactor: a recorded trace replayed through "file:<path>" must
// produce the same statistics as the direct synthetic run it captured,
// for a tag-buffer scheme and a map-heavy baseline.
func TestGoldenReplayIdentity(t *testing.T) {
	cfg := goldenConfig()
	path := filepath.Join(t.TempDir(), "mcf.btrc")
	err := banshee.RecordTrace(path, "mcf", banshee.RecordOptions{
		Cores: cfg.Cores, Seed: cfg.Seed, EventsPerCore: cfg.InstrPerCore,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"Banshee", "HMA"} {
		direct, err := banshee.Run(cfg, "mcf", scheme)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Cores = 0 // adopt the recording's core count
		replay, err := banshee.Run(rcfg, "file:"+path, scheme)
		if err != nil {
			t.Fatal(err)
		}
		replay.Workload = direct.Workload // the label legitimately differs
		if direct != replay {
			t.Errorf("%s: replayed stats differ from direct run\ndirect: %+v\nreplay: %+v", scheme, direct, replay)
		}
	}
}
