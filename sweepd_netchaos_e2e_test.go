// Network-chaos e2e on the real binaries: workers reach the daemon
// only through a byte-level chaos proxy (connection cuts, stalls,
// partition windows) while one of them is SIGKILL'd mid-lease — and
// the sweep still converges byte-identical to a local RunBatch. A
// second test smokes the operator surface: daemon backpressure answers
// 429 through sweepctl, and `sweepctl wait -timeout` exits 124.
package banshee_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"banshee"
	"banshee/internal/fault/netfault"
	"banshee/internal/runner"
)

// buildBin compiles ./cmd/<name> into dir.
func buildBin(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

// startWorker launches `sweepd worker -join addr` logging to logPath.
func startWorker(t *testing.T, bin, addr, logPath string) *exec.Cmd {
	t.Helper()
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	wk := exec.Command(bin, "worker", "-join", addr, "-parallel", "1")
	wk.Stdout = logf
	wk.Stderr = logf
	if err := wk.Start(); err != nil {
		logf.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		logf.Close()
		if wk.ProcessState == nil {
			wk.Process.Kill()
			wk.Wait()
		}
	})
	return wk
}

// TestNetChaosProxyPartitionSIGKILL is the subprocess acceptance run:
// two worker processes attached through a chaos proxy that cuts and
// stalls their connections, a deliberate partition window mid-sweep,
// and a SIGKILL of one worker while it holds a lease. The daemon must
// absorb all of it — results byte-identical to a local RunBatch, zero
// duplicate records.
func TestNetChaosProxyPartitionSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills subprocesses")
	}
	dir := t.TempDir()
	bin := buildSweepd(t, dir)
	m := e2eMatrix()
	golden := goldenBatch(t, m)

	state := filepath.Join(dir, "state")
	_, addr := startSweepd(t, bin, state, filepath.Join(dir, "serve.log"),
		"-lease-ttl", "1s", "-parallel", "2")

	proxy, err := netfault.NewProxy(addr, netfault.ProxyPlan{
		Seed: 7, CutRate: 0.10, StallRate: 0.10,
		CutAfter: 8 << 10, Stall: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	wk1 := startWorker(t, bin, proxy.Addr(), filepath.Join(dir, "worker1.log"))
	startWorker(t, bin, proxy.Addr(), filepath.Join(dir, "worker2.log"))

	c, err := banshee.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	st, err := c.SubmitMatrix(ctx, m, banshee.SweepOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Once a worker holds a lease: partition the proxy and SIGKILL one
	// worker inside the window — the worst compound failure the service
	// is built for.
	deadline := time.Now().Add(60 * time.Second)
	disrupted := false
	for time.Now().Before(deadline) {
		if v, ok := scrapeMetric(addr, "sweepd_leases_outstanding"); ok && v > 0 {
			proxy.Partition(time.Second)
			wk1.Process.Signal(syscall.SIGKILL)
			disrupted = true
			break
		}
		if final, err := c.Status(ctx, st.ID); err == nil && final.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !disrupted {
		t.Fatalf("no worker held a lease before the sweep finished")
	}
	wk1.Wait()

	final, err := c.Wait(ctx, st.ID, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != banshee.SweepDone {
		t.Fatalf("sweep ended %+v, want done", final)
	}

	var streamed bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), golden) {
		t.Fatalf("results after partition+SIGKILL diverge from local RunBatch:\n got %d bytes\nwant %d bytes",
			streamed.Len(), len(golden))
	}
	recs, err := runner.ParseRecords(streamed.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[fmt.Sprintf("%s|%s|%s|%s|%d", r.Matrix, r.Label, r.Workload, r.Scheme, r.Seed)]++
	}
	for coord, n := range seen {
		if n != 1 {
			t.Fatalf("coordinate %s recorded %d times", coord, n)
		}
	}
	if proxy.PartitionCount() == 0 {
		t.Fatal("partition window never tripped — the chaos path was not exercised")
	}
	exp, _ := scrapeMetric(addr, "sweepd_lease_expiries_total")
	rem, _ := scrapeMetric(addr, "sweepd_remote_results_total")
	if exp+rem == 0 {
		t.Fatal("no lease expiries and no remote results — workers never participated")
	}
}

// TestNetChaos429AndWaitTimeout smokes the operator surface under
// load: with the daemon at max-active 1 / max-queued 1, a third
// submission through sweepctl is refused with the daemon's 429, and
// `sweepctl wait -timeout` on the still-running sweep exits 124.
func TestNetChaos429AndWaitTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds subprocesses")
	}
	dir := t.TempDir()
	bin := buildSweepd(t, dir)
	ctl := buildBin(t, dir, "sweepctl")

	state := filepath.Join(dir, "state")
	_, addr := startSweepd(t, bin, state, filepath.Join(dir, "serve.log"),
		"-max-active", "1", "-max-queued", "1", "-parallel", "1")

	// Three distinct long-running specs: one to run, one to queue, one
	// to be shed.
	specPath := func(i int) string {
		m := e2eMatrix()
		m.Name = fmt.Sprintf("shed-%d", i)
		m.Base.InstrPerCore = 20_000_000 // minutes of work; cancelled at the end
		m.Base.Seed = uint64(50 + i)
		spec, err := banshee.SweepSpecFromMatrix(m, banshee.SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("spec%d.json", i))
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	ctlRun := func(args ...string) (string, int) {
		cmd := exec.Command(ctl, append([]string{"-addr", addr}, args...)...)
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("sweepctl %v: %v\n%s", args, err, out)
		}
		return string(out), code
	}

	c, err := banshee.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if out, code := ctlRun("submit", specPath(0)); code != 0 {
		t.Fatalf("submit 0 exited %d:\n%s", code, out)
	}
	var st0 banshee.SweepStatus
	// Wait for sweep 0 to leave the queue so it stops counting against
	// max-queued.
	sts, err := c.List(ctx)
	if err != nil || len(sts) != 1 {
		t.Fatalf("list after first submit: %v (%d sweeps)", err, len(sts))
	}
	st0 = sts[0]
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cur, err := c.Status(ctx, st0.ID); err == nil && cur.State == banshee.SweepRunning {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if out, code := ctlRun("submit", specPath(1)); code != 0 {
		t.Fatalf("submit 1 (queued) exited %d:\n%s", code, out)
	}
	// The queue is full: the third submission must be shed with 429
	// (sweepctl retries the daemon's Retry-After, then reports it).
	out, code := ctlRun("submit", specPath(2))
	if code == 0 || !bytes.Contains([]byte(out), []byte("429")) {
		t.Fatalf("submit over full queue exited %d without a 429:\n%s", code, out)
	}

	// `wait -timeout` on the still-running sweep exits 124.
	out, code = ctlRun("wait", st0.ID, "-timeout", "500ms")
	if code != 124 {
		t.Fatalf("wait -timeout exited %d, want 124:\n%s", code, out)
	}

	for _, st := range mustList(t, c, ctx) {
		c.Cancel(ctx, st.ID)
	}
}

func mustList(t *testing.T, c *banshee.SweepClient, ctx context.Context) []banshee.SweepStatus {
	t.Helper()
	sts, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return sts
}
