# Developer entry points. The benchmark trajectory (BENCH_6.json) is
# machine-readable output of `make bench`; CI gates allocs/op against it
# with a ±20% tolerance (time gates only make sense on one machine —
# see PERFORMANCE.md "Keeping it fast"). Earlier baselines (BENCH_5.json)
# stay committed as the trajectory's history.

# The benchmark set tracked in BENCH_6.json: the end-to-end run, the
# micro-benchmarks of every hot-loop structure, and the gang-vs-
# independent sweep throughput comparison (PERFORMANCE.md "Pass 3").
BENCHES := BenchmarkEndToEnd$$|BenchmarkSRAMCache$$|BenchmarkTagBuffer$$|BenchmarkBansheeAccess$$|BenchmarkDRAMAccess$$|BenchmarkTraceGen$$|BenchmarkGangSweep$$

# Stamped into captured BENCH files so a committed baseline records the
# commit that produced it ("unknown" outside a git checkout).
GIT_SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: test bench bench-check

test:
	go build ./... && go test ./...

# bench refreshes BENCH_6.json in place. Commit the result when a perf
# change is deliberate; the diff is the perf review. The go test output
# lands in a temp file first so a mid-suite failure fails the target
# instead of silently writing a partial baseline (sh has no pipefail).
bench:
	go test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime 1s -count 1 . > /tmp/bench_run.txt
	go run ./cmd/benchjson -sha $(GIT_SHA) < /tmp/bench_run.txt > /tmp/bench_new.json
	mv /tmp/bench_new.json BENCH_6.json
	@cat BENCH_6.json

# bench-check runs the same suite (same benchtime, so warmup
# allocations amortize identically) and fails if allocs/op drifted more
# than 20% from the committed baseline (allocation counts are
# deterministic, so this is meaningful on any hardware).
bench-check:
	go test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime 1s -count 1 . > /tmp/bench_check.txt
	go run ./cmd/benchjson < /tmp/bench_check.txt > /tmp/bench_now.json
	go run ./cmd/benchjson -diff -tol 0.2 -metric allocs BENCH_6.json /tmp/bench_now.json
