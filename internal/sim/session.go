package sim

import (
	"context"
	"fmt"

	"banshee/internal/stats"
)

// stepQuantum is the instruction batch a managed run advances between
// cancellation checks: large enough that the per-batch bookkeeping
// (heap refill, context poll) is noise, small enough that cancellation
// lands within a fraction of a millisecond of simulated work.
const stepQuantum = 1 << 16

// Session is a stepwise simulation run: a System plus the lifecycle
// around it. Where Run is fire-and-forget, a Session can advance in
// increments (Step), report where it is (Progress), capture windowed
// statistics mid-flight (Snapshot), sample a time series (OnEpoch),
// and run to completion under a context (Run) — cancellation returns
// the partial measurement window alongside ctx.Err().
//
// A stepped run is bit-identical to a one-shot run: stepping changes
// when the caller observes the simulation, never what it computes.
// Sessions are single-goroutine objects; run distinct Sessions in
// parallel instead of sharing one.
type Session struct {
	sys *System
}

// NewSession assembles a run of the named workload under the named
// scheme on top of cfg, resolving the scheme display name exactly as
// Run does (tuning fields pre-set on cfg.Scheme are preserved).
func NewSession(cfg Config, workload, scheme string) (*Session, error) {
	spec, err := ResolveScheme(scheme, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	cfg.Workload = workload
	cfg.Scheme = spec
	return NewSessionConfig(cfg)
}

// NewSessionConfig assembles a run of cfg exactly as given
// (cfg.Workload and cfg.Scheme must be fully populated).
func NewSessionConfig(cfg Config) (*Session, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{sys: sys}, nil
}

// System returns the underlying assembled system (diagnostics, tests,
// direct access to the scheme under test).
func (s *Session) System() *System { return s.sys }

// Step advances the run until at least n more instructions have
// retired across all cores, returning done=true once the instruction
// budget is exhausted. The steady-state Step path does not allocate.
// Errors (trace-replay corruption or wrap-around, a cancelled Run) are
// terminal: the run stops, resources are released, and every later
// call returns the same error.
func (s *Session) Step(n uint64) (done bool, err error) {
	return s.sys.Step(n)
}

// Run drives the session to completion under ctx. On cancellation it
// stops at the next step boundary, releases the run's resources, and
// returns the partial measurement window captured at that instant
// together with an error wrapping ctx.Err() — so errors.Is(err,
// context.Canceled) (or DeadlineExceeded) identifies interruption, and
// the returned stats remain internally consistent for reporting.
//
// Run on a session that already reached a terminal state reports that
// state (the final stats, or the terminal error) without consulting
// ctx — a cancelled context cannot retroactively fail a finished run.
func (s *Session) Run(ctx context.Context) (stats.Sim, error) {
	for {
		if err := s.sys.Err(); err != nil {
			return stats.Sim{}, err
		}
		if s.sys.Done() {
			return s.sys.final, nil
		}
		if err := ctx.Err(); err != nil {
			snap := s.Snapshot()
			werr := fmt.Errorf("sim: run cancelled after %d of %d instructions: %w",
				snap.Retired, s.sys.totalBudget, err)
			s.sys.fail(werr)
			return snap.Window, werr
		}
		if _, err := s.sys.Step(stepQuantum); err != nil {
			return stats.Sim{}, err
		}
	}
}

// Result returns the final statistics of a completed run. Calling it
// before completion (or after a failed run) returns an error.
func (s *Session) Result() (stats.Sim, error) {
	if err := s.sys.Err(); err != nil {
		return stats.Sim{}, err
	}
	if !s.sys.Done() {
		p := s.sys.Progress()
		return stats.Sim{}, fmt.Errorf("sim: session still running (%d of %d instructions)",
			p.Retired, p.Total)
	}
	return s.sys.final, nil
}

// Progress reports where the run is: instructions retired against the
// budget, the simulated clock, and the lifecycle phase.
func (s *Session) Progress() Progress { return s.sys.Progress() }

// Snapshot captures the current measurement window without disturbing
// the run; see System.Snapshot for windowing semantics.
func (s *Session) Snapshot() stats.Snapshot { return s.sys.Snapshot() }

// OnEpoch registers fn to receive a windowed snapshot every `every`
// retired instructions; see System.OnEpoch for exact boundary
// semantics. Use it to sample a time series (MPKI, bandwidth) while
// the run progresses.
func (s *Session) OnEpoch(every uint64, fn func(stats.Snapshot)) {
	s.sys.OnEpoch(every, fn)
}

// MSHRStalls reports MSHR-full stall events and the core cycles lost
// to them; see System.MSHRStalls.
func (s *Session) MSHRStalls() (stalls, cycles uint64) { return s.sys.MSHRStalls() }

// Err returns the session's terminal error, if any.
func (s *Session) Err() error { return s.sys.Err() }

// Close releases the session's resources (replayed trace files hold an
// open file). Completed and cancelled runs release themselves; Close
// is for abandoning a session early. Idempotent.
func (s *Session) Close() error {
	s.sys.closeSource()
	return nil
}

// Progress reports where a run is, for progress bars and logs.
type Progress struct {
	// Retired is the number of instructions retired so far, summed over
	// all cores; Total is the run's instruction budget. Their ratio is
	// the run's completion fraction.
	Retired, Total uint64
	// Cycles is the simulated wall clock (max core clock).
	Cycles uint64
	// Phase is the run's lifecycle phase (warmup, measure, done).
	Phase stats.Phase
}

// Fraction returns completion as a value in [0,1].
func (p Progress) Fraction() float64 {
	if p.Total == 0 {
		return 0
	}
	f := float64(p.Retired) / float64(p.Total)
	if f > 1 {
		f = 1
	}
	return f
}
