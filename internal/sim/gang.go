package sim

import (
	"context"
	"fmt"
	"io"
	"math"

	"banshee/internal/cache"
	"banshee/internal/dram"
	"banshee/internal/mem"
	"banshee/internal/registry"
	"banshee/internal/stats"
	"banshee/internal/util"
	"banshee/internal/vm"
	"banshee/internal/workload"
)

// Gang execution (DESIGN.md §12): N simulations of the same workload
// stream run in lockstep as lanes of one Gang. The insight is that for
// schemes that never touch the shared VM substrate, everything up to
// the L2 boundary — trace generation, TLB/page-table translation, and
// the per-core L1/L2 caches — is a pure function of the per-core event
// stream, independent of the lane's seed and back-end timing. The Gang
// therefore runs that front end ONCE, records each event's back-end-
// visible residue (gap, hit/miss bits, the L3 fill addresses the L2
// victims produce, and the demand address of each LLC access), and
// replays the residue through N exact per-lane back ends: per-lane L3,
// scheme, DRAM timing, MSHR/dependence stalls, and the event-ordered
// core scheduler. Every lane's statistics are byte-identical to the
// same config run alone — the lane IS a System, reusing Step verbatim
// — while the shared front end amortizes the majority of per-event
// work across the gang.

// Per-event flag bits recorded by the shared front end. An event
// carries a residual record iff any of feFill0/feFill1/feL2Miss is set.
const (
	feTLBMiss = 1 << iota // translation missed the TLB (page-walk cost)
	feL1Miss              // missed L1 → L2 accessed
	feL2Miss              // missed L2 → LLC accessed (residual addr valid)
	feLarge               // the access resolves on a 2 MB page
	feWrite               // the demand access is a write
	feFill0               // L1-evict cascade produced an L3 fill (fill[0])
	feFill1               // the L2 victim produced an L3 fill (fill[1])

	feHasRes = feFill0 | feFill1 | feL2Miss
)

// fillRec is one dirty line the shared front end pushed out of L2; each
// lane fills it into its own L3.
type fillRec struct {
	addr mem.Addr
	meta uint8
}

// resRec is the sparse per-event residue: the demand address (valid on
// feL2Miss) and up to two L3 fills, in the exact order the independent
// path would apply them (fill[0] from the L1-evict cascade through
// l2.Fill, then — only on an L2 miss — fill[1] from the L2 victim).
type resRec struct {
	addr mem.Addr
	fill [2]fillRec
}

// feCore is one core's shared front end: its private L1/L2/TLB replica
// plus the recorded event stream in SoA form (gaps and flags dense,
// residues sparse). base/resBase are the global indices of element 0 —
// the stream is trimmed to the slowest lane's cursor as the gang
// advances, so memory stays bounded by lane skew, not run length.
type feCore struct {
	l1, l2 *cache.Cache
	tlb    *vm.TLB

	gaps    []uint32
	flags   []uint8
	res     []resRec
	base    uint64
	resBase uint64
	// genInstr counts instructions generated so far (Σ gap+1). Every
	// lane consumes the same event prefix — retirement is purely
	// gap-driven, so all lanes cross the per-core budget at the same
	// event — which makes this the exact generate-ahead cap: events
	// past the budget crossing would never be consumed by any lane.
	genInstr uint64
}

// trimSlack is the trim hysteresis in events: prefixes shorter than
// this stay in place so trimming costs amortized O(1) per event.
const trimSlack = 8192

// gangStream is the shared front end: one workload source, one page
// table, and one feCore per simulated core, generating each core's
// event residue on demand as the fastest lane reaches it.
type gangStream struct {
	src workload.Source
	pt  *vm.PageTable
	fe  []feCore
	// budget is the per-core instruction budget (identical across lanes
	// — InstrPerCore is part of GangKey); generation stops at the event
	// that crosses it, which is the last event any lane consumes.
	budget uint64

	closed bool
}

// genAhead is the generation chunk: when the lead lane touches the end
// of a core's generated stream, the front end materializes up to this
// many further events at once so batchShared can replay runs of
// core-private events even for the lane driving generation.
const genAhead = 256

// newGangStream builds the front end for base (the gang's shared
// config shape) over an already-opened source.
func newGangStream(base Config, cores int, src workload.Source) *gangStream {
	pt := vm.NewPageTable()
	pt.DefaultLarge = base.LargePages
	g := &gangStream{src: src, pt: pt, fe: make([]feCore, cores), budget: base.InstrPerCore}
	for i := 0; i < cores; i++ {
		f := &g.fe[i]
		f.l1 = cache.New(cache.Config{
			Name: fmt.Sprintf("L1d-%d", i), SizeBytes: base.L1Bytes, Ways: base.L1Ways,
			LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: base.Seed + uint64(i),
		})
		f.l2 = cache.New(cache.Config{
			Name: fmt.Sprintf("L2-%d", i), SizeBytes: base.L2Bytes, Ways: base.L2Ways,
			LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: base.Seed + uint64(i),
		})
		f.tlb = vm.NewTLB(base.TLBEntries)
	}
	return g
}

// gen simulates one more front-end event for core f, appending its
// residue to the stream. The order of operations replicates
// System.step up to the L3 boundary exactly, including the scratch-
// eviction contract: l2.Fill's eviction is copied out before l2.Access
// reuses the scratch slot.
func (g *gangStream) gen(f *feCore, coreID int) {
	ev := g.src.Next(coreID)
	if uint64(ev.Gap) > math.MaxUint32 {
		panic(fmt.Sprintf("sim: gang front end: event gap %d overflows the stream encoding", ev.Gap))
	}
	var flags uint8
	var r resRec
	pte, tlbHit := f.tlb.Lookup(ev.Addr, g.pt)
	if !tlbHit {
		flags |= feTLBMiss
	}
	meta := lineMeta(pte.Size)
	if pte.Size == mem.Page2M {
		flags |= feLarge
	}
	if ev.Write {
		flags |= feWrite
	}
	if hit, ev1 := f.l1.Access(ev.Addr, ev.Write, meta); !hit {
		flags |= feL1Miss
		if ev1 != nil {
			if evf := f.l2.Fill(ev1.Addr, true, ev1.Meta); evf != nil {
				flags |= feFill0
				r.fill[0] = fillRec{addr: evf.Addr, meta: evf.Meta}
			}
		}
		if hit2, ev2 := f.l2.Access(ev.Addr, false, meta); !hit2 {
			flags |= feL2Miss
			r.addr = ev.Addr
			if ev2 != nil {
				flags |= feFill1
				r.fill[1] = fillRec{addr: ev2.Addr, meta: ev2.Meta}
			}
		}
	}
	f.gaps = append(f.gaps, uint32(ev.Gap))
	f.flags = append(f.flags, flags)
	f.genInstr += uint64(ev.Gap) + 1
	if flags&feHasRes != 0 {
		f.res = append(f.res, r)
	}
}

// event returns core coreID's event at the lane cursor c, generating
// it first if no lane has reached it yet. r is non-nil iff the event
// carries a residual record (feHasRes).
func (g *gangStream) event(c *core) (gap uint32, flags uint8, r *resRec) {
	f := &g.fe[c.id]
	i := c.evIdx - f.base
	for i >= uint64(len(f.gaps)) {
		g.gen(f, c.id)
	}
	// Generate ahead in chunks: every lane consumes the same event
	// prefix (retirement is purely gap-driven, so all lanes cross the
	// per-core budget at the same event), hence anything generated under
	// the budget will be consumed. Materializing a chunk here lets the
	// lead lane batch-replay runs instead of generating one event per
	// step; trailing lanes see the events regardless.
	for uint64(len(f.gaps))-i < genAhead && f.genInstr < g.budget {
		g.gen(f, c.id)
	}
	gap, flags = f.gaps[i], f.flags[i]
	if flags&feHasRes != 0 {
		r = &f.res[c.resIdx-f.resBase]
	}
	return gap, flags, r
}

// trim drops stream prefixes every lane has consumed, keeping gang
// memory proportional to lane skew (bounded by the step quantum)
// instead of run length.
func (g *gangStream) trim(lanes []*System) {
	for ci := range g.fe {
		f := &g.fe[ci]
		minEv, minRes := ^uint64(0), ^uint64(0)
		for _, l := range lanes {
			c := l.cores[ci]
			if c.evIdx < minEv {
				minEv = c.evIdx
			}
			if c.resIdx < minRes {
				minRes = c.resIdx
			}
		}
		if k := minEv - f.base; k >= trimSlack {
			f.gaps = f.gaps[:copy(f.gaps, f.gaps[k:])]
			f.flags = f.flags[:copy(f.flags, f.flags[k:])]
			f.base = minEv
		}
		if kr := minRes - f.resBase; kr >= trimSlack/4 {
			f.res = f.res[:copy(f.res, f.res[kr:])]
			f.resBase = minRes
		}
	}
}

// close releases the shared source; idempotent.
func (g *gangStream) close() {
	if g.closed {
		return
	}
	g.closed = true
	if c, ok := g.src.(io.Closer); ok {
		c.Close()
	}
}

// stepShared is the gang-lane body of System.step: it replays one
// recorded front-end event through this lane's back end, preserving
// the independent path's exact operation order — retirement and clock
// arithmetic, page-walk charge, counter increments, the two possible
// L3 fills, the LLC access, and the miss path with MSHR and
// dependence-stall behavior (the lane's own RNG draws in its own miss
// order, exactly as an independent run would).
func (s *System) stepShared(c *core) {
	gap, flags, r := s.shared.event(c)
	c.evIdx++
	c.fract += int(gap)
	c.time += uint64(c.fract / s.cfg.IssueWidth)
	c.fract %= s.cfg.IssueWidth
	c.retired += uint64(gap) + 1

	if flags&feTLBMiss != 0 {
		c.time += s.cost.PageWalkCycles
	}
	size := mem.Page4K
	if flags&feLarge != 0 {
		size = mem.Page2M
	}
	s.st.L1Accesses++
	if flags&feL1Miss == 0 {
		return
	}
	if r != nil {
		c.resIdx++
	}
	s.st.L1Misses++
	if flags&feFill0 != 0 {
		s.fillL3(c, r.fill[0].addr, true, r.fill[0].meta)
	}
	s.st.L2Accesses++
	if flags&feL2Miss == 0 {
		return
	}
	s.st.L2Misses++
	if flags&feFill1 != 0 {
		s.fillL3(c, r.fill[1].addr, true, r.fill[1].meta)
	}
	s.st.LLCAccesses++
	if hit3, ev3 := s.l3.Access(r.addr, false, lineMeta(size)); !hit3 {
		if ev3 != nil {
			s.evictToMC(c, ev3)
		}
		// The zero-valued PTE fields reproduce what an inert-scheme
		// independent run passes here: gang-safe schemes never set
		// Cached/Way, so only Size matters. pte.Mapping() is identical.
		s.llcMiss(c, r.addr, flags&feWrite != 0, vm.PTE{Size: size})
	}
}

// batchShared replays, in one aggregate update, the run of already-
// generated events at c's cursor that touch no lane state beyond
// counters and the core clock: L1 hits, and L2 hits whose L1-evict
// cascade produced no L3 fill (flags clear of feFill0|feL2Miss — such
// events carry no residual record and never reach the lane's L3).
//
// Identity argument: for these events the per-event updates are
// exactly associative — the clock advance over k events with gap sum G
// is (fract+G) div/mod IssueWidth plus one PageWalkCycles charge per
// TLB miss, retirement is G+k, and the counter bumps are sums — so the
// aggregate equals the event-by-event replay bit for bit. Reordering
// against other cores inside the batch window cannot be observed:
// these events read nothing lane-global and Step's only mid-run global
// sequence points are the warmup mark and epoch samples, so batching
// is disabled until the warmup mark has been captured (or WarmupFrac
// is 0, when no mark is ever taken) and whenever an epoch callback is
// installed. The scan stops at the first event with lane-side L3 work,
// at the end of the generated stream (never forcing generation), and
// at the per-core budget exactly where Step would stop scheduling the
// core.
func (s *System) batchShared(c *core) {
	if s.epochFn != nil || (!s.warmed && s.warmTarget > 0) {
		return
	}
	f := &s.shared.fe[c.id]
	i := c.evIdx - f.base
	n := uint64(len(f.gaps))
	var k, l1m, walks, gapSum uint64
	for i < n && c.retired+gapSum+k < s.cfg.InstrPerCore {
		fl := f.flags[i]
		if fl&(feFill0|feL2Miss) != 0 {
			break
		}
		gapSum += uint64(f.gaps[i])
		k++
		if fl&feTLBMiss != 0 {
			walks++
		}
		if fl&feL1Miss != 0 {
			l1m++
		}
		i++
	}
	if k == 0 {
		return
	}
	c.evIdx += k
	total := uint64(c.fract) + gapSum
	iw := uint64(s.cfg.IssueWidth)
	c.time += total/iw + walks*s.cost.PageWalkCycles
	c.fract = int(total % iw)
	c.retired += gapSum + k
	s.st.L1Accesses += k
	s.st.L1Misses += l1m
	s.st.L2Accesses += l1m
}

// GangEligible reports whether cfg can run as a lane of a lockstep
// gang, returning nil or the disqualifying reason. Two conditions: the
// scheme must be registered gang-safe (it never touches the shared VM
// substrate — see registry.Scheme.GangSafe), and the prefetcher must
// be off (prefetch issue decisions depend on per-lane core clocks, so
// a shared front end cannot replay them).
func GangEligible(cfg Config) error {
	if cfg.PrefetchDegree != 0 {
		return fmt.Errorf("sim: gang: PrefetchDegree %d is lane-variant (prefetch timing depends on per-lane clocks); only 0 is gang-eligible", cfg.PrefetchDegree)
	}
	if !registry.GangSafe(cfg.Scheme) {
		return fmt.Errorf("sim: gang: scheme kind %q is not registered gang-safe (it may touch the shared VM substrate)", cfg.Scheme.Kind)
	}
	return nil
}

// GangKey is the shared-front-end shape of cfg: two configs can run as
// lanes of the same gang iff their keys are equal (and both are
// GangEligible). The key covers everything the shared front end
// depends on — the workload stream identity (name, cores, effective
// workload seed, scale, intensity), the VM substrate (large pages),
// the L1/L2/TLB geometry, and the per-core instruction budget (which
// fixes how many events each core consumes). Everything back-end —
// Seed, scheme tuning, L3 geometry, DRAM knobs, CPUMHz, IssueWidth,
// MSHRs, DepStallFrac, WarmupFrac — may vary per lane.
func GangKey(cfg Config) string {
	return fmt.Sprintf("%s|c%d|ws%d|sc%g|in%g|lp%t|l1:%d/%d|l2:%d/%d|tlb%d|n%d",
		cfg.Workload, cfg.Cores, cfg.workloadSeed(), cfg.Scale, cfg.Intensity,
		cfg.LargePages, cfg.L1Bytes, cfg.L1Ways, cfg.L2Bytes, cfg.L2Ways,
		cfg.TLBEntries, cfg.InstrPerCore)
}

// Gang is a set of simulations (lanes) advancing in lockstep over one
// shared front-end replay. Each lane is a full System producing
// statistics byte-identical to the same config run alone; the gang
// owns the shared workload source and the recorded stream. Like
// Session, a Gang is a single-goroutine object.
type Gang struct {
	lanes  []*System
	gs     *gangStream
	runErr error
	done   bool
}

// NewGang assembles one lane per config. All configs must be
// GangEligible, share one GangKey, and name the same scheme kind; a
// multi-seed gang must therefore set WorkloadSeed so the lanes share a
// stream (NewGangSeeds does this for you).
func NewGang(cfgs []Config) (*Gang, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: gang needs at least one lane config")
	}
	for i := range cfgs {
		if err := cfgs[i].validate(); err != nil {
			return nil, err
		}
		if err := GangEligible(cfgs[i]); err != nil {
			return nil, fmt.Errorf("lane %d: %w", i, err)
		}
	}
	key, kind := GangKey(cfgs[0]), cfgs[0].Scheme.Kind
	for i := 1; i < len(cfgs); i++ {
		if cfgs[i].Scheme.Kind != kind {
			return nil, fmt.Errorf("sim: gang lanes mix scheme kinds %q and %q", kind, cfgs[i].Scheme.Kind)
		}
		if GangKey(cfgs[i]) != key {
			return nil, fmt.Errorf(
				"sim: gang lane %d front-end shape %q differs from lane 0 %q (multi-seed gangs must share Config.WorkloadSeed)",
				i, GangKey(cfgs[i]), key)
		}
	}
	base := cfgs[0]
	src, err := workload.Open(base.Workload, workload.Config{
		Cores: base.Cores, Seed: base.workloadSeed(), Scale: base.Scale, Intensity: base.Intensity,
	})
	if err != nil {
		return nil, err
	}
	cores := base.Cores
	if cores == 0 {
		cores = src.Cores()
	}
	gs := newGangStream(base, cores, src)
	g := &Gang{gs: gs}
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Cores = cores
		lane, err := newGangLane(cfg, gs)
		if err != nil {
			gs.close()
			return nil, fmt.Errorf("sim: gang lane %d: %w", i, err)
		}
		g.lanes = append(g.lanes, lane)
	}
	return g, nil
}

// NewGangSeeds is the common case: one config replicated across seeds,
// run as a gang. The scheme display name resolves exactly as
// NewSession's does. When cfg.WorkloadSeed is zero it is pinned to
// cfg.Seed (or the first seed) so all lanes share the stream — set it
// explicitly to choose the stream independently of the seeds.
func NewGangSeeds(cfg Config, workloadName, scheme string, seeds []uint64) (*Gang, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sim: gang needs at least one seed")
	}
	spec, err := ResolveScheme(scheme, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	cfg.Workload = workloadName
	cfg.Scheme = spec
	if cfg.WorkloadSeed == 0 {
		if cfg.Seed != 0 {
			cfg.WorkloadSeed = cfg.Seed
		} else {
			cfg.WorkloadSeed = seeds[0]
		}
	}
	cfgs := make([]Config, len(seeds))
	for i, sd := range seeds {
		c := cfg
		c.Seed = sd
		cfgs[i] = c
	}
	return NewGang(cfgs)
}

// newGangLane assembles one lane: a System without its own front end —
// no workload source of its own, no per-core L1/L2/TLB, no page table
// — wired to the gang's shared stream. Gang-safe schemes never touch
// the VM substrate, so the scheme builds against a nil page table and
// TLB set.
func newGangLane(cfg Config, gs *gangStream) (*System, error) {
	s := &System{
		cfg:    cfg,
		work:   gs.src,
		shared: gs,
		rng:    util.NewRNG(cfg.Seed ^ 0x51A1),
		cost:   vm.DefaultCostModel(cfg.CPUMHz),
	}
	s.l3 = cache.New(cache.Config{
		Name: "L3", SizeBytes: cfg.L3Bytes, Ways: cfg.L3Ways,
		LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed,
	})
	for i := 0; i < cfg.Cores; i++ {
		s.cores = append(s.cores, &core{id: i})
	}
	scheme, err := buildScheme(cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	s.scheme = scheme
	inCfg, offCfg := dramConfigs(cfg)
	s.inPkg = dram.New(inCfg)
	s.offPkg = dram.New(offCfg)
	s.st.Workload = cfg.Workload
	s.st.Scheme = scheme.Name()
	s.totalBudget = cfg.InstrPerCore * uint64(len(s.cores))
	s.warmTarget = uint64(float64(s.totalBudget) * cfg.WarmupFrac)
	// Latched replay failures surface through the shared source: every
	// lane binds the same surfaces, so a corrupt or wrapped stream
	// fails all lanes with the same typed error an independent run of
	// the same config would report.
	if e, ok := gs.src.(interface{ Err() error }); ok {
		s.srcErr = e.Err
	}
	if wr, ok := gs.src.(interface{ Wrapped() bool }); ok {
		s.srcWrapped = wr.Wrapped
	}
	return s, nil
}

// Width returns the number of lanes.
func (g *Gang) Width() int { return len(g.lanes) }

// Step advances every unfinished lane by at least n retired
// instructions in lockstep, then trims the shared stream to the
// slowest lane. done reports all lanes complete. Errors (a failed
// shared stream, a cancelled Run) are terminal for the whole gang.
func (g *Gang) Step(n uint64) (done bool, err error) {
	if g.runErr != nil {
		return false, g.runErr
	}
	if g.done {
		return true, nil
	}
	all := true
	for _, l := range g.lanes {
		laneDone, err := l.Step(n)
		if err != nil {
			g.fail(err)
			return false, g.runErr
		}
		if !laneDone {
			all = false
		}
	}
	g.gs.trim(g.lanes)
	if all {
		g.done = true
		g.gs.close()
	}
	return all, nil
}

// fail terminates the gang: every still-running lane fails with err
// and the shared source is released.
func (g *Gang) fail(err error) {
	if g.runErr == nil {
		g.runErr = err
	}
	for _, l := range g.lanes {
		if !l.finished {
			l.fail(err)
		}
	}
	g.gs.close()
}

// Run drives all lanes to completion under ctx and returns one final
// stats.Sim per lane, in lane order. Cancellation mirrors
// Session.Run: the gang stops at the next step boundary, releases its
// resources, and returns the partial per-lane windows together with
// an error wrapping ctx.Err().
func (g *Gang) Run(ctx context.Context) ([]stats.Sim, error) {
	for {
		if g.runErr != nil {
			return g.Results(), g.runErr
		}
		if g.done {
			return g.Results(), nil
		}
		if err := ctx.Err(); err != nil {
			p := g.Progress()
			werr := fmt.Errorf("sim: gang run cancelled after %d of %d instructions: %w",
				p.Retired, p.Total, err)
			g.fail(werr)
			return g.Results(), werr
		}
		if _, err := g.Step(stepQuantum); err != nil {
			return g.Results(), err
		}
	}
}

// Results returns one stats.Sim per lane: the final measurement window
// for completed lanes, the current partial window otherwise.
func (g *Gang) Results() []stats.Sim {
	out := make([]stats.Sim, len(g.lanes))
	for i, l := range g.lanes {
		if l.finished && l.runErr == nil {
			out[i] = l.final
		} else {
			out[i] = l.Snapshot().Window
		}
	}
	return out
}

// Progress aggregates lane progress: instructions retired and budget
// summed over lanes, the furthest simulated clock, and the least-
// advanced lifecycle phase.
func (g *Gang) Progress() Progress {
	var p Progress
	p.Phase = stats.PhaseDone
	for _, l := range g.lanes {
		lp := l.Progress()
		p.Retired += lp.Retired
		p.Total += lp.Total
		if lp.Cycles > p.Cycles {
			p.Cycles = lp.Cycles
		}
		if lp.Phase < p.Phase {
			p.Phase = lp.Phase
		}
	}
	return p
}

// LaneSnapshot captures lane i's current measurement window; see
// System.Snapshot for windowing semantics.
func (g *Gang) LaneSnapshot(i int) stats.Snapshot { return g.lanes[i].Snapshot() }

// Err returns the gang's terminal error, if any.
func (g *Gang) Err() error { return g.runErr }

// Close releases the gang's resources (the shared workload source).
// Completed and failed gangs release themselves; Close is for
// abandoning a gang early. Idempotent.
func (g *Gang) Close() error {
	g.gs.close()
	return nil
}
