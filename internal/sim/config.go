// Package sim assembles the full simulated system of Table 2 — 16
// four-issue cores with private L1/L2 caches, a shared L3, per-core
// TLBs, a page table, the DRAM-cache scheme under test, and the two
// DRAM timing models — and replays synthetic workload traces through it
// in deterministic global time order.
//
// Scaling: the paper simulates a 1 GB DRAM cache over 100 G-instruction
// runs; at trace-simulation speed that is out of reach, so the default
// configuration scales the capacity-dependent structures (DRAM cache,
// L3, workload footprints) down by Scale (1/16) while keeping Table 2's
// bandwidths, latencies and per-core intensity unchanged. Relative
// behavior — who wins and by what factor — is preserved; DESIGN.md §3
// discusses the substitution.
package sim

import (
	"fmt"

	"banshee/internal/dram"
	"banshee/internal/errs"
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/registry"
	"banshee/internal/vm"
)

// SchemeSpec selects and tunes the DRAM-cache scheme for a run. It is
// an alias of registry.Spec: scheme selection lives in the pluggable
// registry, and sim only resolves and builds through it.
type SchemeSpec = registry.Spec

// ParseScheme maps the paper's display names to specs: "NoCache",
// "CacheOnly", "Alloy 1", "Alloy 0.1", "Unison", "TDC", "HMA",
// "Banshee", "Banshee LRU", "Banshee NoSample", "Banshee 2M", and the
// extensions "Banshee Duel" (set dueling, §5.2 future work) and
// "Banshee FP" (footprint caching, §6) — plus any scheme registered
// out-of-tree. A "+BATMAN" suffix wraps the scheme with bandwidth
// balancing.
func ParseScheme(name string) (SchemeSpec, error) {
	return registry.Parse(name)
}

// ResolveScheme parses a display name and overlays the tuning knobs
// already set on base — the sweep contract shared by Run and the batch
// runner: sweeps tune a scheme through Config.Scheme fields and still
// select it by name.
func ResolveScheme(name string, base SchemeSpec) (SchemeSpec, error) {
	spec, err := registry.Parse(name)
	if err != nil {
		return SchemeSpec{}, err
	}
	return registry.Overlay(spec, base), nil
}

// Config is a full experiment configuration.
type Config struct {
	Workload string
	Scheme   SchemeSpec

	Cores        int
	CPUMHz       float64
	IssueWidth   int     // core IPC for non-memory instructions
	MSHRs        int     // outstanding LLC misses a core can overlap
	DepStallFrac float64 // fraction of misses the core must block on

	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int
	TLBEntries      int

	DCacheBytes   int     // DRAM cache capacity
	InPkgChannels int     // 4 ⇒ paper's 4× bandwidth ratio (Fig. 8c sweeps)
	InPkgLatScale float64 // Fig. 8b latency sweep (1.0 = same as DDR)

	InstrPerCore uint64
	WarmupFrac   float64

	// PrefetchDegree enables the L2 stream prefetcher (§3.2 semantics:
	// page-boundary stop, mapping copied from the trigger) with the
	// given lines-ahead degree. 0 disables it (the paper's setup).
	PrefetchDegree int

	// Workload shaping.
	Scale      float64 // footprint scale (tracks the capacity scale)
	Intensity  float64 // MemRatio multiplier
	LargePages bool    // back every allocation with 2 MB pages

	Seed uint64

	// WorkloadSeed, when non-zero, seeds the workload stream
	// independently of Seed (which keeps seeding the scheme and core
	// timing models). Runs that differ only in Seed but share a
	// WorkloadSeed replay the same reference stream, which is what lets
	// a multi-seed sweep run as one lockstep gang (see Gang). 0 means
	// the stream follows Seed, as it always has.
	WorkloadSeed uint64 `json:",omitempty"`
}

// workloadSeed resolves the seed the workload stream is opened with.
func (c Config) workloadSeed() uint64 {
	if c.WorkloadSeed != 0 {
		return c.WorkloadSeed
	}
	return c.Seed
}

// ScaleFactor is the default capacity/footprint scale-down vs the paper.
const ScaleFactor = 1.0 / 16.0

// DefaultConfig returns the Table 2/3 system at the default scale.
func DefaultConfig() Config {
	return Config{
		Cores:        16,
		CPUMHz:       2700,
		IssueWidth:   4,
		MSHRs:        10,
		DepStallFrac: 0.15,

		L1Bytes: 32 << 10, L1Ways: 8,
		L2Bytes: 128 << 10, L2Ways: 8,
		L3Bytes: int(8 << 20 * ScaleFactor), L3Ways: 16,
		TLBEntries: 256,

		DCacheBytes:   int(1 << 30 * ScaleFactor),
		InPkgChannels: 4,
		InPkgLatScale: 1.0,

		InstrPerCore: 4_000_000,
		WarmupFrac:   0.25,

		Scale:     ScaleFactor,
		Intensity: 1.0,
	}
}

// validate rejects impossible configurations with *errs.ConfigError
// values naming the offending field, so callers can errors.As their way
// to the field instead of parsing messages.
func (c Config) validate() error {
	var ce *errs.ConfigError
	switch {
	case c.Cores < 0:
		ce = errs.Configf("Cores", "must be non-negative (0 adopts a trace file's recorded count), got %d", c.Cores)
	case c.IssueWidth <= 0:
		ce = errs.Configf("IssueWidth", "must be positive, got %d", c.IssueWidth)
	case c.MSHRs <= 0:
		ce = errs.Configf("MSHRs", "must be positive, got %d", c.MSHRs)
	case c.Workload == "":
		ce = errs.Configf("Workload", "not set")
	case c.Scheme.Kind == "":
		ce = errs.Configf("Scheme", "not set")
	case c.InstrPerCore == 0:
		ce = errs.Configf("InstrPerCore", "instruction budget not set")
	case c.WarmupFrac < 0 || c.WarmupFrac >= 1:
		ce = errs.Configf("WarmupFrac", "%v out of [0,1)", c.WarmupFrac)
	}
	if ce != nil {
		return fmt.Errorf("sim: %w", ce)
	}
	return nil
}

// buildScheme constructs the configured scheme through the registry,
// wiring Banshee (and any out-of-tree scheme that wants it) to the
// system's page table and TLBs.
func buildScheme(cfg Config, pt *vm.PageTable, tlbs []*vm.TLB) (mc.Scheme, error) {
	cost := vm.DefaultCostModel(cfg.CPUMHz)
	if cfg.Scheme.PTEUpdateMicros > 0 {
		cost.PTEUpdateCycles = uint64(cfg.Scheme.PTEUpdateMicros * cfg.CPUMHz)
	}
	return registry.Build(cfg.Scheme, registry.Env{
		CapacityBytes: cfg.DCacheBytes,
		Seed:          cfg.Seed,
		CPUMHz:        cfg.CPUMHz,
		LargePages:    cfg.LargePages,
		PageTable:     pt,
		TLBs:          tlbs,
		Cost:          cost,
	})
}

// dramConfigs builds the two DRAM models per Table 2 and the sweep
// knobs of Fig. 8.
func dramConfigs(cfg Config) (inPkg, offPkg dram.Config) {
	offPkg = dram.OffPackageConfig(cfg.CPUMHz)
	inPkg = dram.InPackageConfig(cfg.CPUMHz)
	if cfg.InPkgChannels > 0 {
		inPkg.Channels = cfg.InPkgChannels
	}
	if cfg.InPkgLatScale > 0 {
		inPkg.LatencyScale = cfg.InPkgLatScale
	}
	return inPkg, offPkg
}

// SchemeNames lists the display names understood by ParseScheme that
// the paper's main comparison uses (Fig. 4 bars), in rank order as
// declared by the registered schemes.
func SchemeNames() []string {
	return registry.Comparison()
}

// lineMeta encodes the page-size bit carried on cached lines (§4.3) so
// LLC dirty evictions can be routed at the right granularity.
func lineMeta(size mem.PageSize) uint8 {
	if size == mem.Page2M {
		return 1
	}
	return 0
}

// metaSize decodes lineMeta.
func metaSize(meta uint8) mem.PageSize {
	if meta&1 != 0 {
		return mem.Page2M
	}
	return mem.Page4K
}
