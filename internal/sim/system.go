package sim

import (
	"container/heap"
	"fmt"
	"io"

	"banshee/internal/cache"
	"banshee/internal/dram"
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
	"banshee/internal/vm"
	"banshee/internal/workload"
)

// core is one simulated CPU's replay state.
type core struct {
	id      int
	time    uint64 // local clock in CPU cycles
	pending uint64 // stall cycles to apply before the next event
	fract   int    // sub-cycle instruction remainder at IssueWidth

	outstanding []uint64 // completion times of in-flight LLC misses
	outMin      uint64   // running min of outstanding (valid when non-empty)
	retired     uint64   // instructions retired
	done        bool

	l1, l2   *cache.Cache
	tlb      *vm.TLB
	prefetch *Prefetcher // nil when disabled
}

// System is a fully assembled simulation. Build with NewSystem, drive
// with Run. Not safe for concurrent use; run distinct Systems in
// parallel instead.
type System struct {
	cfg    Config
	work   workload.Source
	cores  []*core
	l3     *cache.Cache
	pt     *vm.PageTable
	scheme mc.Scheme
	inPkg  *dram.DRAM
	offPkg *dram.DRAM
	rng    *util.RNG
	cost   vm.CostModel

	st     stats.Sim
	warmed bool
	warmSt stats.Sim
	warmAt uint64 // max core time when warmup ended
}

// NewSystem assembles a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Workload streams come from the workload registry: synthetic
	// generators, graph kernels, and "file:<path>" recorded traces all
	// resolve to the same Source contract. Cores == 0 adopts the
	// source's own shape — recorded traces carry their core count, so
	// callers need not know it up front (synthetic sources require an
	// explicit count and reject 0).
	w, err := workload.Open(cfg.Workload, workload.Config{
		Cores: cfg.Cores, Seed: cfg.Seed, Scale: cfg.Scale, Intensity: cfg.Intensity,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Cores == 0 {
		cfg.Cores = w.Cores()
	}
	pt := vm.NewPageTable()
	pt.DefaultLarge = cfg.LargePages

	s := &System{
		cfg:  cfg,
		work: w,
		pt:   pt,
		rng:  util.NewRNG(cfg.Seed ^ 0x51A1),
		cost: vm.DefaultCostModel(cfg.CPUMHz),
	}
	s.l3 = cache.New(cache.Config{
		Name: "L3", SizeBytes: cfg.L3Bytes, Ways: cfg.L3Ways,
		LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed,
	})
	var tlbs []*vm.TLB
	for i := 0; i < cfg.Cores; i++ {
		c := &core{
			id: i,
			l1: cache.New(cache.Config{
				Name: fmt.Sprintf("L1d-%d", i), SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways,
				LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed + uint64(i),
			}),
			l2: cache.New(cache.Config{
				Name: fmt.Sprintf("L2-%d", i), SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways,
				LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed + uint64(i),
			}),
			tlb: vm.NewTLB(cfg.TLBEntries),
		}
		if cfg.PrefetchDegree > 0 {
			c.prefetch = NewPrefetcher(cfg.PrefetchDegree)
		}
		s.cores = append(s.cores, c)
		tlbs = append(tlbs, c.tlb)
	}
	scheme, err := buildScheme(cfg, pt, tlbs)
	if err != nil {
		// The source may hold a trace file open; don't leak it on a
		// failed assembly (success hands ownership to Run's defer).
		if c, ok := w.(io.Closer); ok {
			c.Close()
		}
		return nil, err
	}
	s.scheme = scheme
	inCfg, offCfg := dramConfigs(cfg)
	s.inPkg = dram.New(inCfg)
	s.offPkg = dram.New(offCfg)
	s.st.Workload = cfg.Workload
	s.st.Scheme = scheme.Name()
	return s, nil
}

// Scheme returns the scheme under test (diagnostics, tests).
func (s *System) Scheme() mc.Scheme { return s.scheme }

// coreHeap orders cores by local time (ties by id for determinism).
type coreHeap []*core

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h coreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x interface{}) { *h = append(*h, x.(*core)) }
func (h *coreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Workload returns the source driving the system (diagnostics, tests).
func (s *System) Workload() workload.Source { return s.work }

// Run replays the workload to the instruction budget and returns the
// measured statistics (post-warmup window). Sources holding external
// resources (replayed trace files) are released when the run ends.
func (s *System) Run() stats.Sim {
	if c, ok := s.work.(io.Closer); ok {
		defer c.Close()
	}
	h := make(coreHeap, 0, len(s.cores))
	for _, c := range s.cores {
		h = append(h, c)
	}
	heap.Init(&h)

	totalBudget := s.cfg.InstrPerCore * uint64(len(s.cores))
	warmTarget := uint64(float64(totalBudget) * s.cfg.WarmupFrac)
	var totalRetired uint64

	for h.Len() > 0 {
		c := heap.Pop(&h).(*core)
		if c.pending > 0 {
			c.time += c.pending
			c.pending = 0
		}
		before := c.retired
		s.step(c)
		totalRetired += c.retired - before

		if !s.warmed && totalRetired >= warmTarget {
			s.snapshotWarm()
		}
		if c.retired >= s.cfg.InstrPerCore {
			c.done = true
		} else {
			heap.Push(&h, c)
		}
	}
	return s.finalize(totalRetired)
}

// step advances one core by one trace event.
func (s *System) step(c *core) {
	ev := s.work.Next(c.id)
	// Non-memory instructions retire at IssueWidth.
	c.fract += ev.Gap
	c.time += uint64(c.fract / s.cfg.IssueWidth)
	c.fract %= s.cfg.IssueWidth
	c.retired += uint64(ev.Gap) + 1

	// Translate. A TLB miss pays the page-walk cost.
	pte, tlbHit := c.tlb.Lookup(ev.Addr, s.pt)
	if !tlbHit {
		c.time += s.cost.PageWalkCycles
	}
	meta := lineMeta(pte.Size)

	// SRAM hierarchy. Hit latencies are folded into the core model (the
	// out-of-order window hides them); only LLC misses are timed.
	s.st.L1Accesses++
	if hit, ev1 := c.l1.Access(ev.Addr, ev.Write, meta); !hit {
		s.st.L1Misses++
		if ev1 != nil {
			s.fillL2(c, ev1.Addr, true, ev1.Meta)
		}
		s.st.L2Accesses++
		if c.prefetch != nil {
			if pf := c.prefetch.Observe(ev.Addr, c.time); len(pf) > 0 {
				s.issuePrefetches(c, pf, pte)
			}
		}
		if hit2, ev2 := c.l2.Access(ev.Addr, false, meta); !hit2 {
			s.st.L2Misses++
			if ev2 != nil {
				s.fillL3(c, ev2.Addr, true, ev2.Meta)
			}
			s.st.LLCAccesses++
			if hit3, ev3 := s.l3.Access(ev.Addr, false, meta); !hit3 {
				if ev3 != nil {
					s.evictToMC(c, ev3)
				}
				s.llcMiss(c, ev.Addr, ev.Write, pte)
			}
		}
	}
}

// fillL2 pushes an L1 dirty eviction into L2, cascading as needed.
func (s *System) fillL2(c *core, a mem.Addr, dirty bool, meta uint8) {
	if ev := c.l2.Fill(a, dirty, meta); ev != nil {
		s.fillL3(c, ev.Addr, true, ev.Meta)
	}
}

// fillL3 pushes an L2 dirty eviction into the shared L3.
func (s *System) fillL3(c *core, a mem.Addr, dirty bool, meta uint8) {
	if ev := s.l3.Fill(a, dirty, meta); ev != nil {
		s.evictToMC(c, ev)
	}
}

// evictToMC sends an LLC dirty write-back to the memory controller. It
// carries no TLB mapping (mem.Mapping zero value) — the page-size bit
// on the line (§4.3) routes it.
func (s *System) evictToMC(c *core, ev *cache.Eviction) {
	s.st.LLCEvictions++
	req := mem.Request{
		Addr:     ev.Addr,
		Write:    true,
		Core:     c.id,
		Size:     metaSize(ev.Meta),
		Eviction: true,
	}
	s.execute(c, req, c.time)
}

// llcMiss issues a demand miss to the memory controller with
// MSHR-limited overlap.
func (s *System) llcMiss(c *core, a mem.Addr, write bool, pte vm.PTE) {
	s.st.LLCMisses++
	// Retire completed misses; if the window is full, stall to the
	// earliest completion. drain keeps outMin current, so the stall
	// target is O(1) instead of a scan over the MSHR window.
	c.drain()
	if len(c.outstanding) >= s.cfg.MSHRs {
		if c.outMin > c.time {
			c.time = c.outMin
		}
		c.drain()
	}
	req := mem.Request{
		Addr:    a,
		Write:   write,
		Core:    c.id,
		Size:    pte.Size,
		Mapping: pte.Mapping(),
	}
	start := c.time
	completion := s.execute(c, req, c.time)
	if completion > start {
		s.st.MissLatSum += completion - start
		s.st.MissLatCount++
	}
	// A fraction of misses are dependence-critical: the core blocks on
	// them (pointer chasing); the rest overlap within the MSHR window.
	if s.rng.Bool(s.cfg.DepStallFrac) {
		if completion > c.time {
			c.time = completion
		}
	} else {
		if len(c.outstanding) == 0 || completion < c.outMin {
			c.outMin = completion
		}
		c.outstanding = append(c.outstanding, completion)
	}
}

// drain retires outstanding misses that completed by the core's clock,
// tracking the running minimum of the survivors for llcMiss's stall.
func (c *core) drain() {
	out := c.outstanding[:0]
	min := ^uint64(0)
	for _, t := range c.outstanding {
		if t > c.time {
			out = append(out, t)
			if t < min {
				min = t
			}
		}
	}
	c.outstanding = out
	c.outMin = min
}

// execute runs a request through the scheme and times its DRAM ops,
// returning the critical-path completion time.
func (s *System) execute(c *core, req mem.Request, now uint64) uint64 {
	res := s.scheme.Access(req)
	if !req.Eviction {
		if res.Hit {
			s.st.DCHits++
		} else {
			s.st.DCMisses++
		}
	}
	return s.executeOps(c, res, now)
}

// executeOps times a scheme result's DRAM operations and applies its
// software costs, returning the critical-path completion time.
func (s *System) executeOps(c *core, res mc.Result, now uint64) uint64 {
	// Stage-ordered execution: stage N opens when stage N-1's critical
	// ops complete; background ops issue at stage open and overlap.
	stageStart := now
	maxStage := uint8(0)
	for _, op := range res.Ops {
		if op.Stage > maxStage {
			maxStage = op.Stage
		}
	}
	completion := now
	for st := uint8(0); st <= maxStage; st++ {
		critEnd := stageStart
		for _, op := range res.Ops {
			if op.Stage != st {
				continue
			}
			var d *dram.DRAM
			var tr *stats.Traffic
			if op.Target == mem.InPackage {
				d, tr = s.inPkg, &s.st.InPkg
			} else {
				d, tr = s.offPkg, &s.st.OffPkg
			}
			var done uint64
			if op.Fused {
				done = d.Extend(op.Addr, op.Bytes, op.Write, op.Critical)
			} else {
				done = d.Access(stageStart, op.Addr, op.Bytes, op.Write, op.Critical)
			}
			tr.Add(op.Class, uint64(op.Bytes))
			if op.Critical && done > critEnd {
				critEnd = done
			}
		}
		stageStart = critEnd
		completion = critEnd
	}

	// Software costs: the initiator stalls the requesting core; every
	// other core picks up its share at its next scheduling point.
	for _, sw := range res.SW {
		c.time += sw.InitiatorCycles
		s.st.SWStallCycles += sw.InitiatorCycles
		if sw.AllCoresCycles > 0 {
			for _, other := range s.cores {
				if other.id != c.id && !other.done {
					other.pending += sw.AllCoresCycles
				}
			}
			s.st.SWStallCycles += sw.AllCoresCycles * uint64(len(s.cores)-1)
		}
	}
	return completion
}

// snapshotWarm marks the end of the warmup window.
func (s *System) snapshotWarm() {
	s.warmed = true
	s.warmSt = s.st
	for _, c := range s.cores {
		if c.time > s.warmAt {
			s.warmAt = c.time
		}
	}
}

// finalize computes the post-warmup measurement window.
func (s *System) finalize(totalRetired uint64) stats.Sim {
	var end uint64
	for _, c := range s.cores {
		if c.time > end {
			end = c.time
		}
	}
	s.scheme.FillStats(&s.st)
	out := s.st
	if s.warmed {
		out = subStats(s.st, s.warmSt)
	}
	warmRetired := uint64(float64(s.cfg.InstrPerCore*uint64(len(s.cores))) * s.cfg.WarmupFrac)
	if !s.warmed {
		warmRetired = 0
	}
	out.Workload = s.cfg.Workload
	out.Scheme = s.scheme.Name()
	out.Instructions = totalRetired - warmRetired
	out.Cycles = end - s.warmAt
	return out
}

// subStats returns a-b fieldwise for the counters that accumulate
// monotonically during a run.
func subStats(a, b stats.Sim) stats.Sim {
	out := a
	out.L1Accesses -= b.L1Accesses
	out.L1Misses -= b.L1Misses
	out.L2Accesses -= b.L2Accesses
	out.L2Misses -= b.L2Misses
	out.LLCAccesses -= b.LLCAccesses
	out.LLCMisses -= b.LLCMisses
	out.LLCEvictions -= b.LLCEvictions
	out.DCHits -= b.DCHits
	out.DCMisses -= b.DCMisses
	out.SWStallCycles -= b.SWStallCycles
	out.MissLatSum -= b.MissLatSum
	out.MissLatCount -= b.MissLatCount
	out.Prefetches -= b.Prefetches
	for i := range out.InPkg.Bytes {
		out.InPkg.Bytes[i] -= b.InPkg.Bytes[i]
		out.OffPkg.Bytes[i] -= b.OffPkg.Bytes[i]
	}
	// Scheme-internal counters (Remaps, flushes...) are filled once at
	// finalize and represent whole-run totals; they are not windowed.
	return out
}

// Run is the package-level convenience: build a system for (workload,
// scheme display name) on top of cfg and run it.
//
// Run replaces cfg.Scheme with the named scheme's spec, except that
// scheme-tuning fields already set on cfg.Scheme (sampling coefficient,
// ways, thresholds, buffer sizes, PTE-update cost, epoch length) are
// preserved — so sweeps can tune a scheme and still select it by name.
// Use RunConfig to run a fully hand-built Config verbatim.
func Run(cfg Config, workload, scheme string) (stats.Sim, error) {
	spec, err := ResolveScheme(scheme, cfg.Scheme)
	if err != nil {
		return stats.Sim{}, err
	}
	cfg.Workload = workload
	cfg.Scheme = spec
	return RunConfig(cfg)
}

// RunConfig runs cfg exactly as given (cfg.Workload and cfg.Scheme must
// be fully populated).
func RunConfig(cfg Config) (stats.Sim, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return stats.Sim{}, err
	}
	st := sys.Run()
	// Replayed trace files latch decode errors instead of panicking
	// mid-run; surface them here so a corrupt trace fails the run
	// rather than yielding stats over a truncated stream. A wrapped
	// replay is equally disqualifying: the stream restarted mid-run, so
	// the stats carry artificial periodicity the recording never had.
	if e, ok := sys.work.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return stats.Sim{}, err
		}
	}
	if wr, ok := sys.work.(interface{ Wrapped() bool }); ok && wr.Wrapped() {
		return stats.Sim{}, fmt.Errorf(
			"sim: trace replay wrapped: %q records fewer events than the run consumed (record more events per core or lower InstrPerCore)",
			cfg.Workload)
	}
	return st, nil
}
