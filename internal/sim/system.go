package sim

import (
	"context"
	"fmt"
	"io"

	"banshee/internal/cache"
	"banshee/internal/dram"
	"banshee/internal/errs"
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
	"banshee/internal/vm"
	"banshee/internal/workload"
)

// core is one simulated CPU's replay state.
type core struct {
	id      int
	time    uint64 // local clock in CPU cycles
	pending uint64 // stall cycles to apply before the next event
	fract   int    // sub-cycle instruction remainder at IssueWidth

	outstanding []uint64 // completion times of in-flight LLC misses
	outMin      uint64   // running min of outstanding (valid when non-empty)
	retired     uint64   // instructions retired
	done        bool

	l1, l2   *cache.Cache
	tlb      *vm.TLB
	prefetch *Prefetcher // nil when disabled

	// Gang lane cursors into the shared front-end stream (gang.go).
	// Unused (zero) on the independent N=1 path.
	evIdx  uint64 // next event index in this core's shared stream
	resIdx uint64 // next residual record in this core's shared stream
}

// System is a fully assembled simulation. Build with NewSystem, drive
// incrementally with Step (or to completion with Run); Session is the
// managed handle most callers want. Not safe for concurrent use; run
// distinct Systems in parallel instead.
type System struct {
	cfg    Config
	work   workload.Source
	cores  []*core
	l3     *cache.Cache
	pt     *vm.PageTable
	scheme mc.Scheme
	inPkg  *dram.DRAM
	offPkg *dram.DRAM
	rng    *util.RNG
	cost   vm.CostModel

	// shared, when non-nil, marks this System as one lane of a lockstep
	// gang: events come from the gang's shared front-end replay instead
	// of s.work, and the source's lifetime belongs to the Gang, not the
	// lane. The independent path is untouched when nil.
	shared *gangStream

	st       stats.Sim
	warmed   bool
	warmMark mark // counters at the end of warmup

	// MSHR back-pressure diagnostics: how often a core's miss window
	// filled and how many cycles it lost waiting for the earliest
	// outstanding completion. System-level observability counters (whole
	// run, not warmup-windowed) — deliberately not part of stats.Sim, so
	// the reported statistics schema is unchanged.
	mshrStalls      uint64
	mshrStallCycles uint64

	// Stepper state: the run is a resumable loop over the core heap,
	// advanced by Step in instruction-count increments. The warmup
	// snapshot, epoch samples, and the final measurement window are all
	// windows between two marks of the same capture mechanism.
	h            coreQueue
	started      bool
	finished     bool
	closed       bool
	runErr       error
	totalRetired uint64
	totalBudget  uint64 // InstrPerCore × cores
	warmTarget   uint64 // retired instructions ending warmup
	final        stats.Sim

	// Latched trace-replay failure surface (file sources only).
	srcErr     func() error
	srcWrapped func() bool

	// Epoch sampling (OnEpoch). epochNext is the next absolute
	// retirement multiple to sample at, so boundary overshoot never
	// drifts the sample points away from k×epochEvery.
	epochEvery uint64
	epochNext  uint64
	epochFn    func(stats.Snapshot)
	epochMark  mark
}

// mark is one capture point of the windowed-snapshot mechanism: the
// cumulative counters (scheme-internal totals folded in), instructions
// retired, and the wall clock at one instant. A window is the fieldwise
// difference between two marks.
type mark struct {
	st      stats.Sim
	retired uint64
	cycles  uint64
}

// NewSystem assembles a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Workload streams come from the workload registry: synthetic
	// generators, graph kernels, and "file:<path>" recorded traces all
	// resolve to the same Source contract. Cores == 0 adopts the
	// source's own shape — recorded traces carry their core count, so
	// callers need not know it up front (synthetic sources require an
	// explicit count and reject 0).
	w, err := workload.Open(cfg.Workload, workload.Config{
		Cores: cfg.Cores, Seed: cfg.workloadSeed(), Scale: cfg.Scale, Intensity: cfg.Intensity,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Cores == 0 {
		cfg.Cores = w.Cores()
	}
	pt := vm.NewPageTable()
	pt.DefaultLarge = cfg.LargePages

	s := &System{
		cfg:  cfg,
		work: w,
		pt:   pt,
		rng:  util.NewRNG(cfg.Seed ^ 0x51A1),
		cost: vm.DefaultCostModel(cfg.CPUMHz),
	}
	s.l3 = cache.New(cache.Config{
		Name: "L3", SizeBytes: cfg.L3Bytes, Ways: cfg.L3Ways,
		LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed,
	})
	var tlbs []*vm.TLB
	for i := 0; i < cfg.Cores; i++ {
		c := &core{
			id: i,
			l1: cache.New(cache.Config{
				Name: fmt.Sprintf("L1d-%d", i), SizeBytes: cfg.L1Bytes, Ways: cfg.L1Ways,
				LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed + uint64(i),
			}),
			l2: cache.New(cache.Config{
				Name: fmt.Sprintf("L2-%d", i), SizeBytes: cfg.L2Bytes, Ways: cfg.L2Ways,
				LineBytes: mem.LineBytes, Policy: cache.LRU, Seed: cfg.Seed + uint64(i),
			}),
			tlb: vm.NewTLB(cfg.TLBEntries),
		}
		if cfg.PrefetchDegree > 0 {
			c.prefetch = NewPrefetcher(cfg.PrefetchDegree)
		}
		s.cores = append(s.cores, c)
		tlbs = append(tlbs, c.tlb)
	}
	scheme, err := buildScheme(cfg, pt, tlbs)
	if err != nil {
		// The source may hold a trace file open; don't leak it on a
		// failed assembly (success hands ownership to Run's defer).
		if c, ok := w.(io.Closer); ok {
			c.Close()
		}
		return nil, err
	}
	s.scheme = scheme
	inCfg, offCfg := dramConfigs(cfg)
	s.inPkg = dram.New(inCfg)
	s.offPkg = dram.New(offCfg)
	s.st.Workload = cfg.Workload
	s.st.Scheme = scheme.Name()
	s.totalBudget = cfg.InstrPerCore * uint64(len(s.cores))
	s.warmTarget = uint64(float64(s.totalBudget) * cfg.WarmupFrac)
	// Replayed trace files latch decode errors and wrap-around instead
	// of panicking mid-run; bind their surfaces once so Step can poll
	// them without per-call type assertions.
	if e, ok := w.(interface{ Err() error }); ok {
		s.srcErr = e.Err
	}
	if wr, ok := w.(interface{ Wrapped() bool }); ok {
		s.srcWrapped = wr.Wrapped
	}
	return s, nil
}

// Scheme returns the scheme under test (diagnostics, tests).
func (s *System) Scheme() mc.Scheme { return s.scheme }

// coreQueue is the per-event scheduler: a specialized binary min-heap
// over *core ordered by (local time, id). It replaces the previous
// container/heap implementation, whose interface{} Push/Pop boxed a
// pointer on every scheduling event — the devirtualized sift loops
// below compile to direct slice code with no interface dispatch or
// allocation. The (time, id) key is unique per core, so the pop order
// — and therefore the simulation — is identical to any correct
// min-heap's, container/heap included.
type coreQueue []*core

func (q coreQueue) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].id < q[j].id
}

// push inserts c and restores the heap order.
func (q *coreQueue) push(c *core) {
	*q = append(*q, c)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest core.
func (q *coreQueue) pop() *core {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil // release the reference
	*q = h[:n]
	q.siftDown(0)
	return top
}

// siftDown restores heap order below slot i.
func (q coreQueue) siftDown(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

// heapify establishes the heap invariant over arbitrary contents.
func (q coreQueue) heapify() {
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

// Workload returns the source driving the system (diagnostics, tests).
func (s *System) Workload() workload.Source { return s.work }

// start initializes the scheduling heap; the first Step calls it.
func (s *System) start() {
	s.h = make(coreQueue, 0, len(s.cores))
	for _, c := range s.cores {
		s.h = append(s.h, c)
	}
	s.h.heapify()
	s.started = true
}

// Step advances the simulation until at least n more instructions have
// retired across all cores (or the budget is exhausted), returning
// done=true once the run is complete. It surfaces latched trace-replay
// failures (decode corruption, wrap-around) as typed errors; a failed
// run is terminal and keeps returning the same error. The warmup
// snapshot, epoch samples, and final window all happen inside Step at
// the exact retirement boundaries they would in a one-shot run, so a
// stepped run's statistics are bit-identical to Run's regardless of
// the step size.
func (s *System) Step(n uint64) (done bool, err error) {
	if s.runErr != nil {
		return false, s.runErr
	}
	if s.finished {
		return true, nil
	}
	if !s.started {
		s.start()
	}
	target := s.totalRetired + n
	for len(s.h) > 0 && s.totalRetired < target {
		// Fused pop-push: step the heap top in place and sift it down,
		// instead of pop → step → push. The (time, id) key is unique, so
		// re-keying the root and sifting selects the same next core as a
		// full pop/push cycle would — the event order is identical — at
		// half the heap traffic.
		c := s.h[0]
		if c.pending > 0 {
			c.time += c.pending
			c.pending = 0
		}
		before := c.retired
		s.step(c)
		s.totalRetired += c.retired - before

		// warmTarget == 0 (WarmupFrac 0) means no warmup at all: the
		// whole run is the measurement window (the zero warmMark is the
		// run's start), so no mark is ever captured.
		if !s.warmed && s.warmTarget > 0 && s.totalRetired >= s.warmTarget {
			s.warmed = true
			s.warmMark = s.markNow()
		}
		if s.epochFn != nil && s.totalRetired >= s.epochNext {
			s.fireEpoch()
		}
		if c.retired >= s.cfg.InstrPerCore {
			c.done = true
			s.h.pop()
		} else {
			s.h.siftDown(0)
		}
	}
	if err := s.sourceErr(); err != nil {
		s.fail(err)
		return false, s.runErr
	}
	if len(s.h) == 0 {
		s.finish()
		return true, nil
	}
	return false, nil
}

// sourceErr reports a latched trace-replay failure: a decode error
// (wrapping errs.ErrTraceCorrupt) or a wrapped-around stream (wrapping
// errs.ErrTraceWrapped) — either disqualifies the run's statistics.
func (s *System) sourceErr() error {
	if s.srcErr != nil {
		if err := s.srcErr(); err != nil {
			return err
		}
	}
	if s.srcWrapped != nil && s.srcWrapped() {
		return fmt.Errorf(
			"sim: %w: %q records fewer events than the run consumed (record more events per core or lower InstrPerCore)",
			errs.ErrTraceWrapped, s.cfg.Workload)
	}
	return nil
}

// fail terminates the run with err; the source is released and every
// later Step returns the same error.
func (s *System) fail(err error) {
	s.runErr = err
	s.finished = true
	s.closeSource()
}

// finish computes the final measurement window and releases the source.
func (s *System) finish() {
	s.finished = true
	s.final = s.windowSince(s.warmMark) // zero mark when never warmed
	s.closeSource()
}

// closeSource releases a source holding external resources (replayed
// trace files); idempotent. A gang lane's source is shared with its
// sibling lanes and owned by the Gang, which closes it once all lanes
// are done — a single lane finishing must not pull it out from under
// the others.
func (s *System) closeSource() {
	if s.closed {
		return
	}
	s.closed = true
	if s.shared != nil {
		return
	}
	if c, ok := s.work.(io.Closer); ok {
		c.Close()
	}
}

// MSHRStalls reports how many times a core's MSHR window filled and
// stalled the core, and the total core cycles lost to those stalls.
// Cumulative over the whole run (warmup included) — a structural
// back-pressure diagnostic, not a windowed measurement.
func (s *System) MSHRStalls() (stalls, cycles uint64) {
	return s.mshrStalls, s.mshrStallCycles
}

// Done reports whether the run has completed (or failed terminally).
func (s *System) Done() bool { return s.finished }

// Run replays the workload to the instruction budget and returns the
// measured statistics (post-warmup window). It is Step driven to
// completion; sources holding external resources (replayed trace
// files) are released when the run ends. Latched trace-replay errors
// are available from Err (Session and RunConfig surface them).
func (s *System) Run() stats.Sim {
	for {
		done, err := s.Step(stepQuantum)
		if done || err != nil {
			return s.final
		}
	}
}

// Err returns the terminal run error, if any.
func (s *System) Err() error { return s.runErr }

// markNow captures the cumulative counters at this instant, folding the
// scheme's internal running totals (Remaps, TagBufferFlushes, ...) into
// the copy so windows between marks cover every counter uniformly.
func (s *System) markNow() mark {
	st := s.st
	s.scheme.FillStats(&st)
	return mark{st: st, retired: s.totalRetired, cycles: s.maxCycles()}
}

// maxCycles is the simulated wall clock: the furthest core clock.
func (s *System) maxCycles() uint64 {
	var cycles uint64
	for _, c := range s.cores {
		if c.time > cycles {
			cycles = c.time
		}
	}
	return cycles
}

// windowSince returns the counters accumulated since m, with the
// window's instruction and cycle spans filled in.
func (s *System) windowSince(m mark) stats.Sim {
	return s.windowBetween(s.markNow(), m)
}

// windowBetween is windowSince with the current mark already captured.
func (s *System) windowBetween(cur, m mark) stats.Sim {
	out := stats.Sub(cur.st, m.st)
	out.Workload = s.cfg.Workload
	out.Scheme = s.scheme.Name()
	out.Instructions = cur.retired - m.retired
	out.Cycles = cur.cycles - m.cycles
	return out
}

// phase reports the run's lifecycle phase. A zero warmup target means
// the run measures from its first instruction.
func (s *System) phase() stats.Phase {
	switch {
	case s.finished:
		return stats.PhaseDone
	case s.warmed || s.warmTarget == 0:
		return stats.PhaseMeasure
	}
	return stats.PhaseWarmup
}

// Progress reports where the run is: instructions retired against the
// budget, the wall clock, and the phase. Cheap enough to poll.
func (s *System) Progress() Progress {
	return Progress{
		Retired: s.totalRetired,
		Total:   s.totalBudget,
		Cycles:  s.maxCycles(),
		Phase:   s.phase(),
	}
}

// Snapshot captures the current measurement window: counters since the
// end of warmup (or since the start of the run while still warming up),
// every counter — scheme-internal ones included — windowed uniformly.
// At completion it equals the final statistics Run returns.
func (s *System) Snapshot() stats.Snapshot {
	cur := s.markNow()
	return stats.Snapshot{
		Retired: cur.retired,
		Cycles:  cur.cycles,
		Phase:   s.phase(),
		Window:  s.windowBetween(cur, s.warmMark),
	}
}

// OnEpoch registers fn to receive a windowed snapshot every `every`
// retired instructions — exactly: at the first retirement boundary at
// or past each absolute multiple of `every`; an event retiring many
// instructions at once fires at most one sample and skips the
// multiples it jumped over, so sample points never drift from the
// k×every grid. Each sample's window spans from the previous sample
// (or the registration point), so the sequence is a time series of
// per-epoch rates. Observation only — hooks cannot perturb the
// simulation, so stepped, hooked, and one-shot runs stay
// bit-identical. Registering mid-run starts the first window at the
// current position; a nil fn or zero interval clears the hook.
func (s *System) OnEpoch(every uint64, fn func(stats.Snapshot)) {
	if fn == nil || every == 0 {
		s.epochFn = nil
		s.epochEvery = 0
		return
	}
	s.epochEvery = every
	s.epochFn = fn
	s.epochMark = s.markNow()
	s.epochNext = (s.totalRetired/every + 1) * every
}

// fireEpoch emits one epoch sample, starts the next window, and
// schedules the next sample at the first multiple past the current
// position.
func (s *System) fireEpoch() {
	cur := s.markNow()
	snap := stats.Snapshot{
		Retired: cur.retired,
		Cycles:  cur.cycles,
		Phase:   s.phase(),
		Window:  s.windowBetween(cur, s.epochMark),
	}
	s.epochMark = cur
	s.epochNext = (s.totalRetired/s.epochEvery + 1) * s.epochEvery
	s.epochFn(snap)
}

// step advances one core by one trace event.
func (s *System) step(c *core) {
	if s.shared != nil {
		s.stepShared(c)
		s.batchShared(c)
		return
	}
	ev := s.work.Next(c.id)
	// Non-memory instructions retire at IssueWidth.
	c.fract += ev.Gap
	c.time += uint64(c.fract / s.cfg.IssueWidth)
	c.fract %= s.cfg.IssueWidth
	c.retired += uint64(ev.Gap) + 1

	// Translate. A TLB miss pays the page-walk cost.
	pte, tlbHit := c.tlb.Lookup(ev.Addr, s.pt)
	if !tlbHit {
		c.time += s.cost.PageWalkCycles
	}
	meta := lineMeta(pte.Size)

	// SRAM hierarchy. Hit latencies are folded into the core model (the
	// out-of-order window hides them); only LLC misses are timed.
	s.st.L1Accesses++
	if hit, ev1 := c.l1.Access(ev.Addr, ev.Write, meta); !hit {
		s.st.L1Misses++
		if ev1 != nil {
			s.fillL2(c, ev1.Addr, true, ev1.Meta)
		}
		s.st.L2Accesses++
		if c.prefetch != nil {
			if pf := c.prefetch.Observe(ev.Addr, c.time); len(pf) > 0 {
				s.issuePrefetches(c, pf, pte)
			}
		}
		if hit2, ev2 := c.l2.Access(ev.Addr, false, meta); !hit2 {
			s.st.L2Misses++
			if ev2 != nil {
				s.fillL3(c, ev2.Addr, true, ev2.Meta)
			}
			s.st.LLCAccesses++
			if hit3, ev3 := s.l3.Access(ev.Addr, false, meta); !hit3 {
				if ev3 != nil {
					s.evictToMC(c, ev3)
				}
				s.llcMiss(c, ev.Addr, ev.Write, pte)
			}
		}
	}
}

// fillL2 pushes an L1 dirty eviction into L2, cascading as needed.
func (s *System) fillL2(c *core, a mem.Addr, dirty bool, meta uint8) {
	if ev := c.l2.Fill(a, dirty, meta); ev != nil {
		s.fillL3(c, ev.Addr, true, ev.Meta)
	}
}

// fillL3 pushes an L2 dirty eviction into the shared L3.
func (s *System) fillL3(c *core, a mem.Addr, dirty bool, meta uint8) {
	if ev := s.l3.Fill(a, dirty, meta); ev != nil {
		s.evictToMC(c, ev)
	}
}

// evictToMC sends an LLC dirty write-back to the memory controller. It
// carries no TLB mapping (mem.Mapping zero value) — the page-size bit
// on the line (§4.3) routes it.
func (s *System) evictToMC(c *core, ev *cache.Eviction) {
	s.st.LLCEvictions++
	req := mem.Request{
		Addr:     ev.Addr,
		Write:    true,
		Core:     c.id,
		Size:     metaSize(ev.Meta),
		Eviction: true,
	}
	s.execute(c, req, c.time)
}

// llcMiss issues a demand miss to the memory controller with
// MSHR-limited overlap.
func (s *System) llcMiss(c *core, a mem.Addr, write bool, pte vm.PTE) {
	s.st.LLCMisses++
	// Retire completed misses; if the window is full, stall to the
	// earliest completion. drain keeps outMin current, so the stall
	// target is O(1) instead of a scan over the MSHR window, and the
	// scan itself is skipped while the earliest outstanding completion
	// is still in the future (it would remove nothing).
	if len(c.outstanding) > 0 && c.outMin <= c.time {
		c.drain()
	}
	if len(c.outstanding) >= s.cfg.MSHRs {
		if c.outMin > c.time {
			s.mshrStalls++
			s.mshrStallCycles += c.outMin - c.time
			c.time = c.outMin
		}
		c.drain()
	}
	req := mem.Request{
		Addr:    a,
		Write:   write,
		Core:    c.id,
		Size:    pte.Size,
		Mapping: pte.Mapping(),
	}
	start := c.time
	completion := s.execute(c, req, c.time)
	if completion > start {
		s.st.MissLatSum += completion - start
		s.st.MissLatCount++
	}
	// A fraction of misses are dependence-critical: the core blocks on
	// them (pointer chasing); the rest overlap within the MSHR window.
	if s.rng.Bool(s.cfg.DepStallFrac) {
		if completion > c.time {
			c.time = completion
		}
	} else {
		if len(c.outstanding) == 0 || completion < c.outMin {
			c.outMin = completion
		}
		c.outstanding = append(c.outstanding, completion)
	}
}

// drain retires outstanding misses that completed by the core's clock,
// tracking the running minimum of the survivors for llcMiss's stall.
func (c *core) drain() {
	out := c.outstanding[:0]
	min := ^uint64(0)
	for _, t := range c.outstanding {
		if t > c.time {
			out = append(out, t)
			if t < min {
				min = t
			}
		}
	}
	c.outstanding = out
	c.outMin = min
}

// execute runs a request through the scheme and times its DRAM ops,
// returning the critical-path completion time.
func (s *System) execute(c *core, req mem.Request, now uint64) uint64 {
	res := s.scheme.Access(req)
	if !req.Eviction {
		if res.Hit {
			s.st.DCHits++
		} else {
			s.st.DCMisses++
		}
	}
	return s.executeOps(c, res, now)
}

// executeOps times a scheme result's DRAM operations and applies its
// software costs, returning the critical-path completion time.
func (s *System) executeOps(c *core, res mc.Result, now uint64) uint64 {
	// Stage-ordered execution: stage N opens when stage N-1's critical
	// ops complete; background ops issue at stage open and overlap.
	stageStart := now
	maxStage := uint8(0)
	for _, op := range res.Ops {
		if op.Stage > maxStage {
			maxStage = op.Stage
		}
	}
	completion := now
	for st := uint8(0); st <= maxStage; st++ {
		critEnd := stageStart
		for _, op := range res.Ops {
			if op.Stage != st {
				continue
			}
			var d *dram.DRAM
			var tr *stats.Traffic
			if op.Target == mem.InPackage {
				d, tr = s.inPkg, &s.st.InPkg
			} else {
				d, tr = s.offPkg, &s.st.OffPkg
			}
			var done uint64
			if op.Fused {
				done = d.Extend(op.Addr, op.Bytes, op.Write, op.Critical)
			} else {
				done = d.Access(stageStart, op.Addr, op.Bytes, op.Write, op.Critical)
			}
			tr.Add(op.Class, uint64(op.Bytes))
			if op.Critical && done > critEnd {
				critEnd = done
			}
		}
		stageStart = critEnd
		completion = critEnd
	}

	// Software costs: the initiator stalls the requesting core; every
	// other core picks up its share at its next scheduling point.
	for _, sw := range res.SW {
		c.time += sw.InitiatorCycles
		s.st.SWStallCycles += sw.InitiatorCycles
		if sw.AllCoresCycles > 0 {
			for _, other := range s.cores {
				if other.id != c.id && !other.done {
					other.pending += sw.AllCoresCycles
				}
			}
			s.st.SWStallCycles += sw.AllCoresCycles * uint64(len(s.cores)-1)
		}
	}
	return completion
}

// Run is the package-level convenience: build a session for (workload,
// scheme display name) on top of cfg and run it to completion.
//
// Run replaces cfg.Scheme with the named scheme's spec, except that
// scheme-tuning fields already set on cfg.Scheme (sampling coefficient,
// ways, thresholds, buffer sizes, PTE-update cost, epoch length) are
// preserved — so sweeps can tune a scheme and still select it by name.
// Use RunConfig to run a fully hand-built Config verbatim, and
// NewSession for incremental or cancellable runs.
func Run(cfg Config, workload, scheme string) (stats.Sim, error) {
	sess, err := NewSession(cfg, workload, scheme)
	if err != nil {
		return stats.Sim{}, err
	}
	return sess.Run(context.Background())
}

// RunConfig runs cfg exactly as given (cfg.Workload and cfg.Scheme must
// be fully populated). It is NewSessionConfig + Run to completion:
// latched trace-replay failures (corruption, wrap-around) fail the run
// with typed errors instead of returning skewed statistics.
func RunConfig(cfg Config) (stats.Sim, error) {
	sess, err := NewSessionConfig(cfg)
	if err != nil {
		return stats.Sim{}, err
	}
	return sess.Run(context.Background())
}
