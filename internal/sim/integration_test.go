package sim

import (
	"os"
	"path/filepath"
	"testing"

	"banshee/internal/mem"
	"banshee/internal/workload"
)

// Integration tests: whole-system properties that only emerge from the
// interaction of cores, caches, VM, scheme, and DRAM timing.

func TestWorkloadSchemeMatrixRuns(t *testing.T) {
	// Every (workload, scheme) pair must run without panicking and
	// produce internally consistent statistics. Small budgets keep this
	// broad sweep fast.
	schemes := []string{"NoCache", "CacheOnly", "Alloy 0.1", "Unison", "TDC", "HMA", "CAMEO", "Banshee", "Banshee FP", "Banshee Duel"}
	workloads := []string{"pagerank", "lbm", "mix1"}
	for _, w := range workloads {
		for _, sc := range schemes {
			cfg := quickConfig(w, sc)
			cfg.InstrPerCore = 60_000
			st, err := Run(cfg, w, sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", w, sc, err)
			}
			if st.DCHits+st.DCMisses != st.LLCMisses {
				t.Errorf("%s/%s: DC hits+misses %d != LLC misses %d",
					w, sc, st.DCHits+st.DCMisses, st.LLCMisses)
			}
		}
	}
}

func TestHierarchyFiltering(t *testing.T) {
	st, _ := Run(quickConfig("gcc", "NoCache"), "gcc", "NoCache")
	if st.L1Accesses == 0 {
		t.Fatal("no L1 accesses recorded")
	}
	if st.LLCAccesses > st.L2Accesses || st.L2Accesses > st.L1Accesses {
		t.Fatalf("hierarchy not filtering: L1=%d L2=%d LLC=%d",
			st.L1Accesses, st.L2Accesses, st.LLCAccesses)
	}
	if st.LLCMisses > st.LLCAccesses {
		t.Fatal("more LLC misses than accesses")
	}
	// Per-level miss counters: an L1 miss is exactly an L2 access and an
	// L2 miss exactly an LLC access (no prefetcher in this config), and
	// misses can never exceed accesses at their own level.
	if st.L1Misses == 0 || st.L2Misses == 0 {
		t.Fatalf("miss counters not wired: L1Misses=%d L2Misses=%d",
			st.L1Misses, st.L2Misses)
	}
	if st.L1Misses != st.L2Accesses {
		t.Fatalf("L1 misses %d != L2 accesses %d", st.L1Misses, st.L2Accesses)
	}
	if st.L2Misses != st.LLCAccesses {
		t.Fatalf("L2 misses %d != LLC accesses %d", st.L2Misses, st.LLCAccesses)
	}
	if st.L1Misses > st.L1Accesses || st.L2Misses > st.L2Accesses {
		t.Fatalf("misses exceed accesses: L1 %d/%d L2 %d/%d",
			st.L1Misses, st.L1Accesses, st.L2Misses, st.L2Accesses)
	}
}

func TestWriteWorkloadProducesEvictions(t *testing.T) {
	// lbm writes ~45% of references; dirty lines must flow out of the
	// LLC to the memory controller.
	st, _ := Run(quickConfig("lbm", "NoCache"), "lbm", "NoCache")
	if st.LLCEvictions == 0 {
		t.Fatal("write-heavy workload produced no LLC evictions")
	}
	// Under NoCache every eviction lands off-package as Replacement
	// class writes.
	if st.OffPkg.Bytes[mem.ClassReplacement] == 0 {
		t.Fatal("evictions not accounted off-package")
	}
}

func TestAlloyWriteAbsorption(t *testing.T) {
	// The always-fill Alloy absorbs dirty evictions in-package (they hit
	// lines filled by the preceding read misses), relieving off-package
	// write traffic relative to NoCache — the lbm effect.
	cfg := quickConfig("lbm", "NoCache")
	cfg.InstrPerCore = 300_000
	no, _ := Run(cfg, "lbm", "NoCache")
	al, _ := Run(cfg, "lbm", "Alloy 1")
	noWrites := no.OffPkg.Bytes[mem.ClassReplacement]
	alWrites := al.OffPkg.Bytes[mem.ClassReplacement]
	if alWrites >= noWrites {
		t.Fatalf("Alloy off-package write bytes %d not below NoCache %d", alWrites, noWrites)
	}
}

func TestBansheeMPKIBelowNoCache(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee")
	cfg.InstrPerCore = 400_000
	no, _ := Run(cfg, "pagerank", "NoCache")
	ba, _ := Run(cfg, "pagerank", "Banshee")
	if ba.MPKI() >= no.MPKI() {
		t.Fatalf("Banshee MPKI %.1f not below NoCache %.1f", ba.MPKI(), no.MPKI())
	}
}

func TestLargePageEvictionRouting(t *testing.T) {
	// End-to-end §4.3: with 2 MB pages, LLC dirty evictions carry the
	// page-size bit and must route through the large-page Banshee
	// without probes exploding or mis-mapped writes.
	cfg := quickConfig("pagerank", "Banshee 2M")
	cfg.LargePages = true
	cfg.InstrPerCore = 300_000
	st, err := Run(cfg, "pagerank", "Banshee 2M")
	if err != nil {
		t.Fatal(err)
	}
	if st.LLCEvictions == 0 {
		t.Skip("no evictions in this window")
	}
	// Writes to cached large pages land in-package as HitData.
	if st.InPkg.Bytes[mem.ClassHitData] == 0 {
		t.Fatal("no in-package data traffic under large pages")
	}
}

func TestSWStallsSlowTheRun(t *testing.T) {
	// Raising the PTE-update cost must never make the run faster.
	cfg := quickConfig("pagerank", "Banshee")
	cfg.InstrPerCore = 700_000
	cfg.Scheme.BansheeTagBufEntries = 16 // force frequent flushes
	cfg.Scheme.PTEUpdateMicros = 0.001
	cheap, _ := Run(cfg, "pagerank", "Banshee")
	if cheap.TagBufferFlushes == 0 {
		t.Fatal("setup bug: no flushes to cost")
	}
	cfg.Scheme.PTEUpdateMicros = 200 // absurdly expensive
	costly, _ := Run(cfg, "pagerank", "Banshee")
	if costly.Cycles <= cheap.Cycles {
		t.Fatalf("200µs PTE updates (%d cycles) not slower than free (%d)",
			costly.Cycles, cheap.Cycles)
	}
	if costly.SWStallCycles <= cheap.SWStallCycles {
		t.Fatal("software stalls not accounted")
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	// Fig. 8c's premise: more in-package channels must not hurt a
	// cache-heavy scheme.
	cfg := quickConfig("pagerank", "Unison")
	cfg.InstrPerCore = 250_000
	cfg.InPkgChannels = 2
	narrow, _ := Run(cfg, "pagerank", "Unison")
	cfg.InPkgChannels = 8
	wide, _ := Run(cfg, "pagerank", "Unison")
	if wide.Cycles > narrow.Cycles*105/100 {
		t.Fatalf("8-channel run (%d cycles) slower than 2-channel (%d)",
			wide.Cycles, narrow.Cycles)
	}
}

func TestLatencySweepMonotone(t *testing.T) {
	cfg := quickConfig("mcf", "TDC")
	cfg.InstrPerCore = 250_000
	cfg.InPkgLatScale = 1.0
	slow, _ := Run(cfg, "mcf", "TDC")
	cfg.InPkgLatScale = 0.5
	fast, _ := Run(cfg, "mcf", "TDC")
	if fast.Cycles > slow.Cycles*102/100 {
		t.Fatalf("halved latency (%d cycles) not at least as fast as full (%d)",
			fast.Cycles, slow.Cycles)
	}
}

func TestKernelWorkloadsEndToEnd(t *testing.T) {
	for _, w := range []string{"pagerank_kernel", "tri_count_kernel", "sgd_kernel", "lsh_kernel", "graph500_kernel"} {
		cfg := quickConfig(w, "Banshee")
		cfg.InstrPerCore = 80_000
		st, err := Run(cfg, w, "Banshee")
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if st.LLCMisses == 0 {
			t.Errorf("%s: no DRAM traffic", w)
		}
	}
}

func TestWarmupWindowExcluded(t *testing.T) {
	// With warmup, the measured window must be smaller than the whole
	// run (cycles measured < cycles of a warmup-free run).
	cfg := quickConfig("pagerank", "Banshee")
	cfg.InstrPerCore = 200_000
	cfg.WarmupFrac = 0
	full, _ := Run(cfg, "pagerank", "Banshee")
	cfg.WarmupFrac = 0.5
	windowed, _ := Run(cfg, "pagerank", "Banshee")
	if windowed.Cycles >= full.Cycles {
		t.Fatalf("warmup window (%d cycles) not smaller than full run (%d)",
			windowed.Cycles, full.Cycles)
	}
	if windowed.Instructions >= full.Instructions {
		t.Fatal("warmup instructions not excluded")
	}
}

func TestRecordReplayIdenticalStats(t *testing.T) {
	// The acceptance criterion of the capture/replay subsystem: running
	// a recorded trace through the simulator must produce bit-identical
	// statistics to running the synthetic workload directly with the
	// same seed. Recording InstrPerCore events per core guarantees the
	// replay never wraps (every event retires at least one instruction).
	dir := t.TempDir()
	cases := []struct {
		wl    string
		scale float64 // 0 = quickConfig default; kernels shrink their graphs
	}{
		{wl: "mcf"},                           // multiprogrammed, private address spaces
		{wl: "pagerank"},                      // shared address space, per-core Zipf streams
		{wl: "tri_count_kernel", scale: 1e-3}, // graph-kernel-derived stream
	}
	for _, tc := range cases {
		wl := tc.wl
		base := quickConfig(wl, "NoCache")
		base.InstrPerCore = 60_000
		if tc.scale != 0 {
			base.Scale = tc.scale
		}
		path := filepath.Join(dir, wl+".btrc")
		err := workload.Record(path, wl, workload.Config{
			Cores: base.Cores, Seed: base.Seed, Scale: base.Scale, Intensity: base.Intensity,
		}, base.InstrPerCore)
		if err != nil {
			t.Fatalf("%s: record: %v", wl, err)
		}
		for _, scheme := range []string{"Banshee", "Alloy 0.1"} {
			cfg := quickConfig(wl, scheme)
			cfg.InstrPerCore = base.InstrPerCore
			cfg.Scale = base.Scale

			direct, err := RunConfig(cfg)
			if err != nil {
				t.Fatalf("%s/%s: direct: %v", wl, scheme, err)
			}
			rcfg := cfg
			rcfg.Workload = workload.FilePrefix + path
			replayed, err := RunConfig(rcfg)
			if err != nil {
				t.Fatalf("%s/%s: replay: %v", wl, scheme, err)
			}
			// The workload label necessarily differs ("file:<path>");
			// every measurement must not.
			replayed.Workload = direct.Workload
			if direct != replayed {
				t.Errorf("%s/%s: replayed stats differ from direct run:\ndirect:   %+v\nreplayed: %+v",
					wl, scheme, direct, replayed)
			}
		}
	}
}

func TestReplayCoreMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.btrc")
	err := workload.Record(path, "gcc", workload.Config{Cores: 2, Seed: 1, Scale: 1e-3, Intensity: 1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig("gcc", "NoCache")
	cfg.Workload = workload.FilePrefix + path // cfg.Cores is 4
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("core-count mismatch between recording and config accepted")
	}
}

func TestReplayCorruptTraceFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.btrc")
	cfg := quickConfig("gcc", "NoCache")
	cfg.InstrPerCore = 20_000
	err := workload.Record(path, "gcc", workload.Config{
		Cores: cfg.Cores, Seed: cfg.Seed, Scale: cfg.Scale, Intensity: cfg.Intensity,
	}, cfg.InstrPerCore)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in core 0's first chunk — one the run is
	// guaranteed to load: Open still succeeds (chunks load lazily and
	// only the index is validated up front) but the run must fail
	// instead of returning stats over a corrupted stream.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[100] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Workload = workload.FilePrefix + path
	if _, err := RunConfig(cfg); err == nil {
		t.Fatal("corrupt trace replayed without error")
	}
}

func TestReplayShorterThanRunFails(t *testing.T) {
	// A recording shorter than the run would wrap and replay with
	// artificial periodicity; the run must fail instead of returning
	// misleading stats.
	path := filepath.Join(t.TempDir(), "short.btrc")
	cfg := quickConfig("gcc", "NoCache")
	cfg.InstrPerCore = 50_000
	err := workload.Record(path, "gcc", workload.Config{
		Cores: cfg.Cores, Seed: cfg.Seed, Scale: cfg.Scale, Intensity: cfg.Intensity,
	}, 200) // far fewer events than the run consumes
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = workload.FilePrefix + path
	if _, err := RunConfig(cfg); err == nil {
		t.Fatal("wrapped replay returned stats instead of an error")
	}
}

func TestReplayAdoptsRecordedCores(t *testing.T) {
	// Cores == 0 adopts a trace file's recorded core count, so callers
	// can replay a file without knowing its shape up front.
	path := filepath.Join(t.TempDir(), "t.btrc")
	cfg := quickConfig("gcc", "NoCache")
	cfg.InstrPerCore = 30_000
	cfg.Cores = 2
	rec := workload.Config{Cores: cfg.Cores, Seed: cfg.Seed, Scale: cfg.Scale, Intensity: cfg.Intensity}
	if err := workload.Record(path, "gcc", rec, 30_000); err != nil {
		t.Fatal(err)
	}
	direct, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workload = workload.FilePrefix + path
	cfg.Cores = 0 // adopt
	adopted, err := RunConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adopted.Workload = direct.Workload
	if direct != adopted {
		t.Fatal("adopted-cores replay differs from direct 2-core run")
	}
	// Synthetic workloads have no recorded shape; 0 must still error.
	cfg.Workload = "gcc"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("cores=0 accepted for a synthetic workload")
	}
}
