package sim

import (
	"context"
	"testing"

	"banshee/internal/obs"
)

// TestSamplerExactConsistency pins the Sampler's totals contract:
// after Finish, every banshee_sim_*_total counter equals the
// corresponding field of the statistics the run returned — sampling
// observes the run, it never re-measures it.
func TestSamplerExactConsistency(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	plain, err := Run(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}

	r := obs.NewRegistry()
	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSampler(r)
	sp.Attach(sess, 10_000)
	final, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sp.Finish(final)

	if final != plain {
		t.Fatalf("sampler perturbed the run:\nplain:   %+v\nsampled: %+v", plain, final)
	}
	snap := r.Snapshot()
	for name, want := range map[string]uint64{
		"banshee_sim_instructions_total": final.Instructions,
		"banshee_sim_cycles_total":       final.Cycles,
		"banshee_sim_llc_accesses_total": final.LLCAccesses,
		"banshee_sim_llc_misses_total":   final.LLCMisses,
		"banshee_sim_dc_hits_total":      final.DCHits,
		"banshee_sim_dc_misses_total":    final.DCMisses,
		"banshee_sim_inpkg_bytes_total":  final.InPkg.Total(),
		"banshee_sim_offpkg_bytes_total": final.OffPkg.Total(),
	} {
		if got := uint64(snap[name]); got != want {
			t.Errorf("%s = %d, want %d (exact)", name, got, want)
		}
	}
	if snap["banshee_epochs_total"] == 0 {
		t.Error("no epoch samples recorded")
	}
	if snap["banshee_epoch_ipc"] <= 0 {
		t.Errorf("epoch IPC gauge = %g, want > 0", snap["banshee_epoch_ipc"])
	}
	// Finish is idempotent and late samples are dropped: totals frozen.
	sp.Finish(final)
	sp.Sample(sess.Snapshot())
	if got := uint64(r.Snapshot()["banshee_sim_instructions_total"]); got != final.Instructions {
		t.Errorf("totals moved after Finish: %d, want %d", got, final.Instructions)
	}
}

// TestSamplerSharedRegistry pins the sweep-level contract: samplers
// for several jobs sharing one registry sum their runs' measurement
// windows, so sweep counters equal the field sums of the emitted
// per-job results.
func TestSamplerSharedRegistry(t *testing.T) {
	r := obs.NewRegistry()
	var wantInstr, wantDCM uint64
	for _, wl := range []string{"pagerank", "mcf"} {
		cfg := sessionTestConfig(wl)
		sess, err := NewSession(cfg, wl, "Banshee")
		if err != nil {
			t.Fatal(err)
		}
		sp := NewSampler(r)
		sp.Attach(sess, 10_000)
		final, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sp.Finish(final)
		wantInstr += final.Instructions
		wantDCM += final.DCMisses
	}
	snap := r.Snapshot()
	if got := uint64(snap["banshee_sim_instructions_total"]); got != wantInstr {
		t.Errorf("instructions = %d, want %d (sum over jobs)", got, wantInstr)
	}
	if got := uint64(snap["banshee_sim_dc_misses_total"]); got != wantDCM {
		t.Errorf("dc misses = %d, want %d (sum over jobs)", got, wantDCM)
	}
}

// TestMSHRStallCounters pins the MSHR back-pressure surface: with a
// single MSHR and no dependence stalls, every overlapping miss beyond
// the first must stall the core, and the lost cycles are visible
// through the accessor and the sampler counters.
func TestMSHRStallCounters(t *testing.T) {
	cfg := sessionTestConfig("mcf")
	cfg.MSHRs = 1
	cfg.DepStallFrac = 0 // all misses overlap: the window is the only limiter
	r := obs.NewRegistry()
	sess, err := NewSession(cfg, cfg.Workload, "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSampler(r)
	sp.Attach(sess, 10_000)
	final, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sp.Finish(final)

	stalls, cycles := sess.MSHRStalls()
	if stalls == 0 || cycles == 0 {
		t.Fatalf("MSHRs=1 run reports %d stalls, %d cycles — expected back-pressure", stalls, cycles)
	}
	snap := r.Snapshot()
	if got := uint64(snap["banshee_mshr_stalls_total"]); got != stalls {
		t.Errorf("banshee_mshr_stalls_total = %d, want %d", got, stalls)
	}
	if got := uint64(snap["banshee_mshr_stall_cycles_total"]); got != cycles {
		t.Errorf("banshee_mshr_stall_cycles_total = %d, want %d", got, cycles)
	}
}

// TestMSHRStallsDoNotChangeStats pins that the stall accounting is
// observation only: statistics with the counters present are
// bit-identical to the pre-instrumentation golden stats (covered by
// the golden test), and a generous MSHR window records no stalls.
func TestMSHRStallsDoNotChangeStats(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	cfg.MSHRs = 1 << 20 // effectively unlimited
	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stalls, cycles := sess.MSHRStalls(); stalls != 0 || cycles != 0 {
		t.Fatalf("unlimited MSHR window still stalled: %d events, %d cycles", stalls, cycles)
	}
}
