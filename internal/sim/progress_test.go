package sim

import (
	"testing"

	"banshee/internal/stats"
)

// TestProgressZeroWarmup: WarmupFrac 0 means the whole run is the
// measurement window — the session reports PhaseMeasure from its first
// instruction (never PhaseWarmup) and PhaseDone at the end.
func TestProgressZeroWarmup(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	cfg.WarmupFrac = 0
	sess, err := NewSession(cfg, cfg.Workload, "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	if p := sess.Progress(); p.Phase != stats.PhaseMeasure {
		t.Errorf("phase before first step = %v, want measure (no warmup)", p.Phase)
	}
	sawWarmup := false
	for {
		done, err := sess.Step(1_000)
		if err != nil {
			t.Fatal(err)
		}
		if sess.Progress().Phase == stats.PhaseWarmup {
			sawWarmup = true
		}
		if done {
			break
		}
	}
	if sawWarmup {
		t.Error("run with WarmupFrac 0 reported PhaseWarmup")
	}
	p := sess.Progress()
	if p.Phase != stats.PhaseDone {
		t.Errorf("final phase = %v, want done", p.Phase)
	}
	if p.Fraction() != 1 {
		t.Errorf("final Fraction = %v, want 1 (Retired %d / Total %d clamps)",
			p.Fraction(), p.Retired, p.Total)
	}
}

// TestProgressFractionBoundaries pins Fraction's edge cases directly:
// an empty progress is 0 (not NaN), and overshoot past the budget —
// which real runs produce, since cores retire past the target inside a
// step — clamps to 1.
func TestProgressFractionBoundaries(t *testing.T) {
	cases := []struct {
		name string
		p    Progress
		want float64
	}{
		{"zero total", Progress{Retired: 0, Total: 0}, 0},
		{"retired with zero total", Progress{Retired: 7, Total: 0}, 0},
		{"start", Progress{Retired: 0, Total: 100}, 0},
		{"midway", Progress{Retired: 50, Total: 100}, 0.5},
		{"exact", Progress{Retired: 100, Total: 100}, 1},
		{"overshoot clamps", Progress{Retired: 150, Total: 100}, 1},
	}
	for _, tc := range cases {
		if got := tc.p.Fraction(); got != tc.want {
			t.Errorf("%s: Fraction() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestProgressMonotonicUnderOvershoot drives a session with step sizes
// far larger than the remaining budget: Retired and Fraction must be
// non-decreasing, the phase must only ever move forward
// (warmup → measure → done), and stepping a finished session must stay
// done without moving Progress.
func TestProgressMonotonicUnderOvershoot(t *testing.T) {
	cfg := sessionTestConfig("mcf")
	sess, err := NewSession(cfg, cfg.Workload, "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	// Step far past the whole budget every time: Step's contract is "at
	// least n", so overshoot must exhaust the run, not wrap or stall.
	step := cfg.InstrPerCore * uint64(cfg.Cores) * 3
	var last Progress
	lastFrac := 0.0
	for i := 0; ; i++ {
		done, err := sess.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		p := sess.Progress()
		if p.Retired < last.Retired {
			t.Fatalf("Retired went backwards: %d -> %d", last.Retired, p.Retired)
		}
		if f := p.Fraction(); f < lastFrac {
			t.Fatalf("Fraction went backwards: %v -> %v", lastFrac, f)
		} else {
			lastFrac = f
		}
		if p.Phase < last.Phase {
			t.Fatalf("phase went backwards: %v -> %v", last.Phase, p.Phase)
		}
		last = p
		if done {
			break
		}
		if i > 10 {
			t.Fatal("run did not finish despite overshooting steps")
		}
	}
	if last.Phase != stats.PhaseDone || last.Fraction() != 1 {
		t.Fatalf("terminal progress = %+v (Fraction %v), want done at 1", last, last.Fraction())
	}
	// A finished session is terminal: further steps report done and
	// leave progress exactly where it was.
	for i := 0; i < 2; i++ {
		done, err := sess.Step(step)
		if err != nil || !done {
			t.Fatalf("Step after completion = (%v, %v), want (true, nil)", done, err)
		}
	}
	if p := sess.Progress(); p != last {
		t.Errorf("progress moved after completion: %+v -> %+v", last, p)
	}
}
