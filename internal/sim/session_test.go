package sim

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"banshee/internal/registry"
	"banshee/internal/stats"
	"banshee/internal/workload"
)

// sessionTestConfig is a small config the stepper tests share.
func sessionTestConfig(wl string) Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.InstrPerCore = 50_000
	cfg.Seed = 13
	cfg.Workload = wl
	return cfg
}

// runStepped drives a fresh session for cfg in increments of step,
// poking the observation surface along the way (Progress and Snapshot
// must never perturb the simulation).
func runStepped(t *testing.T, cfg Config, scheme string, step uint64) stats.Sim {
	t.Helper()
	sess, err := NewSession(cfg, cfg.Workload, scheme)
	if err != nil {
		t.Fatalf("NewSession(%s): %v", scheme, err)
	}
	steps := 0
	for {
		done, err := sess.Step(step)
		if err != nil {
			t.Fatalf("Step(%s): %v", scheme, err)
		}
		if steps++; steps%3 == 0 {
			_ = sess.Progress()
			_ = sess.Snapshot()
		}
		if done {
			break
		}
	}
	st, err := sess.Result()
	if err != nil {
		t.Fatalf("Result(%s): %v", scheme, err)
	}
	return st
}

// TestStepEqualsRun pins the stepper's core contract: driving a session
// in small (and deliberately odd-sized) steps, with snapshots taken
// mid-flight, yields final statistics bit-identical to the one-shot Run
// path — for every registered scheme display name.
func TestStepEqualsRun(t *testing.T) {
	for _, scheme := range registry.Names() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			cfg := sessionTestConfig("pagerank")
			oneShot, err := Run(cfg, cfg.Workload, scheme)
			if err != nil {
				t.Fatal(err)
			}
			stepped := runStepped(t, cfg, scheme, 1777)
			if oneShot != stepped {
				t.Fatalf("stepped run diverged from one-shot run:\none-shot: %+v\nstepped:  %+v", oneShot, stepped)
			}
		})
	}
}

// TestStepEqualsRunWorkloadKinds covers the same identity across every
// registered workload kind: synthetic profiles, mixes, graph kernels,
// and recorded trace files.
func TestStepEqualsRunWorkloadKinds(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "mcf.btrc")
	cfg := sessionTestConfig("mcf")
	if err := workload.Record(tracePath, "mcf", workload.Config{
		Cores: cfg.Cores, Seed: cfg.Seed, Scale: cfg.Scale, Intensity: cfg.Intensity,
	}, cfg.InstrPerCore); err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"mcf", "mix1", "pagerank_kernel", workload.FilePrefix + tracePath} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			cfg := sessionTestConfig(wl)
			oneShot, err := Run(cfg, wl, "Banshee")
			if err != nil {
				t.Fatal(err)
			}
			stepped := runStepped(t, cfg, "Banshee", 911)
			if oneShot != stepped {
				t.Fatalf("stepped run diverged from one-shot run:\none-shot: %+v\nstepped:  %+v", oneShot, stepped)
			}
		})
	}
}

// TestOnEpochSeriesConsistency checks the epoch sampling mechanism:
// hooked runs stay bit-identical to unhooked ones, samples arrive at
// monotonically increasing retirement points roughly one epoch apart,
// and the per-epoch windows tile the run — they sum (with the partial
// tail) to the whole-run counters.
func TestOnEpochSeriesConsistency(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	plain, err := Run(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	const every = 10_000
	var series stats.Series
	sess.OnEpoch(every, func(s stats.Snapshot) { series = append(series, s) })
	hooked, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain != hooked {
		t.Fatalf("epoch hook perturbed the run:\nplain:  %+v\nhooked: %+v", plain, hooked)
	}

	total := cfg.InstrPerCore * uint64(cfg.Cores)
	if want := total / every; uint64(len(series)) < want-1 || uint64(len(series)) > want+1 {
		t.Fatalf("got %d epoch samples for %d instructions at every=%d", len(series), total, every)
	}
	var prev, sumInstr uint64
	for i, s := range series {
		if s.Retired <= prev {
			t.Fatalf("sample %d: retirement not monotone (%d after %d)", i, s.Retired, prev)
		}
		// Samples land on the absolute k×every grid: each fires at the
		// first retirement boundary at or past a fresh multiple, so
		// consecutive samples occupy strictly increasing grid buckets
		// and overshoot never accumulates into drift.
		if s.Retired/every <= prev/every {
			t.Fatalf("sample %d at %d shares the %d-grid bucket with previous sample at %d",
				i, s.Retired, every, prev)
		}
		if s.Window.Instructions != s.Retired-prev {
			t.Fatalf("sample %d: window says %d instructions, positions say %d",
				i, s.Window.Instructions, s.Retired-prev)
		}
		if s.Window.L1Accesses == 0 {
			t.Fatalf("sample %d: empty window", i)
		}
		prev = s.Retired
		sumInstr += s.Window.Instructions
	}
	// The windows tile the run: back to back with no gap or overlap,
	// covering everything up to the last sample point.
	if sumInstr != prev {
		t.Fatalf("epoch windows cover %d instructions up to retirement point %d", sumInstr, prev)
	}
	if finalSnap := sess.Snapshot(); finalSnap.Phase != stats.PhaseDone {
		t.Fatalf("completed session reports phase %v", finalSnap.Phase)
	}
}

// TestSessionCancel pins cancellation semantics: a cancelled Run
// returns an error matching context.Canceled together with the partial
// measurement window, the window agrees with a post-cancel Snapshot,
// and the session is terminally stopped.
func TestSessionCancel(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	cfg.InstrPerCore = 2_000_000 // long enough that cancellation lands mid-run

	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	sess.OnEpoch(100_000, func(stats.Snapshot) {
		if fired++; fired == 3 {
			cancel()
		}
	})
	partial, err := sess.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if partial.Instructions == 0 || partial.Cycles == 0 {
		t.Fatalf("partial stats empty: %+v", partial)
	}
	p := sess.Progress()
	if p.Retired == 0 || p.Retired >= p.Total {
		t.Fatalf("cancelled mid-run but progress says %d of %d", p.Retired, p.Total)
	}
	// The returned window is exactly what a post-cancel Snapshot sees:
	// the run froze at the cancellation boundary.
	snap := sess.Snapshot()
	if snap.Window != partial {
		t.Fatalf("post-cancel snapshot diverges from returned partial stats:\nsnapshot: %+v\npartial:  %+v",
			snap.Window, partial)
	}
	// Terminal: further steps keep failing, results stay unavailable.
	if _, err := sess.Step(1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step after cancel returned %v", err)
	}
	if _, err := sess.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Result after cancel returned %v", err)
	}
}

// TestRunAfterTerminalIgnoresContext pins that Run on a session that
// already reached a terminal state reports that state: a cancelled
// context cannot retroactively fail a finished run.
func TestRunAfterTerminalIgnoresContext(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	sess, err := NewSession(cfg, cfg.Workload, "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := sess.Run(cancelled)
	if err != nil {
		t.Fatalf("Run on a completed session returned %v", err)
	}
	if got != want {
		t.Fatal("Run on a completed session returned different stats")
	}
}

// TestZeroWarmupMeasuresWholeRun pins WarmupFrac=0 semantics: no
// warmup window exists, the run measures from its first instruction
// (no counters or instructions excluded), and the phase reads
// "measure" from the start.
func TestZeroWarmupMeasuresWholeRun(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	cfg.WarmupFrac = 0
	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if p := sess.Progress(); p.Phase != stats.PhaseMeasure {
		t.Fatalf("zero-warmup run starts in phase %v, want measure", p.Phase)
	}
	st, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := cfg.InstrPerCore * uint64(cfg.Cores)
	if st.Instructions < total {
		t.Fatalf("zero-warmup run reports %d instructions, want >= %d (nothing excluded)",
			st.Instructions, total)
	}
	if st.L1Accesses == 0 || st.Cycles == 0 {
		t.Fatalf("zero-warmup run lost counters: %+v", st)
	}
}

// TestSessionResultBeforeDone ensures Result refuses to hand out stats
// for an unfinished run.
func TestSessionResultBeforeDone(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	sess, err := NewSession(cfg, cfg.Workload, "NoCache")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(100); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Result(); err == nil {
		t.Fatal("Result on a running session did not error")
	}
}

// TestStepZeroAlloc pins the steady-state Step path allocation-free:
// once warm, advancing the simulation must not produce garbage — the
// stepper refactor must not tax the innermost loop.
func TestStepZeroAlloc(t *testing.T) {
	cfg := sessionTestConfig("pagerank")
	cfg.InstrPerCore = 200_000_000 // never finishes during the test
	cfg.Scale = 1.0 / 256          // small footprint: the warmup touches every page
	sess, err := NewSession(cfg, cfg.Workload, "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Warm to steady state: caches, MSHR slices, page table, TLBs, and
	// scheme scratch buffers all reach their working-set size.
	if _, err := sess.Step(3_000_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := sess.Step(2_000); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Step allocates %v per call, want 0", avg)
	}
}
