package sim

import (
	"testing"

	"banshee/internal/mem"
)

func TestPrefetcherStreamDetection(t *testing.T) {
	p := NewPrefetcher(4)
	// First two sequential accesses build confidence, no prefetch yet.
	if got := p.Observe(0x1000, 1); got != nil {
		t.Fatalf("premature prefetch %v", got)
	}
	if got := p.Observe(0x1040, 2); got != nil {
		t.Fatalf("confidence-1 prefetch %v", got)
	}
	// Third consecutive access arms the stream.
	got := p.Observe(0x1080, 3)
	if len(got) != 4 {
		t.Fatalf("prefetch count %d, want 4", len(got))
	}
	for i, a := range got {
		want := mem.Addr(0x10C0 + i*64)
		if a != want {
			t.Fatalf("prefetch %d = %#x, want %#x", i, uint64(a), uint64(want))
		}
	}
}

func TestPrefetcherStopsAtPageBoundary(t *testing.T) {
	p := NewPrefetcher(8)
	// Arm a stream ending one line before a page boundary.
	p.Observe(0x1F40, 1)
	p.Observe(0x1F80, 2)
	got := p.Observe(0x1FC0, 3)
	// Next line would be 0x2000 — a new page. §3.2: never cross.
	if len(got) != 0 {
		t.Fatalf("prefetched %v across a page boundary", got)
	}
	// Two lines before the boundary: exactly one prefetch fits.
	p2 := NewPrefetcher(8)
	p2.Observe(0x1E80, 1)
	p2.Observe(0x1EC0, 2)
	got = p2.Observe(0x1F00, 3)
	if len(got) != 3 { // 0x1F40, 0x1F80, 0x1FC0
		t.Fatalf("boundary truncation gave %d prefetches, want 3", len(got))
	}
}

func TestPrefetcherRandomAccessesSilent(t *testing.T) {
	p := NewPrefetcher(4)
	addrs := []mem.Addr{0x1000, 0x9000, 0x3000, 0xF000, 0x5000, 0xB000}
	for i, a := range addrs {
		if got := p.Observe(a, uint64(i)); got != nil {
			t.Fatalf("random access %#x triggered prefetch", uint64(a))
		}
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewPrefetcher(2)
	// Interleave two streams; both must eventually arm.
	armed := 0
	for i := 0; i < 6; i++ {
		a := mem.Addr(0x10000 + i*64)
		b := mem.Addr(0x80000 + i*64)
		if len(p.Observe(a, uint64(2*i))) > 0 {
			armed++
		}
		if len(p.Observe(b, uint64(2*i+1))) > 0 {
			armed++
		}
	}
	if armed < 4 {
		t.Fatalf("interleaved streams armed only %d times", armed)
	}
}

func TestPrefetchReducesLLCMisses(t *testing.T) {
	base := quickConfig("lbm", "Banshee")
	base.InstrPerCore = 300_000
	off, err := Run(base, "lbm", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	pf := base
	pf.PrefetchDegree = 4
	on, err := Run(pf, "lbm", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if on.Prefetches == 0 {
		t.Fatal("prefetcher never fired on a streaming workload")
	}
	if on.LLCMisses >= off.LLCMisses {
		t.Fatalf("prefetching did not cut LLC misses: %d vs %d", on.LLCMisses, off.LLCMisses)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	st, err := Run(quickConfig("lbm", "Banshee"), "lbm", "Banshee")
	if err != nil {
		t.Fatal(err)
	}
	if st.Prefetches != 0 {
		t.Fatal("prefetches issued with the feature disabled")
	}
}
