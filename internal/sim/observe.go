package sim

import (
	"sync"
	"time"

	"banshee/internal/obs"
	"banshee/internal/stats"
)

// Sampler bridges one session's epoch stream into an obs.Registry: the
// per-epoch windows drive rate gauges (MPKI, IPC, DRAM-cache hit rate,
// LLC accesses per wall-second), and each completed run folds its
// measurement-window counters into monotone totals.
//
// The totals carry an exactness contract: Finish(final) absorbs
// exactly `final` — the same measurement window the run reports — and
// is only called for runs whose results are actually emitted. Failed
// or cancelled attempts never touch the totals (their partial windows
// are discarded along with their partial results), so across a sweep
// the `banshee_sim_*_total` series equal the field sums of the
// executed results, retries and faults included. Mid-run the totals
// therefore trail the live window by at most one job; the epoch
// gauges are live.
//
// Several Samplers may share one registry (one per concurrent job):
// the registry hands every Sampler the same underlying metrics, and
// each Sampler folds in only its own run. A Sampler is bound to a
// single session; the mutex guards a late epoch racing Finish.
type Sampler struct {
	sess *Session

	instructions *obs.Counter
	cycles       *obs.Counter
	llcAccesses  *obs.Counter
	llcMisses    *obs.Counter
	dcHits       *obs.Counter
	dcMisses     *obs.Counter
	inPkgBytes   *obs.Counter
	offPkgBytes  *obs.Counter
	mshrStalls   *obs.Counter
	mshrCycles   *obs.Counter
	epochs       *obs.Counter

	mpki       *obs.Gauge
	ipc        *obs.Gauge
	dcHitRate  *obs.Gauge
	accPerSec  *obs.Gauge
	avgMissLat *obs.Gauge

	mu       sync.Mutex
	lastWall time.Time
	done     bool
}

// NewSampler registers the simulation metric families on r and returns
// a sampler ready to bind to a session. Registration is idempotent, so
// every sampler built against the same registry shares the same series.
func NewSampler(r *obs.Registry) *Sampler {
	return &Sampler{
		instructions: r.Counter("banshee_sim_instructions_total", "instructions retired inside measurement windows of executed runs"),
		cycles:       r.Counter("banshee_sim_cycles_total", "simulated cycles inside measurement windows of executed runs"),
		llcAccesses:  r.Counter("banshee_sim_llc_accesses_total", "LLC accesses inside measurement windows of executed runs"),
		llcMisses:    r.Counter("banshee_sim_llc_misses_total", "LLC misses inside measurement windows of executed runs"),
		dcHits:       r.Counter("banshee_sim_dc_hits_total", "DRAM cache hits inside measurement windows of executed runs"),
		dcMisses:     r.Counter("banshee_sim_dc_misses_total", "DRAM cache misses inside measurement windows of executed runs"),
		inPkgBytes:   r.Counter("banshee_sim_inpkg_bytes_total", "in-package DRAM bytes inside measurement windows of executed runs"),
		offPkgBytes:  r.Counter("banshee_sim_offpkg_bytes_total", "off-package DRAM bytes inside measurement windows of executed runs"),
		mshrStalls:   r.Counter("banshee_mshr_stalls_total", "MSHR-full stall events over executed runs"),
		mshrCycles:   r.Counter("banshee_mshr_stall_cycles_total", "core cycles lost to MSHR-full stalls over executed runs"),
		epochs:       r.Counter("banshee_epochs_total", "epoch samples taken (warmup epochs included)"),
		mpki:         r.Gauge("banshee_epoch_mpki", "DRAM cache MPKI over the last epoch window"),
		ipc:          r.Gauge("banshee_epoch_ipc", "instructions per cycle over the last epoch window"),
		dcHitRate:    r.Gauge("banshee_epoch_dc_hit_rate", "DRAM cache hit rate over the last epoch window"),
		accPerSec:    r.Gauge("banshee_epoch_accesses_per_sec", "LLC accesses per wall-clock second over the last epoch window"),
		avgMissLat:   r.Gauge("banshee_epoch_avg_miss_latency_cycles", "mean LLC miss latency over the last epoch window"),
	}
}

// Attach binds the sampler to sess and registers its epoch hook.
// OnEpoch holds a single hook, so Attach owns the session's epoch
// stream; callers composing several consumers (printing + sampling)
// should Bind instead and call Sample from their own hook.
func (sp *Sampler) Attach(sess *Session, every uint64) {
	sp.Bind(sess)
	sess.OnEpoch(every, sp.Sample)
}

// Bind associates the sampler with sess without touching the session's
// epoch hook, for callers running their own composite OnEpoch callback.
func (sp *Sampler) Bind(sess *Session) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.sess = sess
	sp.lastWall = time.Now()
}

// Sample folds one epoch snapshot into the registry's rate gauges.
// Totals are untouched until Finish — an epoch window may straddle the
// warmup boundary, and a run that later fails must leave no residue.
func (sp *Sampler) Sample(snap stats.Snapshot) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.done {
		return
	}
	sp.epochs.Inc()

	w := &snap.Window
	sp.mpki.Set(w.MPKI())
	sp.ipc.Set(w.IPC())
	if tot := w.DCHits + w.DCMisses; tot > 0 {
		sp.dcHitRate.Set(float64(w.DCHits) / float64(tot))
	}
	sp.avgMissLat.Set(w.AvgMissLat())
	now := time.Now()
	if dt := now.Sub(sp.lastWall).Seconds(); dt > 0 {
		sp.accPerSec.Set(float64(w.LLCAccesses) / dt)
	}
	sp.lastWall = now
}

// Finish folds the run's final measurement window into the totals.
// Call it once, with the statistics the run returned, and only for
// runs whose results are kept; later calls and late epoch samples are
// no-ops.
func (sp *Sampler) Finish(final stats.Sim) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.done {
		return
	}
	sp.done = true
	sp.instructions.Add(final.Instructions)
	sp.cycles.Add(final.Cycles)
	sp.llcAccesses.Add(final.LLCAccesses)
	sp.llcMisses.Add(final.LLCMisses)
	sp.dcHits.Add(final.DCHits)
	sp.dcMisses.Add(final.DCMisses)
	sp.inPkgBytes.Add(final.InPkg.Total())
	sp.offPkgBytes.Add(final.OffPkg.Total())
	if sp.sess != nil {
		stalls, cycles := sp.sess.MSHRStalls()
		sp.mshrStalls.Add(stalls)
		sp.mshrCycles.Add(cycles)
	}
}
