package sim

import (
	"banshee/internal/mem"
	"banshee/internal/vm"
)

// Prefetcher implements the L2-and-below hardware stream prefetcher the
// paper's §3.2 discusses as a complication for PTE/TLB-based mapping:
// caches below the L1 operate on physical addresses and cannot consult
// the TLB, so Banshee (a) stops prefetches at page boundaries — data
// beyond the boundary is unrelated in physical space — and (b) copies
// the DRAM-cache mapping bits from the triggering access onto every
// prefetch it spawns. Both behaviors are modeled here exactly.
//
// The prefetcher is disabled by default (the paper's evaluation does
// not enable one); cfg.PrefetchDegree > 0 turns it on, and the
// BenchmarkPrefetchAblation bench and examples explore its interaction
// with the schemes.
type Prefetcher struct {
	degree  int
	streams []stream // per detected stream
}

type stream struct {
	lastLine uint64
	conf     int
	valid    bool
	tick     uint64
}

// streamsPerCore bounds the tracking table, like a real 4-entry stream
// detector.
const streamsPerCore = 4

// confidenceThreshold is how many consecutive hits arm the stream.
const confidenceThreshold = 2

// NewPrefetcher builds a stream prefetcher of the given degree
// (lines fetched ahead per trigger).
func NewPrefetcher(degree int) *Prefetcher {
	return &Prefetcher{degree: degree, streams: make([]stream, streamsPerCore)}
}

// Observe feeds one demand access and returns the prefetch addresses to
// issue: up to `degree` next lines, truncated at the page boundary
// (§3.2). The returned addresses carry the triggering access's mapping
// — the caller attaches pte.Mapping() to each.
func (p *Prefetcher) Observe(addr mem.Addr, tick uint64) []mem.Addr {
	line := mem.LineNum(addr)
	// Match an existing stream.
	si := -1
	for i := range p.streams {
		if p.streams[i].valid && line == p.streams[i].lastLine+1 {
			si = i
			break
		}
	}
	if si < 0 {
		// Allocate (LRU) a new tentative stream.
		victim := 0
		for i := range p.streams {
			if !p.streams[i].valid {
				victim = i
				break
			}
			if p.streams[i].tick < p.streams[victim].tick {
				victim = i
			}
		}
		p.streams[victim] = stream{lastLine: line, valid: true, tick: tick}
		return nil
	}
	s := &p.streams[si]
	s.lastLine = line
	s.conf++
	s.tick = tick
	if s.conf < confidenceThreshold {
		return nil
	}
	// Armed: prefetch ahead, stopping at the 4 KB page boundary.
	var out []mem.Addr
	pageEnd := mem.PageAddr(addr) + mem.PageBytes
	for i := 1; i <= p.degree; i++ {
		next := mem.LineBase(line + uint64(i))
		if next >= pageEnd {
			break
		}
		out = append(out, next)
	}
	return out
}

// issuePrefetches runs the prefetch addresses through L3 and, for L3
// misses, to the memory controller as non-critical reads carrying the
// triggering PTE's mapping. Prefetches never count toward DRAM-cache
// hit/miss statistics (they are not demand).
func (s *System) issuePrefetches(c *core, addrs []mem.Addr, pte vm.PTE) {
	meta := lineMeta(pte.Size)
	for _, a := range addrs {
		if hit, ev := s.l3.Access(a, false, meta); hit {
			continue
		} else if ev != nil {
			s.evictToMC(c, ev)
		}
		s.st.Prefetches++
		req := mem.Request{
			Addr:    a,
			Core:    c.id,
			Size:    pte.Size,
			Mapping: pte.Mapping(), // §3.2: copy the trigger's mapping
		}
		res := s.scheme.Access(req)
		// Prefetches are bandwidth, not latency: demote every op to the
		// background class and ignore completion times.
		for i := range res.Ops {
			res.Ops[i].Critical = false
		}
		s.executeOps(c, res, c.time)
	}
}
