package sim

import (
	"testing"

	"banshee/internal/mem"
)

// quickConfig returns a config small enough for unit tests.
func quickConfig(workload, scheme string) Config {
	cfg := DefaultConfig()
	cfg.InstrPerCore = 150_000
	cfg.Cores = 4
	cfg.Seed = 42
	cfg.Workload = workload
	spec, err := ParseScheme(scheme)
	if err != nil {
		panic(err)
	}
	cfg.Scheme = spec
	return cfg
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{
		"NoCache", "CacheOnly", "Alloy 1", "Alloy 0.1", "Unison", "TDC",
		"HMA", "Banshee", "Banshee LRU", "Banshee NoSample", "Banshee 2M",
		"Banshee+BATMAN", "Alloy 1+BATMAN",
	} {
		if _, err := ParseScheme(name); err != nil {
			t.Errorf("ParseScheme(%q): %v", name, err)
		}
	}
	if _, err := ParseScheme("Bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	spec, _ := ParseScheme("Banshee+BATMAN")
	if !spec.BATMAN || spec.Kind != "banshee" {
		t.Fatalf("BATMAN suffix not parsed: %+v", spec)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee")
	cfg.Cores = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = quickConfig("pagerank", "Banshee")
	cfg.WarmupFrac = 1.0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("warmup 1.0 accepted")
	}
	cfg = quickConfig("nosuchworkload", "Banshee")
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunProducesSaneStats(t *testing.T) {
	for _, scheme := range []string{"NoCache", "CacheOnly", "Alloy 1", "Unison", "TDC", "HMA", "Banshee"} {
		st, err := Run(quickConfig("pagerank", scheme), "pagerank", scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if st.Instructions == 0 || st.Cycles == 0 {
			t.Fatalf("%s: empty run: %+v", scheme, st)
		}
		if st.LLCMisses == 0 {
			t.Fatalf("%s: no LLC misses", scheme)
		}
		if st.IPC() <= 0 || st.IPC() > float64(4*4) {
			t.Fatalf("%s: implausible IPC %v", scheme, st.IPC())
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		st, err := Run(quickConfig("mix1", "Banshee"), "mix1", "Banshee")
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, st.InPkg.Total()
	}
	c1, b1 := run()
	c2, b2 := run()
	if c1 != c2 || b1 != b2 {
		t.Fatalf("runs differ: cycles %d/%d bytes %d/%d", c1, c2, b1, b2)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee")
	st1, _ := Run(cfg, "pagerank", "Banshee")
	cfg.Seed = 43
	st2, _ := Run(cfg, "pagerank", "Banshee")
	if st1.Cycles == st2.Cycles {
		t.Fatal("different seeds produced identical cycle counts")
	}
}

func TestNoCacheTouchesOnlyOffPackage(t *testing.T) {
	st, _ := Run(quickConfig("pagerank", "NoCache"), "pagerank", "NoCache")
	if st.InPkg.Total() != 0 {
		t.Fatal("NoCache generated in-package traffic")
	}
	if st.OffPkg.Total() == 0 {
		t.Fatal("NoCache generated no off-package traffic")
	}
	if st.DCHits != 0 {
		t.Fatal("NoCache reported DRAM-cache hits")
	}
}

func TestCacheOnlyTouchesOnlyInPackage(t *testing.T) {
	st, _ := Run(quickConfig("pagerank", "CacheOnly"), "pagerank", "CacheOnly")
	if st.OffPkg.Total() != 0 {
		t.Fatal("CacheOnly generated off-package traffic")
	}
	if st.DCMisses != 0 {
		t.Fatal("CacheOnly missed")
	}
}

func TestCacheOnlyFasterThanNoCache(t *testing.T) {
	no, _ := Run(quickConfig("pagerank", "NoCache"), "pagerank", "NoCache")
	co, _ := Run(quickConfig("pagerank", "CacheOnly"), "pagerank", "CacheOnly")
	if co.Cycles >= no.Cycles {
		t.Fatalf("CacheOnly (%d cycles) not faster than NoCache (%d)", co.Cycles, no.Cycles)
	}
}

func TestBansheeGeneratesSchemeEvents(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee")
	cfg.InstrPerCore = 400_000
	st, _ := Run(cfg, "pagerank", "Banshee")
	if st.Remaps == 0 {
		t.Fatal("Banshee never replaced a page")
	}
	if st.CounterSamples == 0 {
		t.Fatal("Banshee never sampled counters")
	}
	if st.InPkg.Bytes[mem.ClassTag] == 0 && st.InPkg.Bytes[mem.ClassCounter] == 0 {
		t.Fatal("no metadata traffic recorded")
	}
}

func TestBansheeTagBufferFlushes(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee")
	cfg.InstrPerCore = 600_000
	// A small tag buffer forces flushes within the short run.
	cfg.Scheme.BansheeTagBufEntries = 64
	st, _ := Run(cfg, "pagerank", "Banshee")
	if st.TagBufferFlushes == 0 {
		t.Fatal("no PTE/TLB sync rounds despite tiny tag buffer")
	}
	if st.TLBShootdowns == 0 {
		t.Fatal("flushes did not shoot down TLBs")
	}
	if st.SWStallCycles == 0 {
		t.Fatal("software cost not charged")
	}
}

func TestLargePagesRun(t *testing.T) {
	cfg := quickConfig("pagerank", "Banshee 2M")
	cfg.LargePages = true
	st, err := Run(cfg, "pagerank", "Banshee 2M")
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "Banshee 2M" {
		t.Fatalf("scheme %q", st.Scheme)
	}
	if st.LLCMisses == 0 {
		t.Fatal("no misses")
	}
}

func TestBATMANWrapping(t *testing.T) {
	st, err := Run(quickConfig("pagerank", "Banshee+BATMAN"), "pagerank", "Banshee+BATMAN")
	if err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "Banshee+BATMAN" {
		t.Fatalf("scheme %q", st.Scheme)
	}
}

func TestTrafficConservation(t *testing.T) {
	// Property: a demand miss under Banshee moves at least 64 B
	// somewhere; total traffic bounds below by misses × line.
	st, _ := Run(quickConfig("mcf", "Banshee"), "mcf", "Banshee")
	minBytes := st.DCMisses * mem.LineBytes
	if st.InPkg.Total()+st.OffPkg.Total() < minBytes {
		t.Fatalf("total traffic %d below demand floor %d",
			st.InPkg.Total()+st.OffPkg.Total(), minBytes)
	}
}

func TestHitRateOrdering(t *testing.T) {
	// TDC and Unison (replace on every miss + perfect footprint) must
	// show much lower MPKI than Banshee (selective caching) — the
	// paper's Fig. 4 red-dot pattern.
	cfg := quickConfig("pagerank", "TDC")
	cfg.InstrPerCore = 400_000
	tdc, _ := Run(cfg, "pagerank", "TDC")
	ban, _ := Run(cfg, "pagerank", "Banshee")
	if tdc.MPKI() >= ban.MPKI() {
		t.Fatalf("TDC MPKI %.1f not below Banshee %.1f", tdc.MPKI(), ban.MPKI())
	}
}

func TestSchemeNamesRun(t *testing.T) {
	for _, n := range SchemeNames() {
		if _, err := ParseScheme(n); err != nil {
			t.Errorf("SchemeNames entry %q unparseable", n)
		}
	}
}

func TestLineMetaRoundTrip(t *testing.T) {
	if metaSize(lineMeta(mem.Page2M)) != mem.Page2M {
		t.Fatal("2M meta bit lost")
	}
	if metaSize(lineMeta(mem.Page4K)) != mem.Page4K {
		t.Fatal("4K meta bit lost")
	}
}
