package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) returned %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestRNGBoolRate(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.1) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("Bool(0.1) rate %v", rate)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(42)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("fork replayed parent stream")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(20)
	if len(p) != 20 {
		t.Fatalf("Perm length %d", len(p))
	}
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGPermPropertyBased(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUint64nDistribution(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(10)]++
	}
	for i, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}
