package util

import "math"

// Zipf samples from a Zipfian (power-law) distribution over [0, n).
// Element rank k is drawn with probability proportional to 1/(k+1)^s.
// Graph-analytics and many irregular SPEC workloads exhibit Zipfian page
// reuse, which is exactly the skew that frequency-based replacement
// exploits, so the quality of this sampler matters for fidelity.
//
// The implementation inverts the CDF with a precomputed table plus binary
// search. For the table sizes used by the trace generators (≤ a few million
// pages) construction is linear and sampling is O(log n).
type Zipf struct {
	rng *RNG
	cdf []float64
	n   int
}

// NewZipf builds a sampler over [0, n) with exponent s > 0.
// It panics if n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("util: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("util: NewZipf called with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1.0 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1.0 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1.0 // guard against floating-point shortfall
	return &Zipf{rng: rng, cdf: cdf, n: n}
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// Next draws the next rank in [0, n). Rank 0 is the hottest element.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank k (diagnostic; used by tests).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
