package util

// Zipf samples from a Zipfian (power-law) distribution over [0, n).
// Element rank k is drawn with probability proportional to 1/(k+1)^s.
// Graph-analytics and many irregular SPEC workloads exhibit Zipfian page
// reuse, which is exactly the skew that frequency-based replacement
// exploits, so the quality of this sampler matters for fidelity.
//
// A Zipf is a thin pairing of a deterministic RNG stream with the
// shared, immutable alias table for (n, s) (see ZipfTable): drawing is
// O(1) per sample, and the expensive table construction is cached
// process-wide so repeated runs (sweeps, tests, benchmarks) pay it
// once. The previous CDF-inversion sampler is preserved as ZipfCDF for
// fidelity cross-checks.
type Zipf struct {
	rng   *RNG
	table *ZipfTable
}

// NewZipf builds a sampler over [0, n) with exponent s > 0.
// It panics if n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	return &Zipf{rng: rng, table: TableFor(n, s)}
}

// N returns the support size.
func (z *Zipf) N() int { return z.table.N() }

// Next draws the next rank in [0, n). Rank 0 is the hottest element.
func (z *Zipf) Next() int { return z.table.Sample(z.rng) }

// Prob returns the probability mass of rank k (diagnostic; used by tests).
func (z *Zipf) Prob(k int) float64 { return z.table.Prob(k) }

// ZipfCDF is the original O(log n) CDF-inversion sampler, retained as
// the reference implementation: it draws from the identical PMF as the
// alias-method Zipf (over a different mapping of the RNG stream), so
// distribution-level tests can cross-check the two.
type ZipfCDF struct {
	rng *RNG
	cdf []float64
	n   int
}

// NewZipfCDF builds a CDF-inversion sampler over [0, n) with exponent
// s > 0. It panics if n <= 0 or s < 0.
func NewZipfCDF(rng *RNG, n int, s float64) *ZipfCDF {
	t := TableFor(n, s) // shares the cached exact PMF
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += t.Prob(k)
		cdf[k] = sum
	}
	cdf[n-1] = 1.0 // guard against floating-point shortfall
	return &ZipfCDF{rng: rng, cdf: cdf, n: n}
}

// N returns the support size.
func (z *ZipfCDF) N() int { return z.n }

// Next draws the next rank in [0, n) by binary-searching the CDF.
func (z *ZipfCDF) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank k.
func (z *ZipfCDF) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
