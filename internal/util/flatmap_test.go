package util

import (
	"math/rand"
	"sort"
	"testing"
)

// TestFlat64Oracle drives a Flat64 and a builtin map through the same
// randomized operation stream — inserts, overwrites, in-place counter
// updates, deletes (present and absent), clears — and checks full
// agreement after every batch. Key distributions are chosen to force
// probe-chain collisions (dense small integers, shifted page numbers,
// random 64-bit), since backward-shift deletion bugs only show up when
// chains overlap.
func TestFlat64Oracle(t *testing.T) {
	keyGens := map[string]func(r *rand.Rand) uint64{
		"dense":  func(r *rand.Rand) uint64 { return uint64(r.Intn(200)) },
		"pages":  func(r *rand.Rand) uint64 { return uint64(r.Intn(1000)) << 12 },
		"sparse": func(r *rand.Rand) uint64 { return r.Uint64() },
	}
	for name, gen := range keyGens {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(len(name))))
			m := NewFlat64[uint64](0)
			oracle := map[uint64]uint64{}
			for step := 0; step < 20_000; step++ {
				k := gen(r)
				switch op := r.Intn(10); {
				case op < 4: // insert/overwrite
					v := r.Uint64()
					m.Put(k, v)
					oracle[k] = v
				case op < 6: // read-modify-write through Ptr
					*m.Ptr(k)++
					oracle[k]++
				case op < 9: // delete
					got := m.Delete(k)
					_, want := oracle[k]
					if got != want {
						t.Fatalf("step %d: Delete(%#x) = %v, oracle %v", step, k, got, want)
					}
					delete(oracle, k)
				default: // occasional full clear (1 in ~3000)
					if r.Intn(300) == 0 {
						m.Clear()
						clear(oracle)
					}
				}
				if step%500 == 0 {
					checkAgainstOracle(t, m, oracle)
				}
			}
			checkAgainstOracle(t, m, oracle)
		})
	}
}

func checkAgainstOracle(t *testing.T, m *Flat64[uint64], oracle map[uint64]uint64) {
	t.Helper()
	if m.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", m.Len(), len(oracle))
	}
	for k, want := range oracle {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("Get(%#x) = %d,%v, oracle %d", k, got, ok, want)
		}
	}
	// Range must visit exactly the oracle's entries, each once.
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Range visited %#x twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(oracle) {
		t.Fatalf("Range visited %d entries, oracle %d", len(seen), len(oracle))
	}
	for k, v := range seen {
		if oracle[k] != v {
			t.Fatalf("Range saw %#x=%d, oracle %d", k, v, oracle[k])
		}
	}
}

// TestFlat64GetAbsent covers the empty and never-allocated cases.
func TestFlat64GetAbsent(t *testing.T) {
	var m Flat64[int]
	if _, ok := m.Get(42); ok {
		t.Error("Get on zero-value map reported a hit")
	}
	if m.Delete(42) {
		t.Error("Delete on zero-value map reported a removal")
	}
	m.Put(1, 10)
	if _, ok := m.Get(2); ok {
		t.Error("Get(2) hit after only Put(1)")
	}
}

// TestFlat64RangeEarlyStop checks Range's stop contract.
func TestFlat64RangeEarlyStop(t *testing.T) {
	m := NewFlat64[int](16)
	for i := uint64(0); i < 10; i++ {
		m.Put(i, int(i))
	}
	calls := 0
	m.Range(func(uint64, int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("Range after stop: %d calls, want 1", calls)
	}
}

// TestFlat64Determinism: two maps fed the same operation sequence must
// iterate identically — the property the simulator's deterministic
// replay relies on when Range feeds op generation.
func TestFlat64Determinism(t *testing.T) {
	build := func() []uint64 {
		m := NewFlat64[int](0)
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 5000; i++ {
			k := uint64(r.Intn(2000))
			if r.Intn(3) == 0 {
				m.Delete(k)
			} else {
				m.Put(k, i)
			}
		}
		var keys []uint64
		m.Range(func(k uint64, _ int) bool { keys = append(keys, k); return true })
		return keys
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
	// And sorted contents must match a plain set-build.
	sorted := append([]uint64(nil), a...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("duplicate key %#x", sorted[i])
		}
	}
}

// TestFlat64GrowthPointers documents the Ptr invalidation contract:
// a value written through a stale pointer after growth must not be
// visible — i.e. the test asserts values survive growth by re-reading.
func TestFlat64GrowthPointers(t *testing.T) {
	m := NewFlat64[int](0)
	for i := uint64(0); i < 1000; i++ {
		m.Put(i, int(i)*3)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := m.Get(i); !ok || v != int(i)*3 {
			t.Fatalf("after growth: Get(%d) = %d,%v", i, v, ok)
		}
	}
}
