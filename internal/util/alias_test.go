package util

import (
	"math"
	"sync"
	"testing"
)

// chiSquare bins `counts` against the expected probabilities `pmf`
// (merging the tail so every bin expects >= minExpected draws) and
// returns the statistic and the degrees of freedom.
func chiSquare(counts []int, pmf []float64, draws int, minExpected float64) (chi2 float64, df int) {
	var obs, exp float64
	flush := func() {
		if exp > 0 {
			chi2 += (obs - exp) * (obs - exp) / exp
			df++
		}
		obs, exp = 0, 0
	}
	for k := range counts {
		obs += float64(counts[k])
		exp += pmf[k] * float64(draws)
		if exp >= minExpected {
			flush()
		}
	}
	flush()
	return chi2, df - 1
}

// chiSquareCritical approximates the upper critical value of the
// chi-square distribution at a very small alpha using the normal
// approximation chi2 ~ N(df, 2df): df + 4.5*sqrt(2df) corresponds to
// p < ~4e-6, far beyond any plausible sampler bug while still tight
// enough to catch a broken alias table. The seeds are fixed, so the
// test is deterministic regardless.
func chiSquareCritical(df int) float64 {
	return float64(df) + 4.5*math.Sqrt(2*float64(df))
}

// TestZipfAliasChiSquare is the goodness-of-fit proof that the alias
// sampler draws from the exact Zipf PMF.
func TestZipfAliasChiSquare(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{100, 1.0}, {1000, 0.8}, {5000, 0.2}, {64, 0}} {
		z := NewZipf(NewRNG(0xC41), tc.n, tc.s)
		const draws = 1_000_000
		counts := make([]int, tc.n)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		pmf := make([]float64, tc.n)
		for k := range pmf {
			pmf[k] = z.Prob(k)
		}
		chi2, df := chiSquare(counts, pmf, draws, 20)
		if crit := chiSquareCritical(df); chi2 > crit {
			t.Errorf("n=%d s=%v: chi2=%.1f df=%d exceeds critical %.1f", tc.n, tc.s, chi2, df, crit)
		}
	}
}

// TestZipfAliasMatchesCDF cross-checks the alias sampler against the
// retained CDF-inversion reference: identical exact PMFs, and the CDF
// sampler's empirical distribution passes the same goodness-of-fit
// gate, so the two are statistically interchangeable.
func TestZipfAliasMatchesCDF(t *testing.T) {
	const n, s = 500, 0.9
	alias := NewZipf(NewRNG(11), n, s)
	cdf := NewZipfCDF(NewRNG(11), n, s)
	for k := 0; k < n; k++ {
		if math.Abs(alias.Prob(k)-cdf.Prob(k)) > 1e-12 {
			t.Fatalf("PMF mismatch at rank %d: alias=%v cdf=%v", k, alias.Prob(k), cdf.Prob(k))
		}
	}
	const draws = 500_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[cdf.Next()]++
	}
	pmf := make([]float64, n)
	for k := range pmf {
		pmf[k] = alias.Prob(k)
	}
	chi2, df := chiSquare(counts, pmf, draws, 20)
	if crit := chiSquareCritical(df); chi2 > crit {
		t.Errorf("CDF reference: chi2=%.1f df=%d exceeds critical %.1f", chi2, df, crit)
	}
}

// TestZipfTableShared verifies the substrate cache: equal (n, s) pairs
// resolve to the same table instance, distinct pairs do not.
func TestZipfTableShared(t *testing.T) {
	a := TableFor(1234, 0.75)
	b := TableFor(1234, 0.75)
	if a != b {
		t.Fatal("identical (n, s) built two tables")
	}
	if TableFor(1234, 0.8) == a || TableFor(1235, 0.75) == a {
		t.Fatal("distinct (n, s) shared a table")
	}
}

// TestZipfTableConcurrent hammers the cached read path from many
// goroutines (the runMatrix pattern); run with -race this doubles as
// the lock-freedom safety check.
func TestZipfTableConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	tables := make([]*ZipfTable, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tbl := TableFor(4096, 1.1)
			rng := NewRNG(uint64(g))
			for i := 0; i < 10_000; i++ {
				if k := tbl.Sample(rng); k < 0 || k >= 4096 {
					t.Errorf("sample %d out of range", k)
					return
				}
			}
			tables[g] = tbl
		}(g)
	}
	wg.Wait()
	for g := 1; g < 16; g++ {
		if tables[g] != tables[0] {
			t.Fatal("concurrent TableFor returned distinct tables")
		}
	}
}

// TestZipfAliasZeroAllocNext pins the sampling hot path at zero
// allocations per draw.
func TestZipfAliasZeroAllocNext(t *testing.T) {
	z := NewZipf(NewRNG(3), 100_000, 1.0)
	if avg := testing.AllocsPerRun(1000, func() { z.Next() }); avg != 0 {
		t.Fatalf("Zipf.Next allocates %v per op, want 0", avg)
	}
}
