package util

import (
	"math"
	"testing"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(NewRNG(1), 100, 0.8)
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("rank %d out of [0,100)", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be drawn more often than rank 50 for s > 0.
	z := NewZipf(NewRNG(2), 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("no skew: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// With s=1 the ratio of P(0)/P(9) should be about 10.
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 5 || ratio > 20 {
		t.Fatalf("rank0/rank9 ratio %v, want ~10", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(NewRNG(3), 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/50 {
			t.Fatalf("s=0 bucket %d count %d not uniform", i, c)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewRNG(4), 1000, 0.7)
	sum := 0.0
	for k := 0; k < 1000; k++ {
		p := z.Prob(k)
		if p < 0 {
			t.Fatalf("negative probability at rank %d", k)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(NewRNG(5), 10, 1)
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(NewRNG(1), tc.n, tc.s)
		}()
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(NewRNG(9), 500, 0.9)
	b := NewZipf(NewRNG(9), 500, 0.9)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("zipf streams diverged at %d", i)
		}
	}
}

func TestZipfMonotoneProb(t *testing.T) {
	z := NewZipf(NewRNG(6), 50, 0.5)
	for k := 1; k < 50; k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-12 {
			t.Fatalf("probability not monotone at rank %d", k)
		}
	}
}
