package util

import "math/bits"

// Flat64 is an open-addressed hash table from uint64 keys to V values,
// the data-oriented replacement for `map[uint64]V` on the simulator's
// hot paths (page table, TLB index, scheme residency tables). Keys and
// values live in flat parallel arrays probed linearly, so a lookup
// touches one or two contiguous cache lines instead of chasing the
// runtime map's bucket pointers, and the structure adds zero GC scan
// work when V contains no pointers.
//
// Properties the simulator relies on:
//
//   - Deletion uses backward-shift (no tombstones), so probe chains stay
//     short regardless of churn and lookup cost never degrades.
//   - Range iterates in slot (probe) order: deterministic for a given
//     history of operations, but NOT insertion order and not stable
//     across growth — callers needing a canonical order must sort.
//   - Pointers returned by Ptr are invalidated by the next Put, Ptr, or
//     Delete (growth or backward-shift may move the slot).
//
// The zero value is ready to use. Not safe for concurrent use.
type Flat64[V any] struct {
	keys []uint64
	vals []V
	used []bool
	n    int
	mask uint64
	// shift is 64 - log2(len(keys)), for the Fibonacci multiplicative
	// hash. Power-of-two capacities make home() a multiply and a shift.
	shift uint
}

// flatMinCap is the smallest allocated capacity (power of two).
const flatMinCap = 8

// NewFlat64 returns a map pre-sized to hold hint entries without
// growing. A zero or negative hint defers allocation to the first Put.
func NewFlat64[V any](hint int) *Flat64[V] {
	m := &Flat64[V]{}
	if hint > 0 {
		m.init(capFor(hint))
	}
	return m
}

// capFor returns the power-of-two capacity that keeps n entries under
// the 3/4 load-factor bound.
func capFor(n int) int {
	c := flatMinCap
	for c*3/4 < n {
		c <<= 1
	}
	return c
}

func (m *Flat64[V]) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]V, capacity)
	m.used = make([]bool, capacity)
	m.mask = uint64(capacity - 1)
	m.shift = uint(64 - bits.TrailingZeros64(uint64(capacity)))
}

// home returns k's preferred slot.
func (m *Flat64[V]) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> m.shift
}

// Len returns the number of stored entries.
func (m *Flat64[V]) Len() int { return m.n }

// Get returns the value stored under k.
func (m *Flat64[V]) Get(k uint64) (V, bool) {
	if m.n == 0 {
		var zero V
		return zero, false
	}
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if !m.used[i] {
			var zero V
			return zero, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// GetPtr returns a pointer to k's value for in-place read-modify-write,
// or nil if k is absent. Unlike Ptr it never inserts. The pointer is
// valid only until the next Put, Ptr, or Delete.
func (m *Flat64[V]) GetPtr(k uint64) *V {
	if m.n == 0 {
		return nil
	}
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if !m.used[i] {
			return nil
		}
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
}

// Put stores v under k, replacing any existing value.
func (m *Flat64[V]) Put(k uint64, v V) {
	*m.slot(k) = v
}

// Ptr returns a pointer to k's value, inserting the zero value first if
// k is absent. The pointer is valid only until the next Put, Ptr, or
// Delete — use it for read-modify-write in place (counters), not for
// storage.
func (m *Flat64[V]) Ptr(k uint64) *V {
	return m.slot(k)
}

// slot returns the value slot for k, inserting (and growing) as
// needed. The existing-key probe runs first so read-modify-write of a
// present key (the counter pattern) never triggers growth — only an
// actual insert at the load-factor bound does.
func (m *Flat64[V]) slot(k uint64) *V {
	if m.keys == nil {
		m.init(flatMinCap)
	}
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if !m.used[i] {
			if (m.n+1)*4 > len(m.keys)*3 {
				m.grow()
				return m.slot(k) // re-probe in the grown table
			}
			m.used[i] = true
			m.keys[i] = k
			var zero V
			m.vals[i] = zero
			m.n++
			return &m.vals[i]
		}
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
}

func (m *Flat64[V]) grow() {
	keys, vals, used := m.keys, m.vals, m.used
	m.init(len(keys) * 2)
	m.n = 0
	for i, u := range used {
		if u {
			m.Put(keys[i], vals[i])
		}
	}
}

// Delete removes k, reporting whether it was present. Removal
// backward-shifts the following probe chain, so no tombstones
// accumulate.
func (m *Flat64[V]) Delete(k uint64) bool {
	if m.n == 0 {
		return false
	}
	i := m.home(k)
	for {
		if !m.used[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift: pull each chain follower into the hole unless its
	// home lies cyclically after the hole (moving it would break its own
	// probe chain). The follower at j may move iff its home h is outside
	// the cyclic interval (i, j], i.e. its probe distance to j is at
	// least the hole's: (j-h) mod cap ≥ (j-i) mod cap.
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.used[j] {
			break
		}
		if (j-m.home(m.keys[j]))&m.mask < (j-i)&m.mask {
			continue
		}
		m.keys[i] = m.keys[j]
		m.vals[i] = m.vals[j]
		i = j
	}
	m.used[i] = false
	var zero V
	m.vals[i] = zero // release pointers for GC
	m.n--
	return true
}

// Range calls f for every entry in slot order until f returns false.
// Mutating the map during Range is not supported.
func (m *Flat64[V]) Range(f func(k uint64, v V) bool) {
	for i, u := range m.used {
		if u && !f(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// Clear removes every entry, keeping the allocated capacity.
func (m *Flat64[V]) Clear() {
	clear(m.used)
	var zero V
	for i := range m.vals {
		m.vals[i] = zero
	}
	m.n = 0
}
