// Package util provides deterministic pseudo-randomness and small numeric
// helpers shared by the simulator. All stochastic decisions in the simulator
// (stochastic replacement, counter sampling, victim selection, synthetic
// trace generation) draw from util.RNG so that a run is reproducible
// bit-for-bit from its seed.
package util

// RNG is a SplitMix64 pseudo-random number generator. It is small, fast,
// passes BigCrush, and — unlike math/rand's global state — gives every
// component its own deterministic stream. The zero value is a valid
// generator seeded with 0; prefer NewRNG to mix the seed first.
type RNG struct {
	state uint64
}

// NewRNG returns a generator whose stream is determined entirely by seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm the state so that small, similar seeds (0, 1, 2...) produce
	// uncorrelated streams from the first draw.
	r.Uint64()
	return r
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("util: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("util: Uint64n called with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. p outside [0,1] saturates.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent child generator. Deriving children rather
// than sharing one stream keeps component behavior stable when an unrelated
// component adds or removes draws.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
