package util

import (
	"math"
	"sync"
)

// ZipfTable is the immutable half of a Zipf sampler: the exact PMF of
// the distribution plus the Walker/Vose alias tables that make drawing
// from it O(1). A table depends only on (n, s), never on an RNG stream,
// so one table can back any number of concurrent samplers — every core
// of every parallel simulation shares the same table for a given
// (support, exponent) pair.
//
// Tables are built once and cached process-wide (see TableFor); all
// fields are read-only after construction, making the cached read path
// safe without locking.
type ZipfTable struct {
	n     int
	s     float64
	pmf   []float64 // exact probability of each rank, sums to 1
	prob  []float64 // alias acceptance thresholds, scaled to [0,1)
	alias []int32   // alias targets
}

// tableKey identifies a table in the cache.
type tableKey struct {
	n int
	s float64
}

// zipfTables caches built tables keyed by (n, s). sync.Map gives the
// lock-free read path wanted by parallel experiment workers: after the
// first run of a sweep, every subsequent simulation's NewZipf is one
// atomic load.
var zipfTables sync.Map // tableKey → *ZipfTable

// TableFor returns the shared alias table for support n and exponent s,
// building and caching it on first use. It panics if n <= 0 or s < 0.
func TableFor(n int, s float64) *ZipfTable {
	if n <= 0 {
		panic("util: Zipf table with n <= 0")
	}
	if s < 0 {
		panic("util: Zipf table with s < 0")
	}
	key := tableKey{n: n, s: s}
	if t, ok := zipfTables.Load(key); ok {
		return t.(*ZipfTable)
	}
	// Two goroutines may race to build the same table; construction is
	// deterministic, so whichever wins the store is equivalent.
	t, _ := zipfTables.LoadOrStore(key, newZipfTable(n, s))
	return t.(*ZipfTable)
}

// newZipfTable builds the PMF and alias tables for rank probabilities
// proportional to 1/(k+1)^s over [0, n).
func newZipfTable(n int, s float64) *ZipfTable {
	pmf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		pmf[k] = 1.0 / math.Pow(float64(k+1), s)
		sum += pmf[k]
	}
	inv := 1.0 / sum
	for k := range pmf {
		pmf[k] *= inv
	}

	// Vose's alias construction: split ranks into those with scaled
	// probability below 1 (small) and above (large); each table cell
	// pairs one small rank with the excess of a large one.
	t := &ZipfTable{
		n:     n,
		s:     s,
		pmf:   pmf,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for k := 0; k < n; k++ {
		scaled[k] = pmf[k] * float64(n)
		if scaled[k] < 1 {
			small = append(small, int32(k))
		} else {
			large = append(large, int32(k))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[l] = scaled[l]
		t.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Leftovers are within floating-point error of exactly 1.
	for _, g := range large {
		t.prob[g] = 1
		t.alias[g] = g
	}
	for _, l := range small {
		t.prob[l] = 1
		t.alias[l] = l
	}
	return t
}

// N returns the support size.
func (t *ZipfTable) N() int { return t.n }

// S returns the exponent.
func (t *ZipfTable) S() float64 { return t.s }

// Prob returns the exact probability mass of rank k.
func (t *ZipfTable) Prob(k int) float64 {
	if k < 0 || k >= t.n {
		return 0
	}
	return t.pmf[k]
}

// Sample draws one rank from the table using r's stream: one uniform
// double selects both the table cell (integer part of u·n) and the
// biased coin (fractional part) — O(1), no search.
func (t *ZipfTable) Sample(r *RNG) int {
	u := r.Float64() * float64(t.n)
	i := int(u)
	if i >= t.n { // guard u == ~1.0 after rounding
		i = t.n - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
