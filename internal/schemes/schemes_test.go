package schemes

import (
	"testing"

	"banshee/internal/mem"
)

func sumBytes(ops []mem.Op, target mem.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Target == target {
			n += op.Bytes
		}
	}
	return n
}

func TestNoCacheRead(t *testing.T) {
	s := NewNoCache()
	res := s.Access(mem.Request{Addr: 0x1234})
	if res.Hit {
		t.Fatal("NoCache reported a hit")
	}
	if got := sumBytes(res.Ops, mem.OffPackage); got != 64 {
		t.Fatalf("off-package bytes %d, want 64", got)
	}
	if sumBytes(res.Ops, mem.InPackage) != 0 {
		t.Fatal("NoCache touched in-package DRAM")
	}
	if !res.Ops[0].Critical {
		t.Fatal("demand read must be critical")
	}
	if res.Ops[0].Addr != mem.LineAddr(0x1234) {
		t.Fatal("op not line-aligned")
	}
}

func TestNoCacheEviction(t *testing.T) {
	s := NewNoCache()
	res := s.Access(mem.Request{Addr: 0x1234, Write: true, Eviction: true})
	op := res.Ops[0]
	if !op.Write || op.Target != mem.OffPackage || op.Critical {
		t.Fatalf("eviction op = %+v", op)
	}
}

func TestCacheOnlyAlwaysHits(t *testing.T) {
	s := NewCacheOnly()
	for i := 0; i < 100; i++ {
		res := s.Access(mem.Request{Addr: mem.Addr(i * 64)})
		if !res.Hit {
			t.Fatal("CacheOnly missed")
		}
		if sumBytes(res.Ops, mem.InPackage) != 64 || sumBytes(res.Ops, mem.OffPackage) != 0 {
			t.Fatal("CacheOnly moved wrong bytes")
		}
	}
}

func TestCacheOnlyEviction(t *testing.T) {
	s := NewCacheOnly()
	res := s.Access(mem.Request{Addr: 0x40, Write: true, Eviction: true})
	if !res.Hit || res.Ops[0].Target != mem.InPackage || !res.Ops[0].Write {
		t.Fatalf("eviction = %+v", res.Ops[0])
	}
}
