// Package schemes provides the two bounding configurations of the
// evaluation (§5.1.1): NoCache (off-package DRAM only — the speedup
// baseline every figure normalizes to) and CacheOnly (in-package DRAM of
// infinite capacity — the upper bound, modulo total-bandwidth effects the
// paper itself points out in §5.2).
package schemes

import (
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
)

// NoCache sends every LLC miss to off-package DRAM. The one-op scratch
// array keeps Access allocation-free (see the ownership note on
// mc.Result).
type NoCache struct {
	op [1]mem.Op
}

// NewNoCache returns the NoCache scheme.
func NewNoCache() *NoCache { return &NoCache{} }

// Name implements mc.Scheme.
func (*NoCache) Name() string { return "NoCache" }

// Access implements mc.Scheme.
func (n *NoCache) Access(req mem.Request) mc.Result {
	a := mem.LineAddr(req.Addr)
	if req.Eviction {
		n.op[0] = mem.Op{
			Target: mem.OffPackage, Addr: a, Bytes: mem.LineBytes,
			Write: true, Class: mem.ClassReplacement,
		}
	} else {
		n.op[0] = mem.Op{
			Target: mem.OffPackage, Addr: a, Bytes: mem.LineBytes,
			Class: mem.ClassMissData, Critical: true,
		}
	}
	return mc.Result{Ops: n.op[:]}
}

// FillStats implements mc.Scheme.
func (*NoCache) FillStats(*stats.Sim) {}

// CacheOnly serves every access from in-package DRAM: the system has no
// external DRAM at all (so its *total* bandwidth is lower than a cached
// system's, which is why some workloads beat it — §5.2).
type CacheOnly struct {
	op [1]mem.Op
}

// NewCacheOnly returns the CacheOnly scheme.
func NewCacheOnly() *CacheOnly { return &CacheOnly{} }

// Name implements mc.Scheme.
func (*CacheOnly) Name() string { return "CacheOnly" }

// Access implements mc.Scheme.
func (c *CacheOnly) Access(req mem.Request) mc.Result {
	a := mem.LineAddr(req.Addr)
	if req.Eviction {
		c.op[0] = mem.Op{
			Target: mem.InPackage, Addr: a, Bytes: mem.LineBytes,
			Write: true, Class: mem.ClassHitData,
		}
	} else {
		c.op[0] = mem.Op{
			Target: mem.InPackage, Addr: a, Bytes: mem.LineBytes,
			Class: mem.ClassHitData, Critical: true,
		}
	}
	return mc.Result{Hit: true, Ops: c.op[:]}
}

// FillStats implements mc.Scheme.
func (*CacheOnly) FillStats(*stats.Sim) {}
