package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.family, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.family, m.kind); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.fn())
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", m.name, m.gauge.Value())
		case m.hist != nil:
			err = writePromHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram: cumulative buckets with a
// "le" label merged into any labels baked into the series name.
func writePromHistogram(w io.Writer, m *metric) error {
	base, labels := m.family, ""
	if i := strings.IndexByte(m.name, '{'); i >= 0 {
		labels = strings.TrimSuffix(m.name[i+1:], "}") + ","
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := m.hist.counts[i].Load()
		cum += n
		if n == 0 && i < histBuckets-1 {
			continue // sparse output; cumulative totals stay exact
		}
		le := fmt.Sprintf("%d", uint64(1)<<uint(i))
		if i == histBuckets-1 {
			le = "+Inf"
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, labelSuffix(m.name), m.hist.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labelSuffix(m.name), m.hist.Count())
	return err
}

// labelSuffix returns the "{...}" label block of a series name, or "".
func labelSuffix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// WriteJSON renders every series as one flat JSON object keyed by
// series name — the machine-readable twin of the Prometheus text
// format, also served at /debug/vars. Histograms render as
// {"count","sum","buckets":{"le":cumulative}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]interface{}{}
	for _, m := range r.sorted() {
		switch {
		case m.fn != nil:
			out[m.name] = m.fn()
		case m.counter != nil:
			out[m.name] = m.counter.Value()
		case m.gauge != nil:
			out[m.name] = m.gauge.Value()
		case m.hist != nil:
			buckets := map[string]uint64{}
			var cum uint64
			for i := 0; i < histBuckets; i++ {
				n := m.hist.counts[i].Load()
				cum += n
				if n == 0 {
					continue
				}
				le := fmt.Sprintf("%d", uint64(1)<<uint(i))
				if i == histBuckets-1 {
					le = "+Inf"
				}
				buckets[le] = cum
			}
			out[m.name] = map[string]interface{}{
				"count": m.hist.Count(), "sum": m.hist.Sum(), "buckets": buckets,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
