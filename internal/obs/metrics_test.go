package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestUpdatePathZeroAlloc pins the disabled-path cost contract's
// enabled-side twin: metric updates in the engine's hot paths must not
// allocate, mirroring the scheme-Access AllocsPerRun=0 gates.
func TestUpdatePathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_us", "")
	var i uint64
	if avg := testing.AllocsPerRun(2000, func() {
		c.Inc()
		c.Add(3)
		g.Set(float64(i))
		g.Add(1)
		h.Observe(i)
		i++
	}); avg != 0 {
		t.Fatalf("metric update path allocates %v per op, want 0", avg)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "")
	g := r.Gauge("busy", "")
	h := r.Histogram("dur_us", "")
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestHistogramBuckets pins the power-of-two bucket boundaries: an
// exact power of two lands in its own bound, not the next one.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 8, 1 << 20} {
		h.Observe(v)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 2, 20: 1} // le=1:{0,1} le=2:{2} le=4:{3,4} le=8:{5,8} le=2^20:{2^20}
	for i, n := range want {
		if got := h.counts[i].Load(); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
	if got, want := h.Sum(), uint64(0+1+2+3+4+5+8+1<<20); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`jobs_total{state="done"}`, "jobs by final state").Add(7)
	r.Counter(`jobs_total{state="failed"}`, "jobs by final state").Add(2)
	r.Gauge("busy", "busy workers").Set(3)
	r.GaugeFunc("derived", "", func() float64 { return 1.5 })
	h := r.Histogram("dur_us", "")
	h.Observe(3)
	h.Observe(100)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"# HELP jobs_total jobs by final state",
		`jobs_total{state="done"} 7`,
		`jobs_total{state="failed"} 2`,
		"# TYPE busy gauge",
		"busy 3",
		"derived 1.5",
		"# TYPE dur_us histogram",
		`dur_us_bucket{le="4"} 1`,
		`dur_us_bucket{le="128"} 2`,
		`dur_us_bucket{le="+Inf"} 2`,
		"dur_us_sum 103",
		"dur_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several labeled series.
	if n := strings.Count(out, "# TYPE jobs_total"); n != 1 {
		t.Errorf("family header appears %d times, want 1", n)
	}
}

func TestJSONFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	r.Gauge("b", "").Set(2.5)
	r.Histogram("h_us", "").Observe(10)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if out["a_total"].(float64) != 5 || out["b"].(float64) != 2.5 {
		t.Errorf("unexpected values: %v", out)
	}
	hist := out["h_us"].(map[string]interface{})
	if hist["count"].(float64) != 1 || hist["sum"].(float64) != 10 {
		t.Errorf("unexpected histogram: %v", hist)
	}
}

func TestRegistryIdempotentAndMismatchPanics(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "")
	c2 := r.Counter("x_total", "ignored second help")
	if c1 != c2 {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(4)
	r.Histogram("h_us", "").Observe(9)
	s := r.Snapshot()
	if s["c_total"] != 4 || s["h_us_count"] != 1 || s["h_us_sum"] != 9 {
		t.Errorf("unexpected snapshot: %v", s)
	}
}
