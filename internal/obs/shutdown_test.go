package obs

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestShutdownDrainsInFlight: Shutdown with headroom waits for an
// in-flight request to finish, then stops accepting.
func TestShutdownDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained")
	}))
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// The request is still being handled; give Shutdown a moment to
	// start draining, then let the handler finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if r := <-got; r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request: body=%q err=%v, want a drained response", r.body, r.err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := net.DialTimeout("tcp", s.Addr(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestShutdownDeadlineForcesClose: a handler that never returns cannot
// hold Shutdown past its drain deadline — the server force-closes and
// Shutdown comes back without error.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	stuck := make(chan struct{})
	s, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(stuck)
		<-r.Context().Done() // hold the connection until force-close
	}))
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + s.Addr() + "/") //nolint:errcheck — aborted by the force-close
	<-stuck

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown after blown drain deadline: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung past its drain deadline")
	}
}

// TestShutdownIdempotent: repeated Shutdown/Close calls all return the
// first call's result instead of racing the lifecycle.
func TestShutdownIdempotent(t *testing.T) {
	s, err := ServeHandler("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
