package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer records spans and instant events against a wall-clock
// timeline and renders them as Chrome trace_event JSON — the format
// chrome://tracing and Perfetto open directly — so a whole sweep
// (workers × jobs × retries × gang groups) becomes a browsable
// timeline. Recording is opt-in and buffered in memory with a bounded
// event budget: past the limit events are dropped and counted, and the
// drop count is stamped into the output instead of silently truncating
// the timeline. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
	limit   int
	dropped uint64
}

// traceEvent is one Chrome trace_event record. Timestamps and
// durations are microseconds since the tracer was created.
type traceEvent struct {
	Name  string                 `json:"name"`
	Ph    string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// defaultTraceLimit bounds the in-memory event buffer (~a few hundred
// MB worst case at full args). Million-job sweeps overflow it; the
// overflow is counted and reported, never silent.
const defaultTraceLimit = 1 << 20

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), limit: defaultTraceLimit}
}

// SetLimit bounds the number of buffered events (≤ 0 = unlimited).
func (t *Tracer) SetLimit(n int) {
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Clock returns the current offset on the tracer's timeline — capture
// it before an operation and hand it to Span after.
func (t *Tracer) Clock() time.Duration { return time.Since(t.start) }

// args folds variadic key/value pairs into a map (nil when empty). A
// trailing odd key is paired with nil rather than dropped.
func args(kv []interface{}) map[string]interface{} {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]interface{}, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		k := fmt.Sprint(kv[i])
		if i+1 < len(kv) {
			m[k] = kv[i+1]
		} else {
			m[k] = nil
		}
	}
	return m
}

// add appends one event under the buffer budget.
func (t *Tracer) add(ev traceEvent) {
	t.mu.Lock()
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Span records a complete span on thread tid from start (a Clock
// capture) to now, with optional key/value args.
func (t *Tracer) Span(name string, tid int, start time.Duration, kv ...interface{}) {
	t.SpanAt(name, tid, start, t.Clock(), kv...)
}

// SpanAt records a complete span covering [start, end] on the tracer's
// timeline.
func (t *Tracer) SpanAt(name string, tid int, start, end time.Duration, kv ...interface{}) {
	if end < start {
		end = start
	}
	t.add(traceEvent{Name: name, Ph: "X", TS: us(start), Dur: us(end - start),
		PID: 1, TID: tid, Args: args(kv)})
}

// Instant records a point event on thread tid at now.
func (t *Tracer) Instant(name string, tid int, kv ...interface{}) {
	t.add(traceEvent{Name: name, Ph: "i", TS: us(t.Clock()), PID: 1, TID: tid,
		Scope: "t", Args: args(kv)})
}

// NameThread labels a thread lane in the rendered timeline ("worker 3",
// "sim"). Metadata events bypass the buffer budget.
func (t *Tracer) NameThread(tid int, name string) {
	t.mu.Lock()
	t.events = append(t.events, traceEvent{Name: "thread_name", Ph: "M", PID: 1,
		TID: tid, Args: map[string]interface{}{"name": name}})
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the buffer budget discarded.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// us converts a duration to trace_event microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteJSON renders the recorded timeline as a Chrome trace_event JSON
// object ({"traceEvents": [...]}). When events were dropped, a final
// instant event records how many, so a truncated timeline declares
// itself.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	dropped := t.dropped
	t.mu.Unlock()
	if dropped > 0 {
		events = append(events, traceEvent{
			Name: fmt.Sprintf("tracer: %d events dropped (buffer limit)", dropped),
			Ph:   "i", TS: us(t.Clock()), PID: 1, TID: 0, Scope: "g",
		})
	}
	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the timeline to path (see WriteJSON).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	return nil
}
