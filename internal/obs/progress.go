package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a rate-limited, human-readable sweep progress line: the
// replacement for per-job log spam on large sweeps. Maybe emits at
// most one line per interval (plus, via Force, a final line), each
// summarizing position, composition, throughput, and ETA:
//
//	progress: 1234/5678 jobs (21.7%)  exec 400  reuse 834  failed 0  12.3 jobs/s  eta 6m2s
//
// Safe for concurrent use.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	start time.Time
	last  time.Time
}

// NewProgress reports to w at most once per interval (0 = 2s default).
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	now := time.Now()
	return &Progress{w: w, every: interval, start: now, last: now}
}

// Maybe emits a progress line if the interval has elapsed since the
// last one.
func (p *Progress) Maybe(done, total, executed, cached, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if time.Since(p.last) < p.every {
		return
	}
	p.emitLocked(done, total, executed, cached, failed)
}

// Force emits a progress line regardless of the interval — the final
// position of a finished or cancelled sweep.
func (p *Progress) Force(done, total, executed, cached, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emitLocked(done, total, executed, cached, failed)
}

func (p *Progress) emitLocked(done, total, executed, cached, failed int) {
	p.last = time.Now()
	elapsed := p.last.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := ""
	if rate > 0 && done < total {
		d := time.Duration(float64(total-done) / rate * float64(time.Second))
		eta = fmt.Sprintf("  eta %s", d.Round(time.Second))
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	fmt.Fprintf(p.w, "progress: %d/%d jobs (%.1f%%)  exec %d  reuse %d  failed %d  %.1f jobs/s%s\n",
		done, total, pct, executed, cached, failed, rate, eta)
}
