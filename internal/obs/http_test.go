package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("banshee_jobs_total", "").Add(3)
	r.RegisterRuntime()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "banshee_jobs_total 3") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "banshee_goroutines") {
		t.Errorf("/metrics missing runtime series:\n%s", body)
	}

	for _, path := range []string{"/metrics?format=json", "/debug/vars"} {
		code, body = get(t, base+path)
		var out map[string]interface{}
		if code != http.StatusOK || json.Unmarshal([]byte(body), &out) != nil {
			t.Errorf("%s = %d, body not JSON:\n%s", path, code, body)
		} else if out["banshee_jobs_total"].(float64) != 3 {
			t.Errorf("%s counter = %v, want 3", path, out["banshee_jobs_total"])
		}
	}

	if code, _ = get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body = get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	if code, _ = get(t, base+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServeBadAddrFailsEagerly(t *testing.T) {
	if _, err := Serve("256.0.0.1:0", NewRegistry()); err == nil {
		t.Fatal("expected bind error at Serve time")
	}
}
