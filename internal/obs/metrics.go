// Package obs is the simulator's observability layer: a dependency-free
// metrics core (counters, gauges, histograms with atomic updates and a
// zero-allocation increment path), a span/event recorder that renders
// Chrome trace_event JSON timelines, HTTP exposition (Prometheus text,
// JSON, expvar-style /debug/vars, net/http/pprof), and a rate-limited
// human-readable progress line.
//
// The design contract, pinned by the repo's zero-alloc and golden-stats
// gates, is that telemetry is observationally free when disabled: every
// instrumented layer (runner.Engine, sim sessions, internal/fault)
// carries a nil registry by default and skips all of this package, so
// an uninstrumented sweep's statistics, allocations, and checkpoint
// bytes are exactly what they were before the layer existed. When
// enabled, metric updates are single atomic operations — safe for the
// engine's worker pool without extending any lock's critical section.
//
// Series names follow Prometheus conventions ("banshee_jobs_total"),
// optionally with a fixed label set baked into the name
// ("banshee_jobs_total{state=\"done\"}"); series sharing a base name
// form one family in the exposition.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The increment path is
// one atomic add: zero allocations, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64. Set
// and Add are atomic (Add is a CAS loop); neither allocates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of every Histogram: power-of-two
// upper bounds 1, 2, 4, ..., 2^62, +Inf. Fixed buckets keep Observe a
// pair of atomic adds with no per-histogram configuration to mismatch
// across a fleet of exporters.
const histBuckets = 64

// Histogram counts uint64 observations into power-of-two buckets
// (upper bounds 1, 2, 4, ..., +Inf) and tracks their sum. Observe is
// two atomic adds: zero allocations, safe for concurrent use. Callers
// pick the unit by convention and encode it in the metric name
// ("..._us" for microseconds, "..._lanes" for widths).
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v) // 0 → bucket 0 (le 1), 2^k → bucket k (le 2^k)
	if v != 0 && v&(v-1) == 0 {
		i-- // exact powers of two land in their own bound
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// metric is one registered series: exactly one of the value fields is
// set. fn-backed series are read at exposition time.
type metric struct {
	name, family, help string
	kind               string // "counter", "gauge", "histogram"
	counter            *Counter
	gauge              *Gauge
	hist               *Histogram
	fn                 func() float64
	fnMonotone         bool // fn-backed series typed counter
}

// Registry holds named metrics and renders them for exposition.
// Registration methods are idempotent: asking for an existing name
// returns the already-registered metric, so instrumented layers can
// share one registry without coordinating ownership (the batch engine
// registers its set once per run; every job's sampler then resolves
// the same counters). Mismatched re-registration (same name, different
// kind) panics — metric names are code, not input.
//
// A Registry value is a view over shared storage: With returns a view
// that bakes an extra label pair into every series name registered
// through it, so one exposition endpoint can carry the same engine
// instrument panel once per sweep ("banshee_jobs_total{state=\"done\",
// sweep=\"9f2c\"}") without the instrumented code knowing about sweeps.
type Registry struct {
	s *regState
	// labels is the rendered label set this view splices into every
	// registered name ("" for the root view).
	labels string
}

// regState is the storage every view of one registry shares.
type regState struct {
	mu      sync.Mutex
	byName  map[string]*metric
	start   time.Time
	runtime bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &regState{byName: map[string]*metric{}, start: time.Now()}}
}

// With returns a view of the registry that adds `key="value"` to every
// series name registered through it, composing with any labels already
// baked into the name or the view. Views share the registry's storage:
// exposition over any view renders every series.
func (r *Registry) With(key, value string) *Registry {
	pair := fmt.Sprintf("%s=%q", key, value)
	labels := r.labels
	if labels != "" {
		labels += ","
	}
	return &Registry{s: r.s, labels: labels + pair}
}

// spliceLabels merges the view's label set into a series name:
// `a_total` → `a_total{sweep="x"}`, `a_total{state="done"}` →
// `a_total{state="done",sweep="x"}`.
func (r *Registry) spliceLabels(name string) string {
	if r.labels == "" {
		return name
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + r.labels + "}"
	}
	return name + "{" + r.labels + "}"
}

// family is the series' base name: the part before any baked-in label
// set. Series sharing a family share one TYPE/HELP header.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register installs (or returns) the series under name, with the
// view's label set spliced in.
func (r *Registry) register(name, help, kind string) *metric {
	name = r.spliceLabels(name)
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	if m, ok := r.s.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, family: family(name), help: help, kind: kind}
	switch kind {
	case "counter":
		m.counter = &Counter{}
	case "gauge":
		m.gauge = &Gauge{}
	case "histogram":
		m.hist = &Histogram{}
	}
	r.s.byName[name] = m
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. help is kept from the first registration.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter").counter
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge").gauge
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, "histogram").hist
}

// GaugeFunc registers a series whose value is read from fn at
// exposition time — for values something else already tracks (queue
// depths, runtime stats). Re-registering an existing name replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.register(name, help, "gauge")
	r.s.mu.Lock()
	m.gauge, m.fn = nil, fn
	r.s.mu.Unlock()
}

// CounterFunc is GaugeFunc for monotone sources: the series is typed
// counter in the exposition.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	m := r.register(name, help, "counter")
	r.s.mu.Lock()
	m.counter, m.fn, m.fnMonotone = nil, fn, true
	r.s.mu.Unlock()
}

// RegisterRuntime adds process-level series (goroutines, heap bytes,
// uptime) useful on any live exposition endpoint. Idempotent.
func (r *Registry) RegisterRuntime() {
	r.s.mu.Lock()
	if r.s.runtime {
		r.s.mu.Unlock()
		return
	}
	r.s.runtime = true
	r.s.mu.Unlock()
	r.GaugeFunc("banshee_goroutines", "live goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("banshee_heap_alloc_bytes", "live heap bytes (runtime.MemStats.HeapAlloc)", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.GaugeFunc("banshee_uptime_seconds", "seconds since the registry was created", func() float64 {
		return time.Since(r.s.start).Seconds()
	})
}

// sorted returns the registered series sorted by name, families
// contiguous.
func (r *Registry) sorted() []*metric {
	r.s.mu.Lock()
	out := make([]*metric, 0, len(r.s.byName))
	for _, m := range r.s.byName {
		out = append(out, m)
	}
	r.s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot returns every series' current value keyed by name.
// Histograms contribute "<name>_count" and "<name>_sum". Intended for
// tests and consistency checks, not hot paths.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, m := range r.sorted() {
		switch {
		case m.fn != nil:
			out[m.name] = m.fn()
		case m.counter != nil:
			out[m.name] = float64(m.counter.Value())
		case m.gauge != nil:
			out[m.name] = m.gauge.Value()
		case m.hist != nil:
			out[m.name+"_count"] = float64(m.hist.Count())
			out[m.name+"_sum"] = float64(m.hist.Sum())
		}
	}
	return out
}
