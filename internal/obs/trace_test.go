package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// chromeTrace mirrors the subset of the trace_event container format
// the tests validate — what chrome://tracing and Perfetto parse.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string                 `json:"name"`
		Ph    string                 `json:"ph"`
		TS    float64                `json:"ts"`
		Dur   float64                `json:"dur"`
		PID   int                    `json:"pid"`
		TID   int                    `json:"tid"`
		Args  map[string]interface{} `json:"args"`
		Scope string                 `json:"s"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func decodeTrace(t *testing.T, b []byte) chromeTrace {
	t.Helper()
	var out chromeTrace
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b)
	}
	return out
}

func TestTracerTimeline(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(2, "worker 2")
	start := tr.Clock()
	time.Sleep(time.Millisecond)
	tr.Span("job a|b|c", 2, start, "id", "deadbeef", "attempt", 1)
	tr.Instant("retry", 2, "attempt", 2)

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b.Bytes())
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(out.TraceEvents))
	}
	meta, span, inst := out.TraceEvents[0], out.TraceEvents[1], out.TraceEvents[2]
	if meta.Ph != "M" || meta.Args["name"] != "worker 2" {
		t.Errorf("bad thread metadata: %+v", meta)
	}
	if span.Ph != "X" || span.TID != 2 || span.Dur < 900 || span.Args["id"] != "deadbeef" {
		t.Errorf("bad span: %+v", span)
	}
	if inst.Ph != "i" || inst.Scope != "t" || inst.Args["attempt"].(float64) != 2 {
		t.Errorf("bad instant: %+v", inst)
	}
}

// TestTracerLimit pins the no-silent-caps contract: overflowing the
// buffer budget drops events but stamps the drop count into the
// output.
func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(10)
	for i := 0; i < 25; i++ {
		tr.Instant("e", 0)
	}
	if tr.Len() != 10 || tr.Dropped() != 15 {
		t.Fatalf("len %d dropped %d, want 10/15", tr.Len(), tr.Dropped())
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b.Bytes())
	last := out.TraceEvents[len(out.TraceEvents)-1]
	if last.Name != "tracer: 15 events dropped (buffer limit)" {
		t.Errorf("missing drop marker, last event: %+v", last)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Span("s", w, tr.Clock())
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 8*500 {
		t.Fatalf("len = %d, want %d", tr.Len(), 8*500)
	}
}

func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	tr.Span("run", 0, 0)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b)
	if len(out.TraceEvents) != 1 || out.DisplayTimeUnit != "ms" {
		t.Errorf("unexpected file contents: %+v", out)
	}
}

func TestProgressRateLimit(t *testing.T) {
	var b bytes.Buffer
	p := NewProgress(&b, time.Hour)
	p.Maybe(1, 10, 1, 0, 0) // within the interval: suppressed
	if b.Len() != 0 {
		t.Errorf("line emitted inside the interval: %q", b.String())
	}
	p.Force(10, 10, 6, 4, 0)
	line := b.String()
	for _, want := range []string{"10/10 jobs", "100.0%", "exec 6", "reuse 4", "failed 0"} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
}
