package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live exposition endpoint for one registry:
//
//	/metrics      Prometheus text (or JSON with ?format=json)
//	/debug/vars   the same series as one JSON object
//	/debug/pprof  the standard net/http/pprof handlers
//
// It binds eagerly (a bad address fails at startup, not at first
// scrape) and serves in a background goroutine until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; :0 picks a free port) and serves r.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "banshee metrics\n\n/metrics\n/metrics?format=json\n/debug/vars\n/debug/pprof/\n")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:6060") — the resolved
// port when Serve was given ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
