package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a managed HTTP listener lifecycle: eager bind (a bad
// address fails at startup, not at first request), background serving,
// and a graceful shutdown that drains in-flight requests under a
// deadline and surfaces the serve/close error instead of abandoning
// the listener goroutine. obs uses it for metric exposition (Serve);
// other long-running services (sweepd) reuse the same lifecycle via
// ServeHandler.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	served chan error // Serve's return value, delivered exactly once

	down    sync.Once
	downErr error
}

// Serve binds addr (host:port; :0 picks a free port) and serves r's
// metric exposition endpoints:
//
//	/metrics      Prometheus text (or JSON with ?format=json)
//	/debug/vars   the same series as one JSON object
//	/debug/pprof  the standard net/http/pprof handlers
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, MetricsMux(r))
}

// MetricsMux returns the metric exposition handler Serve mounts — for
// embedding the same endpoints into a larger mux (a service that also
// exposes its own API).
func MetricsMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	HandleMetrics(mux, r)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "banshee metrics\n\n/metrics\n/metrics?format=json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// HandleMetrics mounts the exposition endpoints (/metrics, /debug/vars,
// /debug/pprof) on an existing mux, leaving the root path to the
// caller.
func HandleMetrics(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeHandler binds addr and serves h in a background goroutine until
// Shutdown or Close.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listener: %w", err)
	}
	s := &Server{ln: ln,
		srv:    &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second},
		served: make(chan error, 1)}
	go func() { s.served <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address ("127.0.0.1:6060") — the resolved
// port when the server was given ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, drains in-flight requests
// until ctx expires (then forcibly closes what remains), and returns
// the first error the serve or close path hit — an abnormal
// Serve return is no longer lost to an abandoned goroutine. Repeated
// calls return the first call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.down.Do(func() {
		err := s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// Drain deadline blown: in-flight requests are out of time.
			err = nil
			if cerr := s.srv.Close(); cerr != nil {
				err = cerr
			}
		}
		if serr := <-s.served; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		s.downErr = err
	})
	return s.downErr
}

// Close is Shutdown with a default 5-second drain deadline — the
// lifecycle every metrics endpoint embedded in a batch run uses.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}
