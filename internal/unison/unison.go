// Package unison implements the Unison Cache baseline [Jevdjic et al.,
// MICRO'14] as idealized in the paper's evaluation (§5.1.1):
//
//   - page (4 KB) granularity, set-associative (4-way), LRU replacement,
//     tags embedded in the in-package DRAM;
//   - perfect way prediction: a demand access reads the set's tags (32 B)
//     plus the data line from the predicted way, so a hit costs ≥128 B
//     (tag read + 64 B data + tag/LRU update) and a miss ≥96 B
//     (speculative data + tag read) — Table 1;
//   - replacement on every miss, moderated by a perfect footprint
//     predictor managed at 4-line granularity: a fill moves only the
//     page's predicted footprint, and the predictor is charged nothing.
package unison

import (
	"fmt"
	"math/bits"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
)

// Config sizes the Unison cache.
type Config struct {
	CapacityBytes int
	Ways          int
}

const tagBytes = 32

type way struct {
	tag     uint64
	valid   bool
	stamp   uint64
	touched mc.Touched
	dirty   mc.Touched
}

// Unison is the scheme instance. Not safe for concurrent use.
type Unison struct {
	sets      [][]way
	mask      uint64
	tagShift  uint // precomputed popcount(mask): the tag shift
	tick      uint64
	footprint mc.FootprintTracker

	// ops is the scratch buffer reused by every Access (see the
	// ownership note on mc.Result).
	ops []mem.Op

	hits, misses uint64
	fills        uint64
	tagProbes    uint64
}

// New builds a Unison cache; it panics on a non-power-of-two set count
// (setup bug).
func New(cfg Config) *Unison {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("unison: ways must be positive, got %d", cfg.Ways))
	}
	nsets := cfg.CapacityBytes / mem.PageBytes / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("unison: capacity %d with %d ways gives non-power-of-two set count %d", cfg.CapacityBytes, cfg.Ways, nsets))
	}
	u := &Unison{
		sets:     make([][]way, nsets),
		mask:     uint64(nsets - 1),
		tagShift: uint(bits.OnesCount64(uint64(nsets - 1))),
	}
	for i := range u.sets {
		u.sets[i] = make([]way, cfg.Ways)
	}
	return u
}

// Name implements mc.Scheme.
func (u *Unison) Name() string { return "Unison" }

func (u *Unison) lookup(page uint64) (set []way, idx int, tag uint64) {
	set = u.sets[page&u.mask]
	tag = page >> u.tagShift
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return set, i, tag
		}
	}
	return set, -1, tag
}

// Access implements mc.Scheme.
func (u *Unison) Access(req mem.Request) mc.Result {
	u.ops = u.ops[:0]
	u.tick++
	addr := mem.LineAddr(req.Addr)
	page := mem.PageNum(addr)
	set, idx, tag := u.lookup(page)
	if req.Eviction {
		return u.eviction(addr, set, idx)
	}

	if idx >= 0 {
		// Page hit with perfect way prediction: tag read + data read on
		// the critical path, LRU/tag update in the background.
		u.hits++
		set[idx].stamp = u.tick
		set[idx].touched.Set(mem.LineInPage(addr))
		u.ops = append(u.ops,
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassHitData, Stage: 0, Critical: true},
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0, Critical: true, Fused: true},
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Write: true, Class: mem.ClassTag, Stage: 1},
		)
		return mc.Result{Hit: true, Ops: u.ops}
	}

	// Miss: the predicted-way data read was speculative and wasted;
	// fetch the demand line off-package, then replace the LRU page.
	u.misses++
	u.ops = append(u.ops,
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 0, Critical: true},
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0, Critical: true, Fused: true},
		mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 1, Critical: true},
	)
	u.replace(set, tag, addr)
	return mc.Result{Hit: false, Ops: u.ops}
}

// replace evicts the LRU way and fills the new page's predicted
// footprint, appending the background ops to u.ops.
func (u *Unison) replace(set []way, tag uint64, demand mem.Addr) {
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[victim].valid && set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		u.footprint.Record(v.touched.Count())
		if n := v.dirty.Count(); n > 0 {
			// Dirty lines stream out: in-package read + off-package write.
			victimAddr := u.wayAddr(demand, v.tag)
			u.ops = append(u.ops,
				mem.Op{Target: mem.InPackage, Addr: victimAddr, Bytes: n * mem.LineBytes, Class: mem.ClassReplacement, Stage: 1},
				mem.Op{Target: mem.OffPackage, Addr: victimAddr, Bytes: n * mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
			)
		}
	}
	// Fill the predicted footprint (the demand line itself is already
	// accounted as MissData; the predictor covers the rest).
	fp := u.footprint.Lines()
	fill := (fp - 1) * mem.LineBytes
	if fill > 0 {
		u.ops = append(u.ops, mem.Op{Target: mem.OffPackage, Addr: demand, Bytes: fill, Class: mem.ClassReplacement, Stage: 1})
	}
	u.ops = append(u.ops,
		mem.Op{Target: mem.InPackage, Addr: demand, Bytes: fp * mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
		mem.Op{Target: mem.InPackage, Addr: demand, Bytes: tagBytes, Write: true, Class: mem.ClassTag, Stage: 1, Fused: true},
	)
	u.fills++
	var t mc.Touched
	t.Set(mem.LineInPage(demand))
	*v = way{tag: tag, valid: true, stamp: u.tick, touched: t}
}

// wayAddr reconstructs a resident page's base address from its tag and
// the set implied by another address in the same set.
func (u *Unison) wayAddr(sameSet mem.Addr, tag uint64) mem.Addr {
	set := mem.PageNum(sameSet) & u.mask
	return mem.PageBase(tag<<u.tagShift | set)
}

// eviction handles an LLC dirty write-back: tag probe, then the data
// write to whichever DRAM owns the line.
func (u *Unison) eviction(addr mem.Addr, set []way, idx int) mc.Result {
	u.tagProbes++
	u.ops = append(u.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0})
	if idx >= 0 {
		li := mem.LineInPage(addr)
		set[idx].touched.Set(li)
		set[idx].dirty.Set(li)
		u.ops = append(u.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData, Stage: 1})
		return mc.Result{Hit: true, Ops: u.ops}
	}
	u.ops = append(u.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1})
	return mc.Result{Hit: false, Ops: u.ops}
}

// FillStats implements mc.Scheme.
func (u *Unison) FillStats(s *stats.Sim) {
	s.Remaps += u.fills
	s.TagProbes += u.tagProbes
}

// FootprintLines exposes the current footprint prediction (tests).
func (u *Unison) FootprintLines() int { return u.footprint.Lines() }
