package unison

import (
	"testing"

	"banshee/internal/mem"
)

func newTest() *Unison {
	return New(Config{CapacityBytes: 1 << 20, Ways: 4}) // 64 sets
}

func bytesTo(ops []mem.Op, target mem.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Target == target {
			n += op.Bytes
		}
	}
	return n
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{CapacityBytes: 1 << 20, Ways: 0},
		{CapacityBytes: 3 * mem.PageBytes, Ways: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Table 1: Unison hit traffic is at least 128 B (tag read + data +
// tag/LRU update).
func TestHitTraffic(t *testing.T) {
	u := newTest()
	u.Access(mem.Request{Addr: 0x4000})
	res := u.Access(mem.Request{Addr: 0x4040}) // same page, other line
	if !res.Hit {
		t.Fatal("page hit expected")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 128 {
		t.Fatalf("hit in-package bytes %d, want 128", got)
	}
	if bytesTo(res.Ops, mem.OffPackage) != 0 {
		t.Fatal("hit touched off-package DRAM")
	}
}

// Table 1: miss traffic at least 96 B (speculative data + tag read),
// plus replacement on every miss.
func TestMissTrafficAndReplacement(t *testing.T) {
	u := newTest()
	res := u.Access(mem.Request{Addr: 0x8000})
	if res.Hit {
		t.Fatal("cold access hit")
	}
	spec := 0
	for _, op := range res.Ops {
		if op.Stage == 0 && op.Target == mem.InPackage {
			spec += op.Bytes
		}
	}
	if spec != 96 {
		t.Fatalf("speculative probe bytes %d, want 96", spec)
	}
	if u.fills != 1 {
		t.Fatal("Unison must replace on every miss")
	}
	// Fill traffic covers the predicted footprint (prior = 16 lines).
	var inFill int
	for _, op := range res.Ops {
		if op.Target == mem.InPackage && op.Write && op.Class == mem.ClassReplacement {
			inFill += op.Bytes
		}
	}
	if inFill != 16*mem.LineBytes {
		t.Fatalf("fill bytes %d, want %d", inFill, 16*mem.LineBytes)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	u := newTest()
	sets := uint64(len(u.sets))
	stride := mem.Addr(sets * mem.PageBytes)
	for i := 0; i < 4; i++ {
		u.Access(mem.Request{Addr: mem.Addr(i) * stride})
	}
	u.Access(mem.Request{Addr: 0})          // refresh page 0
	u.Access(mem.Request{Addr: 4 * stride}) // evicts page 1 (LRU)
	if !u.Access(mem.Request{Addr: 0}).Hit {
		t.Fatal("MRU page evicted")
	}
	if u.Access(mem.Request{Addr: 1 * stride}).Hit {
		t.Fatal("LRU page survived")
	}
}

func TestFootprintLearning(t *testing.T) {
	u := newTest()
	sets := uint64(len(u.sets))
	stride := mem.Addr(sets * mem.PageBytes)
	// Touch 8 lines per page generation over many generations in one set.
	for g := 0; g < 200; g++ {
		base := mem.Addr(g%8) * stride
		for l := 0; l < 8; l++ {
			u.Access(mem.Request{Addr: base + mem.Addr(l*64)})
		}
	}
	if fp := u.FootprintLines(); fp != 8 {
		t.Fatalf("learned footprint %d, want 8", fp)
	}
}

func TestDirtyLinesWrittenBackOnEviction(t *testing.T) {
	u := newTest()
	sets := uint64(len(u.sets))
	stride := mem.Addr(sets * mem.PageBytes)
	u.Access(mem.Request{Addr: 0})
	// Dirty two lines of page 0 via LLC evictions.
	u.Access(mem.Request{Addr: 0x00, Write: true, Eviction: true})
	u.Access(mem.Request{Addr: 0x40, Write: true, Eviction: true})
	// Force eviction of page 0 by filling the set.
	var last []mem.Op
	for i := 1; i <= 4; i++ {
		last = u.Access(mem.Request{Addr: mem.Addr(i) * stride}).Ops
	}
	wb := 0
	for _, op := range last {
		if op.Target == mem.OffPackage && op.Write && op.Class == mem.ClassReplacement {
			wb += op.Bytes
		}
	}
	if wb != 2*mem.LineBytes {
		t.Fatalf("dirty writeback bytes %d, want %d", wb, 2*mem.LineBytes)
	}
}

func TestEvictionProbe(t *testing.T) {
	u := newTest()
	res := u.Access(mem.Request{Addr: 0xA000, Write: true, Eviction: true})
	if res.Hit {
		t.Fatal("eviction hit empty cache")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 32 {
		t.Fatalf("eviction probe bytes %d, want 32 (tag only)", got)
	}
	// Resident case: write goes in-package.
	u.Access(mem.Request{Addr: 0xB000})
	res = u.Access(mem.Request{Addr: 0xB000, Write: true, Eviction: true})
	if !res.Hit || bytesTo(res.Ops, mem.InPackage) != 96 {
		t.Fatalf("resident eviction wrong: hit=%v bytes=%d", res.Hit, bytesTo(res.Ops, mem.InPackage))
	}
}

func TestWholePageHitsAfterFill(t *testing.T) {
	// Perfect footprint idealization: once a page is resident, any line
	// of it hits (the predictor fetched what will be touched).
	u := newTest()
	u.Access(mem.Request{Addr: 0xC000})
	for l := 0; l < mem.LinesPerPage; l++ {
		if !u.Access(mem.Request{Addr: 0xC000 + mem.Addr(l*64)}).Hit {
			t.Fatalf("line %d missed on resident page", l)
		}
	}
}
