package tdc

import (
	"testing"

	"banshee/internal/mem"
)

func newTest() *TDC {
	return New(Config{CapacityBytes: 64 * mem.PageBytes})
}

func bytesTo(ops []mem.Op, target mem.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Target == target {
			n += op.Bytes
		}
	}
	return n
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	New(Config{CapacityBytes: 100})
}

// Table 1: TDC hit moves exactly 64 B — no tag traffic at all.
func TestTaglessHit(t *testing.T) {
	d := newTest()
	d.Access(mem.Request{Addr: 0x1000})
	res := d.Access(mem.Request{Addr: 0x1040})
	if !res.Hit {
		t.Fatal("page hit expected")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 64 {
		t.Fatalf("hit bytes %d, want exactly 64 (tagless)", got)
	}
	for _, op := range res.Ops {
		if op.Class == mem.ClassTag || op.Class == mem.ClassCounter {
			t.Fatal("TDC generated tag/metadata traffic")
		}
	}
}

// Table 1: miss moves 64 B critically, replaces on every miss.
func TestMissReplacesAlways(t *testing.T) {
	d := newTest()
	for i := 0; i < 10; i++ {
		res := d.Access(mem.Request{Addr: mem.Addr(i) << mem.PageOffsetBits})
		if res.Hit {
			t.Fatal("unexpected hit")
		}
	}
	if d.fills != 10 {
		t.Fatalf("fills %d, want 10 (replacement on every miss)", d.fills)
	}
	if d.Resident() != 10 {
		t.Fatalf("resident %d", d.Resident())
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	d := newTest()
	// Fill to capacity.
	for i := 0; i < 64; i++ {
		d.Access(mem.Request{Addr: mem.Addr(i) << mem.PageOffsetBits})
	}
	// Touch page 0 repeatedly: FIFO ignores recency.
	for i := 0; i < 10; i++ {
		if !d.Access(mem.Request{Addr: 0}).Hit {
			t.Fatal("page 0 not resident")
		}
	}
	// Insert one more page: page 0 (oldest insertion) must go.
	d.Access(mem.Request{Addr: 64 << mem.PageOffsetBits})
	if d.Access(mem.Request{Addr: 0}).Hit {
		t.Fatal("FIFO kept the oldest page despite recency")
	}
	if d.Resident() != 64 {
		t.Fatalf("resident %d, want 64 (capacity)", d.Resident())
	}
}

func TestFullAssociativity(t *testing.T) {
	d := newTest()
	// Pages that would conflict in a set-associative cache coexist here.
	stride := mem.Addr(1) << 30
	for i := 0; i < 60; i++ {
		d.Access(mem.Request{Addr: mem.Addr(i) * stride})
	}
	hits := 0
	for i := 0; i < 60; i++ {
		if d.Access(mem.Request{Addr: mem.Addr(i) * stride}).Hit {
			hits++
		}
	}
	if hits != 60 {
		t.Fatalf("only %d/60 strided pages resident; not fully associative", hits)
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	d := newTest()
	d.Access(mem.Request{Addr: 0})
	d.Access(mem.Request{Addr: 0x40, Write: true, Eviction: true}) // dirty line 1
	for i := 1; i < 64; i++ {
		d.Access(mem.Request{Addr: mem.Addr(i) << mem.PageOffsetBits})
	}
	// Next insertion evicts page 0 with one dirty line.
	res := d.Access(mem.Request{Addr: 64 << mem.PageOffsetBits})
	wb := 0
	for _, op := range res.Ops {
		if op.Target == mem.OffPackage && op.Write {
			wb += op.Bytes
		}
	}
	if wb != 64 {
		t.Fatalf("writeback bytes %d, want 64 (one dirty line)", wb)
	}
}

func TestEvictionNoProbeTraffic(t *testing.T) {
	// TDC's mapping is in PTEs/TLBs: dirty evictions route for free.
	d := newTest()
	res := d.Access(mem.Request{Addr: 0x5000, Write: true, Eviction: true})
	if bytesTo(res.Ops, mem.InPackage) != 0 {
		t.Fatal("eviction miss generated in-package probe traffic")
	}
	if bytesTo(res.Ops, mem.OffPackage) != 64 {
		t.Fatal("eviction miss must write 64B off-package")
	}
	d.Access(mem.Request{Addr: 0x6000})
	res = d.Access(mem.Request{Addr: 0x6000, Write: true, Eviction: true})
	if !res.Hit || bytesTo(res.Ops, mem.InPackage) != 64 {
		t.Fatal("resident eviction must write 64B in-package, nothing else")
	}
}

func TestFootprintGrowsFillTraffic(t *testing.T) {
	d := newTest()
	// Train: generations touching 32 lines per page.
	for g := 0; g < 200; g++ {
		base := mem.Addr(g+100) << mem.PageOffsetBits
		for l := 0; l < 32; l++ {
			d.Access(mem.Request{Addr: base + mem.Addr(l*64)})
		}
	}
	res := d.Access(mem.Request{Addr: 1 << 40})
	var fill int
	for _, op := range res.Ops {
		if op.Target == mem.InPackage && op.Write {
			fill += op.Bytes
		}
	}
	if fill != 32*64 {
		t.Fatalf("fill bytes %d, want %d (learned 32-line footprint)", fill, 32*64)
	}
}
