// Package tdc implements the Tagless DRAM Cache baseline [Lee et al.,
// ISCA'15] in the idealized form the paper evaluates (§5.1.1):
//
//   - page mapping lives in PTEs/TLBs, so no tag traffic at all: a hit
//     moves exactly 64 B, a miss 64 B (Table 1);
//   - fully associative, FIFO replacement, replacement on *every* miss;
//   - a perfect footprint predictor (same idealization as Unison) limits
//     fill traffic to the lines a page generation will touch;
//   - TLB coherence is assumed free (zero-overhead hardware directory)
//     and the address-consistency problem is ignored, exactly as the
//     paper grants it;
//   - large pages are not cacheable (TDC disables them, §4.3) — the
//     simulator never routes 2 MB-page workloads to TDC.
package tdc

import (
	"fmt"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
)

// Config sizes the TDC cache.
type Config struct {
	CapacityBytes int
}

type entry struct {
	touched mc.Touched
	dirty   mc.Touched
	// fifoPos is the insertion index, for diagnostics; eviction order is
	// maintained by the queue itself.
	fifoPos uint64
}

// TDC is the scheme instance. Not safe for concurrent use.
type TDC struct {
	capacity int // pages
	// pages is a flat open-addressed residency table (page → entry);
	// entries are stored by value, so an access is one probe with no
	// pointer chase, and the table never allocates once the cache is
	// full — victim slots are reclaimed for the newcomers.
	pages     util.Flat64[entry]
	fifo      []uint64 // ring buffer of resident pages in insertion order
	head      int
	count     uint64
	footprint mc.FootprintTracker

	// memo short-circuits the residency probe for back-to-back accesses
	// to one page (streaming scans walk a page's lines consecutively).
	// The cached pointer is invalidated by any table mutation (insert),
	// which is the only thing that can move or retire a slot.
	memoPage uint64
	memoE    *entry

	// ops is the scratch buffer reused by every Access (see the
	// ownership note on mc.Result).
	ops []mem.Op

	hits, misses uint64
	fills        uint64
}

// New builds a TDC instance; capacity must hold at least one page.
func New(cfg Config) *TDC {
	cap := cfg.CapacityBytes / mem.PageBytes
	if cap <= 0 {
		panic(fmt.Sprintf("tdc: capacity %d smaller than one page", cfg.CapacityBytes))
	}
	return &TDC{
		capacity: cap,
		pages:    *util.NewFlat64[entry](cap),
		fifo:     make([]uint64, 0, cap),
	}
}

// Name implements mc.Scheme.
func (t *TDC) Name() string { return "TDC" }

// Access implements mc.Scheme.
func (t *TDC) Access(req mem.Request) mc.Result {
	t.ops = t.ops[:0]
	addr := mem.LineAddr(req.Addr)
	page := mem.PageNum(addr)
	e := t.memoE
	if e == nil || page != t.memoPage {
		e = t.pages.GetPtr(page)
		t.memoPage, t.memoE = page, e
	}
	li := mem.LineInPage(addr)

	if req.Eviction {
		// Mapping is known from PTEs/TLBs for free: no probe traffic.
		if e != nil {
			e.touched.Set(li)
			e.dirty.Set(li)
			t.ops = append(t.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData})
			return mc.Result{Hit: true, Ops: t.ops}
		}
		t.ops = append(t.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement})
		return mc.Result{Hit: false, Ops: t.ops}
	}

	if e != nil {
		t.hits++
		e.touched.Set(li)
		t.ops = append(t.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassHitData, Stage: 0, Critical: true})
		return mc.Result{Hit: true, Ops: t.ops}
	}

	// Miss: demand line from off-package, then replace on every miss.
	t.misses++
	t.ops = append(t.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 0, Critical: true})
	t.insert(page, addr)
	return mc.Result{Hit: false, Ops: t.ops}
}

// insert places a page, evicting the FIFO head if full, appending the
// background replacement ops to t.ops.
func (t *TDC) insert(page uint64, demand mem.Addr) {
	if len(t.fifo) >= t.capacity {
		victim := t.fifo[t.head]
		ve := t.pages.GetPtr(victim)
		t.footprint.Record(ve.touched.Count())
		if n := ve.dirty.Count(); n > 0 {
			va := mem.PageBase(victim)
			t.ops = append(t.ops,
				mem.Op{Target: mem.InPackage, Addr: va, Bytes: n * mem.LineBytes, Class: mem.ClassReplacement, Stage: 1},
				mem.Op{Target: mem.OffPackage, Addr: va, Bytes: n * mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
			)
		}
		t.pages.Delete(victim)
		t.fifo[t.head] = page
		t.head = (t.head + 1) % t.capacity
	} else {
		t.fifo = append(t.fifo, page)
	}
	fp := t.footprint.Lines()
	if fill := (fp - 1) * mem.LineBytes; fill > 0 {
		t.ops = append(t.ops, mem.Op{Target: mem.OffPackage, Addr: demand, Bytes: fill, Class: mem.ClassReplacement, Stage: 1})
	}
	t.ops = append(t.ops, mem.Op{Target: mem.InPackage, Addr: demand, Bytes: fp * mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1})
	t.count++
	t.fills++
	e := entry{fifoPos: t.count}
	e.touched.Set(mem.LineInPage(demand))
	t.pages.Put(page, e)
	t.memoE = nil // Put/Delete may have moved or retired the memo slot
}

// FillStats implements mc.Scheme.
func (t *TDC) FillStats(s *stats.Sim) {
	s.Remaps += t.fills
}

// Resident returns the number of cached pages (diagnostic, tests).
func (t *TDC) Resident() int { return t.pages.Len() }
