// Package errs defines the typed error vocabulary shared across the
// simulator's layers. The registry, workload, tracefile, sim, and
// runner packages wrap these sentinels into their contextual messages,
// so callers match failure classes with errors.Is / errors.As instead
// of string inspection, and the root package re-exports them as the
// public error surface (banshee.ErrUnknownScheme and friends).
//
// The package sits below every other internal package and imports only
// the standard library, so any layer can return these errors without
// creating an import cycle.
package errs

import (
	"errors"
	"fmt"
	"syscall"
)

var (
	// ErrUnknownScheme is wrapped by every "no such scheme" failure:
	// an unregistered display name in registry.Parse or an unregistered
	// kind in registry.Build.
	ErrUnknownScheme = errors.New("unknown scheme")

	// ErrUnknownWorkload is wrapped when a workload name is claimed by
	// no registered workload kind.
	ErrUnknownWorkload = errors.New("unknown workload")

	// ErrTraceWrapped is wrapped when a recorded trace ran out of events
	// mid-use and restarted from its beginning: the stream carries
	// artificial periodicity the recording never had, so simulation
	// stats over it (or a re-recording of it) are disqualified.
	ErrTraceWrapped = errors.New("trace replay wrapped")

	// ErrTraceCorrupt is wrapped by every structural-damage error the
	// .btrc decoder returns — bad magic, checksum mismatch, inconsistent
	// index — as opposed to plain I/O failures.
	ErrTraceCorrupt = errors.New("corrupt trace file")

	// ErrDiskFull matches any durable-store write that failed because
	// the disk (or quota) is exhausted. The condition is environmental
	// and transient — an operator frees space and the work resumes —
	// so layers that hit it must pause cleanly (checkpoint prefix
	// intact, no terminal marker) rather than corrupt or abandon
	// state. Match with errors.Is.
	ErrDiskFull = errors.New("disk full")
)

// DiskFullError wraps an out-of-space failure with the operation that
// hit it. errors.Is(err, ErrDiskFull) matches it; Unwrap exposes the
// underlying syscall error for platform-level inspection.
type DiskFullError struct {
	// Op describes the write that failed ("sink append",
	// "commit done.json", ...).
	Op string
	// Err is the underlying failure (wrapping ENOSPC or EDQUOT).
	Err error
}

func (e *DiskFullError) Error() string {
	return fmt.Sprintf("%s: %s: %v", ErrDiskFull, e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *DiskFullError) Unwrap() error { return e.Err }

// Is matches ErrDiskFull.
func (e *DiskFullError) Is(target error) bool { return target == ErrDiskFull }

// WrapDiskFull classifies a write error: out-of-space failures
// (ENOSPC) come back as a *DiskFullError carrying op; anything else —
// including nil — is returned unchanged.
func WrapDiskFull(op string, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.ENOSPC) {
		return &DiskFullError{Op: op, Err: err}
	}
	return err
}

// JobError reports one batch job's permanent failure after supervision
// gave up on it: which job (sweep coordinate and content ID), how many
// attempts were made, whether the final attempt panicked, and the
// underlying cause. The runner's supervised workers convert panics and
// per-attempt errors into one JobError per failed job; match with
// errors.As to recover the job context, and errors.Is against the
// wrapped cause (context.DeadlineExceeded for a blown per-job
// deadline, ErrTraceCorrupt for a damaged replay, ...).
type JobError struct {
	// Coord is the job's sweep coordinate
	// ("matrix|label|workload|scheme|seed").
	Coord string
	// ID is the job's content key over its resolved configuration.
	ID string
	// Attempts is how many times the job was tried before giving up.
	Attempts int
	// Panicked reports whether the final attempt failed by panic
	// (recovered by the supervisor) rather than by returned error.
	Panicked bool
	// Err is the final attempt's failure cause.
	Err error
}

func (e *JobError) Error() string {
	how := "failed"
	if e.Panicked {
		how = "panicked"
	}
	return fmt.Sprintf("job %s (%s) %s after %d attempt(s): %v", e.Coord, e.ID, how, e.Attempts, e.Err)
}

// Unwrap exposes the failure cause to errors.Is / errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// ConfigError reports an invalid configuration field with enough
// context to fix it: which field, and why its value was rejected.
// Every layer that validates run configuration (sim.Config, workload
// shapes) returns one; match with errors.As:
//
//	var ce *errs.ConfigError
//	if errors.As(err, &ce) { log.Printf("bad %s: %s", ce.Field, ce.Reason) }
type ConfigError struct {
	// Field names the offending configuration field ("Cores", "MSHRs",
	// "WarmupFrac", ...).
	Field string
	// Reason says why the value was rejected, including the value.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("config: %s: %s", e.Field, e.Reason)
}

// Configf builds a *ConfigError with a formatted reason.
func Configf(field, format string, args ...interface{}) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
