// Package errs defines the typed error vocabulary shared across the
// simulator's layers. The registry, workload, tracefile, sim, and
// runner packages wrap these sentinels into their contextual messages,
// so callers match failure classes with errors.Is / errors.As instead
// of string inspection, and the root package re-exports them as the
// public error surface (banshee.ErrUnknownScheme and friends).
//
// The package sits below every other internal package and imports only
// the standard library, so any layer can return these errors without
// creating an import cycle.
package errs

import (
	"errors"
	"fmt"
)

var (
	// ErrUnknownScheme is wrapped by every "no such scheme" failure:
	// an unregistered display name in registry.Parse or an unregistered
	// kind in registry.Build.
	ErrUnknownScheme = errors.New("unknown scheme")

	// ErrUnknownWorkload is wrapped when a workload name is claimed by
	// no registered workload kind.
	ErrUnknownWorkload = errors.New("unknown workload")

	// ErrTraceWrapped is wrapped when a recorded trace ran out of events
	// mid-use and restarted from its beginning: the stream carries
	// artificial periodicity the recording never had, so simulation
	// stats over it (or a re-recording of it) are disqualified.
	ErrTraceWrapped = errors.New("trace replay wrapped")

	// ErrTraceCorrupt is wrapped by every structural-damage error the
	// .btrc decoder returns — bad magic, checksum mismatch, inconsistent
	// index — as opposed to plain I/O failures.
	ErrTraceCorrupt = errors.New("corrupt trace file")
)

// ConfigError reports an invalid configuration field with enough
// context to fix it: which field, and why its value was rejected.
// Every layer that validates run configuration (sim.Config, workload
// shapes) returns one; match with errors.As:
//
//	var ce *errs.ConfigError
//	if errors.As(err, &ce) { log.Printf("bad %s: %s", ce.Field, ce.Reason) }
type ConfigError struct {
	// Field names the offending configuration field ("Cores", "MSHRs",
	// "WarmupFrac", ...).
	Field string
	// Reason says why the value was rejected, including the value.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("config: %s: %s", e.Field, e.Reason)
}

// Configf builds a *ConfigError with a formatted reason.
func Configf(field, format string, args ...interface{}) *ConfigError {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
