package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns Options small enough for unit testing the experiment
// plumbing (the full-size runs live in cmd/experiments).
func tiny() Options {
	return Options{
		Instr:     120_000,
		Seed:      42,
		Workloads: []string{"pagerank", "lbm"},
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1().String()
	for _, scheme := range []string{"Unison", "Alloy", "TDC", "HMA", "Banshee"} {
		if !strings.Contains(out, scheme) {
			t.Errorf("Table 1 missing %s", scheme)
		}
	}
}

func TestFig4Structure(t *testing.T) {
	r := Fig4(tiny())
	if len(r.Workloads) != 2 || len(r.Schemes) != 7 {
		t.Fatalf("unexpected matrix %dx%d", len(r.Workloads), len(r.Schemes))
	}
	for _, w := range r.Workloads {
		if r.Speedup[w]["NoCache"] != 1.0 {
			t.Errorf("%s: NoCache speedup %v != 1", w, r.Speedup[w]["NoCache"])
		}
		if r.MPKI[w]["CacheOnly"] != 0 {
			t.Errorf("%s: CacheOnly MPKI %v != 0", w, r.MPKI[w]["CacheOnly"])
		}
		for s, v := range r.Speedup[w] {
			if v <= 0 {
				t.Errorf("%s/%s: non-positive speedup %v", w, s, v)
			}
		}
	}
	if r.GeoMean["CacheOnly"] <= 1 {
		t.Errorf("CacheOnly geomean %v not above NoCache", r.GeoMean["CacheOnly"])
	}
	gains := r.BansheeGains()
	if len(gains) != 4 {
		t.Fatalf("gains for %d baselines", len(gains))
	}
	if !strings.Contains(r.Table().String(), "geo-mean") {
		t.Fatal("rendered table missing geo-mean row")
	}
}

func TestTrafficStructure(t *testing.T) {
	r := Traffic(tiny())
	for _, w := range r.Workloads {
		for _, s := range r.Schemes {
			total := 0.0
			for _, v := range r.InPkg[w][s] {
				total += v
			}
			if total <= 0 {
				t.Errorf("%s/%s: zero in-package traffic", w, s)
			}
			if r.OffPkg[w][s] < 0 {
				t.Errorf("%s/%s: negative off-package traffic", w, s)
			}
		}
		// Banshee must carry less in-package traffic than Unison — the
		// core claim the whole design rests on.
		bTot, uTot := 0.0, 0.0
		for _, v := range r.InPkg[w]["Banshee"] {
			bTot += v
		}
		for _, v := range r.InPkg[w]["Unison"] {
			uTot += v
		}
		if bTot >= uTot {
			t.Errorf("%s: Banshee in-package %.2f not below Unison %.2f", w, bTot, uTot)
		}
	}
	if !strings.Contains(r.InPkgTable().String(), "HitData") {
		t.Fatal("Fig.5 table malformed")
	}
	if !strings.Contains(r.OffPkgTable().String(), "average") {
		t.Fatal("Fig.6 table missing average row")
	}
}

func TestFig9SamplingShape(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"pagerank"}
	r := Fig9(o)
	if r.MissRate[0.01] < 0 || r.MissRate[1] > 1 {
		t.Fatal("miss rates out of range")
	}
	if !strings.Contains(r.Table().String(), "coefficient") {
		t.Fatal("Fig.9 table malformed")
	}
}

func TestTable6Shape(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"pagerank"}
	r := Table6(o)
	if len(r.Ways) != 4 {
		t.Fatalf("ways %v", r.Ways)
	}
	for _, w := range r.Ways {
		if r.MissRate[w] <= 0 || r.MissRate[w] > 1 {
			t.Fatalf("miss rate %v at %d ways", r.MissRate[w], w)
		}
	}
	// More associativity must not make things dramatically worse.
	if r.MissRate[8] > r.MissRate[1]*1.2 {
		t.Fatalf("8-way miss rate %.3f far above direct-mapped %.3f", r.MissRate[8], r.MissRate[1])
	}
}

func TestLargePagesRuns(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"pagerank"}
	r := LargePages(o)
	if r.GeoMean <= 0 {
		t.Fatalf("geomean %v", r.GeoMean)
	}
	if !strings.Contains(r.Table().String(), "geo-mean") {
		t.Fatal("table malformed")
	}
}

// TestOutResume runs an experiment twice against the same output
// directory: the first run streams JSONL, the second (with Resume)
// must execute zero simulations and reproduce the same aggregates.
func TestOutResume(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"pagerank"}
	o.Out = t.TempDir()
	first := Table6(o)

	var progress bytes.Buffer
	o.Resume = true
	o.Progress = &progress
	second := Table6(o)

	if !strings.Contains(progress.String(), ", 0 executed") {
		t.Fatalf("resumed run re-simulated:\n%s", progress.String())
	}
	for _, w := range first.Ways {
		if first.MissRate[w] != second.MissRate[w] {
			t.Fatalf("resumed miss rate diverged at %d ways: %v vs %v",
				w, first.MissRate[w], second.MissRate[w])
		}
	}
	if _, err := os.Stat(filepath.Join(o.Out, "table6.jsonl")); err != nil {
		t.Fatalf("result file missing: %v", err)
	}
}

func TestBatmanRuns(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"pagerank"}
	r := Batman(o)
	if _, ok := r.Gain["Banshee"]; !ok {
		t.Fatal("missing Banshee gain")
	}
	if !strings.Contains(r.Table().String(), "BATMAN") {
		t.Fatal("table malformed")
	}
}
