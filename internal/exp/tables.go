package exp

import (
	"fmt"

	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// Table1 renders the qualitative per-scheme behavior summary of the
// paper's Table 1. It is analytic (derived from each design's contract)
// rather than measured; the unit tests verify the schemes' generated
// traffic against these rows.
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: Behavior of DRAM cache designs",
		"scheme", "hit traffic", "miss traffic", "replacement", "decision", "large pages")
	t.AddRow("Unison", ">=128B (data+tag r/w)", ">=96B (spec data+tag)", "every miss: 32B tag + footprint", "HW, way-assoc, LRU", "no")
	t.AddRow("Alloy", "96B (data+tag)", "96B (spec data+tag)", "some misses: 32B tag + 64B fill", "HW, direct-mapped, stochastic", "yes")
	t.AddRow("TDC", "64B", "64B + TLB coherence", "every miss: footprint", "HW, fully-assoc, FIFO", "no")
	t.AddRow("HMA", "64B", "0B extra", "SW managed, high cost", "SW, periodic ranking", "yes")
	t.AddRow("Banshee", "64B", "0B extra", "hot pages only: 32B tag + page", "HW, way-assoc, FBR", "yes")
	return t
}

// Table5Result holds the page-table update cost sweep.
type Table5Result struct {
	CostsMicros []float64
	// AvgLoss and MaxLoss are performance losses relative to free
	// updates, over all workloads.
	AvgLoss map[float64]float64
	MaxLoss map[float64]float64
	// FlushIntervalMs is the measured mean time between tag-buffer
	// flushes under the default cost (the paper reports ~14 ms).
	FlushIntervalMs float64
}

// Table5 reproduces Table 5: Banshee's performance loss as the PTE
// update routine cost sweeps over {10, 20, 40} µs, against a free-update
// baseline.
func Table5(o Options) *Table5Result {
	costs := []float64{10, 20, 40}
	workloads := o.sweepWorkloads()
	points := []runner.Point{{
		Label:  "free",
		Mutate: func(c *sim.Config) { c.Scheme.PTEUpdateMicros = 0.001 },
	}}
	for _, us := range costs {
		cost := us
		points = append(points, runner.Point{
			Label:  fmt.Sprintf("%g", cost),
			Mutate: func(c *sim.Config) { c.Scheme.PTEUpdateMicros = cost },
		})
	}
	rs := run(o, o.matrix("table5", workloads, []string{"Banshee"}, points...))

	out := &Table5Result{CostsMicros: costs, AvgLoss: map[float64]float64{}, MaxLoss: map[float64]float64{}}
	cfg := o.config()
	var flushIntervals []float64
	for _, us := range costs {
		var losses []float64
		for _, w := range workloads {
			base := rs.Get("free", w, "Banshee")
			st := rs.Get(fmt.Sprintf("%g", us), w, "Banshee")
			loss := float64(st.Cycles)/float64(base.Cycles) - 1
			if loss < 0 {
				loss = 0 // noise floor: costed run happened to be faster
			}
			losses = append(losses, loss)
			if us == 20 && st.TagBufferFlushes > 0 {
				ms := float64(st.Cycles) / (cfg.CPUMHz * 1000) / float64(st.TagBufferFlushes)
				flushIntervals = append(flushIntervals, ms)
			}
		}
		out.AvgLoss[us] = stats.Mean(losses)
		out.MaxLoss[us] = stats.Max(losses)
	}
	out.FlushIntervalMs = stats.Mean(flushIntervals)
	return out
}

// Table renders Table 5.
func (r *Table5Result) Table() *stats.Table {
	t := stats.NewTable("Table 5: Page table update overhead",
		"update cost (us)", "avg perf loss", "max perf loss")
	for _, us := range r.CostsMicros {
		t.AddRow(fmt.Sprintf("%.0f", us),
			fmt.Sprintf("%.2f%%", 100*r.AvgLoss[us]),
			fmt.Sprintf("%.2f%%", 100*r.MaxLoss[us]))
	}
	return t
}

// Table6Result holds the associativity sweep.
type Table6Result struct {
	Ways     []int
	MissRate map[int]float64
}

// Table6 reproduces Table 6: Banshee's DRAM-cache miss rate as
// associativity sweeps over {1, 2, 4, 8} ways.
func Table6(o Options) *Table6Result {
	ways := []int{1, 2, 4, 8}
	workloads := o.sweepWorkloads()
	var points []runner.Point
	for _, w := range ways {
		nw := w
		points = append(points, runner.Point{
			Label:  fmt.Sprintf("%d", nw),
			Mutate: func(c *sim.Config) { c.Scheme.BansheeWays = nw },
		})
	}
	rs := run(o, o.matrix("table6", workloads, []string{"Banshee"}, points...))

	out := &Table6Result{Ways: ways, MissRate: map[int]float64{}}
	for _, w := range ways {
		var xs []float64
		for _, wl := range workloads {
			st := rs.Get(fmt.Sprintf("%d", w), wl, "Banshee")
			xs = append(xs, st.MissRate())
		}
		out.MissRate[w] = stats.Mean(xs)
	}
	return out
}

// Table renders Table 6.
func (r *Table6Result) Table() *stats.Table {
	t := stats.NewTable("Table 6: Cache miss rate vs. associativity",
		"ways", "miss rate")
	for _, w := range r.Ways {
		t.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.1f%%", 100*r.MissRate[w]))
	}
	return t
}

// LargePageResult holds the §5.4.1 large-page comparison.
type LargePageResult struct {
	Workloads []string
	// Speedup2M[w] is Banshee-2M speedup over Banshee-4K.
	Speedup2M map[string]float64
	GeoMean   float64
}

// LargePages reproduces §5.4.1: Banshee with all data on 2 MB pages vs
// regular 4 KB pages, on the graph workloads (perfect TLBs in both, so
// the difference is purely the DRAM subsystem — as the paper isolates).
func LargePages(o Options) *LargePageResult {
	workloads := o.Workloads
	if len(workloads) == 0 {
		workloads = []string{"pagerank", "tri_count", "graph500", "sgd", "lsh"}
	}
	// One matrix over both page sizes: the "Banshee 2M" spec selects the
	// large-page cache layout, and the point mutation moves the
	// workload's data onto 2 MB pages to match.
	m := o.matrix("largepage", workloads, []string{"Banshee", "Banshee 2M"}, runner.Point{
		Mutate: func(c *sim.Config) {
			if c.Scheme.BansheeLargePages {
				c.LargePages = true
			}
		},
	})
	rs := run(o, m)

	out := &LargePageResult{Workloads: workloads, Speedup2M: map[string]float64{}}
	var xs []float64
	for _, w := range workloads {
		base := rs.Get("", w, "Banshee")
		st := rs.Get("", w, "Banshee 2M")
		sp := stats.Speedup(&st, &base)
		out.Speedup2M[w] = sp
		xs = append(xs, sp)
	}
	out.GeoMean = stats.GeoMean(xs)
	return out
}

// Table renders the large-page results.
func (r *LargePageResult) Table() *stats.Table {
	t := stats.NewTable("§5.4.1: Large (2 MB) pages vs 4 KB pages (Banshee)",
		"workload", "speedup 2M/4K")
	for _, w := range r.Workloads {
		t.AddRow(w, fmt.Sprintf("%.3f", r.Speedup2M[w]))
	}
	t.AddRow("geo-mean", fmt.Sprintf("%.3f", r.GeoMean))
	return t
}

// BatmanResult holds the §5.4.2 bandwidth-balancing comparison.
type BatmanResult struct {
	// Gain[scheme] is the geomean speedup of scheme+BATMAN over scheme.
	Gain map[string]float64
	// BansheeOverAlloy is Banshee+BATMAN vs Alloy+BATMAN (the paper's
	// "still outperforms by 12.4%").
	BansheeOverAlloy float64
}

// Batman reproduces §5.4.2: BATMAN-style bandwidth balancing on top of
// Alloy and Banshee.
func Batman(o Options) *BatmanResult {
	schemes := []string{"Alloy 1", "Banshee", "Alloy 1+BATMAN", "Banshee+BATMAN"}
	workloads := o.workloads()
	rs := run(o, o.matrix("batman", workloads, schemes))

	gm := func(num, den string) float64 {
		var xs []float64
		for _, w := range workloads {
			a := rs.Get("", w, num)
			b := rs.Get("", w, den)
			xs = append(xs, stats.Speedup(&a, &b))
		}
		return stats.GeoMean(xs)
	}
	return &BatmanResult{
		Gain: map[string]float64{
			"Alloy 1": gm("Alloy 1+BATMAN", "Alloy 1") - 1,
			"Banshee": gm("Banshee+BATMAN", "Banshee") - 1,
		},
		BansheeOverAlloy: gm("Banshee+BATMAN", "Alloy 1+BATMAN") - 1,
	}
}

// Table renders the BATMAN results.
func (r *BatmanResult) Table() *stats.Table {
	t := stats.NewTable("§5.4.2: BATMAN bandwidth balancing", "metric", "value")
	t.AddRow("Alloy gain from balancing", fmt.Sprintf("%+.1f%%", 100*r.Gain["Alloy 1"]))
	t.AddRow("Banshee gain from balancing", fmt.Sprintf("%+.1f%%", 100*r.Gain["Banshee"]))
	t.AddRow("Banshee vs Alloy (both balanced)", fmt.Sprintf("%+.1f%%", 100*r.BansheeOverAlloy))
	return t
}
