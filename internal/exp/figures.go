package exp

import (
	"fmt"

	"banshee/internal/mem"
	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// Fig4Result holds speedups over NoCache and MPKI per workload/scheme —
// the bars and red dots of Fig. 4.
type Fig4Result struct {
	Schemes   []string
	Workloads []string
	// Speedup[workload][scheme], MPKI[workload][scheme]
	Speedup map[string]map[string]float64
	MPKI    map[string]map[string]float64
	// GeoMean[scheme]
	GeoMean map[string]float64
}

// Fig4 reproduces Fig. 4: speedup normalized to NoCache (bars) and
// DRAM-cache MPKI (dots) for every workload and scheme.
func Fig4(o Options) *Fig4Result {
	schemes := []string{"NoCache", "Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee", "CacheOnly"}
	workloads := o.workloads()
	rs := run(o, o.matrix("fig4", workloads, schemes))

	out := &Fig4Result{
		Schemes:   schemes,
		Workloads: workloads,
		Speedup:   map[string]map[string]float64{},
		MPKI:      map[string]map[string]float64{},
		GeoMean:   map[string]float64{},
	}
	for _, w := range workloads {
		base := rs.Get("", w, "NoCache")
		out.Speedup[w] = map[string]float64{}
		out.MPKI[w] = map[string]float64{}
		for _, s := range schemes {
			st := rs.Get("", w, s)
			out.Speedup[w][s] = stats.Speedup(&st, &base)
			out.MPKI[w][s] = st.MPKI()
		}
	}
	for _, s := range schemes {
		var xs []float64
		for _, w := range workloads {
			xs = append(xs, out.Speedup[w][s])
		}
		out.GeoMean[s] = stats.GeoMean(xs)
	}
	return out
}

// Table renders the result in the paper's layout.
func (r *Fig4Result) Table() *stats.Table {
	cols := append([]string{"workload"}, r.Schemes...)
	t := stats.NewTable("Fig. 4: Speedup normalized to NoCache (MPKI in parentheses)", cols...)
	for _, w := range r.Workloads {
		cells := []string{w}
		for _, s := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%.2f (%.1f)", r.Speedup[w][s], r.MPKI[w][s]))
		}
		t.AddRow(cells...)
	}
	cells := []string{"geo-mean"}
	for _, s := range r.Schemes {
		cells = append(cells, fmt.Sprintf("%.2f", r.GeoMean[s]))
	}
	t.AddRow(cells...)
	return t
}

// BansheeGains returns Banshee's geomean speedup relative to each
// baseline (the paper's 68.9% / 26.1% / 15.0% headline numbers).
func (r *Fig4Result) BansheeGains() map[string]float64 {
	out := map[string]float64{}
	for _, s := range []string{"Unison", "TDC", "Alloy 1", "Alloy 0.1"} {
		if r.GeoMean[s] > 0 {
			out[s] = r.GeoMean["Banshee"]/r.GeoMean[s] - 1
		}
	}
	return out
}

// TrafficResult holds the Fig. 5 / Fig. 6 traffic measurements.
type TrafficResult struct {
	Schemes   []string
	Workloads []string
	// InPkg[workload][scheme][class] in bytes/instruction.
	InPkg map[string]map[string]map[mem.Class]float64
	// OffPkg[workload][scheme] in bytes/instruction.
	OffPkg map[string]map[string]float64
}

// Traffic reproduces Fig. 5 (in-package traffic breakdown) and Fig. 6
// (off-package traffic) with one simulation matrix.
func Traffic(o Options) *TrafficResult {
	schemes := []string{"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee"}
	workloads := o.workloads()
	rs := run(o, o.matrix("traffic", workloads, schemes))

	out := &TrafficResult{
		Schemes:   schemes,
		Workloads: workloads,
		InPkg:     map[string]map[string]map[mem.Class]float64{},
		OffPkg:    map[string]map[string]float64{},
	}
	for _, w := range workloads {
		out.InPkg[w] = map[string]map[mem.Class]float64{}
		out.OffPkg[w] = map[string]float64{}
		for _, s := range schemes {
			st := rs.Get("", w, s)
			byClass := map[mem.Class]float64{}
			for _, c := range mem.Classes() {
				byClass[c] = st.ClassBPI(c)
			}
			out.InPkg[w][s] = byClass
			out.OffPkg[w][s] = st.OffPkgBPI()
		}
	}
	return out
}

// InPkgTable renders Fig. 5.
func (r *TrafficResult) InPkgTable() *stats.Table {
	t := stats.NewTable("Fig. 5: In-package DRAM traffic (bytes/instruction)",
		"workload", "scheme", "HitData", "MissData", "Tag", "Counter", "Replace", "Total")
	for _, w := range r.Workloads {
		for _, s := range r.Schemes {
			b := r.InPkg[w][s]
			total := 0.0
			for _, v := range b {
				total += v
			}
			t.AddRow(w, s,
				fmt.Sprintf("%.2f", b[mem.ClassHitData]),
				fmt.Sprintf("%.2f", b[mem.ClassMissData]),
				fmt.Sprintf("%.2f", b[mem.ClassTag]),
				fmt.Sprintf("%.2f", b[mem.ClassCounter]),
				fmt.Sprintf("%.2f", b[mem.ClassReplacement]),
				fmt.Sprintf("%.2f", total))
		}
	}
	return t
}

// OffPkgTable renders Fig. 6.
func (r *TrafficResult) OffPkgTable() *stats.Table {
	cols := append([]string{"workload"}, r.Schemes...)
	t := stats.NewTable("Fig. 6: Off-package DRAM traffic (bytes/instruction)", cols...)
	for _, w := range r.Workloads {
		cells := []string{w}
		for _, s := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%.2f", r.OffPkg[w][s]))
		}
		t.AddRow(cells...)
	}
	// Average row (arithmetic, matching the figure's "average" group).
	cells := []string{"average"}
	for _, s := range r.Schemes {
		var xs []float64
		for _, w := range r.Workloads {
			xs = append(xs, r.OffPkg[w][s])
		}
		cells = append(cells, fmt.Sprintf("%.2f", stats.Mean(xs)))
	}
	t.AddRow(cells...)
	return t
}

// AvgInPkg returns the workload-averaged total in-package traffic per
// scheme (the 35.8% headline comparison).
func (r *TrafficResult) AvgInPkg() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Schemes {
		var sum float64
		for _, w := range r.Workloads {
			for _, v := range r.InPkg[w][s] {
				sum += v
			}
		}
		out[s] = sum / float64(len(r.Workloads))
	}
	return out
}

// AvgOffPkg returns the workload-averaged off-package traffic per scheme.
func (r *TrafficResult) AvgOffPkg() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Schemes {
		var xs []float64
		for _, w := range r.Workloads {
			xs = append(xs, r.OffPkg[w][s])
		}
		out[s] = stats.Mean(xs)
	}
	return out
}

// Fig7Result holds the replacement-policy ablation.
type Fig7Result struct {
	Schemes []string
	// Speedup[scheme] = geomean speedup over NoCache;
	// CacheBPI[scheme] = average in-package (DRAM cache) bytes/instr.
	Speedup  map[string]float64
	CacheBPI map[string]float64
}

// Fig7 reproduces Fig. 7: Banshee LRU vs FBR-no-sample vs Banshee vs
// TDC, averaged over all workloads.
func Fig7(o Options) *Fig7Result {
	schemes := []string{"Banshee LRU", "Banshee NoSample", "Banshee", "TDC"}
	workloads := o.workloads()
	rs := run(o, o.matrix("fig7", workloads, append(append([]string{}, schemes...), "NoCache")))

	out := &Fig7Result{Schemes: schemes, Speedup: map[string]float64{}, CacheBPI: map[string]float64{}}
	for _, s := range schemes {
		var sp, bpi []float64
		for _, w := range workloads {
			st := rs.Get("", w, s)
			base := rs.Get("", w, "NoCache")
			sp = append(sp, stats.Speedup(&st, &base))
			bpi = append(bpi, st.InPkgBPI())
		}
		out.Speedup[s] = stats.GeoMean(sp)
		out.CacheBPI[s] = stats.Mean(bpi)
	}
	return out
}

// Table renders Fig. 7.
func (r *Fig7Result) Table() *stats.Table {
	t := stats.NewTable("Fig. 7: Replacement policies (geomean over workloads)",
		"policy", "speedup vs NoCache", "DRAM cache bytes/instr")
	for _, s := range r.Schemes {
		t.AddRow(s, fmt.Sprintf("%.2f", r.Speedup[s]), fmt.Sprintf("%.2f", r.CacheBPI[s]))
	}
	return t
}

// Fig8Result holds the latency/bandwidth sensitivity sweeps.
type Fig8Result struct {
	Schemes []string
	// Latency[label][scheme] and Bandwidth[label][scheme] are geomean
	// speedups over NoCache at that setting.
	LatencyLabels   []string
	BandwidthLabels []string
	Latency         map[string]map[string]float64
	Bandwidth       map[string]map[string]float64
}

// Fig8 reproduces Fig. 8b/8c: sweep in-package DRAM latency (100%, 66%,
// 50% of off-package) and bandwidth (8×, 4×, 2× of off-package).
func Fig8(o Options) *Fig8Result {
	schemes := []string{"Banshee", "Alloy 1", "TDC", "Unison"}
	// Fig. 8 is the most expensive sweep (6 points × 5 schemes), so it
	// runs on at most 4 workloads; smaller -workloads lists pass through.
	workloads := o.sweepWorkloads()
	if len(workloads) > 4 {
		workloads = workloads[:4]
	}
	out := &Fig8Result{
		Schemes:         schemes,
		LatencyLabels:   []string{"100%", "66%", "50%"},
		BandwidthLabels: []string{"8X", "4X", "2X"},
		Latency:         map[string]map[string]float64{},
		Bandwidth:       map[string]map[string]float64{},
	}

	latPoint := func(label string, scale float64) runner.Point {
		return runner.Point{Label: "lat/" + label, Mutate: func(c *sim.Config) { c.InPkgLatScale = scale }}
	}
	bwPoint := func(label string, channels int) runner.Point {
		return runner.Point{Label: "bw/" + label, Mutate: func(c *sim.Config) { c.InPkgChannels = channels }}
	}
	rs := run(o, o.matrix("fig8", workloads, append(append([]string{}, schemes...), "NoCache"),
		latPoint("100%", 1.0), latPoint("66%", 0.66), latPoint("50%", 0.50),
		bwPoint("8X", 8), bwPoint("4X", 4), bwPoint("2X", 2)))

	collect := func(prefix string, labels []string, dst map[string]map[string]float64) {
		for _, label := range labels {
			dst[label] = map[string]float64{}
			for _, s := range schemes {
				var xs []float64
				for _, w := range workloads {
					st := rs.Get(prefix+label, w, s)
					base := rs.Get(prefix+label, w, "NoCache")
					xs = append(xs, stats.Speedup(&st, &base))
				}
				dst[label][s] = stats.GeoMean(xs)
			}
		}
	}
	collect("lat/", out.LatencyLabels, out.Latency)
	collect("bw/", out.BandwidthLabels, out.Bandwidth)
	return out
}

// Tables renders Fig. 8b and 8c.
func (r *Fig8Result) Tables() []*stats.Table {
	lt := stats.NewTable("Fig. 8b: Sweeping DRAM cache latency (geomean speedup vs NoCache)",
		append([]string{"latency"}, r.Schemes...)...)
	for _, l := range r.LatencyLabels {
		cells := []string{l}
		for _, s := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%.2f", r.Latency[l][s]))
		}
		lt.AddRow(cells...)
	}
	bt := stats.NewTable("Fig. 8c: Sweeping DRAM cache bandwidth (geomean speedup vs NoCache)",
		append([]string{"bandwidth"}, r.Schemes...)...)
	for _, l := range r.BandwidthLabels {
		cells := []string{l}
		for _, s := range r.Schemes {
			cells = append(cells, fmt.Sprintf("%.2f", r.Bandwidth[l][s]))
		}
		bt.AddRow(cells...)
	}
	return []*stats.Table{lt, bt}
}

// Fig9Result holds the sampling-coefficient sweep.
type Fig9Result struct {
	Coeffs   []float64
	MissRate map[float64]float64
	// BPI[coeff][class] — the Fig. 9b traffic breakdown including the
	// Counter class.
	BPI map[float64]map[mem.Class]float64
}

// Fig9 reproduces Fig. 9: sweep Banshee's sampling coefficient over
// {1, 0.1, 0.01} and report DRAM-cache miss rate and traffic breakdown.
func Fig9(o Options) *Fig9Result {
	coeffs := []float64{1, 0.1, 0.01}
	workloads := o.sweepWorkloads()
	var points []runner.Point
	for _, c := range coeffs {
		coeff := c
		points = append(points, runner.Point{
			Label:  fmt.Sprintf("%g", coeff),
			Mutate: func(cfg *sim.Config) { cfg.Scheme.BansheeSamplingCoeff = coeff },
		})
	}
	rs := run(o, o.matrix("fig9", workloads, []string{"Banshee"}, points...))

	out := &Fig9Result{Coeffs: coeffs, MissRate: map[float64]float64{}, BPI: map[float64]map[mem.Class]float64{}}
	for _, c := range coeffs {
		var mr []float64
		byClass := map[mem.Class]float64{}
		for _, w := range workloads {
			st := rs.Get(fmt.Sprintf("%g", c), w, "Banshee")
			mr = append(mr, st.MissRate())
			for _, cl := range mem.Classes() {
				byClass[cl] += st.ClassBPI(cl) / float64(len(workloads))
			}
		}
		out.MissRate[c] = stats.Mean(mr)
		out.BPI[c] = byClass
	}
	return out
}

// Table renders Fig. 9.
func (r *Fig9Result) Table() *stats.Table {
	t := stats.NewTable("Fig. 9: Sweeping sampling coefficient (averages over workloads)",
		"coefficient", "miss rate", "HitData", "MissData", "Tag", "Counter", "Replace")
	for _, c := range r.Coeffs {
		b := r.BPI[c]
		t.AddRow(fmt.Sprintf("%g", c),
			fmt.Sprintf("%.3f", r.MissRate[c]),
			fmt.Sprintf("%.2f", b[mem.ClassHitData]),
			fmt.Sprintf("%.2f", b[mem.ClassMissData]),
			fmt.Sprintf("%.2f", b[mem.ClassTag]),
			fmt.Sprintf("%.2f", b[mem.ClassCounter]),
			fmt.Sprintf("%.2f", b[mem.ClassReplacement]))
	}
	return t
}
