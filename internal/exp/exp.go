// Package exp implements the paper's evaluation section: one runner per
// table and figure (Fig. 4-9, Tables 1, 5, 6, and the §5.4 extensions).
// Each runner declares its simulation matrix (workloads × schemes ×
// config points), hands it to the generic batch engine in
// internal/runner, and aggregates the returned results into the same
// metrics the paper plots. The runners are shared by cmd/experiments
// and the benchmark harness in bench_test.go; with Options.Out set they
// stream results to JSONL and resume interrupted sweeps.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"banshee/internal/obs"
	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/sweepd"
	"banshee/internal/trace"
)

// Options controls an experiment run.
type Options struct {
	// Ctx, when non-nil, bounds every simulation of the experiment:
	// cancelling it drains the batch engine's worker pool and aborts
	// the experiment, leaving any JSONL output a clean resumable
	// prefix. Nil means context.Background().
	Ctx context.Context
	// Instr is the per-core instruction budget (0 = sim default).
	Instr uint64
	// Seed is the base simulation seed.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Workloads overrides the workload list (nil = the paper's 16).
	Workloads []string
	// Intensity multiplies every workload's memory intensity (1 = default).
	Intensity float64
	// Out, when set, is a directory receiving one JSONL result file per
	// experiment matrix as jobs complete.
	Out string
	// Resume skips jobs whose results are already in Out (matched by
	// content key, so edited sweeps re-simulate).
	Resume bool
	// KeepGoing completes each matrix past permanently failed jobs
	// instead of aborting the experiment: failures stream to a sibling
	// "<matrix>.failed.jsonl" ledger in Out, the aggregators render
	// zero-valued holes at the failed coordinates, and OnFailures (if
	// set) is told about them.
	KeepGoing bool
	// Retry bounds per-job retries (zero value = one attempt).
	Retry runner.RetryPolicy
	// JobTimeout, when positive, deadlines each job attempt.
	JobTimeout time.Duration
	// OnFailures, when non-nil with KeepGoing, receives each matrix's
	// permanently failed jobs after it completes (skipped for clean
	// matrices). ledger is the ledger file path, or "" without Out.
	OnFailures func(matrix string, failed []runner.Record, ledger string)
	// GangWidth, when ≥ 2, lets the batch engine execute that many
	// gang-eligible jobs of a matrix (same workload stream and scheme
	// kind, differing only by seed or back-end knobs) as one lockstep
	// gang; results and checkpoint files are byte-identical to
	// independent execution. 0 disables ganging.
	GangWidth int
	// Metrics, when non-nil, receives live sweep telemetry from every
	// matrix the experiment runs (job states, attempts, gang shape,
	// per-epoch sim series). Serve it with obs.Serve to watch a run.
	Metrics *obs.Registry
	// Tracer, when non-nil, records the sweep timeline of every matrix
	// for Chrome trace_event export.
	Tracer *obs.Tracer
	// ProgressEvery, when positive with Progress set, replaces per-job
	// progress lines with one rate-limited summary line per interval.
	ProgressEvery time.Duration
	// Remote, when set, submits every matrix to the sweepd daemon at
	// this address ("host:port" or URL) instead of executing locally:
	// the daemon runs the jobs (sharded across its attached workers),
	// streams back the checkpoint records — byte-identical to a local
	// run — and the aggregators consume the assembled results as usual.
	// Execution policy (Retry, JobTimeout, KeepGoing, GangWidth) rides
	// along in the sweep spec; local-run machinery (Out, Resume,
	// Metrics, Tracer, Parallelism) is unused, since the daemon owns
	// durable state and telemetry for its sweeps.
	Remote string
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.Names()
}

// sweepWorkloads is the representative subset used by the parameter
// sweeps (Fig. 8/9, Tables 5/6): it spans the behavioral classes of the
// full suite — skewed graph reuse (pagerank, graph500), streaming (lbm,
// libquantum), pointer chasing (mcf, omnetpp), and a mixed workload —
// at a fraction of the simulation cost. DESIGN.md §4 records this
// reduction.
func (o Options) sweepWorkloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return []string{"pagerank", "graph500", "lbm", "mcf", "omnetpp", "libquantum", "soplex", "mix1"}
}

func (o Options) config() sim.Config {
	cfg := sim.DefaultConfig()
	if o.Instr > 0 {
		cfg.InstrPerCore = o.Instr
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	} else {
		cfg.Seed = 42
	}
	if o.Intensity > 0 {
		cfg.Intensity = o.Intensity
	}
	return cfg
}

// matrix declares one experiment's simulation matrix over the options'
// base config.
func (o Options) matrix(name string, workloads, schemes []string, points ...runner.Point) runner.Matrix {
	return runner.Matrix{
		Name:      name,
		Base:      o.config(),
		Workloads: workloads,
		Schemes:   schemes,
		Points:    points,
	}
}

// ErrCancelled is what run panics with (wrapped with the matrix name)
// when the options context is cancelled mid-experiment — callers that
// install a context recover it to distinguish interruption from bugs.
var ErrCancelled = errors.New("experiment cancelled")

// run executes a matrix on the batch engine, streaming to o.Out when
// set. Errors panic: experiment configs are code, not input, so a
// failure is a bug worth surfacing immediately — except cancellation
// of o.Ctx, which panics with ErrCancelled for the caller to recover,
// and per-job failures under o.KeepGoing, which the sweep outlives
// (the ledger and OnFailures report them).
func run(o Options, m runner.Matrix) *runner.ResultSet {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Remote != "" {
		return runRemote(ctx, o, m)
	}
	eng := runner.Engine{Parallelism: o.Parallelism, Progress: o.Progress,
		Retry: o.Retry, JobTimeout: o.JobTimeout, KeepGoing: o.KeepGoing,
		GangWidth: o.GangWidth, Metrics: o.Metrics, Tracer: o.Tracer,
		ProgressEvery: o.ProgressEvery}
	ledger := ""
	if o.Out != "" {
		sink, err := runner.OpenSink(filepath.Join(o.Out, m.Name+".jsonl"), o.Resume)
		if err != nil {
			panic(fmt.Errorf("exp: matrix %s: %w", m.Name, err))
		}
		defer sink.Close()
		eng.Sink = sink
		if o.KeepGoing {
			ledger = filepath.Join(o.Out, m.Name+".failed.jsonl")
			eng.Ledger = runner.NewLedger(ledger)
			defer eng.Ledger.Close()
		}
	}
	rs, err := eng.Run(ctx, m)
	if err != nil {
		if ctx.Err() != nil {
			panic(fmt.Errorf("%w: matrix %s: %v", ErrCancelled, m.Name, err))
		}
		panic(fmt.Errorf("exp: matrix %s failed: %w", m.Name, err))
	}
	if failed := rs.Failed(); len(failed) > 0 && o.OnFailures != nil {
		o.OnFailures(m.Name, failed, ledger)
	}
	return rs
}

// runRemote executes a matrix by submitting it to the sweepd daemon at
// o.Remote and streaming the results back — the records are
// byte-identical to a local run's, so the aggregators can't tell the
// difference. Cancelling o.Ctx abandons only the client side: the
// sweep keeps running server-side and a re-run with the same options
// reattaches to it (submission is idempotent).
func runRemote(ctx context.Context, o Options, m runner.Matrix) *runner.ResultSet {
	c, err := sweepd.Dial(o.Remote)
	if err != nil {
		panic(fmt.Errorf("exp: matrix %s: %w", m.Name, err))
	}
	rs, err := c.RunMatrix(ctx, m, sweepd.RunOptions{
		GangWidth:    o.GangWidth,
		Retries:      o.Retry.MaxAttempts,
		JobTimeoutMs: o.JobTimeout.Milliseconds(),
		KeepGoing:    o.KeepGoing,
	})
	if err != nil {
		if ctx.Err() != nil {
			panic(fmt.Errorf("%w: matrix %s: %v", ErrCancelled, m.Name, err))
		}
		panic(fmt.Errorf("exp: matrix %s failed remotely: %w", m.Name, err))
	}
	if failed := rs.Failed(); len(failed) > 0 && o.OnFailures != nil {
		o.OnFailures(m.Name, failed, "")
	}
	return rs
}
