// Package exp implements the paper's evaluation section: one runner per
// table and figure (Fig. 4-9, Tables 1, 5, 6, and the §5.4 extensions).
// Each runner executes the required simulation matrix, aggregates the
// same metrics the paper plots, and renders a paper-style table. The
// runners are shared by cmd/experiments and the benchmark harness in
// bench_test.go.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"banshee/internal/sim"
	"banshee/internal/stats"
	"banshee/internal/trace"
)

// Options controls an experiment run.
type Options struct {
	// Instr is the per-core instruction budget (0 = sim default).
	Instr uint64
	// Seed is the base simulation seed.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Workloads overrides the workload list (nil = the paper's 16).
	Workloads []string
	// Intensity multiplies every workload's memory intensity (1 = default).
	Intensity float64
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.Names()
}

// sweepWorkloads is the representative subset used by the parameter
// sweeps (Fig. 8/9, Tables 5/6): it spans the behavioral classes of the
// full suite — skewed graph reuse (pagerank, graph500), streaming (lbm,
// libquantum), pointer chasing (mcf, omnetpp), and a mixed workload —
// at a fraction of the simulation cost. EXPERIMENTS.md records this
// reduction.
func (o Options) sweepWorkloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return []string{"pagerank", "graph500", "lbm", "mcf", "omnetpp", "libquantum", "soplex", "mix1"}
}

func (o Options) config() sim.Config {
	cfg := sim.DefaultConfig()
	if o.Instr > 0 {
		cfg.InstrPerCore = o.Instr
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	} else {
		cfg.Seed = 42
	}
	if o.Intensity > 0 {
		cfg.Intensity = o.Intensity
	}
	return cfg
}

// job is one simulation in a matrix.
type job struct {
	key      string
	workload string
	scheme   string
	mutate   func(*sim.Config)
}

// runMatrix executes jobs with bounded parallelism and returns results
// keyed by job key. Errors abort: experiment configs are code, not
// input, so a failure is a bug worth surfacing immediately.
func runMatrix(o Options, jobs []job) map[string]stats.Sim {
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}
	results := make(map[string]stats.Sim, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := o.config()
			if j.mutate != nil {
				j.mutate(&cfg)
			}
			st, err := sim.Run(cfg, j.workload, j.scheme)
			if err != nil {
				panic(fmt.Sprintf("exp: run %s failed: %v", j.key, err))
			}
			mu.Lock()
			results[j.key] = st
			mu.Unlock()
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "done %-32s cycles=%d\n", j.key, st.Cycles)
			}
		}(j)
	}
	wg.Wait()
	return results
}

func key(workload, scheme string) string { return workload + "/" + scheme }

// crossJobs builds the full workload × scheme matrix.
func crossJobs(workloads, schemes []string, mutate func(*sim.Config)) []job {
	var jobs []job
	for _, w := range workloads {
		for _, s := range schemes {
			jobs = append(jobs, job{key: key(w, s), workload: w, scheme: s, mutate: mutate})
		}
	}
	return jobs
}
