// Package mem defines the vocabulary shared by every layer of the
// simulator: physical addresses, cache-line and page geometry, memory
// requests, DRAM operations, and traffic classification. It deliberately
// contains no behavior beyond address arithmetic so that higher layers
// (caches, DRAM timing, cache schemes) can depend on it without cycles.
package mem

import "fmt"

// Addr is a physical byte address. The simulated machine uses a 48-bit
// physical address space, matching the paper's tag-size arithmetic
// (48 - 16 set bits - 12 page-offset bits = 20-bit page tags).
type Addr uint64

// Fundamental geometry. These mirror Table 2 of the paper and are fixed:
// the DRAM-cache designs under study all assume 64 B lines and 4 KB pages,
// with 2 MB large pages as the extension studied in §4.3/§5.4.1.
const (
	LineBytes  = 64
	PageBytes  = 4096
	LargeBytes = 2 << 20 // 2 MB large page

	LineOffsetBits  = 6
	PageOffsetBits  = 12
	LargeOffsetBits = 21

	LinesPerPage      = PageBytes / LineBytes  // 64
	LinesPerLargePage = LargeBytes / LineBytes // 32768
	PagesPerLargePage = LargeBytes / PageBytes // 512

	AddrBits = 48
)

// LineNum returns the cache-line number of a.
func LineNum(a Addr) uint64 { return uint64(a) >> LineOffsetBits }

// LineAddr returns a rounded down to its line base.
func LineAddr(a Addr) Addr { return a &^ (LineBytes - 1) }

// PageNum returns the 4 KB page frame number of a.
func PageNum(a Addr) uint64 { return uint64(a) >> PageOffsetBits }

// PageAddr returns a rounded down to its 4 KB page base.
func PageAddr(a Addr) Addr { return a &^ (PageBytes - 1) }

// LargePageNum returns the 2 MB page frame number of a.
func LargePageNum(a Addr) uint64 { return uint64(a) >> LargeOffsetBits }

// LargePageAddr returns a rounded down to its 2 MB page base.
func LargePageAddr(a Addr) Addr { return a &^ (LargeBytes - 1) }

// LineInPage returns the index (0..63) of a's line within its 4 KB page.
func LineInPage(a Addr) int {
	return int((uint64(a) >> LineOffsetBits) & (LinesPerPage - 1))
}

// PageBase reconstructs a page base address from a frame number.
func PageBase(pageNum uint64) Addr { return Addr(pageNum << PageOffsetBits) }

// LineBase reconstructs a line base address from a line number.
func LineBase(lineNum uint64) Addr { return Addr(lineNum << LineOffsetBits) }

// PageSize identifies the translation granularity of a request, carried
// from the TLB so memory controllers can route large pages correctly
// (§4.3: a bit per cache line records page size for dirty evictions).
type PageSize uint8

const (
	Page4K PageSize = iota
	Page2M
)

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() int {
	if s == Page2M {
		return LargeBytes
	}
	return PageBytes
}

// String implements fmt.Stringer.
func (s PageSize) String() string {
	if s == Page2M {
		return "2M"
	}
	return "4K"
}

// Mapping is the DRAM-cache mapping information carried by a request
// through the memory hierarchy. In Banshee it is the PTE/TLB extension
// (§3.2): a cached bit plus way bits. Requests that never consulted a TLB
// (e.g. LLC dirty evictions) carry Known=false.
type Mapping struct {
	Known  bool  // the request carries mapping info at all
	Cached bool  // page resident in the DRAM cache
	Way    uint8 // which way, valid when Cached
}

// Request is a memory reference leaving the core (or an eviction leaving
// the LLC) on its way through the hierarchy.
type Request struct {
	Addr    Addr
	Write   bool
	Core    int      // issuing core, -1 for evictions with no owner
	Size    PageSize // translation granularity (from TLB)
	Mapping Mapping  // PTE-carried DRAM-cache mapping (scheme-specific use)
	// Eviction marks LLC write-backs: they carry no TLB mapping and are
	// off the core's critical path.
	Eviction bool
}

func (r Request) String() string {
	op := "R"
	if r.Write {
		op = "W"
	}
	return fmt.Sprintf("%s@%#x core=%d", op, uint64(r.Addr), r.Core)
}

// Kind distinguishes the two DRAMs in the package.
type Kind uint8

const (
	InPackage  Kind = iota // the HBM-class DRAM cache
	OffPackage             // conventional DDR main memory
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == InPackage {
		return "in-package"
	}
	return "off-package"
}

// Class categorizes DRAM traffic for the paper's breakdowns
// (Fig. 5 uses HitData/MissData/Tag/Replacement; Fig. 9 adds Counter).
type Class uint8

const (
	ClassHitData     Class = iota // demand data moved on a DRAM-cache hit
	ClassMissData                 // demand/speculative data moved on a miss
	ClassTag                      // tag reads/updates and tag probes
	ClassCounter                  // frequency-counter (metadata) reads/updates
	ClassReplacement              // page/line fills and dirty evictions
	ClassCount                    // number of classes
)

var classNames = [ClassCount]string{
	"HitData", "MissData", "Tag", "Counter", "Replacement",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes lists all traffic classes in display order.
func Classes() []Class {
	return []Class{ClassHitData, ClassMissData, ClassTag, ClassCounter, ClassReplacement}
}

// Op is one physical DRAM transaction requested by a cache scheme in
// response to an LLC miss (or eviction). The memory controller times each
// op on the addressed channel/bank and accounts its bytes to Class.
//
// Ops are grouped into stages: all ops of stage N issue once every
// *critical* op of stage N-1 has completed. This expresses, e.g., Alloy's
// "read tag+data, then on a miss fetch off-package" serialization, while
// letting background ops (fills, writebacks, counter updates) overlap.
type Op struct {
	Target   Kind
	Addr     Addr // used for channel/bank/row mapping
	Bytes    int
	Write    bool
	Class    Class
	Stage    uint8
	Critical bool // contributes to the request's completion latency
	// Fused marks an op that rides the same DRAM burst train as the
	// preceding op in its stage (e.g. Alloy's tag+data "TAD" unit, or
	// Unison's tag read alongside the predicted way's data): it extends
	// that op's data transfer instead of issuing a new bank command.
	Fused bool
}

func (o Op) String() string {
	dir := "rd"
	if o.Write {
		dir = "wr"
	}
	crit := ""
	if o.Critical {
		crit = " crit"
	}
	return fmt.Sprintf("%s %s %dB %s s%d%s", o.Target, dir, o.Bytes, o.Class, o.Stage, crit)
}
