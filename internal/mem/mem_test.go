package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64", LinesPerPage)
	}
	if LinesPerLargePage != 32768 {
		t.Fatalf("LinesPerLargePage = %d", LinesPerLargePage)
	}
	if PagesPerLargePage != 512 {
		t.Fatalf("PagesPerLargePage = %d", PagesPerLargePage)
	}
	if 1<<LineOffsetBits != LineBytes || 1<<PageOffsetBits != PageBytes || 1<<LargeOffsetBits != LargeBytes {
		t.Fatal("offset bit constants inconsistent with sizes")
	}
}

func TestLineAddr(t *testing.T) {
	for _, tc := range []struct{ in, want Addr }{
		{0, 0}, {63, 0}, {64, 64}, {65, 64}, {4095, 4032}, {4096, 4096},
	} {
		if got := LineAddr(tc.in); got != tc.want {
			t.Errorf("LineAddr(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestPageRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		p := PageNum(a)
		base := PageBase(p)
		return PageAddr(a) == base && base <= a && a-base < PageBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		l := LineNum(a)
		base := LineBase(l)
		return LineAddr(a) == base && base <= a && a-base < LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineInPage(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		li := LineInPage(a)
		if li < 0 || li >= LinesPerPage {
			return false
		}
		// Reconstruct: page base + line index * 64 covers a's line.
		return PageAddr(a)+Addr(li*LineBytes) == LineAddr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLargePageContainsItsPages(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		lp := LargePageNum(a)
		p := PageNum(a)
		// The 4 KB page number always falls within the enclosing 2 MB
		// region's page range.
		return p/PagesPerLargePage == lp && LargePageAddr(a) <= PageAddr(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSize(t *testing.T) {
	if Page4K.Bytes() != PageBytes || Page2M.Bytes() != LargeBytes {
		t.Fatal("PageSize.Bytes wrong")
	}
	if Page4K.String() != "4K" || Page2M.String() != "2M" {
		t.Fatal("PageSize.String wrong")
	}
}

func TestClassNames(t *testing.T) {
	want := []string{"HitData", "MissData", "Tag", "Counter", "Replacement"}
	cs := Classes()
	if len(cs) != len(want) || len(cs) != int(ClassCount) {
		t.Fatalf("Classes() length %d", len(cs))
	}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("class %d = %q, want %q", i, c.String(), want[i])
		}
	}
}

func TestRequestString(t *testing.T) {
	r := Request{Addr: 0x1000, Write: true, Core: 3}
	if got := r.String(); got != "W@0x1000 core=3" {
		t.Fatalf("Request.String() = %q", got)
	}
	r.Write = false
	if got := r.String(); got != "R@0x1000 core=3" {
		t.Fatalf("Request.String() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if InPackage.String() != "in-package" || OffPackage.String() != "off-package" {
		t.Fatal("Kind.String wrong")
	}
}

func TestOpString(t *testing.T) {
	op := Op{Target: InPackage, Bytes: 64, Class: ClassHitData, Stage: 1, Critical: true}
	if got := op.String(); got != "in-package rd 64B HitData s1 crit" {
		t.Fatalf("Op.String() = %q", got)
	}
}
