// Package alloy implements the Alloy Cache baseline [Qureshi & Loh,
// MICRO'12] with the BEAR bandwidth optimizations [Chou et al., ISCA'15]
// as configured in the paper's evaluation (§5.1.1):
//
//   - direct-mapped, cache-line (64 B) granularity, tags stored alongside
//     data in the in-package DRAM (a tag-and-data, "TAD", unit);
//   - every demand access reads tag+data together: 96 B on the DRAM bus
//     (64 B data + one 32 B burst carrying the tag);
//   - the speculative parallel off-package probe of the original paper is
//     disabled (it wastes scarce off-package bandwidth, §2.1.1) — misses
//     serialize: in-package probe, then off-package fetch;
//   - stochastic replacement à la BEAR: a miss fills the cache only with
//     probability FillProb (1.0 = "Alloy 1", 0.1 = "Alloy 0.1");
//   - BEAR's write-probe optimization: LLC dirty evictions probe with a
//     32 B tag read instead of a full TAD read.
package alloy

import (
	"fmt"
	"math/bits"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
)

// Config sizes the Alloy cache.
type Config struct {
	CapacityBytes int
	FillProb      float64 // stochastic replacement probability
	Seed          uint64
}

// tagBytes is the DRAM burst carrying a TAD's tag: the minimum 32 B
// transfer of the HBM-like link (§2).
const tagBytes = 32

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Alloy is the scheme instance. Not safe for concurrent use.
type Alloy struct {
	name     string
	sets     []line
	mask     uint64
	tagShift uint // precomputed popcount(mask): the tag shift
	rng      *util.RNG
	fillP    float64

	// ops is the scratch buffer reused by every Access (see the
	// ownership note on mc.Result).
	ops []mem.Op

	hits, misses uint64
	fills        uint64
	writebacks   uint64
	tagProbes    uint64
}

// New builds an Alloy cache. Capacity must be a positive multiple of the
// line size; it panics otherwise (setup bug).
func New(cfg Config) *Alloy {
	n := cfg.CapacityBytes / mem.LineBytes
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("alloy: capacity %d must give a power-of-two line count, got %d", cfg.CapacityBytes, n))
	}
	if cfg.FillProb <= 0 || cfg.FillProb > 1 {
		panic(fmt.Sprintf("alloy: fill probability %v out of (0,1]", cfg.FillProb))
	}
	name := "Alloy 1"
	if cfg.FillProb != 1 {
		name = fmt.Sprintf("Alloy %g", cfg.FillProb)
	}
	return &Alloy{
		name:     name,
		sets:     make([]line, n),
		mask:     uint64(n - 1),
		tagShift: uint(bits.OnesCount64(uint64(n - 1))),
		rng:      util.NewRNG(cfg.Seed ^ 0xA110C),
		fillP:    cfg.FillProb,
	}
}

// Name implements mc.Scheme.
func (a *Alloy) Name() string { return a.name }

func (a *Alloy) slot(addr mem.Addr) (*line, uint64) {
	ln := mem.LineNum(addr)
	return &a.sets[ln&a.mask], ln >> a.tagShift
}

// Access implements mc.Scheme.
func (a *Alloy) Access(req mem.Request) mc.Result {
	a.ops = a.ops[:0]
	addr := mem.LineAddr(req.Addr)
	slot, tag := a.slot(addr)
	if req.Eviction {
		return a.eviction(addr, slot, tag)
	}

	// Demand access: one TAD read (tag 32 B + data 64 B) on the critical
	// path. On a hit the 64 B is useful (HitData); on a miss it was
	// speculative (MissData), and the demand line comes from off-package
	// in the next stage.
	if slot.valid && slot.tag == tag {
		a.hits++
		a.ops = append(a.ops,
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassHitData, Stage: 0, Critical: true},
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0, Critical: true, Fused: true},
		)
		return mc.Result{Hit: true, Ops: a.ops}
	}
	a.misses++
	ops := append(a.ops,
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 0, Critical: true},
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0, Critical: true, Fused: true},
		mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 1, Critical: true},
	)
	// Stochastic fill (BEAR): replace only with probability fillP.
	if a.rng.Bool(a.fillP) {
		a.fills++
		if slot.valid && slot.dirty {
			// The victim's data was already read by the TAD probe; it
			// only needs the off-package write-back.
			victim := a.victimAddr(addr, slot.tag)
			ops = append(ops, mem.Op{Target: mem.OffPackage, Addr: victim, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1})
			a.writebacks++
		}
		// Fill writes data + updated tag.
		ops = append(ops,
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Write: true, Class: mem.ClassTag, Stage: 1, Fused: true},
		)
		*slot = line{tag: tag, valid: true}
	}
	a.ops = ops
	return mc.Result{Hit: false, Ops: ops}
}

// victimAddr reconstructs the address of the line currently in the slot
// addressed by addr (same set index, the slot's own tag).
func (a *Alloy) victimAddr(addr mem.Addr, victimTag uint64) mem.Addr {
	set := mem.LineNum(addr) & a.mask
	return mem.LineBase(victimTag<<a.tagShift | set)
}

// eviction handles an LLC dirty write-back: BEAR write probe (32 B tag
// read), then the 64 B data write to whichever DRAM owns the line.
func (a *Alloy) eviction(addr mem.Addr, slot *line, tag uint64) mc.Result {
	a.tagProbes++
	ops := append(a.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: tagBytes, Class: mem.ClassTag, Stage: 0})
	hit := slot.valid && slot.tag == tag
	if hit {
		slot.dirty = true
		ops = append(ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData, Stage: 1})
	} else {
		ops = append(ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1})
	}
	a.ops = ops
	return mc.Result{Hit: hit, Ops: ops}
}

// FillStats implements mc.Scheme.
func (a *Alloy) FillStats(s *stats.Sim) {
	s.Remaps += a.fills
	s.TagProbes += a.tagProbes
}

// Occupancy returns the number of valid lines (diagnostic, tests).
func (a *Alloy) Occupancy() int {
	n := 0
	for i := range a.sets {
		if a.sets[i].valid {
			n++
		}
	}
	return n
}
