package alloy

import (
	"testing"

	"banshee/internal/mem"
)

func newTest(fillP float64) *Alloy {
	return New(Config{CapacityBytes: 1 << 20, FillProb: fillP, Seed: 1})
}

func bytesTo(ops []mem.Op, target mem.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Target == target {
			n += op.Bytes
		}
	}
	return n
}

func TestNames(t *testing.T) {
	if newTest(1).Name() != "Alloy 1" {
		t.Fatal("Alloy 1 name wrong")
	}
	if newTest(0.1).Name() != "Alloy 0.1" {
		t.Fatal("Alloy 0.1 name wrong")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{CapacityBytes: 0, FillProb: 1},
		{CapacityBytes: 3 * 64, FillProb: 1}, // not power-of-two lines
		{CapacityBytes: 1 << 20, FillProb: 0},
		{CapacityBytes: 1 << 20, FillProb: 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Table 1: Alloy hit traffic is 96 B (data + tag), latency ~1x (single
// stage).
func TestHitTraffic(t *testing.T) {
	a := newTest(1)
	a.Access(mem.Request{Addr: 0x1000})        // miss fills
	res := a.Access(mem.Request{Addr: 0x1000}) // hit
	if !res.Hit {
		t.Fatal("expected hit after fill")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 96 {
		t.Fatalf("hit in-package bytes %d, want 96", got)
	}
	if bytesTo(res.Ops, mem.OffPackage) != 0 {
		t.Fatal("hit touched off-package")
	}
	for _, op := range res.Ops {
		if op.Stage != 0 {
			t.Fatal("hit must complete in one stage (~1x latency)")
		}
	}
}

// Table 1: Alloy miss traffic is 96 B speculative + fill; the
// off-package fetch is serialized in stage 1 (the parallel-probe
// optimization is disabled, §5.1.1).
func TestMissTrafficAndSerialization(t *testing.T) {
	a := newTest(1)
	res := a.Access(mem.Request{Addr: 0x2000})
	if res.Hit {
		t.Fatal("cold access hit")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 96+96 { // probe + fill
		t.Fatalf("miss in-package bytes %d, want 192", got)
	}
	var offStage uint8
	for _, op := range res.Ops {
		if op.Target == mem.OffPackage && op.Critical {
			offStage = op.Stage
		}
	}
	if offStage != 1 {
		t.Fatalf("off-package fetch at stage %d, want 1 (serialized)", offStage)
	}
}

func TestStochasticReplacement(t *testing.T) {
	a := newTest(0.1)
	fills := 0
	for i := 0; i < 10000; i++ {
		res := a.Access(mem.Request{Addr: mem.Addr(i) * 64 * (1 << 14)}) // all same set? no: distinct sets
		_ = res
	}
	fills = int(a.fills)
	if fills < 700 || fills > 1300 {
		t.Fatalf("Alloy 0.1 filled %d of 10000 misses, want ~1000", fills)
	}
}

func TestAlwaysReplaceFillsEveryMiss(t *testing.T) {
	a := newTest(1)
	for i := 0; i < 1000; i++ {
		a.Access(mem.Request{Addr: mem.Addr(i * 64)})
	}
	if a.fills != 1000 {
		t.Fatalf("Alloy 1 filled %d of 1000 misses", a.fills)
	}
	if a.Occupancy() != 1000 {
		t.Fatalf("occupancy %d", a.Occupancy())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	a := newTest(1)
	lines := uint64(1 << 20 / 64)
	a.Access(mem.Request{Addr: 0})
	a.Access(mem.Request{Addr: mem.Addr(lines * 64)}) // same set, different tag
	res := a.Access(mem.Request{Addr: 0})
	if res.Hit {
		t.Fatal("direct-mapped conflict did not evict")
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	a := newTest(1)
	lines := uint64(1 << 20 / 64)
	a.Access(mem.Request{Addr: 0})
	// Dirty the line via an eviction write.
	evRes := a.Access(mem.Request{Addr: 0, Write: true, Eviction: true})
	if !evRes.Hit {
		t.Fatal("eviction probe missed resident line")
	}
	// Conflict miss must write the dirty victim back off-package.
	res := a.Access(mem.Request{Addr: mem.Addr(lines * 64)})
	foundWB := false
	for _, op := range res.Ops {
		if op.Target == mem.OffPackage && op.Write && op.Class == mem.ClassReplacement {
			foundWB = true
			if op.Addr != 0 {
				t.Fatalf("writeback addr %#x, want 0", uint64(op.Addr))
			}
		}
	}
	if !foundWB {
		t.Fatal("dirty victim not written back")
	}
}

// BEAR write probe: an eviction pays a 32 B tag probe, not a full TAD
// read.
func TestEvictionProbeTraffic(t *testing.T) {
	a := newTest(1)
	res := a.Access(mem.Request{Addr: 0x9000, Write: true, Eviction: true})
	if res.Hit {
		t.Fatal("eviction hit on empty cache")
	}
	inB := bytesTo(res.Ops, mem.InPackage)
	if inB != 32 {
		t.Fatalf("eviction probe in-package bytes %d, want 32", inB)
	}
	if got := bytesTo(res.Ops, mem.OffPackage); got != 64 {
		t.Fatalf("eviction miss off-package bytes %d, want 64", got)
	}
}

func TestEvictionHitWritesInPackage(t *testing.T) {
	a := newTest(1)
	a.Access(mem.Request{Addr: 0x9000})
	res := a.Access(mem.Request{Addr: 0x9000, Write: true, Eviction: true})
	if !res.Hit {
		t.Fatal("eviction missed resident line")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 32+64 {
		t.Fatalf("eviction hit bytes %d, want 96", got)
	}
}

func TestTrafficClassesOnHit(t *testing.T) {
	a := newTest(1)
	a.Access(mem.Request{Addr: 0x3000})
	res := a.Access(mem.Request{Addr: 0x3000})
	var hitData, tag int
	for _, op := range res.Ops {
		switch op.Class {
		case mem.ClassHitData:
			hitData += op.Bytes
		case mem.ClassTag:
			tag += op.Bytes
		}
	}
	if hitData != 64 || tag != 32 {
		t.Fatalf("hit classes: data %d tag %d, want 64/32", hitData, tag)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []bool {
		a := newTest(0.1)
		var hits []bool
		for i := 0; i < 2000; i++ {
			hits = append(hits, a.Access(mem.Request{Addr: mem.Addr(i%500) * 64}).Hit)
		}
		return hits
	}
	x, y := mk(), mk()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}
