// Package vm models the virtual-memory substrate Banshee's
// software/hardware co-design relies on: page tables whose PTEs carry the
// DRAM-cache mapping extension (cached bit + way bits, §3.2), per-core
// TLBs that may hold stale copies of those bits (the whole point of the
// lazy coherence protocol, §3.4), the OS reverse-mapping mechanism that
// locates all PTEs for a physical frame (including aliases), and the cost
// accounting for TLB shootdowns and page-table update routines.
//
// Address-space convention: workload traces emit virtual addresses.
// Frames are allocated on first touch; the default allocator maps a
// virtual page to an equal-numbered physical frame, which keeps traces
// interpretable, while still exercising the full translate path. Aliases
// can be created explicitly (Alias) to exercise the reverse map.
package vm

import (
	"fmt"

	"banshee/internal/mem"
	"banshee/internal/util"
)

// PTE is a page-table entry with Banshee's 3-bit extension.
type PTE struct {
	VPage uint64 // virtual page number (index in the table)
	Frame uint64 // physical frame number
	Size  mem.PageSize

	// Banshee extension (§3.2). For a 4-way cache, Way needs 2 bits;
	// together with Cached this is the 3-bit PTE/TLB extension the paper
	// describes.
	Cached bool
	Way    uint8

	// next threads the OS reverse map: all PTEs mapping the same frame
	// form an intrusive singly-linked list in insertion order (head and
	// tail live in the page table's reverse index). TLB snapshots copy
	// the field but never follow it.
	next *PTE
}

// Mapping converts the PTE extension to the request-carried form.
func (p *PTE) Mapping() mem.Mapping {
	return mem.Mapping{Known: true, Cached: p.Cached, Way: p.Way}
}

// PageTable maps virtual pages to frames and maintains the OS reverse
// map (frame → all PTEs), which Banshee's PTE-update routine uses to
// find every alias of a physical page (§3.4).
//
// Both directions are open-addressed flat tables (util.Flat64): the
// translate path probes contiguous key arrays instead of chasing the
// runtime map's buckets, and the reverse map threads aliases through
// the PTEs themselves (PTE.next) so a flush's SetCached walk touches no
// auxiliary slices. PTEs are individually allocated, so *PTE handles
// stay stable as the tables grow.
type PageTable struct {
	entries util.Flat64[*PTE]     // vpage → PTE
	reverse util.Flat64[revList]  // frame → intrusive PTE list
	large   util.Flat64[struct{}] // 2 MB-aligned vpages backed by large pages

	revScratch []*PTE // reused by ReverseLookup

	// DefaultLarge makes every translation allocate 2 MB pages (the
	// §5.4.1 "all data resides on large pages" experiment).
	DefaultLarge bool
}

// revList is one frame's reverse-map bucket: the ends of the intrusive
// insertion-order list threaded through PTE.next.
type revList struct {
	head, tail *PTE
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{}
}

// DeclareLargeRegion marks the 2 MB-aligned virtual region containing
// vaddr as backed by a large page; subsequent translations of any page
// in the region return a single 2 MB PTE.
func (pt *PageTable) DeclareLargeRegion(vaddr mem.Addr) {
	pt.large.Put(mem.LargePageNum(vaddr), struct{}{})
}

// IsLarge reports whether vaddr falls in a large-page region. It sits
// on the TLB lookup path, so the common all-4KB case exits on the
// region count alone without hashing.
func (pt *PageTable) IsLarge(vaddr mem.Addr) bool {
	if pt.DefaultLarge {
		return true
	}
	if pt.large.Len() == 0 {
		return false
	}
	_, ok := pt.large.Get(mem.LargePageNum(vaddr))
	return ok
}

// link appends e to its frame's reverse-map list.
func (pt *PageTable) link(e *PTE) {
	l := pt.reverse.Ptr(e.Frame)
	if l.tail == nil {
		l.head, l.tail = e, e
		return
	}
	l.tail.next = e
	l.tail = e
}

// Translate returns the PTE for vaddr, allocating a frame on first
// touch. Large regions translate at 2 MB granularity: the PTE's VPage
// and Frame are then large-page numbers scaled to 4 KB frame units.
func (pt *PageTable) Translate(vaddr mem.Addr) *PTE {
	if pt.IsLarge(vaddr) {
		lp := mem.LargePageNum(vaddr)
		key := lp * mem.PagesPerLargePage // canonical 4 KB-unit index
		if e, ok := pt.entries.Get(key); ok {
			return e
		}
		e := &PTE{VPage: key, Frame: key, Size: mem.Page2M}
		pt.entries.Put(key, e)
		pt.link(e)
		return e
	}
	vp := mem.PageNum(vaddr)
	if e, ok := pt.entries.Get(vp); ok {
		return e
	}
	e := &PTE{VPage: vp, Frame: vp, Size: mem.Page4K}
	pt.entries.Put(vp, e)
	pt.link(e)
	return e
}

// Alias maps an additional virtual page onto an existing frame,
// modelling shared memory. It returns the new PTE. The frame must have
// been allocated already.
func (pt *PageTable) Alias(vpage, frame uint64) (*PTE, error) {
	if _, ok := pt.entries.Get(vpage); ok {
		return nil, fmt.Errorf("vm: vpage %#x already mapped", vpage)
	}
	l, ok := pt.reverse.Get(frame)
	if !ok || l.head == nil {
		return nil, fmt.Errorf("vm: frame %#x not allocated", frame)
	}
	src := l.head
	e := &PTE{VPage: vpage, Frame: frame, Size: src.Size, Cached: src.Cached, Way: src.Way}
	pt.entries.Put(vpage, e)
	pt.link(e)
	return e, nil
}

// ReverseLookup returns all PTEs mapping the given frame, in mapping
// order — the OS reverse-mapping mechanism of §3.4. The returned slice
// is scratch reused by the next call; copy it to keep it.
func (pt *PageTable) ReverseLookup(frame uint64) []*PTE {
	out := pt.revScratch[:0]
	l, _ := pt.reverse.Get(frame)
	for e := l.head; e != nil; e = e.next {
		out = append(out, e)
	}
	pt.revScratch = out
	return out
}

// SetCached updates the DRAM-cache extension bits of every PTE mapping
// frame, returning how many PTEs were touched. This is the core of the
// software PTE-update routine triggered by a tag-buffer flush.
func (pt *PageTable) SetCached(frame uint64, cached bool, way uint8) int {
	l, _ := pt.reverse.Get(frame)
	n := 0
	for e := l.head; e != nil; e = e.next {
		e.Cached = cached
		e.Way = way
		n++
	}
	return n
}

// Len returns the number of PTEs (diagnostic).
func (pt *PageTable) Len() int { return pt.entries.Len() }

// TLB is one core's translation lookaside buffer (fully associative,
// LRU). Sized generously by default; TLB miss *timing* is modeled by the
// simulator via WalkCycles. An index map makes the (hot) hit path O(1)
// instead of a scan over all entries; the LRU victim scan only runs on
// misses.
//
// Entry state is struct-of-arrays: the PTE snapshots (which model stale
// TLB contents — copies, not pointers into the page table) and the
// vpage keys live in parallel slices, and recency is an intrusive
// doubly-linked MRU list (next/prev slot indices) instead of the old
// per-entry stamps — the same total order, so the evicted entry is
// always the exact LRU one, but the miss path pops the list tail in
// O(1) instead of scanning every entry for the minimal stamp. Entries
// are only invalidated wholesale (Flush), so the valid entries always
// form the prefix [0, filled) and no per-entry valid bit exists: while
// the TLB is not yet full the victim is simply the fill frontier,
// exactly the first-invalid slot the old scan found.
type TLB struct {
	vpages     []uint64
	ptes       []PTE // snapshots, not pointers: model stale TLB contents
	next, prev []int32
	head, tail int32 // MRU and LRU ends of the recency list
	filled     int
	index      util.Flat64[int32] // vpage key → slot, mirrors entries [0, filled)

	Hits, Misses uint64
	Shootdowns   uint64
}

// NewTLB returns a TLB with n entries. n must be positive.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic(fmt.Sprintf("vm: TLB size must be positive, got %d", n))
	}
	return &TLB{
		vpages: make([]uint64, n),
		ptes:   make([]PTE, n),
		next:   make([]int32, n),
		prev:   make([]int32, n),
		head:   -1,
		tail:   -1,
		index:  *util.NewFlat64[int32](n),
	}
}

// touch moves slot i to the MRU end of the recency list.
func (t *TLB) touch(i int32) {
	if t.head == i {
		return
	}
	// Unlink (i is not head, so it has a predecessor).
	p, n := t.prev[i], t.next[i]
	t.next[p] = n
	if n >= 0 {
		t.prev[n] = p
	} else {
		t.tail = p
	}
	// Push front.
	t.prev[i] = -1
	t.next[i] = t.head
	t.prev[t.head] = i
	t.head = i
}

// pushFront links a fresh slot at the MRU end.
func (t *TLB) pushFront(i int32) {
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head >= 0 {
		t.prev[t.head] = i
	} else {
		t.tail = i
	}
	t.head = i
}

func (t *TLB) keyFor(vaddr mem.Addr, pt *PageTable) uint64 {
	if pt.IsLarge(vaddr) {
		return mem.LargePageNum(vaddr)*mem.PagesPerLargePage | 1<<63 // disambiguate sizes
	}
	return mem.PageNum(vaddr)
}

// Lookup translates vaddr through the TLB, filling from the page table
// on a miss. It returns the (possibly stale) PTE snapshot and whether
// the translation hit in the TLB.
func (t *TLB) Lookup(vaddr mem.Addr, pt *PageTable) (PTE, bool) {
	key := t.keyFor(vaddr, pt)
	if i, ok := t.index.Get(key); ok {
		t.touch(i)
		t.Hits++
		return t.ptes[i], true
	}
	t.Misses++
	pte := *pt.Translate(vaddr) // snapshot the current PTE content
	var victim int32
	if t.filled < len(t.vpages) {
		victim = int32(t.filled) // the first free slot, as the old scan found
		t.filled++
		t.pushFront(victim)
	} else {
		victim = t.tail // exact LRU, as the old stamp scan found
		t.index.Delete(t.vpages[victim])
		t.touch(victim)
	}
	t.vpages[victim] = key
	t.ptes[victim] = pte
	t.index.Put(key, victim)
	return pte, false
}

// Flush invalidates every entry (a TLB shootdown's effect on this core).
func (t *TLB) Flush() {
	t.Shootdowns++
	t.filled = 0
	t.head, t.tail = -1, -1
	t.index.Clear()
}

// Occupancy returns the number of valid entries (diagnostic).
func (t *TLB) Occupancy() int { return t.filled }

// CostModel holds the software-cost parameters of §5.1 (Table 3),
// already converted to CPU cycles by the caller.
type CostModel struct {
	PTEUpdateCycles      uint64 // whole tag-buffer flush routine (20 µs default)
	ShootdownInitiator   uint64 // 4 µs default
	ShootdownSlave       uint64 // 1 µs default
	PageWalkCycles       uint64 // TLB miss penalty
	LargePageWalkCycles  uint64 // usually smaller (fewer levels); 0 = same as 4 KB
	PerPTETouchCycles    uint64 // incremental cost per PTE updated in a flush
	SoftwareEpochOverlap bool   // if true, routine overlaps with execution (idealization)
}

// DefaultCostModel returns the paper's Table 3 costs at the given clock.
func DefaultCostModel(cpuMHz float64) CostModel {
	us := func(n float64) uint64 { return uint64(n * cpuMHz) } // µs × MHz = cycles
	return CostModel{
		PTEUpdateCycles:    us(20),
		ShootdownInitiator: us(4),
		ShootdownSlave:     us(1),
		PageWalkCycles:     100,
		PerPTETouchCycles:  30,
	}
}
