// Package vm models the virtual-memory substrate Banshee's
// software/hardware co-design relies on: page tables whose PTEs carry the
// DRAM-cache mapping extension (cached bit + way bits, §3.2), per-core
// TLBs that may hold stale copies of those bits (the whole point of the
// lazy coherence protocol, §3.4), the OS reverse-mapping mechanism that
// locates all PTEs for a physical frame (including aliases), and the cost
// accounting for TLB shootdowns and page-table update routines.
//
// Address-space convention: workload traces emit virtual addresses.
// Frames are allocated on first touch; the default allocator maps a
// virtual page to an equal-numbered physical frame, which keeps traces
// interpretable, while still exercising the full translate path. Aliases
// can be created explicitly (Alias) to exercise the reverse map.
package vm

import (
	"fmt"

	"banshee/internal/mem"
)

// PTE is a page-table entry with Banshee's 3-bit extension.
type PTE struct {
	VPage uint64 // virtual page number (index in the table)
	Frame uint64 // physical frame number
	Size  mem.PageSize

	// Banshee extension (§3.2). For a 4-way cache, Way needs 2 bits;
	// together with Cached this is the 3-bit PTE/TLB extension the paper
	// describes.
	Cached bool
	Way    uint8
}

// Mapping converts the PTE extension to the request-carried form.
func (p *PTE) Mapping() mem.Mapping {
	return mem.Mapping{Known: true, Cached: p.Cached, Way: p.Way}
}

// PageTable maps virtual pages to frames and maintains the OS reverse
// map (frame → all PTEs), which Banshee's PTE-update routine uses to
// find every alias of a physical page (§3.4).
type PageTable struct {
	entries map[uint64]*PTE   // vpage → PTE
	reverse map[uint64][]*PTE // frame → PTEs mapping it
	large   map[uint64]bool   // vpages (2 MB-aligned) backed by large pages

	// DefaultLarge makes every translation allocate 2 MB pages (the
	// §5.4.1 "all data resides on large pages" experiment).
	DefaultLarge bool
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{
		entries: make(map[uint64]*PTE),
		reverse: make(map[uint64][]*PTE),
		large:   make(map[uint64]bool),
	}
}

// DeclareLargeRegion marks the 2 MB-aligned virtual region containing
// vaddr as backed by a large page; subsequent translations of any page
// in the region return a single 2 MB PTE.
func (pt *PageTable) DeclareLargeRegion(vaddr mem.Addr) {
	pt.large[mem.LargePageNum(vaddr)] = true
}

// IsLarge reports whether vaddr falls in a large-page region, declaring
// the region first when DefaultLarge is set.
func (pt *PageTable) IsLarge(vaddr mem.Addr) bool {
	if pt.DefaultLarge {
		pt.large[mem.LargePageNum(vaddr)] = true
		return true
	}
	return pt.large[mem.LargePageNum(vaddr)]
}

// Translate returns the PTE for vaddr, allocating a frame on first
// touch. Large regions translate at 2 MB granularity: the PTE's VPage
// and Frame are then large-page numbers scaled to 4 KB frame units.
func (pt *PageTable) Translate(vaddr mem.Addr) *PTE {
	if pt.IsLarge(vaddr) {
		lp := mem.LargePageNum(vaddr)
		key := lp * mem.PagesPerLargePage // canonical 4 KB-unit index
		if e, ok := pt.entries[key]; ok {
			return e
		}
		e := &PTE{VPage: key, Frame: key, Size: mem.Page2M}
		pt.entries[key] = e
		pt.reverse[e.Frame] = append(pt.reverse[e.Frame], e)
		return e
	}
	vp := mem.PageNum(vaddr)
	if e, ok := pt.entries[vp]; ok {
		return e
	}
	e := &PTE{VPage: vp, Frame: vp, Size: mem.Page4K}
	pt.entries[vp] = e
	pt.reverse[e.Frame] = append(pt.reverse[e.Frame], e)
	return e
}

// Alias maps an additional virtual page onto an existing frame,
// modelling shared memory. It returns the new PTE. The frame must have
// been allocated already.
func (pt *PageTable) Alias(vpage, frame uint64) (*PTE, error) {
	if _, ok := pt.entries[vpage]; ok {
		return nil, fmt.Errorf("vm: vpage %#x already mapped", vpage)
	}
	if len(pt.reverse[frame]) == 0 {
		return nil, fmt.Errorf("vm: frame %#x not allocated", frame)
	}
	src := pt.reverse[frame][0]
	e := &PTE{VPage: vpage, Frame: frame, Size: src.Size, Cached: src.Cached, Way: src.Way}
	pt.entries[vpage] = e
	pt.reverse[frame] = append(pt.reverse[frame], e)
	return e, nil
}

// ReverseLookup returns all PTEs mapping the given frame — the OS
// reverse-mapping mechanism of §3.4.
func (pt *PageTable) ReverseLookup(frame uint64) []*PTE {
	return pt.reverse[frame]
}

// SetCached updates the DRAM-cache extension bits of every PTE mapping
// frame, returning how many PTEs were touched. This is the core of the
// software PTE-update routine triggered by a tag-buffer flush.
func (pt *PageTable) SetCached(frame uint64, cached bool, way uint8) int {
	ptes := pt.reverse[frame]
	for _, e := range ptes {
		e.Cached = cached
		e.Way = way
	}
	return len(ptes)
}

// Len returns the number of PTEs (diagnostic).
func (pt *PageTable) Len() int { return len(pt.entries) }

// tlbEntry is a cached PTE snapshot: the mapping bits are copies and can
// go stale relative to the page table — exactly the staleness Banshee's
// tag buffer tolerates.
type tlbEntry struct {
	vpage uint64
	pte   PTE // snapshot, not pointer: models stale TLB contents
	stamp uint64
	valid bool
}

// TLB is one core's translation lookaside buffer (fully associative,
// LRU). Sized generously by default; TLB miss *timing* is modeled by the
// simulator via WalkCycles. An index map makes the (hot) hit path O(1)
// instead of a scan over all entries; the LRU victim scan only runs on
// misses, which the modeled hit rate makes rare.
type TLB struct {
	entries []tlbEntry
	index   map[uint64]int // vpage key → slot, mirrors valid entries
	tick    uint64

	Hits, Misses uint64
	Shootdowns   uint64
}

// NewTLB returns a TLB with n entries. n must be positive.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic(fmt.Sprintf("vm: TLB size must be positive, got %d", n))
	}
	return &TLB{entries: make([]tlbEntry, n), index: make(map[uint64]int, n)}
}

func (t *TLB) keyFor(vaddr mem.Addr, pt *PageTable) uint64 {
	if pt.IsLarge(vaddr) {
		return mem.LargePageNum(vaddr)*mem.PagesPerLargePage | 1<<63 // disambiguate sizes
	}
	return mem.PageNum(vaddr)
}

// Lookup translates vaddr through the TLB, filling from the page table
// on a miss. It returns the (possibly stale) PTE snapshot and whether
// the translation hit in the TLB.
func (t *TLB) Lookup(vaddr mem.Addr, pt *PageTable) (PTE, bool) {
	t.tick++
	key := t.keyFor(vaddr, pt)
	if i, ok := t.index[key]; ok {
		t.entries[i].stamp = t.tick
		t.Hits++
		return t.entries[i].pte, true
	}
	t.Misses++
	pte := *pt.Translate(vaddr) // snapshot the current PTE content
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].stamp < t.entries[victim].stamp {
			victim = i
		}
	}
	if t.entries[victim].valid {
		delete(t.index, t.entries[victim].vpage)
	}
	t.entries[victim] = tlbEntry{vpage: key, pte: pte, stamp: t.tick, valid: true}
	t.index[key] = victim
	return pte, false
}

// Flush invalidates every entry (a TLB shootdown's effect on this core).
func (t *TLB) Flush() {
	t.Shootdowns++
	for i := range t.entries {
		t.entries[i].valid = false
	}
	clear(t.index)
}

// Occupancy returns the number of valid entries (diagnostic).
func (t *TLB) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// CostModel holds the software-cost parameters of §5.1 (Table 3),
// already converted to CPU cycles by the caller.
type CostModel struct {
	PTEUpdateCycles      uint64 // whole tag-buffer flush routine (20 µs default)
	ShootdownInitiator   uint64 // 4 µs default
	ShootdownSlave       uint64 // 1 µs default
	PageWalkCycles       uint64 // TLB miss penalty
	LargePageWalkCycles  uint64 // usually smaller (fewer levels); 0 = same as 4 KB
	PerPTETouchCycles    uint64 // incremental cost per PTE updated in a flush
	SoftwareEpochOverlap bool   // if true, routine overlaps with execution (idealization)
}

// DefaultCostModel returns the paper's Table 3 costs at the given clock.
func DefaultCostModel(cpuMHz float64) CostModel {
	us := func(n float64) uint64 { return uint64(n * cpuMHz) } // µs × MHz = cycles
	return CostModel{
		PTEUpdateCycles:    us(20),
		ShootdownInitiator: us(4),
		ShootdownSlave:     us(1),
		PageWalkCycles:     100,
		PerPTETouchCycles:  30,
	}
}
