package vm

import (
	"testing"
	"testing/quick"

	"banshee/internal/mem"
)

func TestTranslateAllocatesOnFirstTouch(t *testing.T) {
	pt := NewPageTable()
	e := pt.Translate(0x123456789)
	if e == nil || e.Size != mem.Page4K {
		t.Fatalf("bad PTE %+v", e)
	}
	if e.Frame != mem.PageNum(0x123456789) {
		t.Fatalf("identity frame expected, got %#x", e.Frame)
	}
	// Second translation returns the same PTE.
	if pt.Translate(0x123456789) != e {
		t.Fatal("translate not idempotent")
	}
	if pt.Translate(0x123456000) != e {
		t.Fatal("same page, different offset gave different PTE")
	}
	if pt.Len() != 1 {
		t.Fatalf("len = %d", pt.Len())
	}
}

func TestLargeRegionTranslation(t *testing.T) {
	pt := NewPageTable()
	a := mem.Addr(0x40000000) // 2 MB aligned
	pt.DeclareLargeRegion(a)
	e1 := pt.Translate(a)
	e2 := pt.Translate(a + mem.PageBytes*100) // different 4 KB page, same 2 MB region
	if e1 != e2 {
		t.Fatal("large region gave distinct PTEs within one 2 MB page")
	}
	if e1.Size != mem.Page2M {
		t.Fatal("large PTE has wrong size")
	}
	// Outside the region: regular 4 KB.
	e3 := pt.Translate(a + mem.LargeBytes)
	if e3.Size != mem.Page4K {
		t.Fatal("neighboring region inherited large size")
	}
}

func TestDefaultLarge(t *testing.T) {
	pt := NewPageTable()
	pt.DefaultLarge = true
	if pt.Translate(0x1234).Size != mem.Page2M {
		t.Fatal("DefaultLarge not applied")
	}
	if !pt.IsLarge(0x999999999) {
		t.Fatal("IsLarge false under DefaultLarge")
	}
}

func TestReverseMapping(t *testing.T) {
	pt := NewPageTable()
	e := pt.Translate(0x5000)
	ptes := pt.ReverseLookup(e.Frame)
	if len(ptes) != 1 || ptes[0] != e {
		t.Fatalf("reverse lookup = %v", ptes)
	}
}

func TestAliasing(t *testing.T) {
	pt := NewPageTable()
	e := pt.Translate(0x7000)
	alias, err := pt.Alias(0xABC, e.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if alias.Frame != e.Frame {
		t.Fatal("alias maps to wrong frame")
	}
	// Reverse map must see both (the §3.4 aliasing case TDC cannot
	// handle but reverse mapping can).
	if len(pt.ReverseLookup(e.Frame)) != 2 {
		t.Fatal("reverse map missed alias")
	}
	// SetCached must update both PTEs.
	if n := pt.SetCached(e.Frame, true, 3); n != 2 {
		t.Fatalf("SetCached touched %d PTEs, want 2", n)
	}
	if !e.Cached || e.Way != 3 || !alias.Cached || alias.Way != 3 {
		t.Fatal("extension bits not propagated to all aliases")
	}
}

func TestAliasErrors(t *testing.T) {
	pt := NewPageTable()
	e := pt.Translate(0x1000)
	if _, err := pt.Alias(mem.PageNum(0x1000), e.Frame); err == nil {
		t.Fatal("aliasing an existing vpage must fail")
	}
	if _, err := pt.Alias(0xFFF, 0xDEAD); err == nil {
		t.Fatal("aliasing an unallocated frame must fail")
	}
}

func TestSetCachedUnknownFrame(t *testing.T) {
	pt := NewPageTable()
	if n := pt.SetCached(0xDEAD, true, 0); n != 0 {
		t.Fatalf("SetCached on unknown frame touched %d", n)
	}
}

func TestPTEMapping(t *testing.T) {
	e := &PTE{Cached: true, Way: 2}
	m := e.Mapping()
	if !m.Known || !m.Cached || m.Way != 2 {
		t.Fatalf("mapping = %+v", m)
	}
}

func TestTLBHitMiss(t *testing.T) {
	pt := NewPageTable()
	tlb := NewTLB(4)
	_, hit := tlb.Lookup(0x1000, pt)
	if hit {
		t.Fatal("cold TLB hit")
	}
	_, hit = tlb.Lookup(0x1040, pt) // same page
	if !hit {
		t.Fatal("TLB missed after fill")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBCapacityLRU(t *testing.T) {
	pt := NewPageTable()
	tlb := NewTLB(2)
	tlb.Lookup(0x1000, pt)
	tlb.Lookup(0x2000, pt)
	tlb.Lookup(0x1000, pt) // refresh page 1
	tlb.Lookup(0x3000, pt) // evicts page 2
	if _, hit := tlb.Lookup(0x1000, pt); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := tlb.Lookup(0x2000, pt); hit {
		t.Fatal("LRU entry survived")
	}
}

func TestTLBStaleness(t *testing.T) {
	// The essence of Banshee's lazy coherence: a TLB entry is a
	// snapshot, so a PTE update is invisible until a shootdown.
	pt := NewPageTable()
	tlb := NewTLB(8)
	e, _ := tlb.Lookup(0x4000, pt)
	if e.Cached {
		t.Fatal("fresh PTE marked cached")
	}
	frame := mem.PageNum(0x4000)
	pt.SetCached(frame, true, 1)
	stale, hit := tlb.Lookup(0x4000, pt)
	if !hit {
		t.Fatal("expected TLB hit")
	}
	if stale.Cached {
		t.Fatal("TLB saw PTE update without shootdown — not a snapshot")
	}
	tlb.Flush()
	fresh, hit := tlb.Lookup(0x4000, pt)
	if hit {
		t.Fatal("hit after flush")
	}
	if !fresh.Cached || fresh.Way != 1 {
		t.Fatal("reload after shootdown did not see updated PTE")
	}
	if tlb.Shootdowns != 1 {
		t.Fatalf("shootdowns = %d", tlb.Shootdowns)
	}
}

func TestTLBLargePageKey(t *testing.T) {
	pt := NewPageTable()
	pt.DeclareLargeRegion(0x40000000)
	tlb := NewTLB(4)
	tlb.Lookup(0x40000000, pt)
	// Any 4 KB page in the same 2 MB region must hit the same entry.
	if _, hit := tlb.Lookup(0x40000000+mem.PageBytes*17, pt); !hit {
		t.Fatal("large-page TLB entry not shared across the region")
	}
}

func TestTLBOccupancy(t *testing.T) {
	pt := NewPageTable()
	tlb := NewTLB(4)
	if tlb.Occupancy() != 0 {
		t.Fatal("fresh TLB not empty")
	}
	for i := 0; i < 10; i++ {
		tlb.Lookup(mem.Addr(i)<<mem.PageOffsetBits, pt)
	}
	if tlb.Occupancy() != 4 {
		t.Fatalf("occupancy %d, want 4", tlb.Occupancy())
	}
	tlb.Flush()
	if tlb.Occupancy() != 0 {
		t.Fatal("flush left entries valid")
	}
}

func TestNewTLBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0) did not panic")
		}
	}()
	NewTLB(0)
}

func TestDefaultCostModel(t *testing.T) {
	c := DefaultCostModel(2700)
	if c.PTEUpdateCycles != 54000 { // 20 µs × 2700 MHz
		t.Fatalf("PTE update cycles = %d, want 54000", c.PTEUpdateCycles)
	}
	if c.ShootdownInitiator != 10800 || c.ShootdownSlave != 2700 {
		t.Fatalf("shootdown costs = %d/%d", c.ShootdownInitiator, c.ShootdownSlave)
	}
}

func TestTranslationIdentityProperty(t *testing.T) {
	// Property: translating any two addresses on the same 4 KB page
	// yields the same PTE; on different pages, different PTEs.
	f := func(a, b uint64) bool {
		pt := NewPageTable()
		aa := mem.Addr(a % (1 << 44))
		bb := mem.Addr(b % (1 << 44))
		ea, eb := pt.Translate(aa), pt.Translate(bb)
		if mem.PageNum(aa) == mem.PageNum(bb) {
			return ea == eb
		}
		return ea != eb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
