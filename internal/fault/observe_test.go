package fault

import (
	"context"
	"errors"
	"strings"
	"testing"

	"banshee/internal/obs"
	"banshee/internal/runner"
	"banshee/internal/stats"
)

// TestInjectedCounts: each fired fault tallies exactly once under its
// mode, and Instrument exposes the tallies as labeled counters. The
// counters are process-global, so assertions are delta-based.
func TestInjectedCounts(t *testing.T) {
	in := New(Plan{ErrRate: 1})
	run := in.Runner(func(ctx context.Context, job runner.Job) (stats.Sim, error) {
		return stats.Sim{}, nil
	})
	before := InjectedCount(Err)
	_, err := run(context.Background(), runner.Job{ID: "job-a"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if got := InjectedCount(Err); got != before+1 {
		t.Errorf("InjectedCount(Err) = %d, want %d", got, before+1)
	}

	r := obs.NewRegistry()
	Instrument(r)
	snap := r.Snapshot()
	if got := uint64(snap[`banshee_faults_injected_total{mode="err"}`]); got != before+1 {
		t.Errorf(`banshee_faults_injected_total{mode="err"} = %d, want %d`, got, before+1)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `banshee_faults_injected_total{mode="panic"}`) {
		t.Error("panic-mode series missing from exposition")
	}
}

// TestInjectedCountsPerLayer: source and writer wrap sites tally too.
func TestInjectedCountsPerLayer(t *testing.T) {
	in := New(Plan{ShortRate: 1, FaultAfter: 1})
	before := InjectedCount(Short)
	w := in.Writer(&strings.Builder{}, "ckpt")
	if _, err := w.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v, want ErrInjected", err)
	}
	if got := InjectedCount(Short); got != before+1 {
		t.Errorf("InjectedCount(Short) = %d, want %d", got, before+1)
	}
}
