package fault_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"banshee/internal/fault"
	"banshee/internal/runner"
	"banshee/internal/stats"
	"banshee/internal/trace"
	"banshee/internal/tracefile"
	"banshee/internal/workload"
)

// keyWithMode scans for a subject key that draws the wanted mode under
// the injector — deterministic victim selection for the unit tests.
func keyWithMode(t *testing.T, in *fault.Injector, want fault.Mode) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("probe-%d", i)
		if in.ModeFor(key) == want {
			return key
		}
	}
	t.Fatalf("no key draws mode %s in 10k probes", want)
	return ""
}

// TestModeForDeterministic: fault decisions are a pure function of
// (plan seed, key) — same inputs, same mode, on any machine — and the
// drawn rates land near the plan's over many keys.
func TestModeForDeterministic(t *testing.T) {
	p := fault.Plan{Seed: 7, PanicRate: 0.1, ErrRate: 0.2, StallRate: 0.1, ShortRate: 0.1}
	a, b := fault.New(p), fault.New(p)
	counts := map[fault.Mode]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("job-%d", i)
		m := a.ModeFor(key)
		if m != b.ModeFor(key) {
			t.Fatalf("key %s: two injectors with one plan disagree", key)
		}
		counts[m]++
	}
	for _, c := range []struct {
		mode fault.Mode
		rate float64
	}{{fault.Panic, 0.1}, {fault.Err, 0.2}, {fault.Stall, 0.1}, {fault.Short, 0.1}, {fault.None, 0.5}} {
		got := float64(counts[c.mode]) / n
		if got < c.rate-0.03 || got > c.rate+0.03 {
			t.Errorf("mode %s drawn at %.3f, plan says %.2f", c.mode, got, c.rate)
		}
	}
	// A different seed must select different victims.
	c := fault.New(fault.Plan{Seed: 8, PanicRate: 0.1, ErrRate: 0.2, StallRate: 0.1, ShortRate: 0.1})
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("job-%d", i)
		if a.ModeFor(key) != c.ModeFor(key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the plan seed changed no decisions")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := fault.ParsePlan("panic=0.05,err=0.1,stall=0.2,short=0.3,stallms=2.5,after=64,attempts=2,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Plan{Seed: 9, PanicRate: 0.05, ErrRate: 0.1, StallRate: 0.2, ShortRate: 0.3,
		Stall: 2500 * time.Microsecond, FailAttempts: 2, FaultAfter: 64}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if p, err := fault.ParsePlan(""); err != nil || p != (fault.Plan{}) {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"panic", "panic=2", "panic=x", "stallms=-1", "after=0", "attempts=-1", "seed=x", "bogus=1"} {
		if _, err := fault.ParsePlan(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestRunnerInjection: the JobRunner wrapper turns each drawn mode into
// the matching failure shape, transient budgets expire, and survivors
// pass through to the inner runner untouched.
func TestRunnerInjection(t *testing.T) {
	inner := func(ctx context.Context, job runner.Job) (stats.Sim, error) {
		return stats.Sim{Cycles: 42}, nil
	}
	in := fault.New(fault.Plan{Seed: 3, PanicRate: 0.2, ErrRate: 0.2, StallRate: 0.2, Stall: time.Microsecond})
	wrapped := in.Runner(inner)

	errKey := keyWithMode(t, in, fault.Err)
	if _, err := wrapped(context.Background(), runner.Job{ID: errKey}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Err-mode job returned %v, want ErrInjected", err)
	}

	panicKey := keyWithMode(t, in, fault.Panic)
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
				t.Fatalf("Panic-mode job recovered %v", r)
			}
		}()
		wrapped(context.Background(), runner.Job{ID: panicKey})
		t.Fatal("Panic-mode job returned normally")
	}()

	for _, key := range []string{keyWithMode(t, in, fault.Stall), keyWithMode(t, in, fault.None)} {
		st, err := wrapped(context.Background(), runner.Job{ID: key})
		if err != nil || st.Cycles != 42 {
			t.Fatalf("key %s (mode %s): got (%d, %v), want inner's result", key, in.ModeFor(key), st.Cycles, err)
		}
	}

	// A stalled job must still honor cancellation.
	slow := fault.New(fault.Plan{Seed: 3, StallRate: 1, Stall: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := slow.Runner(inner)(ctx, runner.Job{ID: "x"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stall returned %v", err)
	}

	// Transient plans fault exactly FailAttempts times per key.
	tr := fault.New(fault.Plan{Seed: 3, ErrRate: 1, FailAttempts: 2})
	trKey := "transient"
	trw := tr.Runner(inner)
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := trw(context.Background(), runner.Job{ID: trKey}); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("attempt %d: want injected error, got %v", attempt, err)
		}
	}
	if st, err := trw(context.Background(), runner.Job{ID: trKey}); err != nil || st.Cycles != 42 {
		t.Fatalf("attempt 3 past transient budget: got (%d, %v)", st.Cycles, err)
	}
}

var chaosCfg = workload.Config{Cores: 2, Seed: 5, Scale: 1e-4, Intensity: 1}

// TestFaultWorkloadErr: the "fault:" workload kind wraps an inner
// source with a latched decode error — the same failure surface a
// corrupt .btrc replay presents to the simulator.
func TestFaultWorkloadErr(t *testing.T) {
	src, err := workload.Open("fault:err=1,after=50:pagerank", chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "pagerank" {
		t.Fatalf("wrapper changed the name to %q", src.Name())
	}
	es, ok := src.(interface{ Err() error })
	if !ok {
		t.Fatal("fault source lacks the Err surface the simulator polls")
	}
	for i := 0; i < 100; i++ {
		src.Next(0)
	}
	if err := es.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("after 100 events: Err() = %v, want latched ErrInjected", err)
	}
	if e := src.Next(0); e != (trace.Event{}) {
		t.Fatal("latched source still emits events")
	}
}

// TestFaultWorkloadPanic: panic mode fires mid-stream, inside whatever
// is driving the source — the engine's supervision is what contains it.
func TestFaultWorkloadPanic(t *testing.T) {
	src, err := workload.Open("fault:panic=1,after=50:pagerank", chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
			t.Fatalf("recovered %v", r)
		}
	}()
	for i := 0; i < 100; i++ {
		src.Next(0)
	}
	t.Fatal("panic-mode source survived 100 events")
}

func TestFaultWorkloadBadSpecs(t *testing.T) {
	for _, name := range []string{"fault:pagerank", "fault:panic=1:", "fault:panic=2:pagerank", "fault:err=1:nosuchworkload"} {
		if _, err := workload.Open(name, chaosCfg); err == nil {
			t.Errorf("workload %q opened without error", name)
		}
	}
}

// TestSourceUnwrappedWhenClean: keys that draw no source-applicable
// mode get the inner source back, not a wrapper.
func TestSourceUnwrappedWhenClean(t *testing.T) {
	src, err := workload.Open("pagerank", chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Plan{ShortRate: 1}) // writer-only mode
	if got := in.Source(src, "k"); got != src {
		t.Fatal("Short-mode key wrapped a source")
	}
}

// TestWriterTearAndError: Short mode delivers half the bytes then
// errors — the torn checkpoint tail — and Err mode fails the write
// outright; both wrap ErrInjected.
func TestWriterTearAndError(t *testing.T) {
	var buf bytes.Buffer
	short := fault.New(fault.Plan{ShortRate: 1, FaultAfter: 1})
	w := short.Writer(&buf, "sink")
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("short write error = %v", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Fatalf("torn write delivered %d bytes (%q), want half", n, buf.String())
	}
	// The tear fires once; later writes pass through.
	if _, err := w.Write([]byte("ab")); err != nil || !strings.HasSuffix(buf.String(), "ab") {
		t.Fatalf("post-tear write failed: %v (%q)", err, buf.String())
	}

	buf.Reset()
	hard := fault.New(fault.Plan{ErrRate: 1, FaultAfter: 1})
	if _, err := hard.Writer(&buf, "sink").Write([]byte("xyz")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err-mode write error = %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("err-mode write leaked %d bytes", buf.Len())
	}

	// Writer-inapplicable modes return w unwrapped.
	clean := fault.New(fault.Plan{PanicRate: 1})
	if got := clean.Writer(&buf, "k"); got != any(&buf) {
		t.Fatal("panic-mode key wrapped a writer")
	}
}

// TestReaderAtBitFlip is the .btrc corruption contract: a single
// injected bit flip anywhere in the file must surface as an error —
// or, if it lands in bytes the format ignores, leave the replay
// bit-identical. Silent corruption of the event stream is the one
// outcome that must never happen.
func TestReaderAtBitFlip(t *testing.T) {
	src, err := workload.Open("pagerank", chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	const perCore = 1500
	var rec bytes.Buffer
	tw, err := tracefile.NewWriter(&rec, tracefile.Meta{Name: src.Name(), Cores: src.Cores(), Footprint: src.Footprint()})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < perCore; e++ {
		for c := 0; c < src.Cores(); c++ {
			if err := tw.Append(c, src.Next(c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	data := rec.Bytes()

	caught := 0
	const trials = 24
	for seed := uint64(0); seed < trials; seed++ {
		in := fault.New(fault.Plan{Seed: seed, ErrRate: 1})
		fr := in.ReaderAt(bytes.NewReader(data), int64(len(data)), "trace")
		r, err := tracefile.NewReader(fr, int64(len(data)))
		if err != nil {
			caught++ // flip landed in the header or index
			continue
		}
		cleanR, err := tracefile.NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		mismatch := false
		for e := 0; e < perCore; e++ {
			for c := 0; c < chaosCfg.Cores; c++ {
				if r.Next(c) != cleanR.Next(c) {
					mismatch = true
				}
			}
		}
		if r.Err() != nil {
			caught++ // flip landed in a chunk; its CRC latched an error
			continue
		}
		if mismatch {
			t.Fatalf("seed %d: bit flip silently altered the replayed events", seed)
		}
	}
	if caught == 0 {
		t.Fatalf("no flip was caught in %d trials (injector not firing?)", trials)
	}
	t.Logf("caught %d/%d injected flips; rest were bit-identical", caught, trials)
}
