package netfault

import (
	"fmt"
	"sync/atomic"

	"banshee/internal/obs"
)

// injected counts network faults that actually fired, by mode, across
// every Transport and Proxy in the process — mirrors fault.injected:
// a chaos run is one experiment, so the audit trail is process-wide.
var injected [nModes]atomic.Uint64

// record tallies one fired network fault of mode m.
func record(m Mode) {
	if m > None && m < nModes {
		injected[m].Add(1)
	}
}

// InjectedCount returns how many network faults of mode m have fired
// in this process.
func InjectedCount(m Mode) uint64 {
	if m <= None || m >= nModes {
		return 0
	}
	return injected[m].Load()
}

// InjectedTotal returns how many network faults of any mode have
// fired in this process.
func InjectedTotal() uint64 {
	var n uint64
	for m := None + 1; m < nModes; m++ {
		n += injected[m].Load()
	}
	return n
}

// Instrument exposes the injection tallies on r as
// banshee_net_faults_injected_total{mode=...}. Idempotent, like all
// registry registration.
func Instrument(r *obs.Registry) {
	for m := None + 1; m < nModes; m++ {
		m := m
		r.CounterFunc(
			fmt.Sprintf("banshee_net_faults_injected_total{mode=%q}", m.String()),
			"injected network faults fired, by mode",
			func() float64 { return float64(injected[m].Load()) })
	}
}
