package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"banshee/internal/obs"
)

// forceMode builds a transport whose every decision draws mode m.
func forceMode(m Mode, inner http.RoundTripper) *Transport {
	p := Plan{Seed: 1}
	switch m {
	case DropReq:
		p.DropReqRate = 1
	case DropResp:
		p.DropRespRate = 1
	case Truncate:
		p.TruncateRate = 1
	case Latency:
		p.LatencyRate = 1
	case Err5xx:
		p.Err5xxRate = 1
	case Duplicate:
		p.DuplicateRate = 1
	}
	return NewTransport(p, inner)
}

// TestModeForDeterministicAndDistributed: the decision function is a
// pure hash (same inputs, same mode; different seeds decorrelate) and
// at a 10% total rate roughly 10% of keys draw a fault.
func TestModeForDeterministicAndDistributed(t *testing.T) {
	plan := Plan{Seed: 42, DropReqRate: 0.02, DropRespRate: 0.02,
		TruncateRate: 0.02, Err5xxRate: 0.02, DuplicateRate: 0.02}
	a := NewTransport(plan, nil)
	b := NewTransport(plan, nil)
	faults := 0
	const trials = 4000
	for i := range trials {
		m := a.ModeFor("POST", "/v1/workers/result", uint64(i))
		if m != b.ModeFor("POST", "/v1/workers/result", uint64(i)) {
			t.Fatalf("attempt %d: decision not deterministic", i)
		}
		if m != None {
			faults++
		}
	}
	got := float64(faults) / trials
	if got < 0.05 || got > 0.18 {
		t.Fatalf("fault rate %.3f far from planned %.3f", got, plan.Rate())
	}
	other := NewTransport(Plan{Seed: 43, DropReqRate: 0.02, DropRespRate: 0.02,
		TruncateRate: 0.02, Err5xxRate: 0.02, DuplicateRate: 0.02}, nil)
	same := 0
	for i := range trials {
		if a.ModeFor("GET", "/v1/sweeps", uint64(i)) == other.ModeFor("GET", "/v1/sweeps", uint64(i)) {
			same++
		}
	}
	if same == trials {
		t.Fatal("different seeds produced identical decision streams")
	}
}

// TestTransportModes drives each mode against a counting backend and
// checks the delivery contract: DropReq/Err5xx never reach the
// server, DropResp reaches it once but errors, Duplicate reaches it
// twice and succeeds.
func TestTransportModes(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	cases := []struct {
		mode     Mode
		wantHits int64
		wantErr  bool
		wantCode int
	}{
		{DropReq, 0, true, 0},
		{Err5xx, 0, false, http.StatusServiceUnavailable},
		{DropResp, 1, true, 0},
		{Duplicate, 2, false, http.StatusOK},
		{Latency, 1, false, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.mode.String(), func(t *testing.T) {
			hits.Store(0)
			before := InjectedCount(tc.mode)
			hc := &http.Client{Transport: forceMode(tc.mode, nil)}
			resp, err := hc.Post(srv.URL+"/v1/sweeps", "application/json",
				strings.NewReader(`{"spec":1}`))
			if tc.wantErr {
				if err == nil {
					resp.Body.Close()
					t.Fatalf("mode %v: want transport error, got status %d", tc.mode, resp.StatusCode)
				}
				if !errors.Is(err, ErrInjected) {
					// http.Client wraps the RoundTripper error in a
					// *url.Error; ErrInjected must still surface.
					t.Fatalf("mode %v: error %v does not wrap ErrInjected", tc.mode, err)
				}
			} else {
				if err != nil {
					t.Fatalf("mode %v: %v", tc.mode, err)
				}
				if resp.StatusCode != tc.wantCode {
					t.Fatalf("mode %v: status %d, want %d", tc.mode, resp.StatusCode, tc.wantCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if hits.Load() != tc.wantHits {
				t.Fatalf("mode %v: server saw %d requests, want %d", tc.mode, hits.Load(), tc.wantHits)
			}
			if InjectedCount(tc.mode) != before+1 {
				t.Fatalf("mode %v: tally did not advance", tc.mode)
			}
		})
	}
}

// TestTransportTruncateTearsBody: a truncated response yields a read
// error partway through the body, wrapping ErrInjected.
func TestTransportTruncateTearsBody(t *testing.T) {
	payload := strings.Repeat("x", 8192)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	hc := &http.Client{Transport: forceMode(Truncate, nil)}
	resp, err := hc.Get(srv.URL + "/v1/sweeps/x/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error; want torn stream", len(b))
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn-body error %v does not wrap ErrInjected", err)
	}
	if len(b) == 0 || len(b) >= len(payload) {
		t.Fatalf("truncated read returned %d bytes of %d", len(b), len(payload))
	}
}

// TestTransportDuplicateSkipsNonReplayable: a request whose body has
// no GetBody cannot be safely duplicated — the transport downgrades
// to clean delivery instead of corrupting the call.
func TestTransportDuplicateSkipsNonReplayable(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
	}))
	defer srv.Close()
	req, err := http.NewRequest("POST", srv.URL+"/x", io.NopCloser(strings.NewReader("body")))
	if err != nil {
		t.Fatal(err)
	}
	req.GetBody = nil
	resp, err := forceMode(Duplicate, nil).RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("non-replayable body delivered %d times, want exactly 1", hits.Load())
	}
}

// TestInstrument: the tallies surface through an obs registry as
// banshee_net_faults_injected_total{mode=...}.
func TestInstrument(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	hc := &http.Client{Transport: forceMode(Err5xx, nil)}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	r := obs.NewRegistry()
	Instrument(r)
	mux := http.NewServeMux()
	obs.HandleMetrics(mux, r)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `banshee_net_faults_injected_total{mode="err_5xx"}`) {
		t.Fatalf("metrics exposition missing err_5xx tally:\n%s", rec.Body.String())
	}
}

// TestProxyForwardsAndPartitions: a clean proxy is transparent; a
// partition window kills established connections and refuses new
// ones; after the window closes, traffic flows again.
func TestProxyForwardsAndPartitions(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")
	px, err := NewProxy(target, ProxyPlan{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	get := func() (string, error) {
		hc := &http.Client{Timeout: 2 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := hc.Get("http://" + px.Addr() + "/ping")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("clean proxy: body=%q err=%v", body, err)
	}
	px.Partition(400 * time.Millisecond)
	if _, err := get(); err == nil {
		t.Fatal("request succeeded during partition window")
	}
	time.Sleep(450 * time.Millisecond)
	if body, err := get(); err != nil || body != "pong" {
		t.Fatalf("post-partition proxy: body=%q err=%v", body, err)
	}
	if px.PartitionCount() != 1 || px.RefusedCount() == 0 {
		t.Fatalf("partition accounting: windows=%d refused=%d", px.PartitionCount(), px.RefusedCount())
	}
}

// TestProxyCutsMidStream: with CutRate=1 every connection dies after
// its byte budget — a large transfer through the proxy must fail
// partway, not complete.
func TestProxyCutsMidStream(t *testing.T) {
	payload := strings.Repeat("y", 64*1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")
	px, err := NewProxy(target, ProxyPlan{Seed: 7, CutRate: 1, CutAfter: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	hc := &http.Client{Timeout: 5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := hc.Get("http://" + px.Addr() + "/big")
	if err == nil {
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(b) == len(payload) {
			t.Fatalf("64KiB transfer survived a proxy with CutRate=1, CutAfter=8KiB")
		}
	}
	if px.CutCount() == 0 {
		t.Fatal("proxy recorded no cuts")
	}
}
