// Package netfault extends the fault subsystem across the process
// boundary: deterministic network-fault injection for the sweepd
// HTTP protocol. Where internal/fault proves the engine's supervision
// against in-process panics, errors, and torn writes, netfault proves
// the client/worker/daemon protocol against the failures a real
// network delivers — lost requests, lost and truncated responses,
// latency spikes, spurious 5xx, and duplicated delivery.
//
// Two injection points cover the two test tiers:
//
//   - Transport: an http.RoundTripper wrapper for in-process tests.
//     Every fault decision hashes (plan seed, method, path, attempt),
//     so a chaos run's decision function is exactly reproducible; the
//     attempt counter makes retried calls roll fresh, which is what
//     lets a bounded retry policy converge at single-digit fault
//     rates.
//   - Proxy: an in-process chaos TCP proxy for subprocess e2e tests —
//     it sits between a real worker process and a real daemon,
//     deterministically cutting connections mid-stream, stalling
//     bytes, and opening partition windows during which every
//     connection (new and established) dies.
//
// Faults injected here are indistinguishable from organic network
// trouble to the code under test — that is the point. The audit trail
// lives in the process-wide tallies (InjectedCount, Instrument), so a
// converged chaos run can prove faults actually fired.
package netfault

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"banshee/internal/fault"
)

// ErrInjected aliases the fault package's sentinel: every injected
// transport error wraps it, so tests and retry loops can tell
// synthetic network trouble from organic failures with errors.Is.
var ErrInjected = fault.ErrInjected

// Mode is the network fault a (method, path, attempt) key draws.
type Mode int

// Network fault modes, in decision-precedence order.
const (
	None      Mode = iota
	DropReq        // request lost before reaching the server
	DropResp       // request delivered and processed; response lost
	Truncate       // response cut mid-body (client sees a torn stream)
	Latency        // Plan.Latency added before the request proceeds
	Err5xx         // synthetic 503 without reaching the server
	Duplicate      // request delivered twice (server must dedupe)
	nModes
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case DropReq:
		return "drop_req"
	case DropResp:
		return "drop_resp"
	case Truncate:
		return "truncate"
	case Latency:
		return "latency"
	case Err5xx:
		return "err_5xx"
	case Duplicate:
		return "duplicate"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Plan configures a Transport: what fraction of calls draw each fault
// mode. Rates are cumulative-exclusive in declaration order (a call
// draws at most one mode), exactly like fault.Plan.
type Plan struct {
	// Seed perturbs every decision hash; two plans with different
	// seeds pick different victim calls at the same rates.
	Seed uint64
	// Per-mode rates in [0,1]; see the Mode constants.
	DropReqRate, DropRespRate, TruncateRate float64
	LatencyRate, Err5xxRate, DuplicateRate  float64
	// Latency is how long a Latency-mode fault delays (default 2ms).
	Latency time.Duration
}

// Rate returns the plan's total fault rate (the fraction of calls
// that draw any mode).
func (p Plan) Rate() float64 {
	return p.DropReqRate + p.DropRespRate + p.TruncateRate +
		p.LatencyRate + p.Err5xxRate + p.DuplicateRate
}

func (p Plan) latency() time.Duration {
	if p.Latency <= 0 {
		return 2 * time.Millisecond
	}
	return p.Latency
}

// Transport is a deterministic faulty http.RoundTripper. Fault
// decisions hash (plan seed, method, path, attempt): the attempt
// counter advances per (method, path) call, so a retry of a faulted
// call rolls a fresh decision — at single-digit rates the retry
// almost always passes, which is what lets a bounded retry policy
// drive a chaos run to convergence. Safe for concurrent use.
type Transport struct {
	inner http.RoundTripper
	plan  Plan

	mu       sync.Mutex
	attempts map[string]uint64
}

// NewTransport wraps inner (nil = http.DefaultTransport) with the
// plan's fault injection.
func NewTransport(plan Plan, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, plan: plan, attempts: map[string]uint64{}}
}

// Plan returns the transport's plan.
func (t *Transport) Plan() Plan { return t.plan }

// roll maps a hash sum to a uniform draw in [0, 1). The sum is run
// through a 64-bit finalizer (the murmur3 fmix64 constants) first:
// FNV-64a barely avalanches its final input byte — two keys differing
// only in a trailing digit (consecutive attempt counters!) land within
// ~1e-7 of each other, so without mixing, every retry would re-draw
// the same fault and a faulted call would stay faulted forever.
func roll(x uint64) float64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11) / (1 << 53)
}

// ModeFor returns the mode call attempt n of (method, path) draws —
// the pure decision function, exposed so tests can predict and audit
// injections.
func (t *Transport) ModeFor(method, path string, attempt uint64) Mode {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", t.plan.Seed, method, path, attempt)
	r := roll(h.Sum64())
	p := t.plan
	for _, m := range []struct {
		rate float64
		mode Mode
	}{
		{p.DropReqRate, DropReq}, {p.DropRespRate, DropResp},
		{p.TruncateRate, Truncate}, {p.LatencyRate, Latency},
		{p.Err5xxRate, Err5xx}, {p.DuplicateRate, Duplicate},
	} {
		if r < m.rate {
			return m.mode
		}
		r -= m.rate
	}
	return None
}

// nextAttempt advances and returns the call counter for (method, path).
func (t *Transport) nextAttempt(method, path string) uint64 {
	key := method + " " + path
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts[key]++
	return t.attempts[key]
}

// RoundTrip implements http.RoundTripper with fault injection. A
// DropReq or Err5xx fault never reaches the server; DropResp and
// Duplicate faults deliver the request (once or twice) so the server
// observes it — those are the modes that force idempotent-redelivery
// handling on the service side.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	attempt := t.nextAttempt(req.Method, req.URL.Path)
	mode := t.ModeFor(req.Method, req.URL.Path, attempt)
	if mode == Duplicate && req.Body != nil && req.GetBody == nil {
		mode = None // body not replayable; cannot duplicate safely
	}
	switch mode {
	case None:
		return t.inner.RoundTrip(req)
	case DropReq:
		record(DropReq)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("netfault: %s %s: request dropped: %w", req.Method, req.URL.Path, ErrInjected)
	case DropResp:
		record(DropResp)
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server processed the request; lose the response so the
		// caller must retry a call that already took effect.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("netfault: %s %s: response dropped: %w", req.Method, req.URL.Path, ErrInjected)
	case Truncate:
		record(Truncate)
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{inner: resp.Body, remain: truncateAt(resp.ContentLength)}
		return resp, nil
	case Latency:
		record(Latency)
		timer := time.NewTimer(t.plan.latency())
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case Err5xx:
		record(Err5xx)
		if req.Body != nil {
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"netfault: injected 503 (%s %s)"}`, req.Method, req.URL.Path)
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Duplicate:
		record(Duplicate)
		first, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
		// Redeliver: the server has already processed the call once;
		// only its dedupe/idempotency keeps the second delivery from
		// double-counting. The caller sees the second response.
		again := req.Clone(req.Context())
		if req.GetBody != nil {
			body, gerr := req.GetBody()
			if gerr != nil {
				return nil, gerr
			}
			again.Body = body
		}
		return t.inner.RoundTrip(again)
	}
	return t.inner.RoundTrip(req)
}

// truncateAt picks how many body bytes survive a Truncate fault:
// half the declared length, or a fixed prefix when the length is
// unknown (chunked streams).
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 64
}

// truncatedBody yields the first remain bytes, then fails the read —
// a torn response stream, as a half-closed connection produces.
type truncatedBody struct {
	inner  io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("netfault: response truncated: %w", ErrInjected)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= int64(n)
	if err == io.EOF {
		return n, err
	}
	if b.remain <= 0 && err == nil {
		err = fmt.Errorf("netfault: response truncated: %w", ErrInjected)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
