package netfault

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyPlan configures a chaos Proxy: what fraction of proxied TCP
// connections draw a byte-level fault. Decisions hash (seed,
// connection index), so a proxy run's fault schedule is reproducible.
// Partition windows are driven explicitly via Proxy.Partition — they
// model operator-visible events (a switch rebooting), not per-flow
// randomness.
type ProxyPlan struct {
	// Seed perturbs the per-connection decision hash.
	Seed uint64
	// CutRate is the fraction of connections severed mid-stream after
	// CutAfter forwarded bytes.
	CutRate float64
	// StallRate is the fraction of connections that forward slowly
	// (Stall pause per chunk) — models congestion, exercises
	// response-header and renew deadlines.
	StallRate float64
	// CutAfter is the byte budget before a cut connection dies
	// (default 4096).
	CutAfter int64
	// Stall is the per-chunk pause on stalled connections
	// (default 1ms).
	Stall time.Duration
}

func (p ProxyPlan) cutAfter() int64 {
	if p.CutAfter <= 0 {
		return 4096
	}
	return p.CutAfter
}

func (p ProxyPlan) stall() time.Duration {
	if p.Stall <= 0 {
		return time.Millisecond
	}
	return p.Stall
}

// Proxy is an in-process chaos TCP proxy: it forwards connections to
// a target address, deterministically cutting or stalling a planned
// fraction of them, and supports partition windows during which every
// connection — established and new — dies. It sits between real
// worker and daemon processes in subprocess e2e tests, injecting the
// network failures a unit test cannot.
type Proxy struct {
	ln     net.Listener
	target string
	plan   ProxyPlan

	mu         sync.Mutex
	conns      map[*connPair]struct{}
	partTil    time.Time
	closed     bool
	connIndex  uint64
	cuts       atomic.Uint64
	stalls     atomic.Uint64
	partitions atomic.Uint64
	refused    atomic.Uint64
}

type connPair struct {
	client, upstream net.Conn
	once             sync.Once
}

func (cp *connPair) closeBoth() {
	cp.once.Do(func() {
		cp.client.Close()
		cp.upstream.Close()
	})
}

// NewProxy starts a chaos proxy on 127.0.0.1 forwarding to target
// (host:port). Close it when done.
func NewProxy(target string, plan ProxyPlan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, plan: plan, conns: map[*connPair]struct{}{}}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port) — what the
// client or worker under test should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// CutCount reports how many connections the proxy has severed
// mid-stream.
func (p *Proxy) CutCount() uint64 { return p.cuts.Load() }

// StallCount reports how many connections the proxy has stalled.
func (p *Proxy) StallCount() uint64 { return p.stalls.Load() }

// RefusedCount reports how many connections died to partition windows
// (both refused-new and killed-established).
func (p *Proxy) RefusedCount() uint64 { return p.refused.Load() }

// PartitionCount reports how many partition windows have been opened.
func (p *Proxy) PartitionCount() uint64 { return p.partitions.Load() }

// Partition opens a partition window of duration d: every established
// connection is killed now, and new connections are refused until the
// window closes. Models a network partition between the proxy's two
// sides.
func (p *Proxy) Partition(d time.Duration) {
	p.partitions.Add(1)
	p.mu.Lock()
	until := time.Now().Add(d)
	if until.After(p.partTil) {
		p.partTil = until
	}
	pairs := make([]*connPair, 0, len(p.conns))
	for cp := range p.conns {
		pairs = append(pairs, cp)
	}
	p.mu.Unlock()
	for _, cp := range pairs {
		p.refused.Add(1)
		cp.closeBoth()
	}
}

// Close stops the proxy and kills every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	pairs := make([]*connPair, 0, len(p.conns))
	for cp := range p.conns {
		pairs = append(pairs, cp)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, cp := range pairs {
		cp.closeBoth()
	}
	return err
}

func (p *Proxy) partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Now().Before(p.partTil)
}

// faultsFor is the pure per-connection decision: does connection idx
// draw a cut, a stall, or neither. Cumulative-exclusive like
// Transport.ModeFor.
func (p *Proxy) faultsFor(idx uint64) (cut, stall bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "proxy|%d|%d", p.plan.Seed, idx)
	r := roll(h.Sum64())
	if r < p.plan.CutRate {
		return true, false
	}
	r -= p.plan.CutRate
	if r < p.plan.StallRate {
		return false, true
	}
	return false, false
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		idx := p.connIndex
		p.connIndex++
		closed := p.closed
		p.mu.Unlock()
		if closed {
			c.Close()
			return
		}
		if p.partitioned() {
			p.refused.Add(1)
			c.Close()
			continue
		}
		go p.serve(c, idx)
	}
}

func (p *Proxy) serve(client net.Conn, idx uint64) {
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	cp := &connPair{client: client, upstream: upstream}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cp.closeBoth()
		return
	}
	p.conns[cp] = struct{}{}
	p.mu.Unlock()
	defer func() {
		cp.closeBoth()
		p.mu.Lock()
		delete(p.conns, cp)
		p.mu.Unlock()
	}()

	cut, stall := p.faultsFor(idx)
	var budget *atomic.Int64
	if cut {
		budget = &atomic.Int64{}
		budget.Store(p.plan.cutAfter())
	}
	if stall {
		p.stalls.Add(1)
	}

	done := make(chan struct{}, 2)
	go p.pipe(upstream, client, cp, budget, stall, done)
	go p.pipe(client, upstream, cp, budget, stall, done)
	// The first direction to finish (EOF, error, or cut) tears the
	// pair down; the second unblocks on the closed sockets.
	<-done
	cp.closeBoth()
	<-done
}

// pipe forwards src→dst in chunks, charging the shared cut budget and
// pausing on stalled connections. When the budget runs out the whole
// pair dies mid-stream — a torn connection, not a clean shutdown.
func (p *Proxy) pipe(dst, src net.Conn, cp *connPair, budget *atomic.Int64, stall bool, done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	buf := make([]byte, 16*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if budget != nil && budget.Add(int64(-n)) <= 0 {
				p.cuts.Add(1)
				cp.closeBoth()
				return
			}
			if stall {
				time.Sleep(p.plan.stall())
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
