package fault_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"banshee/internal/errs"
	"banshee/internal/fault"
	"banshee/internal/runner"
	"banshee/internal/sim"
)

// chaosMatrix is the 16-job sweep the chaos tests run: small enough
// for -race, wide enough that 5% fault rates deterministically select
// victims (plan seed 29 draws one panic, one error, and one stall
// victim — see TestChaosSweepConvergesToGolden's accounting).
func chaosMatrix(name string) runner.Matrix {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.InstrPerCore = 60_000
	base.Seed = 11
	return runner.Matrix{
		Name:      name,
		Base:      base,
		Workloads: []string{"pagerank", "lbm"},
		Schemes:   []string{"NoCache", "Banshee"},
		Points: []runner.Point{
			{Label: "p0"},
			{Label: "p1", Mutate: func(c *sim.Config) { c.InPkgLatScale = 0.9 }},
			{Label: "p2", Mutate: func(c *sim.Config) { c.InPkgLatScale = 0.8 }},
			{Label: "p3", Mutate: func(c *sim.Config) { c.InPkgLatScale = 0.7 }},
		},
	}
}

// chaosPlan injects panics, errors, and stalls at a 5% rate each, the
// acceptance scenario: seed 29 victimizes exactly one job per mode in
// chaosMatrix's 16.
var chaosPlan = fault.Plan{Seed: 29, PanicRate: 0.05, ErrRate: 0.05, StallRate: 0.05, Stall: time.Millisecond}

// TestChaosSweepConvergesToGolden is the end-to-end chaos contract (CI
// runs it under -race): a sweep with injected panics and errors at 5%
// completes every healthy job, ledgers the victims, keeps the success
// stream byte-identical to the golden file minus the victims' lines,
// and a fault-free resume converges the file to the golden bytes.
func TestChaosSweepConvergesToGolden(t *testing.T) {
	m := chaosMatrix("chaos")
	dir := t.TempDir()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// The injector itself tells us who must fail — fault decisions are
	// keyed by content ID, so this accounting is exact, not statistical.
	in := fault.New(chaosPlan)
	victims := map[string]fault.Mode{}
	for _, j := range jobs {
		switch mode := in.ModeFor(j.ID); mode {
		case fault.Panic, fault.Err:
			victims[j.ID] = mode
		}
	}
	if len(victims) < 2 {
		t.Fatalf("plan draws %d panic/err victims, want >= 2 (wrong seed?)", len(victims))
	}

	// Golden: the fault-free run.
	goldenPath := filepath.Join(dir, "golden.jsonl")
	gsink, err := runner.OpenSink(goldenPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: gsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	gsink.Close()
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: injected faults, supervision on, keep going.
	chaosPath := filepath.Join(dir, "chaos.jsonl")
	csink, err := runner.OpenSink(chaosPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ledger := runner.NewLedger(filepath.Join(dir, "chaos.failed.jsonl"))
	rs, err := (runner.Engine{
		Parallelism: 4,
		Sink:        csink,
		Ledger:      ledger,
		KeepGoing:   true,
		JobRunner:   fault.New(chaosPlan).Runner(nil),
		Retry:       runner.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
	}).Run(context.Background(), m)
	if err != nil {
		t.Fatalf("chaos sweep aborted instead of degrading: %v", err)
	}
	csink.Close()

	// Exactly the predicted victims failed; everyone else completed.
	failed := rs.Failed()
	failedIDs := map[string]bool{}
	for _, f := range failed {
		if _, expected := victims[f.ID]; !expected {
			t.Fatalf("job %s (%s/%s) failed outside the injection plan: %s", f.ID, f.Workload, f.Scheme, f.Error)
		}
		failedIDs[f.ID] = true
		if victims[f.ID] == fault.Panic && !f.Panicked {
			t.Fatalf("panic victim %s not marked panicked", f.ID)
		}
		if f.Attempts != 2 {
			t.Fatalf("victim %s retried %d times, want the policy's 2 attempts", f.ID, f.Attempts)
		}
	}
	for id := range victims {
		if !failedIDs[id] {
			t.Fatalf("planned victim %s did not fail", id)
		}
	}
	if ledger.Count() != len(failed) {
		t.Fatalf("ledger holds %d failures, Failed() reports %d", ledger.Count(), len(failed))
	}
	ledger.Close()

	// Success stream: golden minus the victims' lines, byte-for-byte —
	// survivors are bit-identical to a fault-free run (stall victims
	// included: latency faults must not perturb results).
	var want []byte
	for _, line := range bytes.SplitAfter(golden, []byte{'\n'}) {
		keep := true
		for id := range victims {
			if bytes.Contains(line, []byte(`"id":"`+id+`"`)) {
				keep = false
			}
		}
		if keep {
			want = append(want, line...)
		}
	}
	chaos, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chaos, want) {
		t.Fatal("chaos run's success stream is not golden-minus-victims")
	}

	// Resume without faults: only the victims re-simulate and the file
	// converges to the golden bytes.
	rsink, err := runner.OpenSink(chaosPath, true)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := (runner.Engine{Parallelism: 4, Sink: rsink, Ledger: ledger, KeepGoing: true}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	rsink.Close()
	if len(rs2.Failed()) != 0 {
		t.Fatalf("fault-free resume still failed %d jobs", len(rs2.Failed()))
	}
	resumed, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resume after chaos did not converge to the golden file")
	}
	if _, err := os.Stat(ledger.Path()); !os.IsNotExist(err) {
		t.Fatal("converged resume left a stale failure ledger")
	}
}

// TestChaosTransientRetryConvergence: when every fault is transient
// (one bad attempt per job), retry alone absorbs 100% error injection
// — the sweep succeeds with output byte-identical to a fault-free run.
func TestChaosTransientRetryConvergence(t *testing.T) {
	m := chaosMatrix("transient")
	dir := t.TempDir()

	goldenPath := filepath.Join(dir, "golden.jsonl")
	gsink, err := runner.OpenSink(goldenPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: gsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	gsink.Close()

	retryPath := filepath.Join(dir, "retry.jsonl")
	rsink, err := runner.OpenSink(retryPath, false)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Plan{Seed: 1, ErrRate: 1, FailAttempts: 1})
	rs, err := (runner.Engine{
		Parallelism: 4,
		Sink:        rsink,
		JobRunner:   in.Runner(nil),
		Retry:       runner.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
	}).Run(context.Background(), m)
	if err != nil {
		t.Fatalf("transient chaos not absorbed by retry: %v", err)
	}
	rsink.Close()
	if jobs, _ := m.Jobs(); rs.Executed != len(jobs) {
		t.Fatalf("executed %d jobs, want all %d", rs.Executed, len(jobs))
	}
	golden, _ := os.ReadFile(goldenPath)
	retried, _ := os.ReadFile(retryPath)
	if !bytes.Equal(golden, retried) {
		t.Fatal("retried-through-faults output differs from fault-free run")
	}
}

// TestChaosSinkTornWrite: a short write injected into the checkpoint
// stream aborts the sweep with the injected error, leaves a torn tail,
// and a resume repairs it — completing the file byte-identically.
func TestChaosSinkTornWrite(t *testing.T) {
	m := chaosMatrix("torn")
	dir := t.TempDir()

	goldenPath := filepath.Join(dir, "golden.jsonl")
	gsink, err := runner.OpenSink(goldenPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: gsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	gsink.Close()
	golden, _ := os.ReadFile(goldenPath)

	// Tear the write that crosses byte 600 — mid-line, a record or two
	// into the file.
	tornPath := filepath.Join(dir, "torn.jsonl")
	sink, err := runner.OpenSink(tornPath, false)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(fault.Plan{ShortRate: 1, FaultAfter: 600})
	sink.WrapWriter(func(w io.Writer) io.Writer { return in.Writer(w, "sink") })
	_, err = (runner.Engine{Parallelism: 1, Sink: sink}).Run(context.Background(), m)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn sweep error = %v, want ErrInjected", err)
	}
	sink.Close()
	torn, _ := os.ReadFile(tornPath)
	if len(torn) == 0 || bytes.HasPrefix(golden, torn) && torn[len(torn)-1] == '\n' {
		t.Fatalf("expected a torn (mid-line) tail, got %d clean bytes", len(torn))
	}

	// Resume repairs the tear and completes the file.
	rsink, err := runner.OpenSink(tornPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: rsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	rsink.Close()
	resumed, _ := os.ReadFile(tornPath)
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resume over torn checkpoint did not converge to golden")
	}
}

// enospcWriter emulates a filling disk: after budget bytes it answers
// every write with ENOSPC (the last write lands short, like a real
// device running out mid-line).
type enospcWriter struct {
	w      io.Writer
	budget int
}

func (e *enospcWriter) Write(p []byte) (int, error) {
	if e.budget <= 0 {
		return 0, syscall.ENOSPC
	}
	if len(p) > e.budget {
		n, _ := e.w.Write(p[:e.budget])
		e.budget = 0
		return n, syscall.ENOSPC
	}
	e.budget -= len(p)
	return e.w.Write(p)
}

// TestChaosSinkDiskFullPausesCleanly: a checkpoint stream hitting
// ENOSPC aborts the sweep with a typed errs.ErrDiskFull — pause, not
// corruption — and once "space is freed" a resume repairs the torn
// tail and converges the file byte-identically to the golden run.
func TestChaosSinkDiskFullPausesCleanly(t *testing.T) {
	m := chaosMatrix("enospc")
	dir := t.TempDir()

	goldenPath := filepath.Join(dir, "golden.jsonl")
	gsink, err := runner.OpenSink(goldenPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: gsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	gsink.Close()
	golden, _ := os.ReadFile(goldenPath)

	fullPath := filepath.Join(dir, "full.jsonl")
	sink, err := runner.OpenSink(fullPath, false)
	if err != nil {
		t.Fatal(err)
	}
	sink.WrapWriter(func(w io.Writer) io.Writer { return &enospcWriter{w: w, budget: 600} })
	_, err = (runner.Engine{Parallelism: 1, Sink: sink}).Run(context.Background(), m)
	if !errors.Is(err, errs.ErrDiskFull) {
		t.Fatalf("disk-full sweep error = %v, want errs.ErrDiskFull", err)
	}
	var dfe *errs.DiskFullError
	if !errors.As(err, &dfe) || !errors.Is(dfe.Err, syscall.ENOSPC) {
		t.Fatalf("disk-full error lost its cause: %v", err)
	}
	sink.Close() // flush will fail again; the file is what matters

	// The disk "has space again": resume repairs the torn tail and
	// completes the checkpoint to the golden bytes.
	rsink, err := runner.OpenSink(fullPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Engine{Parallelism: 4, Sink: rsink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	rsink.Close()
	resumed, _ := os.ReadFile(fullPath)
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resume after disk-full did not converge to golden")
	}
}
