package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"banshee/internal/errs"
	"banshee/internal/workload"
)

// Prefix marks workload names that wrap an inner workload with fault
// injection: "fault:<spec>:<inner>", where <spec> is a comma-separated
// k=v list — panic, err, stall (rates in [0,1]), stallms (stall
// duration), after (max event index before the fault fires), seed —
// and <inner> is any resolvable workload name:
//
//	fault:panic=1:pagerank            every replica panics mid-stream
//	fault:err=0.5,seed=3:mix1         half the (name,seed) keys latch a decode error
//	fault:stall=1,stallms=5:lbm       5 ms stall injected once
//
// The injection key is (full name, cores, seed), so each job of a
// sweep draws its fault independently and deterministically — aligned
// with the batch engine's content keys.
const Prefix = "fault:"

// The fault workload kind wraps any inner workload with a
// deterministic source-level fault. Registered at import, like every
// other workload kind; CLIs and tests opt in by importing this
// package.
func init() {
	workload.Register(workload.Def{
		Kind: "fault",
		Open: func(name string, cfg workload.Config) (workload.Source, bool, error) {
			rest, ok := strings.CutPrefix(name, Prefix)
			if !ok {
				return nil, false, nil
			}
			spec, inner, found := strings.Cut(rest, ":")
			if !found || inner == "" {
				return nil, true, fmt.Errorf("workload: %w", errs.Configf("Workload",
					"%q wants fault:<spec>:<inner>, e.g. fault:panic=0.05:pagerank", name))
			}
			plan, err := ParsePlan(spec)
			if err != nil {
				return nil, true, fmt.Errorf("workload: %w", err)
			}
			src, err := workload.Open(inner, cfg)
			if err != nil {
				return nil, true, err
			}
			key := fmt.Sprintf("%s|cores=%d|seed=%d", name, cfg.Cores, cfg.Seed)
			return New(plan).Source(src, key), true, nil
		},
	})
}

// ParsePlan parses a fault spec ("panic=0.05,err=0.1,stallms=2") into
// a Plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if spec == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return p, errs.Configf("FaultSpec", "%q is not k=v", kv)
		}
		f, ferr := strconv.ParseFloat(v, 64)
		switch k {
		case "panic", "err", "stall", "short":
			if ferr != nil || f < 0 || f > 1 {
				return p, errs.Configf("FaultSpec", "%s wants a rate in [0,1], got %q", k, v)
			}
			switch k {
			case "panic":
				p.PanicRate = f
			case "err":
				p.ErrRate = f
			case "stall":
				p.StallRate = f
			case "short":
				p.ShortRate = f
			}
		case "stallms":
			if ferr != nil || f < 0 {
				return p, errs.Configf("FaultSpec", "stallms wants a non-negative duration, got %q", v)
			}
			p.Stall = time.Duration(f * float64(time.Millisecond))
		case "after":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				return p, errs.Configf("FaultSpec", "after wants a positive event count, got %q", v)
			}
			p.FaultAfter = n
		case "attempts":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return p, errs.Configf("FaultSpec", "attempts wants a non-negative count, got %q", v)
			}
			p.FailAttempts = n
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return p, errs.Configf("FaultSpec", "seed wants an integer, got %q", v)
			}
			p.Seed = n
		default:
			return p, errs.Configf("FaultSpec", "unknown key %q (valid: panic, err, stall, short, stallms, after, attempts, seed)", k)
		}
	}
	return p, nil
}
