package fault

import (
	"fmt"
	"sync/atomic"

	"banshee/internal/obs"
)

// injected counts faults that actually fired, by mode, across every
// injector in the process — the audit trail that makes a chaos run's
// metric stream interpretable (how many failures were synthetic).
// Process-wide on purpose: injectors are created per wrap site, but a
// chaos run is one experiment.
var injected [Short + 1]atomic.Uint64

// recordFault tallies one fired fault of mode m.
func recordFault(m Mode) {
	if m >= 0 && int(m) < len(injected) {
		injected[m].Add(1)
	}
}

// InjectedCount returns how many faults of mode m have fired in this
// process.
func InjectedCount(m Mode) uint64 {
	if m < 0 || int(m) >= len(injected) {
		return 0
	}
	return injected[m].Load()
}

// Instrument exposes the injection tallies on r as
// banshee_faults_injected_total{mode="panic"|"err"|"stall"|"short"}.
// Idempotent, like all registry registration.
func Instrument(r *obs.Registry) {
	for _, m := range []Mode{Panic, Err, Stall, Short} {
		m := m
		r.CounterFunc(
			fmt.Sprintf("banshee_faults_injected_total{mode=%q}", m.String()),
			"injected faults fired, by mode",
			func() float64 { return float64(injected[m].Load()) })
	}
}
