// Package fault is a deterministic fault-injection subsystem for
// chaos-testing the simulator's batch layers. An Injector derives
// every fault decision from a hash of (plan seed, subject key) — for
// the batch engine the key is the job's content ID — so a chaos run is
// exactly reproducible: the same plan over the same sweep injects the
// same panics, errors, stalls, and torn writes every time, on any
// machine. Nothing here touches the simulation's own RNG streams, so
// jobs that survive injection produce bit-identical results to a
// fault-free run.
//
// The injector wraps each layer the robustness substrate defends:
//
//   - Runner: wraps a runner.JobRunner with injected panics, errors,
//     and stalls around (or instead of) real simulations — the seam
//     the engine's supervision, retry, and ledger behavior is proven
//     against.
//   - Source: wraps a workload.Source with a fault that fires at a
//     deterministic event index — a panic mid-stream, a latched decode
//     error, or a latency stall.
//   - ReaderAt: flips a deterministic bit (or fails reads) under a
//     tracefile reader, exercising the .btrc CRC error paths.
//   - Writer: injects short writes and write errors into a checkpoint
//     sink's stream, producing the torn tails resume must repair.
//
// Importing the package also registers the "fault:<spec>:<inner>"
// workload kind, making source-level chaos reachable from any CLI or
// matrix by workload name alone.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"banshee/internal/runner"
	"banshee/internal/stats"
)

// ErrInjected is the sentinel every injected (non-panic) failure
// wraps, so tests and ledger consumers can tell synthetic faults from
// organic ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// Mode is the fault a subject key draws.
type Mode int

// Fault modes, in decision-precedence order.
const (
	None  Mode = iota
	Panic      // panic mid-operation
	Err        // injected error (decode/write/run failure)
	Stall      // latency stall of Plan.Stall before proceeding
	Short      // torn write: half the bytes, then an error (Writer only)
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Err:
		return "err"
	case Stall:
		return "stall"
	case Short:
		return "short"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Plan configures an Injector: what fraction of subject keys draw each
// fault mode, and how faults behave. Rates are cumulative-exclusive: a
// key draws one mode (or none), with panic taking precedence, then
// err, stall, short.
type Plan struct {
	// Seed perturbs every decision hash; two plans with different
	// seeds select different victim keys at the same rates.
	Seed uint64
	// PanicRate, ErrRate, StallRate, ShortRate are the fractions of
	// keys (in [0,1]) that draw each mode.
	PanicRate, ErrRate, StallRate, ShortRate float64
	// Stall is how long a Stall-mode fault blocks (default 1ms).
	Stall time.Duration
	// FailAttempts makes runner faults transient: attempts 1 through
	// FailAttempts fail, later attempts pass through clean. 0 means
	// permanent — every attempt fails.
	FailAttempts int
	// FaultAfter bounds the event index at which a Source fault fires
	// (the index is hashed into [1, FaultAfter]; default 4096).
	FaultAfter uint64
}

func (p Plan) stall() time.Duration {
	if p.Stall <= 0 {
		return time.Millisecond
	}
	return p.Stall
}

func (p Plan) faultAfter() uint64 {
	if p.FaultAfter == 0 {
		return 4096
	}
	return p.FaultAfter
}

// Injector makes deterministic fault decisions. Safe for concurrent
// use; the only mutable state is the per-key attempt counter behind
// transient runner faults.
type Injector struct {
	plan     Plan
	mu       sync.Mutex
	attempts map[string]int
}

// New returns an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, attempts: map[string]int{}}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// roll hashes (seed, key, salt) into [0,1).
func (in *Injector) roll(key, salt string) float64 {
	return float64(in.hash(key, salt)>>11) / (1 << 53)
}

func (in *Injector) hash(key, salt string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", in.plan.Seed, key, salt)
	return h.Sum64()
}

// ModeFor returns the fault mode the key draws under the plan.
func (in *Injector) ModeFor(key string) Mode {
	r := in.roll(key, "mode")
	p := in.plan
	for _, m := range []struct {
		rate float64
		mode Mode
	}{{p.PanicRate, Panic}, {p.ErrRate, Err}, {p.StallRate, Stall}, {p.ShortRate, Short}} {
		if r < m.rate {
			return m.mode
		}
		r -= m.rate
	}
	return None
}

// shouldFault reports whether the key's next attempt faults,
// advancing its attempt counter. Permanent plans always fault;
// transient plans fault the first FailAttempts attempts.
func (in *Injector) shouldFault(key string) bool {
	if in.plan.FailAttempts <= 0 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	return in.attempts[key] <= in.plan.FailAttempts
}

// Runner wraps a JobRunner with per-job fault injection keyed by the
// job's content ID. inner nil means runner.SimulateJob. Jobs whose key
// draws None — or whose transient fault budget is spent — pass through
// to inner untouched, so surviving results are bit-identical to a
// fault-free run.
func (in *Injector) Runner(inner runner.JobRunner) runner.JobRunner {
	if inner == nil {
		inner = runner.SimulateJob
	}
	return func(ctx context.Context, job runner.Job) (stats.Sim, error) {
		switch mode := in.ModeFor(job.ID); mode {
		case Panic, Err, Short:
			if in.shouldFault(job.ID) {
				recordFault(mode)
				if mode == Panic {
					panic(fmt.Sprintf("fault: injected panic in job %s", job.ID))
				}
				return stats.Sim{}, fmt.Errorf("fault: job %s: %w", job.ID, ErrInjected)
			}
		case Stall:
			if in.shouldFault(job.ID) {
				recordFault(Stall)
				t := time.NewTimer(in.plan.stall())
				defer t.Stop()
				select {
				case <-ctx.Done():
					return stats.Sim{}, ctx.Err()
				case <-t.C:
				}
			}
		}
		return inner(ctx, job)
	}
}
