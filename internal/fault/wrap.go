package fault

import (
	"fmt"
	"io"
	"time"

	"banshee/internal/trace"
	"banshee/internal/workload"
)

// Source wraps a workload source with a fault that fires at a
// deterministic event index hashed from key into [1, Plan.FaultAfter].
// Panic mode panics out of Next mid-stream; Err mode latches an
// injected decode error (surfaced through Err(), exactly how a
// corrupt .btrc replay fails a run); Stall mode blocks Next once for
// Plan.Stall. A key that draws None (or Short, which is writer-only)
// returns src unwrapped.
func (in *Injector) Source(src workload.Source, key string) workload.Source {
	mode := in.ModeFor(key)
	if mode != Panic && mode != Err && mode != Stall {
		return src
	}
	at := 1 + in.hash(key, "at")%in.plan.faultAfter()
	return &faultSource{inner: src, mode: mode, at: at, stall: in.plan.stall()}
}

type faultSource struct {
	inner workload.Source
	mode  Mode
	at    uint64 // global event index the fault fires at
	n     uint64
	stall time.Duration
	err   error
}

func (s *faultSource) Name() string      { return s.inner.Name() }
func (s *faultSource) Cores() int        { return s.inner.Cores() }
func (s *faultSource) Footprint() uint64 { return s.inner.Footprint() }

func (s *faultSource) Next(core int) trace.Event {
	if s.err != nil {
		return trace.Event{}
	}
	if s.n++; s.n == s.at {
		recordFault(s.mode)
		switch s.mode {
		case Panic:
			panic(fmt.Sprintf("fault: injected panic in workload %s at event %d", s.inner.Name(), s.n))
		case Err:
			s.err = fmt.Errorf("fault: workload %s event %d: injected decode error: %w",
				s.inner.Name(), s.n, ErrInjected)
			return trace.Event{}
		case Stall:
			time.Sleep(s.stall)
		}
	}
	return s.inner.Next(core)
}

// Err surfaces the latched injected error, or the inner source's own.
func (s *faultSource) Err() error {
	if s.err != nil {
		return s.err
	}
	if e, ok := s.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Wrapped forwards the inner source's wrap detection, if any.
func (s *faultSource) Wrapped() bool {
	if w, ok := s.inner.(interface{ Wrapped() bool }); ok {
		return w.Wrapped()
	}
	return false
}

// Close releases the inner source's resources, if it holds any.
func (s *faultSource) Close() error {
	if c, ok := s.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Writer wraps w with a deterministic write fault keyed by key: Err
// mode fails the write that crosses a hashed byte offset; Short mode
// tears it — half the bytes reach w, then an error — producing
// exactly the torn-tail checkpoint a resume must repair; Stall mode
// blocks that write once for Plan.Stall. None and Panic keys return w
// unwrapped (a panicking writer adds nothing over a panicking job).
func (in *Injector) Writer(w io.Writer, key string) io.Writer {
	mode := in.ModeFor(key)
	if mode != Err && mode != Short && mode != Stall {
		return w
	}
	at := int64(1 + in.hash(key, "wat")%in.plan.faultAfter())
	return &faultWriter{inner: w, mode: mode, at: at, stall: in.plan.stall()}
}

type faultWriter struct {
	inner io.Writer
	mode  Mode
	at    int64 // fault fires on the write crossing this byte offset
	n     int64
	fired bool
	stall time.Duration
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if !w.fired && w.n+int64(len(p)) >= w.at {
		w.fired = true
		recordFault(w.mode)
		switch w.mode {
		case Err:
			return 0, fmt.Errorf("fault: write at offset %d: %w", w.n, ErrInjected)
		case Short:
			n, _ := w.inner.Write(p[:len(p)/2])
			w.n += int64(n)
			return n, fmt.Errorf("fault: short write at offset %d: %w", w.n, ErrInjected)
		case Stall:
			time.Sleep(w.stall)
		}
	}
	n, err := w.inner.Write(p)
	w.n += int64(n)
	return n, err
}

// ReaderAt wraps r with a deterministic read fault keyed by key over a
// byte region of the given size: Err mode flips the lowest bit of one
// hashed byte offset in every read covering it — the single-bit
// corruption a .btrc reader's CRCs must catch; Panic mode panics on
// the read covering that offset; Stall mode blocks it once. None and
// Short keys return r unwrapped.
func (in *Injector) ReaderAt(r io.ReaderAt, size int64, key string) io.ReaderAt {
	mode := in.ModeFor(key)
	if mode != Err && mode != Panic && mode != Stall {
		return r
	}
	if size <= 0 {
		size = 1
	}
	at := int64(in.hash(key, "rat") % uint64(size))
	return &faultReaderAt{inner: r, mode: mode, at: at, stall: in.plan.stall()}
}

type faultReaderAt struct {
	inner   io.ReaderAt
	mode    Mode
	at      int64
	stalled bool
	stall   time.Duration
}

func (r *faultReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := r.inner.ReadAt(p, off)
	if r.at >= off && r.at < off+int64(n) {
		switch r.mode {
		case Err:
			recordFault(Err)
			p[r.at-off] ^= 1
		case Panic:
			recordFault(Panic)
			panic(fmt.Sprintf("fault: injected panic reading offset %d", r.at))
		case Stall:
			if !r.stalled {
				r.stalled = true
				recordFault(Stall)
				time.Sleep(r.stall)
			}
		}
	}
	return n, err
}
