// Package cameo implements a CAMEO-style two-level memory organization
// [Chou et al., MICRO'14], one of the related designs the paper
// positions against (§6): the in-package DRAM is *part of main memory*
// (capacity, not a copy) managed at cache-line granularity. Every line
// belongs to a congruence group that shares one in-package slot; on an
// access to a line currently living off-package, the line is swapped
// with the group's current in-package occupant. A Line Location Table
// (LLT) tracks which group member holds the slot; as in CAMEO, the LLT
// lives with the data in DRAM, costing a metadata burst per miss.
//
// The paper's critique — such designs optimize latency but pay
// significant traffic for swaps and location lookups — is directly
// visible in this model's Replacement and Tag traffic.
package cameo

import (
	"fmt"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
)

// Config sizes the in-package portion.
type Config struct {
	CapacityBytes int
}

const lltBytes = 32

// slot records which congruence-group member currently occupies the
// in-package way, by its group offset (0 = the identity resident).
type slot struct {
	occupant uint64 // line number of the resident
	valid    bool
	dirty    bool
}

// CAMEO is the scheme instance. Not safe for concurrent use.
type CAMEO struct {
	slots []slot
	mask  uint64

	// ops is the scratch buffer reused by every Access (see the
	// ownership note on mc.Result).
	ops []mem.Op

	hits, misses uint64
	swaps        uint64
}

// New builds a CAMEO instance; capacity must give a power-of-two line
// count.
func New(cfg Config) *CAMEO {
	n := cfg.CapacityBytes / mem.LineBytes
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("cameo: capacity %d must give a power-of-two line count", cfg.CapacityBytes))
	}
	return &CAMEO{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Name implements mc.Scheme.
func (c *CAMEO) Name() string { return "CAMEO" }

// Access implements mc.Scheme.
func (c *CAMEO) Access(req mem.Request) mc.Result {
	c.ops = c.ops[:0]
	addr := mem.LineAddr(req.Addr)
	line := mem.LineNum(addr)
	s := &c.slots[line&c.mask]

	resident := s.valid && s.occupant == line
	if !s.valid {
		// Cold slot: the identity member notionally lives here; any
		// other group member is off-package.
		resident = false
	}

	if req.Eviction {
		if resident {
			s.dirty = true
			c.ops = append(c.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData})
			return mc.Result{Hit: true, Ops: c.ops}
		}
		c.ops = append(c.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement})
		return mc.Result{Hit: false, Ops: c.ops}
	}

	if resident {
		// Hit: data plus the LLT entry read together (CAMEO co-locates
		// the LLT with the congruence group).
		c.hits++
		c.ops = append(c.ops,
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassHitData, Stage: 0, Critical: true},
			mem.Op{Target: mem.InPackage, Addr: addr, Bytes: lltBytes, Class: mem.ClassTag, Stage: 0, Critical: true, Fused: true},
		)
		return mc.Result{Hit: true, Ops: c.ops}
	}

	// Miss: consult the LLT (in-package, critical), fetch the line from
	// off-package, then swap it with the current occupant. The swap is
	// CAMEO's defining traffic: occupant moves out, new line moves in,
	// LLT updated.
	c.misses++
	c.swaps++
	c.ops = append(c.ops,
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: lltBytes, Class: mem.ClassTag, Stage: 0, Critical: true},
		mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 1, Critical: true},
	)
	if s.valid {
		old := mem.LineBase(s.occupant)
		c.ops = append(c.ops,
			mem.Op{Target: mem.InPackage, Addr: old, Bytes: mem.LineBytes, Class: mem.ClassReplacement, Stage: 1},
			mem.Op{Target: mem.OffPackage, Addr: old, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
		)
	}
	c.ops = append(c.ops,
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement, Stage: 1},
		mem.Op{Target: mem.InPackage, Addr: addr, Bytes: lltBytes, Write: true, Class: mem.ClassTag, Stage: 1, Fused: true},
	)
	*s = slot{occupant: line, valid: true}
	return mc.Result{Hit: false, Ops: c.ops}
}

// FillStats implements mc.Scheme.
func (c *CAMEO) FillStats(s *stats.Sim) {
	s.Remaps += c.swaps
}

// Resident reports whether the line currently occupies its slot (tests).
func (c *CAMEO) Resident(line uint64) bool {
	s := c.slots[line&c.mask]
	return s.valid && s.occupant == line
}
