package cameo

import (
	"testing"

	"banshee/internal/mem"
)

func newTest() *CAMEO {
	return New(Config{CapacityBytes: 1 << 20}) // 16384 slots
}

func bytesTo(ops []mem.Op, target mem.Kind) int {
	n := 0
	for _, op := range ops {
		if op.Target == target {
			n += op.Bytes
		}
	}
	return n
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad capacity did not panic")
		}
	}()
	New(Config{CapacityBytes: 3 * 64})
}

func TestSwapInOnMiss(t *testing.T) {
	c := newTest()
	res := c.Access(mem.Request{Addr: 0x4000})
	if res.Hit {
		t.Fatal("cold access hit")
	}
	if !c.Resident(mem.LineNum(0x4000)) {
		t.Fatal("line not swapped in after miss")
	}
	// Second access hits with data + LLT read.
	res = c.Access(mem.Request{Addr: 0x4000})
	if !res.Hit {
		t.Fatal("expected hit after swap")
	}
	if got := bytesTo(res.Ops, mem.InPackage); got != 96 {
		t.Fatalf("hit bytes %d, want 96 (data + LLT)", got)
	}
}

func TestSwapEvictsOccupant(t *testing.T) {
	c := newTest()
	groupStride := mem.Addr((c.mask + 1) * 64)
	c.Access(mem.Request{Addr: 0})                  // line A resident
	res := c.Access(mem.Request{Addr: groupStride}) // same group: swap
	if res.Hit {
		t.Fatal("conflicting group member hit")
	}
	// Swap traffic: occupant out (in read + off write) + new in + LLT.
	var outBytes int
	for _, op := range res.Ops {
		if op.Target == mem.OffPackage && op.Write {
			outBytes += op.Bytes
		}
	}
	if outBytes != 64 {
		t.Fatalf("occupant writeback %d bytes, want 64", outBytes)
	}
	if !c.Resident(mem.LineNum(groupStride)) || c.Resident(0) {
		t.Fatal("swap did not exchange occupancy")
	}
}

func TestCapacitySemantics(t *testing.T) {
	// CAMEO is memory, not a cache: exactly one member of each group is
	// in-package at any time.
	c := newTest()
	stride := mem.Addr((c.mask + 1) * 64)
	for i := 0; i < 8; i++ {
		c.Access(mem.Request{Addr: mem.Addr(i) * stride})
	}
	resident := 0
	for i := 0; i < 8; i++ {
		if c.Resident(mem.LineNum(mem.Addr(i) * stride)) {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("%d group members resident, want exactly 1", resident)
	}
}

func TestEvictionRouting(t *testing.T) {
	c := newTest()
	c.Access(mem.Request{Addr: 0x2000})
	res := c.Access(mem.Request{Addr: 0x2000, Write: true, Eviction: true})
	if !res.Hit || res.Ops[0].Target != mem.InPackage {
		t.Fatal("eviction to resident line must write in-package")
	}
	stride := mem.Addr((c.mask + 1) * 64)
	res = c.Access(mem.Request{Addr: 0x2000 + stride, Write: true, Eviction: true})
	if res.Hit || res.Ops[0].Target != mem.OffPackage {
		t.Fatal("eviction to non-resident line must write off-package")
	}
}

func TestMissSerializesLLTThenFetch(t *testing.T) {
	c := newTest()
	res := c.Access(mem.Request{Addr: 0x8000})
	var lltStage, fetchStage uint8 = 255, 255
	for _, op := range res.Ops {
		if op.Target == mem.InPackage && op.Class == mem.ClassTag && !op.Write {
			lltStage = op.Stage
		}
		if op.Target == mem.OffPackage && op.Critical {
			fetchStage = op.Stage
		}
	}
	if lltStage != 0 || fetchStage != 1 {
		t.Fatalf("LLT stage %d, fetch stage %d; want 0 then 1", lltStage, fetchStage)
	}
}
