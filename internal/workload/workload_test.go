package workload

import (
	"strings"
	"testing"

	"banshee/internal/mem"
	"banshee/internal/trace"
)

var testCfg = Config{Cores: 2, Seed: 7, Scale: 1e-4, Intensity: 1}

func TestBuiltinKinds(t *testing.T) {
	have := map[string]bool{}
	for _, k := range Kinds() {
		have[k] = true
	}
	if !have["synthetic"] || !have["tracefile"] {
		t.Fatalf("built-in kinds missing: %v", Kinds())
	}
}

func TestNamesCoverTraceRoster(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range append(trace.Names(), trace.KernelNames()...) {
		if !have[n] {
			t.Errorf("registry does not list %q", n)
		}
	}
}

func TestOpenSynthetic(t *testing.T) {
	src, err := Open("pagerank", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "pagerank" || src.Cores() != 2 {
		t.Fatalf("wrong source: %q/%d", src.Name(), src.Cores())
	}
	if src.Footprint() == 0 {
		t.Fatal("zero footprint")
	}
	ev := src.Next(0)
	if ev.Addr%mem.LineBytes != 0 {
		t.Fatalf("event not line-aligned: %#x", uint64(ev.Addr))
	}
}

func TestOpenUnknownListsNames(t *testing.T) {
	_, err := Open("nosuchworkload", testCfg)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range []string{"pagerank", "mix1", "pagerank_kernel", "gems", "file:<path>"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-workload error does not cite %q: %v", want, err)
		}
	}
}

func TestOpenMissingFileErrors(t *testing.T) {
	if _, err := Open("file:/nonexistent/trace.btrc", testCfg); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestRecordAndReplayFileSource(t *testing.T) {
	path := t.TempDir() + "/w.btrc"
	if err := Record(path, "mcf", testCfg, 800); err != nil {
		t.Fatal(err)
	}

	// Core-count guard: a recording replays only on its machine shape.
	if _, err := Open("file:"+path, Config{Cores: 5}); err == nil {
		t.Fatal("core mismatch accepted")
	}

	src, err := Open("file:"+path, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSource(src)
	if src.Name() != "mcf" || src.Cores() != 2 {
		t.Fatalf("replayed meta: %q/%d", src.Name(), src.Cores())
	}
	fresh, err := Open("mcf", testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if src.Footprint() != fresh.Footprint() {
		t.Fatalf("footprint not preserved: %d != %d", src.Footprint(), fresh.Footprint())
	}
	for e := 0; e < 800; e++ {
		for c := 0; c < 2; c++ {
			if got, want := src.Next(c), fresh.Next(c); got != want {
				t.Fatalf("core %d event %d: %+v != %+v", c, e, got, want)
			}
		}
	}
}

func TestRecordValidation(t *testing.T) {
	dir := t.TempDir()
	if err := Record(dir+"/x.btrc", "mcf", testCfg, 0); err == nil {
		t.Error("zero eventsPerCore accepted")
	}
	if err := Record(dir+"/y.btrc", "nosuch", testCfg, 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("incomplete def", func() { Register(Def{Kind: "broken"}) })
	mustPanic("duplicate kind", func() {
		Register(Def{Kind: "synthetic", Open: func(string, Config) (Source, bool, error) { return nil, false, nil }})
	})
}

// stubSource is a minimal out-of-tree Source for registry tests.
type stubSource struct{ cores int }

func (s *stubSource) Name() string      { return "stub" }
func (s *stubSource) Cores() int        { return s.cores }
func (s *stubSource) Footprint() uint64 { return 1 << 20 }
func (s *stubSource) Next(core int) trace.Event {
	return trace.Event{Gap: 3, Addr: mem.Addr((core + 1) * mem.PageBytes)}
}

func TestOutOfTreeRegistration(t *testing.T) {
	Register(Def{
		Kind:  "stub-test",
		Names: func() []string { return []string{"stub:unit"} },
		Open: func(name string, cfg Config) (Source, bool, error) {
			if name != "stub:unit" {
				return nil, false, nil
			}
			return &stubSource{cores: cfg.Cores}, true, nil
		},
	})
	src, err := Open("stub:unit", Config{Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	if src.Cores() != 3 || src.Next(0).Gap != 3 {
		t.Fatal("out-of-tree source not resolved")
	}
	found := false
	for _, n := range Names() {
		if n == "stub:unit" {
			found = true
		}
	}
	if !found {
		t.Fatal("out-of-tree name not listed")
	}
}
