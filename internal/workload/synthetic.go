package workload

import "banshee/internal/trace"

// The synthetic kind serves every name internal/trace accepts —
// parametric profiles, mixes, and graph-kernel variants — exactly as
// the simulator consumed them before the registry existed: trace.New
// with the config's scale and intensity applied verbatim.
func init() {
	Register(Def{
		Kind:  "synthetic",
		Names: trace.ValidNames,
		Open: func(name string, cfg Config) (Source, bool, error) {
			if !trace.Known(name) {
				return nil, false, nil
			}
			w, err := trace.New(name, cfg.Cores, cfg.Seed,
				trace.WithScale(cfg.Scale), trace.WithIntensity(cfg.Intensity))
			if err != nil {
				return nil, true, err
			}
			return w, true, nil
		},
	})
}
