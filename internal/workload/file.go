package workload

import (
	"fmt"
	"os"
	"strings"

	"banshee/internal/errs"
	"banshee/internal/tracefile"
)

// FilePrefix marks workload names that resolve to recorded trace
// files: "file:<path>" replays <path> (a .btrc written by Record or
// cmd/tracegen record).
const FilePrefix = "file:"

// The tracefile kind replays recorded traces. tracefile.Reader itself
// satisfies Source, so resolution is just open + core-count check: a
// recording is replayed on exactly the machine shape it was captured
// for (cfg.Cores == 0 adopts the recording's count, for tools that
// inspect rather than simulate).
func init() {
	Register(Def{
		Kind: "tracefile",
		Open: func(name string, cfg Config) (Source, bool, error) {
			path, ok := strings.CutPrefix(name, FilePrefix)
			if !ok {
				return nil, false, nil
			}
			r, err := tracefile.Open(path)
			if err != nil {
				return nil, true, err
			}
			if cfg.Cores != 0 && cfg.Cores != r.Cores() {
				r.Close()
				return nil, true, fmt.Errorf("workload: %w", errs.Configf("Cores",
					"%s records %d cores, config wants %d", name, r.Cores(), cfg.Cores))
			}
			return r, true, nil
		},
	})
}

// Record captures eventsPerCore events of every core of the named
// workload into a .btrc trace file at path. The recorded streams are
// the exact per-core prefixes a simulator run with the same (name,
// cores, seed, options) would consume: each core's generator state is
// independent, so capture order cannot perturb the streams.
//
// Because every event retires at least one instruction, recording
// InstrPerCore events per core is always enough to replay a run with
// that instruction budget without wrapping.
func Record(path, name string, cfg Config, eventsPerCore uint64) error {
	if eventsPerCore == 0 {
		return fmt.Errorf("workload: %w", errs.Configf("EventsPerCore", "must be positive"))
	}
	src, err := Open(name, cfg)
	if err != nil {
		return err
	}
	defer closeSource(src)
	meta := tracefile.Meta{
		Name:      src.Name(),
		Cores:     src.Cores(),
		Footprint: src.Footprint(),
	}
	if sh, ok := src.(interface{ Shared() bool }); ok {
		meta.Shared = sh.Shared()
	}
	w, err := tracefile.Create(path, meta)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		w.Close()
		os.Remove(path)
		return err
	}
	for e := uint64(0); e < eventsPerCore; e++ {
		for c := 0; c < meta.Cores; c++ {
			if err := w.Append(c, src.Next(c)); err != nil {
				return abort(err)
			}
		}
	}
	// A replayed-file source fails by latching an error or wrapping
	// around, not by returning one from Next; re-recording from such a
	// source must not silently capture zeroed or duplicated streams.
	if e, ok := src.(interface{ Err() error }); ok {
		if err := e.Err(); err != nil {
			return abort(fmt.Errorf("workload: record %s: %w", name, err))
		}
	}
	if wr, ok := src.(interface{ Wrapped() bool }); ok && wr.Wrapped() {
		return abort(fmt.Errorf(
			"workload: record %s: %w: source stream shorter than %d events per core",
			name, errs.ErrTraceWrapped, eventsPerCore))
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// closeSource releases a source that holds external resources (file
// sources do; synthetic ones do not).
func closeSource(src Source) {
	if c, ok := src.(interface{ Close() error }); ok {
		c.Close()
	}
}
