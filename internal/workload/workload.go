// Package workload is the pluggable workload-selection layer, the
// mirror image of the scheme registry (internal/registry): every way of
// producing a reference stream — parametric synthetic profiles, graph
// kernels, recorded trace files — registers a kind and a resolver, and
// the simulator obtains its streams purely through name lookups behind
// the Source interface. Out-of-tree sources join the same table at
// runtime through the root package's banshee.RegisterWorkload.
//
// Built-in kinds:
//
//   - "synthetic": every name internal/trace accepts (profiles, mixes,
//     and "<graph>_kernel" variants), built by trace.New.
//   - "tracefile": "file:<path>" names, replayed from .btrc trace files
//     recorded by Record / cmd/tracegen (see internal/tracefile).
//
// Resolution walks the registry in registration order and hands the
// name to each kind until one claims it; an unclaimed name errors with
// the full list of valid names, so a typo'd workload is diagnosable
// from the message alone.
package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"banshee/internal/errs"
	"banshee/internal/trace"
)

// Source is a replayable multi-core reference stream — the contract
// the simulator consumes instead of any concrete generator. Next must
// be callable per core in any interleaving; each core's stream must
// depend only on (name, cores, seed, options), never on the order in
// which other cores are polled.
type Source interface {
	// Name identifies the workload (for stats labeling).
	Name() string
	// Cores returns the number of per-core streams.
	Cores() int
	// Footprint returns the total resident data size in bytes.
	Footprint() uint64
	// Next produces core's next event.
	Next(core int) trace.Event
}

// Config carries the run parameters a source is built with. File
// sources ignore Scale and Intensity — a recorded trace is immutable —
// but validate Cores against the recording.
type Config struct {
	Cores     int
	Seed      uint64
	Scale     float64 // footprint scale factor (synthetic sources)
	Intensity float64 // MemRatio multiplier (synthetic sources)
}

// Def is one registered workload kind.
type Def struct {
	// Kind uniquely names the registration ("synthetic", "tracefile").
	Kind string
	// Names lists the enumerable workload names this kind serves, for
	// listings and round-trip tests. Nil for kinds whose names are
	// dynamic (like file paths).
	Names func() []string
	// Open resolves a name into a Source. ok=false means the name is
	// not this kind's (resolution continues); ok=true with a non-nil
	// error aborts resolution with that error.
	Open func(name string, cfg Config) (src Source, ok bool, err error)
}

var (
	mu      sync.RWMutex
	entries []Def
	byKind  = map[string]int{}
)

// Register adds a workload kind to the registry. Like the scheme
// registry it panics on duplicates and incomplete definitions:
// registration is code configuration, so a bad entry is a bug worth
// failing loudly on.
func Register(d Def) {
	if d.Kind == "" || d.Open == nil {
		panic(fmt.Sprintf("workload: incomplete registration %+v", d))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byKind[d.Kind]; dup {
		panic(fmt.Sprintf("workload: duplicate kind %q", d.Kind))
	}
	byKind[d.Kind] = len(entries)
	entries = append(entries, d)
}

// Open resolves a workload name into a Source, walking registered
// kinds in registration order.
func Open(name string, cfg Config) (Source, error) {
	mu.RLock()
	defer mu.RUnlock()
	n := strings.TrimSpace(name)
	for _, d := range entries {
		src, ok, err := d.Open(n, cfg)
		if !ok {
			continue
		}
		if err != nil {
			return nil, err
		}
		return src, nil
	}
	return nil, fmt.Errorf("workload: %w %q (valid: %s, or file:<path>)",
		errs.ErrUnknownWorkload, name, strings.Join(namesLocked(), ", "))
}

// Names returns every enumerable registered workload name, sorted.
// Dynamic names (file:<path>) are not enumerable and so not listed.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	var out []string
	for _, d := range entries {
		if d.Names != nil {
			out = append(out, d.Names()...)
		}
	}
	sort.Strings(out)
	return out
}

// Kinds returns every registered kind in registration order.
func Kinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(entries))
	for i, d := range entries {
		out[i] = d.Kind
	}
	return out
}
