package registry

import (
	"strings"
	"sync"
	"testing"

	"banshee/internal/mc"
	"banshee/internal/schemes"
	"banshee/internal/vm"
)

// testEnv builds a small but fully wired environment, enough for every
// builtin builder (Banshee needs the VM substrate).
func testEnv() Env {
	pt := vm.NewPageTable()
	tlbs := []*vm.TLB{vm.NewTLB(64)}
	return Env{
		// The library's default scaled capacity; large enough that the
		// 2 MB-page configuration still gets a power-of-two set count.
		CapacityBytes: 1 << 26,
		Seed:          7,
		CPUMHz:        2700,
		PageTable:     pt,
		TLBs:          tlbs,
		Cost:          vm.DefaultCostModel(2700),
	}
}

// TestRoundTripAllNames is the registry's core property: every display
// name any scheme registers — alone and with every modifier suffix —
// parses to a spec whose kind builds a live scheme instance.
func TestRoundTripAllNames(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("suspiciously few registered names: %v", names)
	}
	var suffixes []string
	for _, m := range modifiers {
		suffixes = append(suffixes, m.Suffix)
	}
	for _, base := range names {
		for _, suffix := range append([]string{""}, suffixes...) {
			name := base + suffix
			spec, err := Parse(name)
			if err != nil {
				t.Errorf("Parse(%q): %v", name, err)
				continue
			}
			s, err := Build(spec, testEnv())
			if err != nil {
				t.Errorf("Build(%q): %v", name, err)
				continue
			}
			if s == nil {
				t.Errorf("Build(%q) returned nil scheme", name)
				continue
			}
			if suffix != "" && !spec.BATMAN {
				t.Errorf("Parse(%q) lost the modifier mark", name)
			}
			if suffix != "" && !strings.HasSuffix(s.Name(), suffix) {
				t.Errorf("Build(%q).Name() = %q, wrapper missing", name, s.Name())
			}
		}
	}
}

func TestComparisonMatchesPaperOrder(t *testing.T) {
	want := []string{"NoCache", "Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee", "CacheOnly"}
	got := Comparison()
	if len(got) != len(want) {
		t.Fatalf("Comparison() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Comparison()[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("Bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Build(Spec{Kind: "bogus"}, testEnv()); err == nil {
		t.Fatal("unknown kind built")
	}
}

func TestOverlayPreservesTuning(t *testing.T) {
	parsed, err := Parse("Banshee")
	if err != nil {
		t.Fatal(err)
	}
	tuned := Overlay(parsed, Spec{BansheeWays: 8, PTEUpdateMicros: 40, BansheeFootprint: true})
	if tuned.BansheeWays != 8 || tuned.PTEUpdateMicros != 40 || !tuned.BansheeFootprint {
		t.Fatalf("tuning lost: %+v", tuned)
	}
	if tuned.Kind != "banshee" {
		t.Fatalf("kind lost: %+v", tuned)
	}
	// Parsed fields survive when the tuning spec leaves them zero.
	alloy, _ := Parse("Alloy 0.1")
	if got := Overlay(alloy, Spec{}); got.AlloyFillProb != 0.1 {
		t.Fatalf("parsed fill prob lost: %+v", got)
	}
}

// registerTestDirect runs once per process so `go test -count=N` does
// not trip the duplicate-kind panic on the global registry.
var registerTestDirect = sync.OnceFunc(func() {
	Register(Scheme{
		Kind:  "testdirect",
		Names: []string{"TestDirect"},
		Parse: exact("testdirect", "TestDirect"),
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			return schemes.NewNoCache(), nil
		},
	})
})

// TestOutOfTreeRegistration registers a fresh scheme the way an
// external package would through banshee.RegisterScheme, and checks it
// resolves by name, builds, and composes with modifiers.
func TestOutOfTreeRegistration(t *testing.T) {
	registerTestDirect()
	spec, err := Parse("TestDirect+BATMAN")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "testdirect" || !spec.BATMAN {
		t.Fatalf("spec = %+v", spec)
	}
	s, err := Build(spec, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(s.Name(), "+BATMAN") {
		t.Fatalf("modifier not applied to out-of-tree scheme: %q", s.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "TestDirect" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name missing from Names()")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate kind registration did not panic")
		}
	}()
	Register(Scheme{
		Kind:  "banshee",
		Names: []string{"Banshee Again"},
		Parse: exact("banshee", "Banshee Again"),
		Build: func(Spec, Env) (mc.Scheme, error) { return schemes.NewNoCache(), nil },
	})
}
