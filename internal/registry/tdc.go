package registry

import (
	"banshee/internal/mc"
	"banshee/internal/tdc"
)

// Tagless DRAM Cache [Lee et al.], the TLB-coherent fully-associative
// baseline.
func init() {
	Register(Scheme{
		Kind:     "tdc",
		Names:    []string{"TDC"},
		Compare:  []string{"TDC"},
		Rank:     20,
		Parse:    exact("tdc", "TDC"),
		GangSafe: true,
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			return tdc.New(tdc.Config{CapacityBytes: env.CapacityBytes}), nil
		},
	})
}
