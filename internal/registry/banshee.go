package registry

import (
	"banshee/internal/banshee"
	"banshee/internal/mc"
)

// Banshee (Yu et al., MICRO 2017) and its evaluated variants: the LRU
// and no-sampling replacement ablations (Fig. 7), the set-dueling and
// footprint extensions (§5.2/§6), and the 2 MB large-page configuration
// (§5.4.1).
func init() {
	Register(Scheme{
		Kind: "banshee",
		Names: []string{
			"Banshee", "Banshee LRU", "Banshee NoSample", "Banshee Duel",
			"Banshee FP", "Banshee 2M",
		},
		Compare: []string{"Banshee"},
		Rank:    40,
		Parse: func(name string) (Spec, bool) {
			spec := Spec{Kind: "banshee"}
			switch name {
			case "Banshee":
			case "Banshee LRU":
				spec.BansheePolicy = banshee.LRUReplaceOnMiss
			case "Banshee NoSample":
				spec.BansheePolicy = banshee.FBRNoSample
			case "Banshee Duel":
				spec.BansheePolicy = banshee.SetDueling
			case "Banshee FP":
				spec.BansheeFootprint = true
			case "Banshee 2M":
				spec.BansheeLargePages = true
			default:
				return Spec{}, false
			}
			return spec, true
		},
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			cfg := banshee.DefaultConfig(env.CapacityBytes)
			if spec.BansheeLargePages || env.LargePages {
				cfg = banshee.LargePageConfig(env.CapacityBytes)
			}
			cfg.Seed = env.Seed
			cfg.Policy = spec.BansheePolicy
			cfg.Footprint = spec.BansheeFootprint
			if cfg.Policy == banshee.FBRNoSample {
				// Counters must out-range the larger no-sampling threshold.
				cfg.CounterBits = 8
			}
			if spec.BansheeWays > 0 {
				cfg.Ways = spec.BansheeWays
			}
			if spec.BansheeSamplingCoeff > 0 {
				cfg.SamplingCoeff = spec.BansheeSamplingCoeff
			}
			if spec.BansheeThreshold > 0 {
				cfg.Threshold = spec.BansheeThreshold
			}
			if spec.BansheeTagBufEntries > 0 {
				cfg.TagBufferEntries = spec.BansheeTagBufEntries
			}
			return banshee.New(cfg, env.PageTable, env.TLBs, env.Cost), nil
		},
	})
}
