package registry

import (
	"banshee/internal/mc"
	"banshee/internal/unison"
)

// Unison Cache [Jevdjic et al.], the way-associative page-granularity
// baseline with in-DRAM tags.
func init() {
	Register(Scheme{
		Kind:     "unison",
		Names:    []string{"Unison"},
		Compare:  []string{"Unison"},
		Rank:     10,
		Parse:    exact("unison", "Unison"),
		GangSafe: true,
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			return unison.New(unison.Config{CapacityBytes: env.CapacityBytes, Ways: 4}), nil
		},
	})
}
