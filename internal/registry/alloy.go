package registry

import (
	"banshee/internal/alloy"
	"banshee/internal/mc"
)

// Alloy Cache + BEAR [Qureshi & Loh], the direct-mapped baseline; the
// paper evaluates fill probabilities 1 and 0.1.
func init() {
	Register(Scheme{
		Kind:    "alloy",
		Names:   []string{"Alloy", "Alloy 1", "Alloy 0.1"},
		Compare: []string{"Alloy 1", "Alloy 0.1"},
		Rank:    30,
		Parse: func(name string) (Spec, bool) {
			switch name {
			case "Alloy", "Alloy 1":
				return Spec{Kind: "alloy", AlloyFillProb: 1}, true
			case "Alloy 0.1":
				return Spec{Kind: "alloy", AlloyFillProb: 0.1}, true
			}
			return Spec{}, false
		},
		GangSafe: true,
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			p := spec.AlloyFillProb
			if p == 0 {
				p = 1
			}
			return alloy.New(alloy.Config{CapacityBytes: env.CapacityBytes, FillProb: p, Seed: env.Seed}), nil
		},
	})
}
