package registry

import (
	"banshee/internal/mc"
	"banshee/internal/schemes"
)

// The NoCache / CacheOnly bounds of the paper's comparison (§5.1.1):
// all traffic to off-package DRAM, and an idealized in-package-only
// memory, respectively.
func init() {
	Register(Scheme{
		Kind:     "nocache",
		Names:    []string{"NoCache"},
		Compare:  []string{"NoCache"},
		Rank:     0,
		Parse:    exact("nocache", "NoCache"),
		GangSafe: true,
		Build: func(Spec, Env) (mc.Scheme, error) {
			return schemes.NewNoCache(), nil
		},
	})
	Register(Scheme{
		Kind:     "cacheonly",
		Names:    []string{"CacheOnly"},
		Compare:  []string{"CacheOnly"},
		Rank:     60,
		Parse:    exact("cacheonly", "CacheOnly"),
		GangSafe: true,
		Build: func(Spec, Env) (mc.Scheme, error) {
			return schemes.NewCacheOnly(), nil
		},
	})
}
