package registry

import (
	"banshee/internal/cameo"
	"banshee/internal/mc"
)

// CAMEO [Chou et al.], the line-granularity swap-based design.
func init() {
	Register(Scheme{
		Kind:     "cameo",
		Names:    []string{"CAMEO"},
		Rank:     70,
		Parse:    exact("cameo", "CAMEO"),
		GangSafe: true,
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			return cameo.New(cameo.Config{CapacityBytes: env.CapacityBytes}), nil
		},
	})
}
