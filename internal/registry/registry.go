// Package registry is the pluggable scheme-selection layer: every
// DRAM-cache design registers a kind, the display names it answers to,
// a spec parser, and a builder, and the simulator resolves schemes
// purely through lookups. Registration happens in this package's
// per-scheme init functions for the built-in designs (one file per
// scheme), and out-of-tree schemes can join the same tables at runtime
// through the root package's banshee.RegisterScheme.
//
// Modifiers — today only "+BATMAN" — register separately: a suffix, a
// spec mark, and a wrap step applied after the base scheme is built.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"banshee/internal/banshee"
	"banshee/internal/errs"
	"banshee/internal/mc"
	"banshee/internal/vm"
)

// Spec selects and tunes the DRAM-cache scheme for a run. It is the
// parsed, plain-data form of a display name; sim.SchemeSpec aliases it.
type Spec struct {
	// Kind names the registered scheme that builds this spec:
	// "nocache", "cacheonly", "alloy", "unison", "tdc", "cameo", "hma",
	// "banshee", or any out-of-tree registration.
	Kind string

	// AlloyFillProb is Alloy's stochastic fill probability (1 or 0.1 in
	// the paper). 0 defaults to 1.
	AlloyFillProb float64

	// Banshee tuning (zero values take Table 3 defaults).
	BansheePolicy        banshee.Policy
	BansheeWays          int
	BansheeSamplingCoeff float64
	BansheeThreshold     float64
	BansheeLargePages    bool
	BansheeFootprint     bool
	BansheeTagBufEntries int

	// PTEUpdateMicros overrides the tag-buffer flush routine cost
	// (Table 5 sweeps 10/20/40 µs). 0 → 20 µs.
	PTEUpdateMicros float64

	// HMAEpochAccesses overrides HMA's epoch length in MC accesses.
	HMAEpochAccesses uint64

	// BATMAN wraps the scheme with bandwidth balancing (§5.4.2).
	BATMAN bool
}

// Env carries the simulation-level context a builder needs: the
// capacity the cache must cover, the run seed, clocking for software
// cost models, and the VM substrate Banshee wires into.
type Env struct {
	CapacityBytes int
	Seed          uint64
	CPUMHz        float64
	LargePages    bool // workload data lives on 2 MB pages
	PageTable     *vm.PageTable
	TLBs          []*vm.TLB
	Cost          vm.CostModel
}

// Scheme is one registered DRAM-cache design.
type Scheme struct {
	// Kind is the unique key Build dispatches on (Spec.Kind).
	Kind string
	// Names lists every display name this scheme's Parse accepts, for
	// listings and round-trip tests.
	Names []string
	// Compare lists the subset of Names that belongs in the paper's
	// main comparison (Fig. 4 bars); nil for schemes outside it.
	Compare []string
	// Rank orders this scheme among the main-comparison bars.
	Rank int
	// Parse maps a display name (modifier suffixes already stripped) to
	// a spec. ok=false means the name is not this scheme's.
	Parse func(name string) (Spec, bool)
	// Build constructs the scheme instance for a parsed spec.
	Build func(spec Spec, env Env) (mc.Scheme, error)
	// GangSafe declares that instances built from this registration
	// never touch the shared VM substrate (Env.PageTable / Env.TLBs) —
	// the contract that lets N differently-seeded instances run in
	// lockstep over one shared front-end replay (sim.Gang). Banshee is
	// the canonical counter-example: it rewrites PTEs and shoots down
	// TLBs, so its lanes would perturb each other's translations.
	// Defaults to false, so out-of-tree schemes opt in explicitly.
	GangSafe bool
}

// Modifier is a registered scheme wrapper selected by a name suffix.
type Modifier struct {
	// Suffix is the display-name suffix ("+BATMAN").
	Suffix string
	// Apply marks the spec when Suffix is parsed off a name.
	Apply func(spec *Spec)
	// Active reports whether the spec carries this modifier's mark.
	Active func(spec Spec) bool
	// Wrap layers the modifier over a built scheme.
	Wrap func(inner mc.Scheme, spec Spec, env Env) (mc.Scheme, error)
}

var (
	mu        sync.RWMutex
	entries   []Scheme
	byKind    = map[string]int{} // Kind → index into entries
	modifiers []Modifier
)

// Register adds a scheme to the registry. It panics on a duplicate or
// empty kind and on a missing parser or builder — registration is code
// configuration, so a bad entry is a bug worth failing loudly on.
func Register(s Scheme) {
	if s.Kind == "" || s.Parse == nil || s.Build == nil {
		panic(fmt.Sprintf("registry: incomplete scheme registration %+v", s))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byKind[s.Kind]; dup {
		panic(fmt.Sprintf("registry: duplicate scheme kind %q", s.Kind))
	}
	byKind[s.Kind] = len(entries)
	entries = append(entries, s)
}

// RegisterModifier adds a suffix modifier. Panics on duplicates and
// incomplete entries, like Register.
func RegisterModifier(m Modifier) {
	if m.Suffix == "" || m.Apply == nil || m.Active == nil || m.Wrap == nil {
		panic(fmt.Sprintf("registry: incomplete modifier registration %+v", m))
	}
	mu.Lock()
	defer mu.Unlock()
	for _, have := range modifiers {
		if have.Suffix == m.Suffix {
			panic(fmt.Sprintf("registry: duplicate modifier suffix %q", m.Suffix))
		}
	}
	modifiers = append(modifiers, m)
}

// Parse resolves a display name — optionally carrying registered
// modifier suffixes — into a spec.
func Parse(name string) (Spec, error) {
	mu.RLock()
	defer mu.RUnlock()
	n := strings.TrimSpace(name)
	var marks []func(*Spec)
	for stripped := true; stripped; {
		stripped = false
		for _, m := range modifiers {
			if strings.HasSuffix(n, m.Suffix) {
				n = strings.TrimSpace(strings.TrimSuffix(n, m.Suffix))
				marks = append(marks, m.Apply)
				stripped = true
			}
		}
	}
	for _, s := range entries {
		if spec, ok := s.Parse(n); ok {
			for _, mark := range marks {
				mark(&spec)
			}
			return spec, nil
		}
	}
	return Spec{}, fmt.Errorf("sim: %w %q", errs.ErrUnknownScheme, name)
}

// Build constructs the scheme for spec, layering any active modifiers.
func Build(spec Spec, env Env) (mc.Scheme, error) {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byKind[spec.Kind]
	if !ok {
		return nil, fmt.Errorf("sim: %w kind %q", errs.ErrUnknownScheme, spec.Kind)
	}
	s, err := entries[i].Build(spec, env)
	if err != nil {
		return nil, err
	}
	for _, m := range modifiers {
		if !m.Active(spec) {
			continue
		}
		if s, err = m.Wrap(s, spec, env); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Names returns every registered display name (without modifier
// suffixes), in registration order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for _, s := range entries {
		out = append(out, s.Names...)
	}
	return out
}

// Kinds returns every registered kind in registration order.
func Kinds() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, len(entries))
	for i, s := range entries {
		out[i] = s.Kind
	}
	return out
}

// Comparison returns the display names of the paper's main comparison
// (Fig. 4 bars) in rank order — the list sim.SchemeNames serves.
func Comparison() []string {
	mu.RLock()
	defer mu.RUnlock()
	ranked := make([]Scheme, len(entries))
	copy(ranked, entries)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Rank < ranked[j].Rank })
	var out []string
	for _, s := range ranked {
		out = append(out, s.Compare...)
	}
	return out
}

// GangSafe reports whether spec builds a scheme that may run as one
// lane of a lockstep gang: the scheme's registration declares it never
// touches the shared VM substrate, and no modifier is active on the
// spec (modifiers wrap arbitrary behavior around a scheme, so an
// active one voids the declaration).
func GangSafe(spec Spec) bool {
	mu.RLock()
	defer mu.RUnlock()
	i, ok := byKind[spec.Kind]
	if !ok || !entries[i].GangSafe {
		return false
	}
	for _, m := range modifiers {
		if m.Active(spec) {
			return false
		}
	}
	return true
}

// Overlay returns parsed with any tuning knobs set on t taking
// precedence — the sweep contract: a caller can pre-set tuning fields
// on its config's spec and still select the scheme by display name.
func Overlay(parsed, t Spec) Spec {
	parsed.AlloyFillProb = pickF(t.AlloyFillProb, parsed.AlloyFillProb)
	parsed.BansheeWays = pickI(t.BansheeWays, parsed.BansheeWays)
	parsed.BansheeSamplingCoeff = pickF(t.BansheeSamplingCoeff, parsed.BansheeSamplingCoeff)
	parsed.BansheeThreshold = pickF(t.BansheeThreshold, parsed.BansheeThreshold)
	parsed.BansheeTagBufEntries = pickI(t.BansheeTagBufEntries, parsed.BansheeTagBufEntries)
	parsed.PTEUpdateMicros = pickF(t.PTEUpdateMicros, parsed.PTEUpdateMicros)
	if t.HMAEpochAccesses != 0 {
		parsed.HMAEpochAccesses = t.HMAEpochAccesses
	}
	parsed.BansheeFootprint = parsed.BansheeFootprint || t.BansheeFootprint
	return parsed
}

func pickF(override, base float64) float64 {
	if override != 0 {
		return override
	}
	return base
}

func pickI(override, base int) int {
	if override != 0 {
		return override
	}
	return base
}

// exact returns a parser accepting the given display names as kind.
func exact(kind string, names ...string) func(string) (Spec, bool) {
	return func(name string) (Spec, bool) {
		for _, n := range names {
			if name == n {
				return Spec{Kind: kind}, true
			}
		}
		return Spec{}, false
	}
}
