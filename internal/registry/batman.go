package registry

import (
	"banshee/internal/batman"
	"banshee/internal/mc"
)

// The "+BATMAN" modifier (§5.4.2): bandwidth balancing layered over any
// base scheme.
func init() {
	RegisterModifier(Modifier{
		Suffix: "+BATMAN",
		Apply:  func(spec *Spec) { spec.BATMAN = true },
		Active: func(spec Spec) bool { return spec.BATMAN },
		Wrap: func(inner mc.Scheme, spec Spec, env Env) (mc.Scheme, error) {
			return batman.New(inner, batman.Config{Seed: env.Seed}), nil
		},
	})
}
