package registry

import (
	"banshee/internal/hma"
	"banshee/internal/mc"
)

// Software-managed heterogeneous memory (HMA, [Meswani et al.]): the OS
// periodically ranks and remaps hot pages.
func init() {
	Register(Scheme{
		Kind:     "hma",
		Names:    []string{"HMA"},
		Rank:     50,
		Parse:    exact("hma", "HMA"),
		GangSafe: true,
		Build: func(spec Spec, env Env) (mc.Scheme, error) {
			cfg := hma.DefaultConfig(env.CapacityBytes)
			if spec.HMAEpochAccesses > 0 {
				cfg.EpochAccesses = spec.HMAEpochAccesses
			}
			return hma.New(cfg), nil
		},
	})
}
