// Package sweepd turns the batch engine into a long-running sharded
// sweep service: an HTTP/JSON daemon that accepts declarative sweep
// specs, assigns each a content-derived ID, executes its content-keyed
// jobs on a local worker pool — optionally sharded across attached
// worker processes pulling job leases over HTTP — and streams results
// back as checkpoint JSONL with resume-from-offset.
//
// Durability rides entirely on the existing checkpoint machinery: each
// sweep owns a state directory holding its spec and its JSONL sink, so
// a SIGKILL'd daemon restarts, re-leases unfinished jobs, and
// converges to output byte-identical to a local RunBatch of the same
// spec. That identity — not merely "the jobs all ran" — is the
// service's core contract; DESIGN.md §14 records the protocol.
package sweepd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"banshee/internal/runner"
	"banshee/internal/sim"
)

// PointSpec is the wire form of one config-override point: a label
// plus a partial sim.Config JSON object overlaid onto the resolved
// config — the serializable counterpart of runner.Point's Mutate
// closure. An empty Set is a valid unmodified point.
type PointSpec struct {
	Label string `json:"label,omitempty"`
	// Set is a partial sim.Config object ({"InstrPerCore": 100000,
	// "Scheme": {"AlloyFrac": 0.1}}); fields present override the
	// resolved config, fields absent leave it alone.
	Set json.RawMessage `json:"set,omitempty"`
}

// RunOptions tunes how the daemon executes a sweep. All fields are
// execution policy, not content: none of them change the sweep's
// output bytes, so they are excluded from the sweep ID.
type RunOptions struct {
	// GangWidth ≥ 2 lets the engine run that many gang-eligible jobs
	// as one lockstep gang (ignored when EpochEvery is set — epoch
	// capture needs per-job sessions).
	GangWidth int `json:"gang_width,omitempty"`
	// Retries is the total attempts per job (0 and 1 both mean one).
	Retries int `json:"retries,omitempty"`
	// JobTimeoutMs deadlines each attempt in milliseconds (0 = none).
	JobTimeoutMs int64 `json:"job_timeout_ms,omitempty"`
	// KeepGoing completes the sweep past permanently failed jobs,
	// streaming them to the sweep's failure ledger.
	KeepGoing bool `json:"keep_going,omitempty"`
	// EpochEvery, when > 0, samples every locally executed job's epoch
	// series at this retired-instruction interval into the sweep's
	// epochs JSONL stream (GET /v1/sweeps/{id}/epochs).
	EpochEvery uint64 `json:"epoch_every,omitempty"`
}

// retry renders the options' retry policy for the engine.
func (o RunOptions) retry() runner.RetryPolicy {
	return runner.RetryPolicy{MaxAttempts: o.Retries,
		BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}
}

func (o RunOptions) jobTimeout() time.Duration {
	return time.Duration(o.JobTimeoutMs) * time.Millisecond
}

// Spec is the wire form of a sweep: either declarative axes (Base ×
// Workloads × Schemes × Points × Seeds, the Matrix cross product) or a
// pre-resolved job list (Jobs) for clients that already enumerated a
// Matrix locally. Exactly one form must be used.
type Spec struct {
	Name      string      `json:"name"`
	Base      sim.Config  `json:"base,omitempty"`
	Workloads []string    `json:"workloads,omitempty"`
	Schemes   []string    `json:"schemes,omitempty"`
	Points    []PointSpec `json:"points,omitempty"`
	Seeds     []uint64    `json:"seeds,omitempty"`

	// Jobs is the pre-resolved form: fully resolved configs with their
	// coordinates. Job IDs are recomputed server-side from the configs
	// (the content key is authoritative; a stale ID is rejected).
	Jobs []runner.Job `json:"jobs,omitempty"`

	Options RunOptions `json:"options,omitempty"`
}

// UnmarshalJSON overlays the wire spec onto defaults: Base starts from
// sim.DefaultConfig(), so a hand-written spec.json states only the
// knobs it changes — the same overlay semantics PointSpec.Set has —
// instead of spelling out every config field.
func (s *Spec) UnmarshalJSON(data []byte) error {
	type plain Spec // drop methods to avoid recursing
	a := plain(Spec{Base: sim.DefaultConfig()})
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*s = Spec(a)
	return nil
}

// SpecFromMatrix renders a locally declared Matrix into its wire form
// by enumerating its jobs — the bridge from closure-bearing Points to
// the serializable Spec.
func SpecFromMatrix(m runner.Matrix, o RunOptions) (Spec, error) {
	jobs, err := m.Jobs()
	if err != nil {
		return Spec{}, err
	}
	return Spec{Name: m.Name, Jobs: jobs, Options: o}, nil
}

// Resolve validates the spec and enumerates its job list in the
// deterministic order the sink contract is defined over. The returned
// baseSeed is what ResultSet.Get defaults to client-side.
func (s Spec) Resolve() (jobs []runner.Job, baseSeed uint64, err error) {
	if s.Name == "" {
		return nil, 0, fmt.Errorf("sweepd: spec needs a name")
	}
	if len(s.Jobs) > 0 {
		if len(s.Workloads) > 0 || len(s.Schemes) > 0 || len(s.Points) > 0 || len(s.Seeds) > 0 {
			return nil, 0, fmt.Errorf("sweepd: spec %q mixes pre-resolved jobs with matrix axes", s.Name)
		}
		seen := map[string]bool{}
		jobs = make([]runner.Job, len(s.Jobs))
		for i, j := range s.Jobs {
			want := runner.JobKey(j.Config)
			if j.ID != "" && j.ID != want {
				return nil, 0, fmt.Errorf("sweepd: spec %q job %d: ID %s does not match its config (content key %s)", s.Name, i, j.ID, want)
			}
			j.ID = want
			if j.Matrix == "" {
				j.Matrix = s.Name
			}
			if j.Matrix != s.Name {
				return nil, 0, fmt.Errorf("sweepd: spec %q job %d belongs to matrix %q", s.Name, i, j.Matrix)
			}
			coord := j.Coord()
			if seen[coord] {
				return nil, 0, fmt.Errorf("sweepd: spec %q repeats coordinate %s", s.Name, coord)
			}
			seen[coord] = true
			jobs[i] = j
		}
		return jobs, jobs[0].Seed, nil
	}
	m, err := s.matrix()
	if err != nil {
		return nil, 0, err
	}
	jobs, err = m.Jobs()
	if err != nil {
		return nil, 0, err
	}
	baseSeed = s.Base.Seed
	if len(s.Seeds) > 0 {
		baseSeed = s.Seeds[0]
	}
	return jobs, baseSeed, nil
}

// matrix converts the axes form into a runner.Matrix, validating every
// point override against the base config up front so the Mutate
// closures can never fail mid-enumeration.
func (s Spec) matrix() (runner.Matrix, error) {
	points := make([]runner.Point, len(s.Points))
	for i, p := range s.Points {
		if len(p.Set) > 0 {
			probe := s.Base
			if err := json.Unmarshal(p.Set, &probe); err != nil {
				return runner.Matrix{}, fmt.Errorf("sweepd: spec %q point %q: bad override: %w", s.Name, p.Label, err)
			}
		}
		set := p.Set
		points[i] = runner.Point{Label: p.Label, Mutate: func(cfg *sim.Config) {
			if len(set) > 0 {
				// Validated against Base above; overlay errors here would
				// be config-shape drift, which Resolve already rejected.
				_ = json.Unmarshal(set, cfg)
			}
		}}
	}
	return runner.Matrix{Name: s.Name, Base: s.Base,
		Workloads: s.Workloads, Schemes: s.Schemes, Points: points, Seeds: s.Seeds}, nil
}

// SweepID derives the sweep's content ID from its resolved identity:
// the name plus every job's content key and coordinate, in enumeration
// order. Two specs that resolve to the same job sequence — axes or
// pre-enumerated, however spelled — are the same sweep and share
// state, results, and resume; execution policy (Options) is not
// content.
func SweepID(name string, jobs []runner.Job) string {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	for _, j := range jobs {
		h.Write([]byte(j.ID))
		h.Write([]byte{0})
		h.Write([]byte(j.Coord()))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:6])
}
