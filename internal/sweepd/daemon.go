package sweepd

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"banshee/internal/fault/netfault"
	"banshee/internal/obs"
	"banshee/internal/runner"
)

// Options configures a Daemon. Zero values get sensible defaults.
type Options struct {
	// StateDir is the daemon's durable root (required): specs, sinks,
	// ledgers, and done markers all live under it.
	StateDir string
	// Parallelism bounds each sweep's worker pool (0 = GOMAXPROCS).
	Parallelism int
	// MaxActive bounds concurrently running sweeps (0 = 2); further
	// submissions queue in submission order.
	MaxActive int
	// MaxQueued bounds sweeps waiting for a run slot beyond MaxActive
	// (0 = 16; negative = unbounded). Past the bound, Submit sheds
	// load with an *OverloadError — HTTP 429 plus Retry-After — so an
	// overloaded daemon degrades by refusing work, never by falling
	// over.
	MaxQueued int
	// MaxClientStreams bounds concurrent result/epoch/ledger streams
	// per client host (0 = 16; negative = unbounded). Past the bound
	// the stream request is shed with 429.
	MaxClientStreams int
	// LeaseTTL is the worker lease lifetime between renewals (0 = 10s).
	LeaseTTL time.Duration
	// Registry receives the daemon's service metrics and every sweep's
	// engine metrics, label-scoped per sweep (nil = a fresh registry).
	Registry *obs.Registry
	// Log, when non-nil, receives engine progress lines and daemon
	// lifecycle notes.
	Log io.Writer
}

// Daemon is the sweep service: it owns the durable store, the lease
// broker, and the set of live sweeps; Handler exposes all of it over
// HTTP. Construction resumes every unfinished sweep found on disk —
// recovery from a SIGKILL is just New on the same state dir.
type Daemon struct {
	opts   Options
	store  *Store
	broker *Broker
	reg    *obs.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	maxQueued        int
	maxClientStreams int

	mu            sync.Mutex
	sweeps        map[string]*sweep
	clientStreams map[string]int // client host → open streams
	closed        bool
	// submitMu serializes Submit end to end: without it, two clients
	// resubmitting the same failed sweep could race two engines onto
	// one sink file. Submission is control-plane-rare; a single lock
	// is fine.
	submitMu sync.Mutex

	active         *obs.Gauge
	submitted      *obs.Counter
	sweepsFinished *obs.Counter
	shedSubmit     *obs.Counter
	shedStream     *obs.Counter
}

// OverloadError is the daemon shedding load: the caller should back
// off for RetryAfter and try again. Served as HTTP 429 + Retry-After.
type OverloadError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string { return "sweepd: overloaded: " + e.Reason }

// New builds a daemon over stateDir and resumes every sweep a
// previous process left unfinished.
func New(o Options) (*Daemon, error) {
	if o.StateDir == "" {
		return nil, fmt.Errorf("sweepd: Options.StateDir is required")
	}
	store, err := NewStore(o.StateDir)
	if err != nil {
		return nil, err
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.RegisterRuntime()
	if o.MaxActive <= 0 {
		o.MaxActive = 2
	}
	maxQueued := o.MaxQueued
	if maxQueued == 0 {
		maxQueued = 16
	}
	maxStreams := o.MaxClientStreams
	if maxStreams == 0 {
		maxStreams = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		opts: o, store: store, reg: reg,
		broker:  NewBroker(o.LeaseTTL, reg),
		baseCtx: ctx, baseCancel: cancel,
		sem:       make(chan struct{}, o.MaxActive),
		maxQueued: maxQueued, maxClientStreams: maxStreams,
		sweeps:        map[string]*sweep{},
		clientStreams: map[string]int{},

		active:         reg.Gauge("sweepd_sweeps_active", "sweeps holding a run slot right now"),
		submitted:      reg.Counter("sweepd_sweeps_submitted_total", "sweep submissions accepted (idempotent resubmits included)"),
		sweepsFinished: reg.Counter("sweepd_sweeps_finished_total", "sweeps reaching a terminal state"),
		shedSubmit:     reg.Counter(`sweepd_load_shed_total{reason="submit"}`, "requests shed under load, by reason"),
		shedStream:     reg.Counter(`sweepd_load_shed_total{reason="stream"}`, "requests shed under load, by reason"),
	}
	reg.GaugeFunc("sweepd_sweeps_queued", "sweeps waiting for a run slot",
		func() float64 { return float64(d.queuedCount()) })
	// The client/worker retry and fault-injection tallies are
	// process-wide; exposing them on the daemon registry makes them
	// scrapable in in-process chaos tests and in worker-attached
	// daemons alike.
	InstrumentNet(reg)
	netfault.Instrument(reg)
	if err := d.resume(); err != nil {
		cancel()
		return nil, err
	}
	return d, nil
}

// queuedCount counts live sweeps still waiting for a run slot.
func (d *Daemon) queuedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, sw := range d.sweeps {
		if sw.status().State == StateQueued {
			n++
		}
	}
	return n
}

// acquireStream admits one stream for a client host, or sheds it.
func (d *Daemon) acquireStream(host string) bool {
	if d.maxClientStreams < 0 {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clientStreams[host] >= d.maxClientStreams {
		d.shedStream.Inc()
		return false
	}
	d.clientStreams[host]++
	return true
}

func (d *Daemon) releaseStream(host string) {
	if d.maxClientStreams < 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.clientStreams[host] <= 1 {
		delete(d.clientStreams, host)
	} else {
		d.clientStreams[host]--
	}
}

// Store exposes the daemon's durable store (read-only use: tests and
// the CLI inspect state paths through it).
func (d *Daemon) Store() *Store { return d.store }

// Registry exposes the daemon's metric registry.
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// Broker exposes the daemon's lease broker.
func (d *Daemon) Broker() *Broker { return d.broker }

// resume restarts every sweep on disk that never reached a terminal
// state — the crashed-daemon recovery path. Each resumes through the
// ordinary engine path: the sink loads its intact checkpoint prefix
// and only the unfinished suffix re-runs.
func (d *Daemon) resume() error {
	ids, err := d.store.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, done, err := d.store.LoadDone(id); err != nil {
			return err
		} else if done {
			continue
		}
		spec, err := d.store.LoadSpec(id)
		if err != nil {
			// A sweep dir with no readable spec (crash between mkdir and
			// spec commit) is unrecoverable but harmless: skip it.
			if d.opts.Log != nil {
				fmt.Fprintf(d.opts.Log, "sweepd: skipping unrecoverable sweep %s: %v\n", id, err)
			}
			continue
		}
		jobs, baseSeed, err := spec.Resolve()
		if err != nil {
			return fmt.Errorf("sweepd: resume %s: %w", id, err)
		}
		if got := SweepID(spec.Name, jobs); got != id {
			return fmt.Errorf("sweepd: resume %s: stored spec resolves to sweep %s", id, got)
		}
		if d.opts.Log != nil {
			fmt.Fprintf(d.opts.Log, "sweepd: resuming sweep %s (%s, %d jobs)\n", id, spec.Name, len(jobs))
		}
		d.start(id, spec, jobs, baseSeed)
	}
	return nil
}

// start registers and launches one sweep goroutine. Caller must not
// hold d.mu; the sweep must already be persisted (spec on disk).
func (d *Daemon) start(id string, spec Spec, jobs []runner.Job, baseSeed uint64) *sweep {
	reg := d.reg.With("sweep", id)
	ctx, cancel := context.WithCancel(d.baseCtx)
	sw := &sweep{
		id: id, spec: spec, jobs: jobs, baseSeed: baseSeed,
		runCtx: ctx, cancel: cancel,
		finished: make(chan struct{}),
		cDone:    reg.Counter(`banshee_jobs_total{state="done"}`, "jobs by final state"),
		cReused:  reg.Counter(`banshee_jobs_total{state="reused"}`, "jobs by final state"),
		cFailed:  reg.Counter(`banshee_jobs_total{state="failed"}`, "jobs by final state"),
	}
	sw.baseDone = sw.cDone.Value()
	sw.baseReused = sw.cReused.Value()
	sw.baseFailed = sw.cFailed.Value()

	d.mu.Lock()
	d.sweeps[id] = sw
	d.mu.Unlock()
	d.wg.Add(1)
	go d.run(sw)
	return sw
}

// Submit accepts a sweep spec, returning its (content-derived) status.
// Submission is idempotent: the same spec always maps to the same
// sweep ID, so a resubmit of a live sweep just reports it, a resubmit
// of a completed sweep returns its terminal status, and a resubmit of
// a failed or cancelled sweep restarts it — resuming from its
// checkpoint, converging toward the same final bytes.
func (d *Daemon) Submit(spec Spec) (Status, error) {
	jobs, baseSeed, err := spec.Resolve()
	if err != nil {
		return Status{}, err
	}
	id := SweepID(spec.Name, jobs)

	d.submitMu.Lock()
	defer d.submitMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return Status{}, fmt.Errorf("sweepd: daemon is shut down")
	}
	if sw, live := d.sweeps[id]; live {
		st := sw.status()
		if !st.Terminal() {
			d.mu.Unlock()
			d.submitted.Inc()
			return st, nil
		}
		if st.State == StateDone {
			d.mu.Unlock()
			d.submitted.Inc()
			return st, nil
		}
		// failed/cancelled: fall through to restart.
	}
	d.mu.Unlock()

	if st, done, err := d.store.LoadDone(id); err != nil {
		return Status{}, err
	} else if done && st.State == StateDone {
		d.submitted.Inc()
		return st, nil
	} else if done {
		if err := d.store.ClearDone(id); err != nil {
			return Status{}, err
		}
	}
	// Backpressure: only genuinely NEW work is shed — the idempotent
	// paths above (live resubmit, completed sweep) always answer, so a
	// client polling its own sweep is never turned away.
	if q := d.queuedCount(); d.maxQueued >= 0 && q >= d.maxQueued {
		d.shedSubmit.Inc()
		return Status{}, &OverloadError{
			Reason:     fmt.Sprintf("submission queue full (%d sweeps queued, max %d)", q, d.maxQueued),
			RetryAfter: 2 * time.Second,
		}
	}
	if err := d.store.SaveSpec(id, spec); err != nil {
		return Status{}, err
	}
	d.submitted.Inc()
	return d.start(id, spec, jobs, baseSeed).status(), nil
}

// Cancel stops a live sweep. The engine abandons in-flight jobs at
// their next step boundary; the checkpoint keeps its clean prefix, so
// a later resubmit resumes rather than restarts. Cancelling a sweep
// already in a terminal state is a no-op reporting that state.
func (d *Daemon) Cancel(id string) (Status, error) {
	d.mu.Lock()
	sw, ok := d.sweeps[id]
	d.mu.Unlock()
	if !ok {
		if st, done, err := d.store.LoadDone(id); err != nil {
			return Status{}, err
		} else if done {
			return st, nil
		}
		return Status{}, errUnknownSweep(id)
	}
	if st := sw.status(); st.Terminal() {
		return st, nil
	}
	sw.cancelled.Store(true)
	sw.cancel()
	<-sw.finished
	return sw.status(), nil
}

// Status reports one sweep's state, live or from its done marker.
func (d *Daemon) Status(id string) (Status, error) {
	d.mu.Lock()
	sw, ok := d.sweeps[id]
	d.mu.Unlock()
	if ok {
		return sw.status(), nil
	}
	if st, done, err := d.store.LoadDone(id); err != nil {
		return Status{}, err
	} else if done {
		return st, nil
	}
	return Status{}, errUnknownSweep(id)
}

// List reports every sweep the daemon knows: live ones plus terminal
// ones on disk, sorted by ID.
func (d *Daemon) List() ([]Status, error) {
	ids, err := d.store.List()
	if err != nil {
		return nil, err
	}
	byID := map[string]Status{}
	for _, id := range ids {
		if st, err := d.Status(id); err == nil {
			byID[id] = st
		}
	}
	d.mu.Lock()
	for id, sw := range d.sweeps {
		if _, ok := byID[id]; !ok {
			byID[id] = sw.status()
		}
	}
	d.mu.Unlock()
	keys := make([]string, 0, len(byID))
	for id := range byID {
		keys = append(keys, id)
	}
	sort.Strings(keys)
	out := make([]Status, 0, len(keys))
	for _, id := range keys {
		out = append(out, byID[id])
	}
	return out, nil
}

// Wait blocks until sweep id reaches a terminal state (or ctx ends),
// returning that state.
func (d *Daemon) Wait(ctx context.Context, id string) (Status, error) {
	d.mu.Lock()
	sw, ok := d.sweeps[id]
	d.mu.Unlock()
	if ok {
		select {
		case <-sw.finished:
		case <-ctx.Done():
			return Status{}, ctx.Err()
		}
	}
	return d.Status(id)
}

// Close stops the daemon: running sweeps are interrupted at their next
// step boundary and left unfinished on disk (no done marker), so the
// next New on the same state dir resumes them. Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.baseCancel()
	d.wg.Wait()
	return nil
}

func errUnknownSweep(id string) error {
	return fmt.Errorf("sweepd: no sweep %s", id)
}
