package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// Worker is an attached worker process's pull loop: it long-polls the
// daemon for job leases, simulates each leased job locally, renews the
// lease while the simulation runs, and reports the outcome. Parallel
// slots run independent loops, so one worker process can hold several
// leases at once. A worker holds no durable state — killing one only
// costs the jobs it was holding leases for, which the daemon re-runs
// locally after the leases expire.
type Worker struct {
	// Client targets the daemon to join (required).
	Client *Client
	// Name identifies the worker in the daemon's liveness window; ""
	// derives one from the hostname and PID.
	Name string
	// Parallel is the number of concurrent lease slots (0 = GOMAXPROCS).
	Parallel int
	// LeaseWait is the long-poll window per lease request (0 = 25s; the
	// daemon caps it server-side).
	LeaseWait time.Duration
	// Retry paces the pull loop's backoff after transient daemon
	// errors (zero = 200ms base, 5s cap). Individual HTTP calls
	// already ride the Client's own policy; this bounds how hard a
	// worker hammers a daemon that is down or shedding load.
	Retry runner.RetryPolicy
	// Log, when non-nil, receives one line per leased job and per
	// outcome.
	Log io.Writer
}

func (wk *Worker) retryPolicy() runner.RetryPolicy {
	if wk.Retry.MaxAttempts > 0 || wk.Retry.BaseDelay > 0 {
		return wk.Retry
	}
	return runner.RetryPolicy{MaxAttempts: 8, BaseDelay: 200 * time.Millisecond, MaxDelay: 5 * time.Second}
}

func (wk *Worker) name() string {
	if wk.Name != "" {
		return wk.Name
	}
	host, _ := os.Hostname()
	if host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// Run pulls and executes jobs until ctx ends. Transient daemon errors
// (restarting, unreachable) back off and retry — an attached worker
// outliving a daemon restart simply reattaches. The returned error is
// always ctx's, once the loop stops.
func (wk *Worker) Run(ctx context.Context) error {
	slots := wk.Parallel
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	wait := wk.LeaseWait
	if wait <= 0 {
		wait = 25 * time.Second
	}
	name := wk.name()
	policy := wk.retryPolicy()
	done := make(chan struct{}, slots)
	for s := 0; s < slots; s++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			slotName := fmt.Sprintf("%s/%d", name, slot)
			failures := 0
			for ctx.Err() == nil {
				if err := wk.pullOne(ctx, slotName, wait); err != nil && ctx.Err() == nil {
					// Exponential backoff with deterministic jitter,
					// clamped so a long outage settles at MaxDelay
					// instead of overflowing the shift.
					failures = min(failures+1, 16)
					d := policy.Delay(slotName, failures)
					if d <= 0 {
						d = time.Second
					}
					if wk.Log != nil {
						fmt.Fprintf(wk.Log, "worker %s: %v (retrying in %v)\n", slotName, err, d.Round(time.Millisecond))
					}
					sleepCtx(ctx, d)
				} else {
					failures = 0
				}
			}
		}(s)
	}
	for s := 0; s < slots; s++ {
		<-done
	}
	return ctx.Err()
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// pullOne performs one lease round: poll, simulate, report. A lease
// round with no work available is a nil round.
func (wk *Worker) pullOne(ctx context.Context, slotName string, wait time.Duration) error {
	grant, ok, err := wk.lease(ctx, slotName, wait)
	if err != nil || !ok {
		return err
	}
	job, err := grant.Job.decode()
	if err != nil {
		// Undecodable job: report the failure so the daemon's Dispatch
		// resolves instead of waiting out the TTL.
		wk.report(ctx, grant.Lease, grant.Job.ID, nil, fmt.Errorf("worker: bad job: %w", err))
		return err
	}
	if wk.Log != nil {
		fmt.Fprintf(wk.Log, "worker %s: leased %s (%s)\n", slotName, job.ID, job.Coord())
	}

	// Renew the lease at a third of its TTL while the simulation runs.
	// A transient renewal failure — latency spike, daemon briefly
	// partitioned — is NOT fatal: the lease stays valid until its
	// deadline, so the loop just retries sooner, and only abandons the
	// attempt once a full TTL has passed since the last confirmed
	// renewal (the broker has certainly expired the lease by then). An
	// explicit 410 Gone is the daemon saying so directly; cancel the
	// attempt — its result would be discarded anyway.
	runCtx, cancel := context.WithCancel(ctx)
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		ttl := time.Duration(grant.TTLMs) * time.Millisecond
		if ttl <= 0 {
			ttl = 3 * time.Second
		}
		interval := ttl / 3
		lastOK := time.Now()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-time.After(interval):
			}
			switch err := wk.renew(ctx, grant.Lease); {
			case err == nil:
				lastOK = time.Now()
				interval = ttl / 3
			case isGone(err), time.Since(lastOK) > ttl:
				cancel()
				return
			default:
				interval = max(ttl/6, 50*time.Millisecond)
			}
		}
	}()

	st, simErr := runLeased(runCtx, job)
	cancel()
	<-renewDone

	if ctx.Err() != nil {
		// Worker shutting down mid-job: report nothing; the lease
		// expires and the daemon re-runs the job locally.
		return nil
	}
	if wk.Log != nil {
		outcome := "ok"
		if simErr != nil {
			outcome = simErr.Error()
		}
		fmt.Fprintf(wk.Log, "worker %s: finished %s: %s\n", slotName, job.ID, outcome)
	}
	return wk.report(ctx, grant.Lease, job.ID, &st, simErr)
}

// isGone reports whether err is the daemon's 410: the lease is dead.
func isGone(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusGone
}

// runLeased simulates one leased job with the same panic isolation the
// engine's local attempts get: a panicking scheme fails the attempt,
// not the worker process.
func runLeased(ctx context.Context, job runner.Job) (st stats.Sim, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("worker panic: %v\n%s", r, debug.Stack())
		}
	}()
	return runner.SimulateJob(ctx, job)
}

// decode reconstructs the runner.Job from its wire form.
func (j leaseJob) decode() (runner.Job, error) {
	var cfg sim.Config
	if err := json.Unmarshal(j.Config, &cfg); err != nil {
		return runner.Job{}, err
	}
	job := runner.Job{ID: j.ID, Matrix: j.Matrix, Label: j.Label,
		Workload: j.Workload, Scheme: j.Scheme, Seed: j.Seed, Config: cfg}
	if want := runner.JobKey(cfg); job.ID != want {
		return runner.Job{}, fmt.Errorf("job %s config hashes to %s", job.ID, want)
	}
	return job, nil
}

// lease long-polls for one grant. ok=false means the window closed
// with no work. The per-attempt deadline covers the whole long-poll
// window plus slack — the daemon legitimately sits on the request.
func (wk *Worker) lease(ctx context.Context, name string, wait time.Duration) (LeaseGrant, bool, error) {
	var grant LeaseGrant
	err := wk.Client.doCall(ctx, callLease, wait+10*time.Second,
		http.MethodPost, "/v1/workers/lease",
		LeaseRequest{Worker: name, WaitMs: wait.Milliseconds()}, &grant)
	if err != nil {
		return LeaseGrant{}, false, err
	}
	if grant.Lease == "" { // 204: nothing offered
		return LeaseGrant{}, false, nil
	}
	return grant, true, nil
}

func (wk *Worker) renew(ctx context.Context, lease string) error {
	return wk.Client.do(ctx, callRenew, http.MethodPost, "/v1/workers/renew", LeaseUpdate{Lease: lease}, nil)
}

// report delivers the attempt outcome, keyed by (lease, job) so the
// daemon can dedupe redelivery: a retried report after a lost ACK is
// recognized and answered as already-accepted rather than recorded
// twice. A 410 Gone — the lease expired and the daemon re-ran the job
// — is not an error: the outcome is simply discarded, preserving the
// one-attempt-outcome-per-dispatch rule.
func (wk *Worker) report(ctx context.Context, lease, jobID string, st *stats.Sim, simErr error) error {
	upd := LeaseUpdate{Lease: lease, Job: jobID}
	if simErr != nil {
		upd.Error = simErr.Error()
	} else {
		upd.Result = st
	}
	err := wk.Client.do(ctx, callReport, http.MethodPost, "/v1/workers/result", upd, nil)
	if isGone(err) {
		return nil
	}
	return err
}
