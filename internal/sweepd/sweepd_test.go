// Service contract tests: a sweep submitted to the daemon must
// converge to results byte-identical to a local engine run of the same
// spec, through every disruption the service is built to absorb —
// concurrent streamers, client cancellation, worker lease expiry, and
// multi-client sharing.
package sweepd

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"banshee/internal/obs"
	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// testBase is a config small enough that a whole matrix runs in tens
// of milliseconds.
func testBase() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 1
	cfg.InstrPerCore = 20_000
	cfg.Seed = 7
	return cfg
}

func testSpec(name string) Spec {
	return Spec{
		Name:      name,
		Base:      testBase(),
		Workloads: []string{"mcf", "lbm"},
		Schemes:   []string{"NoCache", "Alloy 1"},
		Seeds:     []uint64{7, 8},
	}
}

// localBytes runs the spec through a local engine into a sink file and
// returns the file's bytes — the golden the service must converge to.
func localBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	jobs, baseSeed, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "local.jsonl")
	sink, err := runner.OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.Engine{Parallelism: 2, Sink: sink}
	if _, err := eng.RunJobs(context.Background(), spec.Name, baseSeed, jobs); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newDaemon(t *testing.T, dir string) *Daemon {
	t.Helper()
	d, err := New(Options{StateDir: dir, Parallelism: 2, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func dialTest(t *testing.T, d *Daemon) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

// TestSubmitConvergesToLocalBytes is the core acceptance contract:
// submitting a spec over HTTP yields a results stream byte-identical
// to a local engine run of the same spec.
func TestSubmitConvergesToLocalBytes(t *testing.T) {
	spec := testSpec("svc-converge")
	want := localBytes(t, spec)

	d := newDaemon(t, t.TempDir())
	c, _ := dialTest(t, d)
	ctx := context.Background()

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != SweepID(mustJobs(t, spec)) {
		t.Fatalf("submit returned sweep %s", st.ID)
	}
	var got bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("streamed bytes differ from local run:\n got %d bytes\nwant %d bytes", got.Len(), len(want))
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 8 || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	// Resubmit of a done sweep is idempotent: same ID, done, no re-run.
	again, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID || again.State != StateDone {
		t.Fatalf("resubmit = %+v", again)
	}
}

func mustJobs(t *testing.T, spec Spec) (string, []runner.Job) {
	t.Helper()
	jobs, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return spec.Name, jobs
}

// TestConcurrentStreamersIdenticalBytes: two clients streaming the
// same live sweep get identical byte sequences.
func TestConcurrentStreamersIdenticalBytes(t *testing.T) {
	spec := testSpec("svc-streamers")
	d := newDaemon(t, t.TempDir())
	c, _ := dialTest(t, d)
	ctx := context.Background()

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var bufs [2]bytes.Buffer
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.StreamResults(ctx, st.ID, 0, &bufs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("streamer %d: %v", i, err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("streamers disagree: %d vs %d bytes", bufs[0].Len(), bufs[1].Len())
	}
	if bufs[0].Len() == 0 {
		t.Fatal("streams empty")
	}
	if _, err := runner.ParseRecords(bufs[0].Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamResumeFromOffset: a stream broken at an arbitrary byte
// offset resumes there and completes to the same total bytes.
func TestStreamResumeFromOffset(t *testing.T) {
	spec := testSpec("svc-offset")
	want := localBytes(t, spec)
	d := newDaemon(t, t.TempDir())
	c, _ := dialTest(t, d)
	ctx := context.Background()

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	cut := int64(len(want) / 3)
	var head, tail bytes.Buffer
	head.Write(want[:cut]) // pretend the first stream died after cut bytes
	if _, err := c.StreamResults(ctx, st.ID, cut, &tail); err != nil {
		t.Fatal(err)
	}
	got := append(head.Bytes(), tail.Bytes()...)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed stream differs: %d vs %d bytes", len(got), len(want))
	}
}

// TestCancelIsolation: cancelling a sweep from one client leaves a
// concurrent streamer with an intact (CRC-clean, prefix-consistent)
// stream, and a resubmit converges to the full local bytes.
func TestCancelIsolation(t *testing.T) {
	spec := testSpec("svc-cancel")
	spec.Base.InstrPerCore = 200_000 // long enough to cancel mid-flight
	want := localBytes(t, spec)

	d := newDaemon(t, t.TempDir())
	c, _ := dialTest(t, d)
	ctx := context.Background()

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	streamDone := make(chan error, 1)
	go func() {
		_, err := c.StreamResults(ctx, st.ID, 0, &streamed)
		streamDone <- err
	}()
	// Let some work land, then cancel from a second client.
	time.Sleep(100 * time.Millisecond)
	c2, _ := dialTest(t, d)
	cst, err := c2.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != StateCancelled && cst.State != StateDone {
		t.Fatalf("cancel state = %s", cst.State)
	}
	if err := <-streamDone; err != nil {
		t.Fatalf("streamer broken by cancel: %v", err)
	}
	// The surviving stream is a clean CRC-checked prefix of the local
	// golden bytes.
	if !bytes.HasPrefix(want, streamed.Bytes()) {
		t.Fatalf("cancelled stream is not a prefix of the golden bytes (%d bytes)", streamed.Len())
	}
	if _, err := runner.ParseRecords(streamed.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Resubmit resumes from the checkpoint and converges byte-identically.
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit produced different sweep %s != %s", st2.ID, st.ID)
	}
	var full bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), want) {
		t.Fatalf("post-cancel resubmit diverged: %d vs %d bytes", full.Len(), len(want))
	}
}

// TestDaemonRestartResumes: SIGKILL-equivalent in-process — drop the
// daemon mid-sweep without marking anything, then construct a new
// daemon over the same state dir and verify it resumes the sweep to
// byte-identical completion.
func TestDaemonRestartResumes(t *testing.T) {
	spec := testSpec("svc-restart")
	spec.Base.InstrPerCore = 200_000
	want := localBytes(t, spec)
	dir := t.TempDir()

	d1 := newDaemon(t, dir)
	if _, err := d1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	// Wait for at least one record to hit the checkpoint, then "crash":
	// Close interrupts the engine and — critically — writes no done
	// marker.
	id := SweepID(mustJobs(t, spec))
	waitForBytes(t, d1.Store().ResultsPath(id), 1)
	d1.Close()

	d2 := newDaemon(t, dir)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := d2.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("resumed sweep ended %s (%s)", st.State, st.Error)
	}
	got, err := os.ReadFile(d2.Store().ResultsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed sweep diverged: %d vs %d bytes", len(got), len(want))
	}
}

func waitForBytes(t *testing.T, path string, min int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() >= min {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no checkpoint bytes at %s", path)
}

// TestWorkerAttachConvergence: a sweep executed partly by an attached
// worker produces the same bytes as a local run, and the worker
// actually took jobs.
func TestWorkerAttachConvergence(t *testing.T) {
	spec := testSpec("svc-worker")
	want := localBytes(t, spec)

	d := newDaemon(t, t.TempDir())
	c, _ := dialTest(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	wk := &Worker{Client: c, Name: "w-test", Parallel: 2}
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); wk.Run(ctx) }()

	// Wait until the broker sees the worker before submitting, so jobs
	// are actually offered.
	waitFor(t, func() bool { return d.Broker().Workers() > 0 })

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("worker-attached sweep diverged: %d vs %d bytes", got.Len(), len(want))
	}
	snap := d.Registry().Snapshot()
	if snap["sweepd_remote_results_total"] == 0 {
		t.Fatal("no job was executed remotely")
	}
	cancel()
	<-workerDone
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestLeaseExpiryRerunsLocally: a lease taken but never resolved (a
// SIGKILL'd worker) expires and the daemon re-runs the job locally —
// converging to the same bytes with no duplicate records, and a late
// result for the dead lease is refused with 410-equivalent.
func TestLeaseExpiryRerunsLocally(t *testing.T) {
	spec := testSpec("svc-expiry")
	want := localBytes(t, spec)

	dir := t.TempDir()
	d, err := New(Options{StateDir: dir, Parallelism: 2, LeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	// A "worker" that takes exactly one lease and vanishes without
	// reporting — the in-process equivalent of SIGKILL mid-job.
	ctx := context.Background()
	var dead struct {
		sync.Mutex
		lease string
	}
	go func() {
		for {
			id, _, _, ok := d.Broker().Lease(ctx, "vanishing", 2*time.Second)
			if ok {
				dead.Lock()
				dead.lease = id
				dead.Unlock()
				return // never renew, never resolve
			}
		}
	}()
	waitFor(t, func() bool { return d.Broker().Workers() > 0 })

	st, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	final, err := d.Wait(wctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("sweep ended %s (%s)", final.State, final.Error)
	}
	got, err := os.ReadFile(d.Store().ResultsPath(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("lease-expiry sweep diverged: %d vs %d bytes", len(got), len(want))
	}
	recs, err := runner.ParseRecords(got)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[fmt.Sprintf("%s|%s|%s|%s|%d", r.Matrix, r.Label, r.Workload, r.Scheme, r.Seed)]++
	}
	for coord, n := range seen {
		if n != 1 {
			t.Fatalf("coordinate %s recorded %d times", coord, n)
		}
	}
	snap := d.Registry().Snapshot()
	if snap["sweepd_lease_expiries_total"] == 0 {
		t.Fatal("no lease expiry was recorded")
	}
	// The vanished worker's lease is tombstoned: a late result is
	// refused so it can never double-record.
	dead.Lock()
	lease := dead.lease
	dead.Unlock()
	if lease == "" {
		t.Fatal("vanishing worker never took a lease")
	}
	if err := d.Broker().Resolve(lease, "", stats.Sim{}, nil); err != ErrLeaseGone {
		t.Fatalf("late result for dead lease: err = %v, want ErrLeaseGone", err)
	}
}

// TestMultiClientGangMetrics is the acceptance scenario: two
// submitters, two attached workers, gang width > 1, per-sweep isolated
// state, correct statuses, and service metrics visible on /metrics.
func TestMultiClientGangMetrics(t *testing.T) {
	specA := testSpec("svc-multi-a")
	specA.Options.GangWidth = 2
	specB := testSpec("svc-multi-b")
	specB.Base.Seed = 99 // distinct content
	specB.Seeds = []uint64{99, 100}
	specB.Options.GangWidth = 2
	wantA := localBytes(t, specA)
	wantB := localBytes(t, specB)

	d := newDaemon(t, t.TempDir())
	c1, srv := dialTest(t, d)
	c2, _ := dialTest(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	for i := 0; i < 2; i++ {
		wk := &Worker{Client: c1, Name: fmt.Sprintf("w-%d", i), Parallel: 1}
		go wk.Run(ctx)
	}
	waitFor(t, func() bool { return d.Broker().Workers() >= 2 })

	var wg sync.WaitGroup
	var gotA, gotB bytes.Buffer
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		st, err := c1.Submit(ctx, specA)
		if err == nil {
			_, err = c1.StreamResults(ctx, st.ID, 0, &gotA)
		}
		errs[0] = err
	}()
	go func() {
		defer wg.Done()
		st, err := c2.Submit(ctx, specB)
		if err == nil {
			_, err = c2.StreamResults(ctx, st.ID, 0, &gotB)
		}
		errs[1] = err
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if !bytes.Equal(gotA.Bytes(), wantA) {
		t.Fatalf("sweep A diverged: %d vs %d bytes", gotA.Len(), len(wantA))
	}
	if !bytes.Equal(gotB.Bytes(), wantB) {
		t.Fatalf("sweep B diverged: %d vs %d bytes", gotB.Len(), len(wantB))
	}

	// Both sweeps listed, both done, isolated state dirs.
	sts, err := c1.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 {
		t.Fatalf("listed %d sweeps", len(sts))
	}
	for _, st := range sts {
		if st.State != StateDone {
			t.Fatalf("sweep %s state %s", st.ID, st.State)
		}
		if _, err := os.Stat(d.Store().ResultsPath(st.ID)); err != nil {
			t.Fatal(err)
		}
	}

	// Service metrics are live on /metrics, with per-sweep labels.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<20)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	body := sb.String()
	for _, want := range []string{
		"sweepd_sweeps_submitted_total",
		"sweepd_workers_attached",
		`banshee_jobs_total{state="done",sweep="` + sts[0].ID + `"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestRegistryScopedView double-checks the label plumbing sweepd
// relies on: two scoped views share storage but produce distinct
// series.
func TestRegistryScopedView(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.With("sweep", "a").Counter("x_total", "x")
	b := reg.With("sweep", "b").Counter("x_total", "x")
	a.Inc()
	a.Inc()
	b.Inc()
	snap := reg.Snapshot()
	if snap[`x_total{sweep="a"}`] != 2 || snap[`x_total{sweep="b"}`] != 1 {
		t.Fatalf("scoped series wrong: %v", snap)
	}
}
