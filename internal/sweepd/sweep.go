package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"banshee/internal/errs"
	"banshee/internal/obs"
	"banshee/internal/runner"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// Sweep states, in lifecycle order. queued and running are live;
// done, failed, and cancelled are terminal (persisted in done.json).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Status is a sweep's externally visible state — what GET
// /v1/sweeps/{id}/status returns while the sweep runs and what the
// done marker persists once it finishes.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Jobs is the sweep's total job count; Done counts completed jobs
	// (executed, reused, or restored from the checkpoint), Failed the
	// permanently failed ones.
	Jobs   int `json:"jobs"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Executed/Cached split the completed jobs of the finishing run
	// (terminal states only; zero while running).
	Executed int `json:"executed,omitempty"`
	Cached   int `json:"cached,omitempty"`
	// Error carries the abort reason for state "failed".
	Error string `json:"error,omitempty"`
	// FinishedAt is set on terminal statuses (RFC 3339, UTC).
	FinishedAt string `json:"finished_at,omitempty"`
}

// Terminal reports whether the state is one a sweep never leaves on
// its own (a new submit of the same spec restarts failed/cancelled).
func (st Status) Terminal() bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCancelled
}

// sweep is one live sweep inside the daemon: the resolved spec, the
// engine run's context, and the scoped metric handles status is
// computed from.
type sweep struct {
	id       string
	spec     Spec
	jobs     []runner.Job
	baseSeed uint64

	runCtx    context.Context
	cancel    context.CancelFunc
	cancelled atomic.Bool   // user-requested cancel (vs daemon shutdown)
	finished  chan struct{} // closed when the run goroutine exits

	// Engine counters, read live for /status. The engine registers
	// these same names on the same scoped registry view, so these are
	// the exact counters it increments. The base values snapshot the
	// counters at this run's start: a restarted sweep reuses the same
	// scoped series (counters are cumulative across restarts), so the
	// run's own progress is the delta.
	cDone, cReused, cFailed          *obs.Counter
	baseDone, baseReused, baseFailed uint64

	mu    sync.Mutex
	final *Status // terminal status, once reached
}

// status renders the sweep's current externally visible state.
func (sw *sweep) status() Status {
	sw.mu.Lock()
	if sw.final != nil {
		st := *sw.final
		sw.mu.Unlock()
		return st
	}
	sw.mu.Unlock()
	st := Status{
		ID: sw.id, Name: sw.spec.Name, State: StateRunning,
		Jobs: len(sw.jobs),
	}
	if sw.cDone != nil {
		st.Done = int(sw.cDone.Value() + sw.cReused.Value() - sw.baseDone - sw.baseReused)
		st.Failed = int(sw.cFailed.Value() - sw.baseFailed)
	}
	if st.Done == 0 && st.Failed == 0 {
		st.State = StateQueued
	}
	return st
}

// setFinal records the sweep's terminal status.
func (sw *sweep) setFinal(st Status) {
	sw.mu.Lock()
	sw.final = &st
	sw.mu.Unlock()
}

// run executes the sweep to a terminal state (or daemon shutdown).
// It is the body of the sweep's goroutine: acquire a run slot, open
// the checkpoint sink in resume mode, run the engine with the broker
// as its dispatcher, and persist the outcome. A daemon shutdown mid-
// run leaves no done marker, which is exactly what makes the sweep
// resume on the next daemon start.
func (d *Daemon) run(sw *sweep) {
	defer close(sw.finished)
	defer d.wg.Done()

	ctx := sw.runCtx
	// Run slot: bounds concurrent sweeps so a burst of submissions
	// queues instead of oversubscribing the host.
	select {
	case d.sem <- struct{}{}:
		defer func() { <-d.sem }()
	case <-ctx.Done():
		d.finish(sw, nil, ctx.Err())
		return
	}
	d.active.Add(1)
	defer d.active.Add(-1)

	rs, err := d.execute(ctx, sw)
	d.finish(sw, rs, err)
}

// execute performs one engine run of the sweep over its state files.
func (d *Daemon) execute(ctx context.Context, sw *sweep) (rs *runner.ResultSet, err error) {
	sink, err := runner.OpenSink(d.store.ResultsPath(sw.id), true)
	if err != nil {
		return nil, err
	}
	// The daemon's checkpoint is the system of record for resume, so
	// each flushed record is also fsynced: a machine crash loses at most
	// the in-flight line, never an acknowledged record.
	sink.SetSync(true)
	defer func() {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sweepd: sink close: %w", cerr)
		}
	}()

	opts := sw.spec.Options
	reg := d.reg.With("sweep", sw.id)
	eng := runner.Engine{
		Parallelism: d.opts.Parallelism,
		Sink:        sink,
		Retry:       opts.retry(),
		JobTimeout:  opts.jobTimeout(),
		KeepGoing:   opts.KeepGoing,
		Ledger:      runner.NewLedger(d.store.LedgerPath(sw.id)),
		GangWidth:   opts.GangWidth,
		Dispatch:    d.broker,
		Metrics:     reg,
		Progress:    d.opts.Log,
	}
	var epochs *epochSink
	if opts.EpochEvery > 0 {
		// Epoch capture needs a per-job session hook, so it rides a
		// custom JobRunner — which also disables ganging for this sweep
		// (lockstep lanes share one front end and cannot be sampled per
		// job). Locally executed attempts stream epoch lines; remote
		// attempts don't (the worker has no epoch channel), so the
		// epochs stream is observability, not part of the byte-identity
		// contract the results stream carries.
		epochs, err = openEpochSink(d.store.EpochsPath(sw.id))
		if err != nil {
			return nil, err
		}
		defer epochs.Close()
		eng.JobRunner = epochs.jobRunner(reg, opts.EpochEvery)
	}
	return eng.RunJobs(ctx, sw.spec.Name, sw.baseSeed, sw.jobs)
}

// finish resolves the sweep to its terminal state and persists the
// done marker — unless the daemon is shutting down, in which case the
// sweep stays unfinished on disk and resumes on the next start.
func (d *Daemon) finish(sw *sweep, rs *runner.ResultSet, err error) {
	st := Status{ID: sw.id, Name: sw.spec.Name, Jobs: len(sw.jobs)}
	switch {
	case err == nil:
		st.State = StateDone
		st.Done = len(rs.Records())
		st.Failed = len(rs.Failed())
		st.Executed = rs.Executed
		st.Cached = rs.Cached
	case d.baseCtx.Err() != nil && !sw.cancelled.Load():
		// Daemon shutdown: deliberately no terminal state and no done
		// marker; a restarted daemon re-leases the unfinished work.
		sw.setFinal(Status{ID: sw.id, Name: sw.spec.Name, Jobs: len(sw.jobs), State: StateQueued})
		return
	case sw.cancelled.Load() && errorsIsCancel(err):
		st.State = StateCancelled
	case errors.Is(err, errs.ErrDiskFull):
		// Disk full is environmental, not a property of the sweep:
		// pause rather than fail. No done marker is written, so the
		// checkpoint prefix stays the resume point — a daemon restart
		// (or a resubmit of the same spec) continues the sweep once an
		// operator frees space.
		sw.setFinal(Status{ID: sw.id, Name: sw.spec.Name, Jobs: len(sw.jobs),
			State: StateQueued, Error: err.Error()})
		return
	default:
		st.State = StateFailed
		st.Error = err.Error()
	}
	if werr := d.store.MarkDone(sw.id, st); werr != nil {
		if errors.Is(werr, errs.ErrDiskFull) {
			// Same pause semantics when the marker itself can't be
			// written: the next run converges from the checkpoint.
			sw.setFinal(Status{ID: sw.id, Name: sw.spec.Name, Jobs: len(sw.jobs),
				State: StateQueued, Error: werr.Error()})
			return
		}
		st.State = StateFailed
		st.Error = fmt.Sprintf("%v (terminal state not persisted: %v)", st.Error, werr)
	}
	if done, ok, _ := d.store.LoadDone(sw.id); ok {
		st = done // pick up FinishedAt
	}
	sw.setFinal(st)
	if d.sweepsFinished != nil {
		d.sweepsFinished.Inc()
	}
}

// errorsIsCancel reports whether err wraps context cancellation at any
// depth — the engine wraps ctx.Err() in its own message.
func errorsIsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// epochSink streams per-job epoch snapshots to a JSONL file. Lines
// from concurrently executing jobs interleave in completion order —
// each line carries its job's identity, so consumers group by job
// rather than by position. Reset (truncated) at each run start, like
// the failure ledger: only the latest run's series are current.
type epochSink struct {
	mu sync.Mutex
	f  *os.File
}

// epochLine is one epoch sample on the wire.
type epochLine struct {
	Job      string  `json:"job"`
	Workload string  `json:"workload"`
	Scheme   string  `json:"scheme"`
	Seed     uint64  `json:"seed"`
	Retired  uint64  `json:"retired"`
	Cycles   uint64  `json:"cycles"`
	IPC      float64 `json:"ipc"`
	MPKI     float64 `json:"mpki"`
}

func openEpochSink(path string) (*epochSink, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepd: epoch sink: %w", err)
	}
	return &epochSink{f: f}, nil
}

func (es *epochSink) append(l epochLine) {
	b, err := json.Marshal(l)
	if err != nil {
		return
	}
	es.mu.Lock()
	es.f.Write(append(b, '\n'))
	es.mu.Unlock()
}

func (es *epochSink) Close() error {
	es.mu.Lock()
	defer es.mu.Unlock()
	return es.f.Close()
}

// jobRunner builds the sweep's JobRunner: the default simulation with
// a per-epoch hook streaming windowed snapshots to the epoch sink,
// plus the same sampler wiring the instrumented default runner has,
// so the scoped metric series keep moving.
func (es *epochSink) jobRunner(reg *obs.Registry, every uint64) runner.JobRunner {
	return func(ctx context.Context, job runner.Job) (stats.Sim, error) {
		sess, err := sim.NewSessionConfig(job.Config)
		if err != nil {
			return stats.Sim{}, err
		}
		sp := sim.NewSampler(reg)
		sp.Attach(sess, every)
		sess.OnEpoch(every, func(snap stats.Snapshot) {
			es.append(epochLine{
				Job: job.ID, Workload: job.Workload, Scheme: job.Scheme, Seed: job.Seed,
				Retired: snap.Retired, Cycles: snap.Cycles,
				IPC: snap.Window.IPC(), MPKI: snap.Window.MPKI(),
			})
		})
		st, err := sess.Run(ctx)
		if err == nil {
			sp.Finish(st)
		}
		return st, err
	}
}
