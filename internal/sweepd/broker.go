package sweepd

import (
	"context"
	"fmt"
	"sync"
	"time"

	"banshee/internal/obs"
	"banshee/internal/runner"
	"banshee/internal/stats"
)

// Broker is the job-lease exchange between the daemon's engines and
// attached worker processes. It implements runner.Dispatcher: every
// singleton job attempt is offered here first; if a worker claims it
// within the offer window the attempt runs remotely under a TTL'd
// lease, otherwise the offer is withdrawn and the engine runs the
// attempt locally. A lease that expires (worker SIGKILL'd, network
// gone) resolves its Dispatch as declined — the same local fallback —
// and the dead lease is tombstoned so a late result for it is refused
// with ErrLeaseGone rather than double-recording the job: exactly one
// attempt outcome per Dispatch call, which is what keeps the sink free
// of duplicate records.
type Broker struct {
	ttl          time.Duration // lease lifetime between renewals
	offerWait    time.Duration // how long Dispatch dangles an unclaimed offer
	workerWindow time.Duration // how recently a worker must have polled to count as attached

	mu      sync.Mutex
	offers  []*offer
	notify  chan struct{} // closed and replaced when an offer arrives
	leases  map[string]*lease
	tombs   map[string]tombstone // dead leases, for idempotent redelivery
	workers map[string]time.Time // worker name → last poll
	seq     uint64

	leasesOut *obs.Gauge
	expiries  *obs.Counter
	remoteOK  *obs.Counter
	declined  *obs.Counter
}

// ErrLeaseGone is returned to a worker renewing or resolving a lease
// the broker no longer holds — expired, cancelled, or never issued.
// The worker drops the result; the daemon has already arranged for the
// attempt to run elsewhere.
var ErrLeaseGone = fmt.Errorf("sweepd: lease expired or unknown")

// offer is one job attempt dangled before the worker pool.
type offer struct {
	job   runner.Job
	taken chan *lease // buffered 1; receives the lease when a worker claims
	gone  bool        // withdrawn by Dispatch; skip on claim
}

// lease is one claimed attempt: the worker holds its ID and must
// renew within TTL until it reports the outcome.
type lease struct {
	id       string
	job      runner.Job
	deadline time.Time
	result   chan attemptOutcome // buffered 1
}

type attemptOutcome struct {
	st  stats.Sim
	err error
}

// tombstone remembers how a dead lease died, keyed by lease ID and
// carrying the job's content key. A resolved tombstone lets a
// redelivered report — the wire duplicated it, or the worker retried
// after a lost ACK — be answered as already-accepted instead of
// recorded twice; an expired tombstone refuses late results because
// the local re-run owns the attempt. Exactly one outcome per Dispatch
// either way.
type tombstone struct {
	jobID    string
	resolved bool // true: outcome accepted; false: expired/abandoned
	at       time.Time
}

// NewBroker builds a broker with the given lease TTL (0 = 10s) and
// registers its service metrics on r (nil = unregistered).
func NewBroker(ttl time.Duration, r *obs.Registry) *Broker {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	b := &Broker{
		ttl:          ttl,
		offerWait:    ttl / 4,
		workerWindow: 90 * time.Second,
		notify:       make(chan struct{}),
		leases:       map[string]*lease{},
		tombs:        map[string]tombstone{},
		workers:      map[string]time.Time{},
	}
	if r != nil {
		b.leasesOut = r.Gauge("sweepd_leases_outstanding", "job leases held by attached workers right now")
		b.expiries = r.Counter("sweepd_lease_expiries_total", "leases that expired without a result (job re-ran locally)")
		b.remoteOK = r.Counter("sweepd_remote_results_total", "attempt outcomes delivered by attached workers")
		b.declined = r.Counter("sweepd_offers_declined_total", "dispatch offers no worker claimed in time")
		r.GaugeFunc("sweepd_workers_attached", "worker processes seen polling within the liveness window",
			func() float64 { return float64(b.Workers()) })
	}
	return b
}

// Workers counts the worker processes seen polling within the liveness
// window.
func (b *Broker) Workers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.workersLocked()
}

func (b *Broker) workersLocked() int {
	cutoff := time.Now().Add(-b.workerWindow)
	n := 0
	for name, at := range b.workers {
		if at.Before(cutoff) {
			delete(b.workers, name)
			continue
		}
		n++
	}
	return n
}

// Dispatch implements runner.Dispatcher. It declines immediately when
// no worker has polled recently — an unattended daemon must not stall
// every attempt for the offer window — and otherwise dangles the job
// until a worker claims it, its lease resolves, or its lease expires.
func (b *Broker) Dispatch(ctx context.Context, job runner.Job) (stats.Sim, bool, error) {
	b.mu.Lock()
	if b.workersLocked() == 0 {
		b.mu.Unlock()
		return stats.Sim{}, false, nil
	}
	off := &offer{job: job, taken: make(chan *lease, 1)}
	b.offers = append(b.offers, off)
	close(b.notify)
	b.notify = make(chan struct{})
	b.mu.Unlock()

	claimTimer := time.NewTimer(b.offerWait)
	defer claimTimer.Stop()
	var l *lease
	select {
	case l = <-off.taken:
	case <-claimTimer.C:
		if l = b.withdraw(off); l == nil {
			if b.declined != nil {
				b.declined.Inc()
			}
			return stats.Sim{}, false, nil
		}
	case <-ctx.Done():
		if l = b.withdraw(off); l == nil {
			return stats.Sim{}, false, nil
		}
	}

	// Claimed: wait for the worker's outcome, re-arming an expiry timer
	// against the (renewable) lease deadline.
	for {
		b.mu.Lock()
		deadline := l.deadline
		b.mu.Unlock()
		expire := time.NewTimer(time.Until(deadline))
		select {
		case out := <-l.result:
			expire.Stop()
			if b.remoteOK != nil {
				b.remoteOK.Inc()
			}
			return out.st, true, out.err
		case <-expire.C:
			b.mu.Lock()
			if time.Now().Before(l.deadline) {
				b.mu.Unlock()
				continue // renewed while the timer was in flight
			}
			b.buryLocked(l, false)
			b.mu.Unlock()
			if b.expiries != nil {
				b.expiries.Inc()
			}
			// Drain a result that raced the expiry: it lost; the local
			// re-run is the attempt of record.
			select {
			case <-l.result:
			default:
			}
			return stats.Sim{}, false, nil
		case <-ctx.Done():
			expire.Stop()
			b.mu.Lock()
			b.buryLocked(l, false)
			b.mu.Unlock()
			return stats.Sim{}, false, nil
		}
	}
}

// withdraw pulls off from the offer queue. If a worker claimed it in
// the race window, withdraw returns the lease (the caller must wait it
// out); otherwise the offer is marked gone and nil is returned.
func (b *Broker) withdraw(off *offer) *lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case l := <-off.taken:
		return l
	default:
	}
	off.gone = true
	for i, o := range b.offers {
		if o == off {
			b.offers = append(b.offers[:i], b.offers[i+1:]...)
			break
		}
	}
	return nil
}

// buryLocked removes a lease and tombstones it, recording whether its
// outcome was accepted (resolved) or discarded (expired/abandoned).
func (b *Broker) buryLocked(l *lease, resolved bool) {
	if _, ok := b.leases[l.id]; ok {
		delete(b.leases, l.id)
		if b.leasesOut != nil {
			b.leasesOut.Set(float64(len(b.leases)))
		}
	}
	b.tombs[l.id] = tombstone{jobID: l.job.ID, resolved: resolved, at: time.Now()}
	b.pruneTombsLocked()
}

// maxTombs bounds the tombstone map; beyond it, entries older than
// ten TTLs are swept (a worker retrying a report ten TTLs late has
// long since given up).
const maxTombs = 4096

func (b *Broker) pruneTombsLocked() {
	if len(b.tombs) <= maxTombs {
		return
	}
	cutoff := time.Now().Add(-10 * b.ttl)
	for id, t := range b.tombs {
		if t.at.Before(cutoff) {
			delete(b.tombs, id)
		}
	}
}

// Lease long-polls for a job on behalf of worker `name`: it claims the
// oldest live offer, or waits up to `wait` for one to arrive. ok=false
// means no work surfaced in the window — the worker polls again. Every
// call refreshes the worker's liveness, which is what makes the broker
// start offering jobs at all.
func (b *Broker) Lease(ctx context.Context, name string, wait time.Duration) (id string, job runner.Job, ttl time.Duration, ok bool) {
	deadline := time.Now().Add(wait)
	for {
		b.mu.Lock()
		b.workers[name] = time.Now()
		for len(b.offers) > 0 {
			off := b.offers[0]
			b.offers = b.offers[1:]
			if off.gone {
				continue
			}
			b.seq++
			l := &lease{
				id:       fmt.Sprintf("l-%d", b.seq),
				job:      off.job,
				deadline: time.Now().Add(b.ttl),
				result:   make(chan attemptOutcome, 1),
			}
			b.leases[l.id] = l
			if b.leasesOut != nil {
				b.leasesOut.Set(float64(len(b.leases)))
			}
			// Hand the lease over while still holding the mutex: withdraw
			// drains taken under the same lock, so a claim and a
			// withdrawal can never miss each other (taken is buffered, so
			// this send cannot block).
			off.taken <- l
			b.mu.Unlock()
			return l.id, l.job, b.ttl, true
		}
		notify := b.notify
		b.mu.Unlock()

		remain := time.Until(deadline)
		if remain <= 0 {
			return "", runner.Job{}, 0, false
		}
		t := time.NewTimer(remain)
		select {
		case <-notify:
			t.Stop()
		case <-t.C:
			return "", runner.Job{}, 0, false
		case <-ctx.Done():
			t.Stop()
			return "", runner.Job{}, 0, false
		}
	}
}

// Renew extends lease id's deadline by one TTL. ErrLeaseGone means the
// lease expired (or never existed): the worker should abandon the job
// — the daemon is already re-running it.
func (b *Broker) Renew(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	l, ok := b.leases[id]
	if !ok {
		return ErrLeaseGone
	}
	l.deadline = time.Now().Add(b.ttl)
	return nil
}

// Resolve delivers lease id's attempt outcome for job jobID
// (jobID "" skips the key check, for legacy callers). Exactly-once
// under redelivery: the first accepted outcome tombstones the lease,
// and a redelivered report for the same (lease, job key) — the wire
// duplicated it, or the worker retried after a lost ACK — returns nil
// without recording anything, so the worker sees the same success it
// missed. ErrLeaseGone means the broker already gave up on this lease
// (or the job key doesn't match it); the result is discarded and must
// not be recorded anywhere — the local re-run owns the attempt.
func (b *Broker) Resolve(id, jobID string, st stats.Sim, attemptErr error) error {
	b.mu.Lock()
	l, ok := b.leases[id]
	if ok && jobID != "" && l.job.ID != jobID {
		// A report for a job this lease never held: refuse it rather
		// than record a result under the wrong key.
		b.mu.Unlock()
		return ErrLeaseGone
	}
	if ok {
		b.buryLocked(l, true)
	}
	tomb, dead := b.tombs[id]
	b.mu.Unlock()
	if !ok {
		if dead && tomb.resolved && (jobID == "" || jobID == tomb.jobID) {
			return nil // duplicate delivery of an accepted outcome
		}
		return ErrLeaseGone
	}
	l.result <- attemptOutcome{st: st, err: attemptErr}
	return nil
}
