package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"banshee/internal/obs"
	"banshee/internal/stats"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/sweeps                  submit a Spec; returns Status (idempotent)
//	GET  /v1/sweeps                  list sweeps
//	GET  /v1/sweeps/{id}/status      one sweep's Status
//	GET  /v1/sweeps/{id}/results     checkpoint JSONL stream (?offset=N bytes, ?follow=0)
//	GET  /v1/sweeps/{id}/epochs      epoch-series JSONL stream (same params)
//	GET  /v1/sweeps/{id}/ledger      failure-ledger JSONL stream (same params)
//	POST /v1/sweeps/{id}/cancel      stop a live sweep; returns terminal Status
//	POST /v1/workers/lease           long-poll a job lease (worker protocol)
//	POST /v1/workers/renew           extend a lease
//	POST /v1/workers/result          deliver a lease's attempt outcome
//	GET  /metrics                    Prometheus exposition (plus /debug/vars, pprof)
//
// Streams default to follow mode: bytes are sent as the sweep writes
// them and the response ends when the sweep reaches a terminal state.
// ?offset resumes a broken stream at a byte position; ?follow=0 returns
// just the bytes currently on disk.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", d.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", d.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}/status", d.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", d.streamHandler(d.store.ResultsPath))
	mux.HandleFunc("GET /v1/sweeps/{id}/epochs", d.streamHandler(d.store.EpochsPath))
	mux.HandleFunc("GET /v1/sweeps/{id}/ledger", d.streamHandler(d.store.LedgerPath))
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", d.handleCancel)
	mux.HandleFunc("POST /v1/workers/lease", d.handleLease)
	mux.HandleFunc("POST /v1/workers/renew", d.handleRenew)
	mux.HandleFunc("POST /v1/workers/result", d.handleResult)
	obs.HandleMetrics(mux, d.reg)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "banshee sweepd: POST /v1/sweeps, GET /v1/sweeps/{id}/{status,results,epochs,ledger}, GET /metrics")
	})
	return mux
}

// apiError is the JSON error body every non-2xx API response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		secs := int((oe.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

// errorCode maps daemon errors to HTTP statuses.
func errorCode(err error) int {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return http.StatusTooManyRequests
	}
	s := err.Error()
	switch {
	case strings.Contains(s, "no sweep"):
		return http.StatusNotFound
	case strings.Contains(s, "shut down"):
		return http.StatusServiceUnavailable
	case strings.HasPrefix(s, "sweepd: spec"), strings.Contains(s, "needs a name"):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// clientHost extracts the per-client key stream limits bucket by.
func clientHost(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: bad spec: %w", err))
		return
	}
	st, err := d.Submit(spec)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	code := http.StatusAccepted
	if st.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	sts, err := d.List()
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	if sts == nil {
		sts = []Status{}
	}
	writeJSON(w, http.StatusOK, sts)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := d.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := d.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// streamHandler serves one of a sweep's JSONL files as a resumable
// stream. In follow mode (the default) it tails the file — flushing
// each new chunk to the client — until the sweep reaches a terminal
// state and the file is fully drained; every byte is sent exactly once
// per connection, so a client that reconnects passes the byte count it
// already holds as ?offset and the stream picks up there. Concurrent
// streamers are independent: each holds its own file handle and
// offset, so one client cancelling its request (or the whole sweep
// being cancelled) never perturbs another's byte sequence.
func (d *Daemon) streamHandler(path func(id string) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := d.Status(id); err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		offset, err := parseOffset(r.URL.Query().Get("offset"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		host := clientHost(r.RemoteAddr)
		if !d.acquireStream(host) {
			oe := &OverloadError{
				Reason:     fmt.Sprintf("too many concurrent streams for client %s (max %d)", host, d.maxClientStreams),
				RetryAfter: time.Second,
			}
			writeError(w, http.StatusTooManyRequests, oe)
			return
		}
		defer d.releaseStream(host)
		follow := r.URL.Query().Get("follow") != "0"
		w.Header().Set("Content-Type", "application/x-ndjson")
		d.streamFile(w, r, id, path(id), offset, follow)
	}
}

func parseOffset(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("sweepd: bad offset %q", s)
	}
	return n, nil
}

// streamPoll is how often a follow-mode stream re-checks the file and
// the sweep state for progress.
const streamPoll = 150 * time.Millisecond

func (d *Daemon) streamFile(w http.ResponseWriter, r *http.Request, id, path string, offset int64, follow bool) {
	flusher, _ := w.(http.Flusher)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	buf := make([]byte, 64<<10)
	wrote := false
	for {
		if f == nil {
			var err error
			f, err = os.Open(path)
			if err != nil && !os.IsNotExist(err) {
				if !wrote {
					writeError(w, http.StatusInternalServerError, err)
				}
				return
			}
			if f != nil {
				if _, err := f.Seek(offset, io.SeekStart); err != nil {
					if !wrote {
						writeError(w, http.StatusInternalServerError, err)
					}
					return
				}
			}
		}
		progressed := false
		if f != nil {
			for {
				n, err := f.Read(buf)
				if n > 0 {
					if _, werr := w.Write(buf[:n]); werr != nil {
						return // client went away
					}
					offset += int64(n)
					wrote = true
					progressed = true
				}
				if err != nil {
					break // EOF (or read error): fall through to wait/terminal check
				}
			}
		}
		if progressed && flusher != nil {
			flusher.Flush()
		}
		st, err := d.Status(id)
		terminal := err != nil || st.Terminal()
		if !follow || (terminal && !progressed) {
			// Drained: on the terminal path only stop after a pass that
			// read nothing, so bytes flushed concurrently with the state
			// transition are never cut off.
			if terminal && f != nil {
				// One final read to be safe against the race between the
				// last Append and the terminal transition.
				for {
					n, rerr := f.Read(buf)
					if n > 0 {
						if _, werr := w.Write(buf[:n]); werr != nil {
							return
						}
						wrote = true
					}
					if rerr != nil {
						break
					}
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-d.baseCtx.Done():
			return
		case <-time.After(streamPoll):
		}
	}
}

// Worker wire types.

// LeaseRequest is a worker's long-poll for a job.
type LeaseRequest struct {
	Worker string `json:"worker"`
	WaitMs int64  `json:"wait_ms,omitempty"`
}

// LeaseGrant is a successful lease: run Job and report under Lease
// before TTLMs elapses (renewing as needed).
type LeaseGrant struct {
	Lease string   `json:"lease"`
	TTLMs int64    `json:"ttl_ms"`
	Job   leaseJob `json:"job"`
}

// leaseJob is runner.Job on the wire.
type leaseJob struct {
	ID       string          `json:"id"`
	Matrix   string          `json:"matrix"`
	Label    string          `json:"label,omitempty"`
	Workload string          `json:"workload"`
	Scheme   string          `json:"scheme"`
	Seed     uint64          `json:"seed"`
	Config   json.RawMessage `json:"config"`
}

// LeaseUpdate renews or resolves a lease.
type LeaseUpdate struct {
	Lease string `json:"lease"`
	// Job is the reported job's content key (result endpoint): the
	// idempotency key the daemon dedupes redelivered reports by.
	Job string `json:"job,omitempty"`
	// Result/Error report the attempt outcome (result endpoint only).
	Result *stats.Sim `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// maxLeaseWait caps a worker's long-poll window server-side.
const maxLeaseWait = 30 * time.Second

func (d *Daemon) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: bad lease request: %w", err))
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: lease request needs a worker name"))
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait <= 0 || wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	id, job, ttl, ok := d.broker.Lease(r.Context(), req.Worker, wait)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	cfg, err := json.Marshal(job.Config)
	if err != nil {
		// Undeliverable job: decline it back to local execution.
		d.broker.Resolve(id, job.ID, stats.Sim{}, fmt.Errorf("sweepd: job config not encodable: %w", err))
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, LeaseGrant{
		Lease: id, TTLMs: ttl.Milliseconds(),
		Job: leaseJob{ID: job.ID, Matrix: job.Matrix, Label: job.Label,
			Workload: job.Workload, Scheme: job.Scheme, Seed: job.Seed, Config: cfg},
	})
}

func (d *Daemon) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req LeaseUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: bad renew: %w", err))
		return
	}
	if err := d.broker.Renew(req.Lease); err != nil {
		writeError(w, http.StatusGone, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	var req LeaseUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: bad result: %w", err))
		return
	}
	var st stats.Sim
	var attemptErr error
	if req.Error != "" {
		attemptErr = errors.New(req.Error)
	} else if req.Result != nil {
		st = *req.Result
	} else {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweepd: result needs result or error"))
		return
	}
	if err := d.broker.Resolve(req.Lease, req.Job, st, attemptErr); err != nil {
		// The lease expired and the job is re-running locally: the
		// worker's result is discarded, by design exactly once.
		writeError(w, http.StatusGone, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
