package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"banshee/internal/errs"
)

// Store is the daemon's durable state: one directory per sweep under
// <root>/sweeps/<id>/ holding the submitted spec, the checkpoint sink,
// the failure ledger, the epoch stream, and — once the sweep reaches a
// terminal state — a done marker with its final status. Everything the
// daemon needs to resume after a SIGKILL is in these files: a sweep
// directory without a done marker is, by definition, unfinished work.
type Store struct {
	root string
}

// NewStore opens (creating if needed) the state directory at root.
func NewStore(root string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(root, "sweeps"), 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: state dir: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the state directory path.
func (s *Store) Root() string { return s.root }

// Dir returns sweep id's directory, creating it if needed.
func (s *Store) Dir(id string) (string, error) {
	dir := filepath.Join(s.root, "sweeps", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sweepd: sweep dir: %w", err)
	}
	return dir, nil
}

func (s *Store) path(id, name string) string {
	return filepath.Join(s.root, "sweeps", id, name)
}

// ResultsPath is the sweep's checkpoint sink file (success stream).
func (s *Store) ResultsPath(id string) string { return s.path(id, "results.jsonl") }

// LedgerPath is the sweep's failure ledger file.
func (s *Store) LedgerPath(id string) string { return s.path(id, "results.failed.jsonl") }

// EpochsPath is the sweep's epoch-series stream file.
func (s *Store) EpochsPath(id string) string { return s.path(id, "epochs.jsonl") }

// SpecPath is the sweep's submitted spec.
func (s *Store) SpecPath(id string) string { return s.path(id, "spec.json") }

// DonePath is the sweep's terminal-status marker.
func (s *Store) DonePath(id string) string { return s.path(id, "done.json") }

// writeAtomic writes data to path via a temp file + fsync + rename, so
// a crash mid-write can never leave a torn spec or done marker: the
// file either exists complete or not at all. The temp file is synced
// before the rename (else a power loss could commit a name pointing at
// unwritten blocks) and the parent directory is synced after it (else
// the rename itself could be lost). Out-of-space failures come back as
// errs.ErrDiskFull so callers pause instead of treating the sweep as
// corrupt.
func (s *Store) writeAtomic(path string, v interface{}) error {
	base := filepath.Base(path)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("sweepd: encode %s: %w", base, err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return errs.WrapDiskFull("create "+base, fmt.Errorf("sweepd: write %s: %w", base, err))
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return errs.WrapDiskFull("write "+base, fmt.Errorf("sweepd: write %s: %w", base, err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return errs.WrapDiskFull("fsync "+base, fmt.Errorf("sweepd: fsync %s: %w", base, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return errs.WrapDiskFull("close "+base, fmt.Errorf("sweepd: write %s: %w", base, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return errs.WrapDiskFull("commit "+base, fmt.Errorf("sweepd: commit %s: %w", base, err))
	}
	// Make the rename durable. Best-effort: directory fsync is not
	// supported everywhere, and its failure cannot un-commit the file.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// SaveSpec persists sweep id's spec (atomically — resume must never
// see a half-written spec).
func (s *Store) SaveSpec(id string, spec Spec) error {
	if _, err := s.Dir(id); err != nil {
		return err
	}
	return s.writeAtomic(s.SpecPath(id), spec)
}

// LoadSpec reads sweep id's persisted spec.
func (s *Store) LoadSpec(id string) (Spec, error) {
	b, err := os.ReadFile(s.SpecPath(id))
	if err != nil {
		return Spec{}, fmt.Errorf("sweepd: load spec %s: %w", id, err)
	}
	var spec Spec
	if err := json.Unmarshal(b, &spec); err != nil {
		return Spec{}, fmt.Errorf("sweepd: parse spec %s: %w", id, err)
	}
	return spec, nil
}

// MarkDone persists sweep id's terminal status. Its presence is what
// stops a restarted daemon from re-running the sweep.
func (s *Store) MarkDone(id string, st Status) error {
	st.FinishedAt = time.Now().UTC().Format(time.RFC3339)
	return s.writeAtomic(s.DonePath(id), st)
}

// ClearDone removes sweep id's terminal marker — the first step of
// restarting a cancelled or failed sweep.
func (s *Store) ClearDone(id string) error {
	if err := os.Remove(s.DonePath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sweepd: clear done %s: %w", id, err)
	}
	return nil
}

// LoadDone reads sweep id's terminal status; ok reports whether the
// sweep has one (false = never finished, i.e. resumable).
func (s *Store) LoadDone(id string) (Status, bool, error) {
	b, err := os.ReadFile(s.DonePath(id))
	if os.IsNotExist(err) {
		return Status{}, false, nil
	}
	if err != nil {
		return Status{}, false, fmt.Errorf("sweepd: load done %s: %w", id, err)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		return Status{}, false, fmt.Errorf("sweepd: parse done %s: %w", id, err)
	}
	return st, true, nil
}

// List returns every sweep ID with a directory on disk, sorted.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "sweeps"))
	if err != nil {
		return nil, fmt.Errorf("sweepd: list sweeps: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
