package sweepd

import (
	"fmt"
	"sync/atomic"

	"banshee/internal/obs"
)

// Call names keying the retry telemetry and the backoff jitter. Fixed
// set: metrics labels must be low-cardinality.
const (
	callSubmit = "submit"
	callList   = "list"
	callStatus = "status"
	callCancel = "cancel"
	callStream = "stream"
	callLease  = "lease"
	callRenew  = "renew"
	callReport = "report"
)

var netCalls = []string{callSubmit, callList, callStatus, callCancel,
	callStream, callLease, callRenew, callReport}

// netRetries counts retried calls by name, process-wide — every
// Client in the process feeds the same tallies, mirroring the fault
// package's injection counters: a chaos run is one experiment.
var netRetries = func() map[string]*atomic.Uint64 {
	m := make(map[string]*atomic.Uint64, len(netCalls))
	for _, c := range netCalls {
		m[c] = &atomic.Uint64{}
	}
	return m
}()

// recordRetry tallies one retried call.
func recordRetry(call string) {
	if c, ok := netRetries[call]; ok {
		c.Add(1)
	}
}

// NetRetryCount returns how many times the named call has been
// retried in this process (0 for unknown names).
func NetRetryCount(call string) uint64 {
	if c, ok := netRetries[call]; ok {
		return c.Load()
	}
	return 0
}

// NetRetryTotal returns the total retried calls in this process.
func NetRetryTotal() uint64 {
	var n uint64
	for _, c := range netRetries {
		n += c.Load()
	}
	return n
}

// InstrumentNet exposes the retry tallies on r as
// banshee_net_retries_total{call=...}. Idempotent, like all registry
// registration.
func InstrumentNet(r *obs.Registry) {
	for _, call := range netCalls {
		c := netRetries[call]
		r.CounterFunc(
			fmt.Sprintf("banshee_net_retries_total{call=%q}", call),
			"sweepd client calls retried after transient failures, by call",
			func() float64 { return float64(c.Load()) })
	}
}
