package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"banshee/internal/runner"
)

// Client talks to a sweepd daemon over HTTP/JSON. The zero HTTP
// client has no global timeout — result streams are long-lived — so
// per-call deadlines come from the caller's contexts.
type Client struct {
	base string
	hc   *http.Client
}

// Dial returns a client for the daemon at addr ("host:port" or a full
// http:// URL). No connection is made until the first call.
func Dial(addr string) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("sweepd: empty daemon address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	return &Client{base: addr, hc: &http.Client{}}, nil
}

// Base returns the daemon URL this client targets.
func (c *Client) Base() string { return c.base }

// do issues one JSON round trip. out may be nil. Non-2xx responses are
// surfaced as *APIError carrying the HTTP status and the daemon's
// error message.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepd: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("sweepd: decode response: %w", err)
	}
	return nil
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sweepd: daemon returned %d: %s", e.Status, e.Message)
}

func decodeAPIError(resp *http.Response) error {
	var ae apiError
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(b, &ae) != nil || ae.Error == "" {
		ae.Error = strings.TrimSpace(string(b))
	}
	return &APIError{Status: resp.StatusCode, Message: ae.Error}
}

// IsNotFound reports whether err is the daemon saying "no such sweep".
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Submit sends a sweep spec and returns its status. Idempotent: the
// same spec always resolves to the same sweep.
func (c *Client) Submit(ctx context.Context, spec Spec) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", spec, &st)
	return st, err
}

// SubmitMatrix enumerates a locally declared Matrix and submits it as
// a pre-resolved job list — the path for matrices whose Points carry
// closures the wire can't express.
func (c *Client) SubmitMatrix(ctx context.Context, m runner.Matrix, o RunOptions) (Status, error) {
	spec, err := SpecFromMatrix(m, o)
	if err != nil {
		return Status{}, err
	}
	return c.Submit(ctx, spec)
}

// Status fetches one sweep's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/status", nil, &st)
	return st, err
}

// List fetches every sweep the daemon knows.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var sts []Status
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &sts)
	return sts, err
}

// Cancel stops a live sweep, returning its terminal status.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/sweeps/"+id+"/cancel", nil, &st)
	return st, err
}

// Wait polls until the sweep reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// stream copies one sweep stream into w starting at byte offset,
// returning the bytes written. With follow, the copy lasts until the
// sweep is terminal and drained; the caller resumes a broken stream by
// calling again with offset advanced by the bytes it already has.
func (c *Client) stream(ctx context.Context, id, kind string, offset int64, follow bool, w io.Writer) (int64, error) {
	url := fmt.Sprintf("%s/v1/sweeps/%s/%s?offset=%d", c.base, id, kind, offset)
	if !follow {
		url += "&follow=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeAPIError(resp)
	}
	return io.Copy(w, resp.Body)
}

// StreamResults streams the sweep's checkpoint JSONL into w from byte
// offset until the sweep completes (follow mode). The bytes are
// exactly the daemon's results file: CRC-checksummed records in
// enumeration order, byte-identical to a local run of the same spec.
func (c *Client) StreamResults(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "results", offset, true, w)
}

// StreamEpochs streams the sweep's epoch-series JSONL into w from byte
// offset until the sweep completes.
func (c *Client) StreamEpochs(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "epochs", offset, true, w)
}

// FetchResults returns the bytes of the results stream currently on
// disk (no follow).
func (c *Client) FetchResults(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "results", offset, false, w)
}

// Results streams the completed sweep's checkpoint to the end and
// parses it. Call after Wait (or let follow mode do the waiting).
func (c *Client) Results(ctx context.Context, id string) ([]runner.Record, error) {
	var buf bytes.Buffer
	if _, err := c.stream(ctx, id, "results", 0, true, &buf); err != nil {
		return nil, err
	}
	return runner.ParseRecords(buf.Bytes())
}

// Ledger fetches and parses the sweep's failure ledger (empty when
// every job succeeded).
func (c *Client) Ledger(ctx context.Context, id string) ([]runner.Record, error) {
	var buf bytes.Buffer
	if _, err := c.stream(ctx, id, "ledger", 0, false, &buf); err != nil {
		return nil, err
	}
	return runner.ParseLedger(buf.Bytes())
}

// RunMatrix is the remote counterpart of Engine.Run: submit the
// matrix, wait for the sweep to finish, and assemble the streamed
// records into the ResultSet the aggregators consume. A failed sweep
// returns an error carrying the daemon's abort reason; a sweep with
// KeepGoing failures returns normally with the failures indexed.
func (c *Client) RunMatrix(ctx context.Context, m runner.Matrix, o RunOptions) (*runner.ResultSet, error) {
	spec, err := SpecFromMatrix(m, o)
	if err != nil {
		return nil, err
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	recs, err := c.Results(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	switch final.State {
	case StateDone:
	case StateFailed:
		return nil, fmt.Errorf("sweepd: sweep %s failed: %s", st.ID, final.Error)
	default:
		return nil, fmt.Errorf("sweepd: sweep %s ended %s", st.ID, final.State)
	}
	var failed []runner.Record
	if final.Failed > 0 {
		if failed, err = c.Ledger(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	baseSeed := m.Base.Seed
	if len(m.Seeds) > 0 {
		baseSeed = m.Seeds[0]
	}
	return runner.AssembleResultSet(m.Name, baseSeed, recs, failed), nil
}
