package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"banshee/internal/runner"
)

// Client talks to a sweepd daemon over HTTP/JSON. Every unary call
// carries a per-call deadline and rides a bounded retry policy with
// deterministic jitter; mutating calls are idempotent on the daemon
// side (Submit is content-keyed, lease reports are deduped by
// (lease, job key)), so a retry after a lost ACK is always safe.
// Result streams are long-lived and resume by byte offset instead.
type Client struct {
	base        string
	hc          *http.Client
	retry       runner.RetryPolicy
	callTimeout time.Duration
}

// ClientOptions tunes the transport a Client is built with. The zero
// value means the hardened defaults — there is deliberately no way
// back to the unbounded zero-valued http.Client.
type ClientOptions struct {
	// DialTimeout bounds TCP connection establishment (default 5s).
	DialTimeout time.Duration
	// TLSHandshakeTimeout bounds the TLS handshake (default 5s).
	TLSHandshakeTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for response headers. It
	// must exceed the worker lease long-poll window (the daemon holds
	// the request headerless while waiting for work), so the default
	// is 40s against the server-side 30s cap.
	ResponseHeaderTimeout time.Duration
	// CallTimeout is the per-attempt deadline on unary calls (default
	// 15s). Streams are exempt: they are bounded by the caller's ctx
	// and resume by offset.
	CallTimeout time.Duration
	// Retry bounds per-call retries; backoff is exponential with
	// deterministic jitter (runner.RetryPolicy semantics). The zero
	// value means 4 attempts, 50ms base, 2s cap.
	Retry runner.RetryPolicy
	// Transport, when non-nil, replaces the default transport —
	// the seam chaos tests use to inject network faults.
	Transport http.RoundTripper
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.TLSHandshakeTimeout <= 0 {
		o.TLSHandshakeTimeout = 5 * time.Second
	}
	if o.ResponseHeaderTimeout <= 0 {
		o.ResponseHeaderTimeout = maxLeaseWait + 10*time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 15 * time.Second
	}
	if o.Retry.MaxAttempts <= 0 {
		o.Retry = runner.RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	}
	return o
}

// Dial returns a client for the daemon at addr ("host:port" or a full
// http:// URL) with the default timeouts and retry policy. No
// connection is made until the first call.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, ClientOptions{})
}

// DialWith is Dial with explicit transport and retry tuning.
func DialWith(addr string, o ClientOptions) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("sweepd: empty daemon address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	o = o.withDefaults()
	rt := o.Transport
	if rt == nil {
		rt = &http.Transport{
			DialContext:           (&net.Dialer{Timeout: o.DialTimeout}).DialContext,
			TLSHandshakeTimeout:   o.TLSHandshakeTimeout,
			ResponseHeaderTimeout: o.ResponseHeaderTimeout,
			MaxIdleConnsPerHost:   8,
		}
	}
	return &Client{
		base:        addr,
		hc:          &http.Client{Transport: rt},
		retry:       o.Retry,
		callTimeout: o.CallTimeout,
	}, nil
}

// Base returns the daemon URL this client targets.
func (c *Client) Base() string { return c.base }

// do issues one unary JSON call under the retry policy and the
// default per-attempt deadline.
func (c *Client) do(ctx context.Context, call, method, path string, in, out interface{}) error {
	return c.doCall(ctx, call, c.callTimeout, method, path, in, out)
}

// doCall issues a unary JSON call: per-attempt deadline, bounded
// retries with deterministic jitter, Retry-After honored on 429/503.
// out may be nil. Non-2xx responses surface as *APIError. The call
// name keys both the retry telemetry and the backoff jitter.
func (c *Client) doCall(ctx context.Context, call string, timeout time.Duration, method, path string, in, out interface{}) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepd: encode request: %w", err)
		}
		payload = b
	}
	attempts := c.retry.Attempts()
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = c.doOnce(ctx, timeout, method, path, payload, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= attempts || !retryable(lastErr) {
			return lastErr
		}
		recordRetry(call)
		d := c.retry.Delay(call+"|"+path, attempt)
		if ra := retryAfter(lastErr); ra > d {
			d = ra
		}
		if !sleepCtxDone(ctx, d) {
			return lastErr
		}
	}
}

// doOnce is one attempt of a unary call.
func (c *Client) doOnce(ctx context.Context, timeout time.Duration, method, path string, payload []byte, out interface{}) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("sweepd: decode response: %w", err)
	}
	return nil
}

// retryable classifies an error as transient. Transport failures,
// torn responses, 5xx, and 429 retry; other 4xx are the daemon
// meaning it, and context errors are the caller meaning it.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true
}

// retryAfter extracts a daemon-directed backoff (429/503 Retry-After)
// from err, or 0.
func retryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// sleepCtxDone sleeps d, returning false if ctx ended first.
func sleepCtxDone(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the daemon's requested backoff (429/503 responses
	// under load shed), zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sweepd: daemon returned %d: %s", e.Status, e.Message)
}

// IsOverloaded reports whether err is the daemon shedding load (429):
// back off and retry later.
func IsOverloaded(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests
}

func decodeAPIError(resp *http.Response) error {
	var ae apiError
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if json.Unmarshal(b, &ae) != nil || ae.Error == "" {
		ae.Error = strings.TrimSpace(string(b))
	}
	out := &APIError{Status: resp.StatusCode, Message: ae.Error}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return out
}

// IsNotFound reports whether err is the daemon saying "no such sweep".
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Submit sends a sweep spec and returns its status. Idempotent: the
// same spec always resolves to the same sweep.
func (c *Client) Submit(ctx context.Context, spec Spec) (Status, error) {
	var st Status
	err := c.do(ctx, callSubmit, http.MethodPost, "/v1/sweeps", spec, &st)
	return st, err
}

// SubmitMatrix enumerates a locally declared Matrix and submits it as
// a pre-resolved job list — the path for matrices whose Points carry
// closures the wire can't express.
func (c *Client) SubmitMatrix(ctx context.Context, m runner.Matrix, o RunOptions) (Status, error) {
	spec, err := SpecFromMatrix(m, o)
	if err != nil {
		return Status{}, err
	}
	return c.Submit(ctx, spec)
}

// Status fetches one sweep's status.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, callStatus, http.MethodGet, "/v1/sweeps/"+id+"/status", nil, &st)
	return st, err
}

// List fetches every sweep the daemon knows.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var sts []Status
	err := c.do(ctx, callList, http.MethodGet, "/v1/sweeps", nil, &sts)
	return sts, err
}

// Cancel stops a live sweep, returning its terminal status.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, callCancel, http.MethodPost, "/v1/sweeps/"+id+"/cancel", nil, &st)
	return st, err
}

// Wait polls until the sweep reaches a terminal state (or ctx ends).
// A failed poll — daemon restarting, network partitioned — does not
// abort the wait: each poll already rides the retry policy, and Wait
// keeps polling through persistent failures until the deadline,
// failing only on a permanent answer (e.g. 404: the sweep does not
// exist).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	var last Status
	var lastErr error
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil:
			last, lastErr = st, nil
			if st.Terminal() {
				return st, nil
			}
		case !retryable(err) && ctx.Err() == nil:
			return last, err
		default:
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return last, fmt.Errorf("%w (last poll error: %v)", ctx.Err(), lastErr)
			}
			return last, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// stream copies one sweep stream into w starting at byte offset,
// returning the bytes written. With follow, the copy lasts until the
// sweep is terminal and drained. A connection torn mid-copy resumes
// transparently: the next attempt asks for offset advanced by the
// bytes already delivered, so the caller's byte sequence stays exact;
// progress resets the retry budget, so only a connection that fails
// repeatedly without delivering anything gives up.
func (c *Client) stream(ctx context.Context, id, kind string, offset int64, follow bool, w io.Writer) (int64, error) {
	var total int64
	attempt := 0
	for {
		n, err := c.streamOnce(ctx, id, kind, offset+total, follow, w)
		total += n
		if err == nil {
			return total, nil
		}
		if n > 0 {
			attempt = 0
		}
		attempt++
		if ctx.Err() != nil || attempt >= c.retry.Attempts() || !retryable(err) {
			return total, err
		}
		recordRetry(callStream)
		d := c.retry.Delay(callStream+"|"+id+"/"+kind, attempt)
		if ra := retryAfter(err); ra > d {
			d = ra
		}
		if !sleepCtxDone(ctx, d) {
			return total, err
		}
	}
}

// streamOnce is one connection's worth of stream bytes.
func (c *Client) streamOnce(ctx context.Context, id, kind string, offset int64, follow bool, w io.Writer) (int64, error) {
	url := fmt.Sprintf("%s/v1/sweeps/%s/%s?offset=%d", c.base, id, kind, offset)
	if !follow {
		url += "&follow=0"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeAPIError(resp)
	}
	return io.Copy(w, resp.Body)
}

// StreamResults streams the sweep's checkpoint JSONL into w from byte
// offset until the sweep completes (follow mode). The bytes are
// exactly the daemon's results file: CRC-checksummed records in
// enumeration order, byte-identical to a local run of the same spec.
func (c *Client) StreamResults(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "results", offset, true, w)
}

// StreamEpochs streams the sweep's epoch-series JSONL into w from byte
// offset until the sweep completes.
func (c *Client) StreamEpochs(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "epochs", offset, true, w)
}

// FetchResults returns the bytes of the results stream currently on
// disk (no follow).
func (c *Client) FetchResults(ctx context.Context, id string, offset int64, w io.Writer) (int64, error) {
	return c.stream(ctx, id, "results", offset, false, w)
}

// Results streams the completed sweep's checkpoint to the end and
// parses it. Call after Wait (or let follow mode do the waiting).
func (c *Client) Results(ctx context.Context, id string) ([]runner.Record, error) {
	var buf bytes.Buffer
	if _, err := c.stream(ctx, id, "results", 0, true, &buf); err != nil {
		return nil, err
	}
	return runner.ParseRecords(buf.Bytes())
}

// Ledger fetches and parses the sweep's failure ledger (empty when
// every job succeeded).
func (c *Client) Ledger(ctx context.Context, id string) ([]runner.Record, error) {
	var buf bytes.Buffer
	if _, err := c.stream(ctx, id, "ledger", 0, false, &buf); err != nil {
		return nil, err
	}
	return runner.ParseLedger(buf.Bytes())
}

// RunMatrix is the remote counterpart of Engine.Run: submit the
// matrix, wait for the sweep to finish, and assemble the streamed
// records into the ResultSet the aggregators consume. A failed sweep
// returns an error carrying the daemon's abort reason; a sweep with
// KeepGoing failures returns normally with the failures indexed.
func (c *Client) RunMatrix(ctx context.Context, m runner.Matrix, o RunOptions) (*runner.ResultSet, error) {
	spec, err := SpecFromMatrix(m, o)
	if err != nil {
		return nil, err
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	recs, err := c.Results(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		return nil, err
	}
	switch final.State {
	case StateDone:
	case StateFailed:
		return nil, fmt.Errorf("sweepd: sweep %s failed: %s", st.ID, final.Error)
	default:
		return nil, fmt.Errorf("sweepd: sweep %s ended %s", st.ID, final.State)
	}
	var failed []runner.Record
	if final.Failed > 0 {
		if failed, err = c.Ledger(ctx, st.ID); err != nil {
			return nil, err
		}
	}
	baseSeed := m.Base.Seed
	if len(m.Seeds) > 0 {
		baseSeed = m.Seeds[0]
	}
	return runner.AssembleResultSet(m.Name, baseSeed, recs, failed), nil
}
