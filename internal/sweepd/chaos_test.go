// Partition-tolerance contract tests: the service must converge to
// local-run bytes through injected network faults, dedupe redelivered
// reports, shed load with 429 instead of queueing without bound, and
// pause — not corrupt — when the disk fills.
package sweepd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	berrs "banshee/internal/errs"
	"banshee/internal/fault/netfault"
	"banshee/internal/runner"
	"banshee/internal/stats"
)

// fastRetry keeps chaos tests quick: many attempts, tiny backoff.
var fastRetry = runner.RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

// brokerWithWorker builds a bare broker and registers worker liveness
// (a Lease poll), so Dispatch offers instead of declining immediately.
func brokerWithWorker(t *testing.T, ttl time.Duration) *Broker {
	t.Helper()
	b := NewBroker(ttl, nil)
	b.Lease(context.Background(), "w", time.Millisecond)
	return b
}

// dispatchOne runs b.Dispatch(job) in a goroutine and leases the offer
// as worker "w", returning the lease ID and the dispatch result channel.
func dispatchOne(t *testing.T, b *Broker, job runner.Job) (string, chan dispatchResult) {
	t.Helper()
	done := make(chan dispatchResult, 1)
	go func() {
		st, handled, err := b.Dispatch(context.Background(), job)
		done <- dispatchResult{st: st, handled: handled, err: err}
	}()
	var id string
	waitFor(t, func() bool {
		lid, _, _, ok := b.Lease(context.Background(), "w", 50*time.Millisecond)
		id = lid
		return ok
	})
	return id, done
}

type dispatchResult struct {
	st      stats.Sim
	handled bool
	err     error
}

// TestBrokerRenewAtTTLBoundary: a lease renewed across several TTL
// windows — including a renewal landing just before the deadline the
// expiry timer is watching — stays alive; once renewals stop, the
// lease expires, Dispatch falls back local, and both Renew and Resolve
// for the dead lease answer ErrLeaseGone.
func TestBrokerRenewAtTTLBoundary(t *testing.T) {
	ttl := 250 * time.Millisecond
	b := brokerWithWorker(t, ttl)
	id, done := dispatchOne(t, b, runner.Job{ID: "job-renew"})

	// Survive three full TTLs: regular renewals, then one cut close to
	// the deadline so the expiry timer races the renewal.
	for i := 0; i < 5; i++ {
		time.Sleep(ttl / 2)
		if err := b.Renew(id); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	time.Sleep(ttl - 30*time.Millisecond) // renew at the boundary
	if err := b.Renew(id); err != nil {
		t.Fatalf("boundary renew: %v", err)
	}
	select {
	case r := <-done:
		t.Fatalf("dispatch gave up on a renewed lease: %+v", r)
	default:
	}

	// Stop renewing: the lease must expire and the attempt fall back.
	r := <-done
	if r.handled || r.err != nil {
		t.Fatalf("expired lease dispatch = %+v, want unhandled", r)
	}
	if err := b.Renew(id); err != ErrLeaseGone {
		t.Fatalf("renew after expiry: %v, want ErrLeaseGone", err)
	}
	if err := b.Resolve(id, "job-renew", stats.Sim{}, nil); err != ErrLeaseGone {
		t.Fatalf("report after expiry: %v, want ErrLeaseGone", err)
	}
}

// TestBrokerDuplicateReportDedupe: the first report for a (lease, job
// key) delivers exactly one Dispatch outcome; a redelivered identical
// report is answered as already-accepted (nil) without a second
// outcome; a report under a different job key is refused.
func TestBrokerDuplicateReportDedupe(t *testing.T) {
	b := brokerWithWorker(t, time.Second)
	id, done := dispatchOne(t, b, runner.Job{ID: "job-dup"})

	want := stats.Sim{Cycles: 42}
	if err := b.Resolve(id, "job-dup", want, nil); err != nil {
		t.Fatalf("first report: %v", err)
	}
	r := <-done
	if !r.handled || r.err != nil || r.st.Cycles != want.Cycles {
		t.Fatalf("dispatch outcome = %+v", r)
	}
	// Redelivery — the wire duplicated the report, or the worker
	// retried after a lost ACK. Must be the same success, recorded once.
	for i := 0; i < 3; i++ {
		if err := b.Resolve(id, "job-dup", want, nil); err != nil {
			t.Fatalf("redelivered report %d: %v", i, err)
		}
	}
	// A different job key against the same tombstone is not a
	// duplicate — it is a misdirected report, and must be refused.
	if err := b.Resolve(id, "job-other", want, nil); err != ErrLeaseGone {
		t.Fatalf("mismatched redelivery: %v, want ErrLeaseGone", err)
	}
	select {
	case r := <-done:
		t.Fatalf("second outcome delivered: %+v", r)
	default:
	}
}

// TestBrokerWrongJobKeyLiveLease: a report whose job key does not
// match the live lease is refused without killing the lease, and the
// correctly keyed report still lands.
func TestBrokerWrongJobKeyLiveLease(t *testing.T) {
	b := brokerWithWorker(t, time.Second)
	id, done := dispatchOne(t, b, runner.Job{ID: "job-live"})

	if err := b.Resolve(id, "job-wrong", stats.Sim{}, nil); err != ErrLeaseGone {
		t.Fatalf("wrong-key report: %v, want ErrLeaseGone", err)
	}
	if err := b.Renew(id); err != nil {
		t.Fatalf("lease killed by refused report: %v", err)
	}
	if err := b.Resolve(id, "job-live", stats.Sim{Cycles: 7}, nil); err != nil {
		t.Fatalf("correct report: %v", err)
	}
	r := <-done
	if !r.handled || r.st.Cycles != 7 {
		t.Fatalf("dispatch outcome = %+v", r)
	}
}

// noRetryClient dials d with retries disabled, so overload answers
// surface to the test instead of being absorbed by backoff.
func noRetryClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	c, err := DialWith(srv.URL, ClientOptions{Retry: runner.RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDaemonSubmitBackpressure429: with the submission queue at its
// cap, a genuinely new submit is shed with 429 + Retry-After, while
// idempotent resubmits of queued sweeps still answer.
func TestDaemonSubmitBackpressure429(t *testing.T) {
	d, err := New(Options{StateDir: t.TempDir(), Parallelism: 1, MaxActive: 1, MaxQueued: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c := noRetryClient(t, srv)
	ctx := context.Background()

	long := func(name string, seed uint64) Spec {
		s := testSpec(name)
		s.Base.InstrPerCore = 500_000
		s.Seeds = []uint64{seed}
		return s
	}
	running := long("svc-shed-a", 1)
	stA, err := c.Submit(ctx, running)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until sweep A is actually running (has landed a record), so
	// it no longer counts against the queue.
	waitForBytes(t, d.Store().ResultsPath(stA.ID), 1)

	queued := long("svc-shed-b", 2)
	stB, err := c.Submit(ctx, queued)
	if err != nil {
		t.Fatal(err)
	}

	// The queue (max 1) is full: a new submission is shed.
	_, err = c.Submit(ctx, long("svc-shed-c", 3))
	if !IsOverloaded(err) {
		t.Fatalf("submit over full queue: %v, want overloaded", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 || ae.RetryAfter <= 0 {
		t.Fatalf("shed response = %+v, want 429 with Retry-After", ae)
	}
	// Idempotent resubmission of an already-queued sweep is not new
	// work and must not be shed.
	again, err := c.Submit(ctx, queued)
	if err != nil || again.ID != stB.ID {
		t.Fatalf("resubmit of queued sweep: %+v, %v", again, err)
	}
	if n := d.Registry().Snapshot()[`sweepd_load_shed_total{reason="submit"}`]; n < 1 {
		t.Fatalf("sweepd_load_shed_total{reason=submit} = %v, want >= 1", n)
	}
	c.Cancel(ctx, stA.ID)
	c.Cancel(ctx, stB.ID)
}

// TestDaemonStreamBackpressure429: per-client-host stream slots are
// bounded; an over-limit stream is shed with 429 instead of admitted.
func TestDaemonStreamBackpressure429(t *testing.T) {
	d, err := New(Options{StateDir: t.TempDir(), Parallelism: 1, MaxActive: 1, MaxClientStreams: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c := noRetryClient(t, srv)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	spec := testSpec("svc-shed-stream")
	spec.Base.InstrPerCore = 2_000_000 // long enough to hold a live follow
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single stream slot with a live follow.
	holding := make(chan error, 1)
	go func() {
		var sink bytes.Buffer
		_, err := c.StreamResults(ctx, st.ID, 0, &sink)
		holding <- err
	}()
	waitFor(t, func() bool {
		return d.Registry().Snapshot()[`sweepd_load_shed_total{reason="stream"}`] >= 1 || func() bool {
			var buf bytes.Buffer
			_, err := noRetryClient(t, srv).StreamResults(ctx, st.ID, 0, &buf)
			return IsOverloaded(err)
		}()
	})
	if n := d.Registry().Snapshot()[`sweepd_load_shed_total{reason="stream"}`]; n < 1 {
		t.Fatalf("sweepd_load_shed_total{reason=stream} = %v, want >= 1", n)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	<-holding
}

// TestNetChaosConvergence is the tentpole acceptance test, in-process:
// every HTTP exchange — submissions, status polls, streams, and the
// whole worker lease protocol — rides a transport injecting ~10%
// faults (dropped requests, lost responses, truncated bodies, 5xx,
// duplicate delivery, latency), and the sweep still converges to
// results byte-identical to a local engine run with zero duplicate
// records.
func TestNetChaosConvergence(t *testing.T) {
	spec := testSpec("svc-netchaos")
	want := localBytes(t, spec)

	d, err := New(Options{StateDir: t.TempDir(), Parallelism: 2, MaxActive: 2, LeaseTTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	plan := func(seed uint64) netfault.Plan {
		return netfault.Plan{
			Seed:          seed,
			DropReqRate:   0.04,
			DropRespRate:  0.03,
			TruncateRate:  0.02,
			Err5xxRate:    0.04,
			DuplicateRate: 0.02,
			LatencyRate:   0.02,
			Latency:       time.Millisecond,
		}
	}
	chaosDial := func(seed uint64) *Client {
		c, err := DialWith(srv.URL, ClientOptions{
			Transport: netfault.NewTransport(plan(seed), nil),
			Retry:     fastRetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	baseFaults := netfault.InjectedTotal()
	baseRetries := NetRetryTotal()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		wk := &Worker{Client: chaosDial(uint64(100 + i)), Name: fmt.Sprintf("chaos-w-%d", i),
			Parallel: 1, Retry: fastRetry}
		go wk.Run(ctx)
	}
	waitFor(t, func() bool { return d.Broker().Workers() > 0 })

	c := chaosDial(1)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit through chaos: %v", err)
	}
	var got bytes.Buffer
	if _, err := c.StreamResults(ctx, st.ID, 0, &got); err != nil {
		t.Fatalf("stream through chaos: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("chaos sweep diverged from local run: %d vs %d bytes", got.Len(), len(want))
	}
	recs, err := runner.ParseRecords(got.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[fmt.Sprintf("%s|%s|%s|%s|%d", r.Matrix, r.Label, r.Workload, r.Scheme, r.Seed)]++
	}
	for coord, n := range seen {
		if n != 1 {
			t.Fatalf("coordinate %s recorded %d times", coord, n)
		}
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	// The chaos actually happened, and the retry machinery absorbed it.
	if netfault.InjectedTotal() == baseFaults {
		t.Fatal("no network faults were injected — the test exercised nothing")
	}
	if NetRetryTotal() == baseRetries {
		t.Fatal("no call was retried — fault rates too low to matter")
	}
}

// TestDiskFullPausesSweep: a run failing with ErrDiskFull must leave
// the sweep paused — final status queued, no done marker — so a
// restart or resubmit resumes it once space is freed.
func TestDiskFullPausesSweep(t *testing.T) {
	d := newDaemon(t, t.TempDir())
	spec := testSpec("svc-enospc")
	jobs, baseSeed, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sw := &sweep{id: "enospc-test", spec: spec, jobs: jobs, baseSeed: baseSeed,
		finished: make(chan struct{})}
	d.finish(sw, nil, &berrs.DiskFullError{Op: "sink append", Err: syscall.ENOSPC})

	st := sw.status()
	if st.State != StateQueued || st.Error == "" {
		t.Fatalf("disk-full sweep status = %+v, want queued with error", st)
	}
	if _, ok, _ := d.Store().LoadDone("enospc-test"); ok {
		t.Fatal("done marker written for a disk-full sweep — it can never resume")
	}
}
