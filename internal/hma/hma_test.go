package hma

import (
	"testing"

	"banshee/internal/mem"
)

func newTest(epoch uint64) *HMA {
	cfg := DefaultConfig(16 * mem.PageBytes)
	cfg.EpochAccesses = epoch
	return New(cfg)
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny capacity did not panic")
		}
	}()
	New(Config{CapacityBytes: 10})
}

func TestColdMissesGoOffPackage(t *testing.T) {
	h := newTest(1000)
	res := h.Access(mem.Request{Addr: 0x1000})
	if res.Hit {
		t.Fatal("cold access hit")
	}
	op := res.Ops[0]
	if op.Target != mem.OffPackage || op.Bytes != 64 || !op.Critical {
		t.Fatalf("miss op = %+v", op)
	}
	// Table 1: HMA misses carry no probe overhead (mapping in PTE).
	if len(res.Ops) != 1 {
		t.Fatalf("HMA miss generated %d ops, want 1", len(res.Ops))
	}
}

func TestEpochMovesHotPages(t *testing.T) {
	h := newTest(100)
	// 10 hot pages accessed repeatedly, others once.
	for i := 0; i < 100; i++ {
		page := uint64(i % 10)
		h.Access(mem.Request{Addr: mem.Addr(page) << mem.PageOffsetBits})
	}
	if h.Epochs() != 1 {
		t.Fatalf("epochs = %d, want 1", h.Epochs())
	}
	if h.Resident() != 10 {
		t.Fatalf("resident %d, want 10 hot pages", h.Resident())
	}
	// After the epoch, hot pages hit in-package.
	res := h.Access(mem.Request{Addr: 0})
	if !res.Hit {
		t.Fatal("hot page not cached after epoch")
	}
}

func TestEpochChargesStopTheWorld(t *testing.T) {
	h := newTest(50)
	var sw bool
	for i := 0; i < 50; i++ {
		res := h.Access(mem.Request{Addr: mem.Addr(i%5) << mem.PageOffsetBits})
		for _, c := range res.SW {
			if c.AllCoresCycles > 0 {
				sw = true
			}
		}
	}
	if !sw {
		t.Fatal("epoch did not stall all cores")
	}
}

func TestEpochMoveTraffic(t *testing.T) {
	h := newTest(60)
	var moveBytes int
	for i := 0; i < 60; i++ {
		res := h.Access(mem.Request{Addr: mem.Addr(i%3) << mem.PageOffsetBits})
		for _, op := range res.Ops {
			if op.Class == mem.ClassReplacement {
				moveBytes += op.Bytes
			}
		}
	}
	// 3 hot pages moved in: read 4 KB off + write 4 KB in, each.
	if moveBytes != 3*2*mem.PageBytes {
		t.Fatalf("move traffic %d, want %d", moveBytes, 3*2*mem.PageBytes)
	}
}

func TestColdPagesEvictedNextEpoch(t *testing.T) {
	h := newTest(100)
	// Epoch 1: pages 0..9 hot.
	for i := 0; i < 100; i++ {
		h.Access(mem.Request{Addr: mem.Addr(i%10) << mem.PageOffsetBits})
	}
	// Epoch 2: pages 100..109 hot; old ones untouched.
	for i := 0; i < 100; i++ {
		h.Access(mem.Request{Addr: mem.Addr(100+i%10) << mem.PageOffsetBits})
	}
	if h.Access(mem.Request{Addr: 0}).Hit {
		t.Fatal("cold page survived the epoch swap")
	}
	if !h.Access(mem.Request{Addr: 100 << mem.PageOffsetBits}).Hit {
		t.Fatal("new hot page not resident")
	}
}

func TestDirtyEvictionRouting(t *testing.T) {
	h := newTest(100)
	for i := 0; i < 100; i++ {
		h.Access(mem.Request{Addr: mem.Addr(i%4) << mem.PageOffsetBits})
	}
	res := h.Access(mem.Request{Addr: 0, Write: true, Eviction: true})
	if !res.Hit || res.Ops[0].Target != mem.InPackage {
		t.Fatal("eviction to cached page must write in-package")
	}
	res = h.Access(mem.Request{Addr: 1 << 30, Write: true, Eviction: true})
	if res.Hit || res.Ops[0].Target != mem.OffPackage {
		t.Fatal("eviction to uncached page must write off-package")
	}
}

func TestSingleTouchPagesNotMoved(t *testing.T) {
	h := newTest(100)
	// 100 distinct pages, one touch each: none worth moving.
	for i := 0; i < 100; i++ {
		h.Access(mem.Request{Addr: mem.Addr(i) << mem.PageOffsetBits})
	}
	if h.Resident() != 0 {
		t.Fatalf("%d single-touch pages were moved in", h.Resident())
	}
}

func TestCapacityRespected(t *testing.T) {
	h := newTest(1000)
	// 50 hot pages, capacity 16.
	for i := 0; i < 1000; i++ {
		h.Access(mem.Request{Addr: mem.Addr(i%50) << mem.PageOffsetBits})
	}
	if h.Resident() > 16 {
		t.Fatalf("resident %d exceeds capacity 16", h.Resident())
	}
}
