// Package hma implements the software-managed Heterogeneous Memory
// Architecture baseline [Meswani et al., HPCA'15] described in §2.1.2:
// periodically the OS ranks pages by access count, moves hot pages into
// the in-package DRAM and cold pages out, updates all PTEs, flushes all
// TLBs, and scrubs remapped pages from on-chip caches. Because the
// routine stops every program, it can only run at coarse epochs, so the
// policy cannot track fine-grained temporal locality.
//
// Epochs here are triggered by access count (a proxy for wall-clock
// epochs at the simulator's scale); the move cost is charged to all
// cores through mc.SWCost, exactly the "performance hiccup" the paper
// attributes to HMA.
package hma

import (
	"fmt"
	"sort"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
)

// Config parameterizes HMA.
type Config struct {
	CapacityBytes int
	// EpochAccesses is the number of MC accesses between remap epochs.
	EpochAccesses uint64
	// PerPageMoveCycles is the software cost per migrated page (copy +
	// PTE rewrite), charged to every core while the world is stopped.
	PerPageMoveCycles uint64
	// FixedEpochCycles is the fixed routine overhead per epoch.
	FixedEpochCycles uint64
}

// DefaultConfig fills unset fields with reasonable defaults.
func DefaultConfig(capacityBytes int) Config {
	return Config{
		CapacityBytes:     capacityBytes,
		EpochAccesses:     1 << 18,
		PerPageMoveCycles: 1500,
		FixedEpochCycles:  50000,
	}
}

type resident struct {
	dirty bool
}

// HMA is the scheme instance. Not safe for concurrent use.
//
// Residency and the per-epoch access counts are flat open-addressed
// tables: the per-access path (one residency probe, one counter
// increment) touches contiguous arrays, and the epoch routine iterates
// them in a deterministically sorted order — the old builtin-map
// version emitted move traffic in random map order, which only stayed
// reproducible because the move ops are timing-order-insensitive.
type HMA struct {
	cfg      Config
	capacity int // pages
	cached   util.Flat64[*resident]
	counts   util.Flat64[uint64] // epoch access counts
	accesses uint64

	// ops and sw are the scratch buffers reused by every Access (see
	// the ownership note on mc.Result).
	ops []mem.Op
	sw  []mc.SWCost

	hits, misses uint64
	epochs       uint64
	moves        uint64
}

// New builds an HMA instance.
func New(cfg Config) *HMA {
	cap := cfg.CapacityBytes / mem.PageBytes
	if cap <= 0 {
		panic(fmt.Sprintf("hma: capacity %d smaller than one page", cfg.CapacityBytes))
	}
	if cfg.EpochAccesses == 0 {
		cfg.EpochAccesses = 1 << 18
	}
	return &HMA{
		cfg:      cfg,
		capacity: cap,
		cached:   *util.NewFlat64[*resident](cap),
	}
}

// Name implements mc.Scheme.
func (h *HMA) Name() string { return "HMA" }

// Access implements mc.Scheme.
func (h *HMA) Access(req mem.Request) mc.Result {
	h.ops = h.ops[:0]
	h.sw = h.sw[:0]
	addr := mem.LineAddr(req.Addr)
	page := mem.PageNum(addr)
	r, _ := h.cached.Get(page)

	if req.Eviction {
		if r != nil {
			r.dirty = true
			h.ops = append(h.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData})
			return mc.Result{Hit: true, Ops: h.ops}
		}
		h.ops = append(h.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement})
		return mc.Result{Hit: false, Ops: h.ops}
	}

	*h.counts.Ptr(page)++
	h.accesses++
	hit := r != nil
	if hit {
		h.hits++
		h.ops = append(h.ops, mem.Op{Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassHitData, Stage: 0, Critical: true})
	} else {
		// Mapping is in the PTE: the miss goes straight off-package with
		// no probe traffic (Table 1: miss traffic 0 B extra).
		h.misses++
		h.ops = append(h.ops, mem.Op{Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Class: mem.ClassMissData, Stage: 0, Critical: true})
	}
	if h.accesses >= h.cfg.EpochAccesses {
		h.accesses = 0
		h.sw = append(h.sw, h.epoch())
	}
	return mc.Result{Hit: hit, Ops: h.ops, SW: h.sw}
}

// epoch runs the software remap: rank pages by epoch count, make the top
// `capacity` resident, move the deltas (appended to h.ops), and charge
// the stop-the-world cost. Epochs are rare (every EpochAccesses), so
// their ranking allocations don't affect the steady-state access path.
func (h *HMA) epoch() mc.SWCost {
	h.epochs++
	type pc struct {
		page  uint64
		count uint64
	}
	ranked := make([]pc, 0, h.counts.Len())
	h.counts.Range(func(p, c uint64) bool {
		ranked = append(ranked, pc{p, c})
		return true
	})
	isCached := func(p uint64) bool {
		r, _ := h.cached.Get(p)
		return r != nil
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		// Tie-break: keep currently cached pages (hysteresis), then by
		// page number for determinism.
		ci, cj := isCached(ranked[i].page), isCached(ranked[j].page)
		if ci != cj {
			return ci
		}
		return ranked[i].page < ranked[j].page
	})
	want := make(map[uint64]bool, h.capacity)
	wantOrder := make([]uint64, 0, h.capacity) // rank order, for move-ins
	for i := 0; i < len(ranked) && i < h.capacity; i++ {
		// Only pages with at least two epoch touches are worth a move.
		if ranked[i].count < 2 && !isCached(ranked[i].page) {
			continue
		}
		want[ranked[i].page] = true
		wantOrder = append(wantOrder, ranked[i].page)
	}

	// Move-outs in ascending page order, move-ins in rank order: both
	// passes iterate deterministic sequences, not map order.
	evict := make([]uint64, 0, h.cached.Len())
	h.cached.Range(func(p uint64, _ *resident) bool {
		if !want[p] {
			evict = append(evict, p)
		}
		return true
	})
	sort.Slice(evict, func(i, j int) bool { return evict[i] < evict[j] })

	moves := uint64(0)
	for _, p := range evict {
		r, _ := h.cached.Get(p)
		// Move out; dirty pages stream back to off-package memory.
		if r.dirty {
			a := mem.PageBase(p)
			h.ops = append(h.ops,
				mem.Op{Target: mem.InPackage, Addr: a, Bytes: mem.PageBytes, Class: mem.ClassReplacement},
				mem.Op{Target: mem.OffPackage, Addr: a, Bytes: mem.PageBytes, Write: true, Class: mem.ClassReplacement},
			)
		}
		h.cached.Delete(p)
		moves++
	}
	for _, p := range wantOrder {
		if isCached(p) {
			continue
		}
		a := mem.PageBase(p)
		h.ops = append(h.ops,
			mem.Op{Target: mem.OffPackage, Addr: a, Bytes: mem.PageBytes, Class: mem.ClassReplacement},
			mem.Op{Target: mem.InPackage, Addr: a, Bytes: mem.PageBytes, Write: true, Class: mem.ClassReplacement},
		)
		h.cached.Put(p, &resident{})
		moves++
	}
	h.moves += moves
	// Epoch counters reset: HMA only sees per-epoch history.
	h.counts.Clear()
	return mc.SWCost{
		AllCoresCycles: h.cfg.FixedEpochCycles + moves*h.cfg.PerPageMoveCycles,
	}
}

// FillStats implements mc.Scheme.
func (h *HMA) FillStats(s *stats.Sim) {
	s.Remaps += h.moves
	s.TLBShootdowns += h.epochs // every epoch flushes all TLBs
}

// Resident returns the number of cached pages (diagnostic, tests).
func (h *HMA) Resident() int { return h.cached.Len() }

// Epochs returns how many remap epochs have run (diagnostic, tests).
func (h *HMA) Epochs() uint64 { return h.epochs }
