// Package mc defines the memory-controller-side contract between the
// simulator and a DRAM-cache scheme, plus small helpers (miss-rate and
// footprint trackers) shared by several schemes.
//
// On every LLC miss or dirty eviction the simulator hands the request to
// the configured Scheme. The scheme updates its own state (tags, page
// mappings, frequency counters, tag buffers...) and answers with the
// physical DRAM operations to perform, grouped into dependency stages,
// plus any software costs (PTE update routines, TLB shootdowns, HMA
// epochs) the simulator must charge to cores.
package mc

import (
	"banshee/internal/mem"
	"banshee/internal/stats"
)

// SWCost is a software routine charged by the timing model.
type SWCost struct {
	// InitiatorCycles stall one (randomly chosen) core: e.g. Banshee's
	// PTE-update routine plus shootdown initiation.
	InitiatorCycles uint64
	// AllCoresCycles stall every core: e.g. shootdown slave cost, or an
	// HMA stop-the-world remap epoch.
	AllCoresCycles uint64
}

// Result is a scheme's answer for one request.
//
// Ownership: Ops and SW may alias a scratch buffer owned by the scheme,
// reused on the next Access call — this is what makes the steady-state
// access path allocation-free. Callers must consume (or copy) a Result
// before calling Access on the same scheme again, and must not retain
// its slices. The simulator's execute path and all tests obey this.
type Result struct {
	// Hit reports whether the demanded data was served by the
	// in-package DRAM (counts toward DRAM-cache hit rate; ignored for
	// evictions).
	Hit bool
	// Ops are the DRAM transactions to perform (see mem.Op for stage
	// semantics). Order within a stage is preserved.
	Ops []mem.Op
	// SW lists software costs triggered by this request.
	SW []SWCost
}

// Scheme is a DRAM-cache design under evaluation.
type Scheme interface {
	// Name identifies the scheme in reports ("Banshee", "Alloy 0.1"...).
	Name() string
	// Access handles one LLC miss (demand) or LLC dirty eviction
	// (req.Eviction). Implementations must be deterministic given their
	// construction seed. The returned Result is valid only until the
	// next Access call (see Result's ownership note).
	Access(req mem.Request) Result
	// FillStats merges scheme-internal counters into s at end of run.
	FillStats(s *stats.Sim)
}

// MissRateTracker maintains the "recent miss rate" Banshee's adaptive
// sampling multiplies into its sample rate (§4.2.1). It is a windowed
// estimator: every Window accesses the rate snaps to the window's
// observed rate. It starts at 1.0 so a cold cache samples aggressively.
type MissRateTracker struct {
	Window   uint64
	accesses uint64
	misses   uint64
	rate     float64
}

// NewMissRateTracker returns a tracker with the given window (0 uses a
// default of 8192 accesses).
func NewMissRateTracker(window uint64) *MissRateTracker {
	if window == 0 {
		window = 8192
	}
	return &MissRateTracker{Window: window, rate: 1.0}
}

// Observe records one access outcome.
func (t *MissRateTracker) Observe(miss bool) {
	t.accesses++
	if miss {
		t.misses++
	}
	if t.accesses >= t.Window {
		t.rate = float64(t.misses) / float64(t.accesses)
		t.accesses, t.misses = 0, 0
	}
}

// Rate returns the current estimate in [0,1].
func (t *MissRateTracker) Rate() float64 { return t.rate }

// FootprintTracker implements the idealized footprint predictor the
// paper grants Unison and TDC (§5.1.1): the average number of lines
// touched per page generation, managed at 4-line granularity. The
// simulator records the touched-line count of each evicted page; the
// predictor exposes the running average rounded up to a multiple of 4.
type FootprintTracker struct {
	avg   float64
	seen  bool
	Decay float64 // EWMA decay; 0 defaults to 0.05
}

// Record notes that an evicted page had `lines` touched lines.
func (f *FootprintTracker) Record(lines int) {
	d := f.Decay
	if d == 0 {
		d = 0.05
	}
	if !f.seen {
		f.avg = float64(lines)
		f.seen = true
		return
	}
	f.avg = (1-d)*f.avg + d*float64(lines)
}

// Lines returns the predicted footprint in lines, rounded up to 4-line
// granularity and clamped to [4, LinesPerPage]. Before any observation
// it returns 16 (a quarter page), a neutral prior.
func (f *FootprintTracker) Lines() int {
	if !f.seen {
		return 16
	}
	n := int(f.avg)
	if float64(n) < f.avg {
		n++
	}
	n = (n + 3) &^ 3
	if n < 4 {
		n = 4
	}
	if n > mem.LinesPerPage {
		n = mem.LinesPerPage
	}
	return n
}

// Touched is a 64-bit per-page touched/dirty line bitmap helper.
type Touched uint64

// Set marks line index i (0..63).
func (t *Touched) Set(i int) { *t |= 1 << uint(i&63) }

// Get reports whether line index i is marked.
func (t Touched) Get(i int) bool { return t&(1<<uint(i&63)) != 0 }

// Count returns the number of marked lines.
func (t Touched) Count() int {
	n := 0
	for x := uint64(t); x != 0; x &= x - 1 {
		n++
	}
	return n
}
