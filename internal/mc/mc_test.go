package mc

import (
	"testing"
	"testing/quick"

	"banshee/internal/mem"
)

func TestMissRateTrackerColdStart(t *testing.T) {
	tr := NewMissRateTracker(100)
	if tr.Rate() != 1.0 {
		t.Fatalf("cold rate %v, want 1.0 (sample aggressively while cold)", tr.Rate())
	}
}

func TestMissRateTrackerWindow(t *testing.T) {
	tr := NewMissRateTracker(100)
	for i := 0; i < 100; i++ {
		tr.Observe(i < 25) // 25% misses
	}
	if got := tr.Rate(); got != 0.25 {
		t.Fatalf("rate %v, want 0.25", got)
	}
	// Next window all hits.
	for i := 0; i < 100; i++ {
		tr.Observe(false)
	}
	if got := tr.Rate(); got != 0 {
		t.Fatalf("rate %v, want 0 after all-hit window", got)
	}
}

func TestMissRateTrackerDefaultWindow(t *testing.T) {
	tr := NewMissRateTracker(0)
	if tr.Window != 8192 {
		t.Fatalf("default window %d", tr.Window)
	}
}

func TestMissRateBoundsProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		tr := NewMissRateTracker(16)
		for _, m := range outcomes {
			tr.Observe(m)
		}
		r := tr.Rate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintTrackerPrior(t *testing.T) {
	var f FootprintTracker
	if f.Lines() != 16 {
		t.Fatalf("prior footprint %d, want 16", f.Lines())
	}
}

func TestFootprintTrackerConverges(t *testing.T) {
	var f FootprintTracker
	for i := 0; i < 200; i++ {
		f.Record(7)
	}
	// 7 rounds up to 8 at 4-line granularity.
	if f.Lines() != 8 {
		t.Fatalf("converged footprint %d, want 8", f.Lines())
	}
}

func TestFootprintTrackerClamps(t *testing.T) {
	var f FootprintTracker
	for i := 0; i < 100; i++ {
		f.Record(0)
	}
	if f.Lines() != 4 {
		t.Fatalf("lower clamp %d, want 4", f.Lines())
	}
	var g FootprintTracker
	for i := 0; i < 100; i++ {
		g.Record(200)
	}
	if g.Lines() != mem.LinesPerPage {
		t.Fatalf("upper clamp %d, want %d", g.Lines(), mem.LinesPerPage)
	}
}

func TestFootprintFourLineGranularity(t *testing.T) {
	f := func(vals []uint8) bool {
		var tr FootprintTracker
		for _, v := range vals {
			tr.Record(int(v % 65))
		}
		l := tr.Lines()
		return l%4 == 0 && l >= 4 && l <= mem.LinesPerPage
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTouchedBitmap(t *testing.T) {
	var b Touched
	if b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(63) // idempotent
	if !b.Get(0) || !b.Get(63) || b.Get(1) {
		t.Fatal("Get wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("count %d, want 2", b.Count())
	}
}

func TestTouchedCountProperty(t *testing.T) {
	f := func(idxs []uint8) bool {
		var b Touched
		seen := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i % 64))
			seen[int(i%64)] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
