package graph

import (
	"sync"
	"testing"
)

func testGraph() *Graph {
	return New(Config{Vertices: 2000, AvgDegree: 8, Skew: 0.9, Seed: 1})
}

func TestGraphConstruction(t *testing.T) {
	g := testGraph()
	if g.Vertices != 2000 {
		t.Fatalf("vertices %d", g.Vertices)
	}
	if g.Edges() == 0 || g.Edges() > 2000*8 {
		t.Fatalf("edges %d out of range", g.Edges())
	}
	// CSR invariant: row pointers nondecreasing, targets in range.
	for v := 0; v < g.Vertices; v++ {
		if g.rowPtr[v] > g.rowPtr[v+1] {
			t.Fatalf("rowPtr not monotone at %d", v)
		}
		for _, tgt := range g.Neighbors(v) {
			if int(tgt) >= g.Vertices {
				t.Fatalf("edge target %d out of range", tgt)
			}
		}
	}
	if got := g.Degree(0); got != len(g.Neighbors(0)) {
		t.Fatalf("degree mismatch %d", got)
	}
}

func TestGraphDeterminism(t *testing.T) {
	a, b := testGraph(), testGraph()
	if a.Edges() != b.Edges() {
		t.Fatal("same seed, different edge counts")
	}
	for v := 0; v < a.Vertices; v += 97 {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestHubSkew(t *testing.T) {
	g := testGraph()
	// In-degree distribution must be skewed: some vertex receives far
	// more than average.
	in := make([]int, g.Vertices)
	for v := 0; v < g.Vertices; v++ {
		for _, tgt := range g.Neighbors(v) {
			in[tgt]++
		}
	}
	max, avg := 0, float64(g.Edges())/float64(g.Vertices)
	for _, d := range in {
		if d > max {
			max = d
		}
	}
	if float64(max) < 5*avg {
		t.Fatalf("max in-degree %d not hub-like (avg %.1f)", max, avg)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	New(Config{Vertices: 0, AvgDegree: 8})
}

func TestAllKernelsEmitValidRefs(t *testing.T) {
	g := testGraph()
	for _, name := range []string{"pagerank", "graph500", "tri_count", "sgd", "lsh"} {
		k, err := NewKernel(name, g, 0, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if k.Name() != name {
			t.Errorf("kernel name %q != %q", k.Name(), name)
		}
		for i := 0; i < 50000; i++ {
			r := k.Next()
			if r.Addr >= g.FootprintBytes() {
				t.Fatalf("%s ref %d addr %#x beyond footprint %#x", name, i, r.Addr, g.FootprintBytes())
			}
			if r.Gap < 0 {
				t.Fatalf("%s negative gap", name)
			}
		}
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := NewKernel("nope", testGraph(), 0, 1, 1); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestPageRankTouchesAllStructures(t *testing.T) {
	g := testGraph()
	k := NewPageRank(g, 0, 1)
	var sawValues, sawRowPtr, sawEdges, sawWrites bool
	for i := 0; i < 100000; i++ {
		r := k.Next()
		switch {
		case r.Addr < g.values2Base:
			sawValues = true
		case r.Addr < g.rowPtrBase:
			if r.Write {
				sawWrites = true
			}
		case r.Addr < g.edgesBase:
			sawRowPtr = true
		default:
			sawEdges = true
		}
	}
	if !sawValues || !sawRowPtr || !sawEdges || !sawWrites {
		t.Fatalf("pagerank coverage: values=%v rowptr=%v edges=%v writes=%v",
			sawValues, sawRowPtr, sawEdges, sawWrites)
	}
}

func TestThreadsPartitionVertices(t *testing.T) {
	lo0, hi0 := threadRange(100, 0, 3)
	lo1, hi1 := threadRange(100, 1, 3)
	lo2, hi2 := threadRange(100, 2, 3)
	if lo0 != 0 || hi0 != lo1 || hi1 != lo2 || hi2 != 100 {
		t.Fatalf("ranges [%d,%d) [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1, lo2, hi2)
	}
}

func TestKernelStreamsLoopForever(t *testing.T) {
	// Kernels must be able to produce arbitrarily long streams
	// (restarting internally) without panicking or halting.
	g := New(Config{Vertices: 64, AvgDegree: 4, Skew: 0.5, Seed: 3})
	for _, name := range []string{"pagerank", "graph500", "tri_count", "sgd", "lsh"} {
		k, _ := NewKernel(name, g, 0, 1, 9)
		for i := 0; i < 200000; i++ {
			k.Next()
		}
	}
}

func TestBFSDiscoversVertices(t *testing.T) {
	g := testGraph()
	b := NewBFS(g, 0, 1, 5)
	writes := 0
	for i := 0; i < 200000; i++ {
		if b.Next().Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("BFS never wrote a parent (no discoveries)")
	}
	if b.restarts == 0 {
		t.Fatal("BFS never restarted")
	}
}

func TestKernelSpatialCharacter(t *testing.T) {
	// pagerank's edge scans must show line-level sequentiality while
	// its rank gathers are scattered — both characters in one stream.
	g := New(Config{Vertices: 20000, AvgDegree: 16, Skew: 0.9, Seed: 11})
	k := NewPageRank(g, 0, 1)
	seqEdges, edgeRefs, valueRefs := 0, 0, 0
	var prevEdge uint64
	for i := 0; i < 200000; i++ {
		r := k.Next()
		if r.Addr >= g.edgesBase {
			edgeRefs++
			if r.Addr == prevEdge+wordBytes {
				seqEdges++
			}
			prevEdge = r.Addr
		} else if r.Addr < g.values2Base {
			valueRefs++
		}
	}
	if edgeRefs == 0 || valueRefs == 0 {
		t.Fatal("missing reference classes")
	}
	if float64(seqEdges)/float64(edgeRefs) < 0.5 {
		t.Fatalf("edge scan sequentiality %.2f too low", float64(seqEdges)/float64(edgeRefs))
	}
}

// TestGraphCacheShared verifies the seed-keyed substrate cache: equal
// configs return the same immutable instance, distinct seeds do not.
func TestGraphCacheShared(t *testing.T) {
	cfg := Config{Vertices: 512, AvgDegree: 4, Skew: 0.7, Seed: 99}
	a, b := New(cfg), New(cfg)
	if a != b {
		t.Fatal("identical configs built two graphs")
	}
	cfg.Seed = 100
	if New(cfg) == a {
		t.Fatal("different seed shared a graph")
	}
}

// TestGraphCacheBounded verifies the LRU cap: filling the cache past
// its limit evicts the least-recently-used substrate (which rebuilds to
// a fresh instance on the next request), while recently used entries
// stay resident.
func TestGraphCacheBounded(t *testing.T) {
	prev := SetCacheLimit(4)
	defer SetCacheLimit(prev)

	cfg := func(seed uint64) Config {
		return Config{Vertices: 256, AvgDegree: 4, Seed: 1000 + seed}
	}
	first := New(cfg(0))
	g1 := New(cfg(1))
	New(cfg(2))
	New(cfg(3))
	// Touch cfg(0) so cfg(1) becomes least recently used, then insert a
	// fifth entry to force one eviction.
	if New(cfg(0)) != first {
		t.Fatal("entry evicted while cache was under its limit")
	}
	New(cfg(4))
	if New(cfg(0)) != first {
		t.Fatal("recently used entry was evicted")
	}
	if New(cfg(1)) == g1 {
		t.Fatal("LRU entry survived past the cache limit")
	}
}

// TestGraphCacheConcurrentBuildDedupe hammers one cold config from many
// goroutines: everyone must get the same instance (single build, no
// torn entries). Run under -race in CI.
func TestGraphCacheConcurrentBuildDedupe(t *testing.T) {
	cfg := Config{Vertices: 2048, AvgDegree: 8, Skew: 0.5, Seed: 777}
	const n = 8
	got := make([]*Graph, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = New(cfg)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent builds produced distinct instances")
		}
	}
}
