package graph

import (
	"fmt"

	"banshee/internal/util"
)

// Kernel is a resumable graph algorithm emitting its reference stream
// for one thread. Kernels loop forever (restarting the computation) so
// simulations of any length can draw from them.
type Kernel interface {
	// Next returns the next memory reference of this thread.
	Next() Ref
	// Name identifies the kernel.
	Name() string
}

// threadRange splits vertices across threads the way parallel graph
// frameworks do (contiguous ranges).
func threadRange(vertices, thread, threads int) (lo, hi int) {
	per := vertices / threads
	lo = thread * per
	hi = lo + per
	if thread == threads-1 {
		hi = vertices
	}
	return lo, hi
}

// PageRank emits one thread's stream of a pull-based PageRank
// iteration: sequentially read each owned vertex's row pointers, scan
// its edge list, gather ranks of sources (random vertex-array reads —
// the Zipf-skewed traffic FBR exploits), then write the new rank.
type PageRank struct {
	g        *Graph
	lo, hi   int
	v        int
	e        uint32
	eEnd     uint32
	state    int
	gapShort int
}

// NewPageRank builds thread `thread` of `threads`.
func NewPageRank(g *Graph, thread, threads int) *PageRank {
	lo, hi := threadRange(g.Vertices, thread, threads)
	return &PageRank{g: g, lo: lo, hi: hi, v: lo, gapShort: 6}
}

// Name implements Kernel.
func (k *PageRank) Name() string { return "pagerank" }

// Next implements Kernel.
func (k *PageRank) Next() Ref {
	g := k.g
	for {
		switch k.state {
		case 0: // read row pointer pair for vertex v
			if k.v >= k.hi {
				k.v = k.lo // next iteration of the algorithm
			}
			k.e = g.rowPtr[k.v]
			k.eEnd = g.rowPtr[k.v+1]
			k.state = 1
			return Ref{Gap: k.gapShort, Addr: g.rowPtrAddr(k.v)}
		case 1: // scan one edge, then gather the source's rank
			if k.e >= k.eEnd {
				k.state = 3
				continue
			}
			k.state = 2
			return Ref{Gap: 2, Addr: g.edgeAddr(k.e)}
		case 2: // gather rank[target]
			tgt := g.edges[k.e]
			k.e++
			k.state = 1
			return Ref{Gap: 4, Addr: g.valueAddr(tgt)}
		case 3: // write new rank, advance
			v := k.v
			k.v++
			k.state = 0
			return Ref{Gap: k.gapShort, Addr: g.value2Addr(uint32(v)), Write: true}
		}
	}
}

// BFS emits a graph500-style level-synchronous BFS: scan the current
// frontier (sequential), read each neighbor's visited flag (random),
// and write newly discovered vertices' parents. When the traversal
// exhausts, it restarts from a different root.
type BFS struct {
	g        *Graph
	rng      *util.RNG
	frontier []uint32
	next     []uint32
	visited  []bool
	fi       int
	e        uint32
	eEnd     uint32
	state    int
	restarts int
}

// NewBFS builds thread `thread`'s BFS stream; threads explore disjoint
// roots (a simplification of frontier partitioning that preserves the
// traffic pattern).
func NewBFS(g *Graph, thread, threads int, seed uint64) *BFS {
	b := &BFS{g: g, rng: util.NewRNG(seed ^ uint64(thread)<<32 ^ 0xBF5)}
	b.reset()
	return b
}

func (b *BFS) reset() {
	b.visited = make([]bool, b.g.Vertices)
	root := uint32(b.rng.Uint64n(uint64(b.g.Vertices)))
	b.frontier = b.frontier[:0]
	b.frontier = append(b.frontier, root)
	b.visited[root] = true
	b.fi = 0
	b.state = 0
	b.restarts++
}

// Name implements Kernel.
func (b *BFS) Name() string { return "graph500" }

// Next implements Kernel.
func (b *BFS) Next() Ref {
	g := b.g
	for {
		switch b.state {
		case 0: // pop next frontier vertex
			if b.fi >= len(b.frontier) {
				if len(b.next) == 0 {
					b.reset()
					continue
				}
				b.frontier, b.next = b.next, b.frontier[:0]
				b.fi = 0
			}
			v := b.frontier[b.fi]
			b.e = g.rowPtr[v]
			b.eEnd = g.rowPtr[v+1]
			b.fi++
			b.state = 1
			return Ref{Gap: 4, Addr: g.rowPtrAddr(int(v))}
		case 1: // scan one edge
			if b.e >= b.eEnd {
				b.state = 0
				continue
			}
			b.state = 2
			return Ref{Gap: 1, Addr: g.edgeAddr(b.e)}
		case 2: // check visited flag (random access)
			tgt := g.edges[b.e]
			b.e++
			if !b.visited[tgt] {
				b.visited[tgt] = true
				b.next = append(b.next, tgt)
				b.state = 3
			} else {
				b.state = 1
			}
			return Ref{Gap: 2, Addr: g.valueAddr(tgt)}
		case 3: // write parent of newly discovered vertex
			b.state = 1
			return Ref{Gap: 2, Addr: g.value2Addr(g.edges[b.e-1]), Write: true}
		}
	}
}

// TriCount emits a triangle-counting stream: for each owned vertex,
// for each neighbor, intersect adjacency lists by scanning both
// (sequential reads of two edge ranges).
type TriCount struct {
	g      *Graph
	lo, hi int
	v      int
	e      uint32
	eEnd   uint32
	f      uint32
	fEnd   uint32
	state  int
}

// NewTriCount builds thread `thread` of `threads`.
func NewTriCount(g *Graph, thread, threads int) *TriCount {
	lo, hi := threadRange(g.Vertices, thread, threads)
	return &TriCount{g: g, lo: lo, hi: hi, v: lo}
}

// Name implements Kernel.
func (k *TriCount) Name() string { return "tri_count" }

// Next implements Kernel.
func (k *TriCount) Next() Ref {
	g := k.g
	for {
		switch k.state {
		case 0: // load vertex row
			if k.v >= k.hi {
				k.v = k.lo
			}
			k.e = g.rowPtr[k.v]
			k.eEnd = g.rowPtr[k.v+1]
			k.state = 1
			return Ref{Gap: 4, Addr: g.rowPtrAddr(k.v)}
		case 1: // next neighbor u; start scanning u's list
			if k.e >= k.eEnd {
				k.v++
				k.state = 0
				continue
			}
			u := g.edges[k.e]
			k.f = g.rowPtr[u]
			k.fEnd = g.rowPtr[u+1]
			k.e++
			k.state = 2
			return Ref{Gap: 2, Addr: g.edgeAddr(k.e - 1)}
		case 2: // intersect: scan u's adjacency sequentially
			if k.f >= k.fEnd {
				k.state = 1
				continue
			}
			k.f++
			return Ref{Gap: 1, Addr: g.edgeAddr(k.f - 1)}
		}
	}
}

// SGD emits a matrix-factorization stream over a bipartite rating
// graph: stream the edge (rating) list sequentially; for each rating
// read and write both endpoint factor vectors (random accesses with
// moderate skew).
type SGD struct {
	g     *Graph
	lo    uint32
	hi    uint32
	e     uint32
	state int
	vecEl int
	cur   uint32
}

// vecLen is the factor-vector length in 8-byte words (models the
// latent dimension; 8 words = one cache line).
const vecLen = 8

// NewSGD builds thread `thread`'s shard of the rating list.
func NewSGD(g *Graph, thread, threads int) *SGD {
	per := uint32(len(g.edges) / threads)
	lo := uint32(thread) * per
	hi := lo + per
	if thread == threads-1 {
		hi = uint32(len(g.edges))
	}
	return &SGD{g: g, lo: lo, hi: hi, e: lo}
}

// Name implements Kernel.
func (k *SGD) Name() string { return "sgd" }

// Next implements Kernel.
func (k *SGD) Next() Ref {
	g := k.g
	for {
		switch k.state {
		case 0: // stream the next rating
			if k.e >= k.hi {
				k.e = k.lo
			}
			k.cur = g.edges[k.e]
			k.e++
			k.vecEl = 0
			k.state = 1
			return Ref{Gap: 3, Addr: g.edgeAddr(k.e - 1)}
		case 1: // read the item vector (vecLen words)
			if k.vecEl >= vecLen {
				k.vecEl = 0
				k.state = 2
				continue
			}
			k.vecEl++
			return Ref{Gap: 2, Addr: g.valueAddr(k.cur) + uint64(k.vecEl-1)*wordBytes}
		case 2: // update (write) the user vector
			if k.vecEl >= vecLen {
				k.state = 0
				continue
			}
			k.vecEl++
			return Ref{Gap: 3, Addr: g.value2Addr(k.cur) + uint64(k.vecEl-1)*wordBytes, Write: true}
		}
	}
}

// LSH emits a locality-sensitive-hashing stream: stream points
// (sequential feature reads), then probe a few hash buckets (random
// reads over the table region).
type LSH struct {
	g      *Graph
	rng    *util.RNG
	point  uint32
	el     int
	probes int
	state  int
}

// lshFeatures is the per-point feature words read sequentially.
const lshFeatures = 16

// lshProbes is the buckets probed per point.
const lshProbes = 4

// NewLSH builds thread `thread`'s stream.
func NewLSH(g *Graph, thread, threads int, seed uint64) *LSH {
	lo, _ := threadRange(g.Vertices, thread, threads)
	return &LSH{g: g, rng: util.NewRNG(seed ^ uint64(thread) ^ 0x15A), point: uint32(lo)}
}

// Name implements Kernel.
func (k *LSH) Name() string { return "lsh" }

// Next implements Kernel.
func (k *LSH) Next() Ref {
	g := k.g
	for {
		switch k.state {
		case 0: // sequential feature read
			if k.el >= lshFeatures {
				k.el = 0
				k.probes = 0
				k.state = 1
				continue
			}
			addr := g.edgeAddr(0) + (uint64(k.point)*lshFeatures+uint64(k.el))*wordBytes
			if addr >= g.span {
				addr %= g.span
			}
			k.el++
			return Ref{Gap: 4, Addr: addr}
		case 1: // random bucket probes
			if k.probes >= lshProbes {
				k.point++
				if int(k.point) >= g.Vertices {
					k.point = 0
				}
				k.state = 0
				continue
			}
			k.probes++
			bucket := k.rng.Uint64n(uint64(g.Vertices))
			return Ref{Gap: 6, Addr: g.valueAddr(uint32(bucket))}
		}
	}
}

// NewKernel builds the named kernel for one thread. Valid names:
// pagerank, graph500, tri_count, sgd, lsh.
func NewKernel(name string, g *Graph, thread, threads int, seed uint64) (Kernel, error) {
	switch name {
	case "pagerank":
		return NewPageRank(g, thread, threads), nil
	case "graph500":
		return NewBFS(g, thread, threads, seed), nil
	case "tri_count":
		return NewTriCount(g, thread, threads), nil
	case "sgd":
		return NewSGD(g, thread, threads), nil
	case "lsh":
		return NewLSH(g, thread, threads, seed), nil
	}
	return nil, fmt.Errorf("graph: unknown kernel %q", name)
}
