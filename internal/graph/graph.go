// Package graph provides a synthetic graph substrate and the
// graph-analytics kernels of the paper's workload suite (§5.1.2,
// from [29]): PageRank, triangle counting, BFS (graph500), SGD on a
// bipartite rating graph, and LSH bucket probing.
//
// Unlike the parametric generators in internal/trace (which model a
// benchmark's *statistics*), these kernels walk real in-memory data
// structures — a CSR adjacency laid out in a flat address space — and
// emit the memory reference stream the actual algorithm would produce:
// sequential index/edge scans interleaved with power-law random vertex
// accesses. They exist as higher-fidelity alternatives ("<name>_kernel"
// workloads) to cross-check the parametric calibration; DESIGN.md §5
// discusses the substitution chain.
//
// Graphs are generated deterministically from a seed with a Zipfian
// degree/popularity skew, the property that makes frequency-based
// DRAM-cache replacement effective on these workloads.
package graph

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"banshee/internal/util"
)

// Ref is one memory reference emitted by a kernel. Gap counts the
// non-memory instructions preceding it (the kernel's compute density).
type Ref struct {
	Gap   int
	Addr  uint64
	Write bool
}

// Graph is a CSR adjacency over Vertices vertices, with a flat address
// layout that kernels walk:
//
//	[0, 8V)           vertex values (ranks, labels, visited flags)
//	[8V, 16V)         second vertex array (next ranks, parents)
//	[16V, 16V+8(V+1)) row pointers
//	[...,  +8E)       edge targets
type Graph struct {
	Vertices int
	rowPtr   []uint32 // index into edges, len V+1
	edges    []uint32 // target vertex ids

	valuesBase  uint64
	values2Base uint64
	rowPtrBase  uint64
	edgesBase   uint64
	span        uint64
}

const wordBytes = 8

// Config sizes a synthetic graph.
type Config struct {
	Vertices  int
	AvgDegree int
	// Skew is the Zipf exponent of target-vertex popularity (hub
	// structure). 0 disables skew.
	Skew float64
	Seed uint64
}

// The substrate cache holds recently built graphs, keyed by full
// Config (which includes the seed, so the cache is seed-keyed and
// deterministic). A Graph is immutable after construction — kernels
// only read it — so sharing one instance across runs, cores, and
// parallel experiment workers is safe. The cache is a bounded LRU:
// long-running sweeps touch an unbounded stream of configs (scale,
// seed, and footprint all key differently), and graphs are large, so
// retention must be capped; within a batch the engine groups jobs by
// workload, so the working set stays far below the cap and eviction
// only trims substrates the sweep has moved past.
//
// Concurrent first builds of the same config are deduplicated: one
// caller builds while the rest wait on the entry's ready channel.
type cacheEntry struct {
	cfg   Config
	g     *Graph
	ready chan struct{} // closed once g is populated
}

var cacheState struct {
	mu      sync.Mutex
	limit   int
	entries map[Config]*list.Element
	order   *list.List // front = most recently used, of *cacheEntry
}

// DefaultCacheLimit bounds the substrate cache (in graphs, not bytes:
// sweep configs at one scale are similar sizes, so an entry count is a
// faithful proxy and keeps eviction O(1)).
const DefaultCacheLimit = 16

func init() {
	cacheState.limit = DefaultCacheLimit
	cacheState.entries = map[Config]*list.Element{}
	cacheState.order = list.New()
}

// SetCacheLimit resizes the substrate cache, evicting down to n
// immediately, and returns the previous limit. n < 1 is clamped to 1.
func SetCacheLimit(n int) int {
	if n < 1 {
		n = 1
	}
	cacheState.mu.Lock()
	defer cacheState.mu.Unlock()
	prev := cacheState.limit
	cacheState.limit = n
	evictLocked()
	return prev
}

// evictLocked trims least-recently-used entries over the limit. Waiters
// on an evicted in-flight entry still complete through their entry
// pointer; the entry just stops being served to new callers.
func evictLocked() {
	for cacheState.order.Len() > cacheState.limit {
		back := cacheState.order.Back()
		cacheState.order.Remove(back)
		delete(cacheState.entries, back.Value.(*cacheEntry).cfg)
	}
}

// New returns the deterministic synthetic graph for cfg, building it on
// first use and serving the shared cached instance afterwards. The
// returned graph must not be mutated.
func New(cfg Config) *Graph {
	cacheState.mu.Lock()
	if el, ok := cacheState.entries[cfg]; ok {
		cacheState.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		cacheState.mu.Unlock()
		<-e.ready
		if e.g == nil {
			panic(fmt.Sprintf("graph: build of %+v failed in another goroutine", cfg))
		}
		return e.g
	}
	e := &cacheEntry{cfg: cfg, ready: make(chan struct{})}
	cacheState.entries[cfg] = cacheState.order.PushFront(e)
	evictLocked()
	cacheState.mu.Unlock()

	// If build panics (bad config), drop the entry and wake waiters so
	// the cache is not poisoned for retries with a corrected config.
	defer func() {
		if e.g == nil {
			cacheState.mu.Lock()
			if el, ok := cacheState.entries[cfg]; ok && el.Value.(*cacheEntry) == e {
				cacheState.order.Remove(el)
				delete(cacheState.entries, cfg)
			}
			cacheState.mu.Unlock()
			close(e.ready)
		}
	}()
	e.g = build(cfg)
	close(e.ready)
	return e.g
}

// buildChunk is the vertex-range granule of parallel edge generation.
// It is fixed (not derived from GOMAXPROCS) so the generated graph is
// identical regardless of how many workers fill it.
const buildChunk = 1 << 15

// builds counts substrate constructions since process start; tests use
// it to assert that shared consumers (batch worker queues, gang lanes)
// dedupe builds instead of re-deriving the same graph.
var builds atomic.Uint64

// Builds returns how many times a graph substrate has actually been
// built (cache hits and in-flight waits excluded).
func Builds() uint64 { return builds.Load() }

// build generates a graph from scratch.
func build(cfg Config) *Graph {
	if cfg.Vertices <= 0 || cfg.AvgDegree <= 0 {
		panic(fmt.Sprintf("graph: bad config %+v", cfg))
	}
	builds.Add(1)
	rng := util.NewRNG(cfg.Seed ^ 0x6AF4)
	g := &Graph{Vertices: cfg.Vertices}
	nEdges := cfg.Vertices * cfg.AvgDegree

	// Degree sequence: mild skew on out-degrees, strong skew on targets
	// (hubs receive many edges) — the R-MAT-like shape of real graphs.
	support := cfg.Vertices
	if support > 1<<16 {
		support = 1 << 16
	}
	var table *util.ZipfTable
	if cfg.Skew > 0 {
		table = util.TableFor(support, cfg.Skew)
	}

	// Phase 1 (serial, cheap): draw the degree sequence and lay out the
	// CSR row pointers.
	g.rowPtr = make([]uint32, cfg.Vertices+1)
	perVertex := cfg.AvgDegree
	total := 0
	for v := 0; v < cfg.Vertices; v++ {
		g.rowPtr[v] = uint32(total)
		deg := perVertex/2 + rng.Intn(perVertex+1)
		if total+deg > nEdges {
			deg = nEdges - total
		}
		total += deg
	}
	g.rowPtr[cfg.Vertices] = uint32(total)

	// Phase 2 (parallel): fill each chunk's edge targets from its own
	// seed-derived RNG stream. Chunks write disjoint slices of the edge
	// array, and each chunk's stream depends only on (seed, chunk
	// index), so the result is deterministic for any worker count.
	g.edges = make([]uint32, total)
	nChunks := (cfg.Vertices + buildChunk - 1) / buildChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				crng := util.NewRNG(cfg.Seed ^ 0x6AF4 ^ (uint64(ci)+1)*0x9E3779B97F4A7C15)
				lo, hi := ci*buildChunk, (ci+1)*buildChunk
				if hi > cfg.Vertices {
					hi = cfg.Vertices
				}
				for e := g.rowPtr[lo]; e < g.rowPtr[hi]; e++ {
					var tgt uint64
					if table != nil {
						// Spread hot ranks over the vertex range.
						rank := uint64(table.Sample(crng))
						tgt = (rank * 0x9E3779B97F4A7C15) % uint64(cfg.Vertices)
					} else {
						tgt = crng.Uint64n(uint64(cfg.Vertices))
					}
					g.edges[e] = uint32(tgt)
				}
			}
		}()
	}
	wg.Wait()

	v := uint64(cfg.Vertices)
	g.valuesBase = 0
	g.values2Base = v * wordBytes
	g.rowPtrBase = 2 * v * wordBytes
	g.edgesBase = g.rowPtrBase + (v+1)*wordBytes
	g.span = g.edgesBase + uint64(len(g.edges))*wordBytes
	return g
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// FootprintBytes returns the flat layout's span.
func (g *Graph) FootprintBytes() uint64 { return g.span }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.rowPtr[v+1] - g.rowPtr[v])
}

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.edges[g.rowPtr[v]:g.rowPtr[v+1]]
}

// Address helpers used by the kernels.
func (g *Graph) valueAddr(v uint32) uint64  { return g.valuesBase + uint64(v)*wordBytes }
func (g *Graph) value2Addr(v uint32) uint64 { return g.values2Base + uint64(v)*wordBytes }
func (g *Graph) rowPtrAddr(v int) uint64    { return g.rowPtrBase + uint64(v)*wordBytes }
func (g *Graph) edgeAddr(i uint32) uint64   { return g.edgesBase + uint64(i)*wordBytes }
