// Package graph provides a synthetic graph substrate and the
// graph-analytics kernels of the paper's workload suite (§5.1.2,
// from [29]): PageRank, triangle counting, BFS (graph500), SGD on a
// bipartite rating graph, and LSH bucket probing.
//
// Unlike the parametric generators in internal/trace (which model a
// benchmark's *statistics*), these kernels walk real in-memory data
// structures — a CSR adjacency laid out in a flat address space — and
// emit the memory reference stream the actual algorithm would produce:
// sequential index/edge scans interleaved with power-law random vertex
// accesses. They exist as higher-fidelity alternatives ("<name>_kernel"
// workloads) to cross-check the parametric calibration; DESIGN.md §5
// discusses the substitution chain.
//
// Graphs are generated deterministically from a seed with a Zipfian
// degree/popularity skew, the property that makes frequency-based
// DRAM-cache replacement effective on these workloads.
package graph

import (
	"fmt"

	"banshee/internal/util"
)

// Ref is one memory reference emitted by a kernel. Gap counts the
// non-memory instructions preceding it (the kernel's compute density).
type Ref struct {
	Gap   int
	Addr  uint64
	Write bool
}

// Graph is a CSR adjacency over Vertices vertices, with a flat address
// layout that kernels walk:
//
//	[0, 8V)           vertex values (ranks, labels, visited flags)
//	[8V, 16V)         second vertex array (next ranks, parents)
//	[16V, 16V+8(V+1)) row pointers
//	[...,  +8E)       edge targets
type Graph struct {
	Vertices int
	rowPtr   []uint32 // index into edges, len V+1
	edges    []uint32 // target vertex ids

	valuesBase  uint64
	values2Base uint64
	rowPtrBase  uint64
	edgesBase   uint64
	span        uint64
}

const wordBytes = 8

// Config sizes a synthetic graph.
type Config struct {
	Vertices  int
	AvgDegree int
	// Skew is the Zipf exponent of target-vertex popularity (hub
	// structure). 0 disables skew.
	Skew float64
	Seed uint64
}

// New generates a deterministic synthetic graph.
func New(cfg Config) *Graph {
	if cfg.Vertices <= 0 || cfg.AvgDegree <= 0 {
		panic(fmt.Sprintf("graph: bad config %+v", cfg))
	}
	rng := util.NewRNG(cfg.Seed ^ 0x6AF4)
	g := &Graph{Vertices: cfg.Vertices}
	nEdges := cfg.Vertices * cfg.AvgDegree

	// Degree sequence: mild skew on out-degrees, strong skew on targets
	// (hubs receive many edges) — the R-MAT-like shape of real graphs.
	support := cfg.Vertices
	if support > 1<<16 {
		support = 1 << 16
	}
	var zipf *util.Zipf
	if cfg.Skew > 0 {
		zipf = util.NewZipf(rng.Fork(), support, cfg.Skew)
	}
	g.rowPtr = make([]uint32, cfg.Vertices+1)
	g.edges = make([]uint32, 0, nEdges)
	perVertex := cfg.AvgDegree
	for v := 0; v < cfg.Vertices; v++ {
		g.rowPtr[v] = uint32(len(g.edges))
		deg := perVertex/2 + rng.Intn(perVertex+1)
		for e := 0; e < deg && len(g.edges) < nEdges; e++ {
			var tgt uint64
			if zipf != nil {
				// Spread hot ranks over the vertex range.
				rank := uint64(zipf.Next())
				tgt = (rank * 0x9E3779B97F4A7C15) % uint64(cfg.Vertices)
			} else {
				tgt = rng.Uint64n(uint64(cfg.Vertices))
			}
			g.edges = append(g.edges, uint32(tgt))
		}
	}
	g.rowPtr[cfg.Vertices] = uint32(len(g.edges))

	v := uint64(cfg.Vertices)
	g.valuesBase = 0
	g.values2Base = v * wordBytes
	g.rowPtrBase = 2 * v * wordBytes
	g.edgesBase = g.rowPtrBase + (v+1)*wordBytes
	g.span = g.edgesBase + uint64(len(g.edges))*wordBytes
	return g
}

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// FootprintBytes returns the flat layout's span.
func (g *Graph) FootprintBytes() uint64 { return g.span }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.rowPtr[v+1] - g.rowPtr[v])
}

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.edges[g.rowPtr[v]:g.rowPtr[v+1]]
}

// Address helpers used by the kernels.
func (g *Graph) valueAddr(v uint32) uint64  { return g.valuesBase + uint64(v)*wordBytes }
func (g *Graph) value2Addr(v uint32) uint64 { return g.values2Base + uint64(v)*wordBytes }
func (g *Graph) rowPtrAddr(v int) uint64    { return g.rowPtrBase + uint64(v)*wordBytes }
func (g *Graph) edgeAddr(i uint32) uint64   { return g.edgesBase + uint64(i)*wordBytes }
