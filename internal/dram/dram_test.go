package dram

import (
	"math"
	"testing"
	"testing/quick"

	"banshee/internal/mem"
)

func testConfig() Config {
	c := OffPackageConfig(2700)
	return c
}

func TestPeakBandwidth(t *testing.T) {
	off := OffPackageConfig(2700)
	in := InPackageConfig(2700)
	// Table 2: ~21 GB/s off-package, ~85 GB/s in-package.
	if got := off.PeakBandwidthGBs(); math.Abs(got-21.3) > 0.2 {
		t.Errorf("off-package peak %v GB/s, want ~21.3", got)
	}
	if got := in.PeakBandwidthGBs(); math.Abs(got-85.4) > 0.5 {
		t.Errorf("in-package peak %v GB/s, want ~85.4", got)
	}
}

func TestMinTransfer(t *testing.T) {
	d := New(testConfig())
	if d.MinTransferBytes() != 32 {
		t.Fatalf("min transfer %d, want 32", d.MinTransferBytes())
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = -1 },
		func(c *Config) { c.BusBytes = 0 },
		func(c *Config) { c.BusMHz = 0 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.LatencyScale = 0 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic on invalid config", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestZeroByteAccess(t *testing.T) {
	d := New(testConfig())
	if got := d.Access(100, 0, 0, false, true); got != 100 {
		t.Fatalf("zero-byte access returned %d, want 100 (no-op)", got)
	}
	if d.Stats().Accesses != 0 {
		t.Fatal("zero-byte access was counted")
	}
}

func TestLatencyComponents(t *testing.T) {
	d := New(testConfig())
	// First access to a bank: row miss → tRP+tRCD+tCAS = 30 DRAM cycles
	// ≈ 121 CPU cycles at 2.7 GHz / 667 MHz, plus 64 B transfer (2
	// bursts ≈ 8 cycles).
	done := d.Access(0, 0, 64, false, true)
	if done < 110 || done > 145 {
		t.Fatalf("cold access latency %d, want ~129", done)
	}
	// Second access to the same row: row hit, ~tCAS (10 cycles ≈ 40)
	// plus transfer; starts after the bus gap.
	done2 := d.Access(done, 64, 64, false, true)
	lat2 := done2 - done
	if lat2 < 40 || lat2 > 70 {
		t.Fatalf("row-hit latency %d, want ~48", lat2)
	}
	st := d.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Fatalf("row hits/misses = %d/%d, want 1/1", st.RowHits, st.RowMisses)
	}
}

func TestLatencyScale(t *testing.T) {
	fast := testConfig()
	fast.LatencyScale = 0.5
	df := New(fast)
	ds := New(testConfig())
	lf := df.Access(0, 0, 64, false, true)
	ls := ds.Access(0, 0, 64, false, true)
	if lf >= ls {
		t.Fatalf("scaled latency %d not below unscaled %d", lf, ls)
	}
}

func TestBusSerializesCritical(t *testing.T) {
	d := New(testConfig())
	// Saturate with back-to-back 64 B critical reads to one channel:
	// completions must be spaced at least a transfer apart and
	// throughput must approach (not exceed) peak.
	const n = 10000
	var last uint64
	for i := 0; i < n; i++ {
		a := mem.Addr(i * 64)
		done := d.Access(0, a, 64, false, true)
		if done <= last && i > 0 {
			t.Fatalf("access %d completed at %d, not after previous %d", i, done, last)
		}
		last = done
	}
	bytesPerCycle := float64(n*64) / float64(last)
	peak := 32.0 / (2700.0 / 667.0) // 32 B per bus cycle
	if bytesPerCycle > peak*1.01 {
		t.Fatalf("throughput %.2f B/cycle exceeds peak %.2f", bytesPerCycle, peak)
	}
	// Random 64 B reads should still achieve a healthy fraction of peak
	// (the bus gap costs ~1/3).
	if bytesPerCycle < peak*0.5 {
		t.Fatalf("throughput %.2f B/cycle below half of peak %.2f", bytesPerCycle, peak)
	}
}

func TestChannelParallelism(t *testing.T) {
	// With 4 channels, 4 streams to distinct channels should finish
	// ~4x faster than on 1 channel.
	one := testConfig()
	four := InPackageConfig(2700)
	d1, d4 := New(one), New(four)
	var last1, last4 uint64
	for i := 0; i < 4000; i++ {
		// Page-stride addresses rotate across channels.
		a := mem.Addr(i * mem.PageBytes)
		last1 = maxU(last1, d1.Access(0, a, 64, false, true))
		last4 = maxU(last4, d4.Access(0, a, 64, false, true))
	}
	// The page-stride pattern exercises only half the banks per channel
	// in the 4-channel layout, so the observed gain is bank-bound below
	// the ideal 4x; anything over 2x demonstrates channel parallelism.
	ratio := float64(last1) / float64(last4)
	if ratio < 2 {
		t.Fatalf("4-channel speedup %.2f, want >2", ratio)
	}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestBackgroundDoesNotDelayLightCriticalStream(t *testing.T) {
	d := New(testConfig())
	// Light critical traffic with heavy background: critical latency
	// must stay near zero-load as long as the background lead bound
	// isn't hit.
	base := d.Access(0, 0, 64, false, true) // zero-load reference
	d2 := New(testConfig())
	for i := 0; i < 20; i++ {
		d2.Access(0, mem.Addr(i*mem.PageBytes), 64, true, false)
	}
	got := d2.Access(0, 0, 64, false, true)
	if got > base+d2.maxLead {
		t.Fatalf("critical access delayed to %d by background (zero-load %d)", got, base)
	}
}

func TestWriteLeadBackpressure(t *testing.T) {
	d := New(testConfig())
	// Flood background traffic far beyond the lead bound; a critical
	// access must then be pushed behind (busAll - maxLead).
	for i := 0; i < 3000; i++ {
		d.Access(0, mem.Addr(i*mem.PageBytes), 4096, true, false)
	}
	done := d.Access(0, 0, 64, false, true)
	if done < 100000 {
		t.Fatalf("critical access at %d did not feel write backpressure", done)
	}
}

func TestExtendAddsBusTime(t *testing.T) {
	d := New(testConfig())
	done := d.Access(0, 0, 64, false, true)
	ext := d.Extend(0, 32, false, true)
	if ext <= done {
		t.Fatalf("Extend returned %d, not after primary %d", ext, done)
	}
	if d.Stats().BytesRead != 96 {
		t.Fatalf("bytes read %d, want 96", d.Stats().BytesRead)
	}
}

func TestExtendZeroBytes(t *testing.T) {
	d := New(testConfig())
	if d.Extend(0, 0, false, true) != 0 {
		t.Fatal("zero-byte Extend should be a no-op")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New(testConfig())
	d.Access(0, 0, 64, false, true)
	d.Access(0, 4096, 128, true, false)
	st := d.Stats()
	if st.BytesRead != 64 || st.BytesWritten != 128 {
		t.Fatalf("bytes r/w = %d/%d", st.BytesRead, st.BytesWritten)
	}
	if st.Accesses != 2 || st.Background != 1 {
		t.Fatalf("accesses %d background %d", st.Accesses, st.Background)
	}
	if st.BusBusy == 0 {
		t.Fatal("bus busy not accounted")
	}
}

func TestUtilization(t *testing.T) {
	d := New(testConfig())
	if d.Utilization(0) != 0 {
		t.Fatal("utilization with zero elapsed must be 0")
	}
	d.Access(0, 0, 4096, false, true)
	u := d.Utilization(1000)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of (0,1]", u)
	}
}

func TestMonotonicCompletionProperty(t *testing.T) {
	// Property: for any access sequence at nondecreasing times,
	// completion >= issue time + transfer time.
	f := func(addrs []uint16, sizes []uint8) bool {
		d := New(testConfig())
		now := uint64(0)
		for i, a16 := range addrs {
			var sz uint8
			if len(sizes) > 0 {
				sz = sizes[i%len(sizes)]
			}
			size := 32 + int(sz%4)*32
			addr := mem.Addr(a16) * 64
			done := d.Access(now, addr, size, i%2 == 0, i%3 == 0)
			if done < now {
				return false
			}
			now += 5
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
