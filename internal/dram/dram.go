// Package dram models DRAM channel timing and bandwidth. Both the
// in-package (HBM-class) and off-package (DDR) DRAMs of the paper's
// system (Table 2) are instances of the same model with different channel
// counts: 128-bit channels at 667 MHz DDR, 10-10-10-24 timing, banked with
// open-row (row-buffer) state.
//
// The model is a busy-until queueing model in CPU cycles: each bank and
// each channel data bus tracks when it next becomes free. An access waits
// for its bank, pays tCAS on a row hit or tRP+tRCD+tCAS on a row miss,
// then occupies the data bus for ceil(bytes/32B) DDR beats. Bandwidth
// contention — the effect the paper shows dominates performance (Fig. 8)
// — emerges from bus occupancy.
package dram

import (
	"fmt"

	"banshee/internal/mem"
)

// Config describes one DRAM (a set of identical channels).
type Config struct {
	Name            string
	Channels        int
	BanksPerChannel int
	BusBytes        int     // bus width in bytes per beat edge (16 = 128 bit)
	BusMHz          float64 // I/O clock; DDR transfers on both edges
	CPUMHz          float64 // core clock, for cycle conversion
	TCas            int     // DRAM cycles
	TRcd            int
	TRp             int
	TRas            int
	RowBytes        int // row-buffer size per bank

	// LatencyScale scales the access-time components (tCAS/tRCD/tRP)
	// without touching bandwidth; used by the Fig. 8b latency sweep.
	LatencyScale float64

	// MaxWriteLead bounds (in CPU cycles of bus backlog) how far the
	// background (write/fill) queue may run ahead of the demand stream.
	// When the backlog exceeds this, demand accesses stall until it
	// drains — the read-blocking write-drain of a full write queue.
	// 0 selects the default (1000 cycles ≈ a few KB of queued bursts).
	MaxWriteLead uint64
}

// OffPackageConfig returns the paper's off-package DRAM: 1 channel,
// 21.3 GB/s peak.
func OffPackageConfig(cpuMHz float64) Config {
	return Config{
		Name:            "off-package",
		Channels:        1,
		BanksPerChannel: 8,
		BusBytes:        16,
		BusMHz:          667,
		CPUMHz:          cpuMHz,
		TCas:            10, TRcd: 10, TRp: 10, TRas: 24,
		RowBytes:     8192,
		LatencyScale: 1.0,
	}
}

// InPackageConfig returns the paper's in-package DRAM: 4 channels,
// 85 GB/s peak.
func InPackageConfig(cpuMHz float64) Config {
	c := OffPackageConfig(cpuMHz)
	c.Name = "in-package"
	c.Channels = 4
	return c
}

// PeakBandwidthGBs returns the theoretical peak bandwidth in GB/s.
func (c Config) PeakBandwidthGBs() float64 {
	return float64(c.Channels) * float64(c.BusBytes) * 2 * c.BusMHz * 1e6 / 1e9
}

func (c Config) validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram %q: channels must be positive, got %d", c.Name, c.Channels)
	case c.BanksPerChannel <= 0:
		return fmt.Errorf("dram %q: banks must be positive, got %d", c.Name, c.BanksPerChannel)
	case c.BusBytes <= 0:
		return fmt.Errorf("dram %q: bus bytes must be positive, got %d", c.Name, c.BusBytes)
	case c.BusMHz <= 0 || c.CPUMHz <= 0:
		return fmt.Errorf("dram %q: clocks must be positive", c.Name)
	case c.RowBytes <= 0:
		return fmt.Errorf("dram %q: row bytes must be positive, got %d", c.Name, c.RowBytes)
	case c.LatencyScale <= 0:
		return fmt.Errorf("dram %q: latency scale must be positive, got %v", c.Name, c.LatencyScale)
	}
	return nil
}

// Stats aggregates what the DRAM observed.
type Stats struct {
	Accesses     uint64
	Background   uint64 // accesses in the background (write-drain) class
	RowHits      uint64 // critical accesses only
	RowMisses    uint64 // critical accesses only
	BytesRead    uint64
	BytesWritten uint64
	BusBusy      uint64 // total data-bus occupied CPU cycles, summed over channels
}

type bank struct {
	busyUntil uint64
	openRow   uint64
	rowOpen   bool
}

// channel models one DRAM channel with a two-priority data bus, the
// way FR-FCFS-style controllers treat demand reads versus writebacks
// and fills: critical (demand) transfers queue only behind other
// critical transfers (busCrit); background transfers drain in the gaps
// and queue behind everything (busAll). Total committed bus time is
// tracked by busAll, so bandwidth is conserved; under overload the
// background queue starves first, exactly like a real write queue.
type channel struct {
	busCrit uint64 // backlog seen by critical (demand) transfers
	busAll  uint64 // total committed bus time (all transfers)
	banks   []bank
}

// DRAM is a timing model instance. It is not safe for concurrent use;
// the simulator serializes accesses in global time order.
type DRAM struct {
	cfg   Config
	chans []channel
	stats Stats

	// Precomputed CPU-cycle latencies.
	casLat     uint64
	rowMissLat uint64
	ccdLat     uint64 // column-to-column command spacing per bank
	gapLat     uint64 // inter-access bus gap for random (demand) accesses
	maxLead    uint64 // write-queue lead bound in bus-backlog cycles
	cpuPerBus  float64

	// chanMask/bankMask replace the per-access modulo when the counts
	// are powers of two (every shipped configuration); -1 disables.
	chanMask int64
	bankMask int64
}

// New builds a DRAM from cfg. It panics on invalid configuration: a bad
// config is a programming error in experiment setup, not a runtime
// condition to handle.
func New(cfg Config) *DRAM {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg}
	d.chans = make([]channel, cfg.Channels)
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerChannel)
	}
	d.cpuPerBus = cfg.CPUMHz / cfg.BusMHz
	toCPU := func(busCycles int) uint64 {
		return uint64(float64(busCycles)*d.cpuPerBus*cfg.LatencyScale + 0.5)
	}
	d.casLat = toCPU(cfg.TCas)
	d.rowMissLat = toCPU(cfg.TRp + cfg.TRcd + cfg.TCas)
	d.ccdLat = toCPU(2)
	d.gapLat = toCPU(1)
	d.maxLead = cfg.MaxWriteLead
	if d.maxLead == 0 {
		d.maxLead = 1000
	}
	d.chanMask, d.bankMask = -1, -1
	if n := cfg.Channels; n&(n-1) == 0 {
		d.chanMask = int64(n - 1)
	}
	if n := cfg.BanksPerChannel; n&(n-1) == 0 {
		d.bankMask = int64(n - 1)
	}
	return d
}

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of accumulated statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// MinTransferBytes is the smallest data transfer (one burst): with a 16 B
// bus and burst length 2 this is 32 B, matching the paper's observation
// that a 64 B line plus tag moves at least 96 B.
func (d *DRAM) MinTransferBytes() int { return d.cfg.BusBytes * 2 }

// transferCycles returns the CPU cycles the data bus is occupied moving n
// bytes (rounded up to whole 32 B bursts).
func (d *DRAM) transferCycles(n int) uint64 {
	burst := d.MinTransferBytes()
	bursts := (n + burst - 1) / burst
	// Each burst is one full bus cycle (two DDR beats of BusBytes).
	return uint64(float64(bursts)*d.cpuPerBus + 0.5)
}

// channelOf maps an address to a channel: pages are statically
// interleaved across channels, per the paper's page-granularity MC
// mapping assumption (§2).
func (d *DRAM) channelOf(a mem.Addr) int {
	if d.chanMask >= 0 {
		return int(mem.PageNum(a) & uint64(d.chanMask))
	}
	return int(mem.PageNum(a) % uint64(len(d.chans)))
}

// Access times one transaction of n bytes at address a starting no
// earlier than now, returning its completion time in CPU cycles.
// critical selects the bus priority class (demand read path vs
// background fill/writeback/metadata).
//
// Banks pipeline: a row hit occupies the bank only for the
// column-command slot (tCCD-like), a row miss for the
// precharge+activate window; data transfers serialize on the channel's
// data bus. Under load the bus is therefore the binding resource —
// matching real DRAM, where peak bandwidth is achievable with enough
// bank-level parallelism — while row misses still cost latency and
// reduce a single bank's command rate.
func (d *DRAM) Access(now uint64, a mem.Addr, n int, write, critical bool) uint64 {
	if n <= 0 {
		return now
	}
	ch := &d.chans[d.channelOf(a)]

	// Background transfers model batched write/fill draining: they
	// consume bus time behind everything else but do not disturb bank
	// row state or occupy command slots the demand stream needs —
	// controllers drain writes in bursts precisely to keep them off the
	// read path.
	if !critical {
		xfer := d.transferCycles(n)
		dataStart := max64(now+d.rowMissLat, ch.busAll)
		done := dataStart + xfer
		ch.busAll = done
		d.stats.Accesses++
		d.stats.Background++
		d.stats.BusBusy += xfer
		if write {
			d.stats.BytesWritten += uint64(n)
		} else {
			d.stats.BytesRead += uint64(n)
		}
		return done
	}

	row := uint64(a) / uint64(d.cfg.RowBytes)
	var bk *bank
	if d.bankMask >= 0 {
		bk = &ch.banks[row&uint64(d.bankMask)]
	} else {
		bk = &ch.banks[row%uint64(len(ch.banks))]
	}

	start := max64(now, bk.busyUntil)
	var lat uint64
	if bk.rowOpen && bk.openRow == row {
		lat = d.casLat
		d.stats.RowHits++
		bk.busyUntil = start + d.ccdLat
	} else {
		lat = d.rowMissLat
		d.stats.RowMisses++
		bk.rowOpen = true
		bk.openRow = row
		bk.busyUntil = start + lat - d.casLat // busy through precharge+activate
	}
	xfer := d.transferCycles(n)
	dataStart := max64(start+lat, ch.busCrit)
	// Back-pressure from the write/fill queue: when the background
	// backlog exceeds the lead bound, the demand stream stalls while
	// the controller drains writes.
	if ch.busAll > dataStart+d.maxLead {
		dataStart = ch.busAll - d.maxLead
	}
	done := dataStart + xfer
	// Random demand accesses cannot keep the bus fully packed: command
	// scheduling and read/write turnarounds cost roughly one bus cycle
	// per access, so a 64 B demand stream achieves ~2/3 of peak — the
	// well-known random-access efficiency of DDR — while batched
	// background fills stream at full rate.
	ch.busCrit = done + d.gapLat
	ch.busAll = max64(ch.busAll, dataStart) + xfer + d.gapLat

	d.stats.Accesses++
	d.stats.BusBusy += xfer
	if write {
		d.stats.BytesWritten += uint64(n)
	} else {
		d.stats.BytesRead += uint64(n)
	}
	return done
}

// Extend lengthens the most recent transfer on a's channel by n bytes
// without a new bank command — the second half of a fused access (tag
// riding with data in one burst train). It returns the new completion
// time of that channel's bus in the given priority class.
func (d *DRAM) Extend(a mem.Addr, n int, write, critical bool) uint64 {
	if n <= 0 {
		return 0
	}
	ch := &d.chans[d.channelOf(a)]
	xfer := d.transferCycles(n)
	ch.busAll += xfer
	if critical {
		ch.busCrit += xfer
	}
	d.stats.BusBusy += xfer
	if write {
		d.stats.BytesWritten += uint64(n)
	} else {
		d.stats.BytesRead += uint64(n)
	}
	if critical {
		return ch.busCrit
	}
	return ch.busAll
}

// Utilization returns the fraction of total channel-cycles the data buses
// were busy over the first `elapsed` CPU cycles of the run.
func (d *DRAM) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(d.stats.BusBusy) / float64(elapsed*uint64(len(d.chans)))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
