package stats

// Phase identifies where a run is in its lifecycle: retiring warmup
// instructions, inside the measurement window, or complete.
type Phase int

const (
	PhaseWarmup Phase = iota
	PhaseMeasure
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warmup"
	case PhaseMeasure:
		return "measure"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// Snapshot is a windowed view of a running simulation at one instant:
// where the run is (instructions retired, wall clock in cycles, phase)
// plus a Sim holding every counter accumulated over the snapshot's
// window. All of a Sim's derived metrics (MPKI, IPC, traffic
// bytes-per-instruction) apply to the window, so a sequence of epoch
// snapshots is directly a time series of the paper's metrics.
//
// The window depends on how the snapshot was taken: Session.Snapshot
// windows from the start of the measurement phase (or the start of the
// run while still warming up), and OnEpoch snapshots window from the
// previous epoch boundary. In both cases every counter — core-side and
// scheme-internal alike — is windowed uniformly.
type Snapshot struct {
	// Retired is the total instructions retired across all cores at
	// capture time (whole run, not windowed).
	Retired uint64
	// Cycles is the maximum core clock at capture time (whole run).
	Cycles uint64
	// Phase is the run phase at capture time.
	Phase Phase
	// Window holds the counters accumulated over the snapshot window;
	// its Instructions and Cycles fields span the window, so derived
	// metrics are per-window rates.
	Window Sim
}

// Series is an ordered sequence of snapshots — the time series an
// OnEpoch hook accumulates over a run.
type Series []Snapshot

// Column extracts one derived metric per snapshot window, aligned with
// the series — convenient for plotting or tabulating a time series:
//
//	mpki := series.Column(func(s *Sim) float64 { return s.MPKI() })
func (sr Series) Column(f func(*Sim) float64) []float64 {
	out := make([]float64, len(sr))
	for i := range sr {
		out[i] = f(&sr[i].Window)
	}
	return out
}

// Sub returns a-b fieldwise over every monotonically accumulating
// counter — the windowing primitive behind warmup exclusion, Snapshot,
// and epoch series. Labels (Workload, Scheme) are kept from a.
// Scheme-internal counters (Remaps, TagProbes, TagBufferFlushes,
// TLBShootdowns, CounterSamples) window like every other counter: the
// capture path folds the scheme's running totals into each operand via
// FillStats before subtracting.
func Sub(a, b Sim) Sim {
	out := a
	out.Instructions -= b.Instructions
	out.Cycles -= b.Cycles
	out.L1Accesses -= b.L1Accesses
	out.L1Misses -= b.L1Misses
	out.L2Accesses -= b.L2Accesses
	out.L2Misses -= b.L2Misses
	out.LLCAccesses -= b.LLCAccesses
	out.LLCMisses -= b.LLCMisses
	out.LLCEvictions -= b.LLCEvictions
	out.DCHits -= b.DCHits
	out.DCMisses -= b.DCMisses
	out.MissLatSum -= b.MissLatSum
	out.MissLatCount -= b.MissLatCount
	out.Remaps -= b.Remaps
	out.TagProbes -= b.TagProbes
	out.TagBufferFlushes -= b.TagBufferFlushes
	out.TLBShootdowns -= b.TLBShootdowns
	out.CounterSamples -= b.CounterSamples
	out.SWStallCycles -= b.SWStallCycles
	out.Prefetches -= b.Prefetches
	for i := range out.InPkg.Bytes {
		out.InPkg.Bytes[i] -= b.InPkg.Bytes[i]
		out.OffPkg.Bytes[i] -= b.OffPkg.Bytes[i]
	}
	return out
}
