package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"banshee/internal/mem"
)

func TestTrafficAddTotal(t *testing.T) {
	var tr Traffic
	tr.Add(mem.ClassHitData, 64)
	tr.Add(mem.ClassTag, 32)
	tr.Add(mem.ClassHitData, 64)
	if tr.Total() != 160 {
		t.Fatalf("Total = %d, want 160", tr.Total())
	}
	if tr.Bytes[mem.ClassHitData] != 128 {
		t.Fatalf("HitData = %d", tr.Bytes[mem.ClassHitData])
	}
}

func TestTrafficMerge(t *testing.T) {
	var a, b Traffic
	a.Add(mem.ClassTag, 10)
	b.Add(mem.ClassTag, 5)
	b.Add(mem.ClassCounter, 7)
	a.Merge(b)
	if a.Bytes[mem.ClassTag] != 15 || a.Bytes[mem.ClassCounter] != 7 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestDerivedMetrics(t *testing.T) {
	s := Sim{
		Instructions: 1000,
		Cycles:       4000,
		DCHits:       30,
		DCMisses:     10,
	}
	s.InPkg.Add(mem.ClassHitData, 2000)
	s.OffPkg.Add(mem.ClassMissData, 500)

	if got := s.IPC(); got != 0.25 {
		t.Errorf("IPC = %v", got)
	}
	if got := s.MPKI(); got != 10 {
		t.Errorf("MPKI = %v", got)
	}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v", got)
	}
	if got := s.InPkgBPI(); got != 2 {
		t.Errorf("InPkgBPI = %v", got)
	}
	if got := s.OffPkgBPI(); got != 0.5 {
		t.Errorf("OffPkgBPI = %v", got)
	}
	if got := s.ClassBPI(mem.ClassHitData); got != 2 {
		t.Errorf("ClassBPI = %v", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var s Sim
	if s.IPC() != 0 || s.MPKI() != 0 || s.MissRate() != 0 || s.InPkgBPI() != 0 || s.OffPkgBPI() != 0 {
		t.Fatal("zero-value Sim must yield zero metrics, not NaN")
	}
}

func TestSpeedup(t *testing.T) {
	base := Sim{Cycles: 2000}
	fast := Sim{Cycles: 1000}
	if got := Speedup(&fast, &base); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	var zero Sim
	if got := Speedup(&zero, &base); got != 0 {
		t.Fatalf("Speedup with zero cycles = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	// Non-positive values are ignored.
	got = GeoMean([]float64{0, -3, 2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean with non-positives = %v", got)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(xsRaw []float64) bool {
		var xs []float64
		for _, x := range xsRaw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Max([]float64{3, 1, 2}) != 3 {
		t.Fatal("Max wrong")
	}
	if Max([]float64{-5, -2}) != -2 {
		t.Fatal("Max of negatives wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("foo", "1")
	tb.AddRow("longer-name", "2")
	out := tb.String()
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d: %q", len(lines), out)
	}
	// Columns must align: each data line starts with the padded name.
	if !strings.HasPrefix(lines[3], "foo        ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", "2", "3", "4")
	if strings.Contains(tb.String(), "3") {
		t.Fatal("extra cells leaked into output")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "w", "x", "y")
	tb.AddRowf("row", "%.1f", 1.25, 2.5)
	if !strings.Contains(tb.String(), "1.2") || !strings.Contains(tb.String(), "2.5") {
		t.Fatalf("AddRowf output wrong: %q", tb.String())
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("b", "2")
	tb.AddRow("a", "1")
	tb.SortRows()
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Fatal("rows not sorted")
	}
}
