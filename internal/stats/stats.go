// Package stats collects and reports the measurements the paper's
// evaluation is built from: cycle counts, DRAM traffic broken down by
// class (Fig. 5/6/9), DRAM-cache hit/miss counts (MPKI, miss rate), and
// scheme-internal events (tag-buffer flushes, page remaps, TLB
// shootdowns). It also provides the tabular formatting used by
// cmd/experiments to print paper-style tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"banshee/internal/mem"
)

// Traffic accumulates DRAM bytes by traffic class for one DRAM kind.
type Traffic struct {
	Bytes [mem.ClassCount]uint64
}

// Add accounts n bytes of class c.
func (t *Traffic) Add(c mem.Class, n uint64) { t.Bytes[c] += n }

// Total returns the sum over all classes.
func (t *Traffic) Total() uint64 {
	var s uint64
	for _, b := range t.Bytes {
		s += b
	}
	return s
}

// Merge adds o into t.
func (t *Traffic) Merge(o Traffic) {
	for i, b := range o.Bytes {
		t.Bytes[i] += b
	}
}

// Sim is the full set of measurements from one simulation run.
type Sim struct {
	Workload string
	Scheme   string

	Instructions uint64
	Cycles       uint64

	// SRAM hierarchy.
	L1Accesses, L1Misses   uint64
	L2Accesses, L2Misses   uint64
	LLCAccesses, LLCMisses uint64
	LLCEvictions           uint64 // dirty write-backs leaving the LLC

	// DRAM cache behavior (of LLC misses).
	DCHits, DCMisses uint64

	// DRAM traffic.
	InPkg  Traffic
	OffPkg Traffic

	// Latency diagnostics: sum of critical-path completion minus issue
	// time over demand LLC misses (DRAM cache hit or miss), for average
	// memory latency reporting.
	MissLatSum   uint64
	MissLatCount uint64

	// Scheme-internal events.
	Remaps           uint64 // page (or line) replacements into the DRAM cache
	TagProbes        uint64 // tag reads for mapping-unknown requests
	TagBufferFlushes uint64 // PTE/TLB batch-update rounds (Banshee)
	TLBShootdowns    uint64
	SWStallCycles    uint64 // cycles lost to software routines (HMA, Banshee flushes)
	CounterSamples   uint64 // sampled metadata accesses (Banshee FBR)
	Prefetches       uint64 // hardware prefetch requests issued to the MC
}

// AvgMissLat returns the mean critical-path latency of LLC misses.
func (s *Sim) AvgMissLat() float64 {
	if s.MissLatCount == 0 {
		return 0
	}
	return float64(s.MissLatSum) / float64(s.MissLatCount)
}

// IPC returns instructions per cycle over all cores combined.
func (s *Sim) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MPKI returns DRAM-cache misses per kilo-instruction (the red dots of
// Fig. 4).
func (s *Sim) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.DCMisses) / float64(s.Instructions) * 1000
}

// MissRate returns the DRAM-cache miss rate among LLC misses.
func (s *Sim) MissRate() float64 {
	tot := s.DCHits + s.DCMisses
	if tot == 0 {
		return 0
	}
	return float64(s.DCMisses) / float64(tot)
}

// InPkgBPI returns in-package DRAM bytes per instruction (Fig. 5 y-axis).
func (s *Sim) InPkgBPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.InPkg.Total()) / float64(s.Instructions)
}

// OffPkgBPI returns off-package DRAM bytes per instruction (Fig. 6 y-axis).
func (s *Sim) OffPkgBPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.OffPkg.Total()) / float64(s.Instructions)
}

// ClassBPI returns bytes-per-instruction of one in-package traffic class.
func (s *Sim) ClassBPI(c mem.Class) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.InPkg.Bytes[c]) / float64(s.Instructions)
}

// Speedup returns the runtime ratio base/s: >1 means s is faster.
func Speedup(s, base *Sim) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(s.Cycles)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Table formats experiment results in aligned columns, in the spirit of
// the paper's tables. Rows print in insertion order.
type Table struct {
	Title   string
	columns []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, columns: columns}
}

// AddRow appends a row; cells beyond len(columns) are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.columns) {
		cells = cells[:len(t.columns)]
	}
	row := make([]string, len(t.columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted floats after a string label.
func (t *Table) AddRowf(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.columns))
	for i, c := range t.columns {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.columns)
	total := len(t.columns) - 1
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRows orders rows by their first cell (stable), used when
// aggregating concurrent experiment results deterministically.
func (t *Table) SortRows() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		return t.rows[i][0] < t.rows[j][0]
	})
}
