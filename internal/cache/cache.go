// Package cache implements the set-associative SRAM caches of the
// simulated chip (L1I/L1D, L2, shared L3), managed at 64 B line
// granularity with write-back/write-allocate semantics. The same type
// also backs small hardware tables elsewhere in the simulator (e.g. TLBs
// and Banshee's tag buffer embed the replacement machinery via their own
// structures, but the L-level caches all use Cache directly).
//
// Beyond plain lookup the package supports the operations DRAM-cache
// schemes need from the on-chip hierarchy: flushing all lines of a
// physical page (HMA's address-consistency scrub, large-page
// reconfiguration) and tagging lines with metadata bits (the per-line
// page-size bit of §4.3 used to route LLC dirty evictions).
package cache

import (
	"fmt"

	"banshee/internal/mem"
	"banshee/internal/util"
)

// Policy selects the victim-choice algorithm.
type Policy uint8

const (
	LRU Policy = iota
	FIFO
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	Policy    Policy
	Seed      uint64 // for Random policy
}

func (c Config) validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache %q: size must be positive, got %d", c.Name, c.SizeBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %q: ways must be positive, got %d", c.Name, c.Ways)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %q: line bytes must be a positive power of two, got %d", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d must be a positive power of two", c.Name, sets)
	}
	return nil
}

// Eviction describes a line displaced by a fill. Pointers returned by
// Access, Fill, and Invalidate reference a per-cache scratch value that
// the next call overwrites — consume (or copy) an eviction before
// touching the same cache again. The simulator's per-event loop runs
// billions of evictions per sweep; reusing the scratch keeps the loop
// allocation-free.
type Eviction struct {
	Addr  mem.Addr
	Dirty bool
	Meta  uint8
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	meta  uint8
	stamp uint64 // LRU: last-touch tick; FIFO: insertion tick
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64 // dirty evictions (write-backs)
	Fills      uint64
	Flushes    uint64 // lines removed by explicit flush operations
	WriteHits  uint64
	WriteMiss  uint64
	Invalidate uint64
}

// Cache is a single set-associative cache. Not safe for concurrent use.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	rng      *util.RNG
	stats    Stats
	ev       Eviction // scratch returned by Access/Fill/Invalidate
}

// New builds a cache; it panics on invalid configuration (a setup bug).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, nsets),
		setMask: uint64(nsets - 1),
		rng:     util.NewRNG(cfg.Seed ^ 0xCAC4E),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the construction configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets (diagnostic).
func (c *Cache) Sets() int { return len(c.sets) }

func (c *Cache) index(a mem.Addr) (set uint64, tag uint64) {
	l := uint64(a) >> c.lineBits
	return l & c.setMask, l >> uint(popcount(c.setMask))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func (c *Cache) addrOf(set uint64, tag uint64) mem.Addr {
	return mem.Addr((tag<<uint(popcount(c.setMask)) | set) << c.lineBits)
}

// Lookup reports whether a's line is present without changing any state.
func (c *Cache) Lookup(a mem.Addr) bool {
	set, tag := c.index(a)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand read or write with allocate-on-miss. It
// returns whether the access hit, and (on a miss that displaced a dirty
// line) the eviction the caller must write back. meta is stored on the
// line on fill and on write (carrying e.g. the page-size bit downstream).
func (c *Cache) Access(a mem.Addr, write bool, meta uint8) (hit bool, ev *Eviction) {
	c.stats.Accesses++
	c.tick++
	set, tag := c.index(a)
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			if c.cfg.Policy == LRU {
				s[i].stamp = c.tick
			}
			if write {
				s[i].dirty = true
				s[i].meta = meta
				c.stats.WriteHits++
			}
			return true, nil
		}
	}
	c.stats.Misses++
	if write {
		c.stats.WriteMiss++
	}
	ev = c.fill(set, tag, write, meta)
	return false, ev
}

// Fill inserts a's line without counting a demand access (used when an
// outer level pushes data in, e.g. prefetch-like flows in tests).
func (c *Cache) Fill(a mem.Addr, dirty bool, meta uint8) *Eviction {
	c.tick++
	set, tag := c.index(a)
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			if dirty {
				s[i].dirty = true
			}
			s[i].meta = meta
			return nil
		}
	}
	return c.fill(set, tag, dirty, meta)
}

func (c *Cache) fill(set uint64, tag uint64, dirty bool, meta uint8) *Eviction {
	s := c.sets[set]
	victim := 0
	switch c.cfg.Policy {
	case Random:
		// Prefer an invalid way; otherwise pick at random.
		victim = -1
		for i := range s {
			if !s[i].valid {
				victim = i
				break
			}
		}
		if victim < 0 {
			victim = c.rng.Intn(len(s))
		}
	default: // LRU and FIFO both evict the smallest stamp
		for i := 1; i < len(s); i++ {
			if !s[i].valid {
				victim = i
				break
			}
			if s[victim].valid && s[i].stamp < s[victim].stamp {
				victim = i
			}
		}
		if !s[0].valid {
			victim = 0
		}
	}
	var ev *Eviction
	if s[victim].valid && s[victim].dirty {
		c.stats.Evictions++
		c.ev = Eviction{Addr: c.addrOf(set, s[victim].tag), Dirty: true, Meta: s[victim].meta}
		ev = &c.ev
	}
	s[victim] = line{tag: tag, valid: true, dirty: dirty, meta: meta, stamp: c.tick}
	c.stats.Fills++
	return ev
}

// Invalidate drops a's line if present, returning a write-back if it was
// dirty.
func (c *Cache) Invalidate(a mem.Addr) *Eviction {
	set, tag := c.index(a)
	s := c.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			c.stats.Invalidate++
			var ev *Eviction
			if s[i].dirty {
				c.ev = Eviction{Addr: c.addrOf(set, s[i].tag), Dirty: true, Meta: s[i].meta}
				ev = &c.ev
			}
			s[i] = line{}
			return ev
		}
	}
	return nil
}

// FlushPage removes every line belonging to the 4 KB page containing a,
// returning dirty lines that must be written back. This is the cache
// scrub HMA-style remapping requires for address consistency, and the
// flush Banshee needs on large-page reconfiguration.
func (c *Cache) FlushPage(a mem.Addr) []Eviction {
	var evs []Eviction
	base := mem.PageAddr(a)
	for off := 0; off < mem.PageBytes; off += c.cfg.LineBytes {
		la := base + mem.Addr(off)
		set, tag := c.index(la)
		s := c.sets[set]
		for i := range s {
			if s[i].valid && s[i].tag == tag {
				c.stats.Flushes++
				if s[i].dirty {
					evs = append(evs, Eviction{Addr: la, Dirty: true, Meta: s[i].meta})
				}
				s[i] = line{}
			}
		}
	}
	return evs
}

// Occupancy returns the number of valid lines (diagnostic, tests).
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].valid {
				n++
			}
		}
	}
	return n
}
