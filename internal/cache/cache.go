// Package cache implements the set-associative SRAM caches of the
// simulated chip (L1I/L1D, L2, shared L3), managed at 64 B line
// granularity with write-back/write-allocate semantics. The same type
// also backs small hardware tables elsewhere in the simulator (e.g. TLBs
// and Banshee's tag buffer embed the replacement machinery via their own
// structures, but the L-level caches all use Cache directly).
//
// Beyond plain lookup the package supports the operations DRAM-cache
// schemes need from the on-chip hierarchy: flushing all lines of a
// physical page (HMA's address-consistency scrub, large-page
// reconfiguration) and tagging lines with metadata bits (the per-line
// page-size bit of §4.3 used to route LLC dirty evictions).
//
// Storage is struct-of-arrays over one flat backing allocation (tags,
// stamps, and packed flag/meta bytes in parallel slices indexed by
// set×ways+way), so the way scan on every access walks contiguous
// memory instead of hopping across per-set slice headers — see
// DESIGN.md §10 for the layout contract.
package cache

import (
	"fmt"
	"math/bits"

	"banshee/internal/mem"
	"banshee/internal/util"
)

// Policy selects the victim-choice algorithm.
type Policy uint8

const (
	LRU Policy = iota
	FIFO
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	Policy    Policy
	Seed      uint64 // for Random policy
}

func (c Config) validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache %q: size must be positive, got %d", c.Name, c.SizeBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache %q: ways must be positive, got %d", c.Name, c.Ways)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %q: line bytes must be a positive power of two, got %d", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d must be a positive power of two", c.Name, sets)
	}
	return nil
}

// Eviction describes a line displaced by a fill. Pointers returned by
// Access, Fill, and Invalidate reference a per-cache scratch value that
// the next call overwrites — consume (or copy) an eviction before
// touching the same cache again. The simulator's per-event loop runs
// billions of evictions per sweep; reusing the scratch keeps the loop
// allocation-free.
type Eviction struct {
	Addr  mem.Addr
	Dirty bool
	Meta  uint8
}

// Line state bits in the flags array.
const (
	fValid uint8 = 1 << iota
	fDirty
)

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64 // dirty evictions (write-backs)
	Fills      uint64
	Flushes    uint64 // lines removed by explicit flush operations
	WriteHits  uint64
	WriteMiss  uint64
	Invalidate uint64
}

// Cache is a single set-associative cache. Not safe for concurrent use.
//
// Line state is struct-of-arrays: slot s = set×Ways+way holds its tag
// in tags[s], its replacement stamp in stamps[s], and valid/dirty bits
// plus caller metadata in flags[s]/meta[s].
type Cache struct {
	cfg      Config
	tags     []uint64
	stamps   []uint64 // LRU: last-touch tick; FIFO: insertion tick
	flags    []uint8
	meta     []uint8
	ways     int
	nsets    int
	setMask  uint64
	setBits  uint // precomputed popcount(setMask): the tag shift
	lineBits uint
	tick     uint64
	rng      *util.RNG
	stats    Stats
	ev       Eviction // scratch returned by Access/Fill/Invalidate
}

// New builds a cache; it panics on invalid configuration (a setup bug).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	n := nsets * cfg.Ways
	c := &Cache{
		cfg:     cfg,
		tags:    make([]uint64, n),
		stamps:  make([]uint64, n),
		flags:   make([]uint8, n),
		meta:    make([]uint8, n),
		ways:    cfg.Ways,
		nsets:   nsets,
		setMask: uint64(nsets - 1),
		rng:     util.NewRNG(cfg.Seed ^ 0xCAC4E),
	}
	c.setBits = uint(bits.OnesCount64(c.setMask))
	c.lineBits = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	return c
}

// Config returns the construction configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets (diagnostic).
func (c *Cache) Sets() int { return c.nsets }

func (c *Cache) index(a mem.Addr) (set uint64, tag uint64) {
	l := uint64(a) >> c.lineBits
	return l & c.setMask, l >> c.setBits
}

func (c *Cache) addrOf(set uint64, tag uint64) mem.Addr {
	return mem.Addr((tag<<c.setBits | set) << c.lineBits)
}

// Lookup reports whether a's line is present without changing any state.
func (c *Cache) Lookup(a mem.Addr) bool {
	set, tag := c.index(a)
	base := int(set) * c.ways
	for s := base; s < base+c.ways; s++ {
		if c.flags[s]&fValid != 0 && c.tags[s] == tag {
			return true
		}
	}
	return false
}

// Access performs a demand read or write with allocate-on-miss. It
// returns whether the access hit, and (on a miss that displaced a dirty
// line) the eviction the caller must write back. meta is stored on the
// line on fill and on write (carrying e.g. the page-size bit downstream).
//
// The way scan doubles as the victim pre-selection: by the time a miss
// is known, every way's valid bit has been read, so the first invalid
// way (the victim preferred by all policies) falls out of the same pass
// instead of a second scan in fill.
func (c *Cache) Access(a mem.Addr, write bool, meta uint8) (hit bool, ev *Eviction) {
	c.stats.Accesses++
	c.tick++
	set, tag := c.index(a)
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	flags := c.flags[base : base+c.ways]
	invalid := -1
	for i, tg := range tags {
		if flags[i]&fValid == 0 {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if tg == tag {
			s := base + i
			if c.cfg.Policy == LRU {
				c.stamps[s] = c.tick
			}
			if write {
				c.flags[s] |= fDirty
				c.meta[s] = meta
				c.stats.WriteHits++
			}
			return true, nil
		}
	}
	c.stats.Misses++
	if write {
		c.stats.WriteMiss++
	}
	ev = c.fill(set, invalid, tag, write, meta)
	return false, ev
}

// Fill inserts a's line without counting a demand access (used when an
// outer level pushes data in, e.g. prefetch-like flows in tests).
func (c *Cache) Fill(a mem.Addr, dirty bool, meta uint8) *Eviction {
	c.tick++
	set, tag := c.index(a)
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	flags := c.flags[base : base+c.ways]
	invalid := -1
	for i, tg := range tags {
		if flags[i]&fValid == 0 {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if tg == tag {
			s := base + i
			if dirty {
				c.flags[s] |= fDirty
			}
			c.meta[s] = meta
			return nil
		}
	}
	return c.fill(set, invalid, tag, dirty, meta)
}

// fill inserts into set, evicting per policy. invalid is the first
// invalid way found by the caller's scan (-1 when the set is full) —
// every policy prefers it, and when the set is full the LRU/FIFO
// victim is the minimal stamp over the (all-valid) ways.
func (c *Cache) fill(set uint64, invalid int, tag uint64, dirty bool, meta uint8) *Eviction {
	base := int(set) * c.ways
	var victim int
	switch {
	case invalid >= 0:
		victim = base + invalid
	case c.cfg.Policy == Random:
		victim = base + c.rng.Intn(c.ways)
	default: // LRU and FIFO both evict the smallest stamp
		stamps := c.stamps[base : base+c.ways]
		v, min := 0, stamps[0]
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < min {
				v, min = i, stamps[i]
			}
		}
		victim = base + v
	}
	var ev *Eviction
	if c.flags[victim]&(fValid|fDirty) == fValid|fDirty {
		c.stats.Evictions++
		c.ev = Eviction{Addr: c.addrOf(set, c.tags[victim]), Dirty: true, Meta: c.meta[victim]}
		ev = &c.ev
	}
	c.tags[victim] = tag
	c.stamps[victim] = c.tick
	c.meta[victim] = meta
	if dirty {
		c.flags[victim] = fValid | fDirty
	} else {
		c.flags[victim] = fValid
	}
	c.stats.Fills++
	return ev
}

// Invalidate drops a's line if present, returning a write-back if it was
// dirty.
func (c *Cache) Invalidate(a mem.Addr) *Eviction {
	set, tag := c.index(a)
	base := int(set) * c.ways
	for s := base; s < base+c.ways; s++ {
		if c.flags[s]&fValid != 0 && c.tags[s] == tag {
			c.stats.Invalidate++
			var ev *Eviction
			if c.flags[s]&fDirty != 0 {
				c.ev = Eviction{Addr: c.addrOf(set, c.tags[s]), Dirty: true, Meta: c.meta[s]}
				ev = &c.ev
			}
			c.clearSlot(s)
			return ev
		}
	}
	return nil
}

// clearSlot resets one line slot to the invalid state.
func (c *Cache) clearSlot(s int) {
	c.tags[s] = 0
	c.stamps[s] = 0
	c.flags[s] = 0
	c.meta[s] = 0
}

// FlushPage removes every line belonging to the 4 KB page containing a,
// returning dirty lines that must be written back. This is the cache
// scrub HMA-style remapping requires for address consistency, and the
// flush Banshee needs on large-page reconfiguration.
func (c *Cache) FlushPage(a mem.Addr) []Eviction {
	var evs []Eviction
	base := mem.PageAddr(a)
	for off := 0; off < mem.PageBytes; off += c.cfg.LineBytes {
		la := base + mem.Addr(off)
		set, tag := c.index(la)
		sb := int(set) * c.ways
		for s := sb; s < sb+c.ways; s++ {
			if c.flags[s]&fValid != 0 && c.tags[s] == tag {
				c.stats.Flushes++
				if c.flags[s]&fDirty != 0 {
					evs = append(evs, Eviction{Addr: la, Dirty: true, Meta: c.meta[s]})
				}
				c.clearSlot(s)
			}
		}
	}
	return evs
}

// Occupancy returns the number of valid lines (diagnostic, tests).
func (c *Cache) Occupancy() int {
	n := 0
	for _, f := range c.flags {
		if f&fValid != 0 {
			n++
		}
	}
	return n
}
