package cache

import (
	"testing"
	"testing/quick"

	"banshee/internal/mem"
)

func small(policy Policy) Config {
	return Config{
		Name: "t", SizeBytes: 4096, Ways: 4, LineBytes: 64, Policy: policy,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 4096, Ways: 0, LineBytes: 64},
		{SizeBytes: 4096, Ways: 4, LineBytes: 48},       // not power of two
		{SizeBytes: 4096 + 64, Ways: 4, LineBytes: 64},  // lines % ways != 0
		{SizeBytes: 3 * 64 * 4, Ways: 4, LineBytes: 64}, // 3 sets: not pow2
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(small(LRU))
	hit, _ := c.Access(0x1000, false, 0)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _ = c.Access(0x1000, false, 0)
	if !hit {
		t.Fatal("second access missed")
	}
	if !c.Lookup(0x1000) {
		t.Fatal("Lookup false after fill")
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	c := New(small(LRU))
	c.Access(0x1000, false, 0)
	if hit, _ := c.Access(0x1020, false, 0); !hit {
		t.Fatal("offset within same line missed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small(LRU)) // 16 sets, 4 ways
	sets := uint64(c.Sets())
	// Fill one set with 4 distinct tags, touch the first again, then
	// insert a 5th: the victim must be the 2nd (LRU), not the 1st.
	base := mem.Addr(0)
	stride := mem.Addr(sets * 64)
	for i := 0; i < 4; i++ {
		c.Access(base+mem.Addr(i)*stride, false, 0)
	}
	c.Access(base, false, 0)          // refresh tag 0
	c.Access(base+4*stride, false, 0) // evicts tag 1
	if hit, _ := c.Access(base, false, 0); !hit {
		t.Fatal("MRU line was evicted")
	}
	if hit, _ := c.Access(base+1*stride, false, 0); hit {
		t.Fatal("LRU line survived")
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(small(FIFO))
	sets := uint64(c.Sets())
	stride := mem.Addr(sets * 64)
	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i)*stride, false, 0)
	}
	// Touching tag 0 must NOT refresh it under FIFO.
	c.Access(0, false, 0)
	c.Access(4*stride, false, 0) // evicts tag 0 (oldest insertion)
	if hit, _ := c.Access(0, false, 0); hit {
		t.Fatal("FIFO did not evict oldest insertion")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(small(LRU))
	sets := uint64(c.Sets())
	stride := mem.Addr(sets * 64)
	c.Access(0, true, 7) // dirty with meta 7
	for i := 1; i <= 4; i++ {
		_, ev := c.Access(mem.Addr(i)*stride, false, 0)
		if i < 4 {
			if ev != nil {
				t.Fatalf("unexpected eviction at fill %d", i)
			}
			continue
		}
		if ev == nil {
			t.Fatal("dirty eviction not reported")
		}
		if ev.Addr != 0 || !ev.Dirty || ev.Meta != 7 {
			t.Fatalf("eviction = %+v", ev)
		}
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := New(small(LRU))
	sets := uint64(c.Sets())
	stride := mem.Addr(sets * 64)
	for i := 0; i <= 4; i++ {
		if _, ev := c.Access(mem.Addr(i)*stride, false, 0); ev != nil {
			t.Fatal("clean eviction produced a write-back")
		}
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New(small(LRU))
	c.Access(0x40, false, 0)
	c.Access(0x40, true, 0) // write hit dirties the line
	ev := c.Invalidate(0x40)
	if ev == nil || !ev.Dirty {
		t.Fatal("write hit did not dirty the line")
	}
}

func TestFill(t *testing.T) {
	c := New(small(LRU))
	if ev := c.Fill(0x80, true, 3); ev != nil {
		t.Fatal("fill into empty cache evicted")
	}
	if !c.Lookup(0x80) {
		t.Fatal("fill did not insert")
	}
	// Fill of a present line only upgrades dirtiness.
	c.Fill(0x80, false, 3)
	ev := c.Invalidate(0x80)
	if ev == nil || !ev.Dirty {
		t.Fatal("fill cleared dirty bit")
	}
	if c.Stats().Accesses != 0 {
		t.Fatal("Fill counted as demand access")
	}
}

func TestInvalidateMissing(t *testing.T) {
	c := New(small(LRU))
	if ev := c.Invalidate(0xdead000); ev != nil {
		t.Fatal("invalidate of absent line returned eviction")
	}
}

func TestFlushPage(t *testing.T) {
	cfg := Config{Name: "big", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, Policy: LRU}
	c := New(cfg)
	// Touch every line of one page, some dirty.
	page := mem.Addr(0x7000000)
	for i := 0; i < mem.LinesPerPage; i++ {
		c.Access(page+mem.Addr(i*64), i%2 == 0, 0)
	}
	evs := c.FlushPage(page + 128) // any address within the page
	if len(evs) != mem.LinesPerPage/2 {
		t.Fatalf("flushed %d dirty lines, want %d", len(evs), mem.LinesPerPage/2)
	}
	for i := 0; i < mem.LinesPerPage; i++ {
		if c.Lookup(page + mem.Addr(i*64)) {
			t.Fatal("line survived page flush")
		}
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := New(small(Random))
	for i := 0; i < 10000; i++ {
		c.Access(mem.Addr(i)*64, false, 0)
	}
	max := 4096 / 64
	if got := c.Occupancy(); got != max {
		t.Fatalf("occupancy %d, want full %d", got, max)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(small(LRU))
	c.Access(0, false, 0)
	c.Access(0, false, 0)
	c.Access(0, true, 0)
	st := c.Stats()
	if st.Accesses != 3 || st.Misses != 1 || st.Fills != 1 || st.WriteHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	// Property: after accessing any address, the cache holds exactly
	// that line (Lookup true for every offset in the line).
	f := func(raw uint64) bool {
		c := New(small(LRU))
		a := mem.Addr(raw % (1 << 40))
		c.Access(a, false, 0)
		return c.Lookup(a) && c.Lookup(mem.LineAddr(a)) && c.Lookup(mem.LineAddr(a)+63)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionAddressInSameSetProperty(t *testing.T) {
	// Property: a reported eviction's address maps to the same set as
	// the access that displaced it.
	f := func(raw uint64, n uint8) bool {
		c := New(small(LRU))
		base := mem.Addr(raw % (1 << 40))
		sets := uint64(c.Sets())
		stride := mem.Addr(sets * 64)
		for i := 0; i < int(n%8)+5; i++ {
			_, ev := c.Access(base+mem.Addr(i)*stride, true, 0)
			if ev != nil {
				setOf := func(a mem.Addr) uint64 { return (uint64(a) >> 6) & (sets - 1) }
				if setOf(ev.Addr) != setOf(base) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("policy names wrong")
	}
}
