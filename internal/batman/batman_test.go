package batman

import (
	"testing"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
)

// hitScheme always hits in-package (CacheOnly-like), generating the
// lopsided traffic BATMAN is meant to balance.
type hitScheme struct{ evictions uint64 }

func (*hitScheme) Name() string { return "hit" }
func (h *hitScheme) Access(req mem.Request) mc.Result {
	return mc.Result{Hit: true, Ops: []mem.Op{{
		Target: mem.InPackage, Addr: req.Addr, Bytes: 64,
		Class: mem.ClassHitData, Critical: true,
	}}}
}
func (*hitScheme) FillStats(*stats.Sim) {}

func TestNameSuffix(t *testing.T) {
	b := New(&hitScheme{}, Config{Seed: 1})
	if b.Name() != "hit+BATMAN" {
		t.Fatalf("name %q", b.Name())
	}
}

func TestRedirectionRampsUpUnderImbalance(t *testing.T) {
	b := New(&hitScheme{}, Config{Seed: 1, WindowBytes: 1 << 16})
	for i := 0; i < 50000; i++ {
		b.Access(mem.Request{Addr: mem.Addr(i * 64)})
	}
	if b.RedirectProb() == 0 {
		t.Fatal("redirect probability never rose despite 100% in-package traffic")
	}
	if b.Redirected() == 0 {
		t.Fatal("no accesses were steered off-package")
	}
}

func TestRedirectedOpsTargetOffPackage(t *testing.T) {
	b := New(&hitScheme{}, Config{Seed: 1, WindowBytes: 1 << 12})
	var off int
	for i := 0; i < 20000; i++ {
		res := b.Access(mem.Request{Addr: mem.Addr(i * 64)})
		for _, op := range res.Ops {
			if op.Target == mem.OffPackage {
				off += op.Bytes
				if op.Write {
					t.Fatal("redirected a write")
				}
			}
		}
	}
	if off == 0 {
		t.Fatal("no off-package bytes after redirection")
	}
}

func TestNoRedirectionWhenBalanced(t *testing.T) {
	// A scheme already balanced below the target ratio: probability
	// stays at zero.
	balanced := &balancedScheme{}
	b := New(balanced, Config{Seed: 2, WindowBytes: 1 << 14})
	for i := 0; i < 20000; i++ {
		b.Access(mem.Request{Addr: mem.Addr(i * 64)})
	}
	if b.RedirectProb() != 0 {
		t.Fatalf("redirect probability %v on balanced traffic", b.RedirectProb())
	}
}

type balancedScheme struct{ flip bool }

func (*balancedScheme) Name() string { return "balanced" }
func (s *balancedScheme) Access(req mem.Request) mc.Result {
	s.flip = !s.flip
	target := mem.InPackage
	if s.flip {
		target = mem.OffPackage
	}
	return mc.Result{Hit: !s.flip, Ops: []mem.Op{{
		Target: target, Addr: req.Addr, Bytes: 64,
		Class: mem.ClassHitData, Critical: true,
	}}}
}
func (*balancedScheme) FillStats(*stats.Sim) {}

func TestEvictionsNeverRedirected(t *testing.T) {
	b := New(&hitScheme{}, Config{Seed: 3, WindowBytes: 1 << 12})
	// Ramp up the probability first.
	for i := 0; i < 20000; i++ {
		b.Access(mem.Request{Addr: mem.Addr(i * 64)})
	}
	for i := 0; i < 5000; i++ {
		res := b.Access(mem.Request{Addr: mem.Addr(i * 64), Write: true, Eviction: true})
		for _, op := range res.Ops {
			if op.Target == mem.OffPackage {
				t.Fatal("eviction redirected off-package")
			}
		}
	}
}

func TestProbabilityCapped(t *testing.T) {
	b := New(&hitScheme{}, Config{Seed: 4, WindowBytes: 1 << 10, MaxRedirect: 0.3})
	for i := 0; i < 100000; i++ {
		b.Access(mem.Request{Addr: mem.Addr(i * 64)})
	}
	if p := b.RedirectProb(); p > 0.3 {
		t.Fatalf("probability %v exceeds cap", p)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(&hitScheme{}, Config{})
	if b.cfg.TargetRatio != 0.8 || b.cfg.WindowBytes == 0 || b.cfg.MaxRedirect != 0.5 {
		t.Fatalf("defaults not applied: %+v", b.cfg)
	}
}
