// Package batman implements the bandwidth-balancing extension evaluated
// in §5.4.2, after BATMAN [Chou et al., 2015]: when the in-package DRAM
// carries more than a target share (80%) of total DRAM traffic, some
// read hits are deliberately served from off-package DRAM instead, so
// both memories' bandwidth is put to work. The mechanism wraps any
// mc.Scheme; it adapts a redirect probability from the observed traffic
// ratio over a sliding window.
//
// Redirection applies only to clean read hits. The paper's Banshee is
// inclusive — off-package memory always holds a (possibly stale only if
// dirty) copy — so redirecting clean reads is safe; writes and dirty
// data keep going to the cache.
package batman

import (
	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
)

// Config tunes the balancer.
type Config struct {
	// TargetRatio is the in-package traffic share above which redirection
	// ramps up (0 → 0.8, the paper's setting).
	TargetRatio float64
	// WindowBytes is the traffic window between adaptation steps.
	WindowBytes uint64
	// MaxRedirect caps the redirect probability.
	MaxRedirect float64
	Seed        uint64
}

// Balancer wraps a scheme with BATMAN-style access steering.
type Balancer struct {
	inner  mc.Scheme
	cfg    Config
	rng    *util.RNG
	inB    uint64
	offB   uint64
	prob   float64
	redirs uint64
}

// New wraps inner with a balancer.
func New(inner mc.Scheme, cfg Config) *Balancer {
	if cfg.TargetRatio <= 0 || cfg.TargetRatio >= 1 {
		cfg.TargetRatio = 0.8
	}
	if cfg.WindowBytes == 0 {
		cfg.WindowBytes = 4 << 20
	}
	if cfg.MaxRedirect <= 0 || cfg.MaxRedirect > 1 {
		cfg.MaxRedirect = 0.5
	}
	return &Balancer{inner: inner, cfg: cfg, rng: util.NewRNG(cfg.Seed ^ 0xBA7)}
}

// Name implements mc.Scheme.
func (b *Balancer) Name() string { return b.inner.Name() + "+BATMAN" }

// Access implements mc.Scheme.
func (b *Balancer) Access(req mem.Request) mc.Result {
	res := b.inner.Access(req)
	// Steering: flip a clean read hit's critical data fetch off-package.
	if res.Hit && !req.Eviction && !req.Write && b.prob > 0 && b.rng.Bool(b.prob) {
		for i := range res.Ops {
			op := &res.Ops[i]
			if op.Target == mem.InPackage && op.Critical && op.Class == mem.ClassHitData && !op.Write {
				op.Target = mem.OffPackage
				b.redirs++
				break
			}
		}
	}
	for _, op := range res.Ops {
		if op.Target == mem.InPackage {
			b.inB += uint64(op.Bytes)
		} else {
			b.offB += uint64(op.Bytes)
		}
	}
	if b.inB+b.offB >= b.cfg.WindowBytes {
		b.adapt()
	}
	return res
}

func (b *Balancer) adapt() {
	total := b.inB + b.offB
	if total == 0 {
		return
	}
	ratio := float64(b.inB) / float64(total)
	const step = 0.05
	if ratio > b.cfg.TargetRatio {
		b.prob += step
	} else {
		b.prob -= step
	}
	if b.prob < 0 {
		b.prob = 0
	}
	if b.prob > b.cfg.MaxRedirect {
		b.prob = b.cfg.MaxRedirect
	}
	b.inB, b.offB = 0, 0
}

// FillStats implements mc.Scheme.
func (b *Balancer) FillStats(s *stats.Sim) { b.inner.FillStats(s) }

// RedirectProb returns the current steering probability (tests).
func (b *Balancer) RedirectProb() float64 { return b.prob }

// Redirected returns how many hits were steered off-package (tests).
func (b *Balancer) Redirected() uint64 { return b.redirs }
