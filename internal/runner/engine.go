package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"banshee/internal/errs"
	"banshee/internal/obs"
	"banshee/internal/stats"
)

// Engine executes matrices on a work-stealing worker pool. Workers own
// per-workload job queues: the first job on a workload builds (and
// caches) its trace/graph substrate, and every later job on that queue
// hits the warm cache, so the expensive warm-up happens once per
// workload instead of once per job. An idle worker first claims an
// unowned workload, and only when none remain steals from the back of
// the longest remaining queue — keeping stolen work on the substrate
// it just warmed.
type Engine struct {
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, receives one line per completed job and a
	// final per-matrix summary.
	Progress io.Writer
	// Sink, when non-nil, streams results to disk and supplies the
	// already-completed records a resumed run skips.
	Sink *Sink

	// Supervision. Every job always runs under panic isolation (a
	// panicking scheme fails that job, never the process); the fields
	// below tune what happens next.

	// Retry bounds per-job retries with exponential backoff and
	// deterministic jitter. Zero value = one attempt.
	Retry RetryPolicy
	// JobTimeout, when positive, bounds each attempt with
	// context.WithTimeout; a blown deadline is a retryable job failure
	// wrapping context.DeadlineExceeded.
	JobTimeout time.Duration
	// KeepGoing selects graceful degradation: a permanently failed job
	// is recorded (Ledger, ResultSet.Failed) and the sweep completes
	// the remaining jobs. False preserves fail-fast: the first
	// permanent failure aborts the run with a *errs.JobError.
	KeepGoing bool
	// Ledger, when non-nil with KeepGoing, streams permanently failed
	// jobs to its JSONL file. Reset at the start of every run: failed
	// jobs are retryable-on-resume, so only the latest run's failures
	// are current.
	Ledger *Ledger
	// JobRunner overrides how a job executes (nil = SimulateJob).
	// Fault-injection seam: chaos harnesses wrap the default to
	// inject panics, errors, and stalls around real simulations.
	JobRunner JobRunner
	// Dispatch, when non-nil, is offered every singleton job attempt
	// before it executes locally — the job-leasing seam a sweep service
	// uses to shard work across attached worker processes. A declined
	// offer (ok=false: no worker attached, none picked the job up in
	// time, or its lease expired) runs the attempt locally instead, so
	// a fleet losing its last worker degrades to a local sweep rather
	// than stalling. An accepted offer's result (or error) is the
	// attempt's result: remote attempts retry, ledger, and count
	// exactly like local ones. Gang groups never dispatch — lockstep
	// lanes need the shared in-process front end.
	Dispatch Dispatcher

	// GangWidth, when ≥ 2, lets the engine execute up to that many
	// adjacent gang-eligible jobs as one lockstep gang (sim.Gang):
	// jobs sharing a scheme kind and front-end shape — same workload
	// stream, differing only by seed or back-end knobs — amortize one
	// shared front end across their lanes. Results are byte-identical
	// to independent execution, so the sink, checkpoint/resume, the
	// failure ledger, and content-key reuse all keep operating per
	// job; a gang that fails for any reason falls back to running its
	// members as independent supervised jobs. 0 and 1 disable ganging.
	// A custom JobRunner also disables it (unless a GangRunner is set
	// too), since gangs would bypass the override.
	GangWidth int
	// GangRunner overrides how a gang executes (nil = SimulateGang).
	// Fault-injection seam, like JobRunner but gang-level.
	GangRunner GangRunner

	// Observability. All nil/zero by default: the disabled path adds no
	// allocations, no atomics, and no output changes.

	// Metrics, when non-nil, receives the engine's instrument panel
	// (job states, attempts/retries, worker occupancy, gang shape,
	// checkpoint flush lag) and — under the default JobRunner — the
	// per-epoch simulation series (sim.Sampler).
	Metrics *obs.Registry
	// Tracer, when non-nil, records the sweep timeline: one span per
	// job and per attempt on the executing worker's lane, gang spans,
	// and instants for retries and gang fallbacks — renderable as
	// Chrome trace_event JSON.
	Tracer *obs.Tracer
	// ProgressEvery, when positive with Progress set, replaces the
	// per-job "done/reuse/gang" lines with one rate-limited sweep
	// progress line per interval. Failure notes and the final matrix
	// summary still print.
	ProgressEvery time.Duration
	// EpochEvery sets the sampling interval, in retired instructions,
	// for the per-epoch metric series (0 = a sensible default). Only
	// meaningful with Metrics set.
	EpochEvery uint64
}

// gangWidth resolves the effective gang width for this run.
func (e Engine) gangWidth() int {
	if e.GangWidth < 2 {
		return 1
	}
	if e.JobRunner != nil && e.GangRunner == nil {
		return 1
	}
	return e.GangWidth
}

// Run executes the matrix and returns its indexed results. The sink's
// leading records that line up with the matrix enumeration (matched by
// coordinate and content ID) are taken as done; records beyond the
// first mismatch — an edited sweep — are pruned from the file, with
// their still-valid results reused by content key instead of
// re-simulated. Identical configs reached under different coordinates
// also simulate once. Results stream to the sink in matrix enumeration
// order, so a killed run's file is a clean prefix and a resumed run
// completes it byte-identically.
//
// Cancelling ctx stops the sweep promptly: workers abandon their
// in-flight simulations at the next step boundary, no partial result
// reaches the sink, and Run returns an error matching ctx.Err(). The
// sink then holds a clean enumeration-order prefix of completed jobs,
// so re-running with the same matrix and a resume-opened sink
// completes the file byte-identically to an uninterrupted run.
func (e Engine) Run(ctx context.Context, m Matrix) (*ResultSet, error) {
	jobs, err := m.Jobs()
	if err != nil {
		return nil, err
	}
	return e.RunJobs(ctx, m.Name, m.baseSeed(), jobs)
}

// RunJobs executes an already-enumerated job list under the matrix
// name — the entry point for callers that ship resolved jobs across a
// process boundary (a sweep service accepting wire specs) instead of
// re-enumerating a Matrix. Semantics are exactly Run's: the jobs'
// order is the enumeration order the sink contract is defined over,
// so the same list always converges to the same bytes.
func (e Engine) RunJobs(ctx context.Context, name string, baseSeed uint64, jobs []Job) (*ResultSet, error) {
	rs := &ResultSet{matrix: name, baseSeed: baseSeed,
		byCoord: make(map[string]Record, len(jobs)), failedBy: map[string]Record{}}
	if e.Ledger != nil {
		if err := e.Ledger.Reset(); err != nil {
			return nil, err
		}
	}

	em := newEngineMetrics(e.Metrics)
	var prog *obs.Progress
	if e.Progress != nil && e.ProgressEvery > 0 {
		prog = obs.NewProgress(e.Progress, e.ProgressEvery)
	}
	var (
		mu       sync.Mutex
		firstErr error
		byID     = map[string]stats.Sim{}      // known results, content-keyed
		failedID = map[string]*errs.JobError{} // permanent failures, content-keyed
		inflight = map[string]chan struct{}{}  // IDs being simulated now
		results  = make([]*Record, len(jobs))
		failures = make([]*Record, len(jobs)) // ledger records (KeepGoing)
		onDisk   = make([]bool, len(jobs))    // already in the sink file
		next     = 0                          // flush frontier (enumeration order)
		doneN    = 0                          // filled slots (successes + failures)
		failedN  = 0                          // permanently failed slots
	)
	if e.Sink != nil {
		for _, r := range e.Sink.Loaded() {
			byID[r.ID] = r.Result
		}
		if d := e.Sink.Dropped(); d > 0 && e.Progress != nil {
			fmt.Fprintf(e.Progress, "sink: dropped %d corrupt checkpoint record(s) on resume\n", d)
		}
	}

	// flushLocked streams the completed prefix to the sink in order. A
	// permanently failed job occupies its slot without a record: the
	// frontier steps over it so later successes still reach the disk,
	// and the resulting gap is what makes the job retryable-on-resume.
	flushLocked := func() {
		for next < len(jobs) && (results[next] != nil || failures[next] != nil) {
			if results[next] != nil && !onDisk[next] && e.Sink != nil && firstErr == nil {
				if err := e.Sink.Append(*results[next]); err != nil {
					firstErr = err
				}
				if em != nil {
					em.flushed.Inc()
				}
			}
			next++
		}
		if em != nil {
			em.flushLag.Set(float64(doneN - next))
		}
	}
	completeLocked := func(i int, st stats.Sim, how string) {
		j := jobs[i]
		results[i] = &Record{ID: j.ID, Matrix: j.Matrix, Label: j.Label,
			Workload: j.Workload, Scheme: j.Scheme, Seed: j.Seed, Result: st}
		doneN++
		flushLocked()
		if em != nil {
			if how == "reuse" {
				em.jobsReused.Inc()
			} else {
				em.jobsDone.Inc()
			}
		}
		if prog != nil {
			prog.Maybe(doneN, len(jobs), rs.Executed, rs.Cached, failedN)
		} else if e.Progress != nil {
			fmt.Fprintf(e.Progress, "%-6s %-40s cycles=%d\n", how, j.Coord(), st.Cycles)
		}
	}
	// failLocked records job i's permanent failure (KeepGoing mode):
	// ledger line, failure slot for the flush frontier, progress note.
	failLocked := func(i int, jerr *errs.JobError) {
		rec := failureRecord(jobs[i], jerr)
		failures[i] = &rec
		doneN++
		failedN++
		if e.Ledger != nil && firstErr == nil {
			if err := e.Ledger.Append(rec); err != nil {
				firstErr = err
			}
		}
		flushLocked()
		if em != nil {
			em.jobsFailed.Inc()
		}
		if e.Progress != nil {
			fmt.Fprintf(e.Progress, "%-6s %-40s %v\n", "FAIL", jobs[i].Coord(), jerr.Err)
		}
	}

	// The file must stay an enumeration-order prefix of this matrix, so
	// only the leading records that line up with the jobs count as done
	// on disk; anything after the first mismatch (an edited sweep, or a
	// file from a different matrix) is pruned. Pruned-but-still-valid
	// results are not lost — they were indexed into byID above, so their
	// jobs complete by content-key reuse and are re-appended in order
	// rather than re-simulated.
	var pending []int
	if e.Sink != nil {
		loaded := e.Sink.Loaded()
		k := 0
		for k < len(loaded) && k < len(jobs) &&
			loaded[k].ID == jobs[k].ID &&
			coordKey(loaded[k].Matrix, loaded[k].Label, loaded[k].Workload, loaded[k].Scheme, loaded[k].Seed) == jobs[k].Coord() {
			k++
		}
		if k < len(loaded) {
			if err := e.Sink.Rewrite(loaded[:k]); err != nil {
				return nil, err
			}
		}
		for i := 0; i < k; i++ {
			r := loaded[i]
			results[i] = &r
			onDisk[i] = true
			rs.Cached++
			doneN++
			if em != nil {
				em.jobsReused.Inc()
			}
		}
		for i := k; i < len(jobs); i++ {
			pending = append(pending, i)
		}
		mu.Lock()
		flushLocked()
		mu.Unlock()
	} else {
		for i := range jobs {
			pending = append(pending, i)
		}
	}

	q := newJobQueue(jobs, pending, e.gangWidth())
	workers := e.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if e.Tracer != nil {
				e.Tracer.NameThread(w, fmt.Sprintf("worker %d", w))
			}
			own := ""
			for {
				mu.Lock()
				if err := ctx.Err(); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("runner: sweep cancelled: %w", err)
				}
				if firstErr != nil {
					mu.Unlock()
					return
				}
				group, wl, ok := q.nextLocked(own)
				if !ok {
					mu.Unlock()
					return
				}
				own = wl
				// Resolve each member against known results first: reuse
				// an identical completed config instead of simulating it
				// twice, share a permanent failure (a content key that
				// already failed permanently fails this job too — the
				// injected faults are keyed by the same ID, so an
				// identical config would only fail identically), or wait
				// out an in-flight twin. What remains actually runs.
				var todo []int
				for _, i := range group {
					id := jobs[i].ID
					resolved := false
					for {
						if st, ok := byID[id]; ok {
							rs.Cached++
							completeLocked(i, st, "reuse")
							resolved = true
							break
						}
						if jerr, ok := failedID[id]; ok {
							shared := &errs.JobError{Coord: jobs[i].Coord(), ID: id,
								Attempts: jerr.Attempts, Panicked: jerr.Panicked, Err: jerr.Err}
							failLocked(i, shared)
							resolved = true
							break
						}
						ch, busy := inflight[id]
						if !busy {
							break
						}
						mu.Unlock()
						<-ch
						mu.Lock()
						if firstErr != nil {
							mu.Unlock()
							return
						}
					}
					if !resolved {
						todo = append(todo, i)
					}
				}
				if len(todo) == 0 {
					mu.Unlock()
					continue
				}
				if len(todo) == 1 {
					i := todo[0]
					id := jobs[i].ID
					ch := make(chan struct{})
					inflight[id] = ch
					mu.Unlock()

					// Run the job supervised, under ctx so cancellation
					// lands mid-job, not only between jobs: the session
					// stops at its next step boundary and its partial stats
					// are discarded here — only complete results ever reach
					// the sink. Panics and per-attempt errors come back as
					// one *errs.JobError after retries are exhausted.
					if em != nil {
						em.workersBusy.Add(1)
					}
					jobStart := time.Now()
					var t0 time.Duration
					if e.Tracer != nil {
						t0 = e.Tracer.Clock()
					}
					st, err := e.runSupervised(ctx, jobs[i], w, em)
					if em != nil {
						em.workersBusy.Add(-1)
						em.jobDur.Observe(uint64(time.Since(jobStart).Microseconds()))
					}
					if e.Tracer != nil {
						state := "done"
						if err != nil {
							state = "failed"
						}
						e.Tracer.Span("job "+jobs[i].Coord(), w, t0, "state", state)
					}

					mu.Lock()
					delete(inflight, id)
					if err != nil {
						var jerr *errs.JobError
						if ctx.Err() == nil && errors.As(err, &jerr) && e.KeepGoing {
							// Graceful degradation: ledger the failure and
							// let the sweep finish everything else.
							failedID[id] = jerr
							failLocked(i, jerr)
							close(ch)
							mu.Unlock()
							continue
						}
						if firstErr == nil {
							if ctx.Err() != nil {
								firstErr = fmt.Errorf("runner: sweep cancelled: %w", ctx.Err())
							} else {
								firstErr = fmt.Errorf("runner: %w", err)
							}
						}
						close(ch)
						mu.Unlock()
						return
					}
					byID[id] = st
					rs.Executed++
					completeLocked(i, st, "done")
					close(ch)
					mu.Unlock()
					continue
				}

				// Gang path: mark every member in-flight, run them as
				// lanes of one lockstep gang, and complete them all from
				// its per-lane results.
				chans := make([]chan struct{}, len(todo))
				members := make([]Job, len(todo))
				for k, i := range todo {
					ch := make(chan struct{})
					inflight[jobs[i].ID] = ch
					chans[k] = ch
					members[k] = jobs[i]
				}
				mu.Unlock()

				if em != nil {
					em.workersBusy.Add(1)
					em.gangGroups.Inc()
					em.gangLanes.Add(uint64(len(members)))
					em.gangWidth.Observe(uint64(len(members)))
				}
				var t0 time.Duration
				if e.Tracer != nil {
					t0 = e.Tracer.Clock()
				}
				sts, gerr := e.runGang(ctx, members)
				if em != nil {
					em.workersBusy.Add(-1)
				}
				if e.Tracer != nil {
					state := "done"
					if gerr != nil {
						state = "failed"
					}
					e.Tracer.Span(fmt.Sprintf("gang ×%d %s", len(members), members[0].Coord()), w,
						t0, "state", state, "lanes", len(members))
				}
				if gerr == nil && em != nil {
					// Gang lanes bypass the sampler (the shared front end
					// owns the epoch machinery), so fold their finals here
					// to keep the sim totals equal to the sums over
					// executed results.
					foldFinals(e.Metrics, sts)
				}

				mu.Lock()
				for _, i := range todo {
					delete(inflight, jobs[i].ID)
				}
				if gerr == nil {
					for k, i := range todo {
						byID[jobs[i].ID] = sts[k]
						rs.Executed++
						completeLocked(i, sts[k], "gang")
					}
					for _, ch := range chans {
						close(ch)
					}
					mu.Unlock()
					continue
				}
				// A failed gang (panic, error, blown deadline) falls back
				// to independent execution: release any waiters and
				// requeue the members as singleton groups at the front of
				// this workload's queue, restoring exactly the per-job
				// retry/ledger/resume semantics of a non-gang run.
				for _, ch := range chans {
					close(ch)
				}
				if err := ctx.Err(); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("runner: sweep cancelled: %w", err)
					}
					mu.Unlock()
					return
				}
				if em != nil {
					em.gangFallbacks.Inc()
				}
				if e.Tracer != nil {
					e.Tracer.Instant("gang fallback", w, "lanes", len(todo))
				}
				if e.Progress != nil {
					fmt.Fprintf(e.Progress, "%-6s %d-lane gang at %s: %v; retrying as independent jobs\n",
						"gang!", len(todo), jobs[todo[0]].Coord(), gerr)
				}
				q.pushFrontSingles(wl, todo)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i, r := range results {
		if r == nil {
			f := failures[i]
			rs.failed = append(rs.failed, *f)
			rs.failedBy[coordKey(f.Matrix, f.Label, f.Workload, f.Scheme, f.Seed)] = *f
			continue
		}
		rs.records = append(rs.records, *r)
		rs.byCoord[coordKey(r.Matrix, r.Label, r.Workload, r.Scheme, r.Seed)] = *r
	}
	if prog != nil {
		prog.Force(doneN, len(jobs), rs.Executed, rs.Cached, failedN)
	}
	if e.Progress != nil {
		fmt.Fprintf(e.Progress, "matrix %s: %d jobs, %d cached, %d executed, %d failed\n",
			name, len(jobs), rs.Cached, rs.Executed, len(rs.failed))
	}
	return rs, nil
}

// jobQueue is the pool's scheduling state: per-workload FIFO queues of
// job groups in first-appearance order. A group is one job, or — with
// ganging enabled — up to gangWidth gang-eligible jobs sharing a
// scheme kind and front-end shape, formed greedily over the pending
// enumeration so groupmates stay enumeration-adjacent and the flush
// frontier advances smoothly. Guarded by the engine's mutex.
type jobQueue struct {
	jobs    []Job
	queues  map[string][][]int
	order   []string
	claimed map[string]bool
}

func newJobQueue(jobs []Job, pending []int, width int) *jobQueue {
	q := &jobQueue{jobs: jobs, queues: map[string][][]int{}, claimed: map[string]bool{}}
	// One open group per gang key; a full group, or a duplicate
	// content ID (which must resolve through the inflight machinery,
	// never sit twice in one gang), rolls the key over to a new group.
	type openGroup struct {
		w   string
		idx int // index into q.queues[w]
		ids map[string]bool
	}
	open := map[string]*openGroup{}
	for _, i := range pending {
		w := jobs[i].Workload
		if _, seen := q.queues[w]; !seen {
			q.order = append(q.order, w)
			q.queues[w] = nil
		}
		if width >= 2 {
			if key, ok := gangKey(jobs[i]); ok {
				id := jobs[i].ID
				if g := open[key]; g != nil && len(q.queues[g.w][g.idx]) < width && !g.ids[id] {
					q.queues[g.w][g.idx] = append(q.queues[g.w][g.idx], i)
					g.ids[id] = true
					continue
				}
				q.queues[w] = append(q.queues[w], []int{i})
				open[key] = &openGroup{w: w, idx: len(q.queues[w]) - 1, ids: map[string]bool{id: true}}
				continue
			}
		}
		q.queues[w] = append(q.queues[w], []int{i})
	}
	return q
}

// nextLocked hands the caller its next job group: first from its own
// workload's queue, then by claiming an unowned workload, and finally
// by stealing from the back of the longest remaining queue.
func (q *jobQueue) nextLocked(own string) ([]int, string, bool) {
	if own != "" && len(q.queues[own]) > 0 {
		return q.popFront(own), own, true
	}
	for _, w := range q.order {
		if !q.claimed[w] && len(q.queues[w]) > 0 {
			q.claimed[w] = true
			return q.popFront(w), w, true
		}
	}
	best := ""
	for _, w := range q.order {
		if len(q.queues[w]) > len(q.queues[best]) {
			best = w
		}
	}
	if best == "" {
		return nil, "", false
	}
	return q.popBack(best), best, true
}

// pushFrontSingles requeues jobs as singleton groups at the front of
// workload w's queue — the fallback path of a failed gang.
func (q *jobQueue) pushFrontSingles(w string, idxs []int) {
	groups := make([][]int, 0, len(idxs)+len(q.queues[w]))
	for _, i := range idxs {
		groups = append(groups, []int{i})
	}
	q.queues[w] = append(groups, q.queues[w]...)
}

func (q *jobQueue) popFront(w string) []int {
	groups := q.queues[w]
	q.queues[w] = groups[1:]
	return groups[0]
}

func (q *jobQueue) popBack(w string) []int {
	groups := q.queues[w]
	q.queues[w] = groups[:len(groups)-1]
	return groups[len(groups)-1]
}
