package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"banshee/internal/errs"
	"banshee/internal/stats"
)

// flakyRunner fails the first failN attempts of every job whose ID is
// in victims (all jobs when victims is nil), then delegates to the
// real simulation — a deterministic transient fault.
type flakyRunner struct {
	mu       sync.Mutex
	attempts map[string]int
	failN    int
	victims  map[string]bool
	panics   bool
}

func (f *flakyRunner) run(ctx context.Context, job Job) (stats.Sim, error) {
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = map[string]int{}
	}
	f.attempts[job.ID]++
	n := f.attempts[job.ID]
	victim := f.victims == nil || f.victims[job.ID]
	f.mu.Unlock()
	if victim && n <= f.failN {
		if f.panics {
			panic(fmt.Sprintf("flaky: attempt %d of job %s", n, job.ID))
		}
		return stats.Sim{}, fmt.Errorf("flaky: attempt %d of job %s", n, job.ID)
	}
	return SimulateJob(ctx, job)
}

// runToFile executes m with the engine into path and returns the
// file's bytes.
func runToFile(t *testing.T, e Engine, m Matrix, path string) []byte {
	t.Helper()
	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	e.Sink = sink
	if _, err := e.Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRetryDeterminism is the retry contract: a job that fails N-1
// times and then succeeds must produce a record byte-identical to a
// never-failing run's — retries may not perturb the simulation's RNG
// streams or statistics.
func TestRetryDeterminism(t *testing.T) {
	m := testMatrix("retrydet")
	dir := t.TempDir()

	clean := runToFile(t, Engine{Parallelism: 2}, m, filepath.Join(dir, "clean.jsonl"))

	flaky := &flakyRunner{failN: 2}
	retried := runToFile(t, Engine{
		Parallelism: 2,
		JobRunner:   flaky.run,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond},
	}, m, filepath.Join(dir, "retried.jsonl"))

	if !bytes.Equal(clean, retried) {
		t.Fatal("retried run's JSONL differs from never-failing run's")
	}
	// Panicking attempts must be just as invisible.
	flaky2 := &flakyRunner{failN: 2, panics: true}
	panicked := runToFile(t, Engine{
		Parallelism: 2,
		JobRunner:   flaky2.run,
		Retry:       RetryPolicy{MaxAttempts: 3},
	}, m, filepath.Join(dir, "panicked.jsonl"))
	if !bytes.Equal(clean, panicked) {
		t.Fatal("panic-retried run's JSONL differs from never-failing run's")
	}
}

// TestPanicIsolationFailFast: a panicking job fails the sweep with a
// typed *errs.JobError carrying the job context — the process (and the
// worker pool) survives the panic.
func TestPanicIsolationFailFast(t *testing.T) {
	m := testMatrix("panicisol")
	boom := func(ctx context.Context, job Job) (stats.Sim, error) {
		panic("scheme exploded")
	}
	_, err := (Engine{Parallelism: 2, JobRunner: boom}).Run(context.Background(), m)
	if err == nil {
		t.Fatal("panicking sweep returned nil error")
	}
	var jerr *errs.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("want *errs.JobError, got %T: %v", err, err)
	}
	if !jerr.Panicked || jerr.Attempts != 1 || jerr.Coord == "" || jerr.ID == "" {
		t.Fatalf("incomplete job error context: %+v", jerr)
	}
	if !strings.Contains(err.Error(), "scheme exploded") {
		t.Fatalf("panic cause lost: %v", err)
	}
}

// TestJobTimeout: a per-job deadline converts a hung job into a
// retryable failure wrapping context.DeadlineExceeded, while the
// parent context stays live.
func TestJobTimeout(t *testing.T) {
	m := testMatrix("timeout")
	m.Workloads, m.Schemes, m.Points = m.Workloads[:1], m.Schemes[:1], m.Points[:1]
	hang := func(ctx context.Context, job Job) (stats.Sim, error) {
		<-ctx.Done()
		return stats.Sim{}, ctx.Err()
	}
	_, err := (Engine{JobRunner: hang, JobTimeout: 5 * time.Millisecond,
		Retry: RetryPolicy{MaxAttempts: 2}}).Run(context.Background(), m)
	var jerr *errs.JobError
	if !errors.As(err, &jerr) {
		t.Fatalf("want *errs.JobError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline cause not preserved: %v", err)
	}
	if jerr.Attempts != 2 {
		t.Fatalf("blown deadline retried %d times, want 2 attempts", jerr.Attempts)
	}
}

// TestKeepGoingLedgerAndResume is the graceful-degradation contract:
// a sweep with permanently failing jobs completes every other job,
// streams the failures to the ledger, leaves them out of the success
// stream, and a resume without faults retries exactly the failed jobs
// — converging to a file byte-identical to a never-failing run's.
func TestKeepGoingLedgerAndResume(t *testing.T) {
	m := testMatrix("ledger")
	dir := t.TempDir()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Fail two specific jobs permanently (one of them mid-enumeration,
	// so the success stream has an interior gap).
	victims := map[string]bool{jobs[1].ID: true, jobs[5].ID: true}
	clean := runToFile(t, Engine{Parallelism: 2}, m, filepath.Join(dir, "clean.jsonl"))

	chaosPath := filepath.Join(dir, "chaos.jsonl")
	ledger := NewLedger(filepath.Join(dir, "chaos.failed.jsonl"))
	flaky := &flakyRunner{failN: 1 << 30, victims: victims}
	sink, err := OpenSink(chaosPath, false)
	if err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	rs, err := (Engine{Parallelism: 2, Sink: sink, Ledger: ledger, KeepGoing: true,
		JobRunner: flaky.run, Retry: RetryPolicy{MaxAttempts: 2}, Progress: &progress}).Run(context.Background(), m)
	if err != nil {
		t.Fatalf("keep-going sweep aborted: %v", err)
	}
	sink.Close()

	failed := rs.Failed()
	if len(failed) != 2 {
		t.Fatalf("Failed() reports %d jobs, want 2", len(failed))
	}
	for _, f := range failed {
		if !victims[f.ID] || f.Attempts != 2 || f.Error == "" {
			t.Fatalf("bad failure record: %+v", f)
		}
	}
	if ledger.Count() != 2 {
		t.Fatalf("ledger recorded %d failures, want 2", ledger.Count())
	}
	ledger.Close()
	// Ledger file holds both failures with context.
	lb, err := os.ReadFile(ledger.Path())
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(lb, []byte{'\n'}); got != 2 {
		t.Fatalf("ledger holds %d lines, want 2", got)
	}
	if !bytes.Contains(lb, []byte(`"error":"flaky`)) {
		t.Fatalf("ledger lines lack error context: %s", lb)
	}
	// Failed coordinates aggregate as explicit zero-valued holes.
	for _, f := range failed {
		if st := rs.Get(f.Label, f.Workload, f.Scheme); st.Cycles != 0 {
			t.Fatal("failed coordinate returned a non-zero result")
		}
	}
	if !strings.Contains(progress.String(), "FAIL") {
		t.Fatal("progress output lacks FAIL lines")
	}

	// The success stream is the clean run's file minus the failed
	// jobs' lines, in order.
	var want []byte
	for _, line := range bytes.SplitAfter(clean, []byte{'\n'}) {
		keep := true
		for id := range victims {
			if bytes.Contains(line, []byte(`"id":"`+id+`"`)) {
				keep = false
			}
		}
		if keep {
			want = append(want, line...)
		}
	}
	chaos, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chaos, want) {
		t.Fatalf("success stream not clean-minus-failed:\n--- got ---\n%s--- want ---\n%s", chaos, want)
	}

	// Resume without faults: exactly the failed jobs re-simulate, the
	// file converges to the never-failing run's bytes, and the ledger
	// is reset away.
	sink2, err := OpenSink(chaosPath, true)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := (Engine{Parallelism: 2, Sink: sink2, Ledger: ledger, KeepGoing: true}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Close()
	if len(rs2.Failed()) != 0 {
		t.Fatalf("fault-free resume still failed %d jobs", len(rs2.Failed()))
	}
	if rs2.Executed == 0 || rs2.Executed > len(victims) {
		t.Fatalf("resume executed %d jobs, want 1..%d (failed jobs only)", rs2.Executed, len(victims))
	}
	resumed, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, clean) {
		t.Fatal("resume after failures did not converge to the never-failing run's bytes")
	}
	if _, err := os.Stat(ledger.Path()); !os.IsNotExist(err) {
		t.Fatal("clean resume left a stale ledger file behind")
	}
}

// TestKeepGoingSharesFailureAcrossIdenticalConfigs: two coordinates
// resolving to one content key share the failure, not just the result.
func TestKeepGoingSharesFailureAcrossIdenticalConfigs(t *testing.T) {
	m := testMatrix("sharefail")
	m.Workloads = m.Workloads[:1]
	m.Schemes = m.Schemes[:1]
	m.Points = []Point{{Label: "a"}, {Label: "b"}} // identical configs
	jobs, _ := m.Jobs()
	if jobs[0].ID != jobs[1].ID {
		t.Fatal("test premise broken: points should share a content key")
	}
	flaky := &flakyRunner{failN: 1 << 30}
	rs, err := (Engine{Parallelism: 2, KeepGoing: true, JobRunner: flaky.run}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Failed()) != 2 {
		t.Fatalf("want both coordinates failed, got %d", len(rs.Failed()))
	}
	if flaky.attempts[jobs[0].ID] != 1 {
		t.Fatalf("identical failing config attempted %d times, want 1", flaky.attempts[jobs[0].ID])
	}
	if rs.Failed()[0].Label == rs.Failed()[1].Label {
		t.Fatal("failure records did not keep distinct coordinates")
	}
}

// TestRetryBackoffDeterministicJitter: the backoff schedule is a pure
// function of (policy, job ID, attempt).
func TestRetryBackoffDeterministicJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for attempt := 1; attempt <= 4; attempt++ {
		a := p.Delay("job-a", attempt)
		if b := p.Delay("job-a", attempt); a != b {
			t.Fatalf("attempt %d: jitter not deterministic: %v vs %v", attempt, a, b)
		}
		lo := p.BaseDelay << (attempt - 1) / 2
		hi := p.BaseDelay << (attempt - 1)
		if hi > p.MaxDelay {
			lo, hi = p.MaxDelay/2, p.MaxDelay
		}
		if a < lo || a > hi {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	if p.Delay("job-a", 2) == p.Delay("job-b", 2) {
		t.Fatal("different jobs drew identical jitter (suspicious hash)")
	}
	if (RetryPolicy{}).Delay("x", 1) != 0 {
		t.Fatal("zero policy should not delay")
	}
}

// TestSinkCRCTruncatesAtBadRecord: per-record checksums turn interior
// corruption — not just a torn tail — into a clean truncate-and-retry
// on resume, with the drop count reported.
func TestSinkCRCTruncatesAtBadRecord(t *testing.T) {
	m := testMatrix("crc")
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	full := runToFile(t, Engine{Parallelism: 2}, m, path)
	lines := bytes.SplitAfter(full, []byte{'\n'})
	if len(lines) < 9 { // 8 records + empty tail
		t.Fatalf("want 8 lines, got %d", len(lines)-1)
	}

	// Flip one digit inside the second record's JSON body.
	corrupt := bytes.Join(lines, nil)
	off := len(lines[0]) + len(lines[1])/2
	if corrupt[off] == '\n' || corrupt[off] == '"' {
		off++
	}
	corrupt[off] ^= 1
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	sink, err := OpenSink(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Loaded()); got != 1 {
		t.Fatalf("loaded %d records past corruption, want 1", got)
	}
	if got := sink.Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
	// The engine resumes over the repaired file to a byte-identical
	// final state (dropped-but-valid results re-simulate).
	rs, err := (Engine{Parallelism: 2, Sink: sink}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	if rs.Cached < 1 {
		t.Fatalf("intact prefix not reused: cached %d", rs.Cached)
	}
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, full) {
		t.Fatal("resume over repaired file diverged from uninterrupted run")
	}

	// A value-level flip that keeps the JSON parseable must still be
	// caught: the CRC covers raw bytes, not structure.
	digitFlip := bytes.Join(lines, nil)
	di := bytes.Index(digitFlip, []byte(`"cycles":`))
	if di < 0 {
		di = bytes.IndexAny(digitFlip, "0123456789")
	}
	for ; di < len(digitFlip); di++ {
		if digitFlip[di] >= '1' && digitFlip[di] <= '8' {
			digitFlip[di]++
			break
		}
	}
	if err := os.WriteFile(path, digitFlip, 0o644); err != nil {
		t.Fatal(err)
	}
	sink2, err := OpenSink(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sink2.Close()
	if got := len(sink2.Loaded()); got != 0 {
		t.Fatalf("value-corrupted first record still loaded (%d records)", got)
	}
}

// TestLedgerLifecycle: lazy creation, reset semantics.
func TestLedgerLifecycle(t *testing.T) {
	dir := t.TempDir()
	l := NewLedger(filepath.Join(dir, "x.failed.jsonl"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(l.Path()); !os.IsNotExist(err) {
		t.Fatal("ledger file created before any failure")
	}
	if err := l.Append(Record{ID: "a", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 1 {
		t.Fatalf("count %d, want 1", l.Count())
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(l.Path()); !os.IsNotExist(err) {
		t.Fatal("reset left the ledger file")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
