package runner

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"banshee/internal/obs"
	"banshee/internal/stats"
)

// scriptedDispatcher runs a caller-supplied function per Dispatch call,
// numbering calls so tests can script per-attempt outcomes.
type scriptedDispatcher struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, job Job) (stats.Sim, bool, error)
}

func (d *scriptedDispatcher) Dispatch(ctx context.Context, job Job) (stats.Sim, bool, error) {
	d.mu.Lock()
	d.calls++
	n := d.calls
	d.mu.Unlock()
	return d.fn(n, job)
}

func (d *scriptedDispatcher) callCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

// sinkBytes runs the engine over the matrix with a fresh sink and
// returns the checkpoint file's bytes.
func sinkBytes(t *testing.T, eng Engine, m Matrix) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "out.jsonl")
	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	eng.Sink = sink
	if _, err := eng.Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDispatcherDeclineRunsLocally: a dispatcher that declines every
// offer (no worker attached) must leave the run indistinguishable from
// one with no dispatcher at all — same bytes, every job offered once.
func TestDispatcherDeclineRunsLocally(t *testing.T) {
	m := testMatrix("disp-decline")
	golden := sinkBytes(t, Engine{Parallelism: 2}, m)

	d := &scriptedDispatcher{fn: func(int, Job) (stats.Sim, bool, error) {
		return stats.Sim{}, false, nil
	}}
	got := sinkBytes(t, Engine{Parallelism: 2, Dispatch: d}, m)
	if !bytes.Equal(got, golden) {
		t.Fatalf("declined-dispatch run diverged from plain run:\n got %d bytes\nwant %d bytes", len(got), len(golden))
	}
	if d.callCount() != 8 {
		t.Fatalf("dispatcher saw %d offers, want 8 (one per job)", d.callCount())
	}
}

// TestDispatcherRemoteByteIdentical: a dispatcher that executes every
// attempt itself (a stand-in for an attached worker) produces a sink
// byte-identical to local execution, and the remote-attempt counters
// account for every job.
func TestDispatcherRemoteByteIdentical(t *testing.T) {
	m := testMatrix("disp-remote")
	golden := sinkBytes(t, Engine{Parallelism: 2}, m)

	d := &scriptedDispatcher{fn: func(_ int, job Job) (stats.Sim, bool, error) {
		st, err := SimulateJob(context.Background(), job)
		return st, true, err
	}}
	reg := obs.NewRegistry()
	got := sinkBytes(t, Engine{Parallelism: 2, Dispatch: d, Metrics: reg}, m)
	if !bytes.Equal(got, golden) {
		t.Fatalf("remote run diverged from local run:\n got %d bytes\nwant %d bytes", len(got), len(golden))
	}
	snap := reg.Snapshot()
	if snap["banshee_remote_attempts_total"] != 8 {
		t.Fatalf("remote attempts = %v, want 8", snap["banshee_remote_attempts_total"])
	}
	if snap["banshee_remote_attempt_failures_total"] != 0 {
		t.Fatalf("remote failures = %v, want 0", snap["banshee_remote_attempt_failures_total"])
	}
}

// TestDispatcherRemoteFailureRetries: a failed remote attempt is a
// failed attempt like any local one — retried under the RetryPolicy —
// and a dispatcher that then declines hands the retry to local
// execution, converging to the same bytes.
func TestDispatcherRemoteFailureRetries(t *testing.T) {
	m := testMatrix("disp-retry")
	golden := sinkBytes(t, Engine{Parallelism: 2}, m)

	d := &scriptedDispatcher{fn: func(call int, job Job) (stats.Sim, bool, error) {
		if call == 1 {
			return stats.Sim{}, true, fmt.Errorf("synthetic remote failure")
		}
		return stats.Sim{}, false, nil
	}}
	reg := obs.NewRegistry()
	got := sinkBytes(t, Engine{Parallelism: 2, Dispatch: d, Metrics: reg,
		Retry: RetryPolicy{MaxAttempts: 2}}, m)
	if !bytes.Equal(got, golden) {
		t.Fatalf("retried run diverged from plain run:\n got %d bytes\nwant %d bytes", len(got), len(golden))
	}
	snap := reg.Snapshot()
	if snap["banshee_remote_attempt_failures_total"] != 1 {
		t.Fatalf("remote failures = %v, want 1", snap["banshee_remote_attempt_failures_total"])
	}
	if snap["banshee_job_retries_total"] != 1 {
		t.Fatalf("retries = %v, want 1", snap["banshee_job_retries_total"])
	}
}

// TestRunJobsMatchesRun: executing a pre-enumerated job list (the wire
// path a sweep service uses) is byte-identical to running the matrix
// it was enumerated from.
func TestRunJobsMatchesRun(t *testing.T) {
	m := testMatrix("runjobs")
	golden := sinkBytes(t, Engine{Parallelism: 2}, m)

	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := Engine{Parallelism: 2, Sink: sink}
	rs, err := eng.RunJobs(context.Background(), m.Name, m.Base.Seed, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("RunJobs diverged from Run:\n got %d bytes\nwant %d bytes", len(got), len(golden))
	}
	if rs.Executed != len(jobs) {
		t.Fatalf("executed %d jobs, want %d", rs.Executed, len(jobs))
	}
}
