// Package runner is the generic batch run engine: it executes a
// declarative Matrix of simulations (workloads × schemes × config
// points × seeds) on a work-stealing worker pool, streams every result
// to a JSONL sink as it completes, and resumes interrupted sweeps by
// skipping jobs whose results are already on disk.
//
// Jobs are content-keyed: a job's ID is a hash of its fully resolved
// sim.Config, so a result on disk is reused only when the workload,
// scheme spec, seed, instruction budget, and every other knob match
// exactly — stale results from an edited sweep are re-simulated, and
// identical configurations reached through different sweep labels are
// simulated once and recorded under each label.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"banshee/internal/sim"
	"banshee/internal/stats"
)

// Point is one setting of a matrix's config-override axis: a label for
// result lookup plus a mutation applied to the fully resolved config
// (after workload, scheme, and seed are in place — so a mutation may
// tune spec fields or inspect the resolved scheme).
type Point struct {
	Label  string
	Mutate func(*sim.Config)
}

// Matrix is a declarative batch of simulations: the cross product of
// Workloads × Schemes × Points × Seeds over a base config.
type Matrix struct {
	// Name labels the matrix in records and progress output.
	Name string
	// Base is the configuration every job starts from.
	Base sim.Config
	// Workloads and Schemes are the primary axes (display names).
	Workloads []string
	Schemes   []string
	// Points is the config-override axis; nil means one unmodified
	// point with an empty label.
	Points []Point
	// Seeds is the seed axis; nil means the base config's seed.
	Seeds []uint64
}

// Job is one resolved simulation of a matrix.
type Job struct {
	ID       string
	Matrix   string
	Label    string
	Workload string
	Scheme   string
	Seed     uint64
	Config   sim.Config
}

// Coord is the job's sweep coordinate — the key aggregators look
// results up under.
func (j Job) Coord() string {
	return coordKey(j.Matrix, j.Label, j.Workload, j.Scheme, j.Seed)
}

func coordKey(matrix, label, workload, scheme string, seed uint64) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d", matrix, label, workload, scheme, seed)
}

// Jobs enumerates the matrix in deterministic order (points, then
// workloads, then schemes, then seeds), fully resolving each config.
func (m Matrix) Jobs() ([]Job, error) {
	if len(m.Workloads) == 0 || len(m.Schemes) == 0 {
		return nil, fmt.Errorf("runner: matrix %q needs at least one workload and one scheme", m.Name)
	}
	points := m.Points
	if len(points) == 0 {
		points = []Point{{}}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{m.Base.Seed}
	}
	jobs := make([]Job, 0, len(points)*len(m.Workloads)*len(m.Schemes)*len(seeds))
	for _, p := range points {
		for _, w := range m.Workloads {
			for _, s := range m.Schemes {
				for _, seed := range seeds {
					cfg := m.Base
					cfg.Workload = w
					cfg.Seed = seed
					spec, err := sim.ResolveScheme(s, cfg.Scheme)
					if err != nil {
						return nil, fmt.Errorf("runner: matrix %q: %w", m.Name, err)
					}
					cfg.Scheme = spec
					if p.Mutate != nil {
						p.Mutate(&cfg)
					}
					jobs = append(jobs, Job{
						ID:       jobID(cfg),
						Matrix:   m.Name,
						Label:    p.Label,
						Workload: w,
						Scheme:   s,
						Seed:     seed,
						Config:   cfg,
					})
				}
			}
		}
	}
	return jobs, nil
}

// baseSeed is the seed Get defaults to.
func (m Matrix) baseSeed() uint64 {
	if len(m.Seeds) > 0 {
		return m.Seeds[0]
	}
	return m.Base.Seed
}

// jobID content-keys a fully resolved config: equal configs — and only
// equal configs — share an ID.
func jobID(cfg sim.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// sim.Config is plain data; failure to encode it is a bug.
		panic(fmt.Sprintf("runner: config not encodable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// JobKey returns the content key of a fully resolved configuration —
// the ID a batch job with this exact config carries in streamed
// records, ledger entries, and sweep status output. Clients correlate
// those streams by recomputing the key instead of reimplementing the
// hash.
func JobKey(cfg sim.Config) string { return jobID(cfg) }

// JobKey resolves the job at one coordinate of the matrix — (point
// label, workload, scheme, seed) — exactly as Jobs would, and returns
// its content key. The label must name one of the matrix's points
// ("" when the matrix declares none); workload and scheme resolve the
// same way enumeration resolves them, so the returned key matches the
// enumerated job's ID whenever the coordinate is in the matrix.
func (m Matrix) JobKey(label, workload, scheme string, seed uint64) (string, error) {
	points := m.Points
	if len(points) == 0 {
		points = []Point{{}}
	}
	var point *Point
	for i := range points {
		if points[i].Label == label {
			point = &points[i]
			break
		}
	}
	if point == nil {
		return "", fmt.Errorf("runner: matrix %q has no point labelled %q", m.Name, label)
	}
	cfg := m.Base
	cfg.Workload = workload
	cfg.Seed = seed
	spec, err := sim.ResolveScheme(scheme, cfg.Scheme)
	if err != nil {
		return "", fmt.Errorf("runner: matrix %q: %w", m.Name, err)
	}
	cfg.Scheme = spec
	if point.Mutate != nil {
		point.Mutate(&cfg)
	}
	return jobID(cfg), nil
}

// Record is one job as stored in the JSONL sink (successes) or the
// failure ledger (permanent failures). Success records carry a Result
// and leave the failure fields zero — their JSON encoding is exactly
// what it was before supervision existed, which is what keeps the
// success stream's byte-identical resume guarantee intact. Ledger
// records carry an empty Result plus the failure context.
type Record struct {
	ID       string    `json:"id"`
	Matrix   string    `json:"matrix"`
	Label    string    `json:"label,omitempty"`
	Workload string    `json:"workload"`
	Scheme   string    `json:"scheme"`
	Seed     uint64    `json:"seed"`
	Result   stats.Sim `json:"result"`
	// Failure context (ledger records only).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	Panicked bool   `json:"panic,omitempty"`
}

// ResultSet holds a completed matrix run, indexed for aggregation.
type ResultSet struct {
	matrix   string
	baseSeed uint64
	byCoord  map[string]Record
	records  []Record // enumeration order
	failed   []Record // enumeration order, supervised runs only
	failedBy map[string]Record
	// Executed counts jobs that were simulated; Cached counts jobs
	// served from the sink or deduplicated against an identical config.
	Executed int
	Cached   int
}

// Get returns the result at (label, workload, scheme) for the matrix's
// base seed. A coordinate whose job failed under supervision returns a
// zero Result — an explicit hole the aggregators render instead of
// aborting the whole figure. Coordinates the matrix never enumerated
// panic: experiment aggregations are code, not input, so those misses
// are bugs worth surfacing immediately.
func (rs *ResultSet) Get(label, workload, scheme string) stats.Sim {
	st, ok := rs.Lookup(label, workload, scheme, rs.baseSeed)
	if !ok {
		if _, failed := rs.failedBy[coordKey(rs.matrix, label, workload, scheme, rs.baseSeed)]; failed {
			return stats.Sim{}
		}
		panic(fmt.Sprintf("runner: matrix %s has no result at %s/%s/%s", rs.matrix, label, workload, scheme))
	}
	return st
}

// Lookup returns the result at a full coordinate, reporting presence.
func (rs *ResultSet) Lookup(label, workload, scheme string, seed uint64) (stats.Sim, bool) {
	r, ok := rs.byCoord[coordKey(rs.matrix, label, workload, scheme, seed)]
	return r.Result, ok
}

// Records returns every successful record in matrix enumeration order.
func (rs *ResultSet) Records() []Record { return rs.records }

// Failed returns the jobs that permanently failed under supervision,
// in matrix enumeration order. Each record carries the job's
// coordinates plus Attempts/Error/Panicked and an empty Result. Empty
// on an unsupervised (fail-fast) or fully successful run.
func (rs *ResultSet) Failed() []Record { return rs.failed }

// AssembleResultSet indexes records obtained elsewhere — streamed from
// a remote sweep service rather than executed here — into the
// ResultSet the aggregators consume. records and failed keep their
// given order; Executed/Cached stay zero (the remote engine did the
// counting).
func AssembleResultSet(name string, baseSeed uint64, records, failed []Record) *ResultSet {
	rs := &ResultSet{matrix: name, baseSeed: baseSeed,
		byCoord: make(map[string]Record, len(records)), failedBy: map[string]Record{}}
	for _, r := range records {
		rs.records = append(rs.records, r)
		rs.byCoord[coordKey(r.Matrix, r.Label, r.Workload, r.Scheme, r.Seed)] = r
	}
	for _, f := range failed {
		rs.failed = append(rs.failed, f)
		rs.failedBy[coordKey(f.Matrix, f.Label, f.Workload, f.Scheme, f.Seed)] = f
	}
	return rs
}
