package runner

import (
	"context"

	"banshee/internal/obs"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// defaultEpochEvery is the epoch sampling interval, in retired
// instructions, used for metric time series when Engine.EpochEvery is
// unset: fine enough that the gauges move during a single job, coarse
// enough that sampling cost is noise.
const defaultEpochEvery = 1 << 21

// engineMetrics is the engine's instrument panel, built once per Run
// against the engine's registry. All updates happen under the run's
// mutex or on a single worker, but the metrics themselves are atomic —
// the exposition endpoint reads them concurrently.
type engineMetrics struct {
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsReused    *obs.Counter
	attempts      *obs.Counter
	retries       *obs.Counter
	workersBusy   *obs.Gauge
	flushLag      *obs.Gauge
	flushed       *obs.Counter
	gangGroups    *obs.Counter
	gangLanes     *obs.Counter
	gangFallbacks *obs.Counter
	gangWidth     *obs.Histogram
	jobDur        *obs.Histogram
	attemptDur    *obs.Histogram

	remoteAttempts *obs.Counter
	remoteFailures *obs.Counter
}

// newEngineMetrics registers the engine metric families on r (nil r =
// nil panel; every update site is nil-guarded so the disabled path
// stays free).
func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		jobsDone:      r.Counter(`banshee_jobs_total{state="done"}`, "jobs by final state"),
		jobsFailed:    r.Counter(`banshee_jobs_total{state="failed"}`, "jobs by final state"),
		jobsReused:    r.Counter(`banshee_jobs_total{state="reused"}`, "jobs by final state"),
		attempts:      r.Counter("banshee_job_attempts_total", "job attempts started (first tries and retries)"),
		retries:       r.Counter("banshee_job_retries_total", "job attempts past the first"),
		workersBusy:   r.Gauge("banshee_workers_busy", "workers executing a job or gang right now"),
		flushLag:      r.Gauge("banshee_flush_lag_jobs", "completed jobs waiting behind the in-order checkpoint flush frontier"),
		flushed:       r.Counter("banshee_checkpoint_flushed_total", "records streamed to the checkpoint sink"),
		gangGroups:    r.Counter("banshee_gang_groups_total", "gang groups executed"),
		gangLanes:     r.Counter("banshee_gang_lanes_total", "jobs executed as gang lanes"),
		gangFallbacks: r.Counter("banshee_gang_fallbacks_total", "failed gangs requeued as independent jobs"),
		gangWidth:     r.Histogram("banshee_gang_width_lanes", "lanes per executed gang group"),
		jobDur:        r.Histogram("banshee_job_duration_us", "wall time per executed job, retries included"),
		attemptDur:    r.Histogram("banshee_attempt_duration_us", "wall time per job attempt"),

		remoteAttempts: r.Counter("banshee_remote_attempts_total", "job attempts executed by attached workers via the dispatch seam"),
		remoteFailures: r.Counter("banshee_remote_attempt_failures_total", "remote job attempts that returned an error"),
	}
}

// instrumentedJobRunner wraps the default SimulateJob with an epoch
// sampler against r: rate gauges update live every `every` retired
// instructions, and a successful run folds its final measurement
// window into the sim totals — failed or cancelled attempts leave no
// residue, keeping the totals equal to the sums over emitted results.
// foldFinals folds already-final results into the sim totals without a
// session — the gang path, whose lanes bypass the per-session sampler.
func foldFinals(r *obs.Registry, sts []stats.Sim) {
	for _, st := range sts {
		sim.NewSampler(r).Finish(st)
	}
}

func instrumentedJobRunner(r *obs.Registry, every uint64) JobRunner {
	if every == 0 {
		every = defaultEpochEvery
	}
	return func(ctx context.Context, job Job) (stats.Sim, error) {
		sess, err := sim.NewSessionConfig(job.Config)
		if err != nil {
			return stats.Sim{}, err
		}
		sp := sim.NewSampler(r)
		sp.Attach(sess, every)
		st, err := sess.Run(ctx)
		if err == nil {
			sp.Finish(st)
		}
		return st, err
	}
}
