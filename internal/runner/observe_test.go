package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"banshee/internal/obs"
	"banshee/internal/stats"
)

// TestMetricsSumConsistentWithResults pins the sweep-level consistency
// contract: after a metered run, the job-state counters reconcile with
// the ResultSet, and the sim totals equal the field sums over the
// executed results — the same numbers the JSONL stream carries.
func TestMetricsSumConsistentWithResults(t *testing.T) {
	m := testMatrix("metered")
	r := obs.NewRegistry()
	e := Engine{Parallelism: 3, Metrics: r, EpochEvery: 10_000}
	rs, err := e.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if got := uint64(snap[`banshee_jobs_total{state="done"}`]); got != uint64(rs.Executed) {
		t.Errorf("done counter = %d, want %d executed", got, rs.Executed)
	}
	if got := uint64(snap[`banshee_jobs_total{state="reused"}`]); got != uint64(rs.Cached) {
		t.Errorf("reused counter = %d, want %d cached", got, rs.Cached)
	}
	if got := snap[`banshee_jobs_total{state="failed"}`]; got != 0 {
		t.Errorf("failed counter = %g on a clean sweep", got)
	}
	// The matrix has no duplicate configs, so every record was executed:
	// the sim totals must sum to exactly the emitted results.
	var wantInstr, wantDCM uint64
	for _, rec := range rs.Records() {
		wantInstr += rec.Result.Instructions
		wantDCM += rec.Result.DCMisses
	}
	if got := uint64(snap["banshee_sim_instructions_total"]); got != wantInstr {
		t.Errorf("banshee_sim_instructions_total = %d, want %d (sum over results)", got, wantInstr)
	}
	if got := uint64(snap["banshee_sim_dc_misses_total"]); got != wantDCM {
		t.Errorf("banshee_sim_dc_misses_total = %d, want %d (sum over results)", got, wantDCM)
	}
	if got := uint64(snap["banshee_job_attempts_total"]); got != uint64(rs.Executed) {
		t.Errorf("attempts = %d, want %d (one per executed job)", got, rs.Executed)
	}
	if snap["banshee_epochs_total"] == 0 {
		t.Error("no epoch samples recorded during a metered sweep")
	}
	if snap["banshee_workers_busy"] != 0 {
		t.Errorf("workers busy = %g after the sweep, want 0", snap["banshee_workers_busy"])
	}
	if snap["banshee_flush_lag_jobs"] != 0 {
		t.Errorf("flush lag = %g after the sweep, want 0", snap["banshee_flush_lag_jobs"])
	}
}

// TestMetricsCountRetriesAndFailures drives a flaky custom JobRunner:
// the first attempt of every job fails, one job fails permanently.
// Attempt/retry/failure counters must reconcile exactly.
func TestMetricsCountRetriesAndFailures(t *testing.T) {
	m := testMatrix("flaky")
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	doomed := jobs[0].ID
	var mu sync.Mutex
	tries := map[string]int{}
	runner := func(ctx context.Context, job Job) (stats.Sim, error) {
		mu.Lock()
		tries[job.ID]++
		n := tries[job.ID]
		mu.Unlock()
		if job.ID == doomed || n == 1 {
			return stats.Sim{}, errors.New("injected")
		}
		return stats.Sim{Cycles: 1, Instructions: 1}, nil
	}
	r := obs.NewRegistry()
	e := Engine{Parallelism: 2, Metrics: r, JobRunner: runner,
		Retry: RetryPolicy{MaxAttempts: 2}, KeepGoing: true}
	rs, err := e.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if got := uint64(snap[`banshee_jobs_total{state="failed"}`]); got != uint64(len(rs.Failed())) {
		t.Errorf("failed counter = %d, want %d", got, len(rs.Failed()))
	}
	if got := uint64(snap[`banshee_jobs_total{state="done"}`]); got != uint64(rs.Executed) {
		t.Errorf("done counter = %d, want %d", got, rs.Executed)
	}
	// Every executed job took 2 attempts (1 retry); the doomed job took
	// its full 2. attempts = 2 × (executed + failed), retries = half.
	wantAttempts := 2 * uint64(rs.Executed+len(rs.Failed()))
	if got := uint64(snap["banshee_job_attempts_total"]); got != wantAttempts {
		t.Errorf("attempts = %d, want %d", got, wantAttempts)
	}
	if got := uint64(snap["banshee_job_retries_total"]); got != wantAttempts/2 {
		t.Errorf("retries = %d, want %d", got, wantAttempts/2)
	}
}

// TestGangMetricsAndSimTotals: a ganged sweep's group/lane counters
// reconcile with the gang completions the progress log shows, and the
// sim totals still equal the sums over the emitted results even though
// gang lanes bypass the per-session sampler.
func TestGangMetricsAndSimTotals(t *testing.T) {
	m := gangMatrix("gangmetrics")
	r := obs.NewRegistry()
	e := Engine{Parallelism: 2, GangWidth: 8, Metrics: r}
	rs, err := e.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if got := uint64(snap["banshee_gang_lanes_total"]); got != 4 {
		t.Errorf("gang lanes = %d, want 4 (the Alloy seed sweep)", got)
	}
	if got := uint64(snap["banshee_gang_groups_total"]); got != 1 {
		t.Errorf("gang groups = %d, want 1", got)
	}
	if snap["banshee_gang_fallbacks_total"] != 0 {
		t.Errorf("fallbacks = %g on a healthy run", snap["banshee_gang_fallbacks_total"])
	}
	var wantInstr uint64
	for _, rec := range rs.Records() {
		wantInstr += rec.Result.Instructions
	}
	if got := uint64(snap["banshee_sim_instructions_total"]); got != wantInstr {
		t.Errorf("sim instructions = %d, want %d (gang lanes folded)", got, wantInstr)
	}
}

// TestTracerRecordsSweepTimeline: a traced sweep yields well-formed
// Chrome trace JSON with named worker lanes and one job span per
// executed job.
func TestTracerRecordsSweepTimeline(t *testing.T) {
	m := testMatrix("traced")
	tr := obs.NewTracer()
	e := Engine{Parallelism: 2, Tracer: tr}
	rs, err := e.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	jobSpans, threads := 0, 0
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "job "):
			jobSpans++
		case ev.Ph == "M":
			threads++
		}
	}
	if jobSpans != rs.Executed {
		t.Errorf("trace has %d job spans, want %d (one per executed job)", jobSpans, rs.Executed)
	}
	if threads == 0 {
		t.Error("no worker lanes named in the trace")
	}
}

// TestPeriodicProgressReplacesPerJobLines: with ProgressEvery set, the
// per-job "done ..." spam disappears in favor of rate-limited progress
// lines, while the final matrix summary (which resume tooling greps)
// still prints.
func TestPeriodicProgressReplacesPerJobLines(t *testing.T) {
	m := testMatrix("progress")
	var buf bytes.Buffer
	e := Engine{Parallelism: 2, Progress: &buf, ProgressEvery: time.Millisecond}
	if _, err := e.Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "done  ") {
		t.Errorf("per-job lines still present with ProgressEvery set:\n%s", out)
	}
	if !strings.Contains(out, "progress: ") {
		t.Errorf("no periodic progress line emitted:\n%s", out)
	}
	if !strings.Contains(out, "8/8 jobs") {
		t.Errorf("final progress line missing:\n%s", out)
	}
	if !strings.Contains(out, "matrix progress: 8 jobs") {
		t.Errorf("final matrix summary missing:\n%s", out)
	}
}
