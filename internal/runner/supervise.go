package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"banshee/internal/errs"
	"banshee/internal/sim"
	"banshee/internal/stats"
)

// JobRunner executes one resolved job. The engine's default simulates
// the job's config (SimulateJob); tests and chaos harnesses substitute
// their own to inject faults around — or instead of — the simulation.
type JobRunner func(ctx context.Context, job Job) (stats.Sim, error)

// SimulateJob is the default JobRunner: it simulates job.Config to
// completion under ctx as a one-shot session.
func SimulateJob(ctx context.Context, job Job) (stats.Sim, error) {
	sess, err := sim.NewSessionConfig(job.Config)
	if err != nil {
		return stats.Sim{}, err
	}
	return sess.Run(ctx)
}

// Dispatcher offers job attempts for out-of-process execution — the
// leasing seam between the engine and a sweep service's attached
// workers. Dispatch blocks until the attempt resolves one way or the
// other: ok=true with a nil error is a completed remote attempt,
// ok=true with an error a failed one (retried like any local
// failure), and ok=false declines the offer (no worker attached, none
// claimed the lease in time, or the lease expired) — the engine then
// runs the attempt locally. Implementations must never return a
// result for a lease they also re-issued: exactly one attempt outcome
// per Dispatch call is what keeps the sink free of duplicates.
type Dispatcher interface {
	Dispatch(ctx context.Context, job Job) (stats.Sim, bool, error)
}

// RetryPolicy bounds how a supervised job is retried. The zero value
// means a single attempt (no retries). Backoff is exponential from
// BaseDelay, capped at MaxDelay, with deterministic jitter derived
// from the job's content ID — so a chaos run's retry schedule is
// reproducible run to run.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job (first try
	// included). 0 and 1 both mean one attempt.
	MaxAttempts int
	// BaseDelay is the wait before the first retry (0 = no wait).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (0 = uncapped).
	MaxDelay time.Duration
}

// Attempts returns the effective total attempt count (at least 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff before retry `attempt` (1-based: the delay
// after the attempt-th failure). Jitter multiplies the exponential
// delay by a factor in [0.5, 1.0) hashed from (jobID, attempt), so
// concurrent failing jobs de-synchronize without perturbing any RNG
// the simulations use — determinism of results is untouched.
func (p RetryPolicy) Delay(jobID string, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << (attempt - 1)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", jobID, attempt)
	frac := float64(h.Sum64()>>11) / (1 << 53) // [0,1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// panicError is a recovered panic converted into an error so the
// retry/ledger machinery can treat panics and returned errors
// uniformly. The stack is captured at recovery for the ledger.
type panicError struct {
	val   interface{}
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// runSupervised executes one job under the engine's supervision:
// panics are recovered into errors, the optional per-job deadline is
// applied per attempt, and failures are retried per the RetryPolicy
// with deterministic jitter. A nil error means the job succeeded; a
// non-nil error is always a *errs.JobError carrying the job context
// and attempt count — except when the parent ctx was cancelled, which
// is surfaced as-is (cancellation is the sweep ending, not this job
// failing). w is the executing worker's index (the tracer lane); em
// is the run's instrument panel (nil when metrics are off).
func (e Engine) runSupervised(ctx context.Context, job Job, w int, em *engineMetrics) (stats.Sim, error) {
	run := e.JobRunner
	if run == nil {
		if e.Metrics != nil {
			run = instrumentedJobRunner(e.Metrics, e.EpochEvery)
		} else {
			run = SimulateJob
		}
	}
	if e.Dispatch != nil {
		local := run
		run = func(ctx context.Context, j Job) (stats.Sim, error) {
			st, ok, err := e.Dispatch.Dispatch(ctx, j)
			if !ok {
				return local(ctx, j)
			}
			if em != nil {
				em.remoteAttempts.Inc()
				if err != nil {
					em.remoteFailures.Inc()
				}
			}
			if err == nil && e.Metrics != nil {
				// Remote attempts bypass the in-process sampler; fold
				// their finals so the sim totals still equal the sums
				// over emitted results (the gang-lane rule).
				foldFinals(e.Metrics, []stats.Sim{st})
			}
			return st, err
		}
	}
	max := e.Retry.Attempts()
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= max; attempt++ {
		attempts = attempt
		if em != nil {
			em.attempts.Inc()
			if attempt > 1 {
				em.retries.Inc()
			}
		}
		if e.Tracer != nil && attempt > 1 {
			e.Tracer.Instant("retry "+job.Coord(), w, "attempt", attempt)
		}
		var t0 time.Duration
		if e.Tracer != nil {
			t0 = e.Tracer.Clock()
		}
		attemptStart := time.Now()
		st, err := e.attempt(ctx, job, run)
		if em != nil {
			em.attemptDur.Observe(uint64(time.Since(attemptStart).Microseconds()))
		}
		if e.Tracer != nil {
			state := "ok"
			if err != nil {
				state = "error"
			}
			e.Tracer.Span(fmt.Sprintf("attempt %d %s", attempt, job.Coord()), w, t0, "state", state)
		}
		if err == nil {
			return st, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The sweep is shutting down: don't retry, and don't record
			// the interruption as a job failure.
			return stats.Sim{}, ctx.Err()
		}
		if attempt < max {
			if !sleepCtx(ctx, e.Retry.Delay(job.ID, attempt)) {
				return stats.Sim{}, ctx.Err()
			}
		}
	}
	_, panicked := lastErr.(*panicError)
	return stats.Sim{}, &errs.JobError{
		Coord: job.Coord(), ID: job.ID, Attempts: attempts, Panicked: panicked, Err: lastErr,
	}
}

// attempt runs one try of the job: per-attempt deadline, panic
// isolation. A panicking scheme (or workload source) unwinds only this
// attempt's stack — the worker, its queue, and every other in-flight
// job are untouched.
func (e Engine) attempt(ctx context.Context, job Job, run JobRunner) (st stats.Sim, err error) {
	if e.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return run(ctx, job)
}

// sleepCtx sleeps for d unless ctx ends first; reports whether the
// full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// failureRecord renders a permanently failed job as the Record the
// ledger stores: the job's coordinates with an empty Result and the
// error context filled in. Success records never set these fields, so
// the success stream's JSON encoding is unchanged by their existence.
func failureRecord(j Job, jerr *errs.JobError) Record {
	return Record{
		ID: j.ID, Matrix: j.Matrix, Label: j.Label,
		Workload: j.Workload, Scheme: j.Scheme, Seed: j.Seed,
		Attempts: jerr.Attempts, Error: jerr.Err.Error(), Panicked: jerr.Panicked,
	}
}

// Ledger streams permanently failed jobs to a JSONL file — the
// failure side-channel of a sink's success stream. The file is
// created lazily on the first failure (a clean sweep leaves no ledger
// behind) and reset at the start of each engine run, because failed
// jobs are retryable-on-resume: a resumed sweep re-attempts them, and
// only the failures of the latest run are current.
type Ledger struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	count int
}

// NewLedger returns a ledger that will write to path on the first
// recorded failure. No file is touched until then.
func NewLedger(path string) *Ledger { return &Ledger{path: path} }

// Path returns the ledger's file path.
func (l *Ledger) Path() string { return l.path }

// Count returns how many failures have been recorded since the last
// Reset.
func (l *Ledger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Reset discards any previous run's ledger file so the ledger only
// ever reflects the latest run. The engine calls it at Run start.
func (l *Ledger) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	l.count = 0
	if err := os.Remove(l.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runner: ledger reset: %w", err)
	}
	return nil
}

// Append records one failed job, creating the file if needed and
// flushing the line to disk immediately — a crashed sweep keeps the
// failures it had already diagnosed.
func (l *Ledger) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("runner: ledger: %w", err)
		}
		l.f = f
	}
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: ledger encode: %w", err)
	}
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: ledger write: %w", err)
	}
	l.count++
	return nil
}

// Close closes the ledger file if one was created.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
