package runner

import (
	"context"
	"fmt"
	"runtime/debug"

	"banshee/internal/sim"
	"banshee/internal/stats"
)

// GangRunner executes a group of jobs as one lockstep gang, returning
// one result per job in order. The engine's default builds a sim.Gang
// over the jobs' configs (SimulateGang); chaos harnesses substitute
// their own to inject gang-level faults and exercise the
// retry-as-singles fallback.
type GangRunner func(ctx context.Context, jobs []Job) ([]stats.Sim, error)

// SimulateGang is the default GangRunner: one lane per job config,
// driven to completion under ctx.
func SimulateGang(ctx context.Context, jobs []Job) ([]stats.Sim, error) {
	cfgs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		cfgs[i] = j.Config
	}
	g, err := sim.NewGang(cfgs)
	if err != nil {
		return nil, err
	}
	return g.Run(ctx)
}

// gangKey returns the grouping key under which job may join a gang,
// or ok=false when the job must run alone. Groupmates must agree on
// the scheme kind (the gang stays within one scheme family, so a
// failed gang's diagnosis stays legible) and on the shared front-end
// shape sim.GangKey captures — jobs differing only by seed group iff
// their configs pin WorkloadSeed, and same-seed sweep points group
// whenever only back-end knobs vary.
func gangKey(job Job) (string, bool) {
	if sim.GangEligible(job.Config) != nil {
		return "", false
	}
	return job.Config.Scheme.Kind + "\x00" + sim.GangKey(job.Config), true
}

// runGang executes one gang attempt under the engine's supervision:
// panic isolation and the optional per-attempt deadline, mirroring
// Engine.attempt. There is no gang-level retry — a failed gang falls
// back to independent supervised jobs, which own the retry policy.
func (e Engine) runGang(ctx context.Context, members []Job) (sts []stats.Sim, err error) {
	run := e.GangRunner
	if run == nil {
		run = SimulateGang
	}
	if e.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			sts, err = nil, &panicError{val: r, stack: debug.Stack()}
		}
	}()
	sts, err = run(ctx, members)
	if err == nil && len(sts) != len(members) {
		sts, err = nil, fmt.Errorf("gang returned %d results for %d jobs", len(sts), len(members))
	}
	return sts, err
}
