package runner

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"banshee/internal/errs"
)

// castagnoli is the CRC-32C table — the same polynomial the .btrc
// trace format uses for its chunk checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcSuffixLen is the length of the per-line checksum suffix:
// `,"crc":"xxxxxxxx"}` spliced over the record's closing brace.
const crcSuffixLen = len(`,"crc":"00000000"}`)

// Sink streams completed records to a JSONL file, one record per line,
// flushed per line so an interrupted sweep loses at most a partial
// trailing line. Every line carries a CRC-32C of the record's
// canonical JSON as a trailing "crc" field, so damage anywhere in a
// checkpoint — not just a torn final line — is detected on resume.
// Opened with resume, it indexes the records already on disk,
// truncating at the first torn or checksum-failing record (Dropped
// reports how many complete records that discarded), so the engine can
// skip finished jobs and append the remainder — producing a file
// byte-identical to an uninterrupted run.
type Sink struct {
	f       *os.File
	out     io.Writer
	w       *bufio.Writer
	sync    bool
	loaded  []Record
	dropped int
}

// OpenSink opens (and if needed creates) the JSONL file at path. With
// resume false any existing content is discarded; with resume true
// existing intact records are loaded and the file is truncated to the
// last intact line before appending resumes.
func OpenSink(path string, resume bool) (*Sink, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: sink dir: %w", err)
		}
	}
	if !resume {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runner: sink: %w", err)
		}
		return newSink(f), nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: sink: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: sink: %w", err)
	}
	var loaded []Record
	valid := 0
	for len(data[valid:]) > 0 {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn trailing line from an interrupted run
		}
		r, ok := decodeLine(data[valid : valid+nl])
		if !ok {
			break // corrupt record; keep only the intact prefix
		}
		loaded = append(loaded, r)
		valid += nl + 1
	}
	dropped := bytes.Count(data[valid:], []byte{'\n'})
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: sink truncate: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: sink seek: %w", err)
	}
	s := newSink(f)
	s.loaded, s.dropped = loaded, dropped
	return s, nil
}

func newSink(f *os.File) *Sink {
	return &Sink{f: f, out: f, w: bufio.NewWriter(f)}
}

// decodeLine validates and parses one sink line: the trailing crc
// field must be present and its CRC-32C must match the canonical
// record bytes (the line with the crc splice removed). Verifying the
// raw bytes — rather than re-encoding the parsed record — catches a
// flipped bit inside any value, not just structural damage.
func decodeLine(line []byte) (Record, bool) {
	if len(line) < crcSuffixLen || line[len(line)-1] != '}' {
		return Record{}, false
	}
	suffix := line[len(line)-crcSuffixLen:]
	if !bytes.HasPrefix(suffix, []byte(`,"crc":"`)) || !bytes.HasSuffix(suffix, []byte(`"}`)) {
		return Record{}, false
	}
	var want [4]byte
	if _, err := hex.Decode(want[:], suffix[8:16]); err != nil {
		return Record{}, false
	}
	canonical := make([]byte, 0, len(line))
	canonical = append(canonical, line[:len(line)-crcSuffixLen]...)
	canonical = append(canonical, '}')
	if crc32.Checksum(canonical, castagnoli) != uint32(want[0])<<24|uint32(want[1])<<16|uint32(want[2])<<8|uint32(want[3]) {
		return Record{}, false
	}
	var r Record
	if err := json.Unmarshal(canonical, &r); err != nil || r.ID == "" {
		return Record{}, false
	}
	return r, true
}

// ParseRecords decodes a complete checkpoint JSONL stream — the sink's
// on-disk and over-the-wire format — validating every line's CRC.
// Unlike resume (which tolerates a torn tail), a short, torn, or
// corrupt stream is an error: callers parse streams a server declared
// complete, so damage means transport or service trouble, not an
// interrupted run.
func ParseRecords(data []byte) ([]Record, error) {
	var recs []Record
	for off := 0; len(data[off:]) > 0; {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return nil, fmt.Errorf("runner: record stream: torn trailing line at byte %d", off)
		}
		r, ok := decodeLine(data[off : off+nl])
		if !ok {
			return nil, fmt.Errorf("runner: record stream: corrupt record at byte %d", off)
		}
		recs = append(recs, r)
		off += nl + 1
	}
	return recs, nil
}

// ParseLedger decodes a failure-ledger JSONL stream (plain JSON lines,
// no CRC suffix — matching what Ledger.Append writes).
func ParseLedger(data []byte) ([]Record, error) {
	var recs []Record
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("runner: ledger stream: %w", err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Loaded returns the records read at open time (resume only).
func (s *Sink) Loaded() []Record { return s.loaded }

// Dropped returns how many complete-but-corrupt records resume
// discarded when it truncated the file (a torn trailing partial line
// is repaired silently and not counted).
func (s *Sink) Dropped() int { return s.dropped }

// SetSync controls whether every flush boundary also fsyncs the file.
// Local batch runs leave it off (the OS page cache is durable enough
// for a reproducible re-run); the sweep daemon turns it on so a
// machine crash — not just a process crash — loses at most the one
// in-flight record of each checkpoint stream.
func (s *Sink) SetSync(on bool) { s.sync = on }

// WrapWriter interposes wrap's result between the sink's line buffer
// and the file — the fault-injection seam: chaos tests wrap it to
// inject short writes and write errors into the checkpoint stream.
func (s *Sink) WrapWriter(wrap func(io.Writer) io.Writer) {
	s.w.Flush()
	s.out = wrap(s.out)
	s.w = bufio.NewWriter(s.out)
}

// Rewrite replaces the file's contents with recs — used when a resumed
// matrix no longer matches the file's record sequence (an edited
// sweep), so stale records are pruned instead of accumulating behind
// the fresh ones.
func (s *Sink) Rewrite(recs []Record) error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	s.w = bufio.NewWriter(s.out)
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Append writes one record as a checksummed JSON line and flushes it
// to disk.
func (s *Sink) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: sink encode: %w", err)
	}
	crc := crc32.Checksum(b, castagnoli)
	line := make([]byte, 0, len(b)+crcSuffixLen)
	line = append(line, b[:len(b)-1]...) // drop the closing brace
	line = append(line, fmt.Sprintf(`,"crc":"%08x"}`, crc)...)
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		return errs.WrapDiskFull("sink append", fmt.Errorf("runner: sink write: %w", err))
	}
	if err := s.w.Flush(); err != nil {
		return errs.WrapDiskFull("sink append", fmt.Errorf("runner: sink flush: %w", err))
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return errs.WrapDiskFull("sink fsync", fmt.Errorf("runner: sink fsync: %w", err))
		}
	}
	return nil
}

// Close flushes and closes the file.
func (s *Sink) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return errs.WrapDiskFull("sink close", fmt.Errorf("runner: sink flush: %w", err))
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			return errs.WrapDiskFull("sink fsync", fmt.Errorf("runner: sink fsync: %w", err))
		}
	}
	return s.f.Close()
}
