package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Sink streams completed records to a JSONL file, one record per line,
// flushed per line so an interrupted sweep loses at most a partial
// trailing line. Opened with resume, it indexes the records already on
// disk (repairing a torn tail) so the engine can skip finished jobs and
// append the remainder — producing a file byte-identical to an
// uninterrupted run.
type Sink struct {
	f      *os.File
	w      *bufio.Writer
	loaded []Record
}

// OpenSink opens (and if needed creates) the JSONL file at path. With
// resume false any existing content is discarded; with resume true
// existing complete records are loaded and the file is truncated to the
// last complete line before appending resumes.
func OpenSink(path string, resume bool) (*Sink, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: sink dir: %w", err)
		}
	}
	if !resume {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runner: sink: %w", err)
		}
		return &Sink{f: f, w: bufio.NewWriter(f)}, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: sink: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: sink: %w", err)
	}
	var loaded []Record
	valid := 0
	for len(data[valid:]) > 0 {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn trailing line from an interrupted run
		}
		line := data[valid : valid+nl]
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			break // corrupt tail; keep only the records before it
		}
		loaded = append(loaded, r)
		valid += nl + 1
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: sink truncate: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: sink seek: %w", err)
	}
	return &Sink{f: f, w: bufio.NewWriter(f), loaded: loaded}, nil
}

// Loaded returns the records read at open time (resume only).
func (s *Sink) Loaded() []Record { return s.loaded }

// Rewrite replaces the file's contents with recs — used when a resumed
// matrix no longer matches the file's record sequence (an edited
// sweep), so stale records are pruned instead of accumulating behind
// the fresh ones.
func (s *Sink) Rewrite(recs []Record) error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		return fmt.Errorf("runner: sink rewrite: %w", err)
	}
	s.w.Reset(s.f)
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Append writes one record as a JSON line and flushes it to disk.
func (s *Sink) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runner: sink encode: %w", err)
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: sink write: %w", err)
	}
	return s.w.Flush()
}

// Close flushes and closes the file.
func (s *Sink) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
