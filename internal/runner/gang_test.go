package runner

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"banshee/internal/sim"
	"banshee/internal/stats"
)

// gangMatrix is a seed sweep whose jobs are gang-eligible: the base
// config pins WorkloadSeed, so lanes differing only by Seed share one
// front-end stream. "Alloy 1" jobs gang; "Banshee" jobs must keep
// running as independent singles (not gang-safe), proving eligibility
// is per job, not per sweep.
func gangMatrix(name string) Matrix {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.InstrPerCore = 40_000
	base.Seed = 11
	base.WorkloadSeed = 11
	return Matrix{
		Name:      name,
		Base:      base,
		Workloads: []string{"pagerank"},
		Schemes:   []string{"Alloy 1", "Banshee"},
		Seeds:     []uint64{1, 2, 3, 4},
	}
}

func gangRunToFile(t *testing.T, e Engine, m Matrix, path string) (*ResultSet, []byte) {
	t.Helper()
	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	e.Sink = sink
	rs, err := e.Run(context.Background(), m)
	sink.Close()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return rs, data
}

// TestGangSweepByteIdentical: a ganged sweep's JSONL output must be
// byte-identical to the ungrouped sweep's — same records, same order,
// same content keys — with the gang-eligible jobs actually executed as
// gang lanes (visible in the progress log).
func TestGangSweepByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m := gangMatrix("gang")
	_, plain := gangRunToFile(t, Engine{Parallelism: 2}, m, filepath.Join(dir, "plain.jsonl"))

	var progress bytes.Buffer
	rs, ganged := gangRunToFile(t, Engine{Parallelism: 2, GangWidth: 8, Progress: &progress},
		m, filepath.Join(dir, "gang.jsonl"))
	if !bytes.Equal(plain, ganged) {
		t.Fatalf("ganged sweep output differs from plain sweep:\n--- plain ---\n%s--- gang ---\n%s", plain, ganged)
	}
	if rs.Executed != 8 {
		t.Fatalf("executed %d jobs, want 8", rs.Executed)
	}
	if got := strings.Count(progress.String(), "gang  "); got != 4 {
		t.Fatalf("progress shows %d gang completions, want 4 (the Alloy seed sweep):\n%s", got, progress.String())
	}
}

// TestGangChaosFallsBackToSingles: a panicking gang must not lose or
// corrupt any job — the engine retries its members as independent
// supervised jobs, and the sweep's output converges byte-identically
// to the no-gang golden run.
func TestGangChaosFallsBackToSingles(t *testing.T) {
	dir := t.TempDir()
	m := gangMatrix("chaos")
	_, golden := gangRunToFile(t, Engine{Parallelism: 2}, m, filepath.Join(dir, "golden.jsonl"))

	// The first gang attempt dies mid-flight; later gangs run for real,
	// so both the fallback path and the healthy gang path are covered.
	var calls atomic.Int32
	chaos := func(ctx context.Context, jobs []Job) ([]stats.Sim, error) {
		if calls.Add(1) == 1 {
			panic("injected gang fault")
		}
		return SimulateGang(ctx, jobs)
	}
	var progress bytes.Buffer
	rs, got := gangRunToFile(t,
		Engine{Parallelism: 2, GangWidth: 8, GangRunner: chaos, Progress: &progress},
		m, filepath.Join(dir, "chaos.jsonl"))
	if !bytes.Equal(golden, got) {
		t.Fatalf("chaos sweep output diverged from golden:\n--- golden ---\n%s--- chaos ---\n%s", golden, got)
	}
	if rs.Executed != 8 {
		t.Fatalf("executed %d jobs, want 8", rs.Executed)
	}
	if !strings.Contains(progress.String(), "retrying as independent jobs") {
		t.Fatalf("progress log never reported the gang fallback:\n%s", progress.String())
	}
}

// TestGangResumeByteIdentical: checkpoint/resume keeps operating per
// job under ganging — a truncated sink resumed with ganging enabled
// completes the file byte-identically, serving the on-disk prefix from
// cache and running only the remainder (as a partial-width gang).
func TestGangResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	m := gangMatrix("resume")
	e := Engine{Parallelism: 2, GangWidth: 8}
	_, full := gangRunToFile(t, e, m, filepath.Join(dir, "full.jsonl"))

	lines := bytes.SplitAfter(full, []byte("\n"))
	partialPath := filepath.Join(dir, "partial.jsonl")
	partial := append([]byte{}, bytes.Join(lines[:3], nil)...)
	partial = append(partial, []byte(`{"id":"torn`)...)
	if err := os.WriteFile(partialPath, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	sink, err := OpenSink(partialPath, true)
	if err != nil {
		t.Fatal(err)
	}
	e.Sink = sink
	rs, err := e.Run(context.Background(), m)
	sink.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cached != 3 || rs.Executed != 5 {
		t.Fatalf("resume cached %d / executed %d, want 3/5", rs.Cached, rs.Executed)
	}
	resumed, err := os.ReadFile(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, full) {
		t.Fatalf("ganged resume differs from uninterrupted run:\n--- full ---\n%s--- resumed ---\n%s", full, resumed)
	}
}

// TestGangGrouping pins the queue-building rules: ineligible jobs stay
// singles, eligible jobs group up to the width cap, and a custom
// JobRunner without a GangRunner disables ganging entirely (gangs
// would bypass the override).
func TestGangGrouping(t *testing.T) {
	m := gangMatrix("group")
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	widths := func(q *jobQueue) (out []int) {
		for _, groups := range q.queues {
			for _, g := range groups {
				out = append(out, len(g))
			}
		}
		return out
	}
	pending := make([]int, len(jobs))
	for i := range pending {
		pending[i] = i
	}
	got := widths(newJobQueue(jobs, pending, 8))
	// 4 Alloy jobs form one gang; 4 Banshee jobs stay singles. The
	// enumeration interleaves schemes within each seed, so expect one
	// 4-group and four 1-groups.
	var gangs, singles int
	for _, w := range got {
		switch w {
		case 4:
			gangs++
		case 1:
			singles++
		default:
			t.Fatalf("unexpected group width %d in %v", w, got)
		}
	}
	if gangs != 1 || singles != 4 {
		t.Fatalf("group widths %v: want one 4-wide gang and four singles", got)
	}
	// Width 2 caps the Alloy sweep into two 2-wide gangs.
	if got := widths(newJobQueue(jobs, pending, 2)); len(got) != 6 {
		t.Fatalf("width-2 grouping produced %v, want 6 groups", got)
	}
	// A JobRunner override without a matching GangRunner must disable
	// ganging so the override sees every job.
	e := Engine{GangWidth: 8, JobRunner: SimulateJob}
	if e.gangWidth() != 1 {
		t.Fatal("JobRunner override did not disable ganging")
	}
	e.GangRunner = SimulateGang
	if e.gangWidth() != 8 {
		t.Fatal("explicit GangRunner should re-enable ganging")
	}
}
