package runner

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"banshee/internal/sim"
	"banshee/internal/workload"
)

// testMatrix is small enough for unit tests but exercises every axis:
// two workloads, two schemes, and a two-point config sweep.
func testMatrix(name string) Matrix {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.InstrPerCore = 60_000
	base.Seed = 11
	return Matrix{
		Name:      name,
		Base:      base,
		Workloads: []string{"pagerank", "lbm"},
		Schemes:   []string{"NoCache", "Banshee"},
		Points: []Point{
			{Label: "base"},
			{Label: "lat66", Mutate: func(c *sim.Config) { c.InPkgLatScale = 0.66 }},
		},
	}
}

func TestMatrixEnumeration(t *testing.T) {
	m := testMatrix("enum")
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("expected 8 jobs, got %d", len(jobs))
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.Coord()] {
			t.Fatalf("duplicate coord %s", j.Coord())
		}
		seen[j.Coord()] = true
		if j.Config.Workload != j.Workload {
			t.Fatalf("config workload %q != job workload %q", j.Config.Workload, j.Workload)
		}
		if j.ID == "" {
			t.Fatal("missing content ID")
		}
	}
	// Content keys must differ across points but match across re-enumeration.
	again, _ := m.Jobs()
	for i := range jobs {
		if jobs[i].ID != again[i].ID {
			t.Fatalf("job %d ID unstable: %s vs %s", i, jobs[i].ID, again[i].ID)
		}
	}
	if jobs[0].ID == jobs[4].ID {
		t.Fatal("different points share a content ID")
	}
}

func TestContentKeyTracksConfig(t *testing.T) {
	m := testMatrix("key")
	a, _ := m.Jobs()
	m.Base.InstrPerCore = 70_000
	b, _ := m.Jobs()
	for i := range a {
		if a[i].ID == b[i].ID {
			t.Fatalf("job %d ID unchanged after config edit", i)
		}
	}
}

func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	m := testMatrix("det")
	serial, err := Engine{Parallelism: 1}.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Engine{Parallelism: 4}.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Executed == 0 {
		t.Fatal("nothing executed")
	}
	for _, r := range serial.Records() {
		got := parallel.Get(r.Label, r.Workload, r.Scheme)
		if got.Cycles != r.Result.Cycles || got.InPkg != r.Result.InPkg {
			t.Fatalf("%s: parallel run diverged from serial", r.Workload)
		}
	}
}

// TestGoldenResume is the checkpoint/resume contract: killing a sweep
// after k jobs (simulated by truncating the JSONL to k complete lines,
// plus a torn partial line) and re-running with resume must finish the
// remaining jobs without re-simulating the first k, and the final file
// must be byte-identical to an uninterrupted run's.
func TestGoldenResume(t *testing.T) {
	dir := t.TempDir()
	m := testMatrix("golden")

	fullPath := filepath.Join(dir, "full.jsonl")
	sink, err := OpenSink(fullPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Engine{Parallelism: 3, Sink: sink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 8 {
		t.Fatalf("expected >= 8 result lines, got %d", len(lines))
	}

	// Interrupted file: 3 complete records plus a torn tail.
	partialPath := filepath.Join(dir, "partial.jsonl")
	partial := append([]byte{}, bytes.Join(lines[:3], nil)...)
	partial = append(partial, []byte(`{"id":"torn`)...)
	if err := os.WriteFile(partialPath, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	sink2, err := OpenSink(partialPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sink2.Loaded()); got != 3 {
		t.Fatalf("loaded %d records from torn file, want 3", got)
	}
	rs, err := (Engine{Parallelism: 3, Sink: sink2}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Close()
	if rs.Cached != 3 {
		t.Fatalf("resumed run cached %d jobs, want 3", rs.Cached)
	}
	if rs.Executed != 5 {
		t.Fatalf("resumed run executed %d jobs, want 5", rs.Executed)
	}
	resumed, err := os.ReadFile(partialPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, full) {
		t.Fatalf("resumed JSONL differs from uninterrupted run:\n--- full ---\n%s\n--- resumed ---\n%s", full, resumed)
	}

	// A second resume over the complete file executes nothing.
	sink3, err := OpenSink(partialPath, true)
	if err != nil {
		t.Fatal(err)
	}
	rs3, err := (Engine{Sink: sink3}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink3.Close()
	if rs3.Executed != 0 || rs3.Cached != 8 {
		t.Fatalf("complete resume executed %d / cached %d, want 0/8", rs3.Executed, rs3.Cached)
	}
	again, _ := os.ReadFile(partialPath)
	if !bytes.Equal(again, full) {
		t.Fatal("no-op resume modified the file")
	}
}

// TestResumeIgnoresStaleResults: edits to the matrix change content
// keys, so resume must re-simulate rather than serve stale records.
func TestResumeIgnoresStaleResults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	m := testMatrix("stale")
	m.Workloads = []string{"pagerank"}

	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Engine{Sink: sink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	m.Base.InstrPerCore = 80_000 // the sweep was edited
	sink2, err := OpenSink(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (Engine{Sink: sink2}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Close()
	if rs.Cached != 0 || rs.Executed != 4 {
		t.Fatalf("stale resume cached %d / executed %d, want 0/4", rs.Cached, rs.Executed)
	}

	// The stale records must be pruned, not left ahead of the fresh
	// ones: the resumed file must equal a from-scratch run's.
	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	freshPath := filepath.Join(dir, "fresh.jsonl")
	sink3, err := OpenSink(freshPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Engine{Sink: sink3}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink3.Close()
	fresh, _ := os.ReadFile(freshPath)
	if !bytes.Equal(resumed, fresh) {
		t.Fatalf("stale resume left a dirty file:\n--- resumed ---\n%s--- fresh ---\n%s", resumed, fresh)
	}
}

// TestResumeReusesBeyondBrokenPrefix: when an edit invalidates an early
// job, later still-valid results are pruned from the file but reused by
// content key — re-appended in order without re-simulation.
func TestResumeReusesBeyondBrokenPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.jsonl")
	m := testMatrix("prefix")
	m.Workloads = []string{"pagerank"}
	m.Points = []Point{
		{Label: "a"},
		{Label: "b", Mutate: func(c *sim.Config) { c.InPkgLatScale = 0.66 }},
	}

	sink, err := OpenSink(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Engine{Sink: sink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	// Edit only point "a": its 2 jobs re-simulate; point "b"'s 2 jobs
	// fall after the broken prefix but are reused by content key.
	m.Points[0].Mutate = func(c *sim.Config) { c.InPkgLatScale = 0.9 }
	sink2, err := OpenSink(path, true)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (Engine{Sink: sink2}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink2.Close()
	if rs.Executed != 2 || rs.Cached != 2 {
		t.Fatalf("executed %d / cached %d, want 2/2", rs.Executed, rs.Cached)
	}
	if got := len(rs.Records()); got != 4 {
		t.Fatalf("want 4 records, got %d", got)
	}
	// File must hold exactly the 4 current records, in order.
	sink3, err := OpenSink(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sink3.Close()
	if got := len(sink3.Loaded()); got != 4 {
		t.Fatalf("file holds %d records, want 4", got)
	}
	rs2, err := (Engine{Sink: sink3}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Executed != 0 {
		t.Fatalf("follow-up resume executed %d jobs", rs2.Executed)
	}
}

// TestIdenticalConfigsSimulateOnce: two points that resolve to the same
// config share one simulation but keep distinct records.
func TestIdenticalConfigsSimulateOnce(t *testing.T) {
	m := testMatrix("dedupe")
	m.Workloads = []string{"pagerank"}
	m.Schemes = []string{"NoCache"}
	m.Points = []Point{
		{Label: "a"},
		{Label: "b"}, // same config, different label
	}
	rs, err := Engine{Parallelism: 2}.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Executed != 1 || rs.Cached != 1 {
		t.Fatalf("executed %d / cached %d, want 1/1", rs.Executed, rs.Cached)
	}
	if len(rs.Records()) != 2 {
		t.Fatalf("want 2 records, got %d", len(rs.Records()))
	}
	if rs.Get("a", "pagerank", "NoCache").Cycles != rs.Get("b", "pagerank", "NoCache").Cycles {
		t.Fatal("deduped points disagree")
	}
}

func TestEngineErrorSurfaces(t *testing.T) {
	m := testMatrix("err")
	m.Schemes = []string{"NoCache"}
	m.Points = []Point{{Label: "bad", Mutate: func(c *sim.Config) { c.Scheme.Kind = "bogus" }}}
	if _, err := (Engine{}).Run(context.Background(), m); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected build error, got %v", err)
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := (Matrix{Name: "empty"}).Jobs(); err == nil {
		t.Fatal("empty matrix enumerated")
	}
	m := testMatrix("badscheme")
	m.Schemes = []string{"NotAScheme"}
	if _, err := m.Jobs(); err == nil {
		t.Fatal("unknown scheme enumerated")
	}
}

// TestWorkStealing drains a lopsided matrix with more workers than
// workloads — forcing steals — and checks every job completes exactly
// once. Run under -race in CI to shake out pool races.
func TestWorkStealing(t *testing.T) {
	m := testMatrix("steal")
	m.Workloads = []string{"pagerank"} // one queue, many workers
	m.Schemes = []string{"NoCache", "CacheOnly", "TDC", "Banshee"}
	rs, err := Engine{Parallelism: 4}.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rs.Records()); got != 8 {
		t.Fatalf("want 8 records, got %d", got)
	}
	if rs.Executed != 8 {
		t.Fatalf("executed %d, want 8", rs.Executed)
	}
}

func TestBatchOverRecordedTrace(t *testing.T) {
	// Recorded traces are first-class batch workloads: a matrix mixing
	// "file:<path>" and synthetic names runs them side by side, with
	// concurrent jobs each opening their own reader over the same file,
	// and the replayed jobs match the direct synthetic jobs exactly.
	base := sim.DefaultConfig()
	base.Cores = 2
	base.InstrPerCore = 40_000
	base.Seed = 11
	path := filepath.Join(t.TempDir(), "gcc.btrc")
	err := workload.Record(path, "gcc", workload.Config{
		Cores: base.Cores, Seed: base.Seed, Scale: base.Scale, Intensity: base.Intensity,
	}, base.InstrPerCore)
	if err != nil {
		t.Fatal(err)
	}
	m := Matrix{
		Name:      "replay",
		Base:      base,
		Workloads: []string{"gcc", "file:" + path},
		Schemes:   []string{"NoCache", "Banshee"},
		Seeds:     []uint64{11},
	}
	rs, err := Engine{Parallelism: 4}.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range m.Schemes {
		direct := rs.Get("", "gcc", scheme)
		replayed := rs.Get("", "file:"+path, scheme)
		replayed.Workload = direct.Workload
		if direct != replayed {
			t.Errorf("%s: replayed batch job differs from direct job", scheme)
		}
	}
}

// cancelAfterWriter cancels a context after n progress lines — a
// deterministic stand-in for a SIGINT landing mid-sweep.
type cancelAfterWriter struct {
	n      int
	cancel context.CancelFunc
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	if w.n--; w.n == 0 {
		w.cancel()
	}
	return len(p), nil
}

// TestCancelMidSweepResumesByteIdentical pins the cancellation
// contract end to end: a sweep cancelled mid-run returns an error
// matching context.Canceled and leaves its JSONL sink a clean
// enumeration-order prefix; resuming the same matrix completes the
// file byte-identically to an uninterrupted run's.
func TestCancelMidSweepResumesByteIdentical(t *testing.T) {
	m := testMatrix("cancel")
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	interrupted := filepath.Join(dir, "interrupted.jsonl")

	sink, err := OpenSink(full, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Engine{Parallelism: 2, Sink: sink}).Run(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	sink.Close()

	// Interrupt after the second completed job. Workers abandon their
	// in-flight simulations; no partial record may reach the sink.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink2, err := OpenSink(interrupted, false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = (Engine{Parallelism: 2, Sink: sink2,
		Progress: &cancelAfterWriter{n: 2, cancel: cancel}}).Run(ctx, m)
	sink2.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}

	// The interrupted file must be a clean strict prefix of the full run.
	fullBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	part, err := os.ReadFile(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) >= len(fullBytes) {
		t.Fatalf("interrupted file not shorter: %d vs %d bytes", len(part), len(fullBytes))
	}
	if !bytes.HasPrefix(fullBytes, part) {
		t.Fatal("interrupted file is not a prefix of the uninterrupted run's")
	}

	// Resume completes it byte-identically.
	sink3, err := OpenSink(interrupted, true)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := (Engine{Parallelism: 2, Sink: sink3}).Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	sink3.Close()
	// Every record the interrupted run flushed is served from disk, not
	// re-simulated. (The prefix can legitimately be empty: the in-order
	// flush frontier may not have advanced when the cancel landed.)
	if onDisk := bytes.Count(part, []byte{'\n'}); rs.Cached < onDisk {
		t.Fatalf("resume cached %d jobs, interrupted file held %d", rs.Cached, onDisk)
	}
	resumed, err := os.ReadFile(interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, fullBytes) {
		t.Fatal("resumed file differs from uninterrupted run's")
	}
}
