package banshee

import (
	"testing"

	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/vm"
)

// testSystem builds a small Banshee with its VM substrate.
func testSystem(mutate func(*Config)) (*Banshee, *vm.PageTable, []*vm.TLB) {
	pt := vm.NewPageTable()
	tlbs := []*vm.TLB{vm.NewTLB(64), vm.NewTLB(64)}
	cfg := DefaultConfig(1 << 20) // 64 sets × 4 ways × 4 KB
	cfg.MCs = 2
	cfg.TagBufferEntries = 64
	cfg.TagBufferWays = 8
	cfg.Seed = 7
	if mutate != nil {
		mutate(&cfg)
	}
	// High sampling coefficients push the replacement threshold past
	// what 5-bit counters can express (the same reason the FBRNoSample
	// variant widens its counters); tests that crank the coefficient get
	// wider counters automatically.
	if cfg.SamplingCoeff >= 0.5 && cfg.CounterBits <= 5 {
		cfg.CounterBits = 8
	}
	b := New(cfg, pt, tlbs, vm.DefaultCostModel(2700))
	return b, pt, tlbs
}

// touch sends a demand read with the mapping the page table currently
// holds (simulating a TLB-carried mapping).
func touch(b *Banshee, pt *vm.PageTable, addr mem.Addr) mcResult {
	pte := pt.Translate(addr)
	res := b.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
	return mcResult{res.Hit, res.Ops}
}

type mcResult struct {
	Hit bool
	Ops []mem.Op
}

func bytesTo(ops []mem.Op, target mem.Kind, class mem.Class) int {
	n := 0
	for _, op := range ops {
		if op.Target == target && op.Class == class {
			n += op.Bytes
		}
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	pt := vm.NewPageTable()
	cases := []func(*Config){
		func(c *Config) { c.Ways = 0 },
		func(c *Config) { c.PageBytes = 1024 },
		func(c *Config) { c.SamplingCoeff = 0 },
		func(c *Config) { c.SamplingCoeff = 2 },
		func(c *Config) { c.CapacityBytes = 3 * 4096 * 4 },
		func(c *Config) { c.Threshold = 40 }, // unreachable with 5-bit counters
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(1 << 20)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			New(cfg, pt, nil, vm.DefaultCostModel(2700))
		}()
	}
}

func TestNames(t *testing.T) {
	b, _, _ := testSystem(nil)
	if b.Name() != "Banshee" {
		t.Fatalf("name %q", b.Name())
	}
	b2, _, _ := testSystem(func(c *Config) { c.Policy = LRUReplaceOnMiss })
	if b2.Name() != "Banshee LRU" {
		t.Fatalf("name %q", b2.Name())
	}
	b3, _, _ := testSystem(func(c *Config) { c.Policy = FBRNoSample; c.CounterBits = 8 })
	if b3.Name() != "Banshee FBR no-sample" {
		t.Fatalf("name %q", b3.Name())
	}
}

// Table 1: Banshee hit = 64 B, miss = 64 B + 0 B extra; no tag lookup on
// the access path.
func TestAccessPathTraffic(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 0.0001 }) // suppress sampling noise
	res := touch(b, pt, 0x5000)
	if res.Hit {
		t.Fatal("cold access hit")
	}
	off := bytesTo(res.Ops, mem.OffPackage, mem.ClassMissData)
	if off != 64 {
		t.Fatalf("miss off-package bytes %d, want 64", off)
	}
	if got := bytesTo(res.Ops, mem.InPackage, mem.ClassTag); got != 0 {
		t.Fatalf("demand access generated %d tag bytes; Banshee must not probe", got)
	}
}

func TestFBRPromotionToCache(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	addr := mem.Addr(0x9000)
	// Hammer one page: with coeff 1 and cold miss rate 1, every access
	// samples; the page becomes a candidate, accumulates counts, and is
	// promoted into a free way.
	var promoted bool
	for i := 0; i < 50 && !promoted; i++ {
		touch(b, pt, addr)
		promoted, _ = b.Resident(uint64(addr) >> 12)
	}
	if !promoted {
		t.Fatal("hot page never promoted into the cache")
	}
	// After a PTE sync its mapping reaches the page table...
	// (replacement inserted a remap entry; force a flush by hammering
	// more pages in the same MC until threshold).
	if b.remaps == 0 {
		t.Fatal("no remap recorded")
	}
}

func TestPromotionGeneratesPageMoveTraffic(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	addr := mem.Addr(0x9000)
	var moveIn, tagW int
	for i := 0; i < 50; i++ {
		pte := pt.Translate(addr)
		res := b.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
		moveIn += bytesTo(res.Ops, mem.InPackage, mem.ClassReplacement)
		tagW += bytesTo(res.Ops, mem.InPackage, mem.ClassTag)
		if r, _ := b.Resident(uint64(addr) >> 12); r {
			break
		}
	}
	// Table 1: replacement moves "32B tag + page size".
	if moveIn != mem.PageBytes {
		t.Fatalf("page fill bytes %d, want %d", moveIn, mem.PageBytes)
	}
	if tagW != metaBytes {
		t.Fatalf("tag write bytes %d, want %d", tagW, metaBytes)
	}
}

func TestHitsAfterPromotion(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	addr := mem.Addr(0x9000)
	for i := 0; i < 50; i++ {
		touch(b, pt, addr)
		if r, _ := b.Resident(uint64(addr) >> 12); r {
			break
		}
	}
	// The tag buffer supplies the fresh mapping even though the PTE is
	// stale (lazy coherence): the next access must hit.
	res := touch(b, pt, addr+64)
	if !res.Hit {
		t.Fatal("access after promotion missed despite tag-buffer mapping")
	}
	if got := bytesTo(res.Ops, mem.InPackage, mem.ClassHitData); got != 64 {
		t.Fatalf("hit moved %d bytes, want 64", got)
	}
}

func TestSamplingReducesMetadataTraffic(t *testing.T) {
	run := func(coeff float64) uint64 {
		b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = coeff })
		for i := 0; i < 20000; i++ {
			touch(b, pt, mem.Addr(i%1000)<<12)
		}
		return b.samples
	}
	hi, lo := run(1.0), run(0.01)
	if lo*10 > hi {
		t.Fatalf("sampling did not reduce metadata accesses: coeff1=%d coeff0.01=%d", hi, lo)
	}
}

func TestAdaptiveSampleRateFollowsMissRate(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 0.5 })
	// Make one hot page resident, then hammer it: miss rate → 0, so
	// sampling should nearly stop.
	addr := mem.Addr(0x4000)
	// Warm past one full miss-rate window (8192 accesses) so the
	// tracker observes the all-hit behavior.
	for i := 0; i < 9000; i++ {
		touch(b, pt, addr)
	}
	before := b.samples
	for i := 0; i < 20000; i++ {
		touch(b, pt, addr)
	}
	newSamples := b.samples - before
	if newSamples > 2000 {
		t.Fatalf("adaptive sampling did not throttle at low miss rate: %d samples", newSamples)
	}
}

func TestAntiThrashThreshold(t *testing.T) {
	// Two pages alternating in a full set must not keep swapping: the
	// threshold requires a candidate to out-score the coldest resident
	// by page_lines × coeff / 2.
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	sets := uint64(len(b.md.sets))
	// Fill all 4 ways of set 0 with hot pages.
	for w := uint64(0); w < 4; w++ {
		for i := 0; i < 60; i++ {
			touch(b, pt, mem.Addr((w*sets)<<12))
		}
	}
	remapsBefore := b.remaps
	// Two cold pages alternate in the same set.
	for i := 0; i < 200; i++ {
		touch(b, pt, mem.Addr(((4+uint64(i%2))*sets)<<12))
	}
	churn := b.remaps - remapsBefore
	if churn > 4 {
		t.Fatalf("replacement churn %d despite threshold (thrashing)", churn)
	}
}

func TestCounterSaturationHalves(t *testing.T) {
	b, _, _ := testSystem(nil)
	set := b.md.set(0)
	set.cached[0] = cachedEntry{tag: 1, count: 30, valid: true}
	set.cached[1] = cachedEntry{tag: 2, count: 8, valid: true}
	set.cand[0] = candEntry{tag: 3, count: 20, valid: true}
	set.halve()
	if set.cached[0].count != 15 || set.cached[1].count != 4 || set.cand[0].count != 10 {
		t.Fatalf("halve wrong: %+v %+v %+v", set.cached[0], set.cached[1], set.cand[0])
	}
}

func TestEvictionProbeOnUnknownMapping(t *testing.T) {
	b, _, _ := testSystem(nil)
	// LLC dirty eviction with no mapping: must probe metadata (32 B tag
	// read) and allocate a clean tag-buffer entry.
	res := b.Access(mem.Request{Addr: 0x3000, Write: true, Eviction: true})
	if got := bytesTo(res.Ops, mem.InPackage, mem.ClassTag); got != metaBytes {
		t.Fatalf("probe bytes %d, want %d", got, metaBytes)
	}
	if b.probes != 1 {
		t.Fatalf("probes %d", b.probes)
	}
	// Second eviction to the same page: the clean entry absorbs the probe.
	b.Access(mem.Request{Addr: 0x3040, Write: true, Eviction: true})
	if b.probes != 1 {
		t.Fatalf("tag buffer did not absorb repeat probe: %d", b.probes)
	}
}

func TestLazyPTESync(t *testing.T) {
	b, pt, tlbs := testSystem(func(c *Config) {
		c.SamplingCoeff = 1.0
		c.TagBufferEntries = 16
		c.TagBufferWays = 2
		c.MCs = 1
	})
	// Generate many remaps to overflow the 70% threshold of the tiny
	// buffer, forcing a flush.
	var swCharged bool
	for i := 0; i < 3000 && b.flushes == 0; i++ {
		addr := mem.Addr(uint64(i%300) << 12)
		pte := pt.Translate(addr)
		res := b.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
		if len(res.SW) > 0 {
			swCharged = true
		}
	}
	if b.flushes == 0 {
		t.Fatal("tag buffer never flushed")
	}
	if !swCharged {
		t.Fatal("flush did not charge software cost")
	}
	// The flush must have updated PTEs and shot down every TLB.
	for _, tlb := range tlbs {
		if tlb.Shootdowns == 0 {
			t.Fatal("TLB not shot down by flush")
		}
	}
	if b.ptesSynced == 0 {
		t.Fatal("no PTEs were synced")
	}
	// Functional agreement: every resident page's PTE or tag buffer
	// mapping says cached.
	synced := 0
	for s := range b.md.sets {
		for w := range b.md.sets[s].cached {
			e := b.md.sets[s].cached[w]
			if !e.valid {
				continue
			}
			page := b.md.pageOf(s, e.tag)
			m, hit := b.bufferFor(page).Lookup(page)
			if hit && m.Cached {
				synced++
				continue
			}
			pte := pt.Translate(mem.Addr(page << 12))
			if pte.Cached && pte.Way == uint8(w) {
				synced++
			}
		}
	}
	if synced == 0 {
		t.Fatal("no resident page is visible via buffer or PTE")
	}
}

func TestMappingAlwaysCurrent(t *testing.T) {
	// The central correctness invariant of lazy coherence: at any
	// moment, (tag buffer ∪ PTE snapshot through a fresh TLB) agrees
	// with the metadata's ground truth for every accessed page.
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	for i := 0; i < 20000; i++ {
		addr := mem.Addr(uint64(i*2654435761)%2048) << 12
		page := uint64(addr) >> 12
		pte := pt.Translate(addr)
		mapping := pte.Mapping()
		if m, hit := b.bufferFor(page).Lookup(page); hit {
			mapping = m
		}
		resident, way := b.Resident(page)
		if mapping.Cached != resident {
			t.Fatalf("iteration %d: mapping says cached=%v, metadata says %v", i, mapping.Cached, resident)
		}
		if resident && int(mapping.Way) != way {
			t.Fatalf("iteration %d: way mismatch %d vs %d", i, mapping.Way, way)
		}
		res := b.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
		if res.Hit != resident {
			t.Fatalf("iteration %d: hit=%v but resident=%v", i, res.Hit, resident)
		}
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0; c.Ways = 1; c.Candidates = 2 })
	sets := uint64(len(b.md.sets))
	hot1 := mem.Addr(0)
	hot2 := mem.Addr(sets << 12) // same set
	// Promote page 1, dirty it.
	for i := 0; i < 50; i++ {
		touch(b, pt, hot1)
	}
	if r, _ := b.Resident(0); !r {
		t.Fatal("page 1 not resident")
	}
	b.Access(mem.Request{Addr: hot1, Write: true, Eviction: true, Mapping: mem.Mapping{Known: true, Cached: true, Way: 0}})
	// Promote page 2 hard enough to evict page 1.
	var wbOff int
	for i := 0; i < 400; i++ {
		pte := pt.Translate(hot2)
		res := b.Access(mem.Request{Addr: hot2, Mapping: pte.Mapping()})
		for _, op := range res.Ops {
			if op.Target == mem.OffPackage && op.Write && op.Class == mem.ClassReplacement {
				wbOff += op.Bytes
			}
		}
		if r, _ := b.Resident(uint64(hot2) >> 12); r {
			break
		}
	}
	if r, _ := b.Resident(uint64(hot2) >> 12); !r {
		t.Fatal("page 2 never displaced page 1")
	}
	if wbOff != mem.PageBytes {
		t.Fatalf("dirty victim writeback %d bytes, want %d", wbOff, mem.PageBytes)
	}
}

func TestLargePageGeometry(t *testing.T) {
	pt := vm.NewPageTable()
	cfg := LargePageConfig(64 << 20) // 8 sets × 4 ways × 2 MB
	cfg.Seed = 3
	b := New(cfg, pt, nil, vm.DefaultCostModel(2700))
	if b.Name() != "Banshee 2M" {
		t.Fatalf("name %q", b.Name())
	}
	if len(b.md.sets) != 8 {
		t.Fatalf("sets %d, want 8", len(b.md.sets))
	}
	if b.lines != mem.LinesPerLargePage {
		t.Fatalf("lines per page %d", b.lines)
	}
	// Threshold: 32768 × 0.001 / 2 ≈ 16.4 — reachable with 5-bit counters.
	if b.threshold < 16 || b.threshold > 17 {
		t.Fatalf("large-page threshold %v", b.threshold)
	}
}

func TestLargePageReplacementMovesWholePage(t *testing.T) {
	pt := vm.NewPageTable()
	pt.DefaultLarge = true
	cfg := LargePageConfig(64 << 20)
	cfg.SamplingCoeff = 1.0 // sample every access so the test converges fast
	cfg.Threshold = 8       // keep the threshold reachable despite coeff=1
	cfg.CounterBits = 8
	b := New(cfg, pt, nil, vm.DefaultCostModel(2700))
	addr := mem.Addr(0x40000000)
	var fill int
	for i := 0; i < 300; i++ {
		pte := pt.Translate(addr)
		res := b.Access(mem.Request{Addr: addr, Size: mem.Page2M, Mapping: pte.Mapping()})
		for _, op := range res.Ops {
			if op.Target == mem.InPackage && op.Write && op.Class == mem.ClassReplacement {
				fill += op.Bytes
			}
		}
		if r, _ := b.Resident(uint64(addr) >> 21); r {
			break
		}
	}
	if fill != mem.LargeBytes {
		t.Fatalf("large page fill %d bytes, want %d", fill, mem.LargeBytes)
	}
}

func TestLRUPolicyReplacesEveryMiss(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.Policy = LRUReplaceOnMiss })
	for i := 0; i < 100; i++ {
		touch(b, pt, mem.Addr(uint64(i)<<12))
	}
	if b.remaps != 100 {
		t.Fatalf("LRU policy remapped %d of 100 misses", b.remaps)
	}
}

func TestFillStats(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.SamplingCoeff = 1.0 })
	for i := 0; i < 500; i++ {
		touch(b, pt, mem.Addr(uint64(i%20)<<12))
	}
	var s stats.Sim
	b.FillStats(&s)
	if s.Remaps == 0 || s.CounterSamples == 0 {
		t.Fatalf("stats not filled: %+v", s)
	}
}
