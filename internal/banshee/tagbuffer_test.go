package banshee

import (
	"testing"
	"testing/quick"
)

func TestTagBufferGeometry(t *testing.T) {
	tb := NewTagBuffer(1024, 8)
	if tb.Capacity() != 1024 {
		t.Fatalf("capacity %d", tb.Capacity())
	}
	for _, bad := range [][2]int{{0, 8}, {1024, 0}, {1000, 8}, {96, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v did not panic", bad)
				}
			}()
			NewTagBuffer(bad[0], bad[1])
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	if _, hit := tb.Lookup(42); hit {
		t.Fatal("empty buffer hit")
	}
	tb.InsertRemap(42, true, 3)
	m, hit := tb.Lookup(42)
	if !hit || !m.Known || !m.Cached || m.Way != 3 {
		t.Fatalf("lookup after insert = %+v hit=%v", m, hit)
	}
}

func TestRemapFillTracking(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	if tb.RemapFill() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	for i := uint64(0); i < 32; i++ {
		tb.InsertRemap(i, true, 0)
	}
	if got := tb.RemapFill(); got != 0.5 {
		t.Fatalf("remap fill %v, want 0.5", got)
	}
	// Clean inserts must not count toward the flush threshold.
	tb.InsertClean(1000, false, 0)
	if got := tb.RemapFill(); got != 0.5 {
		t.Fatalf("clean insert changed remap fill to %v", got)
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	tb.InsertRemap(7, true, 1)
	tb.InsertRemap(7, false, 0) // page evicted again
	m, hit := tb.Lookup(7)
	if !hit || m.Cached {
		t.Fatal("in-place update lost")
	}
	if tb.RemapFill() != 1.0/64 {
		t.Fatalf("duplicate insert double-counted: fill %v", tb.RemapFill())
	}
}

func TestCleanUpgradeToRemap(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	tb.InsertClean(9, true, 2)
	if tb.RemapFill() != 0 {
		t.Fatal("clean entry counted as remap")
	}
	tb.InsertRemap(9, false, 0)
	if tb.RemapFill() != 1.0/64 {
		t.Fatal("upgrade to remap not counted")
	}
}

func TestRemapEntriesPinned(t *testing.T) {
	// A set full of remap entries must reject new inserts rather than
	// evict un-flushed mappings (correctness: those mappings exist
	// nowhere else).
	tb := NewTagBuffer(16, 2)                      // 8 sets, 2 ways
	set0 := func(i uint64) uint64 { return i * 8 } // all map to set 0
	if !tb.InsertRemap(set0(1), true, 0) || !tb.InsertRemap(set0(2), true, 1) {
		t.Fatal("initial inserts failed")
	}
	if tb.InsertRemap(set0(3), true, 2) {
		t.Fatal("insert into remap-pinned set succeeded")
	}
	// Clean entries are evictable: after draining, inserts work again.
	tb.DrainRemaps()
	if !tb.InsertRemap(set0(3), true, 2) {
		t.Fatal("insert after drain failed")
	}
}

func TestCleanEntriesEvictableLRU(t *testing.T) {
	tb := NewTagBuffer(16, 2) // 8 sets, 2 ways
	set0 := func(i uint64) uint64 { return i * 8 }
	tb.InsertClean(set0(1), true, 0)
	tb.InsertClean(set0(2), true, 1)
	tb.Lookup(set0(1)) // refresh 1
	tb.InsertClean(set0(3), false, 0)
	if _, hit := tb.Lookup(set0(2)); hit {
		t.Fatal("LRU clean entry survived")
	}
	if _, hit := tb.Lookup(set0(1)); !hit {
		t.Fatal("MRU clean entry evicted")
	}
}

func TestDrainRemaps(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	tb.InsertRemap(1, true, 0)
	tb.InsertRemap(2, false, 0)
	tb.InsertClean(3, true, 1)
	rs := tb.DrainRemaps()
	if len(rs) != 2 {
		t.Fatalf("drained %d entries, want 2", len(rs))
	}
	if tb.RemapFill() != 0 {
		t.Fatal("remap count not cleared")
	}
	// Entries stay valid for lookups (they keep absorbing dirty-eviction
	// probes, §3.4).
	if _, hit := tb.Lookup(1); !hit {
		t.Fatal("drained entry no longer valid")
	}
	// Second drain is empty.
	if len(tb.DrainRemaps()) != 0 {
		t.Fatal("double drain returned entries")
	}
}

func TestBufferMappingConsistencyProperty(t *testing.T) {
	// Property: after any sequence of inserts, looking up a page
	// returns the most recent mapping inserted for it (remap entries
	// are never silently lost).
	f := func(ops []struct {
		Page   uint8
		Cached bool
		Way    uint8
	}) bool {
		tb := NewTagBuffer(64, 8)
		last := map[uint64]struct {
			cached bool
			way    uint8
		}{}
		for _, op := range ops {
			p := uint64(op.Page)
			if !tb.InsertRemap(p, op.Cached, op.Way%4) {
				tb.DrainRemaps()
				// Drained entries become evictable (their mappings now
				// live in the PTEs), so the guarantee below only covers
				// remaps inserted after the drain.
				last = map[uint64]struct {
					cached bool
					way    uint8
				}{}
				if !tb.InsertRemap(p, op.Cached, op.Way%4) {
					return false
				}
			}
			last[p] = struct {
				cached bool
				way    uint8
			}{op.Cached, op.Way % 4}
		}
		for p, want := range last {
			m, hit := tb.Lookup(p)
			if !hit || m.Cached != want.cached || m.Way != want.way {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	tb := NewTagBuffer(64, 8)
	tb.Lookup(5)
	tb.InsertRemap(5, true, 0)
	tb.Lookup(5)
	h, m := tb.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("hits/misses %d/%d", h, m)
	}
}
