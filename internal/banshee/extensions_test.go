package banshee

import (
	"testing"

	"banshee/internal/mem"
	"banshee/internal/vm"
)

func TestSetDuelingName(t *testing.T) {
	b, _, _ := testSystem(func(c *Config) { c.Policy = SetDueling })
	if b.Name() != "Banshee Duel" {
		t.Fatalf("name %q", b.Name())
	}
}

func TestSetDuelingLeadersVote(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) { c.Policy = SetDueling })
	sets := uint64(len(b.md.sets))
	// Misses to an FBR-leader set (set 0 mod duelPeriod) push psel up.
	for i := 0; i < 50; i++ {
		touch(b, pt, mem.Addr((uint64(i)*sets*uint64(duelPeriod))<<12))
	}
	if b.psel <= 0 {
		t.Fatalf("psel %d after FBR-leader misses, want positive", b.psel)
	}
	// Misses to an LRU-leader set (set 1 mod duelPeriod) push it down.
	start := b.psel
	for i := 0; i < 200; i++ {
		touch(b, pt, mem.Addr((uint64(i)*sets*uint64(duelPeriod)+1)<<12))
	}
	if b.psel >= start {
		t.Fatalf("psel %d did not fall after LRU-leader misses (was %d)", b.psel, start)
	}
}

func TestSetDuelingFollowersAdaptToStreams(t *testing.T) {
	// A pure streaming pattern (every page touched once) makes FBR
	// leaders miss constantly while LRU leaders at least absorb
	// re-touches; psel must drift positive so followers replace on miss.
	b, pt, _ := testSystem(func(c *Config) { c.Policy = SetDueling })
	// Stream whole pages: 8 line touches per page visit, pages never
	// revisited. Replace-on-miss leaders convert touches 2..8 into hits;
	// FBR leaders miss on all of them.
	for i := 0; i < 6000; i++ {
		base := mem.Addr(uint64(i) << 12)
		for l := 0; l < 8; l++ {
			touch(b, pt, base+mem.Addr(l*64))
		}
	}
	if b.psel <= 0 {
		t.Fatalf("psel %d after pure streaming, want positive (prefer replace-on-miss)", b.psel)
	}
	// Follower misses must now trigger replacements (LRU mode).
	before := b.remaps
	for i := 0; i < 1000; i++ {
		touch(b, pt, mem.Addr(uint64(1<<30+i*4096)))
	}
	if b.remaps == before {
		t.Fatal("followers did not replace on miss despite positive psel")
	}
}

func TestFootprintVariantName(t *testing.T) {
	b, _, _ := testSystem(func(c *Config) { c.Footprint = true })
	if b.Name() != "Banshee FP" {
		t.Fatalf("name %q", b.Name())
	}
}

func TestFootprintReducesReplacementBytes(t *testing.T) {
	moveBytes := func(fp bool) int {
		b, pt, _ := testSystem(func(c *Config) {
			c.SamplingCoeff = 1.0
			c.Footprint = fp
		})
		// Train the footprint tracker with sparse residencies: promote
		// pages, touch ~4 lines each, evict by promoting successors in
		// the same set.
		sets := uint64(len(b.md.sets))
		total := 0
		for round := 0; round < 30; round++ {
			page := uint64(round) * sets // all in set 0
			addr := mem.Addr(page << 12)
			for i := 0; i < 40; i++ {
				pte := pt.Translate(addr)
				res := b.Access(mem.Request{Addr: addr + mem.Addr((i%4)*64), Mapping: pte.Mapping()})
				for _, op := range res.Ops {
					if op.Class == mem.ClassReplacement && op.Target == mem.InPackage && op.Write {
						total += op.Bytes
					}
				}
			}
		}
		return total
	}
	full, fp := moveBytes(false), moveBytes(true)
	if fp >= full {
		t.Fatalf("footprint fills (%d B) not below whole-page fills (%d B)", fp, full)
	}
}

func TestFootprintTouchedTracking(t *testing.T) {
	b, pt, _ := testSystem(func(c *Config) {
		c.SamplingCoeff = 1.0
		c.Footprint = true
	})
	addr := mem.Addr(0x9000)
	for i := 0; i < 50; i++ {
		touch(b, pt, addr)
		if r, _ := b.Resident(uint64(addr) >> 12); r {
			break
		}
	}
	// Hit three distinct lines; the residency's touched set must grow.
	for l := 0; l < 3; l++ {
		touch(b, pt, addr+mem.Addr(l*64))
	}
	w := b.md.set(uint64(addr) >> 12).findCached(b.md.tagOf(uint64(addr) >> 12))
	if w < 0 {
		t.Fatal("page not resident")
	}
	if got := b.md.set(uint64(addr) >> 12).cached[w].touched.Count(); got < 3 {
		t.Fatalf("touched lines %d, want >= 3", got)
	}
}

func TestExtensionsComposeWithVM(t *testing.T) {
	// Both extensions must keep the lazy-coherence invariant intact.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Policy = SetDueling },
		func(c *Config) { c.Footprint = true },
	} {
		pt := vm.NewPageTable()
		tlbs := []*vm.TLB{vm.NewTLB(64)}
		cfg := DefaultConfig(1 << 20)
		cfg.MCs = 1
		cfg.TagBufferEntries = 64
		cfg.TagBufferWays = 8
		cfg.Seed = 5
		mutate(&cfg)
		b := New(cfg, pt, tlbs, vm.DefaultCostModel(2700))
		for i := 0; i < 30000; i++ {
			addr := mem.Addr(uint64(i*2654435761)%1024) << 12
			page := uint64(addr) >> 12
			pte := pt.Translate(addr)
			mapping := pte.Mapping()
			if m, hit := b.bufferFor(page).Lookup(page); hit {
				mapping = m
			}
			resident, _ := b.Resident(page)
			if mapping.Cached != resident {
				t.Fatalf("%s: mapping/metadata divergence at %d", b.Name(), i)
			}
			b.Access(mem.Request{Addr: addr, Mapping: pte.Mapping()})
		}
	}
}
