// Package banshee implements the paper's contribution: a page-granularity
// DRAM cache that tracks contents through PTE/TLB extension bits, keeps
// recently remapped pages in per-memory-controller Tag Buffers so PTE and
// TLB updates can be batched lazily (§3), and replaces pages with a
// sampling-based, bandwidth-aware frequency-based replacement policy
// (§4, Algorithm 1). Large (2 MB) pages are supported by instantiating
// the same machinery at large-page granularity (§4.3).
package banshee

import (
	"fmt"

	"banshee/internal/mem"
)

// tbEntry is one tag-buffer slot (Fig. 2): physical page tag, valid bit,
// cached/way mapping, and the remap bit marking mappings not yet written
// back to the page table.
type tbEntry struct {
	page   uint64
	valid  bool
	remap  bool
	cached bool
	way    uint8
	stamp  uint64 // LRU among remap-unset entries
}

// TagBuffer is one memory controller's buffer of recently remapped
// pages (§3.3). It is set-associative with LRU replacement masked to
// entries whose remap bit is unset: remapped entries are pinned until a
// flush writes them to the page table.
type TagBuffer struct {
	sets [][]tbEntry
	mask uint64
	tick uint64

	remapCount int // live entries with remap set

	// drained is the scratch slice DrainRemaps refills on each call,
	// keeping the flush routine allocation-free in steady state.
	drained []Remapped

	hits, misses uint64
}

// NewTagBuffer builds a buffer with `entries` total slots organized as
// `ways`-way sets. entries/ways must be a power of two.
func NewTagBuffer(entries, ways int) *TagBuffer {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("banshee: bad tag buffer geometry %d entries / %d ways", entries, ways))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("banshee: tag buffer set count %d must be a power of two", nsets))
	}
	tb := &TagBuffer{sets: make([][]tbEntry, nsets), mask: uint64(nsets - 1)}
	for i := range tb.sets {
		tb.sets[i] = make([]tbEntry, ways)
	}
	return tb
}

// Capacity returns the total number of slots.
func (tb *TagBuffer) Capacity() int { return len(tb.sets) * len(tb.sets[0]) }

// RemapFill returns the fraction of slots holding un-flushed remaps —
// the quantity compared against the flush threshold (70% in Table 3).
func (tb *TagBuffer) RemapFill() float64 {
	return float64(tb.remapCount) / float64(tb.Capacity())
}

// Lookup returns the buffered mapping for page, if present. A hit
// overrides whatever mapping the request carried from the TLB (§3.2).
func (tb *TagBuffer) Lookup(page uint64) (mem.Mapping, bool) {
	tb.tick++
	set := tb.sets[page&tb.mask]
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].stamp = tb.tick
			tb.hits++
			return mem.Mapping{Known: true, Cached: set[i].cached, Way: set[i].way}, true
		}
	}
	tb.misses++
	return mem.Mapping{}, false
}

// InsertRemap records a just-remapped page's new mapping. It returns
// false if the set has no insertable slot (every way pinned by remap) —
// the caller must flush and retry. The paper's flush-at-70% policy makes
// this rare but the case must be handled for correctness.
func (tb *TagBuffer) InsertRemap(page uint64, cached bool, way uint8) bool {
	return tb.insert(page, cached, way, true)
}

// InsertClean caches a PTE-consistent mapping (remap unset) to spare
// future dirty-eviction tag probes (§3.3). Clean entries are evictable;
// insertion failure is acceptable and ignored by callers.
func (tb *TagBuffer) InsertClean(page uint64, cached bool, way uint8) bool {
	return tb.insert(page, cached, way, false)
}

func (tb *TagBuffer) insert(page uint64, cached bool, way uint8, remap bool) bool {
	tb.tick++
	set := tb.sets[page&tb.mask]
	// Update in place if present.
	for i := range set {
		if set[i].valid && set[i].page == page {
			if remap && !set[i].remap {
				tb.remapCount++
			}
			set[i].cached = cached
			set[i].way = way
			set[i].remap = set[i].remap || remap
			set[i].stamp = tb.tick
			return true
		}
	}
	// Choose a victim: an invalid slot, else the LRU among remap-unset
	// slots (the remap bits mask the LRU algorithm, §3.3).
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		for i := range set {
			if set[i].remap {
				continue
			}
			if victim < 0 || set[i].stamp < set[victim].stamp {
				victim = i
			}
		}
	}
	if victim < 0 {
		return false // all ways pinned by remaps: caller must flush
	}
	if remap {
		tb.remapCount++
	}
	set[victim] = tbEntry{page: page, valid: true, remap: remap, cached: cached, way: way, stamp: tb.tick}
	return true
}

// Remapped returns every entry whose remap bit is set; the software
// flush routine applies these to the page table.
type Remapped struct {
	Page   uint64
	Cached bool
	Way    uint8
}

// DrainRemaps returns all remapped entries and clears their remap bits.
// Entries stay valid (and evictable) to keep serving dirty-eviction
// lookups (§3.4). The returned slice is reused by the next drain; the
// caller must consume it before draining again.
func (tb *TagBuffer) DrainRemaps() []Remapped {
	out := tb.drained[:0]
	for s := range tb.sets {
		set := tb.sets[s]
		for i := range set {
			if set[i].valid && set[i].remap {
				out = append(out, Remapped{Page: set[i].page, Cached: set[i].cached, Way: set[i].way})
				set[i].remap = false
			}
		}
	}
	tb.remapCount = 0
	tb.drained = out
	return out
}

// Stats returns hit/miss counters (diagnostic).
func (tb *TagBuffer) Stats() (hits, misses uint64) { return tb.hits, tb.misses }
