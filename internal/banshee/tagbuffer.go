// Package banshee implements the paper's contribution: a page-granularity
// DRAM cache that tracks contents through PTE/TLB extension bits, keeps
// recently remapped pages in per-memory-controller Tag Buffers so PTE and
// TLB updates can be batched lazily (§3), and replaces pages with a
// sampling-based, bandwidth-aware frequency-based replacement policy
// (§4, Algorithm 1). Large (2 MB) pages are supported by instantiating
// the same machinery at large-page granularity (§4.3).
package banshee

import (
	"fmt"

	"banshee/internal/mem"
)

// Tag-buffer entry state bits (Fig. 2): valid, the remap bit marking
// mappings not yet written back to the page table, and the cached bit
// of the buffered mapping.
const (
	tbValid uint8 = 1 << iota
	tbRemap
	tbCached
)

// TagBuffer is one memory controller's buffer of recently remapped
// pages (§3.3). It is set-associative with LRU replacement masked to
// entries whose remap bit is unset: remapped entries are pinned until a
// flush writes them to the page table.
//
// Entry state is struct-of-arrays over flat backing storage (slot =
// set×ways+way): the lookup on every LLC miss scans a contiguous run
// of page tags, touching the state/way/stamp arrays only on a hit, and
// DrainRemaps's full sweep is one linear pass over the state bytes.
type TagBuffer struct {
	pages  []uint64
	stamps []uint64 // LRU among remap-unset entries
	state  []uint8
	ways   []uint8
	nways  int
	mask   uint64
	tick   uint64

	remapCount int // live entries with remap set

	// drained is the scratch slice DrainRemaps refills on each call,
	// keeping the flush routine allocation-free in steady state.
	drained []Remapped

	hits, misses uint64
}

// NewTagBuffer builds a buffer with `entries` total slots organized as
// `ways`-way sets. entries/ways must be a power of two.
func NewTagBuffer(entries, ways int) *TagBuffer {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("banshee: bad tag buffer geometry %d entries / %d ways", entries, ways))
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("banshee: tag buffer set count %d must be a power of two", nsets))
	}
	return &TagBuffer{
		pages:  make([]uint64, entries),
		stamps: make([]uint64, entries),
		state:  make([]uint8, entries),
		ways:   make([]uint8, entries),
		nways:  ways,
		mask:   uint64(nsets - 1),
	}
}

// Capacity returns the total number of slots.
func (tb *TagBuffer) Capacity() int { return len(tb.pages) }

// RemapFill returns the fraction of slots holding un-flushed remaps —
// the quantity compared against the flush threshold (70% in Table 3).
func (tb *TagBuffer) RemapFill() float64 {
	return float64(tb.remapCount) / float64(tb.Capacity())
}

// Lookup returns the buffered mapping for page, if present. A hit
// overrides whatever mapping the request carried from the TLB (§3.2).
func (tb *TagBuffer) Lookup(page uint64) (mem.Mapping, bool) {
	tb.tick++
	base := int(page&tb.mask) * tb.nways
	pages := tb.pages[base : base+tb.nways]
	state := tb.state[base : base+tb.nways]
	for i, p := range pages {
		if p == page && state[i]&tbValid != 0 {
			s := base + i
			tb.stamps[s] = tb.tick
			tb.hits++
			return mem.Mapping{Known: true, Cached: state[i]&tbCached != 0, Way: tb.ways[s]}, true
		}
	}
	tb.misses++
	return mem.Mapping{}, false
}

// InsertRemap records a just-remapped page's new mapping. It returns
// false if the set has no insertable slot (every way pinned by remap) —
// the caller must flush and retry. The paper's flush-at-70% policy makes
// this rare but the case must be handled for correctness.
func (tb *TagBuffer) InsertRemap(page uint64, cached bool, way uint8) bool {
	return tb.insert(page, cached, way, true)
}

// InsertClean caches a PTE-consistent mapping (remap unset) to spare
// future dirty-eviction tag probes (§3.3). Clean entries are evictable;
// insertion failure is acceptable and ignored by callers.
func (tb *TagBuffer) InsertClean(page uint64, cached bool, way uint8) bool {
	return tb.insert(page, cached, way, false)
}

func (tb *TagBuffer) insert(page uint64, cached bool, way uint8, remap bool) bool {
	tb.tick++
	base := int(page&tb.mask) * tb.nways
	// Update in place if present.
	for s := base; s < base+tb.nways; s++ {
		if tb.state[s]&tbValid != 0 && tb.pages[s] == page {
			if remap && tb.state[s]&tbRemap == 0 {
				tb.remapCount++
			}
			st := tb.state[s] &^ tbCached
			if cached {
				st |= tbCached
			}
			if remap {
				st |= tbRemap
			}
			tb.state[s] = st
			tb.ways[s] = way
			tb.stamps[s] = tb.tick
			return true
		}
	}
	// Choose a victim: an invalid slot, else the LRU among remap-unset
	// slots (the remap bits mask the LRU algorithm, §3.3).
	victim := -1
	for s := base; s < base+tb.nways; s++ {
		if tb.state[s]&tbValid == 0 {
			victim = s
			break
		}
	}
	if victim < 0 {
		for s := base; s < base+tb.nways; s++ {
			if tb.state[s]&tbRemap != 0 {
				continue
			}
			if victim < 0 || tb.stamps[s] < tb.stamps[victim] {
				victim = s
			}
		}
	}
	if victim < 0 {
		return false // all ways pinned by remaps: caller must flush
	}
	st := tbValid
	if cached {
		st |= tbCached
	}
	if remap {
		st |= tbRemap
		tb.remapCount++
	}
	tb.pages[victim] = page
	tb.state[victim] = st
	tb.ways[victim] = way
	tb.stamps[victim] = tb.tick
	return true
}

// Remapped returns every entry whose remap bit is set; the software
// flush routine applies these to the page table.
type Remapped struct {
	Page   uint64
	Cached bool
	Way    uint8
}

// DrainRemaps returns all remapped entries and clears their remap bits.
// Entries stay valid (and evictable) to keep serving dirty-eviction
// lookups (§3.4). The returned slice is reused by the next drain; the
// caller must consume it before draining again.
func (tb *TagBuffer) DrainRemaps() []Remapped {
	out := tb.drained[:0]
	for s, st := range tb.state {
		if st&(tbValid|tbRemap) == tbValid|tbRemap {
			out = append(out, Remapped{Page: tb.pages[s], Cached: st&tbCached != 0, Way: tb.ways[s]})
			tb.state[s] = st &^ tbRemap
		}
	}
	tb.remapCount = 0
	tb.drained = out
	return out
}

// Stats returns hit/miss counters (diagnostic).
func (tb *TagBuffer) Stats() (hits, misses uint64) { return tb.hits, tb.misses }
