package banshee

import (
	"fmt"
	"math/bits"

	"banshee/internal/mc"
)

// The per-set metadata of Fig. 3: 32 bytes per set holding tags and
// frequency counters for the cached pages (one per way, with valid and
// dirty bits) and for the candidate pages being considered for
// insertion. With 4 ways this is 4 cached + 5 candidate entries, 5-bit
// counters — 0.2% overhead. The metadata lives in dedicated tag rows of
// the in-package DRAM; every load or store of it costs one 32 B burst,
// which is exactly the traffic the sampling policy minimizes.

// metaBytes is the metadata size per set moved on each sampled access.
const metaBytes = 32

type cachedEntry struct {
	tag   uint64
	count uint32
	valid bool
	dirty bool
	// touched tracks the lines referenced during this residency; only
	// consulted by the footprint extension (idealized predictor state,
	// kept controller-side at no traffic cost, like Unison's grant).
	touched mc.Touched
}

type candEntry struct {
	tag   uint64
	count uint32
	valid bool
}

type metaSet struct {
	cached []cachedEntry
	cand   []candEntry
}

// findCached returns the way holding tag, or -1.
func (m *metaSet) findCached(tag uint64) int {
	for i := range m.cached {
		if m.cached[i].valid && m.cached[i].tag == tag {
			return i
		}
	}
	return -1
}

// findCand returns the candidate index holding tag, or -1.
func (m *metaSet) findCand(tag uint64) int {
	for i := range m.cand {
		if m.cand[i].valid && m.cand[i].tag == tag {
			return i
		}
	}
	return -1
}

// minCached returns the way index of the valid cached page with the
// minimal counter, or -1 if the set has an invalid (free) way, in which
// case the free way's index is returned with found=false.
func (m *metaSet) minCached() (way int, free bool) {
	minWay := -1
	for i := range m.cached {
		if !m.cached[i].valid {
			return i, true
		}
		if minWay < 0 || m.cached[i].count < m.cached[minWay].count {
			minWay = i
		}
	}
	return minWay, false
}

// halve divides every counter in the set by two (the hardware shift on
// counter saturation, Algorithm 1 lines 10-14).
func (m *metaSet) halve() {
	for i := range m.cached {
		m.cached[i].count /= 2
	}
	for i := range m.cand {
		m.cand[i].count /= 2
	}
}

// metadata is the full tag/counter store: one metaSet per cache set.
// The per-set cached/cand slices are views into two flat backing arrays
// (all cached entries contiguous, all candidate entries contiguous), so
// walking a set — or the whole store, as halve-on-saturation and the
// tests do — stays within one allocation instead of hopping across
// per-set slices. setBits is precomputed: tagOf/pageOf used to rederive
// log2(sets) with a shift loop on every call, which profiled on the
// replacement path.
type metadata struct {
	sets     []metaSet
	maxCount uint32
	setBits  uint
	setMask  uint64
}

func newMetadata(nsets, ways, candidates int, counterBits int) *metadata {
	if counterBits <= 0 || counterBits > 31 {
		panic(fmt.Sprintf("banshee: counter bits %d out of range", counterBits))
	}
	md := &metadata{
		sets:     make([]metaSet, nsets),
		maxCount: 1<<uint(counterBits) - 1,
		setMask:  uint64(nsets - 1),
		setBits:  uint(bits.OnesCount64(uint64(nsets - 1))),
	}
	cachedAll := make([]cachedEntry, nsets*ways)
	candAll := make([]candEntry, nsets*candidates)
	for i := range md.sets {
		md.sets[i] = metaSet{
			cached: cachedAll[i*ways : (i+1)*ways : (i+1)*ways],
			cand:   candAll[i*candidates : (i+1)*candidates : (i+1)*candidates],
		}
	}
	return md
}

// set returns the metadata set for a page, using the low page-number
// bits as the set index (the caller guarantees power-of-two set counts).
func (md *metadata) set(page uint64) *metaSet {
	return &md.sets[page&md.setMask]
}

// tagOf strips the set-index bits from a page number.
func (md *metadata) tagOf(page uint64) uint64 {
	return page >> md.setBits
}

// pageOf reconstructs a page number from a set index and tag.
func (md *metadata) pageOf(setIdx int, tag uint64) uint64 {
	return tag<<md.setBits | uint64(setIdx)
}

// setIndex returns the set index for a page.
func (md *metadata) setIndex(page uint64) int {
	return int(page & md.setMask)
}
