package banshee

import (
	"fmt"

	"banshee/internal/mc"
	"banshee/internal/mem"
	"banshee/internal/stats"
	"banshee/internal/util"
	"banshee/internal/vm"
)

// Policy selects the replacement policy variant. The non-default
// variants exist for the Fig. 7 ablation.
type Policy uint8

const (
	// FBRSampled is Banshee proper: frequency-based replacement with
	// sampled counter maintenance (Algorithm 1).
	FBRSampled Policy = iota
	// FBRNoSample updates counters on every access (CHOP-like),
	// doubling metadata traffic.
	FBRNoSample
	// LRUReplaceOnMiss replaces the LRU page on every miss with a full
	// page fill (Unison-like but without a footprint cache).
	LRUReplaceOnMiss
	// SetDueling dynamically selects between FBRSampled and
	// LRUReplaceOnMiss via set dueling [30], the extension §5.2 suggests
	// for streaming workloads (lbm) where replace-on-every-miss wins:
	// two small leader groups run each policy unconditionally; follower
	// sets adopt whichever leader group misses less.
	SetDueling
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FBRSampled:
		return "Banshee"
	case FBRNoSample:
		return "Banshee FBR no-sample"
	case LRUReplaceOnMiss:
		return "Banshee LRU"
	case SetDueling:
		return "Banshee Duel"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Config parameterizes a Banshee instance (defaults follow Table 3).
type Config struct {
	CapacityBytes int
	Ways          int     // 4
	PageBytes     int     // 4096, or mem.LargeBytes for §4.3 large pages
	Candidates    int     // candidate entries per set; 0 → Ways+1
	CounterBits   int     // 5
	SamplingCoeff float64 // 0.1 (0.001 for large pages)
	// Threshold overrides the replacement threshold; 0 → the paper's
	// default page_lines × SamplingCoeff / 2.
	Threshold float64
	// Footprint enables the orthogonal footprint-caching extension the
	// paper's related-work section points at: replacements move only
	// the page's predicted footprint (idealized predictor, 4-line
	// granularity, as granted to Unison/TDC) instead of the whole page.
	Footprint        bool
	TagBufferEntries int     // 1024 per MC
	TagBufferWays    int     // 8
	FlushThreshold   float64 // 0.7
	MCs              int     // 4
	Policy           Policy
	Seed             uint64
}

// DefaultConfig returns Table 3's configuration for the given capacity.
func DefaultConfig(capacityBytes int) Config {
	return Config{
		CapacityBytes:    capacityBytes,
		Ways:             4,
		PageBytes:        mem.PageBytes,
		CounterBits:      5,
		SamplingCoeff:    0.1,
		TagBufferEntries: 1024,
		TagBufferWays:    8,
		FlushThreshold:   0.7,
		MCs:              4,
	}
}

// LargePageConfig returns the §5.4.1 large-page configuration.
func LargePageConfig(capacityBytes int) Config {
	c := DefaultConfig(capacityBytes)
	c.PageBytes = mem.LargeBytes
	c.SamplingCoeff = 0.001
	return c
}

// Banshee is the scheme instance. Not safe for concurrent use.
type Banshee struct {
	cfg       Config
	md        *metadata
	tbs       []*TagBuffer
	rng       *util.RNG
	missRate  *mc.MissRateTracker
	pt        *vm.PageTable
	tlbs      []*vm.TLB
	cost      vm.CostModel
	pageShift uint
	mcMask    uint64 // len(tbs)-1 when a power of two (the common case)
	mcPow2    bool
	lines     int // lines per (configured) page
	threshold float64
	lruTick   uint32
	footprint mc.FootprintTracker // used when cfg.Footprint

	// Set-dueling state (Policy == SetDueling): psel counts which
	// leader group misses more; positive favors always-replace.
	psel int

	// res is the scratch Result reused by every Access (see the
	// ownership note on mc.Result): steady-state accesses allocate
	// nothing once the slices have grown to their working size.
	res mc.Result

	// Counters surfaced via FillStats.
	remaps     uint64
	flushes    uint64
	probes     uint64
	samples    uint64
	shootdowns uint64
	ptesSynced uint64
}

// New builds a Banshee instance bound to the system's page table and
// TLBs (the software half of the co-design). It panics on invalid
// geometry — configuration is an experiment-setup concern.
func New(cfg Config, pt *vm.PageTable, tlbs []*vm.TLB, cost vm.CostModel) *Banshee {
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("banshee: ways must be positive, got %d", cfg.Ways))
	}
	if cfg.PageBytes != mem.PageBytes && cfg.PageBytes != mem.LargeBytes {
		panic(fmt.Sprintf("banshee: page size %d not supported (4 KB or 2 MB)", cfg.PageBytes))
	}
	if cfg.Candidates == 0 {
		cfg.Candidates = cfg.Ways + 1
	}
	if cfg.CounterBits == 0 {
		cfg.CounterBits = 5
	}
	if cfg.SamplingCoeff <= 0 || cfg.SamplingCoeff > 1 {
		panic(fmt.Sprintf("banshee: sampling coefficient %v out of (0,1]", cfg.SamplingCoeff))
	}
	if cfg.MCs <= 0 {
		cfg.MCs = 1
	}
	if cfg.FlushThreshold <= 0 || cfg.FlushThreshold > 1 {
		cfg.FlushThreshold = 0.7
	}
	nsets := cfg.CapacityBytes / cfg.PageBytes / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("banshee: capacity %d with %d ways × %d B pages gives non-power-of-two set count %d",
			cfg.CapacityBytes, cfg.Ways, cfg.PageBytes, nsets))
	}
	lines := cfg.PageBytes / mem.LineBytes
	b := &Banshee{
		cfg:      cfg,
		md:       newMetadata(nsets, cfg.Ways, cfg.Candidates, cfg.CounterBits),
		rng:      util.NewRNG(cfg.Seed ^ 0xBA45EE),
		missRate: mc.NewMissRateTracker(0),
		pt:       pt,
		tlbs:     tlbs,
		cost:     cost,
		lines:    lines,
	}
	for s := uint(0); 1<<s < cfg.PageBytes; s++ {
		b.pageShift = s + 1
	}
	b.threshold = cfg.Threshold
	derived := b.threshold == 0
	if derived {
		coeff := cfg.SamplingCoeff
		if cfg.Policy == FBRNoSample {
			coeff = 1
		}
		b.threshold = float64(lines) * coeff / 2
	}
	if b.threshold >= float64(b.md.maxCount) {
		if !derived {
			panic(fmt.Sprintf("banshee: threshold %.1f unreachable with %d-bit counters", b.threshold, cfg.CounterBits))
		}
		// The paper pairs the counter width with the sampling
		// coefficient (5 bits suffice at 10%); when a sweep raises the
		// coefficient, widen the counters so the derived threshold
		// stays reachable — the hardware analogue of provisioning
		// counters for the chosen sample rate.
		bits := cfg.CounterBits
		for ; bits < 31 && b.threshold >= float64(uint32(1)<<uint(bits)-1); bits++ {
		}
		b.md = newMetadata(nsets, cfg.Ways, cfg.Candidates, bits)
	}
	for i := 0; i < cfg.MCs; i++ {
		b.tbs = append(b.tbs, NewTagBuffer(cfg.TagBufferEntries, cfg.TagBufferWays))
	}
	if n := uint64(len(b.tbs)); n&(n-1) == 0 {
		b.mcPow2, b.mcMask = true, n-1
	}
	return b
}

// Name implements mc.Scheme.
func (b *Banshee) Name() string {
	switch b.cfg.Policy {
	case FBRNoSample:
		return "Banshee FBR no-sample"
	case LRUReplaceOnMiss:
		return "Banshee LRU"
	case SetDueling:
		return "Banshee Duel"
	}
	if b.cfg.PageBytes == mem.LargeBytes {
		return "Banshee 2M"
	}
	if b.cfg.Footprint {
		return "Banshee FP"
	}
	return "Banshee"
}

// pageOf maps an address to this instance's page number.
func (b *Banshee) pageOf(a mem.Addr) uint64 { return uint64(a) >> b.pageShift }

// frameKey converts a Banshee page number to the page-table frame key
// (4 KB frame units).
func (b *Banshee) frameKey(page uint64) uint64 {
	return page * uint64(b.cfg.PageBytes/mem.PageBytes)
}

func (b *Banshee) bufferFor(page uint64) *TagBuffer {
	if b.mcPow2 {
		return b.tbs[page&b.mcMask]
	}
	return b.tbs[page%uint64(len(b.tbs))]
}

// Access implements mc.Scheme.
func (b *Banshee) Access(req mem.Request) mc.Result {
	b.res.Hit = false
	b.res.Ops = b.res.Ops[:0]
	b.res.SW = b.res.SW[:0]
	b.access(req, &b.res)
	return b.res
}

// access is the Access body, appending into the caller-owned result.
func (b *Banshee) access(req mem.Request, res *mc.Result) {
	addr := mem.LineAddr(req.Addr)
	page := b.pageOf(addr)
	tb := b.bufferFor(page)

	// Resolve the mapping: tag buffer overrides the request-carried
	// PTE/TLB bits; dirty evictions may carry nothing and need a probe.
	mapping, tbHit := tb.Lookup(page)
	if !tbHit {
		mapping = req.Mapping
	}
	if !mapping.Known {
		// Tag probe in the DRAM cache's metadata rows (§3.3). Off the
		// critical path: only evictions lack mappings.
		b.probes++
		res.Ops = append(res.Ops, mem.Op{
			Target: mem.InPackage, Addr: addr, Bytes: metaBytes, Class: mem.ClassTag,
		})
		way := b.md.set(page).findCached(b.md.tagOf(page))
		mapping = mem.Mapping{Known: true, Cached: way >= 0, Way: uint8(max(way, 0))}
		// Park the clean mapping in the buffer to spare future probes.
		tb.InsertClean(page, mapping.Cached, mapping.Way)
	}

	if req.Eviction {
		b.handleEviction(addr, page, mapping, res)
		return
	}

	// Demand access: the mapping tells us where the data is — no tag
	// access on the read path at all (Table 1: hit 64 B, miss 64 B).
	hit := mapping.Cached
	b.missRate.Observe(!hit)
	if hit {
		if b.cfg.Footprint {
			if w := b.md.set(page).findCached(b.md.tagOf(page)); w >= 0 {
				b.md.set(page).cached[w].touched.Set(mem.LineInPage(addr))
			}
		}
		res.Hit = true
		res.Ops = append(res.Ops, mem.Op{
			Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes,
			Class: mem.ClassHitData, Stage: 0, Critical: true,
		})
	} else {
		res.Ops = append(res.Ops, mem.Op{
			Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes,
			Class: mem.ClassMissData, Stage: 0, Critical: true,
		})
	}

	switch b.cfg.Policy {
	case LRUReplaceOnMiss:
		b.lruPolicy(page, hit, res)
	case SetDueling:
		b.duelPolicy(page, hit, res)
	default:
		b.fbrPolicy(page, hit, res)
	}
}

// Set-dueling constants: every duelPeriod-th set leads for FBR, the
// next one for always-replace LRU; pselMax bounds the saturating
// selector.
const (
	duelPeriod = 32
	pselMax    = 1024
)

// duelPolicy dispatches to FBR or replace-on-miss LRU per the dueling
// sets [30]: leader sets always run their policy and vote with their
// misses; follower sets adopt the current winner.
func (b *Banshee) duelPolicy(page uint64, hit bool, res *mc.Result) {
	setIdx := b.md.setIndex(page)
	switch setIdx % duelPeriod {
	case 0: // FBR leader: its misses push psel toward LRU
		if !hit && b.psel < pselMax {
			b.psel++
		}
		b.fbrPolicy(page, hit, res)
	case 1: // LRU leader: its misses push psel toward FBR
		if !hit && b.psel > -pselMax {
			b.psel--
		}
		b.lruPolicy(page, hit, res)
	default: // follower
		if b.psel > 0 {
			b.lruPolicy(page, hit, res)
		} else {
			b.fbrPolicy(page, hit, res)
		}
	}
}

// handleEviction routes an LLC dirty write-back and marks the page
// dirty in the (in-controller view of the) metadata.
func (b *Banshee) handleEviction(addr mem.Addr, page uint64, mapping mem.Mapping, res *mc.Result) {
	if mapping.Cached {
		if w := b.md.set(page).findCached(b.md.tagOf(page)); w >= 0 {
			b.md.set(page).cached[w].dirty = true
		}
		res.Hit = true
		res.Ops = append(res.Ops, mem.Op{
			Target: mem.InPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassHitData,
		})
		return
	}
	res.Ops = append(res.Ops, mem.Op{
		Target: mem.OffPackage, Addr: addr, Bytes: mem.LineBytes, Write: true, Class: mem.ClassReplacement,
	})
}

// fbrPolicy is Algorithm 1: sampled counter maintenance and
// bandwidth-aware frequency-based replacement.
func (b *Banshee) fbrPolicy(page uint64, hit bool, res *mc.Result) {
	sampleRate := 1.0
	if b.cfg.Policy == FBRSampled {
		sampleRate = b.missRate.Rate() * b.cfg.SamplingCoeff
	}
	if !b.rng.Bool(sampleRate) {
		return // common case: no metadata access at all
	}
	b.samples++
	pageAddr := mem.Addr(page << b.pageShift)
	// Load the set's metadata (one 32 B burst).
	res.Ops = append(res.Ops, mem.Op{
		Target: mem.InPackage, Addr: pageAddr, Bytes: metaBytes, Class: mem.ClassCounter,
	})
	set := b.md.set(page)
	tag := b.md.tagOf(page)

	if w := set.findCached(tag); w >= 0 {
		set.cached[w].count++
		if set.cached[w].count >= b.md.maxCount {
			set.halve()
		}
	} else if ci := set.findCand(tag); ci >= 0 {
		set.cand[ci].count++
		if set.cand[ci].count >= b.md.maxCount {
			set.halve()
		}
		victim, free := set.minCached()
		trigger := free
		if !free {
			trigger = float64(set.cand[ci].count) > float64(set.cached[victim].count)+b.threshold
		}
		if trigger {
			b.replace(page, set, ci, victim, res)
		}
	} else {
		// Page not tracked: probabilistically claim a candidate slot
		// (Algorithm 1 lines 17-23).
		vi := -1
		for i := range set.cand {
			if !set.cand[i].valid {
				vi = i
				break
			}
		}
		if vi < 0 {
			vi = b.rng.Intn(len(set.cand))
		}
		v := &set.cand[vi]
		if !v.valid || v.count == 0 || b.rng.Bool(1.0/float64(v.count)) {
			*v = candEntry{tag: tag, count: 1, valid: true}
		}
	}
	// Store the metadata back (one 32 B burst).
	res.Ops = append(res.Ops, mem.Op{
		Target: mem.InPackage, Addr: pageAddr, Bytes: metaBytes, Write: true, Class: mem.ClassCounter,
	})
}

// replace swaps the candidate at ci into cached way `victim`, generating
// the page-movement traffic and the lazy-coherence bookkeeping.
func (b *Banshee) replace(page uint64, set *metaSet, ci, victim int, res *mc.Result) {
	b.remaps++
	incomingCount := set.cand[ci].count
	pageAddr := mem.Addr(page << b.pageShift)
	// Incoming page: whole-page transfer plus the 32 B tag write
	// (Table 1: "32B tag + page size"). With the footprint extension
	// only the predicted footprint moves.
	moveBytes := b.cfg.PageBytes
	if b.cfg.Footprint {
		moveBytes = b.footprint.Lines() * mem.LineBytes
	}
	res.Ops = append(res.Ops,
		mem.Op{Target: mem.OffPackage, Addr: pageAddr, Bytes: moveBytes, Class: mem.ClassReplacement},
		mem.Op{Target: mem.InPackage, Addr: pageAddr, Bytes: moveBytes, Write: true, Class: mem.ClassReplacement},
		mem.Op{Target: mem.InPackage, Addr: pageAddr, Bytes: metaBytes, Write: true, Class: mem.ClassTag},
	)
	v := set.cached[victim]
	setIdx := b.md.setIndex(page)
	if v.valid {
		victimPage := b.md.pageOf(setIdx, v.tag)
		victimAddr := mem.Addr(victimPage << b.pageShift)
		if b.cfg.Footprint {
			b.footprint.Record(v.touched.Count())
		}
		if v.dirty {
			wb := b.cfg.PageBytes
			if b.cfg.Footprint {
				wb = v.touched.Count() * mem.LineBytes
				if wb == 0 {
					wb = mem.LineBytes
				}
			}
			res.Ops = append(res.Ops,
				mem.Op{Target: mem.InPackage, Addr: victimAddr, Bytes: wb, Class: mem.ClassReplacement},
				mem.Op{Target: mem.OffPackage, Addr: victimAddr, Bytes: wb, Write: true, Class: mem.ClassReplacement},
			)
		}
		// The victim becomes a candidate in the slot the incoming page
		// vacates, keeping its counter so it must out-score the new
		// resident by the threshold to come back (anti-thrash, §4.2.2).
		set.cand[ci] = candEntry{tag: v.tag, count: v.count, valid: true}
		b.noteRemap(victimPage, false, 0, res)
	} else {
		set.cand[ci] = candEntry{}
	}
	set.cached[victim] = cachedEntry{tag: b.md.tagOf(page), count: incomingCount, valid: true}
	b.noteRemap(page, true, uint8(victim), res)
}

// noteRemap records a mapping change in the right tag buffer and, if a
// buffer crossed its fill threshold, runs the software PTE/TLB
// synchronization routine (§3.4).
func (b *Banshee) noteRemap(page uint64, cached bool, way uint8, res *mc.Result) {
	tb := b.bufferFor(page)
	if !tb.InsertRemap(page, cached, way) {
		// Set exhausted by pinned remaps: flush immediately, then the
		// insert must succeed.
		b.flush(res)
		if !tb.InsertRemap(page, cached, way) {
			panic("banshee: tag buffer insert failed after flush")
		}
		return
	}
	if tb.RemapFill() >= b.cfg.FlushThreshold {
		b.flush(res)
	}
}

// flush is the software routine: drain every MC's tag buffer, apply the
// mappings to the page table via the OS reverse map, and shoot down all
// TLBs. The caller's cores pay the cost through mc.SWCost.
func (b *Banshee) flush(res *mc.Result) {
	b.flushes++
	var ptes int
	for _, tb := range b.tbs {
		for _, r := range tb.DrainRemaps() {
			ptes += b.pt.SetCached(b.frameKey(r.Page), r.Cached, r.Way)
		}
	}
	for _, t := range b.tlbs {
		t.Flush()
	}
	b.shootdowns++
	b.ptesSynced += uint64(ptes)
	res.SW = append(res.SW, mc.SWCost{
		InitiatorCycles: b.cost.PTEUpdateCycles +
			uint64(ptes)*b.cost.PerPTETouchCycles +
			b.cost.ShootdownInitiator,
		AllCoresCycles: b.cost.ShootdownSlave,
	})
}

// lruPolicy is the Fig. 7 "Banshee LRU" ablation: page-granularity LRU
// with replacement on every miss and whole-page fills. Mapping still
// lives in PTEs/TLBs; LRU state updates cost one metadata read+write
// per access, like Unison's tag update.
func (b *Banshee) lruPolicy(page uint64, hit bool, res *mc.Result) {
	b.lruTick++
	pageAddr := mem.Addr(page << b.pageShift)
	res.Ops = append(res.Ops,
		mem.Op{Target: mem.InPackage, Addr: pageAddr, Bytes: metaBytes, Class: mem.ClassTag},
		mem.Op{Target: mem.InPackage, Addr: pageAddr, Bytes: metaBytes, Write: true, Class: mem.ClassTag},
	)
	set := b.md.set(page)
	tag := b.md.tagOf(page)
	if w := set.findCached(tag); w >= 0 {
		set.cached[w].count = b.lruTick // count doubles as LRU stamp here
		return
	}
	// Miss: evict the LRU way, fill the whole page.
	victim := 0
	for i := range set.cached {
		if !set.cached[i].valid {
			victim = i
			break
		}
		if set.cached[victim].valid && set.cached[i].count < set.cached[victim].count {
			victim = i
		}
	}
	b.remaps++
	res.Ops = append(res.Ops,
		mem.Op{Target: mem.OffPackage, Addr: pageAddr, Bytes: b.cfg.PageBytes, Class: mem.ClassReplacement},
		mem.Op{Target: mem.InPackage, Addr: pageAddr, Bytes: b.cfg.PageBytes, Write: true, Class: mem.ClassReplacement},
	)
	v := set.cached[victim]
	if v.valid {
		victimPage := b.md.pageOf(b.md.setIndex(page), v.tag)
		if v.dirty {
			victimAddr := mem.Addr(victimPage << b.pageShift)
			res.Ops = append(res.Ops,
				mem.Op{Target: mem.InPackage, Addr: victimAddr, Bytes: b.cfg.PageBytes, Class: mem.ClassReplacement},
				mem.Op{Target: mem.OffPackage, Addr: victimAddr, Bytes: b.cfg.PageBytes, Write: true, Class: mem.ClassReplacement},
			)
		}
		b.noteRemap(victimPage, false, 0, res)
	}
	set.cached[victim] = cachedEntry{tag: tag, count: b.lruTick, valid: true}
	b.noteRemap(page, true, uint8(victim), res)
}

// FillStats implements mc.Scheme.
func (b *Banshee) FillStats(s *stats.Sim) {
	s.Remaps += b.remaps
	s.TagProbes += b.probes
	s.TagBufferFlushes += b.flushes
	s.TLBShootdowns += b.shootdowns
	s.CounterSamples += b.samples
}

// Flushes returns how many PTE/TLB sync rounds have run (tests, and the
// ~14 ms inter-flush interval check of §5.5.2).
func (b *Banshee) Flushes() uint64 { return b.flushes }

// Resident reports whether page (a configured-granularity page number)
// is currently cached, and in which way (tests).
func (b *Banshee) Resident(page uint64) (bool, int) {
	w := b.md.set(page).findCached(b.md.tagOf(page))
	return w >= 0, w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
