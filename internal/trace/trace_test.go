package trace

import (
	"strings"
	"testing"

	"banshee/internal/mem"
)

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("expected the paper's 16 workloads, got %d", len(names))
	}
	for _, n := range names {
		if _, err := New(n, 4, 1); err != nil {
			t.Errorf("workload %q failed to build: %v", n, err)
		}
	}
}

func TestGraphNamesAreShared(t *testing.T) {
	for _, n := range GraphNames() {
		p, ok := Profiles(n)
		if !ok {
			t.Fatalf("graph workload %q has no profile", n)
		}
		if !p.Shared {
			t.Errorf("graph workload %q must share its address space", n)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("nosuch", 4, 1); err == nil {
		t.Fatal("unknown workload did not error")
	}
	if _, err := New("pagerank", 0, 1); err == nil {
		t.Fatal("zero cores did not error")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New("pagerank", 4, 99)
	b, _ := New("pagerank", 4, 99)
	for i := 0; i < 5000; i++ {
		c := i % 4
		ea, eb := a.Next(c), b.Next(c)
		if ea != eb {
			t.Fatalf("streams diverged at event %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestSeedsChangeStream(t *testing.T) {
	a, _ := New("pagerank", 2, 1)
	b, _ := New("pagerank", 2, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next(0).Addr == b.Next(0).Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("different seeds produced %d/1000 identical addresses", same)
	}
}

func TestSharedAddressSpace(t *testing.T) {
	w, _ := New("pagerank", 8, 7)
	if !w.Shared() {
		t.Fatal("pagerank must be shared")
	}
	fp := w.Footprint()
	for c := 0; c < 8; c++ {
		for i := 0; i < 2000; i++ {
			if a := w.Next(c).Addr; uint64(a) >= fp {
				t.Fatalf("core %d addressed %#x beyond shared footprint %#x", c, a, fp)
			}
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	w, _ := New("mcf", 4, 7)
	if w.Shared() {
		t.Fatal("mcf must be multiprogrammed")
	}
	regions := make([]map[uint64]bool, 4)
	for c := 0; c < 4; c++ {
		regions[c] = map[uint64]bool{}
		for i := 0; i < 3000; i++ {
			regions[c][uint64(w.Next(c).Addr)>>40] = true
		}
	}
	for c := 1; c < 4; c++ {
		for hi := range regions[c] {
			if regions[0][hi] {
				t.Fatalf("cores 0 and %d share a 1TB region", c)
			}
		}
	}
}

func TestFootprintBounded(t *testing.T) {
	w, _ := New("lbm", 2, 3, WithScale(1.0/16))
	// Each core stays within its own footprint span.
	perCore := w.Footprint() / 2
	for i := 0; i < 20000; i++ {
		e := w.Next(0)
		off := uint64(e.Addr) - (1 << 40)
		if off >= perCore+mem.PageBytes {
			t.Fatalf("address %#x beyond scaled footprint %#x", e.Addr, perCore)
		}
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	big, _ := New("pagerank", 2, 1)
	small, _ := New("pagerank", 2, 1, WithScale(1.0/16))
	if small.Footprint() >= big.Footprint() {
		t.Fatal("scale did not shrink footprint")
	}
}

func TestIntensityRaisesAccessRate(t *testing.T) {
	gaps := func(mult float64) int {
		w, _ := New("gcc", 1, 5, WithIntensity(mult))
		total := 0
		for i := 0; i < 5000; i++ {
			total += w.Next(0).Gap
		}
		return total
	}
	if gaps(4) >= gaps(1) {
		t.Fatal("higher intensity did not shrink instruction gaps")
	}
}

func TestWriteFraction(t *testing.T) {
	w, _ := New("lbm", 1, 9)
	p, _ := Profiles("lbm")
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.Next(0).Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < p.WriteFrac-0.05 || frac > p.WriteFrac+0.05 {
		t.Fatalf("write fraction %.3f, profile says %.3f", frac, p.WriteFrac)
	}
}

func TestSpatialLocalityStreaming(t *testing.T) {
	// lbm (stream 0.96, 56 lines/visit) must produce mostly
	// consecutive-line accesses.
	w, _ := New("lbm", 1, 11)
	consec := 0
	var prev mem.Addr
	const n = 20000
	for i := 0; i < n; i++ {
		a := w.Next(0).Addr
		if i > 0 && a == prev+mem.LineBytes {
			consec++
		}
		prev = a
	}
	if frac := float64(consec) / n; frac < 0.8 {
		t.Fatalf("lbm consecutive-line fraction %.2f, want >0.8", frac)
	}
}

func TestPointerChasingNotSequential(t *testing.T) {
	w, _ := New("omnetpp", 1, 11)
	consec := 0
	var prev mem.Addr
	const n = 20000
	for i := 0; i < n; i++ {
		a := w.Next(0).Addr
		if i > 0 && a == prev+mem.LineBytes {
			consec++
		}
		prev = a
	}
	if frac := float64(consec) / n; frac > 0.3 {
		t.Fatalf("omnetpp consecutive fraction %.2f, want low", frac)
	}
}

func TestZipfSkewInPageVisits(t *testing.T) {
	// graph500 (zipf 1.05) page popularity must be heavily skewed: the
	// top 10% of pages should receive well over half the non-stream
	// visits.
	w, _ := New("graph500", 1, 13, WithScale(1.0/64))
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[mem.PageNum(w.Next(0).Addr)]++
	}
	// Sort counts descending via bucket accumulation.
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	total, top := 0, 0
	for _, c := range all {
		total += c
	}
	// Select the top decile by threshold sweep (simple selection).
	threshold := percentile(all, 0.9)
	for _, c := range all {
		if c >= threshold {
			top += c
		}
	}
	if frac := float64(top) / float64(total); frac < 0.4 {
		t.Fatalf("top-decile pages got %.2f of visits, want skew > 0.4", frac)
	}
}

func percentile(xs []int, p float64) int {
	if len(xs) == 0 {
		return 0
	}
	// Insertion sort (test helper; inputs are small).
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

func TestMixUsesDistinctProfiles(t *testing.T) {
	w, err := New("mix1", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Shared() {
		t.Fatal("mixes are multiprogrammed")
	}
	// Cores 0 (libquantum: streaming) and 1 (mcf: chasing) must have
	// very different sequentiality.
	seq := func(c int) float64 {
		consec := 0
		var prev mem.Addr
		const n = 10000
		for i := 0; i < n; i++ {
			a := w.Next(c).Addr
			if i > 0 && a == prev+mem.LineBytes {
				consec++
			}
			prev = a
		}
		return float64(consec) / n
	}
	if s0, s1 := seq(0), seq(1); s0 < s1+0.3 {
		t.Fatalf("mix1 core0 (libquantum) seq %.2f vs core1 (mcf) %.2f: profiles not applied", s0, s1)
	}
}

func TestLineReuseAcrossVisits(t *testing.T) {
	// Hot pages must re-touch the same lines across visits often enough
	// for line-granularity caches to work (the Alloy-enabling property).
	w, _ := New("graph500", 1, 17, WithScale(1.0/64))
	lineSeen := map[uint64]int{}
	const n = 100000
	reuse := 0
	for i := 0; i < n; i++ {
		l := mem.LineNum(w.Next(0).Addr)
		if lineSeen[l] > 0 {
			reuse++
		}
		lineSeen[l]++
	}
	if frac := float64(reuse) / n; frac < 0.3 {
		t.Fatalf("line reuse fraction %.2f too low for line-granularity caches", frac)
	}
}

func TestGapsNonNegativeAndIntense(t *testing.T) {
	for _, name := range Names() {
		w, _ := New(name, 2, 23)
		total := 0
		const n = 5000
		for i := 0; i < n; i++ {
			g := w.Next(0).Gap
			if g < 0 {
				t.Fatalf("%s produced negative gap", name)
			}
			total += g
		}
		if total == 0 {
			t.Fatalf("%s produced zero gaps everywhere", name)
		}
	}
}

func TestAllProfilesListed(t *testing.T) {
	all := AllProfiles()
	if len(all) != 17 { // 13 named + 4 mix-only members
		t.Fatalf("AllProfiles returned %d entries", len(all))
	}
}

func TestUnknownWorkloadErrorListsNames(t *testing.T) {
	_, err := New("nosuch", 4, 1)
	if err == nil {
		t.Fatal("unknown workload did not error")
	}
	// The message must cite every valid name so a typo is diagnosable
	// from the error alone.
	for _, n := range ValidNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error does not cite valid name %q: %v", n, err)
		}
	}
}

func TestValidNamesAllBuild(t *testing.T) {
	for _, n := range ValidNames() {
		if !Known(n) {
			t.Errorf("ValidNames lists %q but Known rejects it", n)
		}
		// Tiny scale keeps kernel-workload graphs at their floor size.
		if _, err := New(n, 2, 1, WithScale(1e-4)); err != nil {
			t.Errorf("valid name %q failed to build: %v", n, err)
		}
	}
	if Known("nosuch") {
		t.Error("Known accepted an invalid name")
	}
}

func TestSharedStreamsPollOrderIndependent(t *testing.T) {
	// The replay contract: a core's stream depends only on (name,
	// cores, seed) — polling other cores in between must not perturb
	// it, including for shared-address-space workloads.
	a, _ := New("pagerank", 4, 7)
	b, _ := New("pagerank", 4, 7)
	var seq []Event
	for i := 0; i < 2000; i++ {
		seq = append(seq, a.Next(1))
	}
	for i := 0; i < 2000; i++ {
		b.Next(0)
		b.Next(3)
		if ev := b.Next(1); ev != seq[i] {
			t.Fatalf("core 1 stream perturbed by other cores at event %d: %+v != %+v", i, ev, seq[i])
		}
	}
}
